// Auto-tuning search benchmarks, committed as BENCH_tune.json (see
// EXPERIMENTS.md). Each sub-benchmark times a full tuning sweep over one
// workload's approved plan and attaches the search's deterministic verdict
// as custom metrics: the modeled chosen-vs-default program speedup, the
// smallest per-nest speedup (the acceptance floor: never below 1), and the
// audit-trail sizes. Scores come from virtual-time runs and the machine
// cost model, so every metric is reproducible on a single-core runner.
package suifx_test

import (
	"context"
	"testing"

	"suifx/internal/experiments"
	"suifx/internal/tune"
	"suifx/internal/workloads"
)

// tuneBenchApps lists the Chapter 4 evaluation trio plus the Nanz multicore
// suite — the same workload set BENCH_parallel curves cover.
func tuneBenchApps() []string {
	apps := []string{"mdg", "applu", "hydro"}
	for _, w := range workloads.Suite("nanz") {
		apps = append(apps, w.Name)
	}
	return apps
}

func BenchmarkTune(b *testing.B) {
	for _, app := range tuneBenchApps() {
		b.Run(app, func(b *testing.B) {
			var rep *tune.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, _, err = experiments.TuneApp(context.Background(), app, tune.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Speedup, "tune_speedup")
			b.ReportMetric(rep.MinLoopSpeedup(), "min_loop_speedup")
			b.ReportMetric(float64(rep.Runs), "runs")
			b.ReportMetric(float64(rep.Searched), "searched")
			b.ReportMetric(float64(rep.Pruned), "pruned")
		})
	}
}
