// End-to-end tests for every binary in cmd/: each test builds the real
// binary with `go build` into a shared temp dir and drives it the way a
// user would — flags, files, stdin, signals, and live HTTP round-trips.
package suifx_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"suifx/internal/experiments"
	"suifx/internal/workloads"
)

var binaries struct {
	mu    sync.Mutex
	dir   string
	built map[string]string
}

// buildBinary compiles cmd/<name> once per test run and returns its path.
func buildBinary(t *testing.T, name string) string {
	t.Helper()
	binaries.mu.Lock()
	defer binaries.mu.Unlock()
	if binaries.built == nil {
		binaries.built = map[string]string{}
		dir, err := os.MkdirTemp("", "suifx-e2e-*")
		if err != nil {
			t.Fatal(err)
		}
		binaries.dir = dir
	}
	if p, ok := binaries.built[name]; ok {
		return p
	}
	out := filepath.Join(binaries.dir, name)
	cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, msg)
	}
	binaries.built[name] = out
	return out
}

func TestMain(m *testing.M) {
	code := m.Run()
	if binaries.dir != "" {
		os.RemoveAll(binaries.dir)
	}
	os.Exit(code)
}

// run executes a built binary with a deadline and returns stdout, stderr,
// and the exit code.
func run(t *testing.T, bin string, stdin string, args ...string) (string, string, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	return out.String(), errb.String(), code
}

func TestE2ESuifpar(t *testing.T) {
	bin := buildBinary(t, "suifpar")
	w := workloads.All()[0]

	t.Run("workload", func(t *testing.T) {
		stdout, stderr, code := run(t, bin, "", "-workload", w.Name)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		if !strings.Contains(stdout, "loops,") || !strings.Contains(stdout, "parallelizable") {
			t.Fatalf("report header missing from output:\n%s", stdout)
		}
	})

	t.Run("file with flags", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "prog.f")
		if err := os.WriteFile(path, []byte(w.Source), 0o644); err != nil {
			t.Fatal(err)
		}
		stdout, stderr, code := run(t, bin, "", "-noreductions", "-liveness", "-workers", "2", path)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		if !strings.Contains(stdout, path+":") {
			t.Fatalf("report does not name the input file:\n%s", stdout)
		}
	})

	t.Run("usage error", func(t *testing.T) {
		_, stderr, code := run(t, bin, "")
		if code != 2 || !strings.Contains(stderr, "usage:") {
			t.Fatalf("no-arg run: exit %d, stderr %q (want 2 + usage)", code, stderr)
		}
	})

	t.Run("bad file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.f")
		os.WriteFile(path, []byte("NOT MINIF(("), 0o644)
		_, stderr, code := run(t, bin, "", path)
		if code != 1 || !strings.Contains(stderr, "suifpar:") {
			t.Fatalf("bad file: exit %d, stderr %q (want 1 + error)", code, stderr)
		}
	})
}

func TestE2EPaperfigs(t *testing.T) {
	bin := buildBinary(t, "paperfigs")
	ids := experiments.TableIDs()
	if len(ids) == 0 {
		t.Fatal("no table ids")
	}

	t.Run("one table", func(t *testing.T) {
		stdout, stderr, code := run(t, bin, "", ids[0])
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		if strings.TrimSpace(stdout) == "" {
			t.Fatal("table output is empty")
		}
	})

	t.Run("several tables keep request order", func(t *testing.T) {
		if len(ids) < 2 {
			t.Skip("only one table")
		}
		a, _, _ := run(t, bin, "", ids[0])
		b, _, _ := run(t, bin, "", ids[1])
		both, _, code := run(t, bin, "", ids[0], ids[1])
		if code != 0 {
			t.Fatalf("exit %d", code)
		}
		ia := strings.Index(both, strings.TrimSpace(strings.Split(a, "\n")[0]))
		ib := strings.Index(both, strings.TrimSpace(strings.Split(b, "\n")[0]))
		if ia < 0 || ib < 0 || ia > ib {
			t.Fatalf("combined output does not preserve request order (%d, %d)", ia, ib)
		}
	})

	t.Run("unknown id", func(t *testing.T) {
		_, stderr, code := run(t, bin, "", "not-a-table")
		if code != 1 || !strings.Contains(stderr, "paperfigs:") {
			t.Fatalf("unknown id: exit %d, stderr %q", code, stderr)
		}
	})
}

func TestE2EExplorer(t *testing.T) {
	bin := buildBinary(t, "explorer")
	w := workloads.All()[0]

	t.Run("script mode", func(t *testing.T) {
		stdout, stderr, code := run(t, bin, "", "-workload", w.Name, "-c", "targets;report;quit")
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		if !strings.Contains(stdout, "SUIF Explorer:") || !strings.Contains(stdout, "parallelism coverage") {
			t.Fatalf("session banner missing:\n%s", stdout)
		}
	})

	t.Run("stdin session", func(t *testing.T) {
		stdout, _, code := run(t, bin, "report\nquit\n", "-workload", w.Name)
		if code != 0 {
			t.Fatalf("exit %d", code)
		}
		if strings.Count(stdout, "parallelism coverage") < 2 {
			t.Fatalf("stdin report command did not run:\n%s", stdout)
		}
	})
}

// startSuifxd boots the daemon on an ephemeral port and returns its base
// URL, the running command (for signalling), and a tail() accessor over its
// accumulated output. The caller owns shutdown.
func startSuifxd(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd, func() string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-timeout", "30s"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	// The daemon's stdout goes to a thread-safe line writer rather than a
	// StdoutPipe: Wait closes a pipe as soon as the process exits, which can
	// race a scanner goroutine out of the final output lines. With an
	// io.Writer, os/exec's own copier drains everything before Wait returns.
	addrCh := make(chan string, 1)
	out := &lineWriter{onLine: func(line string) {
		if _, a, ok := strings.Cut(line, "listening on "); ok {
			select {
			case addrCh <- strings.TrimSpace(a):
			default:
			}
		}
	}}
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	// The daemon prints "suifxd: listening on ADDR" once bound.
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd, out.String
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never reported its address; output so far:\n%s", out.String())
		return "", nil, nil
	}
}

// stopSuifxd sends SIGTERM and asserts a clean, graceful exit.
func stopSuifxd(t *testing.T, cmd *exec.Cmd, tail func() string) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\noutput:\n%s", err, tail())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not shut down after SIGTERM; output:\n%s", tail())
	}
	if !strings.Contains(tail(), "graceful shutdown complete") {
		t.Fatalf("missing graceful-shutdown message; output:\n%s", tail())
	}
}

// TestE2ESuifxd boots the daemon on an ephemeral port, round-trips every
// endpoint over real HTTP, and shuts it down with SIGTERM.
func TestE2ESuifxd(t *testing.T) {
	bin := buildBinary(t, "suifxd")
	w := workloads.All()[0]

	base, cmd, tail := startSuifxd(t, bin, "-exec-mode", "auto")

	post := func(path string, body any) (int, map[string]json.RawMessage) {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		fields := map[string]json.RawMessage{}
		json.Unmarshal(raw, &fields)
		return resp.StatusCode, fields
	}

	if code, fields := post("/v1/analyze", map[string]any{"workload": w.Name}); code != 200 {
		t.Fatalf("analyze: status %d (%s)", code, fields["error"])
	}
	if code, _ := post("/v1/analyze", map[string]any{"source": "garbage(("}); code != 422 {
		t.Fatalf("bad source: status %d, want 422", code)
	}
	// A profile over the compiled engine finishes fast even over real
	// HTTP: the analysis is already cached from the analyze call, and the
	// instrumented run is a few million bytecode instructions. 10s is a
	// deliberately generous ceiling for a loaded CI box — the pre-compile
	// engine took the same workload through tree-walking dispatch.
	profStart := time.Now()
	if code, fields := post("/v1/profile", map[string]any{"workload": w.Name}); code != 200 {
		t.Fatalf("profile: status %d (%s)", code, fields["error"])
	}
	if d := time.Since(profStart); d > 10*time.Second {
		t.Fatalf("profile round-trip took %v, want < 10s", d)
	}
	if code, _ := post("/v1/profile", map[string]any{"workload": w.Name, "mode": "tree"}); code != 200 {
		t.Fatalf("profile mode=tree: status %d", code)
	}
	if code, _ := post("/v1/profile", map[string]any{"workload": w.Name, "mode": "jit"}); code != 422 {
		t.Fatalf("profile mode=jit: status %d, want 422", code)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cache struct {
			Misses  int64 `json:"misses"`
			Entries int   `json:"entries"`
		} `json:"cache"`
		Exec struct {
			CompiledProcs int64 `json:"compiled_procs"`
			Instructions  int64 `json:"instructions_executed"`
			BytecodeRuns  int64 `json:"bytecode_runs"`
			TreeRuns      int64 `json:"tree_runs"`
		} `json:"exec"`
		ExecMode string `json:"exec_mode"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Cache.Misses < 1 || stats.Cache.Entries < 1 {
		t.Fatalf("stats: err=%v cache=%+v", err, stats.Cache)
	}
	if stats.Exec.CompiledProcs < 1 || stats.Exec.Instructions < 1 ||
		stats.Exec.BytecodeRuns < 1 || stats.Exec.TreeRuns < 1 {
		t.Fatalf("stats: interpreter counters not populated: %+v", stats.Exec)
	}
	if stats.ExecMode != "auto" {
		t.Fatalf("stats: exec_mode = %q, want auto", stats.ExecMode)
	}

	// Graceful shutdown on SIGTERM: exit code 0.
	stopSuifxd(t, cmd, tail)
}

// TestE2ESession drives the full interactive dialogue against a live daemon:
// create a session on mdg, ask the Guru, make the paper's unlocking
// assertion (verifying the re-analysis was incremental), slice and explain,
// read stats, watch the idle-TTL janitor evict the session, and also drive
// the same server through the explorer binary's -connect mode.
func TestE2ESession(t *testing.T) {
	bin := buildBinary(t, "suifxd")
	base, cmd, tail := startSuifxd(t, bin, "-session-ttl", "2s", "-session-sweep", "100ms")

	do := func(method, path string, body any) (int, map[string]json.RawMessage) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			data, _ := json.Marshal(body)
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if rd != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		fields := map[string]json.RawMessage{}
		json.Unmarshal(raw, &fields)
		return resp.StatusCode, fields
	}

	code, fields := do("POST", "/v1/session", map[string]any{"workload": "mdg"})
	if code != 200 {
		t.Fatalf("session create: status %d (%s)", code, fields["error"])
	}
	var id string
	json.Unmarshal(fields["id"], &id)
	if id == "" {
		t.Fatalf("no session id in %v", fields)
	}

	code, fields = do("GET", "/v1/session/"+id+"/guru", nil)
	if code != 200 {
		t.Fatalf("guru: status %d", code)
	}
	var targets []struct {
		Loop    string `json:"loop"`
		DynDeps int64  `json:"dyn_deps"`
	}
	json.Unmarshal(fields["targets"], &targets)
	found := false
	for _, tg := range targets {
		found = found || (tg.Loop == "INTERF/1000" && tg.DynDeps == 0)
	}
	if !found {
		t.Fatalf("guru worklist %v missing INTERF/1000 with zero dynamic deps", targets)
	}

	// The unlocking assertion; the reply carries the incremental stats and
	// the re-ranked worklist.
	code, fields = do("POST", "/v1/session/"+id+"/assert",
		map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"})
	if code != 200 {
		t.Fatalf("assert: status %d (%s)", code, fields["error"])
	}
	var accepted bool
	json.Unmarshal(fields["accepted"], &accepted)
	if !accepted {
		t.Fatalf("private RL assertion rejected: %v", fields)
	}
	var re struct {
		Recomputed int `json:"recomputed"`
		Reused     int `json:"reused"`
	}
	json.Unmarshal(fields["reanalysis"], &re)
	if re.Recomputed == 0 || re.Reused == 0 {
		t.Fatalf("reanalysis %+v not incremental over live HTTP", re)
	}

	if code, fields = do("GET", "/v1/session/"+id+"/why?loop=MDG/2000", nil); code != 200 {
		t.Fatalf("why: status %d (%s)", code, fields["error"])
	}
	if code, fields = do("POST", "/v1/session/"+id+"/slice",
		map[string]any{"kind": "program", "proc": "INTERF", "var": "RL", "line": 37}); code != 200 {
		t.Fatalf("slice: status %d (%s)", code, fields["error"])
	}

	code, fields = do("GET", "/v1/stats", nil)
	if code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	var sess struct {
		Live            int   `json:"live"`
		AssertsAccepted int64 `json:"asserts_accepted"`
		SummariesReused int64 `json:"summaries_reused"`
	}
	json.Unmarshal(fields["sessions"], &sess)
	if sess.Live != 1 || sess.AssertsAccepted != 1 || sess.SummariesReused == 0 {
		t.Fatalf("session stats = %+v, want 1 live, 1 accepted, reused summaries", sess)
	}

	// The explorer binary can drive the same server remotely.
	exbin := buildBinary(t, "explorer")
	stdout, stderr, ecode := run(t, exbin, "", "-connect", base, "-workload", "mdg",
		"-c", "report;targets;assert private INTERF/1000 RL;quit")
	if ecode != 0 {
		t.Fatalf("explorer -connect: exit %d, stderr: %s", ecode, stderr)
	}
	if !strings.Contains(stdout, "parallelism coverage") || !strings.Contains(stdout, "INTERF/1000") {
		t.Fatalf("remote explorer output missing report/targets:\n%s", stdout)
	}
	if !strings.Contains(stdout, "accepted") {
		t.Fatalf("remote assertion not accepted:\n%s", stdout)
	}

	// The idle-TTL janitor evicts both sessions (ours and the explorer's,
	// which quit cleanly and deleted itself) once idle past 2s. Polling the
	// session itself would touch it and reset its idle timer, so watch the
	// live count in /v1/stats instead.
	deadline := time.Now().Add(20 * time.Second)
	var after struct {
		Live        int   `json:"live"`
		EvictedIdle int64 `json:"evicted_idle"`
	}
	for {
		_, fields = do("GET", "/v1/stats", nil)
		json.Unmarshal(fields["sessions"], &after)
		if after.Live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never evicted by the TTL janitor (stats %+v)", id, after)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if after.EvictedIdle < 1 {
		t.Fatalf("post-eviction stats = %+v, want >=1 idle eviction", after)
	}
	if code, _ = do("GET", "/v1/session/"+id, nil); code != 404 {
		t.Fatalf("evicted session still resolves: status %d", code)
	}

	// Explicit teardown still works after the janitor: create and DELETE.
	_, fields = do("POST", "/v1/session", map[string]any{"workload": "mdg"})
	json.Unmarshal(fields["id"], &id)
	if code, _ = do("DELETE", "/v1/session/"+id, nil); code != 200 {
		t.Fatalf("delete: status %d", code)
	}

	stopSuifxd(t, cmd, tail)
}

// TestE2ECluster boots two worker daemons and a coordinator over them, runs
// the quick corpus ladder as a cluster batch, kills one worker mid-batch, and
// asserts the NDJSON stream stays byte-identical to a single-node run. It
// also drives sessions and the suifpar -connect mode through the coordinator.
func TestE2ECluster(t *testing.T) {
	bin := buildBinary(t, "suifxd")

	w1base, w1cmd, w1tail := startSuifxd(t, bin)
	w2base, w2cmd, _ := startSuifxd(t, bin)
	cobase, cocmd, cotail := startSuifxd(t, bin,
		"-coordinator", "-workers", strings.TrimPrefix(w1base, "http://")+","+strings.TrimPrefix(w2base, "http://"),
		"-probe-period", "100ms", "-fail-threshold", "2")

	runBatch := func(base string, killAfterFirstLine *exec.Cmd) []byte {
		t.Helper()
		resp, err := http.Post(base+"/v1/batch", "application/json",
			strings.NewReader(`{"ladder": "quick"}`))
		if err != nil {
			t.Fatalf("batch on %s: %v", base, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("batch on %s: status %d: %s", base, resp.StatusCode, msg)
		}
		var buf bytes.Buffer
		rd := bufio.NewReader(resp.Body)
		for {
			line, err := rd.ReadBytes('\n')
			buf.Write(line)
			if killAfterFirstLine != nil {
				killAfterFirstLine.Process.Kill()
				killAfterFirstLine = nil
			}
			if err != nil {
				break
			}
		}
		return buf.Bytes()
	}

	// Single-node baseline from worker 1, then the same manifest through the
	// 2-worker cluster: the streams must match byte for byte.
	baseline := runBatch(w1base, nil)
	if got := runBatch(cobase, nil); !bytes.Equal(got, baseline) {
		t.Fatalf("cluster batch diverges from single-node:\n--- single\n%s\n--- cluster\n%s", baseline, got)
	}

	// Sessions route through the coordinator with the same dialogue contract.
	do := func(method, path string, body any) (int, map[string]json.RawMessage) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			data, _ := json.Marshal(body)
			rd = bytes.NewReader(data)
		}
		req, _ := http.NewRequest(method, cobase+path, rd)
		if rd != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		fields := map[string]json.RawMessage{}
		json.Unmarshal(raw, &fields)
		return resp.StatusCode, fields
	}
	code, fields := do("POST", "/v1/session", map[string]any{"workload": "mdg"})
	if code != 200 {
		t.Fatalf("session via coordinator: %d (%s)", code, fields["error"])
	}
	var sid string
	json.Unmarshal(fields["id"], &sid)
	code, fields = do("POST", "/v1/session/"+sid+"/assert",
		map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"})
	var accepted bool
	json.Unmarshal(fields["accepted"], &accepted)
	if code != 200 || !accepted {
		t.Fatalf("assert via coordinator: %d accepted=%v (%s)", code, accepted, fields["error"])
	}

	// suifpar -connect drives the coordinator like a local run (and -auto
	// reaches /v1/tune through the proxy).
	spbin := buildBinary(t, "suifpar")
	stdout, stderr, ecode := run(t, spbin, "", "-connect", cobase, "-workload", "mdg")
	if ecode != 0 || !strings.Contains(stdout, "parallelizable") {
		t.Fatalf("suifpar -connect: exit %d\nstdout: %s\nstderr: %s", ecode, stdout, stderr)
	}
	stdout, stderr, ecode = run(t, spbin, "", "-connect", cobase, "-auto", "-workload", "mdg")
	if ecode != 0 || !strings.Contains(stdout, "tuned") {
		t.Fatalf("suifpar -connect -auto: exit %d\nstdout: %s\nstderr: %s", ecode, stdout, stderr)
	}

	// Kill worker 2 mid-batch: its items fail over to worker 1 and the stream
	// still matches the single-node bytes.
	if got := runBatch(cobase, w2cmd); !bytes.Equal(got, baseline) {
		t.Fatalf("batch with a killed worker diverges:\n--- single\n%s\n--- cluster\n%s", baseline, got)
	}
	w2cmd.Wait() // reap; killed exit is expected

	// The coordinator's stats expose the cluster counters.
	resp, err := http.Get(cobase + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cluster struct {
			RingGeneration uint64 `json:"ring_generation"`
			TotalWorkers   int    `json:"total_workers"`
			BatchItems     int64  `json:"batch_items"`
		} `json:"cluster"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Cluster.TotalWorkers != 2 || stats.Cluster.BatchItems < 4 {
		t.Fatalf("coordinator stats: err=%v %+v", err, stats.Cluster)
	}

	// Both survivors shut down gracefully.
	stopSuifxd(t, cocmd, cotail)
	stopSuifxd(t, w1cmd, w1tail)
}

// lineWriter is a thread-safe io.Writer that accumulates everything written
// and calls onLine for each complete line.
type lineWriter struct {
	mu     sync.Mutex
	buf    strings.Builder
	pend   []byte
	onLine func(line string)
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	w.pend = append(w.pend, p...)
	for {
		i := bytes.IndexByte(w.pend, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := string(w.pend[:i])
		w.pend = append(w.pend[:0], w.pend[i+1:]...)
		if w.onLine != nil {
			w.onLine(line)
		}
	}
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}
