// Parallel bytecode-engine benchmarks, committed as BENCH_parallel.json
// (see EXPERIMENTS.md). Each sub-benchmark times a full plan-driven run on
// the bytecode engine and attaches the deterministic virtual-time speedup
// (sequential ops over critical-path ops) as a custom metric, so the curve
// is reproducible on a single-core runner where wall-clock parallel
// speedup is physically impossible.
package suifx_test

import (
	"strconv"
	"testing"

	"suifx/internal/exec"
	"suifx/internal/experiments"
)

// BenchmarkParallelEngine runs three representative workloads' approved
// plans at 1/2/4/8 workers on the bytecode VM. Sub-benchmark names avoid a
// trailing -N so benchjson's procs-suffix stripping can't eat the worker
// count.
func BenchmarkParallelEngine(b *testing.B) {
	for _, app := range []string{"mdg", "applu", "hydro"} {
		workers := []int{1, 2, 4, 8}
		pts, err := experiments.ParallelSpeedups(app, workers)
		if err != nil {
			b.Fatal(err)
		}
		for i, n := range workers {
			pt := pts[i]
			b.Run(app+"/"+strconv.Itoa(n)+"w", func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					_, _, err := experiments.RunParallel(app, experiments.ParallelRunOptions{
						Workers: n, Mode: exec.ModeBytecode, Staggered: true, Chunks: 4,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pt.VTSpeedup, "vt_speedup")
				b.ReportMetric(float64(pt.CritOps), "crit_ops")
			})
		}
	}
}
