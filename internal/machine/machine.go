// Package machine models the multiprocessors of the paper's evaluation —
// the 8-processor Digital AlphaServer 8400 (§4), the 4-processor SGI
// Challenge and the 32-processor SGI Origin 2000 (Fig 6-1) — as analytic
// cost models over the interpreter's virtual-time profiles. The models
// reproduce the *shape* of the paper's speedup results (who wins, where
// scalability knees appear), not the absolute 1999 numbers; see DESIGN.md's
// substitution notes.
package machine

import "math"

// Model is one multiprocessor's cost parameters (abstract cycles).
type Model struct {
	Name  string
	Procs int
	// ClockMHz converts cycles to seconds for granularity reporting.
	ClockMHz float64
	// CyclesPerOp is the base cost of one interpreter operation.
	CyclesPerOp float64
	// SpawnCost is the fork/join overhead per parallel loop invocation.
	SpawnCost float64
	// LockCost is the cost of one lock acquire/release.
	LockCost float64
	// CacheElems is the per-processor cache capacity in array elements.
	CacheElems int64
	// MissPenalty scales the per-op slowdown when the working set spills
	// out of cache.
	MissPenalty float64
	// BusPenalty adds contention cost per processor beyond the first on
	// bus-based machines (0 for the Origin's scalable interconnect).
	BusPenalty float64
	// MemPorts bounds how many processors' cache-miss traffic the memory
	// system can serve concurrently.
	MemPorts float64
	// ReshuffleCost is the per-element cost of conflicting data
	// decompositions between consecutive parallel loops (§4.2.4).
	ReshuffleCost float64
}

// AlphaServer8400 models the bus-based 8-processor machine of Chapter 4:
// 300-MHz Alpha 21164s, 4 MB external caches, one 256-bit shared bus.
func AlphaServer8400() *Model {
	return &Model{
		Name: "Digital AlphaServer 8400", Procs: 8, ClockMHz: 300,
		CyclesPerOp: 1.0, SpawnCost: 12000, LockCost: 400,
		CacheElems: 512 * 1024, MissPenalty: 2.2, BusPenalty: 0.035, MemPorts: 2,
		ReshuffleCost: 4.0,
	}
}

// SGIChallenge models the 4-processor bus-based machine of Fig 6-1 (150-MHz
// R4400s, 1 MB secondary caches).
func SGIChallenge() *Model {
	return &Model{
		Name: "SGI Challenge", Procs: 4, ClockMHz: 150,
		CyclesPerOp: 1.3, SpawnCost: 9000, LockCost: 600,
		CacheElems: 128 * 1024, MissPenalty: 2.8, BusPenalty: 0.05, MemPorts: 1.5,
		ReshuffleCost: 5.0,
	}
}

// SGIOrigin models the 32-processor SGI Origin 2000 (195-MHz R10000s,
// 4 MB secondary caches, scalable interconnect).
func SGIOrigin() *Model {
	return &Model{
		Name: "SGI Origin 2000", Procs: 32, ClockMHz: 195,
		CyclesPerOp: 1.0, SpawnCost: 15000, LockCost: 500,
		CacheElems: 512 * 1024, MissPenalty: 3.2, BusPenalty: 0.0, MemPorts: 4,
		ReshuffleCost: 3.0,
	}
}

// LoopWork describes one loop's measured work and chosen transformation.
type LoopWork struct {
	ID          string
	Invocations int64
	TotalOps    int64
	// Parallel marks loops executed in parallel.
	Parallel bool
	// ReductionElems is the per-invocation reduction region size to
	// initialize and finalize (0 = no reduction), §6.3.2.
	ReductionElems int64
	// PerUpdateLock charges a lock per reduction update instead of
	// private-accumulator init/finalization (§6.3.5); Updates counts them.
	PerUpdateLock bool
	Updates       int64
	// PrivateElems is the per-invocation private-copy initialization size.
	PrivateElems int64
	// FinalizeElems is the last-iteration private write-back size.
	FinalizeElems int64
	// FootprintElems is the per-invocation working set (whole loop).
	FootprintElems int64
	// ConflictingDecomp charges a data reshuffle of the footprint between
	// this loop and its neighbors (§4.2.4's vsetuv/vqterm row/column clash).
	ConflictingDecomp bool
	// Streaming marks loops whose footprint is touched fresh on every
	// invocation (vector-style temporaries, §5.6): their miss traffic is
	// proportional to the footprint and saturates the memory ports no
	// matter how many processors run the compute. Array contraction turns
	// these into cache-resident loops.
	Streaming bool
	// StreamPasses counts how many times the footprint streams through
	// memory per run (defaults to Invocations; per-iteration temporaries
	// stream once per iteration).
	StreamPasses int64
	// StaggeredFinalize selects the §6.3.4 multi-lock finalization.
	StaggeredFinalize bool
}

// missFrac is the fraction of operations that miss: the working set beyond
// the aggregate cache of procs processors.
func (m *Model) missFrac(footprint int64, procs int) float64 {
	if footprint <= 0 {
		return 0
	}
	cache := float64(m.CacheElems) * float64(procs)
	fp := float64(footprint)
	if fp <= cache {
		return 0
	}
	return 1 - cache/fp
}

// memFactor is the sequential per-op slowdown for a working set.
func (m *Model) memFactor(footprint int64, procs int) float64 {
	return 1 + m.MissPenalty*m.missFrac(footprint, procs)
}

// busFactor models shared-bus contention growing with processor count.
func (m *Model) busFactor(procs int) float64 {
	if procs <= 1 {
		return 1
	}
	return 1 + m.BusPenalty*float64(procs-1)
}

// streamTraffic is the per-run cycles of cache-miss traffic for a
// streaming loop: the footprint is reloaded on every invocation.
func (m *Model) streamTraffic(w LoopWork) float64 {
	if !w.Streaming {
		return 0
	}
	fp := float64(w.FootprintElems)
	cache := float64(m.CacheElems)
	if fp <= cache {
		return 0
	}
	passes := float64(w.StreamPasses)
	if passes == 0 {
		passes = float64(w.Invocations)
	}
	return passes * (fp - cache) * m.MissPenalty * m.CyclesPerOp
}

// SeqTime is the modeled single-processor cycles for one loop.
func (m *Model) SeqTime(w LoopWork) float64 {
	base := float64(w.TotalOps) * m.CyclesPerOp
	if w.Streaming {
		return base + m.streamTraffic(w)
	}
	return base * m.memFactor(w.FootprintElems, 1)
}

// LoopTime returns the modeled cycles for one loop on procs processors.
func (m *Model) LoopTime(w LoopWork, procs int) float64 {
	seqCycles := m.SeqTime(w)
	if !w.Parallel || procs <= 1 {
		return seqCycles
	}
	inv := float64(w.Invocations)
	if inv == 0 {
		return 0
	}
	// Compute scales with processors; cache-miss traffic is served by a
	// bounded number of memory ports, which is what caps memory-bound loops
	// (the Fig 5-12 knee).
	ops := float64(w.TotalOps) * m.CyclesPerOp
	compute := ops * m.busFactor(procs) / float64(procs)
	ports := m.MemPorts
	if ports < 1 {
		ports = 1
	}
	if float64(procs) < ports {
		ports = float64(procs)
	}
	var miss float64
	if w.Streaming {
		miss = m.streamTraffic(w) / ports
	} else {
		// Resident data: each processor's share may fit its cache.
		perProc := w.FootprintElems / int64(procs)
		miss = ops * m.MissPenalty * m.missFrac(perProc, 1) / ports
	}
	body := compute + miss
	if floor := ops / float64(procs); body < floor {
		body = floor
	}
	overhead := inv * m.SpawnCost
	if w.ReductionElems > 0 {
		if w.PerUpdateLock {
			// §6.3.5: no init/finalize, but a lock per update, amortized
			// across processors.
			overhead += float64(w.Updates) * m.LockCost / float64(procs)
		} else {
			init := inv * float64(w.ReductionElems) * m.CyclesPerOp // parallel across procs, but per-proc copies
			final := inv * float64(w.ReductionElems) * m.CyclesPerOp
			if w.StaggeredFinalize {
				// Finalization proceeds concurrently on disjoint regions.
				final += inv * m.LockCost * 4
			} else {
				// Serialized: each processor in turn (§6.3.2's problem).
				final *= float64(procs)
				final += inv * m.LockCost * float64(procs)
			}
			overhead += init + final
		}
	}
	if w.PrivateElems > 0 {
		overhead += inv * float64(w.PrivateElems) * m.CyclesPerOp
	}
	if w.FinalizeElems > 0 {
		overhead += inv * float64(w.FinalizeElems) * m.CyclesPerOp
	}
	par := body + overhead
	if w.ConflictingDecomp {
		par += inv * float64(w.FootprintElems) * m.ReshuffleCost
	}
	// The run-time system suppresses parallel execution when the overhead
	// would overwhelm the benefit (§4.5).
	if par >= seqCycles {
		return seqCycles
	}
	return par
}

// Workload is a whole program: its loops plus the ops outside any of them.
type Workload struct {
	Loops     []LoopWork
	SerialOps int64 // ops outside all listed loops
	// SerialFootprint is the non-loop working set.
	SerialFootprint int64
}

// Time returns total modeled cycles on procs processors.
func (m *Model) Time(w Workload, procs int) float64 {
	t := float64(w.SerialOps) * m.CyclesPerOp * m.memFactor(w.SerialFootprint, 1)
	for _, lw := range w.Loops {
		t += m.LoopTime(lw, procs)
	}
	return t
}

// Speedup returns Time(1)/Time(procs).
func (m *Model) Speedup(w Workload, procs int) float64 {
	t1 := m.Time(w, 1)
	tp := m.Time(w, procs)
	if tp == 0 {
		return 1
	}
	s := t1 / tp
	if s > float64(procs) {
		s = float64(procs) // modeled speedups are capped at linear
	}
	return math.Round(s*10) / 10
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Coverage returns the fraction of sequential time spent in parallel loops.
func (m *Model) Coverage(w Workload) float64 {
	var par, tot float64
	tot = float64(w.SerialOps)
	for _, lw := range w.Loops {
		tot += float64(lw.TotalOps)
		if lw.Parallel {
			par += float64(lw.TotalOps)
		}
	}
	if tot == 0 {
		return 0
	}
	return par / tot
}

// GranularityMs returns the average parallel-region length between
// synchronizations in milliseconds (§2.6).
func (m *Model) GranularityMs(w Workload) float64 {
	var ops, invs float64
	for _, lw := range w.Loops {
		if lw.Parallel && lw.Invocations > 0 {
			ops += float64(lw.TotalOps)
			invs += float64(lw.Invocations)
		}
	}
	if invs == 0 {
		return 0
	}
	cycles := ops / invs * m.CyclesPerOp
	return cycles / (m.ClockMHz * 1e3)
}
