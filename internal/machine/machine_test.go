package machine

import "testing"

func coarseLoop(parallel bool) LoopWork {
	return LoopWork{
		ID: "L", Invocations: 10, TotalOps: 50_000_000,
		Parallel: parallel, FootprintElems: 100_000,
	}
}

func TestSpeedupScalesWithCoverage(t *testing.T) {
	m := AlphaServer8400()
	// 90% parallel coverage: Amdahl caps speedup well below 8 but above 3.
	w := Workload{
		Loops:     []LoopWork{coarseLoop(true)},
		SerialOps: 5_000_000,
	}
	s8 := m.Speedup(w, 8)
	if s8 < 3 || s8 > 7.9 {
		t.Fatalf("speedup(8) = %v, want within Amdahl range", s8)
	}
	s4 := m.Speedup(w, 4)
	if s4 >= s8 {
		t.Fatalf("speedup should grow with processors: %v vs %v", s4, s8)
	}
	if got := m.Coverage(w); got < 0.89 || got > 0.92 {
		t.Fatalf("coverage = %v", got)
	}
}

func TestNoSpeedupWithoutParallelLoops(t *testing.T) {
	m := AlphaServer8400()
	w := Workload{Loops: []LoopWork{coarseLoop(false)}, SerialOps: 1000}
	if s := m.Speedup(w, 8); s != 1.0 {
		t.Fatalf("sequential workload speedup = %v", s)
	}
}

func TestFineGrainSuppression(t *testing.T) {
	// A tiny parallel loop costs more to spawn than to run: the model
	// suppresses it (§4.5), so time does not regress.
	m := AlphaServer8400()
	fine := LoopWork{ID: "f", Invocations: 10000, TotalOps: 200_000, Parallel: true}
	seq := m.LoopTime(LoopWork{ID: "f", Invocations: 10000, TotalOps: 200_000}, 1)
	par := m.LoopTime(fine, 8)
	if par > seq {
		t.Fatalf("fine-grain loop should be suppressed: %v > %v", par, seq)
	}
}

func TestCacheKneeAndContraction(t *testing.T) {
	// Fig 5-12's shape: a working set far beyond cache scales poorly;
	// contracting it restores scalability.
	m := SGIOrigin()
	big := Workload{Loops: []LoopWork{{
		ID: "flo", Invocations: 50, TotalOps: 400_000_000,
		Parallel: true, FootprintElems: 16_000_000, Streaming: true,
	}}, SerialOps: 8_000_000}
	small := Workload{Loops: []LoopWork{{
		ID: "flo", Invocations: 50, TotalOps: 360_000_000,
		Parallel: true, FootprintElems: 400_000, Streaming: true,
	}}, SerialOps: 8_000_000}
	sBig := m.Speedup(big, 32)
	sSmall := m.Speedup(small, 32)
	if sSmall <= sBig {
		t.Fatalf("contraction should improve scalability: %v vs %v", sSmall, sBig)
	}
	if sBig > 12 {
		t.Fatalf("uncontracted speedup should be memory-bound: %v", sBig)
	}
	if sSmall < 12 {
		t.Fatalf("contracted speedup should scale: %v", sSmall)
	}
}

func TestReductionFinalizationStrategies(t *testing.T) {
	m := SGIChallenge()
	serialized := LoopWork{
		ID: "r", Invocations: 100, TotalOps: 40_000_000, Parallel: true,
		ReductionElems: 2000,
	}
	staggered := serialized
	staggered.StaggeredFinalize = true
	ts := m.LoopTime(serialized, 4)
	tg := m.LoopTime(staggered, 4)
	if tg >= ts {
		t.Fatalf("staggered finalization should beat serialized: %v vs %v", tg, ts)
	}
	perUpdate := serialized
	perUpdate.PerUpdateLock = true
	perUpdate.Updates = 4_000_000
	tp := m.LoopTime(perUpdate, 4)
	// With few elements but many updates, per-update locking loses.
	if tp <= tg {
		t.Fatalf("per-update locks should lose with many updates: %v vs %v", tp, tg)
	}
}

func TestConflictingDecompositionPenalty(t *testing.T) {
	m := AlphaServer8400()
	clean := coarseLoop(true)
	dirty := clean
	dirty.ConflictingDecomp = true
	if m.LoopTime(dirty, 8) <= m.LoopTime(clean, 8) {
		t.Fatal("conflicting decomposition must cost time")
	}
}

func TestGranularity(t *testing.T) {
	m := AlphaServer8400()
	w := Workload{Loops: []LoopWork{coarseLoop(true)}}
	g := m.GranularityMs(w)
	if g <= 0 {
		t.Fatalf("granularity = %v", g)
	}
}
