package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"suifx/internal/driver"
)

// doJSON issues a bodyless request (GET/DELETE) and decodes the JSON reply.
func doJSON(t *testing.T, ts *httptest.Server, method, path string) (int, map[string]json.RawMessage) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &fields); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, data)
	}
	return resp.StatusCode, fields
}

func createSession(t *testing.T, ts *httptest.Server, body any) string {
	t.Helper()
	status, fields := postJSON(t, ts, "/v1/session", body)
	if status != http.StatusOK {
		t.Fatalf("session create: status %d (%v)", status, fields)
	}
	var id string
	if err := json.Unmarshal(fields["id"], &id); err != nil || id == "" {
		t.Fatalf("session create returned no id: %v", fields)
	}
	return id
}

// TestSessionRoutes walks the full dialogue over the wire: create → guru →
// rejected assert → accepted assert (incremental stats + re-ranked list) →
// why → slice → events → stats → delete.
func TestSessionRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts, map[string]any{"workload": "mdg"})

	status, fields := doJSON(t, ts, "GET", "/v1/session/"+id+"/guru")
	if status != http.StatusOK {
		t.Fatalf("guru: status %d (%v)", status, fields)
	}
	var targets []struct {
		Loop    string `json:"loop"`
		DynDeps int64  `json:"dyn_deps"`
	}
	if err := json.Unmarshal(fields["targets"], &targets); err != nil {
		t.Fatal(err)
	}
	hasInterf := false
	for _, tg := range targets {
		hasInterf = hasInterf || (tg.Loop == "INTERF/1000" && tg.DynDeps == 0)
	}
	if !hasInterf {
		t.Fatalf("guru targets %v missing INTERF/1000 with zero dynamic deps", targets)
	}

	// A contradicted-by-reality assertion is an in-band rejection (200).
	status, fields = postJSON(t, ts, "/v1/session/"+id+"/assert",
		map[string]any{"kind": "independent", "loop": "MDG/2000", "var": "VM"})
	if status != http.StatusOK {
		t.Fatalf("rejected assert: status %d (%v)", status, fields)
	}
	var accepted bool
	json.Unmarshal(fields["accepted"], &accepted)
	if accepted {
		t.Fatal("independent claim on a loop with observed dynamic deps was accepted")
	}

	// The paper's unlocking assertion.
	status, fields = postJSON(t, ts, "/v1/session/"+id+"/assert",
		map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"})
	if status != http.StatusOK {
		t.Fatalf("assert: status %d (%v)", status, fields)
	}
	json.Unmarshal(fields["accepted"], &accepted)
	if !accepted {
		t.Fatalf("private RL assertion rejected: %v", fields)
	}
	var re struct {
		Recomputed int      `json:"recomputed"`
		Reused     int      `json:"reused"`
		Procs      []string `json:"recomputed_procs"`
	}
	if err := json.Unmarshal(fields["reanalysis"], &re); err != nil {
		t.Fatal(err)
	}
	if re.Recomputed == 0 || re.Reused == 0 {
		t.Fatalf("reanalysis %+v is not incremental (want both recomputed and reused > 0)", re)
	}

	status, fields = doJSON(t, ts, "GET", "/v1/session/"+id+"/why?loop=MDG/2000")
	if status != http.StatusOK {
		t.Fatalf("why: status %d (%v)", status, fields)
	}
	if _, ok := fields["verdict"]; !ok {
		t.Fatalf("why response has no verdict: %v", fields)
	}

	status, fields = postJSON(t, ts, "/v1/session/"+id+"/slice",
		map[string]any{"kind": "program", "proc": "INTERF", "var": "RL", "line": 37})
	if status != http.StatusOK {
		t.Fatalf("slice: status %d (%v)", status, fields)
	}
	var procs map[string][]int
	if err := json.Unmarshal(fields["procs"], &procs); err != nil || len(procs) == 0 {
		t.Fatalf("slice returned no lines: %v", fields)
	}

	status, fields = doJSON(t, ts, "GET", "/v1/session/"+id+"/events")
	if status != http.StatusOK {
		t.Fatalf("events: status %d", status)
	}
	var events []struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(fields["events"], &events); err != nil || len(events) < 4 {
		t.Fatalf("event log too short: %v", fields)
	}

	_, sr := getStats(t, ts)
	if sr.Sessions.Live != 1 || sr.Sessions.AssertsAccepted != 1 || sr.Sessions.AssertsRejected != 1 {
		t.Fatalf("session stats = %+v, want 1 live / 1 accepted / 1 rejected", sr.Sessions)
	}
	if sr.Sessions.SummariesReused == 0 {
		t.Fatal("session stats report no reused summaries after an incremental step")
	}

	if status, _ := doJSON(t, ts, "DELETE", "/v1/session/"+id); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	if status, _ := doJSON(t, ts, "GET", "/v1/session/"+id); status != http.StatusNotFound {
		t.Fatalf("deleted session still resolves: status %d", status)
	}
}

// TestSessionEndpointErrors extends the uniform-envelope contract to the
// session routes and the router itself: every error path — including the
// mux's built-in 404/405 — must return the {"error", "status"} JSON
// envelope with the right code.
func TestSessionEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts, map[string]any{"workload": "mdg"})

	cases := []struct {
		name   string
		method string
		path   string
		body   any // nil = bodyless request
		want   int
	}{
		{"unknown route", "GET", "/v1/nope", nil, http.StatusNotFound},
		{"wrong method on analyze", "GET", "/v1/analyze", nil, http.StatusMethodNotAllowed},
		{"wrong method on session", "PUT", "/v1/session/" + id, nil, http.StatusMethodNotAllowed},
		{"create malformed JSON", "POST", "/v1/session", `{"workload":`, http.StatusBadRequest},
		{"create no source", "POST", "/v1/session", map[string]any{}, http.StatusBadRequest},
		{"create unknown workload", "POST", "/v1/session", map[string]any{"workload": "no-such"}, http.StatusNotFound},
		{"create unparsable source", "POST", "/v1/session", map[string]any{"source": "NOT MINIF(("}, http.StatusUnprocessableEntity},
		{"guru unknown session", "GET", "/v1/session/deadbeef00000000/guru", nil, http.StatusNotFound},
		{"info unknown session", "GET", "/v1/session/deadbeef00000000", nil, http.StatusNotFound},
		{"delete unknown session", "DELETE", "/v1/session/deadbeef00000000", nil, http.StatusNotFound},
		{"assert unknown session", "POST", "/v1/session/deadbeef00000000/assert",
			map[string]any{"kind": "private", "loop": "X/1", "var": "A"}, http.StatusNotFound},
		{"assert bad kind", "POST", "/v1/session/" + id + "/assert",
			map[string]any{"kind": "sideways", "loop": "INTERF/1000", "var": "RL"}, http.StatusBadRequest},
		{"assert missing fields", "POST", "/v1/session/" + id + "/assert",
			map[string]any{"kind": "private"}, http.StatusBadRequest},
		{"why missing loop", "GET", "/v1/session/" + id + "/why", nil, http.StatusBadRequest},
		{"why unknown loop", "GET", "/v1/session/" + id + "/why?loop=NOPE/9", nil, http.StatusNotFound},
		{"slice bad kind", "POST", "/v1/session/" + id + "/slice",
			map[string]any{"kind": "sideways", "proc": "INTERF", "line": 37}, http.StatusBadRequest},
		{"slice missing var", "POST", "/v1/session/" + id + "/slice",
			map[string]any{"kind": "program", "proc": "INTERF", "line": 37}, http.StatusBadRequest},
		{"slice no hit", "POST", "/v1/session/" + id + "/slice",
			map[string]any{"kind": "program", "proc": "INTERF", "var": "RL", "line": 2}, http.StatusNotFound},
		{"events bad after", "GET", "/v1/session/" + id + "/events?after=x", nil, http.StatusBadRequest},
		{"wrong method on batch", "GET", "/v1/batch", nil, http.StatusMethodNotAllowed},
		{"batch malformed JSON", "POST", "/v1/batch", `{"items":`, http.StatusBadRequest},
		{"batch empty manifest", "POST", "/v1/batch", map[string]any{}, http.StatusBadRequest},
		{"batch unknown ladder", "POST", "/v1/batch", map[string]any{"ladder": "sideways"}, http.StatusBadRequest},
		{"batch ambiguous item", "POST", "/v1/batch",
			map[string]any{"items": []map[string]any{{"name": "x", "workload": "mdg", "tier": "1k"}}}, http.StatusBadRequest},
		{"batch unknown workload item", "POST", "/v1/batch",
			map[string]any{"items": []map[string]any{{"workload": "no-such"}}}, http.StatusNotFound},
		{"batch unknown tier item", "POST", "/v1/batch",
			map[string]any{"items": []map[string]any{{"tier": "no-such"}}}, http.StatusNotFound},
		{"wrong method on drain", "GET", "/v1/drain", nil, http.StatusMethodNotAllowed},
		{"drain malformed JSON", "POST", "/v1/drain", `[`, http.StatusBadRequest},
		{"drain empty ids", "POST", "/v1/drain", map[string]any{}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var fields map[string]json.RawMessage
			if tc.body == nil {
				status, fields = doJSON(t, ts, tc.method, tc.path)
			} else {
				status, fields = postJSON(t, ts, tc.path, tc.body)
			}
			if status != tc.want {
				t.Fatalf("status = %d, want %d (body %v)", status, tc.want, fields)
			}
			if _, ok := fields["error"]; !ok {
				t.Fatalf("error response is not the JSON envelope: %v", fields)
			}
			var envStatus int
			if err := json.Unmarshal(fields["status"], &envStatus); err != nil || envStatus != tc.want {
				t.Fatalf("envelope status = %v, want %d", fields["status"], tc.want)
			}
		})
	}
}

// TestSessionConcurrent is the acceptance concurrency suite: 16 parallel
// sessions over the same program, each interleaving assert/guru/slice/why,
// then TTL eviction and shutdown with a goroutine-leak assertion. Run under
// -race in CI.
func TestSessionConcurrent(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cache := driver.NewCache()
	// The TTL must be long enough that a session never idles it out between
	// two requests of its own dialogue (16 racing workers on a loaded CI
	// box), yet short enough that the post-dialogue eviction phase is quick.
	srv, ts := newTestServer(t, Config{
		Cache:         cache,
		MaxConcurrent: 64,
		SessionTTL:    3 * time.Second,
		SessionSweep:  50 * time.Millisecond,
	})

	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions*8)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("worker %d: "+format, append([]any{i}, args...)...)
			}
			id := ""
			{
				body, _ := json.Marshal(map[string]any{"workload": "mdg"})
				resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
				if err != nil {
					fail("create: %v", err)
					return
				}
				var created struct {
					ID string `json:"id"`
				}
				err = json.NewDecoder(resp.Body).Decode(&created)
				resp.Body.Close()
				if err != nil || created.ID == "" {
					fail("create decode: %v", err)
					return
				}
				id = created.ID
			}
			do := func(method, path string, reqBody any, wantStatus int) []byte {
				var rd io.Reader
				if reqBody != nil {
					b, _ := json.Marshal(reqBody)
					rd = bytes.NewReader(b)
				}
				req, _ := http.NewRequest(method, ts.URL+path, rd)
				resp, err := ts.Client().Do(req)
				if err != nil {
					fail("%s %s: %v", method, path, err)
					return nil
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != wantStatus {
					fail("%s %s: status %d, want %d (%s)", method, path, resp.StatusCode, wantStatus, data)
					return nil
				}
				return data
			}
			for round := 0; round < 3; round++ {
				do("GET", "/v1/session/"+id+"/guru", nil, http.StatusOK)
				do("GET", "/v1/session/"+id+"/why?loop=INTERF/1000", nil, http.StatusOK)
				do("POST", "/v1/session/"+id+"/slice",
					map[string]any{"kind": "program", "proc": "INTERF", "var": "RL", "line": 37}, http.StatusOK)
				data := do("POST", "/v1/session/"+id+"/assert",
					map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"}, http.StatusOK)
				if data != nil {
					var out struct {
						Accepted bool `json:"accepted"`
					}
					if json.Unmarshal(data, &out) != nil || !out.Accepted {
						fail("assert round %d not accepted: %s", round, data)
					}
				}
				// Interleave a rejection path too.
				do("POST", "/v1/session/"+id+"/assert",
					map[string]any{"kind": "independent", "loop": "INTERF/1000", "var": "NOSUCH"}, http.StatusOK)
			}
			if i%2 == 0 {
				do("DELETE", "/v1/session/"+id, nil, http.StatusOK)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// One shared cache analysis served all 16 sessions.
	if st := cache.Stats(); st.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (sessions must share the analysis)", st.Misses)
	}

	// The janitor TTL-evicts the undeleted half.
	deadline := time.Now().Add(20 * time.Second)
	for srv.Sessions().Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions still live past the idle TTL", srv.Sessions().Len())
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := srv.Sessions().Stats()
	if st.Created != sessions || st.Deleted != sessions/2 || st.EvictedIdle != sessions/2 {
		t.Fatalf("session stats = %+v, want %d created, %d deleted, %d idle-evicted",
			st, sessions, sessions/2, sessions/2)
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	srv.Close()
	settleGoroutines(t, baseline)
}
