package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	"suifx/internal/explorer"
	"suifx/internal/session"
)

// --- POST /v1/session ---

// SessionCreateRequest opens an interactive session over one program. The
// expensive parts — parsing, interprocedural analysis (through the shared
// cache), one profiling run — happen once here; every later interaction on
// the session is incremental.
type SessionCreateRequest struct {
	SourceRef
	// Workers overrides the analysis worker pool size for this session.
	Workers int `json:"workers,omitempty"`
	// NoReductions / NoLiveness disable the corresponding analyses.
	NoReductions bool `json:"no_reductions,omitempty"`
	NoLiveness   bool `json:"no_liveness,omitempty"`
	// MaxOps bounds the profiling run (default 200M virtual operations).
	MaxOps int64 `json:"max_ops,omitempty"`
	// ID pins the session id instead of letting the worker generate one —
	// the cluster coordinator assigns ids up front so the hash ring can
	// route them. A live duplicate is a 409.
	ID string `json:"id,omitempty"`
	// Resume replays a drained peer session's accepted-assertion script after
	// creation (the drain/handoff protocol). Requires ID.
	Resume []session.AssertRecord `json:"resume,omitempty"`
}

// SessionCreateResponse returns the new session and its initial Guru view.
type SessionCreateResponse struct {
	ID   string              `json:"id"`
	Info session.Info        `json:"info"`
	Guru *session.GuruReport `json:"guru"`
}

func (s *Server) handleSessionCreate(ctx context.Context, r *http.Request) (any, error) {
	var req SessionCreateRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	name, src, err := req.SourceRef.resolve()
	if err != nil {
		return nil, err
	}
	if err := validateSessionID(req.ID); err != nil {
		return nil, err
	}
	opts := session.Options{
		NoReductions: req.NoReductions,
		NoLiveness:   req.NoLiveness,
		MaxOps:       req.MaxOps,
		Workers:      req.Workers,
		ID:           req.ID,
	}
	var sess *session.Session
	if len(req.Resume) > 0 {
		if req.ID == "" {
			return nil, errf(http.StatusBadRequest, `"resume" requires "id"`)
		}
		sess, err = s.sessions.Import(ctx, session.Export{
			ID:           req.ID,
			Name:         name,
			Source:       src,
			NoReductions: req.NoReductions,
			NoLiveness:   req.NoLiveness,
			MaxOps:       req.MaxOps,
			Workers:      req.Workers,
			Asserts:      req.Resume,
		})
	} else {
		sess, err = s.sessions.Create(ctx, name, src, opts)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil, err
		case errors.Is(err, session.ErrDuplicateID):
			return nil, errf(http.StatusConflict, "%v", err)
		}
		return nil, errf(http.StatusUnprocessableEntity, "%v", err)
	}
	return &SessionCreateResponse{ID: sess.ID(), Info: sess.Info(), Guru: sess.Guru()}, nil
}

// validateSessionID bounds client-pinned ids: they travel in URL paths, so
// keep them short and unambiguous.
func validateSessionID(id string) error {
	if id == "" {
		return nil
	}
	if len(id) > 64 {
		return errf(http.StatusBadRequest, "session id longer than 64 bytes")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return errf(http.StatusBadRequest, "session id %q: only [A-Za-z0-9_-] allowed", id)
		}
	}
	return nil
}

// session resolves the {id} path segment to a live session or a 404.
func (s *Server) session(r *http.Request) (*session.Session, error) {
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown session %q (expired or never created)", id)
	}
	return sess, nil
}

// --- GET /v1/session/{id} ---

func (s *Server) handleSessionGet(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	return sess.Info(), nil
}

// --- DELETE /v1/session/{id} ---

func (s *Server) handleSessionDelete(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		return nil, errf(http.StatusNotFound, "unknown session %q (expired or never created)", id)
	}
	return map[string]any{"deleted": id}, nil
}

// --- GET /v1/session/{id}/guru ---

func (s *Server) handleSessionGuru(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	return sess.Guru(), nil
}

// --- POST /v1/session/{id}/assert ---

// SessionAssertRequest is one user assertion (§2.8).
type SessionAssertRequest struct {
	// Kind is "private" or "independent".
	Kind string `json:"kind"`
	// Loop is the "PROC/LABEL" loop identifier from the Guru list.
	Loop string `json:"loop"`
	// Var names the asserted variable.
	Var string `json:"var"`
}

func (s *Server) handleSessionAssert(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	var req SessionAssertRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Loop == "" || req.Var == "" {
		return nil, errf(http.StatusBadRequest, `assert needs "loop" and "var"`)
	}
	// Checker rejections (unknown loop, unknown variable, contradicted by
	// the dynamic dependence analyzer) are domain outcomes: the request
	// succeeded, the assertion did not. Only a malformed kind is the
	// client's transport-level fault.
	out, err := sess.Assert(req.Kind, req.Loop, req.Var)
	if err != nil {
		if errors.Is(err, session.ErrBadAssertKind) {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		return nil, err
	}
	return out, nil
}

// --- POST /v1/session/{id}/slice ---

// SessionSliceRequest anchors a slice in the session's program.
type SessionSliceRequest struct {
	Proc string `json:"proc"`
	Line int    `json:"line"`
	Var  string `json:"var,omitempty"`
	Kind string `json:"kind,omitempty"`
}

func (s *Server) handleSessionSlice(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	var req SessionSliceRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Proc == "" || req.Line <= 0 {
		return nil, errf(http.StatusBadRequest, `slice needs "proc" and a positive "line"`)
	}
	rep, err := sess.Slice(req.Kind, req.Proc, req.Var, req.Line)
	if err != nil {
		return nil, sliceErr(err)
	}
	return rep, nil
}

// --- GET /v1/session/{id}/why?loop=PROC/LABEL ---

func (s *Server) handleSessionWhy(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	loop := r.URL.Query().Get("loop")
	if loop == "" {
		return nil, errf(http.StatusBadRequest, `why needs a "loop" query parameter`)
	}
	rep, err := sess.Why(loop)
	if err != nil {
		var rej *explorer.RejectError
		if errors.As(err, &rej) {
			return nil, errf(http.StatusNotFound, "%s", rej.Reason)
		}
		return nil, err
	}
	return rep, nil
}

// --- GET /v1/session/{id}/events?after=N ---

func (s *Server) handleSessionEvents(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	after := int64(0)
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			return nil, errf(http.StatusBadRequest, `"after" must be an integer sequence number`)
		}
		after = n
	}
	return map[string]any{"events": sess.Events(after)}, nil
}
