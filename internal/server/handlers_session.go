package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	"suifx/internal/explorer"
	"suifx/internal/session"
)

// --- POST /v1/session ---

// SessionCreateRequest opens an interactive session over one program. The
// expensive parts — parsing, interprocedural analysis (through the shared
// cache), one profiling run — happen once here; every later interaction on
// the session is incremental.
type SessionCreateRequest struct {
	SourceRef
	// Workers overrides the analysis worker pool size for this session.
	Workers int `json:"workers,omitempty"`
	// NoReductions / NoLiveness disable the corresponding analyses.
	NoReductions bool `json:"no_reductions,omitempty"`
	NoLiveness   bool `json:"no_liveness,omitempty"`
	// MaxOps bounds the profiling run (default 200M virtual operations).
	MaxOps int64 `json:"max_ops,omitempty"`
}

// SessionCreateResponse returns the new session and its initial Guru view.
type SessionCreateResponse struct {
	ID   string              `json:"id"`
	Info session.Info        `json:"info"`
	Guru *session.GuruReport `json:"guru"`
}

func (s *Server) handleSessionCreate(ctx context.Context, r *http.Request) (any, error) {
	var req SessionCreateRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	name, src, err := req.SourceRef.resolve()
	if err != nil {
		return nil, err
	}
	sess, err := s.sessions.Create(ctx, name, src, session.Options{
		NoReductions: req.NoReductions,
		NoLiveness:   req.NoLiveness,
		MaxOps:       req.MaxOps,
		Workers:      req.Workers,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, errf(http.StatusUnprocessableEntity, "%v", err)
	}
	return &SessionCreateResponse{ID: sess.ID(), Info: sess.Info(), Guru: sess.Guru()}, nil
}

// session resolves the {id} path segment to a live session or a 404.
func (s *Server) session(r *http.Request) (*session.Session, error) {
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown session %q (expired or never created)", id)
	}
	return sess, nil
}

// --- GET /v1/session/{id} ---

func (s *Server) handleSessionGet(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	return sess.Info(), nil
}

// --- DELETE /v1/session/{id} ---

func (s *Server) handleSessionDelete(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		return nil, errf(http.StatusNotFound, "unknown session %q (expired or never created)", id)
	}
	return map[string]any{"deleted": id}, nil
}

// --- GET /v1/session/{id}/guru ---

func (s *Server) handleSessionGuru(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	return sess.Guru(), nil
}

// --- POST /v1/session/{id}/assert ---

// SessionAssertRequest is one user assertion (§2.8).
type SessionAssertRequest struct {
	// Kind is "private" or "independent".
	Kind string `json:"kind"`
	// Loop is the "PROC/LABEL" loop identifier from the Guru list.
	Loop string `json:"loop"`
	// Var names the asserted variable.
	Var string `json:"var"`
}

func (s *Server) handleSessionAssert(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	var req SessionAssertRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Loop == "" || req.Var == "" {
		return nil, errf(http.StatusBadRequest, `assert needs "loop" and "var"`)
	}
	// Checker rejections (unknown loop, unknown variable, contradicted by
	// the dynamic dependence analyzer) are domain outcomes: the request
	// succeeded, the assertion did not. Only a malformed kind is the
	// client's transport-level fault.
	out, err := sess.Assert(req.Kind, req.Loop, req.Var)
	if err != nil {
		if errors.Is(err, session.ErrBadAssertKind) {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		return nil, err
	}
	return out, nil
}

// --- POST /v1/session/{id}/slice ---

// SessionSliceRequest anchors a slice in the session's program.
type SessionSliceRequest struct {
	Proc string `json:"proc"`
	Line int    `json:"line"`
	Var  string `json:"var,omitempty"`
	Kind string `json:"kind,omitempty"`
}

func (s *Server) handleSessionSlice(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	var req SessionSliceRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Proc == "" || req.Line <= 0 {
		return nil, errf(http.StatusBadRequest, `slice needs "proc" and a positive "line"`)
	}
	rep, err := sess.Slice(req.Kind, req.Proc, req.Var, req.Line)
	if err != nil {
		return nil, sliceErr(err)
	}
	return rep, nil
}

// --- GET /v1/session/{id}/why?loop=PROC/LABEL ---

func (s *Server) handleSessionWhy(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	loop := r.URL.Query().Get("loop")
	if loop == "" {
		return nil, errf(http.StatusBadRequest, `why needs a "loop" query parameter`)
	}
	rep, err := sess.Why(loop)
	if err != nil {
		var rej *explorer.RejectError
		if errors.As(err, &rej) {
			return nil, errf(http.StatusNotFound, "%s", rej.Reason)
		}
		return nil, err
	}
	return rep, nil
}

// --- GET /v1/session/{id}/events?after=N ---

func (s *Server) handleSessionEvents(ctx context.Context, r *http.Request) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	after := int64(0)
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			return nil, errf(http.StatusBadRequest, `"after" must be an integer sequence number`)
		}
		after = n
	}
	return map[string]any{"events": sess.Events(after)}, nil
}
