package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"suifx/internal/corpus"
)

// --- POST /v1/batch ---

// DefaultBatchParallelism bounds per-batch concurrent analyses when the
// request doesn't say.
const DefaultBatchParallelism = 4

// MaxBatchParallelism caps the request's parallelism knob.
const MaxBatchParallelism = 32

// BatchRequest runs a corpus manifest — any mix of built-in workloads,
// frozen ladder tiers, (seed, config) factory programs, and inline sources —
// through the full analysis, streaming one NDJSON record per program plus a
// trailer with partial-failure accounting. Against a coordinator the items
// fan out across the cluster; against a single worker they run locally under
// the same wire contract.
type BatchRequest struct {
	// Ladder expands to its tier items ("quick", "size", "full"), prepended
	// to Items.
	Ladder string             `json:"ladder,omitempty"`
	Items  []corpus.BatchItem `json:"items,omitempty"`
	// Parallelism bounds concurrently analyzed items (default 4, max 32).
	Parallelism int `json:"parallelism,omitempty"`
	// Workers / NoReductions / Liveness are per-item analyze knobs, as in
	// AnalyzeRequest.
	Workers      int  `json:"workers,omitempty"`
	NoReductions bool `json:"no_reductions,omitempty"`
	Liveness     bool `json:"liveness,omitempty"`
}

// BatchItemResult is one stream record. Every field is deterministic for a
// given (program, knobs) pair — timings and shard placement deliberately stay
// out, so a single worker and a cluster produce byte-identical streams.
// ResultSHA256 fingerprints the canonicalized AnalyzeResponse (ElapsedMs
// zeroed), letting clients diff runs without shipping full results.
type BatchItemResult struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Status string `json:"status"` // "ok" or "error"
	// HTTPStatus / Error report a per-item failure (the batch keeps going).
	HTTPStatus    int    `json:"http_status,omitempty"`
	Error         string `json:"error,omitempty"`
	SourceHash    string `json:"source_hash,omitempty"`
	Lines         int    `json:"lines,omitempty"`
	Loops         int    `json:"loops,omitempty"`
	ParallelLoops int    `json:"parallel_loops,omitempty"`
	ResultSHA256  string `json:"result_sha256,omitempty"`
}

// BatchSummary is the stream trailer.
type BatchSummary struct {
	Done   bool `json:"done"`
	Total  int  `json:"total"`
	OK     int  `json:"ok"`
	Failed int  `json:"failed"`
}

// BatchProgram is a fully resolved batch item (exported for the cluster
// coordinator, which resolves manifests for shard keying).
type BatchProgram struct {
	Name   string
	Source string
	Lines  int
}

// ResolveBatch resolves every item before any analysis runs, so manifest
// errors (unknown workload, unknown tier, ambiguous item) are a single
// enveloped error response instead of a half-streamed batch.
func ResolveBatch(items []corpus.BatchItem) ([]BatchProgram, error) {
	out := make([]BatchProgram, len(items))
	for i, it := range items {
		var name, src string
		var err error
		switch it.Kind() {
		case "workload":
			name, src, err = SourceRef{Workload: it.Workload}.resolve()
			if err == nil && it.Name != "" {
				name = it.Name
			}
		case "source":
			name, src = it.Name, it.Source
			if name == "" {
				name = "item-" + strconv.Itoa(i)
			}
		default:
			name, src, err = it.Resolve()
			if err != nil {
				err = errf(http.StatusNotFound, "item %d: %v", i, err)
			}
		}
		if err != nil {
			return nil, err
		}
		out[i] = BatchProgram{Name: name, Source: src, Lines: strings.Count(src, "\n")}
	}
	return out, nil
}

func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req BatchRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return err
	}
	items, err := corpus.NormalizeBatch(req.Ladder, req.Items)
	if err != nil {
		return errf(http.StatusBadRequest, "%v", err)
	}
	resolved, err := ResolveBatch(items)
	if err != nil {
		return err
	}

	par := req.Parallelism
	switch {
	case par <= 0:
		par = DefaultBatchParallelism
	case par > MaxBatchParallelism:
		par = MaxBatchParallelism
	}
	if par > len(resolved) {
		par = len(resolved)
	}

	// Items run on a bounded worker pool; records stream strictly in input
	// order (done[i] gates the emit loop) so the byte stream is deterministic
	// regardless of completion order.
	n := len(resolved)
	recs := make([]*BatchItemResult, n)
	done := make([]chan struct{}, n)
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		done[i] = make(chan struct{})
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				recs[i] = s.batchOne(ctx, i, resolved[i], req)
				close(done[i])
			}
		}()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := BatchSummary{Done: true, Total: n}
	for i := 0; i < n; i++ {
		<-done[i]
		if recs[i].Status == "ok" {
			sum.OK++
		} else {
			sum.Failed++
		}
		_ = enc.Encode(recs[i])
		if fl != nil {
			fl.Flush()
		}
	}
	wg.Wait()
	_ = enc.Encode(sum)
	if fl != nil {
		fl.Flush()
	}
	return nil
}

// batchOne analyzes one resolved item. Failures (parse errors, per-item
// timeouts) become error records — the batch's partial-failure accounting —
// never a dropped stream.
func (s *Server) batchOne(ctx context.Context, i int, p BatchProgram, req BatchRequest) *BatchItemResult {
	rec := &BatchItemResult{Index: i, Name: p.Name, Lines: p.Lines}
	fail := func(err error) *BatchItemResult {
		rec.Status = "error"
		rec.HTTPStatus = statusOf(err)
		rec.Error = err.Error()
		return rec
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	ictx := ctx
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ictx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	resp, err := s.analyzeResponse(ictx, SourceRef{Name: p.Name, Source: p.Source},
		req.Workers, req.NoReductions, req.Liveness)
	if err != nil {
		return fail(err)
	}
	// Canonical fingerprint: ElapsedMs is the lone nondeterministic field;
	// zero it, then hash the stable encoding (encoding/json sorts map keys).
	resp.ElapsedMs = 0
	canon, err := json.Marshal(resp)
	if err != nil {
		return fail(err)
	}
	h := sha256.Sum256(canon)
	rec.Status = "ok"
	rec.SourceHash = resp.SourceHash
	rec.Loops = resp.Stats.TotalLoops
	rec.ParallelLoops = resp.Stats.ChosenN
	rec.ResultSHA256 = hex.EncodeToString(h[:])
	return rec
}
