package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/session"
)

// postNDJSON posts a batch request and returns the status plus the raw NDJSON
// lines (records then trailer).
func postNDJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, []string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return resp.StatusCode, lines
}

// TestServerBatchStream: a mixed manifest streams one ok record per item, in
// input order, with a correct trailer — and the byte stream is deterministic
// across runs (the fingerprint the cluster equivalence tests build on).
func TestServerBatchStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"items": []map[string]any{
		{"workload": "mdg"},
		{"name": "inline", "source": "      PROGRAM t\n      INTEGER i\n      REAL a(10)\n      DO 10 i = 1, 10\n        a(i) = 0.0\n10    CONTINUE\n      END\n"},
	}}

	var runs [][]string
	for run := 0; run < 2; run++ {
		status, lines := postNDJSON(t, ts, "/v1/batch", req)
		if status != http.StatusOK {
			t.Fatalf("status = %d: %v", status, lines)
		}
		if len(lines) != 3 {
			t.Fatalf("got %d NDJSON lines, want 2 records + trailer: %v", len(lines), lines)
		}
		runs = append(runs, lines)
	}
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Fatalf("batch stream not deterministic at line %d:\n%s\n%s", i, runs[0][i], runs[1][i])
		}
	}

	var recs [2]BatchItemResult
	for i := 0; i < 2; i++ {
		if err := json.Unmarshal([]byte(runs[0][i]), &recs[i]); err != nil {
			t.Fatal(err)
		}
		if recs[i].Index != i || recs[i].Status != "ok" {
			t.Fatalf("record %d = %+v, want ok at index %d", i, recs[i], i)
		}
		if recs[i].ResultSHA256 == "" || recs[i].SourceHash == "" || recs[i].Loops <= 0 {
			t.Fatalf("record %d missing fingerprint fields: %+v", i, recs[i])
		}
	}
	if recs[0].Name != "mdg" || recs[1].Name != "inline" {
		t.Fatalf("records out of input order: %q, %q", recs[0].Name, recs[1].Name)
	}
	var sum BatchSummary
	if err := json.Unmarshal([]byte(runs[0][2]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Total != 2 || sum.OK != 2 || sum.Failed != 0 {
		t.Fatalf("trailer = %+v, want done/2/2/0", sum)
	}
}

// TestServerBatchLadder: a ladder name expands server-side; every tier
// analyzes ok.
func TestServerBatchLadder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, lines := postNDJSON(t, ts, "/v1/batch", map[string]any{"ladder": "quick"})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, lines)
	}
	want := len(corpus.QuickLadder())
	if len(lines) != want+1 {
		t.Fatalf("got %d lines, want %d records + trailer", len(lines), want)
	}
	var sum BatchSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.OK != want || sum.Failed != 0 {
		t.Fatalf("trailer = %+v, want %d ok", sum, want)
	}
}

// TestServerBatchPartialFailure: a bad item becomes an error record with the
// per-item status; the stream keeps going and the trailer accounts for it.
func TestServerBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, lines := postNDJSON(t, ts, "/v1/batch", map[string]any{"items": []map[string]any{
		{"name": "bad", "source": "THIS IS NOT MINIF(("},
		{"workload": "mdg"},
	}})
	if status != http.StatusOK {
		t.Fatalf("status = %d (partial failures must not fail the stream)", status)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	var bad, good BatchItemResult
	json.Unmarshal([]byte(lines[0]), &bad)
	json.Unmarshal([]byte(lines[1]), &good)
	if bad.Status != "error" || bad.HTTPStatus != http.StatusUnprocessableEntity || bad.Error == "" {
		t.Fatalf("bad record = %+v, want error/422", bad)
	}
	if good.Status != "ok" {
		t.Fatalf("good record after the failure = %+v", good)
	}
	var sum BatchSummary
	json.Unmarshal([]byte(lines[2]), &sum)
	if sum.Total != 2 || sum.OK != 1 || sum.Failed != 1 {
		t.Fatalf("trailer = %+v, want 2/1/1", sum)
	}
}

// TestServerDrainRoundTrip is the handoff protocol end to end on the worker
// layer: create + assert on server A, drain, replay the export on server B
// via the pinned-id resume create, and check the dialogue state survived.
func TestServerDrainRoundTrip(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	_, tsB := newTestServer(t, Config{})

	id := createSession(t, tsA, map[string]any{"workload": "mdg"})
	status, fields := postJSON(t, tsA, "/v1/session/"+id+"/assert",
		map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"})
	if status != http.StatusOK {
		t.Fatalf("assert: status %d (%v)", status, fields)
	}
	_, guruBefore := doJSON(t, tsA, "GET", "/v1/session/"+id+"/guru")

	// Drain from A: the export carries source + options + the accepted script.
	status, fields = postJSON(t, tsA, "/v1/drain", map[string]any{"ids": []string{id, "no-such-id"}})
	if status != http.StatusOK {
		t.Fatalf("drain: status %d (%v)", status, fields)
	}
	var dr DrainResponse
	raw, _ := json.Marshal(fields)
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Sessions) != 1 || len(dr.Missing) != 1 || dr.Missing[0] != "no-such-id" {
		t.Fatalf("drain response = %+v, want 1 export + 1 missing", dr)
	}
	ex := dr.Sessions[0]
	if ex.ID != id || ex.Source == "" || len(ex.Asserts) != 1 ||
		ex.Asserts[0] != (session.AssertRecord{Kind: "private", Loop: "INTERF/1000", Var: "RL"}) {
		t.Fatalf("export = %+v, want the accepted assert script", ex)
	}
	// The session is gone from A.
	if status, _ := doJSON(t, tsA, "GET", "/v1/session/"+id); status != http.StatusNotFound {
		t.Fatalf("drained session still live on A: status %d", status)
	}

	// Replay on B under the original id.
	status, fields = postJSON(t, tsB, "/v1/session", map[string]any{
		"name": ex.Name, "source": ex.Source, "id": ex.ID,
		"resume": ex.Asserts, "workers": ex.Workers, "max_ops": ex.MaxOps,
		"no_reductions": ex.NoReductions, "no_liveness": ex.NoLiveness,
	})
	if status != http.StatusOK {
		t.Fatalf("resume create on B: status %d (%v)", status, fields)
	}
	var newID string
	json.Unmarshal(fields["id"], &newID)
	if newID != id {
		t.Fatalf("imported session id = %q, want pinned %q", newID, id)
	}
	_, guruAfter := doJSON(t, tsB, "GET", "/v1/session/"+id+"/guru")
	for _, k := range []string{"coverage", "granularity_ms", "targets"} {
		if string(guruBefore[k]) != string(guruAfter[k]) {
			t.Fatalf("guru %q diverged across the handoff:\nA: %s\nB: %s",
				k, guruBefore[k], guruAfter[k])
		}
	}

	// A duplicate pinned id is a 409; a malformed one a 400.
	status, _ = postJSON(t, tsB, "/v1/session", map[string]any{"workload": "mdg", "id": id})
	if status != http.StatusConflict {
		t.Fatalf("duplicate pinned id: status %d, want 409", status)
	}
	status, _ = postJSON(t, tsB, "/v1/session", map[string]any{"workload": "mdg", "id": "no spaces!"})
	if status != http.StatusBadRequest {
		t.Fatalf("malformed pinned id: status %d, want 400", status)
	}
	// Resume without an id is a 400.
	status, _ = postJSON(t, tsB, "/v1/session", map[string]any{
		"workload": "mdg", "resume": []map[string]any{{"kind": "private", "loop": "X/1", "var": "A"}}})
	if status != http.StatusBadRequest {
		t.Fatalf("resume without id: status %d, want 400", status)
	}
}

// TestServerDrainAll: "all": true retires every live session and reports the
// drain in the manager counters.
func TestServerDrainAll(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	createSession(t, ts, map[string]any{"workload": "mdg"})
	createSession(t, ts, map[string]any{"workload": "mdg"})

	status, fields := postJSON(t, ts, "/v1/drain", map[string]any{"all": true})
	if status != http.StatusOK {
		t.Fatalf("drain all: status %d (%v)", status, fields)
	}
	var dr DrainResponse
	raw, _ := json.Marshal(fields)
	json.Unmarshal(raw, &dr)
	if len(dr.Sessions) != 2 || len(dr.Missing) != 0 {
		t.Fatalf("drain all = %d exports + %d missing, want 2 + 0", len(dr.Sessions), len(dr.Missing))
	}
	if srv.Sessions().Len() != 0 {
		t.Fatalf("%d sessions survive a drain-all", srv.Sessions().Len())
	}
	if st := srv.Sessions().Stats(); st.Drained != 2 {
		t.Fatalf("drained counter = %d, want 2", st.Drained)
	}
}
