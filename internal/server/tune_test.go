package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"suifx/internal/tune"
)

// tuneSlowSource is a program whose tuning sweep takes whole seconds: a hot
// elementwise nest executed many times, so each of the sweep's ~36 plan runs
// costs millions of virtual ops — room for cancellation and timeout tests to
// land mid-search.
const tuneSlowSource = `
      PROGRAM slow
      REAL a(4096)
      INTEGER i, j
      DO 10 j = 1, 1200
        DO 5 i = 1, 4096
          a(i) = a(i) + 0.5
5       CONTINUE
10    CONTINUE
      END
`

// TestTuneEndpoint is the happy path: a workload search returns the full
// report, the per-endpoint metrics count it, and the package counters in
// /v1/stats advance.
func TestTuneEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := tune.ReadCounters()
	status, fields := postJSON(t, ts, "/v1/tune", map[string]any{"workload": "chain"})
	if status != http.StatusOK {
		t.Fatalf("status = %d (%v)", status, fields)
	}
	var rep tune.Report
	// The response embeds the report fields at the top level.
	raw, _ := json.Marshal(fields)
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) == 0 {
		t.Fatal("no tuned loops in response")
	}
	if rep.Speedup < 1 {
		t.Errorf("speedup %.3f < 1", rep.Speedup)
	}
	if rep.BudgetExhausted {
		t.Error("unbudgeted search reported exhaustion")
	}
	stats, sr := getStats(t, ts)
	if stats != http.StatusOK {
		t.Fatalf("stats: %d", stats)
	}
	if ep := sr.Endpoints["tune"]; ep.Requests != 1 {
		t.Errorf("tune endpoint counted %d requests, want 1", ep.Requests)
	}
	if sr.Tune.Searches != before.Searches+1 {
		t.Errorf("tune searches %d -> %d, want +1", before.Searches, sr.Tune.Searches)
	}
	if sr.Tune.Runs <= before.Runs {
		t.Error("tune run counter did not advance")
	}
}

// TestTuneRepeatByteIdentical: the same request twice produces byte-identical
// responses — the determinism property observed end to end through HTTP.
func TestTuneRepeatByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"workload": "mdg", "workers": []int{1, 2, 4}, "max_depth": 1}
	post := func() []byte {
		data, _ := json.Marshal(req)
		resp, err := ts.Client().Post(ts.URL+"/v1/tune", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		return raw
	}
	a, b := post(), post()
	if !bytes.Equal(a, b) {
		t.Errorf("repeated /v1/tune responses differ:\n%s\n--\n%s", a, b)
	}
}

// TestTuneBudgetExhausted: a one-run budget returns a partial result flagged
// "budget_exhausted": true, still HTTP 200, with no nest worse than default.
func TestTuneBudgetExhausted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, fields := postJSON(t, ts, "/v1/tune", map[string]any{"workload": "mdg", "max_runs": 1})
	if status != http.StatusOK {
		t.Fatalf("status = %d (%v)", status, fields)
	}
	var exhausted bool
	if err := json.Unmarshal(fields["budget_exhausted"], &exhausted); err != nil || !exhausted {
		t.Fatalf("budget_exhausted = %s, want true", fields["budget_exhausted"])
	}
	var rep tune.Report
	raw, _ := json.Marshal(fields)
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	for _, lr := range rep.Loops {
		if lr.Speedup < 1 {
			t.Errorf("%s: budgeted speedup %.3f < 1", lr.ID, lr.Speedup)
		}
	}
}

// TestTuneErrors is the error contract: invalid knobs, machine, and mode are
// 422; unknown workloads 404; malformed JSON 400.
func TestTuneErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"malformed JSON", `{"workload":`, http.StatusBadRequest},
		{"unknown workload", map[string]any{"workload": "no-such"}, http.StatusNotFound},
		{"zero worker count", map[string]any{"workload": "mdg", "workers": []int{0}}, http.StatusUnprocessableEntity},
		{"duplicate workers", map[string]any{"workload": "mdg", "workers": []int{2, 2}}, http.StatusUnprocessableEntity},
		{"negative budget", map[string]any{"workload": "mdg", "max_runs": -1}, http.StatusUnprocessableEntity},
		{"absurd depth", map[string]any{"workload": "mdg", "max_depth": 99}, http.StatusUnprocessableEntity},
		{"unknown machine", map[string]any{"workload": "mdg", "machine": "cray"}, http.StatusUnprocessableEntity},
		{"unknown mode", map[string]any{"workload": "mdg", "mode": "quantum"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, fields := postJSON(t, ts, "/v1/tune", tc.body)
			if status != tc.want {
				t.Fatalf("status = %d, want %d (%v)", status, tc.want, fields)
			}
			if _, ok := fields["error"]; !ok {
				t.Fatalf("error response has no error field: %v", fields)
			}
		})
	}
}

// TestTuneTimeout504: a request timeout shorter than the sweep answers 504,
// the search abandons its remaining variants, and no goroutine leaks.
func TestTuneTimeout504(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, ts := newTestServer(t, Config{RequestTimeout: 150 * time.Millisecond})
	status, fields := postJSON(t, ts, "/v1/tune",
		map[string]any{"name": "slow.f", "source": tuneSlowSource})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", status, fields)
	}
	ts.Client().CloseIdleConnections()
	ts.Close()
	settleGoroutines(t, baseline)
}

// TestTuneCancelMidSearch: a client disconnect mid-sweep makes the search
// abandon its unstarted variants — the cancelled counter advances, far fewer
// runs execute than the full space needs, and the worker goroutine drains.
func TestTuneCancelMidSearch(t *testing.T) {
	baseline := runtime.NumGoroutine()
	before := tune.ReadCounters()
	_, ts := newTestServer(t, Config{})

	body, _ := json.Marshal(map[string]any{"name": "slow.f", "source": tuneSlowSource})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/tune", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			err = nil
		}
		done <- err
	}()
	// Let the sweep start (the baseline run alone takes tens of ms), then
	// hang up mid-search.
	time.Sleep(200 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request completed normally — sweep finished before the cancel landed")
	}

	// The search observes cancellation at its next run boundary; poll until
	// the counter reflects it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		after := tune.ReadCounters()
		if after.Cancelled >= before.Cancelled+1 {
			// The full sweep for this source needs ~37 runs; an abandoned
			// one must have stopped well short.
			if delta := after.Runs - before.Runs; delta >= 37 {
				t.Errorf("cancelled search still executed %d runs", delta)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled counter never advanced")
		}
		time.Sleep(20 * time.Millisecond)
	}
	ts.Client().CloseIdleConnections()
	ts.Close()
	settleGoroutines(t, baseline)
}
