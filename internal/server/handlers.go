package server

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/issa"
	"suifx/internal/liveness"
	"suifx/internal/modref"
	"suifx/internal/parallel"
	"suifx/internal/session"
	"suifx/internal/slice"
	"suifx/internal/tune"
	"suifx/internal/workloads"
)

// SourceRef names the program a request operates on: inline source or a
// built-in workload.
type SourceRef struct {
	Name     string `json:"name,omitempty"`
	Source   string `json:"source,omitempty"`
	Workload string `json:"workload,omitempty"`
}

func (sr SourceRef) resolve() (name, src string, err error) {
	switch {
	case sr.Workload != "":
		for _, w := range workloads.All() {
			if w.Name == sr.Workload {
				return w.Name, w.Source, nil
			}
		}
		return "", "", errf(http.StatusNotFound, "unknown workload %q", sr.Workload)
	case sr.Source != "":
		name = sr.Name
		if name == "" {
			name = "request.f"
		}
		return name, sr.Source, nil
	default:
		return "", "", errf(http.StatusBadRequest, `request needs "source" or "workload"`)
	}
}

// analyze runs the cached interprocedural analysis, mapping driver errors
// to API statuses: parse failures are the client's fault (422), context
// ends pass through for the middleware to turn into 504/499.
func (s *Server) analyze(ctx context.Context, sr SourceRef, workers int) (*driver.Result, error) {
	name, src, err := sr.resolve()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	res, err := s.cache.AnalyzeCtx(ctx, name, src, driver.Options{Workers: workers})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, errf(http.StatusUnprocessableEntity, "%v", err)
	}
	return res, nil
}

// --- POST /v1/analyze ---

// AnalyzeRequest asks for the full driver result of one program.
type AnalyzeRequest struct {
	SourceRef
	// Workers overrides the analysis worker pool size for this request.
	Workers int `json:"workers,omitempty"`
	// NoReductions disables reduction recognition.
	NoReductions bool `json:"no_reductions,omitempty"`
	// Liveness enables the array liveness oracle (Chapter 5).
	Liveness bool `json:"liveness,omitempty"`
}

// VarJSON is one variable's classification inside a loop.
type VarJSON struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Reduction   string `json:"reduction,omitempty"`
	ByAssertion bool   `json:"by_assertion,omitempty"`
	Reason      string `json:"reason,omitempty"`
}

// LoopJSON is one loop's parallelization verdict.
type LoopJSON struct {
	ID             string    `json:"id"`
	Lines          [2]int    `json:"lines"`
	Parallelizable bool      `json:"parallelizable"`
	Chosen         bool      `json:"chosen"`
	UnderParallel  bool      `json:"under_parallel,omitempty"`
	Vars           []VarJSON `json:"vars,omitempty"`
}

// ModRefJSON is one procedure's mod/ref effect summary.
type ModRefJSON struct {
	ModParams  []bool              `json:"mod_params,omitempty"`
	RefParams  []bool              `json:"ref_params,omitempty"`
	ModCommons map[string][]string `json:"mod_commons,omitempty"`
	RefCommons map[string][]string `json:"ref_commons,omitempty"`
}

// AnalyzeResponse is the full driver result.
type AnalyzeResponse struct {
	Name       string                `json:"name"`
	SourceHash string                `json:"source_hash"`
	Schedule   []driver.SCC          `json:"schedule"`
	Summaries  map[string]string     `json:"summaries"`
	ModRef     map[string]ModRefJSON `json:"modref"`
	Loops      []LoopJSON            `json:"loops"`
	Stats      parallel.Stats        `json:"stats"`
	ElapsedMs  float64               `json:"elapsed_ms"`
}

func (s *Server) handleAnalyze(ctx context.Context, r *http.Request) (any, error) {
	var req AnalyzeRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	return s.analyzeResponse(ctx, req.SourceRef, req.Workers, req.NoReductions, req.Liveness)
}

// analyzeResponse is the shared /v1/analyze body, also run per batch item:
// cached analysis plus the parallelization pass, rendered to the wire shape.
func (s *Server) analyzeResponse(ctx context.Context, sr SourceRef, workers int, noReductions, useLiveness bool) (*AnalyzeResponse, error) {
	start := time.Now()
	res, err := s.analyze(ctx, sr, workers)
	if err != nil {
		return nil, err
	}

	cfg := parallel.Config{UseReductions: !noReductions}
	if useLiveness {
		cfg.DeadAtExit = liveness.Analyze(res.Sum, liveness.Full).Oracle()
	}
	par := parallel.ParallelizeWith(res.Sum, cfg)

	resp := &AnalyzeResponse{
		Name:       res.Prog.Name,
		SourceHash: res.SourceHash,
		Schedule:   driver.Schedule(res.Prog),
		Summaries:  map[string]string{},
		ModRef:     map[string]ModRefJSON{},
		Stats:      par.Stats(),
		ElapsedMs:  float64(time.Since(start)) / 1e6,
	}
	for name, t := range res.Sum.ProcSum {
		resp.Summaries[name] = t.String()
	}
	for name, eff := range res.Sum.MR.Effects {
		resp.ModRef[name] = modRefJSON(eff)
	}
	for _, li := range par.Ordered {
		lo, hi := li.Region.Lines()
		lj := LoopJSON{
			ID:             li.ID(),
			Lines:          [2]int{lo, hi},
			Parallelizable: li.Dep.Parallelizable,
			Chosen:         li.Chosen,
			UnderParallel:  li.UnderParallel,
		}
		for _, vr := range li.Dep.Vars {
			cls := vr.Class.String()
			if cls == "read-only" || cls == "index" {
				continue
			}
			lj.Vars = append(lj.Vars, VarJSON{
				Name:        vr.Sym.Name,
				Class:       cls,
				Reduction:   vr.RedOp,
				ByAssertion: vr.ByAssertion,
				Reason:      vr.Reason,
			})
		}
		resp.Loops = append(resp.Loops, lj)
	}
	return resp, nil
}

func modRefJSON(eff *modref.Effects) ModRefJSON {
	if eff == nil {
		return ModRefJSON{}
	}
	ranges := func(m map[string][]modref.Range) map[string][]string {
		if len(m) == 0 {
			return nil
		}
		out := make(map[string][]string, len(m))
		for blk, rs := range m {
			strs := make([]string, len(rs))
			for i, r := range rs {
				strs[i] = fmtRange(r)
			}
			sort.Strings(strs)
			out[blk] = strs
		}
		return out
	}
	return ModRefJSON{
		ModParams:  eff.ModParam,
		RefParams:  eff.RefParam,
		ModCommons: ranges(eff.ModCommon),
		RefCommons: ranges(eff.RefCommon),
	}
}

func fmtRange(r modref.Range) string {
	if r.Lo == r.Hi {
		return strconv.FormatInt(r.Lo, 10)
	}
	return strconv.FormatInt(r.Lo, 10) + ".." + strconv.FormatInt(r.Hi, 10)
}

// --- POST /v1/slice ---

// SliceRequest asks for an interprocedural slice.
type SliceRequest struct {
	SourceRef
	// Proc is the (case-insensitive) procedure containing the anchor line.
	Proc string `json:"proc"`
	// Line is the 1-based source line of the anchor statement.
	Line int `json:"line"`
	// Var names the sliced variable use (required for program/data slices).
	Var string `json:"var,omitempty"`
	// Kind is "program" (default), "data", or "control".
	Kind string `json:"kind,omitempty"`
}

// SliceResponse lists the slice's lines per procedure.
type SliceResponse struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Procs maps procedure name to the sorted slice lines inside it.
	Procs map[string][]int `json:"procs"`
	Size  int              `json:"size"`
}

func (s *Server) handleSlice(ctx context.Context, r *http.Request) (any, error) {
	var req SliceRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Proc == "" || req.Line <= 0 {
		return nil, errf(http.StatusBadRequest, `slice needs "proc" and a positive "line"`)
	}
	res, err := s.analyze(ctx, req.SourceRef, 0)
	if err != nil {
		return nil, err
	}

	procs, kind, err := slice.Query(issa.Build(res.Prog), req.Kind, req.Proc, req.Var, req.Line)
	if err != nil {
		return nil, sliceErr(err)
	}
	resp := &SliceResponse{Name: res.Prog.Name, Kind: kind, Procs: procs}
	for _, lines := range procs {
		resp.Size += len(lines)
	}
	return resp, nil
}

// sliceErr maps the slice package's sentinel errors to API statuses.
func sliceErr(err error) error {
	switch {
	case errors.Is(err, slice.ErrBadKind), errors.Is(err, slice.ErrNeedVar):
		return errf(http.StatusBadRequest, "%v", err)
	case errors.Is(err, slice.ErrEmpty):
		return errf(http.StatusNotFound, "%v", err)
	default:
		return err
	}
}

// --- POST /v1/profile ---

// ProfileRequest asks for an execution-based loop profile (§2.5.1).
type ProfileRequest struct {
	SourceRef
	// MaxOps bounds the interpreted execution (default 50M operations).
	MaxOps int64 `json:"max_ops,omitempty"`
	// Mode selects the execution engine: "auto" (default), "bytecode",
	// "tiered", "register" or "tree" — the tree-walker is kept for
	// differential debugging.
	Mode string `json:"mode,omitempty"`
	// Tier names a concrete engine tier ("tree", "bytecode", "tiered" or
	// "register") and, when set, overrides Mode. Unknown values are a 422,
	// mirroring the mode contract.
	Tier string `json:"tier,omitempty"`
	// Workers, when > 1, lowers the analysis' approved parallel loops to a
	// runtime plan and executes them on that many workers (§4.5 even-chunk
	// schedule). Loops nested inside a planned body run in workers without
	// instrumentation, so they don't appear in the profile.
	Workers int `json:"workers,omitempty"`
}

// ParallelLoopJSON is one planned loop's execution record.
type ParallelLoopJSON struct {
	Line        int    `json:"line"`
	Index       string `json:"index"`
	Invocations int64  `json:"invocations"`
	Workers     int    `json:"workers"`
	WorkerOps   int64  `json:"worker_ops"`
	CritOps     int64  `json:"crit_ops"`
}

// LoopProfileJSON is one loop's virtual-time record.
type LoopProfileJSON struct {
	ID               string  `json:"id"`
	Proc             string  `json:"proc"`
	Invocations      int64   `json:"invocations"`
	Iterations       int64   `json:"iterations"`
	TotalOps         int64   `json:"total_ops"`
	OpsPerInvocation float64 `json:"ops_per_invocation"`
}

// ProfileResponse is the whole-program loop profile, hottest loop first.
// The parallel fields are present only when the request set workers > 1:
// CriticalPathOps is total_ops with each planned loop's worker time
// replaced by its slowest worker, i.e. the run's §4.5 virtual-time cost.
type ProfileResponse struct {
	Name            string             `json:"name"`
	TotalOps        int64              `json:"total_ops"`
	Loops           []LoopProfileJSON  `json:"loops"`
	Workers         int                `json:"workers,omitempty"`
	CriticalPathOps int64              `json:"critical_path_ops,omitempty"`
	ParallelLoops   []ParallelLoopJSON `json:"parallel_loops,omitempty"`
}

func (s *Server) handleProfile(ctx context.Context, r *http.Request) (any, error) {
	var req ProfileRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	mode := s.cfg.ExecMode
	if req.Mode != "" {
		m, err := exec.ParseMode(req.Mode)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		mode = m
	}
	if req.Tier != "" {
		m, err := exec.ParseTier(req.Tier)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		mode = m
	}
	if req.Workers < 0 || req.Workers > 64 {
		return nil, errf(http.StatusUnprocessableEntity, "workers must be in [0, 64], got %d", req.Workers)
	}
	res, err := s.analyze(ctx, req.SourceRef, 0)
	if err != nil {
		return nil, err
	}
	var plan *exec.ParallelPlan
	if req.Workers > 1 {
		par := parallel.ParallelizeWith(res.Sum, parallel.Config{UseReductions: true})
		plan = parallel.BuildPlan(par, req.Workers)
	}
	maxOps := req.MaxOps
	if maxOps <= 0 {
		maxOps = 50_000_000
	}

	// The interpreter has no cancellation hook, so the run executes on its
	// own goroutine under the MaxOps budget (which bounds the stragglers a
	// timeout can strand) while this request observes ctx.
	type profOut struct {
		resp *ProfileResponse
		err  error
	}
	out := make(chan profOut, 1)
	go func() {
		var in *exec.Interp
		if plan != nil {
			in = exec.NewWithPlan(res.Prog, plan)
		} else {
			in = exec.New(res.Prog)
		}
		in.Mode = mode
		in.MaxOps = maxOps
		prof := exec.NewProfiler(in)
		if err := in.Run(); err != nil {
			out <- profOut{err: errf(http.StatusUnprocessableEntity, "execution failed: %v", err)}
			return
		}
		resp := &ProfileResponse{Name: res.Prog.Name, TotalOps: prof.TotalOps()}
		if plan != nil {
			resp.Workers = req.Workers
			resp.CriticalPathOps = in.CriticalPathOps()
			for _, st := range in.ParallelStats() {
				resp.ParallelLoops = append(resp.ParallelLoops, ParallelLoopJSON{
					Line:        st.Line,
					Index:       st.Index,
					Invocations: st.Invocations,
					Workers:     st.Workers,
					WorkerOps:   st.WorkerOps,
					CritOps:     st.CritOps,
				})
			}
		}
		for _, lp := range prof.Profiles() {
			resp.Loops = append(resp.Loops, LoopProfileJSON{
				ID:               lp.ID,
				Proc:             lp.Proc,
				Invocations:      lp.Invocations,
				Iterations:       lp.Iterations,
				TotalOps:         lp.TotalOps,
				OpsPerInvocation: lp.OpsPerInvocation(),
			})
		}
		out <- profOut{resp: resp}
	}()
	select {
	case o := <-out:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// --- GET /v1/stats ---

// StatsResponse is the service's observability snapshot.
type StatsResponse struct {
	Cache         driver.CacheStats `json:"cache"`
	InFlight      int64             `json:"in_flight"`
	Shed          int64             `json:"shed"`
	Panics        int64             `json:"panics"`
	MaxConcurrent int               `json:"max_concurrent"`
	UptimeSec     float64           `json:"uptime_sec"`
	// Exec reports the execution engine's process-wide counters (compiled
	// programs/procedures, instructions retired, runs per engine);
	// ExecMode is the engine /v1/profile uses when requests don't override.
	Exec     exec.Counters `json:"exec"`
	ExecMode string        `json:"exec_mode"`
	// Sessions reports the interactive session subsystem: live/created/
	// evicted counts plus the aggregate incremental re-analysis split.
	Sessions session.Stats `json:"sessions"`
	// Tune reports the auto-tuning search counters: searches, plan runs,
	// variants scored/pruned, budget exhaustions and cancellations.
	Tune      tune.Counters            `json:"tune"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

func (s *Server) statsSnapshot() *StatsResponse {
	return &StatsResponse{
		Cache:         s.cache.Stats(),
		Sessions:      s.sessions.Stats(),
		InFlight:      s.m.inflight.Load(),
		Shed:          s.m.shed.Load(),
		Panics:        s.m.panics.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		UptimeSec:     time.Since(s.start).Seconds(),
		Exec:          exec.ReadCounters(),
		ExecMode:      s.cfg.ExecMode.String(),
		Tune:          tune.ReadCounters(),
		Endpoints:     s.m.endpoints(),
	}
}

func (s *Server) handleStats(ctx context.Context, r *http.Request) (any, error) {
	return s.statsSnapshot(), nil
}
