package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"suifx/internal/driver"
	"suifx/internal/workloads"
)

// settleGoroutines waits for the goroutine count to come back to (near) the
// baseline; with no third-party deps this count assertion stands in for
// goleak.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		// A couple of runtime/httptest service goroutines may linger
		// legitimately; anything more is a leak.
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, n, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServerBurstAnalyze is the acceptance burst: 64 concurrent /v1/analyze
// requests over the example workloads, all succeeding, no goroutine leaks,
// cache stats visible afterwards via /v1/stats.
func TestServerBurstAnalyze(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cache := driver.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache, MaxConcurrent: 64})
	ws := workloads.All()

	const burst = 64
	errs := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := ws[i%len(ws)]
			body, _ := json.Marshal(map[string]any{"workload": w.Name})
			resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- fmt.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d (%s): status %d", i, w.Name, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	status, sr := getStats(t, ts)
	if status != http.StatusOK {
		t.Fatalf("stats after burst: %d", status)
	}
	if sr.Cache.Hits+sr.Cache.Misses != burst {
		t.Fatalf("cache saw %d requests, want %d", sr.Cache.Hits+sr.Cache.Misses, burst)
	}
	if int(sr.Cache.Misses) != len(ws) || sr.Cache.Entries != len(ws) {
		t.Fatalf("cache = %+v, want exactly one miss/entry per distinct workload (%d)", sr.Cache, len(ws))
	}
	if ep := sr.Endpoints["analyze"]; ep.Requests != burst {
		t.Fatalf("analyze endpoint counted %d requests, want %d", ep.Requests, burst)
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	settleGoroutines(t, baseline)
}

// TestServerBurstSheds429: past the concurrency limit the server sheds with
// 429 instead of queueing, counts the sheds, and keeps serving afterwards.
func TestServerBurstSheds429(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cache := driver.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache, MaxConcurrent: 2})

	// Distinct keys (same slow source, different names) so nothing
	// coalesces in the cache and every admitted request holds a slot.
	src := synthSource(40)
	const burst = 64
	var wg sync.WaitGroup
	counts := [3]int{} // 200, 429, other
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"name": fmt.Sprintf("b%d.f", i), "source": src})
			resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			switch resp.StatusCode {
			case http.StatusOK:
				counts[0]++
			case http.StatusTooManyRequests:
				counts[1]++
			default:
				counts[2]++
				t.Errorf("request %d: unexpected status %d", i, resp.StatusCode)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if counts[0] == 0 {
		t.Fatal("no request succeeded under shedding")
	}
	if counts[1] == 0 {
		t.Fatal("64 concurrent requests against limit 2 shed nothing")
	}
	status, sr := getStats(t, ts)
	if status != http.StatusOK {
		t.Fatalf("stats after shedding: %d", status)
	}
	if sr.Shed != int64(counts[1]) {
		t.Fatalf("shed counter = %d, want %d", sr.Shed, counts[1])
	}

	// The server still serves normal traffic after the storm.
	if status, _ := postJSON(t, ts, "/v1/analyze", map[string]any{"workload": workloads.All()[0].Name}); status != http.StatusOK {
		t.Fatalf("post-shedding analyze: status %d", status)
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	settleGoroutines(t, baseline)
}
