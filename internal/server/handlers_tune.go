package server

import (
	"context"
	"net/http"
	"strings"

	"suifx/internal/exec"
	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/tune"
)

// --- POST /v1/tune ---

// TuneRequest asks for an auto-tuning parallelization search: every
// approved parallel nest's strategy space (worker count, schedule,
// reduction discipline, interchange depth) is executed under virtual time
// and scored with the machine cost model.
type TuneRequest struct {
	SourceRef
	// Workers are the candidate per-loop worker counts (default 1,2,4,8).
	Workers []int `json:"workers,omitempty"`
	// MaxDepth bounds the interchange knob (default 1).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxRuns budgets the search: at most this many plan executions. The
	// default plan always runs; a cut-short report carries
	// "budget_exhausted": true with the unexecuted variants counted pruned.
	MaxRuns int `json:"max_runs,omitempty"`
	// DefaultWorkers sets the baseline plan the speedups compare against.
	DefaultWorkers int `json:"default_workers,omitempty"`
	// MaxOps bounds each execution's virtual time (default 50M, as
	// /v1/profile); it also bounds how long a cancelled search's in-flight
	// run can straggle.
	MaxOps int64 `json:"max_ops,omitempty"`
	// Mode selects the engine: "auto" (default), "bytecode", "tiered",
	// "register" or "tree".
	Mode string `json:"mode,omitempty"`
	// Tier names a concrete engine tier and overrides Mode when set, as on
	// /v1/profile.
	Tier string `json:"tier,omitempty"`
	// Machine selects the cost model: "alpha" (default, AlphaServer 8400),
	// "challenge" (SGI Challenge) or "origin" (SGI Origin 2000).
	Machine string `json:"machine,omitempty"`
}

// TuneResponse is the search report. It carries no timestamps or elapsed
// fields: repeated requests for the same (program, knobs) are byte-identical.
type TuneResponse struct {
	Name string `json:"name"`
	*tune.Report
}

// tuneModel maps a user-facing machine name to a cost model.
func tuneModel(name string) (*machine.Model, error) {
	switch strings.ToLower(name) {
	case "", "alpha", "alphaserver", "alphaserver8400":
		return machine.AlphaServer8400(), nil
	case "challenge", "sgi-challenge":
		return machine.SGIChallenge(), nil
	case "origin", "sgi-origin", "origin2000":
		return machine.SGIOrigin(), nil
	}
	return nil, errf(http.StatusUnprocessableEntity,
		"unknown machine %q (want alpha, challenge or origin)", name)
}

func (s *Server) handleTune(ctx context.Context, r *http.Request) (any, error) {
	var req TuneRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	mode := s.cfg.ExecMode
	if req.Mode != "" {
		m, err := exec.ParseMode(req.Mode)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		mode = m
	}
	if req.Tier != "" {
		m, err := exec.ParseTier(req.Tier)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		mode = m
	}
	model, err := tuneModel(req.Machine)
	if err != nil {
		return nil, err
	}
	maxOps := req.MaxOps
	if maxOps <= 0 {
		maxOps = 50_000_000
	}
	cfg := tune.Config{
		Workers:        req.Workers,
		MaxDepth:       req.MaxDepth,
		MaxRuns:        req.MaxRuns,
		DefaultWorkers: req.DefaultWorkers,
		MaxOps:         maxOps,
		Mode:           mode,
		Model:          model,
	}
	if req.MaxDepth == 0 {
		cfg.MaxDepth = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, errf(http.StatusUnprocessableEntity, "%v", err)
	}
	res, err := s.analyze(ctx, req.SourceRef, 0)
	if err != nil {
		return nil, err
	}
	par := parallel.ParallelizeWith(res.Sum, parallel.Config{UseReductions: true})

	// The search checks ctx between plan executions but a single run is
	// uninterruptible, so it executes on its own goroutine (bounded by
	// MaxOps) while this request observes ctx: a timeout or client
	// disconnect answers immediately and the search abandons its remaining
	// variants at the next run boundary.
	type tuneOut struct {
		resp *TuneResponse
		err  error
	}
	out := make(chan tuneOut, 1)
	go func() {
		rep, err := tune.Search(ctx, par, cfg)
		if err != nil {
			if ctx.Err() == nil {
				err = errf(http.StatusUnprocessableEntity, "tune failed: %v", err)
			}
			out <- tuneOut{err: err}
			return
		}
		out <- tuneOut{resp: &TuneResponse{Name: res.Prog.Name, Report: rep}}
	}()
	select {
	case o := <-out:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
