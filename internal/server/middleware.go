package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// envelope converts non-JSON error responses — the mux's built-in text/plain
// 404 (unknown route) and 405 (method not allowed) — into the service's
// uniform JSON error envelope, so every error a client sees has the same
// {"error": ..., "status": ...} shape. Handler-written responses pass
// through untouched.
type envelope struct{ next http.Handler }

func (e envelope) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ew := &envelopeWriter{w: w}
	e.next.ServeHTTP(ew, r)
	ew.finish()
}

type envelopeWriter struct {
	w       http.ResponseWriter
	status  int
	msg     strings.Builder
	rewrite bool // suppressing a non-JSON error body, envelope pending
	wrote   bool // headers already forwarded
}

func (ew *envelopeWriter) Header() http.Header { return ew.w.Header() }

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wrote || ew.rewrite {
		return
	}
	if status >= 400 && ew.w.Header().Get("Content-Type") != "application/json" {
		ew.status = status
		ew.rewrite = true
		// The buffered body replaces this response; its headers no longer fit.
		ew.w.Header().Del("Content-Length")
		ew.w.Header().Del("X-Content-Type-Options")
		return
	}
	ew.wrote = true
	ew.w.WriteHeader(status)
}

func (ew *envelopeWriter) Write(b []byte) (int, error) {
	if ew.rewrite {
		// Built-in error bodies are one short line; keep it as the message.
		if ew.msg.Len() < 1024 {
			ew.msg.Write(b)
		}
		return len(b), nil
	}
	ew.wrote = true
	return ew.w.Write(b)
}

func (ew *envelopeWriter) finish() {
	if !ew.rewrite {
		return
	}
	msg := strings.TrimSpace(ew.msg.String())
	if msg == "" {
		msg = http.StatusText(ew.status)
	}
	writeError(ew.w, ew.status, msg)
}

// apiHandler is an endpoint body: it returns a JSON-marshalable response or
// an error (ideally an *apiError carrying a status).
type apiHandler func(ctx context.Context, r *http.Request) (any, error)

// apiError is an error with an HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is nginx's non-standard code for "client went
// away"; the client never sees it, but it keeps the metrics honest.
const statusClientClosedRequest = 499

// endpoint wraps an apiHandler with the full middleware stack: panic
// recovery (500), in-flight/latency metrics, the concurrency-limit
// semaphore with 429 shedding, and the per-request timeout whose context
// cancellation the driver observes (504). heavy=false skips the semaphore
// and timeout (for cheap read-only endpoints like /v1/stats).
func (s *Server) endpoint(name string, heavy bool, h apiHandler) http.Handler {
	em := s.m.byName[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := http.StatusOK
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Add(1)
				status = http.StatusInternalServerError
				writeError(w, status, fmt.Sprintf("internal error: %v", rec))
			}
			em.observe(time.Since(start), status)
		}()

		if heavy {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.m.shed.Add(1)
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", "1")
				writeError(w, status, "server at concurrency limit; retry")
				return
			}
		}
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)

		ctx := r.Context()
		if heavy && s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}

		resp, err := h(ctx, r)
		if err != nil {
			status = statusOf(err)
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// streamHandler writes its own response body (the NDJSON batch stream). A
// returned error must precede the first body write; the middleware renders it
// in the usual JSON envelope.
type streamHandler func(ctx context.Context, w http.ResponseWriter, r *http.Request) error

// streamEndpoint is the endpoint middleware for streaming handlers: panic
// recovery, metrics, and one concurrency-semaphore slot held for the whole
// stream. The per-request timeout deliberately does not apply — a long batch
// is bounded per item inside the handler, not whole-stream.
func (s *Server) streamEndpoint(name string, h streamHandler) http.Handler {
	em := s.m.byName[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := http.StatusOK
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Add(1)
				status = http.StatusInternalServerError
				writeError(w, status, fmt.Sprintf("internal error: %v", rec))
			}
			em.observe(time.Since(start), status)
		}()

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.m.shed.Add(1)
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
			writeError(w, status, "server at concurrency limit; retry")
			return
		}
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)

		if err := h(r.Context(), w, r); err != nil {
			status = statusOf(err)
			writeError(w, status, err.Error())
		}
	})
}

func statusOf(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}

// decodeJSON reads a size-capped JSON request body. Oversized bodies map to
// 413, anything unparsable to 400.
func (s *Server) decodeJSON(r *http.Request, dst any) error {
	return DecodeJSON(r, s.cfg.MaxBodyBytes, dst)
}

// DecodeJSON reads a size-capped JSON request body: oversized bodies map to
// a 413 error, anything unparsable to 400 (statuses carried for StatusOf).
// Exported so the cluster coordinator shares the worker's decode contract.
func DecodeJSON(r *http.Request, limit int64, dst any) error {
	r.Body = http.MaxBytesReader(nil, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "malformed JSON request: %v", err)
	}
	return nil
}

// The cluster coordinator serves the same wire contract as a worker without
// being one; these exports let it reuse the envelope discipline exactly.

// EnvelopeHandler wraps next so even routing-level errors (404/405 from the
// mux) come back in the JSON error envelope.
func EnvelopeHandler(next http.Handler) http.Handler { return envelope{next: next} }

// WriteJSON writes an indented JSON response.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError writes the {"error", "status"} envelope.
func WriteError(w http.ResponseWriter, status int, msg string) { writeError(w, status, msg) }

// Errf builds an error carrying an HTTP status (recovered by StatusOf).
func Errf(status int, format string, args ...any) error { return errf(status, format, args...) }

// StatusOf maps an error to its HTTP status: Errf statuses pass through,
// context deadline → 504, context cancel → 499, anything else → 500.
func StatusOf(err error) int { return statusOf(err) }
