package server

import (
	"context"
	"net/http"

	"suifx/internal/session"
)

// --- POST /v1/drain ---

// DrainRequest asks the worker to serialize and release sessions: the named
// ids, or everything live when All is set (graceful worker retirement). The
// coordinator calls this during hash-ring rebalances and replays the exports
// on each session's new owner.
type DrainRequest struct {
	IDs []string `json:"ids,omitempty"`
	All bool     `json:"all,omitempty"`
}

// DrainResponse carries the drained sessions' replayable exports. Missing
// lists requested ids that were not live here (already expired or drained) —
// not an error, since drains race evictions by design.
type DrainResponse struct {
	Sessions []session.Export `json:"sessions"`
	Missing  []string         `json:"missing,omitempty"`
}

func (s *Server) handleDrain(ctx context.Context, r *http.Request) (any, error) {
	var req DrainRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	ids := req.IDs
	if req.All {
		ids = s.sessions.IDs()
	} else if len(ids) == 0 {
		return nil, errf(http.StatusBadRequest, `drain needs a non-empty "ids" list or "all": true`)
	}
	exports, missing := s.sessions.Drain(ids)
	if exports == nil {
		exports = []session.Export{}
	}
	return &DrainResponse{Sessions: exports, Missing: missing}, nil
}
