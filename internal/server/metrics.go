package server

import (
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds; the last bucket is
// unbounded. Analyses run from microseconds (cache hit) to seconds (cold
// large program), so the buckets are logarithmic.
var latencyBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// endpointMetrics is one endpoint's counters: request/error totals and a
// fixed-bucket latency histogram. All fields are atomics — the hot path
// never takes a lock.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	totalNs  atomic.Int64
	buckets  [len(latencyBounds) + 1]atomic.Int64
}

func (e *endpointMetrics) observe(d time.Duration, status int) {
	e.requests.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	e.totalNs.Add(int64(d))
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	e.buckets[i].Add(1)
}

// EndpointStats is the JSON snapshot of one endpoint's metrics.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// AvgMs is mean latency in milliseconds over all requests.
	AvgMs float64 `json:"avg_ms"`
	// LatencyBuckets counts requests per histogram bucket; bucket i covers
	// latencies up to LatencyBounds[i], the final bucket is unbounded.
	LatencyBuckets []int64  `json:"latency_buckets"`
	LatencyBounds  []string `json:"latency_bounds"`
}

type metrics struct {
	inflight atomic.Int64
	shed     atomic.Int64
	panics   atomic.Int64
	byName   map[string]*endpointMetrics
}

func newMetrics(endpoints ...string) *metrics {
	m := &metrics{byName: map[string]*endpointMetrics{}}
	for _, name := range endpoints {
		m.byName[name] = &endpointMetrics{}
	}
	return m
}

func (m *metrics) endpoints() map[string]EndpointStats {
	bounds := make([]string, 0, len(latencyBounds)+1)
	for _, b := range latencyBounds {
		bounds = append(bounds, "<="+b.String())
	}
	bounds = append(bounds, "+inf")
	out := make(map[string]EndpointStats, len(m.byName))
	for name, e := range m.byName {
		s := EndpointStats{
			Requests:      e.requests.Load(),
			Errors:        e.errors.Load(),
			LatencyBounds: bounds,
		}
		for i := range e.buckets {
			s.LatencyBuckets = append(s.LatencyBuckets, e.buckets[i].Load())
		}
		if s.Requests > 0 {
			s.AvgMs = float64(e.totalNs.Load()) / float64(s.Requests) / 1e6
		}
		out[name] = s
	}
	return out
}

// expvar integration: one process-wide "suifxd" var that snapshots the most
// recently constructed Server. Publish panics on duplicate names, and tests
// build many Servers, so registration happens exactly once and follows the
// current server through an atomic pointer.
var (
	expvarOnce sync.Once
	expvarCur  atomic.Pointer[Server]
)

func publishExpvar(s *Server) {
	expvarCur.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("suifxd", expvar.Func(func() any {
			if cur := expvarCur.Load(); cur != nil {
				return cur.statsSnapshot()
			}
			return nil
		}))
	})
}

func expvarHandler() http.Handler { return expvar.Handler() }
