package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/workloads"
)

// newTestServer builds a Server with a fresh cache (no cross-test sharing)
// and an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = driver.NewCache()
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &fields); err != nil {
		t.Fatalf("%s: non-JSON response %q", path, data)
	}
	return resp.StatusCode, fields
}

// synthSource builds a deep chain of procedures whose analysis takes long
// enough (~2ms per procedure) for timeout and cancellation tests to land
// mid-flight.
func synthSource(procs int) string {
	var b strings.Builder
	add := func(s string, args ...any) { fmt.Fprintf(&b, s+"\n", args...) }
	add("      PROGRAM synth")
	add("      REAL a(100)")
	add("      CALL p1(a)")
	add("      END")
	for i := 1; i <= procs; i++ {
		add("      SUBROUTINE p%d(a)", i)
		add("      REAL a(100)")
		add("      INTEGER i")
		add("      DO 10 i = 1, 99")
		add("        a(i) = a(i) + a(i+1)")
		add("10    CONTINUE")
		if i < procs {
			add("      CALL p%d(a)", i+1)
		}
		add("      END")
	}
	return b.String()
}

// TestServerEndpointErrors is the table-driven error contract for every
// /v1/* endpoint: malformed JSON, missing fields, unknown workloads,
// unparsable source, bad slice parameters, wrong method.
func TestServerEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"analyze malformed JSON", "/v1/analyze", `{"source": "PROGRAM`, http.StatusBadRequest},
		{"analyze empty request", "/v1/analyze", map[string]any{}, http.StatusBadRequest},
		{"analyze unknown workload", "/v1/analyze", map[string]any{"workload": "no-such"}, http.StatusNotFound},
		{"analyze unparsable source", "/v1/analyze", map[string]any{"source": "THIS IS NOT MINIF(("}, http.StatusUnprocessableEntity},
		{"slice malformed JSON", "/v1/slice", `[1,2`, http.StatusBadRequest},
		{"slice missing proc", "/v1/slice", map[string]any{"workload": "x", "line": 3}, http.StatusBadRequest},
		{"slice bad kind", "/v1/slice", map[string]any{"source": "      PROGRAM t\n      END\n", "proc": "T", "line": 1, "kind": "sideways"}, http.StatusBadRequest},
		{"slice program without var", "/v1/slice", map[string]any{"source": "      PROGRAM t\n      END\n", "proc": "T", "line": 1}, http.StatusBadRequest},
		{"profile malformed JSON", "/v1/profile", `nope`, http.StatusBadRequest},
		{"profile no source", "/v1/profile", map[string]any{}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, fields := postJSON(t, ts, tc.path, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d, want %d (body %v)", status, tc.want, fields)
			}
			if _, ok := fields["error"]; !ok {
				t.Fatalf("error response has no error field: %v", fields)
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/analyze")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/analyze = %d, want 405", resp.StatusCode)
		}
	})
}

// TestServerOversizedSource: bodies past MaxBodyBytes get 413 on every
// heavy endpoint.
func TestServerOversizedSource(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	big := map[string]any{"source": strings.Repeat("C comment line\n", 200)}
	for _, path := range []string{"/v1/analyze", "/v1/slice", "/v1/profile", "/v1/batch", "/v1/drain"} {
		status, _ := postJSON(t, ts, path, big)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status = %d, want 413", path, status)
		}
	}
}

// TestServerAnalyzeWorkload is the happy path: the full driver result for a
// built-in workload is well-formed and self-consistent.
func TestServerAnalyzeWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	w := workloads.All()[0]
	status, fields := postJSON(t, ts, "/v1/analyze", map[string]any{"workload": w.Name})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, fields["error"])
	}
	var schedule []driver.SCC
	if err := json.Unmarshal(fields["schedule"], &schedule); err != nil {
		t.Fatal(err)
	}
	prog := w.Program()
	nprocs := 0
	for i, c := range schedule {
		nprocs += len(c.Procs)
		for _, d := range c.Deps {
			if d >= i {
				t.Fatalf("schedule not bottom-up: component %d depends on %d", i, d)
			}
		}
	}
	if nprocs != len(prog.Procs) {
		t.Fatalf("schedule covers %d procs, program has %d", nprocs, len(prog.Procs))
	}
	var summaries map[string]string
	if err := json.Unmarshal(fields["summaries"], &summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != len(prog.Procs) {
		t.Fatalf("summaries for %d procs, want %d", len(summaries), len(prog.Procs))
	}
	var loops []LoopJSON
	if err := json.Unmarshal(fields["loops"], &loops); err != nil {
		t.Fatal(err)
	}
	var stats struct{ TotalLoops int }
	if err := json.Unmarshal(fields["stats"], &stats); err != nil {
		t.Fatal(err)
	}
	if len(loops) == 0 || stats.TotalLoops != len(loops) {
		t.Fatalf("loops = %d, stats.TotalLoops = %d", len(loops), stats.TotalLoops)
	}
	var modref map[string]ModRefJSON
	if err := json.Unmarshal(fields["modref"], &modref); err != nil {
		t.Fatal(err)
	}
	if len(modref) != len(prog.Procs) {
		t.Fatalf("modref for %d procs, want %d", len(modref), len(prog.Procs))
	}
}

// TestServerConcurrentIdenticalSingleflight: N identical concurrent
// requests must run the analysis exactly once — one cache miss, N-1 hits.
func TestServerConcurrentIdenticalSingleflight(t *testing.T) {
	cache := driver.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache, MaxConcurrent: 16})
	src := synthSource(8)

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"name": "sf.f", "source": src})
			resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			statuses[i] = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d", i, st)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("cache = %d misses / %d hits, want 1 / %d (singleflight ran more than once)", st.Misses, st.Hits, n-1)
	}
}

// TestServerTimeout: an expired request deadline cancels the analysis (the
// driver abandons its SCC waves) and maps to 504.
func TestServerTimeout(t *testing.T) {
	cache := driver.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache, RequestTimeout: time.Nanosecond})
	status, fields := postJSON(t, ts, "/v1/analyze", map[string]any{"source": synthSource(4)})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", status, fields["error"])
	}
	// The cancelled run must not be cached as a result or an error.
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled analysis left %d cache entries", st.Entries)
	}
}

// TestServerCancellationMidAnalysis: a client abandoning a slow request
// mid-analysis neither wedges the server nor poisons the cache — the same
// request afterwards computes fresh and succeeds.
func TestServerCancellationMidAnalysis(t *testing.T) {
	cache := driver.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache})
	src := synthSource(150) // ~hundreds of ms of SCC waves

	body, _ := json.Marshal(map[string]any{"name": "cancel.f", "source": src})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	resp, err := ts.Client().Do(req)
	if err == nil {
		resp.Body.Close()
		t.Log("analysis finished before the cancel landed; continuing")
	} else if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled request took %s to return", d)
	}

	// Server stays healthy and the key is retryable.
	status, fields := postJSON(t, ts, "/v1/analyze", map[string]any{"name": "cancel.f", "source": src})
	if status != http.StatusOK {
		t.Fatalf("retry after cancellation: status %d (%s)", status, fields["error"])
	}
	if status, _ := getStats(t, ts); status != http.StatusOK {
		t.Fatalf("/v1/stats unavailable after cancellation: %d", status)
	}
}

func getStats(t *testing.T, ts *httptest.Server) (int, *StatsResponse) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &sr
}

// TestServerSlice: the §3.1 portfolio story over HTTP — the control slice
// of the guarded write contains the IF..GO TO guard the program slice of
// the read misses.
func TestServerSlice(t *testing.T) {
	const portfolio = `
      PROGRAM folio
      REAL xps(50), y(51), xp(500)
      INTEGER s, h, jj, n, nls
      n = 9
      nls = 50
      DO 2365 s = 1, n
        IF (s .NE. 1 .AND. s .NE. 5) GO TO 2355
        DO 2350 h = 1, nls
          xps(h) = y(h+1)
2350    CONTINUE
2355    CONTINUE
        DO 2360 jj = 1, nls
          xp(s+(jj-1)*n) = xps(jj)
2360    CONTINUE
2365  CONTINUE
      END
`
	_, ts := newTestServer(t, Config{})
	decode := func(fields map[string]json.RawMessage) map[string][]int {
		var procs map[string][]int
		if err := json.Unmarshal(fields["procs"], &procs); err != nil {
			t.Fatal(err)
		}
		return procs
	}
	contains := func(lines []int, want int) bool {
		for _, l := range lines {
			if l == want {
				return true
			}
		}
		return false
	}

	// Control slice of the write at line 10: must include the guard (line 8).
	status, fields := postJSON(t, ts, "/v1/slice", map[string]any{
		"source": portfolio, "proc": "folio", "line": 10, "kind": "control"})
	if status != http.StatusOK {
		t.Fatalf("control slice: status %d (%s)", status, fields["error"])
	}
	if procs := decode(fields); !contains(procs["FOLIO"], 8) {
		t.Fatalf("control slice of line 10 misses the guard line 8: %v", procs)
	}

	// Program slice of the XPS read at line 14: includes the write (10) but
	// not the guard (8) — the trap the paper's story turns on.
	status, fields = postJSON(t, ts, "/v1/slice", map[string]any{
		"source": portfolio, "proc": "folio", "var": "xps", "line": 14})
	if status != http.StatusOK {
		t.Fatalf("program slice: status %d (%s)", status, fields["error"])
	}
	procs := decode(fields)
	if !contains(procs["FOLIO"], 10) {
		t.Fatalf("program slice of xps@14 misses the write at line 10: %v", procs)
	}

	// Data slice works too and is no larger than the program slice.
	status, fields = postJSON(t, ts, "/v1/slice", map[string]any{
		"source": portfolio, "proc": "folio", "var": "xps", "line": 14, "kind": "data"})
	if status != http.StatusOK {
		t.Fatalf("data slice: status %d (%s)", status, fields["error"])
	}
	if dprocs := decode(fields); len(dprocsLines(dprocs)) > len(dprocsLines(procs)) {
		t.Fatalf("data slice larger than program slice: %v > %v", dprocs, procs)
	}
}

func dprocsLines(m map[string][]int) []int {
	var out []int
	for _, ls := range m {
		out = append(out, ls...)
	}
	return out
}

// TestServerProfile: exec-based loop profiles over HTTP.
func TestServerProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	w := workloads.All()[0]
	status, fields := postJSON(t, ts, "/v1/profile", map[string]any{"workload": w.Name})
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, fields["error"])
	}
	var totalOps int64
	if err := json.Unmarshal(fields["total_ops"], &totalOps); err != nil {
		t.Fatal(err)
	}
	if totalOps <= 0 {
		t.Fatal("profile reports zero total ops")
	}
	var loops []LoopProfileJSON
	if err := json.Unmarshal(fields["loops"], &loops); err != nil {
		t.Fatal(err)
	}
	if len(loops) == 0 {
		t.Fatal("profile reports no loops")
	}
	for i := 1; i < len(loops); i++ {
		if loops[i].TotalOps > loops[i-1].TotalOps {
			t.Fatalf("loops not sorted by total ops: %v", loops)
		}
	}

	// A tiny op budget aborts the run: client error, not a hang.
	status, _ = postJSON(t, ts, "/v1/profile", map[string]any{"workload": w.Name, "max_ops": 10})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("max_ops=10: status %d, want 422", status)
	}
}

// TestServerProfileMode: the per-request engine knob. Every engine must
// yield identical profile payloads; unknown modes are a client error.
func TestServerProfileMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	w := workloads.All()[0]
	var bodies []string
	for _, mode := range []string{"bytecode", "tree", "tiered"} {
		status, fields := postJSON(t, ts, "/v1/profile", map[string]any{"workload": w.Name, "mode": mode})
		if status != http.StatusOK {
			t.Fatalf("mode=%s: status = %d (%s)", mode, status, fields["error"])
		}
		bodies = append(bodies, string(fields["total_ops"])+string(fields["loops"]))
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[0] != bodies[i] {
			t.Fatalf("engines disagree over HTTP:\nbytecode: %s\nother:    %s", bodies[0], bodies[i])
		}
	}
	status, fields := postJSON(t, ts, "/v1/profile", map[string]any{"workload": w.Name, "mode": "jit"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("mode=jit: status = %d (%s), want 422", status, fields["error"])
	}

	// The stats snapshot exposes the engine counters the runs just bumped,
	// including the tiered tier's.
	_, sr := getStats(t, ts)
	if sr.Exec.CompiledProcs < 1 || sr.Exec.Instructions < 1 || sr.Exec.BytecodeRuns < 1 {
		t.Fatalf("exec counters not visible: %+v", sr.Exec)
	}
	if sr.Exec.TreeRuns < 1 {
		t.Fatalf("tree run not counted: %+v", sr.Exec)
	}
	if sr.Exec.TieredRuns < 1 || sr.Exec.FusedInstructions < 1 {
		t.Fatalf("tiered run not counted: %+v", sr.Exec)
	}
	if sr.ExecMode != "auto" {
		t.Fatalf("exec_mode = %q, want auto", sr.ExecMode)
	}
}

// TestServerProfileTier: the `tier` knob names a concrete engine and
// overrides `mode`; unknown tiers are a 422, mirroring the mode contract.
func TestServerProfileTier(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	w := workloads.All()[0]
	var bodies []string
	for _, tier := range []string{"bytecode", "tiered", "register"} {
		status, fields := postJSON(t, ts, "/v1/profile",
			map[string]any{"workload": w.Name, "mode": "tree", "tier": tier})
		if status != http.StatusOK {
			t.Fatalf("tier=%s: status = %d (%s)", tier, status, fields["error"])
		}
		bodies = append(bodies, string(fields["total_ops"])+string(fields["loops"]))
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[0] != bodies[i] {
			t.Fatalf("tiers disagree over HTTP:\nbytecode: %s\nother:    %s", bodies[0], bodies[i])
		}
	}
	// The register-tier run above must be visible in /v1/stats: the exec
	// counters carry the tier-4 activity (runs and lowered bodies).
	var stats struct {
		Exec exec.Counters `json:"exec"`
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Exec.RegisterRuns < 1 {
		t.Fatalf("/v1/stats exec.register_runs = %d after a register-tier profile, want >= 1",
			stats.Exec.RegisterRuns)
	}

	status, fields := postJSON(t, ts, "/v1/profile", map[string]any{"workload": w.Name, "tier": "auto"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("tier=auto: status = %d (%s), want 422 (a tier names a concrete engine)",
			status, fields["error"])
	}
	status, fields = postJSON(t, ts, "/v1/profile", map[string]any{"workload": w.Name, "tier": "jit"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("tier=jit: status = %d (%s), want 422", status, fields["error"])
	}
}

// TestServerProfileWorkers: the per-request parallel-execution knob. A
// workers > 1 request runs approved loops on the plan-aware engine and
// reports the schedule (critical-path ops, per-loop worker stats); repeat
// requests are deterministic; out-of-range workers is a client error.
func TestServerProfileWorkers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	found := false
	for _, w := range workloads.All() {
		var bodies []string
		var resp ProfileResponse
		for i := 0; i < 2; i++ {
			status, fields := postJSON(t, ts, "/v1/profile",
				map[string]any{"workload": w.Name, "workers": 4})
			if status != http.StatusOK {
				t.Fatalf("%s: status = %d (%s)", w.Name, status, fields["error"])
			}
			b, _ := json.Marshal(fields)
			bodies = append(bodies, string(b))
			if i == 0 {
				if err := json.Unmarshal(b, &resp); err != nil {
					t.Fatal(err)
				}
			}
		}
		if bodies[0] != bodies[1] {
			t.Fatalf("%s: parallel profile not deterministic:\n%s\n%s", w.Name, bodies[0], bodies[1])
		}
		if len(resp.ParallelLoops) == 0 {
			continue
		}
		found = true
		if resp.Workers != 4 {
			t.Fatalf("%s: workers = %d, want 4", w.Name, resp.Workers)
		}
		if resp.CriticalPathOps <= 0 || resp.CriticalPathOps >= resp.TotalOps {
			t.Fatalf("%s: critical_path_ops %d not in (0, %d)", w.Name, resp.CriticalPathOps, resp.TotalOps)
		}
		for _, pl := range resp.ParallelLoops {
			if pl.Invocations < 1 || pl.Workers < 1 || pl.WorkerOps < pl.CritOps {
				t.Fatalf("%s: implausible parallel loop record %+v", w.Name, pl)
			}
		}
		break
	}
	if !found {
		t.Fatal("no workload produced a parallel loop under workers=4")
	}

	status, fields := postJSON(t, ts, "/v1/profile",
		map[string]any{"workload": workloads.All()[0].Name, "workers": 65})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("workers=65: status = %d (%s), want 422", status, fields["error"])
	}

	// The run above bumped the parallel-engine counters now visible in stats.
	_, sr := getStats(t, ts)
	if sr.Exec.ParallelLoopRuns < 1 || sr.Exec.CompiledViews < 1 {
		t.Fatalf("parallel counters not visible: %+v", sr.Exec)
	}
}

// TestServerStats: counters move, the cache is visible, expvar's "suifxd"
// var carries the same snapshot.
func TestServerStats(t *testing.T) {
	cache := driver.NewCache()
	_, ts := newTestServer(t, Config{Cache: cache, MaxConcurrent: 7})
	w := workloads.All()[0]
	if status, _ := postJSON(t, ts, "/v1/analyze", map[string]any{"workload": w.Name}); status != 200 {
		t.Fatalf("analyze failed: %d", status)
	}
	status, sr := getStats(t, ts)
	if status != http.StatusOK {
		t.Fatalf("stats status = %d", status)
	}
	if sr.Cache.Misses < 1 || sr.Cache.Entries < 1 {
		t.Fatalf("cache stats not visible: %+v", sr.Cache)
	}
	if sr.MaxConcurrent != 7 {
		t.Fatalf("max_concurrent = %d, want 7", sr.MaxConcurrent)
	}
	ep, ok := sr.Endpoints["analyze"]
	if !ok || ep.Requests < 1 {
		t.Fatalf("analyze endpoint metrics missing: %+v", sr.Endpoints)
	}
	var totalBucket int64
	for _, b := range ep.LatencyBuckets {
		totalBucket += b
	}
	if totalBucket != ep.Requests {
		t.Fatalf("latency buckets sum %d != requests %d", totalBucket, ep.Requests)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !bytes.Contains(data, []byte(`"suifxd"`)) {
		t.Fatalf("/debug/vars (%d) missing suifxd snapshot", resp.StatusCode)
	}
}

// TestServerPanicRecovery: a panicking handler becomes a 500 and bumps the
// panic counter; the middleware is exercised directly with an injected
// handler, since no production endpoint should panic.
func TestServerPanicRecovery(t *testing.T) {
	s := New(Config{Cache: driver.NewCache()})
	h := s.endpoint("stats", false, func(ctx context.Context, r *http.Request) (any, error) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := s.m.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("body %q lacks the recovery message", rec.Body.String())
	}
}
