// Package server turns the driver's interprocedural analyses into a
// long-running HTTP/JSON service: POST /v1/analyze (full driver result —
// SCC schedule, procedure summaries, mod/ref effects, parallelization
// verdicts), POST /v1/slice (interprocedural program/data/control slices),
// POST /v1/profile (exec-based loop profiles), and GET /v1/stats. The
// /v1/session routes host the interactive Guru dialogue: a POST creates a
// stateful session pinning a parsed program and its analysis, and the
// per-session guru/assert/slice/why/events subroutes drive it with
// incremental re-analysis on every accepted assertion (internal/session).
//
// Every analysis request flows through a shared driver.Cache, so identical
// sources — from one client or sixty-four — cost one analysis run. The
// service protects itself with a concurrency-limit semaphore (excess load
// is shed with 429), per-request timeouts that cancel queued SCC waves
// (504), a request body size cap (413), panic-to-500 recovery, and
// graceful shutdown; counters and latency histograms are exported over
// /v1/stats, expvar (/debug/vars) and /debug/pprof.
package server

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/session"
)

// Config tunes the service. The zero value is usable: every field falls
// back to the default documented on it.
type Config struct {
	// Addr is the listen address for ListenAndServe (default "127.0.0.1:7459").
	Addr string
	// MaxConcurrent bounds simultaneously executing heavy requests
	// (analyze/slice/profile); excess requests are shed with 429.
	// Default 32.
	MaxConcurrent int
	// RequestTimeout cancels a heavy request's context after this long;
	// the analysis abandons its remaining SCC waves and the client gets
	// 504. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; larger sources get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// Workers is the per-analysis worker pool size (0 = GOMAXPROCS).
	Workers int
	// Cache is the summary cache to serve from (default driver.Shared()).
	Cache *driver.Cache
	// ShutdownGrace bounds graceful shutdown (default 5s).
	ShutdownGrace time.Duration
	// ExecMode selects the execution engine for /v1/profile runs unless the
	// request carries its own "mode" (default auto = the bytecode engine).
	ExecMode exec.ExecMode
	// MaxSessions bounds the interactive session table; creating past the
	// bound evicts the least recently used session. Default 64.
	MaxSessions int
	// SessionTTL evicts sessions idle for this long. Default 15m.
	SessionTTL time.Duration
	// SessionSweep is the eviction janitor period. Default 30s.
	SessionSweep time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7459"
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 32
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Cache == nil {
		c.Cache = driver.Shared()
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 5 * time.Second
	}
	return c
}

// Server is the suifxd analysis service.
type Server struct {
	cfg      Config
	cache    *driver.Cache
	sessions *session.Manager
	sem      chan struct{}
	m        *metrics
	mux      *http.ServeMux
	start    time.Time
}

// New builds a Server (not yet listening; see Handler and ListenAndServe).
// Callers embedding the Handler directly (tests) must Close the server to
// stop the session janitor; ListenAndServe does it on the way out.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: cfg.Cache,
		sessions: session.NewManager(session.Config{
			MaxSessions: cfg.MaxSessions,
			IdleTTL:     cfg.SessionTTL,
			SweepEvery:  cfg.SessionSweep,
			Cache:       cfg.Cache,
			Workers:     cfg.Workers,
		}),
		sem: make(chan struct{}, cfg.MaxConcurrent),
		m: newMetrics("analyze", "slice", "profile", "tune", "stats",
			"batch", "drain",
			"session_create", "session_get", "session_delete", "session_guru",
			"session_assert", "session_slice", "session_why", "session_events"),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.Handle("POST /v1/analyze", s.endpoint("analyze", true, s.handleAnalyze))
	s.mux.Handle("POST /v1/slice", s.endpoint("slice", true, s.handleSlice))
	s.mux.Handle("POST /v1/profile", s.endpoint("profile", true, s.handleProfile))
	s.mux.Handle("POST /v1/tune", s.endpoint("tune", true, s.handleTune))
	s.mux.Handle("POST /v1/batch", s.streamEndpoint("batch", s.handleBatch))
	s.mux.Handle("POST /v1/drain", s.endpoint("drain", false, s.handleDrain))
	s.mux.Handle("GET /v1/stats", s.endpoint("stats", false, s.handleStats))
	s.mux.Handle("POST /v1/session", s.endpoint("session_create", true, s.handleSessionCreate))
	s.mux.Handle("GET /v1/session/{id}", s.endpoint("session_get", false, s.handleSessionGet))
	s.mux.Handle("DELETE /v1/session/{id}", s.endpoint("session_delete", false, s.handleSessionDelete))
	s.mux.Handle("GET /v1/session/{id}/guru", s.endpoint("session_guru", false, s.handleSessionGuru))
	s.mux.Handle("POST /v1/session/{id}/assert", s.endpoint("session_assert", true, s.handleSessionAssert))
	s.mux.Handle("POST /v1/session/{id}/slice", s.endpoint("session_slice", true, s.handleSessionSlice))
	s.mux.Handle("GET /v1/session/{id}/why", s.endpoint("session_why", true, s.handleSessionWhy))
	s.mux.Handle("GET /v1/session/{id}/events", s.endpoint("session_events", false, s.handleSessionEvents))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("/debug/vars", expvarHandler())
	publishExpvar(s)
	return s
}

// Handler returns the service's HTTP handler (for tests and embedding). The
// mux is wrapped so even routing-level errors (404 unknown route, 405 wrong
// method) come back in the service's JSON error envelope.
func (s *Server) Handler() http.Handler { return envelope{next: s.mux} }

// Close releases the server's background resources (the session janitor).
// It does not affect an in-progress ListenAndServe, which calls it itself.
func (s *Server) Close() { s.sessions.Close() }

// Sessions exposes the session manager (for tests and embedding).
func (s *Server) Sessions() *session.Manager { return s.sessions }

// ListenAndServe serves until ctx is cancelled, then shuts down gracefully:
// the listener closes, in-flight requests get ShutdownGrace to finish (the
// per-request timeout already bounds them), and nil is returned for a clean
// shutdown. ready, when non-nil, is called with the bound address before
// serving — callers use it to learn the port when Addr ends in ":0".
func (s *Server) ListenAndServe(ctx context.Context, ready func(addr string)) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	// Request contexts deliberately do not descend from ctx: in-flight
	// requests should drain within ShutdownGrace, not be cancelled the
	// instant shutdown begins (each is already bounded by RequestTimeout).
	hs := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		grace, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		_ = hs.Shutdown(grace)
	}()
	if ready != nil {
		ready(ln.Addr().String())
	}
	err = hs.Serve(ln)
	<-done
	s.Close()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
