C     Minimized from the corpus factory's scaled programs: a chain of
C     procedures sharing COMMON blocks, with an interprocedural aliased
C     loop (helper call writing a shared work array), a loop-carried
C     COMMON recurrence, a privatizable temporary chain, and scalar and
C     COMMON reductions. This shape exposed two pathological slowdowns
C     in the top-down liveness phase at corpus scale: a whole-program
C     call-site scan per procedure (quadratic in procedure count) and
C     deep cloning of constraint systems on every section union. The
C     regression test pins both the analysis results and a wall-clock
C     bound on a scaled-up variant of this pattern.
      SUBROUTINE WH0(V)
      REAL V
      COMMON /GWK/ GW(16)
      INTEGER I
      DO 10 I = 1, 8
        GW(I) = GW(I) + V * 0.125 + I * 0.5
10    CONTINUE
      END

      SUBROUTINE SP0(U)
      REAL U
      REAL LA(16), S0, T0
      INTEGER I, J
      COMMON /GC0/ GS0(16), GT0
      S0 = 0.0
      DO 10 I = 1, 16
        LA(I) = MOD(I * 3, 17) * 0.25 + U * 0.125
10    CONTINUE
      DO 20 I = 1, 8
        CALL WH0(LA(I))
        S0 = S0 + LA(I) * 0.5
20    CONTINUE
      DO 40 I = 1, 6
        DO 30 J = 1, 6
          GS0(J) = GS0(J + 1) * 0.5 + 1.5
          T0 = LA(J) * 2.0 + U
          LA(J) = T0 + T0 * 0.25
30      CONTINUE
40    CONTINUE
      GT0 = GT0 + S0
      CALL SP1(U * 0.5)
      END

      SUBROUTINE SP1(U)
      REAL U
      REAL LA(16), T0
      INTEGER I
      COMMON /GC1/ GS1(16), GT1
      DO 10 I = 1, 16
        LA(I) = MOD(I * 5, 19) * 0.25 + U * 0.125
10    CONTINUE
      DO 20 I = 1, 12
        T0 = LA(I) * 1.5 + U
        GS1(I) = T0 + 0.5
        GT1 = GT1 + LA(I) * 0.25
20    CONTINUE
      CALL SP2(U * 0.5)
      END

      SUBROUTINE SP2(U)
      REAL U
      REAL LA(16)
      INTEGER I
      COMMON /GC0/ GS0(16), GT0
      COMMON /GC1/ GS1(16), GT1
      DO 10 I = 1, 16
        LA(I) = GS0(I) + GS1(I) * 0.5
10    CONTINUE
      DO 20 I = 1, 14
        IF (LA(I) .GT. 2.0) GS0(I) = LA(I) + 0.25
        GT0 = GT0 + LA(I) * 0.125
20    CONTINUE
      END

      PROGRAM SCALEL
      COMMON /GC0/ GS0(16), GT0
      COMMON /GC1/ GS1(16), GT1
      COMMON /GWK/ GW(16)
      INTEGER I
      DO 10 I = 1, 16
        GS0(I) = MOD(I * 3, 11) * 0.5
        GS1(I) = MOD(I * 5, 12) * 0.5
        GW(I) = 0.0
10    CONTINUE
      GT0 = 0.0
      GT1 = 0.0
      CALL SP0(1.5)
      WRITE(*,*) GT0, GT1, GS0(1), GS1(2), GW(1)
      END
