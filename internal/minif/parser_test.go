package minif

import (
	"strings"
	"testing"

	"suifx/internal/ir"
)

const tiny = `
      PROGRAM main
      REAL a(100), s
      INTEGER i, n
      n = 100
      s = 0.0
      DO 10 i = 1, n
        a(i) = i * 2.0
        s = s + a(i)
10    CONTINUE
      WRITE(*,*) s
      END
`

func TestParseTiny(t *testing.T) {
	p, err := Parse("tiny", tiny)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Main()
	if m == nil || m.Name != "MAIN" {
		t.Fatalf("main = %v", m)
	}
	loops := m.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Label != "10" || l.Index.Name != "I" {
		t.Fatalf("loop = %+v", l)
	}
	if len(l.Body) != 2 {
		t.Fatalf("loop body has %d stmts, want 2", len(l.Body))
	}
	a := m.Lookup("A")
	if a == nil || !a.IsArray() || a.Dims[0] != (ir.Dim{Lo: 1, Hi: 100}) {
		t.Fatalf("symbol A = %+v", a)
	}
	if m.Lookup("I").Type != ir.TInt || m.Lookup("S").Type != ir.TReal {
		t.Fatal("implicit/explicit typing wrong")
	}
}

func TestParseSharedDoTerminator(t *testing.T) {
	src := `
      PROGRAM main
      REAL d(10,10), t(10,10)
      INTEGER i, j
      DO 30 i = 2, 9
      DO 30 j = 2, 9
        t(i,j) = d(i-1,j)
        d(i,j) = t(i,j)
30    CONTINUE
      END
`
	p, err := Parse("shared", src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Main()
	outer := m.OuterLoops()
	if len(outer) != 1 {
		t.Fatalf("outer loops = %d, want 1", len(outer))
	}
	inner, ok := outer[0].Body[0].(*ir.DoLoop)
	if !ok {
		t.Fatalf("inner stmt is %T", outer[0].Body[0])
	}
	if inner.Label != "30" || outer[0].Label != "30" {
		t.Fatal("shared label lost")
	}
	if len(inner.Body) != 2 {
		t.Fatalf("inner body = %d stmts", len(inner.Body))
	}
	// The shared 30 CONTINUE lands exactly once, after the outer loop.
	if len(m.Body) != 2 {
		t.Fatalf("proc body = %d stmts, want loop + CONTINUE", len(m.Body))
	}
	if _, ok := m.Body[1].(*ir.Continue); !ok {
		t.Fatalf("trailing stmt is %T, want Continue", m.Body[1])
	}
}

func TestParseIfGotoCycle(t *testing.T) {
	// The hydro vsetuv/85 pattern: IF (...) GO TO 85 skips the rest of the
	// loop body (a "cycle").
	src := `
      PROGRAM main
      INTEGER l, k1
      REAL x(10)
      DO 85 l = 2, 9
        k1 = l - 1
        IF (k1 .EQ. 0) GO TO 85
        x(l) = 1.0
85    CONTINUE
      END
`
	p, err := Parse("cyc", src)
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Main().OuterLoops()[0]
	if len(loop.Body) != 2 {
		t.Fatalf("loop body = %d stmts, want assign + if", len(loop.Body))
	}
	ifs, ok := loop.Body[1].(*ir.If)
	if !ok {
		t.Fatalf("second stmt is %T, want If", loop.Body[1])
	}
	un, ok := ifs.Cond.(*ir.Un)
	if !ok || un.Op != ".NOT." {
		t.Fatalf("cond = %v, want .NOT.(...)", ifs.Cond)
	}
	if len(ifs.Then) != 1 {
		t.Fatalf("then arm = %d stmts", len(ifs.Then))
	}
}

func TestParseIfGotoForward(t *testing.T) {
	// The mdg interf/1000 pattern: forward GOTO within the loop body.
	src := `
      PROGRAM main
      INTEGER s, h
      REAL xps(10), y(11)
      DO 2365 s = 1, 9
2320    IF (s .NE. 1) GO TO 2355
        DO 2350 h = 1, 5
2349      xps(h) = y(h+1)
2350    CONTINUE
2355    CONTINUE
        xps(s) = y(s)
2365  CONTINUE
      END
`
	p, err := Parse("fwd", src)
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Main().OuterLoops()[0]
	ifs, ok := loop.Body[0].(*ir.If)
	if !ok {
		t.Fatalf("first stmt is %T, want If", loop.Body[0])
	}
	// The guarded region holds the inner DO (plus its trailing CONTINUE).
	if _, ok := ifs.Then[0].(*ir.DoLoop); !ok {
		t.Fatalf("guarded stmt is %T, want DoLoop", ifs.Then[0])
	}
	// After the If: the 2355 CONTINUE then the assignment.
	if len(loop.Body) != 3 {
		t.Fatalf("loop body = %d stmts", len(loop.Body))
	}
}

func TestParseCommonDifferentShapes(t *testing.T) {
	// hydro2d's varh pattern: same common block, different shapes.
	src := `
      SUBROUTINE tistep
      COMMON /varh/ vz(10,10)
      INTEGER i
      REAL x
      x = vz(1,1)
      END
      SUBROUTINE trans2
      COMMON /varh/ vz1(0:10,10)
      vz1(0,1) = 2.0
      END
      PROGRAM main
      CALL tistep
      CALL trans2
      END
`
	p, err := Parse("cmn", src)
	if err != nil {
		t.Fatal(err)
	}
	blk := p.Commons["VARH"]
	if blk == nil {
		t.Fatal("no VARH common block")
	}
	if blk.Size != 110 {
		t.Fatalf("block size = %d, want 110 (11x10 layout)", blk.Size)
	}
	if len(blk.Layouts) != 2 {
		t.Fatalf("layouts = %d", len(blk.Layouts))
	}
	vz1 := p.Proc("TRANS2").Lookup("VZ1")
	if vz1.Dims[0] != (ir.Dim{Lo: 0, Hi: 10}) {
		t.Fatalf("vz1 dims = %+v", vz1.Dims)
	}
}

func TestParseSubarrayArgument(t *testing.T) {
	// Fig 5-1: CALL init(aif3(k1), k2-k1+1)
	src := `
      SUBROUTINE init(q, n)
      REAL q(100)
      INTEGER j, n
      DO 10 j = 1, n
        q(j) = 0.0
10    CONTINUE
      END
      PROGRAM main
      REAL aif3(100)
      INTEGER k1, k2
      k1 = 3
      k2 = 7
      CALL init(aif3(k1), k2-k1+1)
      END
`
	p, err := Parse("sub", src)
	if err != nil {
		t.Fatal(err)
	}
	var call *ir.Call
	ir.WalkStmts(p.Main().Body, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.Call); ok {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call found")
	}
	ar, ok := call.Args[0].(*ir.ArrayRef)
	if !ok || ar.Sym.Name != "AIF3" || len(ar.Idx) != 1 {
		t.Fatalf("arg0 = %v", call.Args[0])
	}
}

func TestParseParameterConstants(t *testing.T) {
	src := `
      PROGRAM main
      PARAMETER (n = 50, m = n)
      REAL a(n, m)
      a(1,1) = n
      END
`
	p, err := Parse("param", src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Main().Lookup("A")
	if a.Dims[0].Hi != 50 || a.Dims[1].Hi != 50 {
		t.Fatalf("dims = %+v", a.Dims)
	}
	asg := p.Main().Body[0].(*ir.Assign)
	c, ok := asg.Rhs.(*ir.Const)
	if !ok || c.Val != 50 {
		t.Fatalf("rhs = %v, want folded constant 50", asg.Rhs)
	}
}

func TestParseLogicalIfAndIntrinsics(t *testing.T) {
	src := `
      PROGRAM main
      REAL tmin, a(10)
      INTEGER i, kc
      kc = 0
      tmin = 1E30
      DO 10 i = 1, 10
        IF (a(i) .LT. tmin) tmin = a(i)
        IF (a(i) .GT. 2.0 .AND. i .NE. 5) kc = kc + 1
        a(i) = MAX(a(i), MIN(1.0, 2.0, 3.0)) + MOD(i, 3) + ABS(a(i)) + SQRT(a(i))
10    CONTINUE
      END
`
	if _, err := Parse("intr", src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-main", "      SUBROUTINE f\n      END\n", "no PROGRAM"},
		{"undeclared-array", "      PROGRAM m\n      x(1) = 2\n      END\n", "not declared as an array"},
		{"bad-call", "      PROGRAM m\n      CALL nope\n      END\n", "undefined subroutine"},
		{"arg-count", "      SUBROUTINE f(a)\n      END\n      PROGRAM m\n      CALL f\n      END\n", "wants 1"},
		{"recursion", "      SUBROUTINE f\n      CALL f\n      END\n      PROGRAM m\n      CALL f\n      END\n", "recursive"},
		{"missing-do-label", "      PROGRAM m\n      INTEGER i\n      DO 10 i = 1, 5\n      x = 1\n      END\n", "labeled"},
	}
	for _, c := range cases {
		_, err := Parse(c.name, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
C classic comment
* star comment
      PROGRAM main   ! trailing
! bang comment
      REAL c(10)
      c(1) = 1.0
      END
`
	p, err := Parse("cmt", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Main().Body); got != 1 {
		t.Fatalf("body = %d stmts", got)
	}
}

func TestLoopIDAndLines(t *testing.T) {
	p := MustParse("tiny", tiny)
	l := p.Main().Loops()[0]
	if l.ID("MAIN") != "MAIN/10" {
		t.Fatalf("ID = %s", l.ID("MAIN"))
	}
	if l.Pos.Line >= l.EndLine {
		t.Fatalf("loop lines %d..%d", l.Pos.Line, l.EndLine)
	}
}
