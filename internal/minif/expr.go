package minif

import (
	"strconv"

	"suifx/internal/ir"
)

// tokParser is a cursor over one line's tokens.
type tokParser struct {
	toks []token
	pos  int
	line int
}

func newTokParser(l *srcLine) *tokParser { return &tokParser{toks: l.toks, line: l.num} }

func (t *tokParser) peek() token { return t.toks[t.pos] }
func (t *tokParser) next() token {
	tok := t.toks[t.pos]
	if tok.kind != tEOF {
		t.pos++
	}
	return tok
}
func (t *tokParser) atEOF() bool { return t.peek().kind == tEOF }

// eat consumes the operator text if it is next.
func (t *tokParser) eat(op string) bool {
	if tok := t.peek(); tok.kind == tOp && tok.text == op {
		t.pos++
		return true
	}
	return false
}

// ident consumes and returns an identifier.
func (t *tokParser) ident() (string, bool) {
	if tok := t.peek(); tok.kind == tIdent {
		t.pos++
		return tok.text, true
	}
	return "", false
}

// peekIdent returns the next identifier without consuming.
func (t *tokParser) peekIdent() (string, bool) {
	if tok := t.peek(); tok.kind == tIdent {
		return tok.text, true
	}
	return "", false
}

var intrinsics = map[string]int{
	// name -> arity (-1 = variadic >= 2)
	"MIN": -1, "MAX": -1, "MOD": 2, "ABS": 1, "SQRT": 1,
	"EXP": 1, "SIN": 1, "COS": 1, "INT": 1, "FLOAT": 1, "DBLE": 1,
}

// Expression grammar (loosest to tightest):
//
//	or     := and (.OR. and)*
//	and    := not (.AND. not)*
//	not    := .NOT. not | rel
//	rel    := add ((.EQ.|.NE.|.LT.|.LE.|.GT.|.GE.) add)?
//	add    := mul (("+"|"-") mul)*
//	mul    := unary (("*"|"/") unary)*
//	unary  := "-" unary | primary
//	primary:= const | name | name(args) | "(" or ")"
func (p *parser) parseExpr(l *srcLine, tp *tokParser) (ir.Expr, error) {
	return p.parseOr(l, tp)
}

func (p *parser) parseOr(l *srcLine, tp *tokParser) (ir.Expr, error) {
	e, err := p.parseAnd(l, tp)
	if err != nil {
		return nil, err
	}
	for tp.peek().kind == tDotOp && tp.peek().text == ".OR." {
		tp.next()
		r, err := p.parseAnd(l, tp)
		if err != nil {
			return nil, err
		}
		e = &ir.Bin{Op: ir.OpOr, L: e, R: r, Pos: ir.Pos{Line: l.num}}
	}
	return e, nil
}

func (p *parser) parseAnd(l *srcLine, tp *tokParser) (ir.Expr, error) {
	e, err := p.parseNot(l, tp)
	if err != nil {
		return nil, err
	}
	for tp.peek().kind == tDotOp && tp.peek().text == ".AND." {
		tp.next()
		r, err := p.parseNot(l, tp)
		if err != nil {
			return nil, err
		}
		e = &ir.Bin{Op: ir.OpAnd, L: e, R: r, Pos: ir.Pos{Line: l.num}}
	}
	return e, nil
}

func (p *parser) parseNot(l *srcLine, tp *tokParser) (ir.Expr, error) {
	if tp.peek().kind == tDotOp && tp.peek().text == ".NOT." {
		tp.next()
		x, err := p.parseNot(l, tp)
		if err != nil {
			return nil, err
		}
		return &ir.Un{Op: ".NOT.", X: x, Pos: ir.Pos{Line: l.num}}, nil
	}
	return p.parseRel(l, tp)
}

var relOps = map[string]ir.BinOp{
	".EQ.": ir.OpEQ, ".NE.": ir.OpNE, ".LT.": ir.OpLT,
	".LE.": ir.OpLE, ".GT.": ir.OpGT, ".GE.": ir.OpGE,
}

func (p *parser) parseRel(l *srcLine, tp *tokParser) (ir.Expr, error) {
	e, err := p.parseAdd(l, tp)
	if err != nil {
		return nil, err
	}
	if tp.peek().kind == tDotOp {
		if op, ok := relOps[tp.peek().text]; ok {
			tp.next()
			r, err := p.parseAdd(l, tp)
			if err != nil {
				return nil, err
			}
			return &ir.Bin{Op: op, L: e, R: r, Pos: ir.Pos{Line: l.num}}, nil
		}
	}
	return e, nil
}

func (p *parser) parseAdd(l *srcLine, tp *tokParser) (ir.Expr, error) {
	e, err := p.parseMul(l, tp)
	if err != nil {
		return nil, err
	}
	for {
		var op ir.BinOp
		switch {
		case tp.eat("+"):
			op = ir.OpAdd
		case tp.eat("-"):
			op = ir.OpSub
		default:
			return e, nil
		}
		r, err := p.parseMul(l, tp)
		if err != nil {
			return nil, err
		}
		e = &ir.Bin{Op: op, L: e, R: r, Pos: ir.Pos{Line: l.num}}
	}
}

func (p *parser) parseMul(l *srcLine, tp *tokParser) (ir.Expr, error) {
	e, err := p.parseUnary(l, tp)
	if err != nil {
		return nil, err
	}
	for {
		var op ir.BinOp
		switch {
		case tp.eat("*"):
			op = ir.OpMul
		case tp.eat("/"):
			op = ir.OpDiv
		default:
			return e, nil
		}
		r, err := p.parseUnary(l, tp)
		if err != nil {
			return nil, err
		}
		e = &ir.Bin{Op: op, L: e, R: r, Pos: ir.Pos{Line: l.num}}
	}
}

func (p *parser) parseUnary(l *srcLine, tp *tokParser) (ir.Expr, error) {
	if tp.eat("-") {
		x, err := p.parseUnary(l, tp)
		if err != nil {
			return nil, err
		}
		if c, ok := x.(*ir.Const); ok {
			return &ir.Const{Val: -c.Val, IsInt: c.IsInt, Pos: c.Pos}, nil
		}
		return &ir.Un{Op: "-", X: x, Pos: ir.Pos{Line: l.num}}, nil
	}
	return p.parsePrimary(l, tp)
}

func (p *parser) parsePrimary(l *srcLine, tp *tokParser) (ir.Expr, error) {
	pos := ir.Pos{Line: l.num}
	t := tp.next()
	switch t.kind {
	case tInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(l.num, "bad integer %q", t.text)
		}
		return &ir.Const{Val: float64(v), IsInt: true, Pos: pos}, nil
	case tReal:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(l.num, "bad real %q", t.text)
		}
		return &ir.Const{Val: v, Pos: pos}, nil
	case tIdent:
		name := t.text
		// PARAMETER constants fold immediately.
		if c, ok := p.consts[name]; ok {
			isInt := c == float64(int64(c))
			return &ir.Const{Val: c, IsInt: isInt, Pos: pos}, nil
		}
		if tp.peek().kind == tOp && tp.peek().text == "(" {
			if _, isIntr := intrinsics[name]; isIntr && !p.isArray(name) {
				return p.parseIntrinsic(l, tp, name, pos)
			}
			tp.eat("(")
			sym := p.proc.Syms[name]
			if sym == nil || !sym.IsArray() {
				return nil, p.errf(l.num, "%s is subscripted but not declared as an array", name)
			}
			var idx []ir.Expr
			for {
				e, err := p.parseExpr(l, tp)
				if err != nil {
					return nil, err
				}
				idx = append(idx, e)
				if tp.eat(")") {
					break
				}
				if !tp.eat(",") {
					return nil, p.errf(l.num, "expected , or ) in subscript list")
				}
			}
			return &ir.ArrayRef{Sym: sym, Idx: idx, Pos: pos}, nil
		}
		sym := p.proc.Syms[name]
		if sym != nil && sym.IsArray() {
			// Bare array name (whole-array argument in CALL).
			return &ir.ArrayRef{Sym: sym, Pos: pos}, nil
		}
		return &ir.VarRef{Sym: p.scalar(name), Pos: pos}, nil
	case tOp:
		if t.text == "(" {
			e, err := p.parseExpr(l, tp)
			if err != nil {
				return nil, err
			}
			if !tp.eat(")") {
				return nil, p.errf(l.num, "missing )")
			}
			return e, nil
		}
	}
	return nil, p.errf(l.num, "unexpected token %q in expression", t.text)
}

func (p *parser) parseIntrinsic(l *srcLine, tp *tokParser, name string, pos ir.Pos) (ir.Expr, error) {
	tp.eat("(")
	var args []ir.Expr
	for {
		e, err := p.parseExpr(l, tp)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if tp.eat(")") {
			break
		}
		if !tp.eat(",") {
			return nil, p.errf(l.num, "expected , or ) in %s arguments", name)
		}
	}
	want := intrinsics[name]
	if want >= 0 && len(args) != want {
		return nil, p.errf(l.num, "%s takes %d arguments, got %d", name, want, len(args))
	}
	if want < 0 && len(args) < 2 {
		return nil, p.errf(l.num, "%s takes at least 2 arguments", name)
	}
	return &ir.Intrinsic{Name: name, Args: args, Pos: pos}, nil
}

func (p *parser) isArray(name string) bool {
	s := p.proc.Syms[name]
	return s != nil && s.IsArray()
}

// parseRef parses an assignable reference (scalar or array element).
func (p *parser) parseRef(l *srcLine, tp *tokParser) (ir.Ref, error) {
	e, err := p.parsePrimary(l, tp)
	if err != nil {
		return nil, err
	}
	r, ok := e.(ir.Ref)
	if !ok {
		return nil, p.errf(l.num, "left-hand side is not assignable")
	}
	return r, nil
}
