// Package minif parses MiniF, the Fortran-77-like source language of this
// SUIF Explorer reproduction. MiniF keeps the Fortran features the thesis's
// analyses need — labeled DO loops with shared terminators, logical IFs,
// forward IF..GOTO (structured at parse time), COMMON blocks with
// per-procedure layouts, DIMENSION/INTEGER/REAL declarations, PARAMETER
// constants, CALL with whole-array or subarray actual arguments — while
// staying small enough to implement a complete front end from scratch.
package minif

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tReal
	tOp    // + - * / ( ) , = :
	tDotOp // .EQ. .NE. .LT. .LE. .GT. .GE. .AND. .OR. .NOT.
)

type token struct {
	kind tokKind
	text string
	col  int
}

// lexLine tokenizes one logical source line (label already stripped).
func lexLine(s string, line int) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '!':
			i = len(s)
		case isAlpha(c):
			j := i
			for j < len(s) && (isAlpha(s[j]) || isDigit(s[j]) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tIdent, strings.ToUpper(s[i:j]), i})
			i = j
		case isDigit(c):
			j := i
			for j < len(s) && isDigit(s[j]) {
				j++
			}
			isReal := false
			// A '.' begins a fractional part only if not a dot-operator
			// like "1.AND.".
			if j < len(s) && s[j] == '.' && !startsDotOp(s[j:]) {
				isReal = true
				j++
				for j < len(s) && isDigit(s[j]) {
					j++
				}
			}
			if j < len(s) && (s[j] == 'E' || s[j] == 'e') && j+1 < len(s) &&
				(isDigit(s[j+1]) || s[j+1] == '+' || s[j+1] == '-') {
				isReal = true
				j += 2
				for j < len(s) && isDigit(s[j]) {
					j++
				}
			}
			k := tInt
			if isReal {
				k = tReal
			}
			toks = append(toks, token{k, s[i:j], i})
			i = j
		case c == '.':
			// Dot operator or a real like ".5".
			if i+1 < len(s) && isDigit(s[i+1]) {
				j := i + 1
				for j < len(s) && isDigit(s[j]) {
					j++
				}
				toks = append(toks, token{tReal, s[i:j], i})
				i = j
				break
			}
			j := strings.IndexByte(s[i+1:], '.')
			if j < 0 {
				return nil, fmt.Errorf("line %d: unterminated dot-operator at column %d", line, i+1)
			}
			op := strings.ToUpper(s[i : i+j+2])
			switch op {
			case ".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.", ".AND.", ".OR.", ".NOT.", ".TRUE.", ".FALSE.":
				toks = append(toks, token{tDotOp, op, i})
				i += j + 2
			default:
				return nil, fmt.Errorf("line %d: unknown operator %q", line, op)
			}
		case strings.IndexByte("+-*/(),=:", c) >= 0:
			toks = append(toks, token{tOp, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, token{tEOF, "", len(s)})
	return toks, nil
}

func startsDotOp(s string) bool {
	for _, op := range []string{".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.", ".AND.", ".OR.", ".NOT."} {
		if len(s) >= len(op) && strings.EqualFold(s[:len(op)], op) {
			return true
		}
	}
	return false
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// srcLine is one pre-processed source line: its 1-based number, optional
// numeric label, and token stream.
type srcLine struct {
	num   int
	label string
	toks  []token
}

// isComment reports whether a raw source line is blank or a comment. MiniF
// accepts '!' anywhere, and classic col-1 '*' or 'C'/'c' followed by a space
// (so CALL is not a comment).
func isComment(raw string) bool {
	t := strings.TrimRight(raw, " \t")
	if t == "" {
		return true
	}
	switch t[0] {
	case '*':
		return true
	case 'C', 'c':
		return len(t) == 1 || t[1] == ' ' || t[1] == '\t'
	}
	// TrimSpace also strips Unicode whitespace TrimRight's cutset above does
	// not (\f, \v, \r), so the result can be empty even though t is not.
	t = strings.TrimSpace(t)
	return t == "" || t[0] == '!'
}

// splitLabel peels a leading numeric statement label off the line.
func splitLabel(s string) (label, rest string) {
	t := strings.TrimLeft(s, " \t")
	i := 0
	for i < len(t) && isDigit(t[i]) {
		i++
	}
	if i > 0 && i < len(t) && (t[i] == ' ' || t[i] == '\t') {
		return t[:i], t[i:]
	}
	return "", s
}

// scan turns raw source text into srcLines, skipping comments/blank lines.
func scan(src string) ([]srcLine, error) {
	var out []srcLine
	for n, raw := range strings.Split(src, "\n") {
		line := n + 1
		if isComment(raw) {
			continue
		}
		label, rest := splitLabel(raw)
		toks, err := lexLine(rest, line)
		if err != nil {
			return nil, err
		}
		if len(toks) == 1 { // only EOF (label-only line is invalid)
			if label != "" {
				return nil, fmt.Errorf("line %d: label with no statement", line)
			}
			continue
		}
		out = append(out, srcLine{num: line, label: label, toks: toks})
	}
	return out, nil
}
