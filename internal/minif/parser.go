package minif

import (
	"fmt"
	"strconv"
	"strings"

	"suifx/internal/ir"
)

// Parse parses MiniF source text into an IR program. name labels the program
// for reporting; the program's entry point is its PROGRAM unit.
func Parse(name, src string) (*ir.Program, error) {
	lines, err := scan(src)
	if err != nil {
		return nil, err
	}
	prog := &ir.Program{
		Name:    name,
		ByName:  map[string]*ir.Proc{},
		Commons: map[string]*ir.CommonBlock{},
		Source:  strings.Split(src, "\n"),
	}
	p := &parser{prog: prog, lines: lines}
	for p.i < len(p.lines) {
		if err := p.parseUnit(); err != nil {
			return nil, err
		}
	}
	if prog.Main() == nil {
		return nil, fmt.Errorf("%s: no PROGRAM unit", name)
	}
	if err := checkCalls(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for tests and embedded workloads.
func MustParse(name, src string) *ir.Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	prog  *ir.Program
	lines []srcLine
	i     int

	// per-unit state
	proc   *ir.Proc
	consts map[string]float64 // PARAMETER constants
}

func (p *parser) cur() *srcLine { return &p.lines[p.i] }

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s: line %d: %s", p.prog.Name, line, fmt.Sprintf(format, args...))
}

// ---- program units ----

func (p *parser) parseUnit() error {
	l := p.cur()
	tp := newTokParser(l)
	kw, _ := tp.peekIdent()
	isMain := kw == "PROGRAM"
	if !isMain && kw != "SUBROUTINE" {
		return p.errf(l.num, "expected PROGRAM or SUBROUTINE, got %q", kw)
	}
	tp.next()
	name, ok := tp.ident()
	if !ok {
		return p.errf(l.num, "expected unit name")
	}
	p.proc = &ir.Proc{
		Name:   name,
		IsMain: isMain,
		Syms:   map[string]*ir.Symbol{},
		Pos:    ir.Pos{Line: l.num},
	}
	p.consts = map[string]float64{}
	if tp.eat("(") {
		for {
			pn, ok := tp.ident()
			if !ok {
				return p.errf(l.num, "expected parameter name")
			}
			sym := &ir.Symbol{Name: pn, Type: implicitType(pn), IsParam: true, ParamIndex: len(p.proc.Params)}
			p.proc.Params = append(p.proc.Params, sym)
			p.proc.Syms[pn] = sym
			if tp.eat(")") {
				break
			}
			if !tp.eat(",") {
				return p.errf(l.num, "expected , or ) in parameter list")
			}
		}
	}
	p.i++

	// Declarations.
	for p.i < len(p.lines) {
		l := p.cur()
		tp := newTokParser(l)
		kw, _ := tp.peekIdent()
		switch kw {
		case "INTEGER", "REAL":
			tp.next()
			if err := p.parseDecl(l, tp, kw); err != nil {
				return err
			}
		case "DIMENSION":
			tp.next()
			if err := p.parseDecl(l, tp, ""); err != nil {
				return err
			}
		case "COMMON":
			tp.next()
			if err := p.parseCommon(l, tp); err != nil {
				return err
			}
		case "PARAMETER":
			tp.next()
			if err := p.parseParameter(l, tp); err != nil {
				return err
			}
		default:
			goto body
		}
		p.i++
	}
body:
	stmts, end, err := p.parseStmts("")
	if err != nil {
		return err
	}
	if end != "END" {
		return p.errf(p.proc.Pos.Line, "unit %s not terminated by END", p.proc.Name)
	}
	p.proc.Body = stmts
	if p.i > 0 {
		p.proc.EndLine = p.lines[p.i-1].num
	}
	if p.prog.ByName[p.proc.Name] != nil {
		return p.errf(p.proc.Pos.Line, "duplicate procedure %s", p.proc.Name)
	}
	p.prog.Procs = append(p.prog.Procs, p.proc)
	p.prog.ByName[p.proc.Name] = p.proc
	return nil
}

// parseDecl handles INTEGER/REAL/DIMENSION lists: name or name(d1,...,dk),
// each dimension "n" or "lo:hi" with constant (or PARAMETER) bounds.
func (p *parser) parseDecl(l *srcLine, tp *tokParser, typ string) error {
	for {
		name, ok := tp.ident()
		if !ok {
			return p.errf(l.num, "expected name in declaration")
		}
		sym := p.proc.Syms[name]
		if sym == nil {
			sym = &ir.Symbol{Name: name, Type: implicitType(name)}
			p.proc.Syms[name] = sym
		}
		if typ == "INTEGER" {
			sym.Type = ir.TInt
		} else if typ == "REAL" {
			sym.Type = ir.TReal
		}
		if tp.eat("(") {
			dims, err := p.parseDims(l, tp)
			if err != nil {
				return err
			}
			sym.Dims = dims
		}
		if !tp.eat(",") {
			break
		}
	}
	return nil
}

func (p *parser) parseDims(l *srcLine, tp *tokParser) ([]ir.Dim, error) {
	var dims []ir.Dim
	for {
		a, err := p.constVal(l, tp)
		if err != nil {
			return nil, err
		}
		d := ir.Dim{Lo: 1, Hi: a}
		if tp.eat(":") {
			b, err := p.constVal(l, tp)
			if err != nil {
				return nil, err
			}
			d = ir.Dim{Lo: a, Hi: b}
		}
		if d.Hi < d.Lo {
			return nil, p.errf(l.num, "bad array bounds %d:%d", d.Lo, d.Hi)
		}
		dims = append(dims, d)
		if tp.eat(")") {
			return dims, nil
		}
		if !tp.eat(",") {
			return nil, p.errf(l.num, "expected , or ) in dimensions")
		}
	}
}

// constVal parses a (possibly negated) integer constant or PARAMETER name.
func (p *parser) constVal(l *srcLine, tp *tokParser) (int64, error) {
	neg := tp.eat("-")
	t := tp.next()
	var v int64
	switch t.kind {
	case tInt:
		n, _ := strconv.ParseInt(t.text, 10, 64)
		v = n
	case tIdent:
		c, ok := p.consts[t.text]
		if !ok {
			return 0, p.errf(l.num, "array bound %q is not a PARAMETER constant", t.text)
		}
		v = int64(c)
	default:
		return 0, p.errf(l.num, "expected constant, got %q", t.text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseCommon(l *srcLine, tp *tokParser) error {
	if !tp.eat("/") {
		return p.errf(l.num, "expected /name/ after COMMON")
	}
	bname, ok := tp.ident()
	if !ok {
		return p.errf(l.num, "expected common block name")
	}
	if !tp.eat("/") {
		return p.errf(l.num, "expected closing / after common block name")
	}
	blk := p.prog.Commons[bname]
	if blk == nil {
		blk = &ir.CommonBlock{Name: bname, Layouts: map[string][]*ir.Symbol{}}
		p.prog.Commons[bname] = blk
	}
	var layout []*ir.Symbol
	offset := int64(0)
	for {
		name, ok := tp.ident()
		if !ok {
			return p.errf(l.num, "expected name in COMMON list")
		}
		sym := p.proc.Syms[name]
		if sym == nil {
			sym = &ir.Symbol{Name: name, Type: implicitType(name)}
			p.proc.Syms[name] = sym
		}
		if tp.eat("(") {
			dims, err := p.parseDims(l, tp)
			if err != nil {
				return err
			}
			sym.Dims = dims
		}
		sym.Common = bname
		sym.CommonOffset = offset
		offset += sym.NElems()
		layout = append(layout, sym)
		if !tp.eat(",") {
			break
		}
	}
	blk.Layouts[p.proc.Name] = layout
	if offset > blk.Size {
		blk.Size = offset
	}
	return nil
}

func (p *parser) parseParameter(l *srcLine, tp *tokParser) error {
	if !tp.eat("(") {
		return p.errf(l.num, "expected ( after PARAMETER")
	}
	for {
		name, ok := tp.ident()
		if !ok {
			return p.errf(l.num, "expected name in PARAMETER")
		}
		if !tp.eat("=") {
			return p.errf(l.num, "expected = in PARAMETER")
		}
		neg := tp.eat("-")
		t := tp.next()
		var v float64
		switch t.kind {
		case tInt, tReal:
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return p.errf(l.num, "bad constant %q", t.text)
			}
			v = f
		case tIdent:
			c, ok := p.consts[t.text]
			if !ok {
				return p.errf(l.num, "unknown constant %q", t.text)
			}
			v = c
		default:
			return p.errf(l.num, "expected constant in PARAMETER")
		}
		if neg {
			v = -v
		}
		p.consts[name] = v
		if tp.eat(")") {
			return nil
		}
		if !tp.eat(",") {
			return p.errf(l.num, "expected , or ) in PARAMETER")
		}
	}
}

// ---- statements ----

// parseStmts parses statements until it reaches (without consuming) a line
// labeled stop, or consumes END/ELSE/ENDIF and returns that keyword.
// A "" stop means parse until END.
func (p *parser) parseStmts(stop string) ([]ir.Stmt, string, error) {
	var out []ir.Stmt
	for p.i < len(p.lines) {
		l := p.cur()
		if stop != "" && l.label == stop {
			return out, "", nil
		}
		tp := newTokParser(l)
		kw, _ := tp.peekIdent()
		switch kw {
		case "END":
			p.i++
			return out, "END", nil
		case "ELSE", "ENDIF":
			p.i++
			return out, kw, nil
		}
		s, err := p.parseStmt(l)
		if err != nil {
			return nil, "", err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	if stop != "" {
		return nil, "", p.errf(p.lines[len(p.lines)-1].num, "missing statement labeled %s", stop)
	}
	return out, "", nil
}

func (p *parser) parseStmt(l *srcLine) (ir.Stmt, error) {
	tp := newTokParser(l)
	pos := ir.Pos{Line: l.num}
	kw, isIdent := tp.peekIdent()
	if isIdent {
		switch kw {
		case "DO":
			return p.parseDo(l, tp)
		case "IF":
			return p.parseIf(l, tp)
		case "CALL":
			tp.next()
			return p.parseCall(l, tp)
		case "CONTINUE":
			tp.next()
			p.i++
			return &ir.Continue{Label: l.label, Pos: pos}, nil
		case "RETURN":
			p.i++
			return &ir.Return{Pos: pos}, nil
		case "STOP":
			p.i++
			return &ir.Stop{Pos: pos}, nil
		case "WRITE", "READ", "PRINT":
			return p.parseIO(l, tp, kw != "READ")
		case "GOTO", "GO":
			return nil, p.errf(l.num, "unconditional GOTO is not supported (use IF (...) GO TO)")
		}
	}
	// Assignment.
	lhs, err := p.parseRef(l, tp)
	if err != nil {
		return nil, err
	}
	if !tp.eat("=") {
		return nil, p.errf(l.num, "expected = in assignment")
	}
	rhs, err := p.parseExpr(l, tp)
	if err != nil {
		return nil, err
	}
	if !tp.atEOF() {
		return nil, p.errf(l.num, "trailing tokens after assignment: %q", tp.peek().text)
	}
	p.i++
	return &ir.Assign{Lhs: lhs, Rhs: rhs, Pos: pos}, nil
}

func (p *parser) parseDo(l *srcLine, tp *tokParser) (ir.Stmt, error) {
	tp.next() // DO
	lab := tp.next()
	if lab.kind != tInt {
		return nil, p.errf(l.num, "expected label after DO")
	}
	idxName, ok := tp.ident()
	if !ok {
		return nil, p.errf(l.num, "expected index variable in DO")
	}
	idx := p.scalar(idxName)
	if !tp.eat("=") {
		return nil, p.errf(l.num, "expected = in DO")
	}
	lo, err := p.parseExpr(l, tp)
	if err != nil {
		return nil, err
	}
	if !tp.eat(",") {
		return nil, p.errf(l.num, "expected , in DO bounds")
	}
	hi, err := p.parseExpr(l, tp)
	if err != nil {
		return nil, err
	}
	var step ir.Expr
	if tp.eat(",") {
		step, err = p.parseExpr(l, tp)
		if err != nil {
			return nil, err
		}
	}
	p.i++
	body, end, err := p.parseStmts(lab.text)
	if err != nil {
		return nil, err
	}
	if end != "" {
		return nil, p.errf(l.num, "DO %s terminated by %s instead of labeled statement", lab.text, end)
	}
	// The terminating line (label == lab) is NOT consumed here: an enclosing
	// DO sharing the same label must also stop at it. The outermost such DO's
	// parent statement list consumes it as an ordinary CONTINUE.
	endLine := l.num
	if p.i < len(p.lines) {
		endLine = p.lines[p.i].num
	}
	return &ir.DoLoop{
		Index: idx, Lo: lo, Hi: hi, Step: step,
		Body: body, Label: lab.text,
		Pos: ir.Pos{Line: l.num}, EndLine: endLine,
	}, nil
}

func (p *parser) parseIf(l *srcLine, tp *tokParser) (ir.Stmt, error) {
	pos := ir.Pos{Line: l.num}
	tp.next() // IF
	if !tp.eat("(") {
		return nil, p.errf(l.num, "expected ( after IF")
	}
	cond, err := p.parseExpr(l, tp)
	if err != nil {
		return nil, err
	}
	if !tp.eat(")") {
		return nil, p.errf(l.num, "expected ) after IF condition")
	}
	kw, _ := tp.peekIdent()
	switch kw {
	case "THEN":
		p.i++
		thenStmts, end, err := p.parseStmts("")
		if err != nil {
			return nil, err
		}
		var elseStmts []ir.Stmt
		if end == "ELSE" {
			elseStmts, end, err = p.parseStmts("")
			if err != nil {
				return nil, err
			}
		}
		if end != "ENDIF" {
			return nil, p.errf(l.num, "IF/THEN not closed by ENDIF")
		}
		return &ir.If{Cond: cond, Then: thenStmts, Else: elseStmts, Pos: pos}, nil
	case "GO", "GOTO":
		tp.next()
		if kw == "GO" {
			if to, _ := tp.peekIdent(); to != "TO" {
				return nil, p.errf(l.num, "expected TO after GO")
			}
			tp.next()
		}
		lab := tp.next()
		if lab.kind != tInt {
			return nil, p.errf(l.num, "expected label after GO TO")
		}
		p.i++
		// Structured transformation: IF (c) GO TO L skips forward to L, so
		// everything up to (not including) the statement labeled L executes
		// under .NOT. c. The label may be an enclosing DO's terminator
		// ("cycle") or a later statement in this block.
		body, end, err := p.parseStmts(lab.text)
		if err != nil {
			return nil, err
		}
		if end != "" {
			return nil, p.errf(l.num, "GO TO %s target not found before %s", lab.text, end)
		}
		return &ir.If{
			Cond: &ir.Un{Op: ".NOT.", X: cond, Pos: pos},
			Then: body,
			Pos:  pos,
		}, nil
	default:
		// Logical IF: single statement on the same line.
		s, err := p.parseSimpleStmtTail(l, tp)
		if err != nil {
			return nil, err
		}
		return &ir.If{Cond: cond, Then: []ir.Stmt{s}, Pos: pos}, nil
	}
}

// parseSimpleStmtTail parses the single-statement tail of a logical IF
// (assignment or CALL), consuming the line.
func (p *parser) parseSimpleStmtTail(l *srcLine, tp *tokParser) (ir.Stmt, error) {
	pos := ir.Pos{Line: l.num}
	kw, _ := tp.peekIdent()
	if kw == "CALL" {
		tp.next()
		return p.parseCall(l, tp)
	}
	lhs, err := p.parseRef(l, tp)
	if err != nil {
		return nil, err
	}
	if !tp.eat("=") {
		return nil, p.errf(l.num, "expected = in logical IF body")
	}
	rhs, err := p.parseExpr(l, tp)
	if err != nil {
		return nil, err
	}
	p.i++
	return &ir.Assign{Lhs: lhs, Rhs: rhs, Pos: pos}, nil
}

func (p *parser) parseCall(l *srcLine, tp *tokParser) (ir.Stmt, error) {
	pos := ir.Pos{Line: l.num}
	name, ok := tp.ident()
	if !ok {
		return nil, p.errf(l.num, "expected subroutine name after CALL")
	}
	var args []ir.Expr
	if tp.eat("(") {
		if !tp.eat(")") {
			for {
				a, err := p.parseExpr(l, tp)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if tp.eat(")") {
					break
				}
				if !tp.eat(",") {
					return nil, p.errf(l.num, "expected , or ) in CALL arguments")
				}
			}
		}
	}
	p.i++
	return &ir.Call{Name: name, Args: args, Pos: pos}, nil
}

func (p *parser) parseIO(l *srcLine, tp *tokParser, write bool) (ir.Stmt, error) {
	pos := ir.Pos{Line: l.num}
	tp.next()        // WRITE/READ/PRINT
	if tp.eat("(") { // unit spec like (*,*) — skip to matching )
		depth := 1
		for depth > 0 {
			t := tp.next()
			if t.kind == tEOF {
				return nil, p.errf(l.num, "unterminated I/O unit spec")
			}
			if t.kind == tOp && t.text == "(" {
				depth++
			}
			if t.kind == tOp && t.text == ")" {
				depth--
			}
		}
	} else {
		tp.eat("*")
		tp.eat(",")
		tp.eat("*")
	}
	tp.eat(",")
	var args []ir.Expr
	for !tp.atEOF() {
		a, err := p.parseExpr(l, tp)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !tp.eat(",") {
			break
		}
	}
	p.i++
	return &ir.IO{Write: write, Args: args, Pos: pos}, nil
}

// ---- symbols ----

func implicitType(name string) ir.Type {
	c := name[0]
	if c >= 'I' && c <= 'N' || c >= 'i' && c <= 'n' {
		return ir.TInt
	}
	return ir.TReal
}

// scalar returns (creating if needed) the scalar symbol named n.
func (p *parser) scalar(n string) *ir.Symbol {
	if s := p.proc.Syms[n]; s != nil {
		return s
	}
	s := &ir.Symbol{Name: n, Type: implicitType(n)}
	p.proc.Syms[n] = s
	return s
}

// checkCalls validates that every CALL target exists with a compatible
// argument count, and that the program is non-recursive.
func checkCalls(prog *ir.Program) error {
	for _, pr := range prog.Procs {
		var err error
		ir.WalkStmts(pr.Body, func(s ir.Stmt) bool {
			c, ok := s.(*ir.Call)
			if !ok || err != nil {
				return true
			}
			callee := prog.ByName[c.Name]
			if callee == nil {
				err = fmt.Errorf("%s: line %d: CALL to undefined subroutine %s", prog.Name, c.Pos.Line, c.Name)
				return false
			}
			if len(c.Args) != len(callee.Params) {
				err = fmt.Errorf("%s: line %d: CALL %s passes %d args, wants %d",
					prog.Name, c.Pos.Line, c.Name, len(c.Args), len(callee.Params))
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	if _, ok := prog.BottomUpOrder(); !ok {
		return fmt.Errorf("%s: recursive call graph is not supported", prog.Name)
	}
	return nil
}
