// Fuzzing lives in an external test package so the seed corpus can come
// from internal/workloads (which itself imports minif).
package minif_test

import (
	"strings"
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/minif"
	"suifx/internal/workloads"
)

// FuzzMiniFParser feeds arbitrary source to the parser, seeded with every
// built-in workload, corpus-factory programs (structured, multi-procedure,
// COMMON-heavy — a much richer mutation base than the hand-written seeds
// alone), plus mutation-friendly fragments. The contract under fuzzing:
// Parse either returns a program or an error — it never panics, and a
// successful parse is non-nil and re-parses to the same shape.
func FuzzMiniFParser(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source)
	}
	for seed := int64(1); seed <= 3; seed++ {
		p := corpus.Generate(seed, corpus.Config{
			TargetLines: 300, AliasDensity: 0.4, ReductionMix: 0.4,
		})
		f.Add(p.Source)
	}
	f.Add("")
	f.Add("      PROGRAM T\n      END\n")
	f.Add("      PROGRAM T\n      DO 10 I = 1, 10\n   10 CONTINUE\n      END\n")
	f.Add("      SUBROUTINE S(A)\n      DIMENSION A(10)\n      A(1) = 1.0\n      RETURN\n      END\n")
	f.Add("      PROGRAM T\n      COMMON /B/ X(5)\n      IF (X(1) .LT. 0) X(1) = -X(1)\n      END\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minif.Parse("fuzz.f", src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		// A successful parse must be stable: parsing the same source again
		// yields the same procedures (the analyses depend on this —
		// deterministic parse is what makes content-hash caching sound).
		again, err := minif.Parse("fuzz.f", src)
		if err != nil {
			t.Fatalf("accepted source rejected on re-parse: %v", err)
		}
		if len(again.Procs) != len(prog.Procs) {
			t.Fatalf("re-parse changed procedure count: %d vs %d", len(again.Procs), len(prog.Procs))
		}
		for i := range prog.Procs {
			if prog.Procs[i].Name != again.Procs[i].Name {
				t.Fatalf("re-parse changed procedure order: %s vs %s", prog.Procs[i].Name, again.Procs[i].Name)
			}
		}
		_ = strings.TrimSpace(src)
	})
}
