package experiments

import (
	"sort"

	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

// ch6Apps are the twelve programs on which parallel reductions have an
// impact (Figs 6-4..6-7).
var ch6Apps = []string{
	"su2cor", "nasa7", "ora", "mdljdp2",
	"appbt", "applu", "appsp", "cgm", "embar", "mgrid",
	"bdna", "trfd",
}

// Fig6_1 reproduces the machine-characteristics table.
func Fig6_1() *Table {
	t := &Table{
		ID:     "Fig 6-1",
		Title:  "Characteristics of the multiprocessor models",
		Header: []string{"machine", "processors", "clock (MHz)", "cache (elems)", "interconnect"},
	}
	for _, m := range []*machine.Model{machine.SGIChallenge(), machine.SGIOrigin(), machine.AlphaServer8400()} {
		ic := "shared bus"
		if m.BusPenalty == 0 {
			ic = "scalable interconnect"
		}
		t.Rows = append(t.Rows, []string{m.Name, itoa(m.Procs), f1(m.ClockMHz), i64(m.CacheElems), ic})
	}
	return t
}

// Fig6_2 reproduces the static census of reductions by operation type over
// the SPEC92-style suite.
func Fig6_2() *Table {
	t := &Table{
		ID:     "Fig 6-2",
		Title:  "Reductions by operation type (SPEC92-style suite, static counts)",
		Header: []string{"operation", "scalar", "array"},
	}
	tot := map[string]int{}
	for _, w := range workloads.Suite("spec92") {
		for k, n := range summary.CountReductionStatements(w.Program()) {
			tot[k] += n
		}
	}
	for _, op := range []string{"+", "*", "MIN", "MAX"} {
		t.Rows = append(t.Rows, []string{op, itoa(tot[op+" scalar"]), itoa(tot[op+" array"])})
	}
	return t
}

// Fig6_3 reproduces the NAS/Perfect program-information table.
func Fig6_3() *Table {
	t := &Table{
		ID:     "Fig 6-3",
		Title:  "Program information (NAS and Perfect Club style suites)",
		Header: []string{"program", "suite", "description", "lines"},
	}
	var ws []*workloads.Workload
	ws = append(ws, workloads.Suite("nas")...)
	ws = append(ws, workloads.Suite("perfect")...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
	for _, w := range ws {
		t.Rows = append(t.Rows, []string{w.Name, w.Suite, w.Description, itoa(w.Program().LineCount(true))})
	}
	return t
}

// Fig6_4 reproduces the static impact of reduction recognition: how many
// loops parallelize without and with it.
func Fig6_4() *Table {
	t := &Table{
		ID:     "Fig 6-4",
		Title:  "Impact of reductions (static): parallelizable loops without/with recognition",
		Header: []string{"program", "loops", "parallel w/o red", "parallel w/ red", "red loops"},
	}
	for _, name := range ch6Apps {
		w := workloads.ByName(name)
		_, sum := cachedAnalysis(w)
		without := parallel.ParallelizeWith(sum, parallel.Config{UseReductions: false}).Stats()
		with := parallel.ParallelizeWith(sum, parallel.Config{UseReductions: true}).Stats()
		t.Rows = append(t.Rows, []string{
			name, itoa(with.TotalLoops),
			itoa(without.ParallelizableN), itoa(with.ParallelizableN),
			itoa(with.WithReductionN),
		})
	}
	return t
}

// Fig6_5 reproduces coverage and granularity with reductions enabled on the
// twelve impacted programs.
func Fig6_5() *Table {
	t := &Table{
		ID:     "Fig 6-5",
		Title:  "Coverage and granularity with parallel reductions",
		Header: []string{"program", "coverage w/o red", "coverage w/ red", "granularity w/ red"},
	}
	model := machine.SGIChallenge()
	runs := perApp(ch6Apps, runWithWithoutReductions)
	for i, name := range ch6Apps {
		without, with := runs[i][0], runs[i][1]
		t.Rows = append(t.Rows, []string{
			name,
			pct(model.Coverage(without.MachineWorkload())),
			pct(model.Coverage(with.MachineWorkload())),
			ms(model.GranularityMs(with.MachineWorkload())),
		})
	}
	return t
}

// fig66On builds the reduction speedup table for one machine model.
func fig66On(id string, m *machine.Model, procs int) *Table {
	t := &Table{
		ID:     id,
		Title:  "Performance improvement due to reduction analysis on " + m.Name,
		Header: []string{"program", "speedup w/o red", "speedup w/ red"},
	}
	runs := perApp(ch6Apps, runWithWithoutReductions)
	for i, name := range ch6Apps {
		without, with := runs[i][0], runs[i][1]
		t.Rows = append(t.Rows, []string{
			name,
			f1(m.Speedup(without.MachineWorkload(), procs)),
			f1(m.Speedup(with.MachineWorkload(), procs)),
		})
	}
	return t
}

// runWithWithoutReductions profiles one workload under the base compiler
// with reductions off and on: [0] = without, [1] = with.
func runWithWithoutReductions(w *workloads.Workload) [2]*AppRun {
	return [2]*AppRun{
		runApp(w, parallel.Config{UseReductions: false}),
		runApp(w, parallel.Config{UseReductions: true}),
	}
}

// Fig6_6 reproduces the 4-processor SGI Challenge reduction speedups.
func Fig6_6() *Table { return fig66On("Fig 6-6", machine.SGIChallenge(), 4) }

// Fig6_7 reproduces the 4-processor SGI Origin reduction speedups.
func Fig6_7() *Table { return fig66On("Fig 6-7", machine.SGIOrigin(), 4) }
