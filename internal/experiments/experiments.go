// Package experiments regenerates every table and figure of the paper's
// evaluation chapters from this reproduction's own analyses, profiles and
// machine models. Each FigN_M function returns a Table whose rows parallel
// the paper's; EXPERIMENTS.md records the measured-vs-paper comparison.
package experiments

import (
	"fmt"
	"strings"

	"suifx/internal/depend"
	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/liveness"
	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/region"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

// Table is one reproduced table/figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// AppRun bundles one workload's static analysis and profiled execution.
type AppRun struct {
	W    *workloads.Workload
	Prog *ir.Program
	Sum  *summary.Analysis
	Par  *parallel.Result
	Prof *exec.Profiler
	Dyn  *exec.DynDep
	In   *exec.Interp
}

// cachedAnalysis returns a workload's parsed program and whole-program
// summary from the shared driver cache. The pair is shared between tables
// (and between concurrent table generators): every consumer treats the
// program and analysis as read-only.
func cachedAnalysis(w *workloads.Workload) (*ir.Program, *summary.Analysis) {
	res := driver.Shared().MustAnalyze(w.Name, w.Source, driver.Options{})
	return res.Prog, res.Sum
}

// runApp analyzes and profiles one workload under a configuration. The
// parse and whole-program analysis come from the shared driver cache, so
// the dozens of tables that re-visit the same workloads derive the summary
// once; profiling state (interpreter, profiler) is always per-run.
func runApp(w *workloads.Workload, cfg parallel.Config) *AppRun {
	prog, sum := cachedAnalysis(w)
	return runAppOn(w, prog, sum, cfg)
}

// runAppOn profiles an already-analyzed program (so liveness oracles built
// on the same summary keep their region identity).
func runAppOn(w *workloads.Workload, prog *ir.Program, sum *summary.Analysis, cfg parallel.Config) *AppRun {
	par := parallel.ParallelizeWith(sum, cfg)
	in := exec.New(prog)
	prof := exec.NewProfiler(in)
	dyn := exec.NewDynDep(in)
	// The analyzer ignores variables the compiler already resolved —
	// inductions and reductions (§2.5.2).
	type rng struct{ lo, hi int64 }
	ignore := map[*ir.DoLoop][]rng{}
	for _, li := range par.Ordered {
		for _, vr := range li.Dep.Vars {
			if vr.Class != depend.ClassIndex && vr.Class != depend.ClassReduction {
				continue
			}
			if lo, hi, ok := in.SymRange(li.Region.Proc.Name, vr.Sym.Name); ok {
				ignore[li.Region.Loop] = append(ignore[li.Region.Loop], rng{lo, hi})
			}
		}
	}
	dyn.IgnoreVar = func(l *ir.DoLoop, addr int64) bool {
		for _, r := range ignore[l] {
			if addr >= r.lo && addr <= r.hi {
				return true
			}
		}
		return false
	}
	if err := in.Run(); err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", w.Name, err))
	}
	return &AppRun{W: w, Prog: prog, Sum: sum, Par: par, Prof: prof, Dyn: dyn, In: in}
}

// ch4Config is the Chapter 4 compiler: reductions on, array liveness off.
func ch4Config(w *workloads.Workload, userAssisted bool) parallel.Config {
	cfg := parallel.Config{UseReductions: true}
	if userAssisted {
		cfg.Assertions = w.Assertions()
	}
	return cfg
}

// ch5Config adds the full array liveness oracle.
func ch5Config(sum *summary.Analysis, variant liveness.Variant) parallel.Config {
	live := liveness.Analyze(sum, variant)
	return parallel.Config{UseReductions: true, DeadAtExit: live.Oracle()}
}

// MachineWorkload converts a run into the cost model's terms, honoring the
// workload's memory-behaviour metadata.
func (ar *AppRun) MachineWorkload() machine.Workload {
	var w machine.Workload
	streaming := map[string]bool{}
	for _, id := range ar.W.StreamingLoops {
		streaming[id] = true
	}
	conflicting := map[string]bool{}
	for _, id := range ar.W.ConflictingDecomp {
		conflicting[id] = true
	}
	// Only the chosen parallel loops appear as LoopWork: the parallelizer
	// guarantees they are dynamically disjoint, so their times partition the
	// run against the serial remainder (everything else runs sequentially).
	var loopOps int64
	for _, li := range ar.Par.Ordered {
		if !li.Chosen {
			continue
		}
		lp := ar.Prof.Of(li.Region.Loop)
		if lp == nil {
			continue
		}
		loopOps += lp.TotalOps
		lw := machine.LoopWork{
			ID:          li.ID(),
			Invocations: lp.Invocations,
			TotalOps:    lp.TotalOps,
			Parallel:    true,
			Streaming:   streaming[li.ID()],
		}
		if lw.Streaming {
			lw.StreamPasses = lp.Iterations
		}
		if conflicting[li.ID()] && li.Chosen {
			lw.ConflictingDecomp = true
		}
		for _, vr := range li.Dep.Vars {
			switch vr.Class {
			case depend.ClassReduction:
				lw.ReductionElems += vr.Sym.NElems()
				lw.StaggeredFinalize = true
			case depend.ClassPrivate:
				lw.PrivateElems += vr.Sym.NElems()
				if vr.NeedsFinalization {
					lw.FinalizeElems += vr.Sym.NElems()
				}
			}
		}
		lw.FootprintElems = loopFootprint(ar.Sum, li.Region)
		w.Loops = append(w.Loops, lw)
	}
	w.SerialOps = ar.Prof.TotalOps() - loopOps
	if w.SerialOps < 0 {
		w.SerialOps = 0
	}
	return w
}

func loopFootprint(sum *summary.Analysis, r *region.Region) int64 {
	rs := sum.RegionSum[r]
	if rs == nil {
		return 0
	}
	var n int64
	for _, sym := range rs.SortedSyms() {
		if sym.IsArray() {
			n += sym.NElems()
		}
	}
	return n
}

func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
func ms(f float64) string  { return fmt.Sprintf("%.3f ms", f) }
func f1(f float64) string  { return fmt.Sprintf("%.1f", f) }
func itoa(n int) string    { return fmt.Sprintf("%d", n) }
func i64(n int64) string   { return fmt.Sprintf("%d", n) }

// scaledModel shrinks a machine's cache so our scaled-down working sets
// exercise the same cache-pressure regimes as the paper's full-size runs
// (see DESIGN.md's hardware substitution).
func scaledModel(m *machine.Model, cacheElems int64) *machine.Model {
	c := *m
	c.CacheElems = cacheElems
	return &c
}
