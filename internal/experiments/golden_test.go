package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden table snapshots")

// maskTiming blanks the wall-clock cells of the Fig 5-6 running-time table:
// the timings are real measurements on the current host and legitimately
// vary run to run, while the table's shape (programs, columns) must not.
func maskTiming(t *Table) *Table {
	masked := &Table{ID: t.ID, Title: t.Title, Header: t.Header, Notes: t.Notes}
	for _, r := range t.Rows {
		row := append([]string(nil), r...)
		for i := 1; i < len(row); i++ {
			row[i] = "<ms>"
		}
		masked.Rows = append(masked.Rows, row)
	}
	return masked
}

func goldenRender(tb *Table) string {
	if tb.ID == "Fig 5-6" {
		tb = maskTiming(tb)
	}
	return tb.String()
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", "fig"+strings.ReplaceAll(id, "-", "_")+".txt")
}

// TestGoldenTables snapshots every reproduced table. The tables are
// produced by the concurrent generation path (Generate fans out across
// GOMAXPROCS, workload analyses come from the concurrent driver), so a
// match against the committed snapshots certifies the concurrent pipeline
// reproduces the sequential results byte-for-byte. Regenerate with
// `go test ./internal/experiments -run TestGoldenTables -update`.
func TestGoldenTables(t *testing.T) {
	ids := TableIDs()
	tables, err := Generate(ids)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		id, tb := id, tables[i]
		t.Run(id, func(t *testing.T) {
			got := goldenRender(tb)
			path := goldenPath(id)
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("table %s diverged from golden snapshot %s\n--- got ---\n%s\n--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}

// TestGenerateDeterministic regenerates every table a second time — now
// entirely from the warm summary cache — and checks the bytes are identical
// to the first pass, including the fan-out ordering guarantee.
func TestGenerateDeterministic(t *testing.T) {
	ids := TableIDs()
	first, err := Generate(ids)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Generate(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id == "5-6" {
			continue // wall-clock timings differ by construction
		}
		if a, b := first[i].String(), second[i].String(); a != b {
			t.Errorf("table %s not reproducible across runs\n--- first ---\n%s\n--- second ---\n%s", id, a, b)
		}
	}
}
