package experiments

import (
	"testing"

	"suifx/internal/exec"
	"suifx/internal/workloads"
)

// TestNanzParallelCoverage pins the differential guarantees for the six
// Nanz et al. tasks explicitly (the generic suites cover them too, via
// workloads.All, but this test keeps the guarantee from silently eroding
// if a task's plan stops approving loops): every task must have a chosen
// parallel loop, the tree and bytecode engines must produce bit-identical
// arenas at W ∈ {1, 2, 4}, and each parallel run must validate against a
// sequential run.
func TestNanzParallelCoverage(t *testing.T) {
	par := map[string]bool{}
	for _, n := range parallelWorkloads(t) {
		par[n] = true
	}
	suite := workloads.Suite("nanz")
	if len(suite) != 6 {
		t.Fatalf("nanz suite has %d workloads, want 6", len(suite))
	}
	for _, w := range suite {
		if !par[w.Name] {
			t.Errorf("%s: no approved parallel loop — excluded from the differential suites", w.Name)
			continue
		}
		for _, workers := range []int{1, 2, 4} {
			tree, _, err := RunParallel(w.Name, ParallelRunOptions{
				Workers: workers, Mode: exec.ModeTree, Staggered: true, Chunks: 4,
			})
			if err != nil {
				t.Fatalf("%s W=%d tree: %v", w.Name, workers, err)
			}
			for _, mode := range []exec.ExecMode{exec.ModeBytecode, exec.ModeTiered, exec.ModeRegister} {
				vmRun, _, err := RunParallel(w.Name, ParallelRunOptions{
					Workers: workers, Mode: mode, Staggered: true, Chunks: 4,
				})
				if err != nil {
					t.Fatalf("%s W=%d %v: %v", w.Name, workers, mode, err)
				}
				if i, ok := bitsEqual(tree.Arena(), vmRun.Arena()); !ok {
					t.Errorf("%s W=%d mode=%v: arenas differ from tree at cell %d",
						w.Name, workers, mode, i)
				}
			}
			for _, mode := range []exec.ExecMode{exec.ModeTree, exec.ModeBytecode, exec.ModeTiered, exec.ModeRegister} {
				if err := validateParallelRun(w.Name, workers, mode, true); err != nil {
					t.Errorf("%s W=%d mode=%v: %v", w.Name, workers, mode, err)
				}
			}
		}
	}
}
