package experiments

import (
	"context"
	"fmt"

	"suifx/internal/parallel"
	"suifx/internal/tune"
	"suifx/internal/workloads"
)

// TuneApp runs the auto-tuning search over one workload's user-assisted
// Chapter 4 parallelization (the same plan source the parallel speedup
// experiments execute) and returns the report plus the parallelization
// result it searched, so callers can lower the winning plan and run it.
func TuneApp(ctx context.Context, name string, cfg tune.Config) (*tune.Report, *parallel.Result, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	_, sum := cachedAnalysis(w)
	res := parallel.ParallelizeWith(sum, ch4Config(w, true))
	rep, err := tune.Search(ctx, res, cfg)
	if err != nil {
		return nil, nil, err
	}
	return rep, res, nil
}
