package experiments

import (
	"fmt"

	"suifx/internal/exec"
	"suifx/internal/parallel"
	"suifx/internal/workloads"
)

// This file re-runs the Chapter 4/6 speedup experiments on the execution
// engines themselves (not just the machine cost model): a workload's
// user-assisted parallelization is lowered to a runtime plan and executed,
// and speedup is reported in virtual time — sequential ops over the
// parallel run's critical-path ops under the §4.5 even-chunk schedule.
// Virtual time is deterministic and independent of the host's core count,
// so the curves are reproducible on a single-core CI runner where
// wall-clock parallel speedup is physically impossible.

// ParallelRunOptions selects the engine and schedule for RunParallel.
type ParallelRunOptions struct {
	Workers   int
	Mode      exec.ExecMode
	Staggered bool // §6.3.4 chunked finalization vs §6.3.2 single-lock
	Chunks    int
}

// RunParallel executes one workload under the plan derived from its
// user-assisted Chapter 4 parallelization and returns the finished
// interpreter (arena, ops and parallel stats intact) plus the analysis
// result the plan came from.
func RunParallel(name string, opt ParallelRunOptions) (*exec.Interp, *parallel.Result, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	prog, sum := cachedAnalysis(w)
	res := parallel.ParallelizeWith(sum, ch4Config(w, true))
	plan := parallel.BuildPlanOpts(res, parallel.PlanOptions{
		Workers: opt.Workers, Staggered: opt.Staggered, Chunks: opt.Chunks,
	})
	in := exec.NewWithPlan(prog, plan)
	in.Mode = opt.Mode
	if err := in.Run(); err != nil {
		return nil, nil, err
	}
	return in, res, nil
}

// ParallelPoint is one point of a virtual-time speedup curve.
type ParallelPoint struct {
	Workers   int
	SeqOps    int64   // sequential run's total ops
	CritOps   int64   // parallel run's critical-path ops
	VTSpeedup float64 // SeqOps / CritOps
}

// ParallelSpeedups runs one workload's plan at each worker count on the
// bytecode engine and reports the virtual-time speedup curve.
func ParallelSpeedups(name string, workers []int) ([]ParallelPoint, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	prog, _ := cachedAnalysis(w)
	seq := exec.New(prog)
	seq.Mode = exec.ModeBytecode
	if err := seq.Run(); err != nil {
		return nil, err
	}
	out := make([]ParallelPoint, 0, len(workers))
	for _, n := range workers {
		in, _, err := RunParallel(name, ParallelRunOptions{
			Workers: n, Mode: exec.ModeBytecode, Staggered: true, Chunks: 4,
		})
		if err != nil {
			return nil, err
		}
		crit := in.CriticalPathOps()
		pt := ParallelPoint{Workers: n, SeqOps: seq.Ops(), CritOps: crit}
		if crit > 0 {
			pt.VTSpeedup = float64(seq.Ops()) / float64(crit)
		}
		out = append(out, pt)
	}
	return out, nil
}

// validateParallelRun is the §6.5.2 validation generalized over engine and
// finalization discipline: run sequentially and in parallel, mask storage
// that is legitimately dead after the parallel loops (privatized variables
// and callee locals), and compare the rest.
func validateParallelRun(name string, workers int, mode exec.ExecMode, staggered bool) error {
	w := workloads.ByName(name)
	prog, sum := cachedAnalysis(w)
	_ = prog
	res := parallel.ParallelizeWith(sum, ch4Config(w, true))
	plan := parallel.BuildPlanOpts(res, parallel.PlanOptions{
		Workers: workers, Staggered: staggered, Chunks: 4,
	})
	return ValidatePlanned(res, plan, mode)
}

// ValidatePlanned runs res's program sequentially and under an arbitrary
// execution plan over the same parallelization result — any schedule,
// discipline, per-loop worker cap or interchange depth the tuner may
// enumerate — and compares live storage under the parallel-dead masks. It
// is the bit-identity oracle for every tuner variant: a plan that survives
// it produced the sequential answer.
func ValidatePlanned(res *parallel.Result, plan *exec.ParallelPlan, mode exec.ExecMode) error {
	seq := exec.New(res.Prog)
	seq.Mode = mode
	if err := seq.Run(); err != nil {
		return err
	}
	par := exec.NewWithPlan(res.Prog, plan)
	par.Mode = mode
	if err := par.Run(); err != nil {
		return err
	}
	// Compare only live program storage: everything from ScratchBase on is
	// call-argument spill space, dead between statements, and parallel
	// workers spill into their own blocks rather than the base region.
	n := seq.ScratchBase()
	seqA := append([]float64(nil), seq.Arena()[:n]...)
	parA := append([]float64(nil), par.Arena()[:n]...)
	maskPlannedDead(res, plan, par, seqA, parA)
	return exec.Validate(seqA, parA, 1e-6)
}

// maskPlannedDead zeroes the cells of both images that a planned run may
// legitimately leave different from a sequential run: privatized variables
// (including inner loop indices) of each planned loop and the static locals
// of procedures called inside it. It masks by the plan's actual loops — a
// tuner interchange variant plans an inner nest level, and that level's
// classification (not the outermost one) names the privatized storage.
func maskPlannedDead(res *parallel.Result, plan *exec.ParallelPlan, in *exec.Interp, seqA, parA []float64) {
	n := int64(len(seqA))
	mask := func(lo, hi int64) {
		for i := lo; i <= hi && i < n; i++ {
			seqA[i], parA[i] = 0, 0
		}
	}
	for _, li := range res.Ordered {
		if plan.Loops[li.Region.Loop] == nil {
			continue
		}
		proc := li.Region.Proc.Name
		for _, vr := range li.Dep.Vars {
			cls := vr.Class.String()
			if cls == "private" || cls == "index" {
				if lo, hi, ok := in.SymRange(proc, vr.Sym.Name); ok {
					mask(lo, hi)
				}
			}
		}
		for _, c := range li.Region.AllCallSites() {
			callee := in.Prog.ByName[c.Name]
			if callee == nil {
				continue
			}
			for _, sym := range callee.SortedSyms() {
				if sym.Common == "" && !sym.IsParam {
					if lo, hi, ok := in.SymRange(callee.Name, sym.Name); ok {
						mask(lo, hi)
					}
				}
			}
		}
	}
}
