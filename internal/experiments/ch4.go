package experiments

import (
	"fmt"
	"sort"

	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/issa"
	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/region"
	"suifx/internal/slice"
	"suifx/internal/workloads"
)

var ch4Apps = []string{"mdg", "arc3d", "hydro", "flo88"}

// Fig4_1 reproduces "Program information and results of automatic
// parallelization": lines, coverage, granularity and 8-processor speedup
// under the automatic compiler.
func Fig4_1() *Table {
	t := &Table{
		ID:     "Fig 4-1",
		Title:  "Program information and results of automatic parallelization",
		Header: []string{"program", "description", "data set", "lines", "coverage", "granularity", "speedup(8p)"},
	}
	model := machine.AlphaServer8400()
	runs := perApp(ch4Apps, func(w *workloads.Workload) *AppRun {
		return runApp(w, ch4Config(w, false))
	})
	for i, name := range ch4Apps {
		ar := runs[i]
		w := ar.W
		mw := ar.MachineWorkload()
		t.Rows = append(t.Rows, []string{
			name, w.Description, w.DataSet,
			itoa(ar.Prog.LineCount(true)),
			pct(model.Coverage(mw)),
			ms(model.GranularityMs(mw)),
			f1(model.Speedup(mw, 8)),
		})
	}
	return t
}

// loopCounters tallies the Fig 4-7 loop categories for one app.
type loopCounters struct {
	executed, sequential, important, noDyn, userPar, remaining [2]int // [inter, intra]
}

func idx(inter bool) int {
	if inter {
		return 0
	}
	return 1
}

// fig47For computes the per-app counters.
func fig47For(w *workloads.Workload) loopCounters {
	var c loopCounters
	auto := runApp(w, ch4Config(w, false))
	user := parallel.ParallelizeWith(auto.Sum, ch4Config(w, true))
	model := machine.AlphaServer8400()
	total := float64(auto.Prof.TotalOps())

	userPar := map[string]bool{}
	for id := range w.UserAssertions {
		userPar[id] = true
	}
	// A loop nested (statically or through calls) under a user-parallelized
	// loop needs no further attention.
	underUser := map[string]bool{}
	for _, li := range user.Ordered {
		if userPar[li.ID()] && li.Dep.Parallelizable {
			markRegionLoops(user, li.Region.Body(), underUser)
			for _, call := range li.Region.AllCallSites() {
				markCalleeLoops(user, call.Name, underUser)
			}
		}
	}

	for _, li := range auto.Par.Ordered {
		lp := auto.Prof.Of(li.Region.Loop)
		if lp == nil {
			continue // never executed
		}
		inter := auto.Sum.Reg.LoopNest(li.Region) == "inter"
		k := idx(inter)
		c.executed[k]++
		if li.Dep.Parallelizable {
			continue
		}
		c.sequential[k]++
		if li.UnderParallel || li.Dep.HasIO {
			continue
		}
		covPct := float64(lp.TotalOps) / total * 100
		granMs := lp.OpsPerInvocation() * model.CyclesPerOp / (model.ClockMHz * 1e3)
		if covPct < 2 || granMs < 0.05 {
			continue
		}
		c.important[k]++
		if auto.Dyn.Carried(li.Region.Loop) != 0 {
			continue // real dynamic deps: the user declines these (§2.6)
		}
		c.noDyn[k]++
		switch {
		case userPar[li.ID()]:
			c.userPar[k]++
		case underUser[li.ID()]:
			// nested inside a user-parallelized loop: no attention needed
		default:
			c.remaining[k]++
		}
	}
	return c
}

// markRegionLoops marks every loop region nested under r.
func markRegionLoops(res *parallel.Result, r *region.Region, set map[string]bool) {
	for _, c := range r.Children {
		if c.Kind == region.LoopRegion {
			set[c.ID()] = true
			markRegionLoops(res, c.Body(), set)
		}
	}
}

// markCalleeLoops marks the loops of proc and its transitive callees.
func markCalleeLoops(res *parallel.Result, proc string, set map[string]bool) {
	p := res.Prog.ByName[proc]
	if p == nil {
		return
	}
	for _, l := range p.Loops() {
		set[l.ID(p.Name)] = true
	}
	for _, callee := range res.Prog.CallGraph()[proc] {
		markCalleeLoops(res, callee, set)
	}
}

// Fig4_7 reproduces "Number of loops requiring user intervention".
func Fig4_7() *Table {
	t := &Table{
		ID:     "Fig 4-7",
		Title:  "Number of loops requiring user intervention (inter/intra)",
		Header: []string{"category", "mdg", "arc3d", "hydro", "flo88", "total"},
	}
	cs := perApp(ch4Apps, fig47For)
	row := func(label string, get func(c loopCounters) [2]int) {
		cells := []string{label}
		tot := 0
		for _, c := range cs {
			v := get(c)
			cells = append(cells, fmt.Sprintf("%d/%d", v[0], v[1]))
			tot += v[0] + v[1]
		}
		cells = append(cells, itoa(tot))
		t.Rows = append(t.Rows, cells)
	}
	row("executed", func(c loopCounters) [2]int { return c.executed })
	row("sequential", func(c loopCounters) [2]int { return c.sequential })
	row("important", func(c loopCounters) [2]int { return c.important })
	row("important, no dynamic dep", func(c loopCounters) [2]int { return c.noDyn })
	row("user-parallelized", func(c loopCounters) [2]int { return c.userPar })
	row("remaining important", func(c loopCounters) [2]int { return c.remaining })
	t.Notes = append(t.Notes, "cells are inter/intra counts as in the paper's split columns")
	return t
}

// SliceSizes holds one examined loop's Fig 4-8 row.
type SliceSizes struct {
	Loop                               string
	LoopLines                          int
	ProgFull, ProgLoop, ProgCR, ProgAR int
	CtrlFull, CtrlLoop, CtrlCR, CtrlAR int
}

// Fig4_8 reproduces "Average size of the slices requiring intervention":
// program and control slices of the blocking variables' references, as a
// percentage of the loop size, unrestricted / in-loop / code-region- /
// array-restricted.
func Fig4_8() *Table {
	t := &Table{
		ID:     "Fig 4-8",
		Title:  "Slice sizes for user-examined loops (% of loop size)",
		Header: []string{"loop", "lines", "prog full", "prog loop", "prog CR", "prog AR", "ctrl full", "ctrl loop", "ctrl CR", "ctrl AR"},
	}
	var sum SliceSizes
	n := 0
	for _, rows := range perApp(ch4Apps, sliceSizesFor) {
		for _, r := range rows {
			loopPct := func(v int) string {
				if r.LoopLines == 0 {
					return "-"
				}
				return fmt.Sprintf("%d%%", v*100/r.LoopLines)
			}
			t.Rows = append(t.Rows, []string{
				r.Loop, itoa(r.LoopLines),
				itoa(r.ProgFull), loopPct(r.ProgLoop), loopPct(r.ProgCR), loopPct(r.ProgAR),
				itoa(r.CtrlFull), loopPct(r.CtrlLoop), loopPct(r.CtrlCR), loopPct(r.CtrlAR),
			})
			sum.LoopLines += r.LoopLines
			sum.ProgLoop += r.ProgLoop
			sum.ProgCR += r.ProgCR
			sum.ProgAR += r.ProgAR
			sum.CtrlLoop += r.CtrlLoop
			sum.CtrlCR += r.CtrlCR
			sum.CtrlAR += r.CtrlAR
			n++
		}
	}
	if n > 0 && sum.LoopLines > 0 {
		t.Rows = append(t.Rows, []string{
			"average", itoa(sum.LoopLines / n), "",
			fmt.Sprintf("%d%%", sum.ProgLoop*100/sum.LoopLines),
			fmt.Sprintf("%d%%", sum.ProgCR*100/sum.LoopLines),
			fmt.Sprintf("%d%%", sum.ProgAR*100/sum.LoopLines),
			"",
			fmt.Sprintf("%d%%", sum.CtrlLoop*100/sum.LoopLines),
			fmt.Sprintf("%d%%", sum.CtrlCR*100/sum.LoopLines),
			fmt.Sprintf("%d%%", sum.CtrlAR*100/sum.LoopLines),
		})
	}
	return t
}

// sliceSizesFor computes the slice metrics for each user-examined loop.
func sliceSizesFor(w *workloads.Workload) []SliceSizes {
	prog, sum := cachedAnalysis(w)
	g := issa.Build(prog)
	res := parallel.ParallelizeWith(sum, parallel.Config{UseReductions: true})
	var out []SliceSizes
	var ids []string
	for id := range w.UserAssertions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		li := res.LoopByID(id)
		if li == nil {
			continue
		}
		lo, hi := li.Region.Lines()
		rg := slice.Region{Proc: li.Region.Proc.Name, Lo: lo, Hi: hi}
		row := SliceSizes{Loop: id, LoopLines: loopCodeLines(prog, li)}
		// Up to two read references of each blocking variable inside the
		// loop (the paper shows the pair sharing the dependence); metrics
		// are averaged over the references examined.
		nq := 0
		for _, b := range li.Dep.Blocking {
			lines := useLines(prog, g, li, b.Sym.Name)
			for _, ln := range lines {
				nq++
				full := slice.New(g, slice.Config{Kind: slice.Program})
				r := full.OfUse(rg.Proc, b.Sym.Name, ln)
				row.ProgFull += r.Size()
				row.ProgLoop += r.SizeIn(rg)
				cr := slice.New(g, slice.Config{Kind: slice.Program, Region: &rg})
				row.ProgCR += cr.OfUse(rg.Proc, b.Sym.Name, ln).SizeIn(rg)
				ar := slice.New(g, slice.Config{Kind: slice.Program, Region: &rg, ArrayRestricted: true})
				row.ProgAR += ar.OfUse(rg.Proc, b.Sym.Name, ln).SizeIn(rg)

				cfull := slice.New(g, slice.Config{Kind: slice.Program})
				c := cfull.ControlSliceOfLine(rg.Proc, ln)
				row.CtrlFull += c.Size()
				row.CtrlLoop += c.SizeIn(rg)
				ccr := slice.New(g, slice.Config{Kind: slice.Program, Region: &rg})
				row.CtrlCR += ccr.ControlSliceOfLine(rg.Proc, ln).SizeIn(rg)
				car := slice.New(g, slice.Config{Kind: slice.Program, Region: &rg, ArrayRestricted: true})
				row.CtrlAR += car.ControlSliceOfLine(rg.Proc, ln).SizeIn(rg)
			}
		}
		if nq > 1 {
			row.ProgFull /= nq
			row.ProgLoop /= nq
			row.ProgCR /= nq
			row.ProgAR /= nq
			row.CtrlFull /= nq
			row.CtrlLoop /= nq
			row.CtrlCR /= nq
			row.CtrlAR /= nq
		}
		out = append(out, row)
	}
	return out
}

// useLines finds source lines inside the loop where the named variable is
// read (up to 2, matching the paper's pair of references); only lines with
// recorded reaching definitions qualify (writes alone have no use to slice).
func useLines(prog *ir.Program, g *issa.Graph, li *parallel.LoopInfo, name string) []int {
	seen := map[int]bool{}
	var out []int
	proc := li.Region.Proc.Name
	ir.WalkStmts(li.Region.Loop.Body, func(s ir.Stmt) bool {
		ir.WalkExprs(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) {
				var sym *ir.Symbol
				switch r := x.(type) {
				case *ir.VarRef:
					sym = r.Sym
				case *ir.ArrayRef:
					sym = r.Sym
				}
				if sym == nil || sym.Name != name {
					return
				}
				ln := x.Position().Line
				if !seen[ln] && len(out) < 2 && len(g.FindUse(proc, name, ln)) > 0 {
					seen[ln] = true
					out = append(out, ln)
				}
			})
		})
		return true
	})
	return out
}

// loopCodeLines counts code lines in the loop plus its (transitive) callees.
func loopCodeLines(prog *ir.Program, li *parallel.LoopInfo) int {
	lo, hi := li.Region.Lines()
	n := 0
	for l := lo; l <= hi; l++ {
		if prog.SourceLine(l) != "" {
			n++
		}
	}
	seen := map[string]bool{}
	var add func(proc string)
	add = func(proc string) {
		if seen[proc] {
			return
		}
		seen[proc] = true
		p := prog.ByName[proc]
		if p == nil {
			return
		}
		n += p.EndLine - p.Pos.Line + 1
		for _, c := range prog.CallGraph()[proc] {
			add(c)
		}
	}
	for _, c := range li.Region.AllCallSites() {
		add(c.Name)
	}
	return n
}

// Fig4_9 reproduces "User-assisted parallelization": how many variables the
// compiler resolved automatically vs how many the user asserted, across the
// user-parallelized loops.
func Fig4_9() *Table {
	t := &Table{
		ID:     "Fig 4-9",
		Title:  "Variables analyzed automatically vs by the user in user-parallelized loops",
		Header: []string{"category", "mdg", "arc3d", "hydro", "flo88", "total"},
	}
	type counts map[string]int
	cats := []string{"parallel arrays", "privatizable arrays", "privatizable scalars",
		"reduction arrays", "reduction scalars", "user privatizable arrays", "user privatizable scalars"}
	all := perApp(ch4Apps, func(w *workloads.Workload) counts {
		_, sum := cachedAnalysis(w)
		res := parallel.ParallelizeWith(sum, ch4Config(w, true))
		c := counts{}
		for id := range w.UserAssertions {
			li := res.LoopByID(id)
			if li == nil {
				continue
			}
			for _, vr := range li.Dep.Vars {
				arr := vr.Sym.IsArray()
				switch {
				case vr.ByAssertion && arr:
					c["user privatizable arrays"]++
				case vr.ByAssertion:
					c["user privatizable scalars"]++
				case vr.Class.String() == "parallel" && arr:
					c["parallel arrays"]++
				case vr.Class.String() == "private" && arr:
					c["privatizable arrays"]++
				case vr.Class.String() == "private":
					c["privatizable scalars"]++
				case vr.Class.String() == "reduction" && arr:
					c["reduction arrays"]++
				case vr.Class.String() == "reduction":
					c["reduction scalars"]++
				}
			}
		}
		return c
	})
	for _, cat := range cats {
		row := []string{cat}
		tot := 0
		for i := range ch4Apps {
			row = append(row, itoa(all[i][cat]))
			tot += all[i][cat]
		}
		row = append(row, itoa(tot))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig4_10 reproduces "Results of parallelization with and without user
// intervention".
func Fig4_10() *Table {
	t := &Table{
		ID:     "Fig 4-10",
		Title:  "Parallelization with and without user input",
		Header: []string{"program", "mode", "coverage", "granularity", "speedup(4p)", "speedup(8p)"},
	}
	model := machine.AlphaServer8400()
	runs := perApp(ch4Apps, func(w *workloads.Workload) [2]*AppRun {
		return [2]*AppRun{runApp(w, ch4Config(w, false)), runApp(w, ch4Config(w, true))}
	})
	for i, name := range ch4Apps {
		for u, mode := range []string{"automatic", "with user input"} {
			mw := runs[i][u].MachineWorkload()
			t.Rows = append(t.Rows, []string{
				name, mode,
				pct(model.Coverage(mw)),
				ms(model.GranularityMs(mw)),
				f1(model.Speedup(mw, 4)),
				f1(model.Speedup(mw, 8)),
			})
		}
	}
	return t
}

// BuildPlan converts a parallelization result into a runtime execution
// plan. It now lives in internal/parallel (so the analysis layer can hand
// plans straight to either engine); this delegate keeps existing callers
// working.
func BuildPlan(res *parallel.Result, workers int) *exec.ParallelPlan {
	return parallel.BuildPlan(res, workers)
}

// ValidateUserParallelization executes each user-parallelized application
// both sequentially and with the goroutine runtime on the asserted plan, and
// checks the results agree (the §6.5.2 validation). Both runs share one
// cached program: each interpreter owns its arena, the IR is never written.
func ValidateUserParallelization(name string, workers int) error {
	return validateParallelRun(name, workers, exec.ModeAuto, true)
}
