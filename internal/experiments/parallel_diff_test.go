package experiments

import (
	"math"
	"testing"

	"suifx/internal/exec"
	"suifx/internal/workloads"
)

// parallelWorkloads returns every workload whose user-assisted plan
// approves at least one loop (the others have no parallel execution to
// differentiate).
func parallelWorkloads(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, w := range workloads.All() {
		_, res, err := RunParallel(w.Name, ParallelRunOptions{
			Workers: 1, Mode: exec.ModeTree, Staggered: true, Chunks: 4,
		})
		if err != nil {
			t.Fatalf("%s: probe run: %v", w.Name, err)
		}
		chosen := 0
		for _, li := range res.Ordered {
			if li.Chosen {
				chosen++
			}
		}
		if chosen > 0 {
			out = append(out, w.Name)
		}
	}
	if len(out) == 0 {
		t.Fatal("no workload has an approved parallel loop")
	}
	return out
}

func bitsEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestParallelDifferentialEngines runs every parallel workload under its
// plan at W ∈ {1, 2, 4} on all three engines. They execute the same
// schedule with the same deterministic finalization order, so the full
// arena images — worker banks included — must be bit-identical at every
// worker count, not merely tolerance-close.
func TestParallelDifferentialEngines(t *testing.T) {
	for _, name := range parallelWorkloads(t) {
		for _, workers := range []int{1, 2, 4} {
			tree, _, err := RunParallel(name, ParallelRunOptions{
				Workers: workers, Mode: exec.ModeTree, Staggered: true, Chunks: 4,
			})
			if err != nil {
				t.Fatalf("%s W=%d tree: %v", name, workers, err)
			}
			for _, mode := range []exec.ExecMode{exec.ModeBytecode, exec.ModeTiered, exec.ModeRegister} {
				vmRun, _, err := RunParallel(name, ParallelRunOptions{
					Workers: workers, Mode: mode, Staggered: true, Chunks: 4,
				})
				if err != nil {
					t.Fatalf("%s W=%d %v: %v", name, workers, mode, err)
				}
				if i, ok := bitsEqual(tree.Arena(), vmRun.Arena()); !ok {
					t.Errorf("%s W=%d mode=%v: arenas differ from tree at cell %d: %g vs %g",
						name, workers, mode, i, tree.Arena()[i], vmRun.Arena()[i])
				}
				if tree.Ops() != vmRun.Ops() {
					t.Errorf("%s W=%d mode=%v: ops differ: tree %d vs vm %d",
						name, workers, mode, tree.Ops(), vmRun.Ops())
				}
			}
		}
	}
}

// TestParallelVsSequential is the §6.5.2 validation across engines and
// worker counts: the parallel run must match a sequential run after masking
// privatized storage, with tolerance only for reduction reassociation.
func TestParallelVsSequential(t *testing.T) {
	for _, name := range parallelWorkloads(t) {
		for _, workers := range []int{1, 2, 4} {
			for _, mode := range []exec.ExecMode{exec.ModeTree, exec.ModeBytecode, exec.ModeTiered, exec.ModeRegister} {
				if err := validateParallelRun(name, workers, mode, true); err != nil {
					t.Errorf("%s W=%d mode=%v: %v", name, workers, mode, err)
				}
			}
		}
	}
}

// TestFinalizationEquivalence: the §6.3.2 single-lock and §6.3.4 staggered
// disciplines combine worker contributions in the same fixed order, so
// their results must be bit-identical — on both engines.
func TestFinalizationEquivalence(t *testing.T) {
	for _, name := range parallelWorkloads(t) {
		for _, mode := range []exec.ExecMode{exec.ModeTree, exec.ModeBytecode, exec.ModeTiered, exec.ModeRegister} {
			single, _, err := RunParallel(name, ParallelRunOptions{
				Workers: 4, Mode: mode, Staggered: false,
			})
			if err != nil {
				t.Fatalf("%s single-lock: %v", name, err)
			}
			stag, _, err := RunParallel(name, ParallelRunOptions{
				Workers: 4, Mode: mode, Staggered: true, Chunks: 8,
			})
			if err != nil {
				t.Fatalf("%s staggered: %v", name, err)
			}
			if i, ok := bitsEqual(single.Arena(), stag.Arena()); !ok {
				t.Errorf("%s mode=%v: single-lock vs staggered differ at cell %d: %g vs %g",
					name, mode, i, single.Arena()[i], stag.Arena()[i])
			}
		}
	}
}

// TestParallelSpeedupCurves regenerates the Chapter 4/6 virtual-time
// speedup curves on the bytecode engine and checks they behave like
// speedup curves: monotone non-degrading at W=1 and ≥ 2x at 4 workers for
// at least one workload (the BENCH_parallel.json acceptance bar).
func TestParallelSpeedupCurves(t *testing.T) {
	best := 0.0
	bestName := ""
	for _, name := range parallelWorkloads(t) {
		pts, err := ParallelSpeedups(name, []int{1, 2, 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, pt := range pts {
			t.Logf("%s W=%d: seq=%d crit=%d vt_speedup=%.2f",
				name, pt.Workers, pt.SeqOps, pt.CritOps, pt.VTSpeedup)
		}
		if pts[0].VTSpeedup < 0.99 || pts[0].VTSpeedup > 1.01 {
			t.Errorf("%s: W=1 virtual-time speedup should be ~1.0, got %.3f", name, pts[0].VTSpeedup)
		}
		if s := pts[2].VTSpeedup; s > best {
			best, bestName = s, name
		}
	}
	if best < 2.0 {
		t.Errorf("no workload reaches 2x virtual-time speedup at 4 workers (best %.2f on %s)", best, bestName)
	} else {
		t.Logf("best 4-worker virtual-time speedup: %.2f (%s)", best, bestName)
	}
}
