package experiments

import (
	"fmt"
	"time"

	"suifx/internal/corpus"
	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/parallel"
	"suifx/internal/summary"
)

// The scale runner measures how the whole toolchain behaves as program
// size grows: each corpus ladder tier is generated from its recorded
// (seed, config), then pushed through parse, whole-program analysis,
// parallelization, a one-procedure incremental re-analysis, and bytecode
// execution, with each stage timed separately. The per-tier points become
// BENCH_scale.json rows via the root BenchmarkScale harness and
// cmd/benchjson — and because every tier regenerates bit-for-bit from its
// manifest, any row can be reproduced from the tier name alone.

// ScalePoint is one tier's measurements.
type ScalePoint struct {
	Tier  string `json:"tier"`
	Seed  int64  `json:"seed"`
	Lines int    `json:"lines"`
	Procs int    `json:"procs"`
	Loops int    `json:"loops"`

	GenMs         float64 `json:"gen_ms"`
	ParseMs       float64 `json:"parse_ms"`
	AnalyzeMs     float64 `json:"analyze_ms"`
	ParallelizeMs float64 `json:"parallelize_ms"`
	IncrementalMs float64 `json:"incremental_ms"`
	ExecMs        float64 `json:"exec_ms"`

	ExecOps      int64 `json:"exec_ops"`
	ChosenLoops  int   `json:"chosen_loops"`
	BlockedLoops int   `json:"blocked_loops"`
	Recomputed   int   `json:"recomputed"` // procs redone by the incremental step
}

func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// ScaleRun measures one ladder tier end to end.
func ScaleRun(tier corpus.Tier) (*ScalePoint, error) {
	pt := &ScalePoint{Tier: tier.Name, Seed: tier.Seed}

	t0 := time.Now()
	p := tier.Generate()
	pt.GenMs = durMs(time.Since(t0))
	pt.Lines = p.Manifest.Stats.Lines
	pt.Procs = p.Manifest.Stats.Procs
	pt.Loops = p.Manifest.Stats.Loops

	t0 = time.Now()
	prog, err := minif.Parse(p.Name, p.Source)
	if err != nil {
		return nil, fmt.Errorf("tier %s: parse: %w", tier.Name, err)
	}
	pt.ParseMs = durMs(time.Since(t0))

	t0 = time.Now()
	sum := summary.Analyze(prog)
	pt.AnalyzeMs = durMs(time.Since(t0))

	t0 = time.Now()
	res := parallel.ParallelizeWith(sum, parallel.Config{UseReductions: true})
	pt.ParallelizeMs = durMs(time.Since(t0))
	for _, li := range res.Ordered {
		if li.Chosen {
			pt.ChosenLoops++
		}
		if !li.Dep.Parallelizable {
			pt.BlockedLoops++
		}
	}

	// Incremental step: after a cold run, touching one leaf-ish procedure
	// must re-analyze only its SCC and transitive callers — the interactive
	// edit-reanalyze latency the session subsystem promises, measured here
	// at every program size.
	inc := driver.NewIncremental(prog, driver.Options{})
	inc.Analyze() // cold; untimed (AnalyzeMs covers whole-program cost)
	inc.Invalidate(prog.Procs[0].Name)
	t0 = time.Now()
	_, st := inc.Analyze()
	pt.IncrementalMs = durMs(time.Since(t0))
	pt.Recomputed = st.Recomputed

	t0 = time.Now()
	in := exec.New(prog)
	in.Mode = exec.ModeBytecode
	if err := in.Run(); err != nil {
		return nil, fmt.Errorf("tier %s: exec: %w", tier.Name, err)
	}
	pt.ExecMs = durMs(time.Since(t0))
	pt.ExecOps = in.Ops()
	return pt, nil
}

// ScaleRunAll measures every given tier in order.
func ScaleRunAll(tiers []corpus.Tier) ([]*ScalePoint, error) {
	out := make([]*ScalePoint, 0, len(tiers))
	for _, tier := range tiers {
		pt, err := ScaleRun(tier)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
