package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/parallel"
)

// genProgram builds a random MiniF program from a small grammar of loop
// bodies: independent writes, covered temporaries, scalar and array
// reductions, guarded updates, and genuine recurrences. Whatever the
// parallelizer approves must execute identically in parallel — the
// DESIGN.md end-to-end soundness invariant.
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("      PROGRAM rnd\n")
	b.WriteString("      REAL a(128), b(128), c(128), s, t\n")
	b.WriteString("      INTEGER i, j, k\n")
	b.WriteString("      s = 0.0\n      t = 1.0\n")
	b.WriteString("      DO 5 i = 1, 128\n")
	fmt.Fprintf(&b, "        a(i) = MOD(i * %d, 53) * 0.25\n", 3+r.Intn(40))
	b.WriteString("        b(i) = 1.0\n        c(i) = 0.0\n5     CONTINUE\n")

	bodies := []string{
		"        b(i) = a(i) * 2.0 + 1.0\n",
		"        c(i) = a(i) + b(i)\n",
		"        t = a(i) * 0.5\n        b(i) = t + c(i)\n",
		"        s = s + a(i) * 0.125\n",
		"        IF (a(i) .GT. 6.0) c(i) = a(i)\n",
		"        c(i) = c(i) + b(i) * 0.25\n",
		"        IF (a(i) .LT. s) s = a(i)\n",
		"        b(i) = b(i-1) + a(i)\n", // recurrence: must stay sequential
		"        DO %d j = 1, 16\n          c(j) = a(i) + j\n%d      CONTINUE\n        b(i) = c(1) + c(16)\n",
	}
	nloops := 2 + r.Intn(4)
	label := 100
	for n := 0; n < nloops; n++ {
		lo := 2
		fmt.Fprintf(&b, "      DO %d i = %d, 128\n", label, lo)
		nst := 1 + r.Intn(3)
		for k := 0; k < nst; k++ {
			body := bodies[r.Intn(len(bodies))]
			if strings.Contains(body, "%d") {
				inner := label + 50 + k
				body = fmt.Sprintf(body, inner, inner)
			}
			b.WriteString(body)
		}
		fmt.Fprintf(&b, "%d   CONTINUE\n", label)
		label += 100
	}
	b.WriteString("      WRITE(*,*) s, t, b(5), c(7)\n      END\n")
	return b.String()
}

// TestQuickPipelineSoundness is the whole-pipeline property test: for random
// programs, every loop the parallelizer approves executes identically under
// the goroutine runtime (FP reductions compared with tolerance), for any
// worker count.
func TestQuickPipelineSoundness(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		workers := int(workersRaw%7) + 2
		src := genProgram(r)

		seqProg, err := minif.Parse("rnd", src)
		if err != nil {
			t.Logf("generator produced invalid program: %v\n%s", err, src)
			return false
		}
		seq := exec.New(seqProg)
		if err := seq.Run(); err != nil {
			t.Logf("sequential run failed: %v\n%s", err, src)
			return false
		}

		parProg := minif.MustParse("rnd", src)
		res := parallel.Parallelize(parProg, parallel.Config{UseReductions: true})
		plan := BuildPlan(res, workers)
		if len(plan.Loops) == 0 {
			return true // nothing approved; trivially sound
		}
		par := exec.NewWithPlan(parProg, plan)
		if err := par.Run(); err != nil {
			t.Logf("parallel run failed: %v\n%s", err, src)
			return false
		}
		n := seq.ArenaSize()
		seqA := append([]float64(nil), seq.Arena()[:n]...)
		parA := append([]float64(nil), par.Arena()[:n]...)
		// Mask privatized (dead after loop) storage, as in
		// ValidateUserParallelization.
		for _, li := range res.Ordered {
			if !li.Chosen {
				continue
			}
			for _, vr := range li.Dep.Vars {
				cls := vr.Class.String()
				if cls == "private" || cls == "index" {
					if lo, hi, ok := par.SymRange(li.Region.Proc.Name, vr.Sym.Name); ok {
						for i := lo; i <= hi && i < int64(n); i++ {
							seqA[i], parA[i] = 0, 0
						}
					}
				}
			}
		}
		if err := exec.Validate(seqA, parA, 1e-9); err != nil {
			t.Logf("MISMATCH (%d workers): %v\nprogram:\n%s", workers, err, src)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRecurrenceNeverApproved: the generator's recurrence body must never be
// classified parallel.
func TestRecurrenceNeverApproved(t *testing.T) {
	src := `
      PROGRAM rec
      REAL b(128), a(128)
      INTEGER i
      DO 100 i = 2, 128
        b(i) = b(i-1) + a(i)
100   CONTINUE
      END
`
	res := parallel.Parallelize(minif.MustParse("rec", src), parallel.Config{UseReductions: true})
	if res.LoopByID("REC/100").Dep.Parallelizable {
		t.Fatal("recurrence approved — unsound")
	}
}
