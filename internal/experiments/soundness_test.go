package experiments

import (
	"math/rand"
	"testing"
	"testing/quick"

	"suifx/internal/corpus"
	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/parallel"
)

// The random program generator lives in internal/corpus
// (PipelineProgram): a small grammar of loop bodies — independent writes,
// covered temporaries, scalar and array reductions, guarded updates, and
// genuine recurrences. Whatever the parallelizer approves must execute
// identically in parallel — the DESIGN.md end-to-end soundness invariant.

// TestQuickPipelineSoundness is the whole-pipeline property test: for random
// programs, every loop the parallelizer approves executes identically under
// the goroutine runtime (FP reductions compared with tolerance), for any
// worker count.
func TestQuickPipelineSoundness(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		workers := int(workersRaw%7) + 2
		src := corpus.PipelineProgram(r)

		seqProg, err := minif.Parse("rnd", src)
		if err != nil {
			t.Logf("generator produced invalid program: %v\n%s", err, src)
			return false
		}
		seq := exec.New(seqProg)
		if err := seq.Run(); err != nil {
			t.Logf("sequential run failed: %v\n%s", err, src)
			return false
		}

		parProg := minif.MustParse("rnd", src)
		res := parallel.Parallelize(parProg, parallel.Config{UseReductions: true})
		plan := BuildPlan(res, workers)
		if len(plan.Loops) == 0 {
			return true // nothing approved; trivially sound
		}
		par := exec.NewWithPlan(parProg, plan)
		if err := par.Run(); err != nil {
			t.Logf("parallel run failed: %v\n%s", err, src)
			return false
		}
		n := seq.ArenaSize()
		seqA := append([]float64(nil), seq.Arena()[:n]...)
		parA := append([]float64(nil), par.Arena()[:n]...)
		// Mask privatized (dead after loop) storage, as in
		// ValidateUserParallelization.
		for _, li := range res.Ordered {
			if !li.Chosen {
				continue
			}
			for _, vr := range li.Dep.Vars {
				cls := vr.Class.String()
				if cls == "private" || cls == "index" {
					if lo, hi, ok := par.SymRange(li.Region.Proc.Name, vr.Sym.Name); ok {
						for i := lo; i <= hi && i < int64(n); i++ {
							seqA[i], parA[i] = 0, 0
						}
					}
				}
			}
		}
		if err := exec.Validate(seqA, parA, 1e-9); err != nil {
			t.Logf("MISMATCH (%d workers): %v\nprogram:\n%s", workers, err, src)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusScaleSoundness runs the corpus factory's recorded scale tiers
// end to end: whatever the parallelizer approves on a generated program
// must execute identically in parallel at several worker counts. The quick
// tiers run everywhere; the 20k-line tier joins outside -short.
func TestCorpusScaleSoundness(t *testing.T) {
	tiers := corpus.QuickLadder()
	if !testing.Short() {
		if tier, ok := corpus.TierByName("20k"); ok {
			tiers = append(tiers, tier)
		}
	}
	for _, tier := range tiers {
		tier := tier
		t.Run(tier.Name, func(t *testing.T) {
			p := tier.Generate()
			seqProg, err := minif.Parse(p.Name, p.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			seq := exec.New(seqProg)
			seq.Mode = exec.ModeBytecode
			if err := seq.Run(); err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			parProg := minif.MustParse(p.Name, p.Source)
			res := parallel.Parallelize(parProg, parallel.Config{UseReductions: true})
			for _, workers := range []int{2, 4} {
				plan := BuildPlan(res, workers)
				if len(plan.Loops) == 0 {
					t.Fatalf("tier %s: no loops approved for parallel execution", tier.Name)
				}
				par := exec.NewWithPlan(parProg, plan)
				par.Mode = exec.ModeBytecode
				if err := par.Run(); err != nil {
					t.Fatalf("W=%d parallel run: %v", workers, err)
				}
				n := seq.ScratchBase()
				seqA := append([]float64(nil), seq.Arena()[:n]...)
				parA := append([]float64(nil), par.Arena()[:n]...)
				maskPlannedDead(res, plan, par, seqA, parA)
				if err := exec.Validate(seqA, parA, 1e-6); err != nil {
					t.Errorf("W=%d: %v", workers, err)
				}
			}
		})
	}
}

// TestRecurrenceNeverApproved: the generator's recurrence body must never be
// classified parallel.
func TestRecurrenceNeverApproved(t *testing.T) {
	src := `
      PROGRAM rec
      REAL b(128), a(128)
      INTEGER i
      DO 100 i = 2, 128
        b(i) = b(i-1) + a(i)
100   CONTINUE
      END
`
	res := parallel.Parallelize(minif.MustParse("rec", src), parallel.Config{UseReductions: true})
	if res.LoopByID("REC/100").Dep.Parallelizable {
		t.Fatal("recurrence approved — unsound")
	}
}
