package experiments

import (
	"runtime"
	"sync"

	"suifx/internal/workloads"
)

// forEach runs fn(0..n-1) on a pool of at most GOMAXPROCS goroutines and
// waits for all of them. A panic in any fn is re-raised in the caller once
// every goroutine has joined, so table generators keep their fail-fast
// behaviour under fan-out.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// perApp runs f once per named workload on the bounded worker pool and
// returns the results in input order, so tables built from them keep
// deterministic row order regardless of scheduling. Independent executions
// are safe to fan out: the parse and whole-program summary come from the
// shared driver cache, the compiled bytecode is attached to the shared
// program and is read-only after lowering, and each run's mutable state
// (arena, profiler, dependence shadow memory) is private — the VM's
// per-worker scratch arenas are recycled through the program's pools.
func perApp[T any](names []string, f func(w *workloads.Workload) T) []T {
	out := make([]T, len(names))
	forEach(len(names), func(i int) { out[i] = f(workloads.ByName(names[i])) })
	return out
}
