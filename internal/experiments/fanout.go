package experiments

import (
	"runtime"
	"sync"
)

// forEach runs fn(0..n-1) on a pool of at most GOMAXPROCS goroutines and
// waits for all of them. A panic in any fn is re-raised in the caller once
// every goroutine has joined, so table generators keep their fail-fast
// behaviour under fan-out.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
