package experiments

import (
	"fmt"
	"time"

	"suifx/internal/liveness"
	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

var ch5Apps = []string{"hydro", "flo88", "arc3d", "wave5", "hydro2d"}

// Fig5_5 reproduces the liveness-suite program information table.
func Fig5_5() *Table {
	t := &Table{
		ID:     "Fig 5-5",
		Title:  "Program information (liveness suite)",
		Header: []string{"program", "description", "lines"},
	}
	for _, name := range ch5Apps {
		w := workloads.ByName(name)
		t.Rows = append(t.Rows, []string{name, w.Description, itoa(w.Program().LineCount(true))})
	}
	return t
}

// Fig5_6 reproduces the analysis running-time table: base, bottom-up, and
// the three top-down liveness variants (measured on this machine; the paper
// used a 300-MHz AlphaServer, so compare shapes, not absolute times).
func Fig5_6() *Table {
	t := &Table{
		ID:     "Fig 5-6",
		Title:  "Interprocedural analysis running time (ms on this host)",
		Header: []string{"program", "base", "bottom-up", "flow-insensitive", "1-bit", "full"},
	}
	for _, name := range ch5Apps {
		w := workloads.ByName(name)
		prog := w.Fresh()

		t0 := time.Now()
		sumBase := summary.Analyze(prog) // scalar+array bottom-up pass
		base := time.Since(t0)

		t1 := time.Now()
		parallel.ParallelizeWith(sumBase, parallel.Config{UseReductions: true})
		bottomUp := base + time.Since(t1)

		variantTime := func(v liveness.Variant) time.Duration {
			t2 := time.Now()
			liveness.Analyze(sumBase, v)
			return bottomUp + time.Since(t2)
		}
		fi := variantTime(liveness.FlowInsensitive)
		ob := variantTime(liveness.OneBit)
		fu := variantTime(liveness.Full)
		msOf := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
		t.Rows = append(t.Rows, []string{name, msOf(base), msOf(bottomUp), msOf(fi), msOf(ob), msOf(fu)})
	}
	t.Notes = append(t.Notes, "each column is cumulative (analysis phase included in the next), as in the paper")
	return t
}

// Fig5_7 reproduces "loops, modified variables, and percentage dead at loop
// exits" per liveness variant.
func Fig5_7() *Table {
	t := &Table{
		ID:     "Fig 5-7",
		Title:  "Modified arrays dead at loop exits per algorithm variant",
		Header: []string{"program", "#loops", "#mod arrays", "%dead FI", "%dead 1-bit", "%dead full"},
	}
	for _, name := range ch5Apps {
		w := workloads.ByName(name)
		_, sum := cachedAnalysis(w)
		var row []string
		row = append(row, name)
		first := true
		var loops, mods int
		var pcts []string
		for _, v := range []liveness.Variant{liveness.FlowInsensitive, liveness.OneBit, liveness.Full} {
			in := liveness.Analyze(sum, v)
			l, m, d := in.DeadStats()
			if first {
				loops, mods = l, m
				first = false
			}
			if m == 0 {
				pcts = append(pcts, "0%")
			} else {
				pcts = append(pcts, fmt.Sprintf("%d%%", d*100/m))
			}
		}
		row = append(row, itoa(loops), itoa(mods))
		row = append(row, pcts...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5_8 reproduces "dead private arrays, improved parallel loops, and
// 4-processor speedup" for the base compiler and each liveness variant.
func Fig5_8() *Table {
	t := &Table{
		ID:     "Fig 5-8",
		Title:  "Privatization with liveness: dead privates, newly parallel loops, 4-proc speedup",
		Header: []string{"program", "config", "#dead private", "#new parallel loops", "speedup(4p)"},
	}
	model := machine.AlphaServer8400()
	rowsPer := perApp(ch5Apps, func(w *workloads.Workload) [][]string {
		var rows [][]string
		base := runApp(w, parallel.Config{UseReductions: true})
		baseStats := base.Par.Stats()
		baseSpeed := model.Speedup(base.MachineWorkload(), 4)
		rows = append(rows, []string{w.Name, "base", "0", "0", f1(baseSpeed)})
		for _, v := range []liveness.Variant{liveness.FlowInsensitive, liveness.OneBit, liveness.Full} {
			live := liveness.Analyze(base.Sum, v)
			cfg := parallel.Config{UseReductions: true, DeadAtExit: live.Oracle()}
			ar := runAppOn(w, base.Prog, base.Sum, cfg)
			stats := ar.Par.Stats()
			newPar := stats.ParallelizableN - baseStats.ParallelizableN
			if newPar < 0 {
				newPar = 0
			}
			deadPriv := countDeadPrivates(ar, live)
			rows = append(rows, []string{
				w.Name, v.String(), itoa(deadPriv), itoa(newPar),
				f1(model.Speedup(ar.MachineWorkload(), 4)),
			})
		}
		return rows
	})
	for _, rows := range rowsPer {
		t.Rows = append(t.Rows, rows...)
	}
	return t
}

// countDeadPrivates counts privatized arrays that the liveness variant
// proves dead at their loop's exit.
func countDeadPrivates(ar *AppRun, live *liveness.Info) int {
	n := 0
	for _, li := range ar.Par.Ordered {
		for _, vr := range li.Dep.Vars {
			if vr.Class.String() == "private" && vr.Sym.IsArray() &&
				live.DeadAtExit(li.Region, vr.Sym) {
				n++
			}
		}
	}
	return n
}

// Fig5_10 reproduces the common-block split table.
func Fig5_10() *Table {
	t := &Table{
		ID:     "Fig 5-10",
		Title:  "Common block splits and resulting 4-processor speedup",
		Header: []string{"program", "#splits", "speedup before", "speedup after"},
	}
	model := machine.AlphaServer8400()
	for _, name := range []string{"arc3d", "wave5", "hydro2d"} {
		w := workloads.ByName(name)
		prog, sum := cachedAnalysis(w)
		live := liveness.Analyze(sum, liveness.Full)
		splits := live.CommonBlockSplits()
		ar := runAppOn(w, prog, sum, parallel.Config{UseReductions: true, DeadAtExit: live.Oracle()})
		mw := ar.MachineWorkload()
		// An aliased common block forces one layout for both live ranges:
		// every chosen parallel loop touching it pays the conflicting-
		// decomposition reshuffle. Splitting the block frees the layouts.
		if len(splits) > 0 {
			for i := range mw.Loops {
				if loopTouchesBlock(ar, mw.Loops[i].ID, splits[0].Block) {
					mw.Loops[i].ConflictingDecomp = true
				}
			}
		}
		before := model.Speedup(mw, 4)
		after := before
		if len(splits) > 0 {
			freed := mw
			freed.Loops = append([]machine.LoopWork(nil), mw.Loops...)
			for i := range freed.Loops {
				freed.Loops[i].ConflictingDecomp = false
			}
			after = model.Speedup(freed, 4)
		}
		t.Rows = append(t.Rows, []string{name, itoa(len(splits)), f1(before), f1(after)})
	}
	return t
}

// loopTouchesBlock reports whether the chosen loop accesses any member of
// the named common block.
func loopTouchesBlock(ar *AppRun, loopID, block string) bool {
	li := ar.Par.LoopByID(loopID)
	if li == nil {
		return false
	}
	rs := ar.Sum.RegionSum[li.Region]
	if rs == nil {
		return false
	}
	for _, sym := range rs.SortedSyms() {
		if sym.Common == block {
			return true
		}
	}
	return false
}

// Fig5_12 reproduces the flo88 speedup curves without and with array
// contraction on the 32-processor Origin model (cache scaled to our
// problem sizes; see DESIGN.md).
func Fig5_12() *Table {
	t := &Table{
		ID:     "Fig 5-12",
		Title:  "flo88 speedup without/with array contraction (SGI Origin model)",
		Header: []string{"procs", "without contraction", "with contraction"},
	}
	w := workloads.ByName("flo88")
	prog, sum := cachedAnalysis(w)
	live := liveness.Analyze(sum, liveness.Full)
	cons := live.Contractions()
	ar := runAppOn(w, prog, sum, ch4Config(w, true))
	mw := ar.MachineWorkload()
	// The streaming loops' memory traffic comes from the vector-style
	// temporaries: before contraction the whole temporary arrays stream;
	// after, only the per-iteration footprints remain (they fit in cache).
	var fullTemps, smallTemps int64
	seenSym := map[string]bool{}
	for _, c := range cons {
		key := c.Sym.Name + "/" + c.Sym.Common
		if seenSym[key] {
			continue
		}
		seenSym[key] = true
		fullTemps += c.FullElems
		smallTemps += c.FootprintElems
	}
	contracted := mw
	contracted.Loops = append([]machine.LoopWork(nil), mw.Loops...)
	for i := range mw.Loops {
		if !mw.Loops[i].Streaming {
			continue
		}
		mw.Loops[i].FootprintElems = fullTemps
		contracted.Loops[i].FootprintElems = smallTemps
		contracted.Loops[i].TotalOps = mw.Loops[i].TotalOps * 9 / 10 // fewer memory refs (§5.6: ~10% uniprocessor gain)
	}
	// Scale the Origin's memory system to our scaled-down arrays so the
	// memory-pressure regime matches the paper's full-size runs: smaller
	// cache, fewer memory ports, higher per-miss cost (see DESIGN.md).
	model := scaledModel(machine.SGIOrigin(), 600)
	model.MemPorts = 2
	model.MissPenalty = 8
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		t.Rows = append(t.Rows, []string{
			itoa(procs),
			f1(model.Speedup(mw, procs)),
			f1(model.Speedup(contracted, procs)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d arrays contracted (liveness-enabled)", len(cons)))
	return t
}
