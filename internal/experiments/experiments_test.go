package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, " ms"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestFig4_1Shapes(t *testing.T) {
	tab := Fig4_1()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		cov := num(t, r[4])
		if cov < 50 {
			t.Errorf("%s: automatic coverage %v too low", r[0], cov)
		}
		sp := num(t, r[6])
		if sp > 3 {
			t.Errorf("%s: automatic 8p speedup %v too high (paper: 1.0-2.7)", r[0], sp)
		}
	}
}

func TestFig4_7Chain(t *testing.T) {
	tab := Fig4_7()
	// The funnel must narrow: executed >= sequential >= important >=
	// noDyn >= userPar + remaining.
	get := func(row int) int {
		v, _ := strconv.Atoi(tab.Rows[row][5])
		return v
	}
	executed, sequential, important, noDyn, userPar, remaining :=
		get(0), get(1), get(2), get(3), get(4), get(5)
	if !(executed >= sequential && sequential >= important && important >= noDyn) {
		t.Fatalf("funnel violated: %d %d %d %d", executed, sequential, important, noDyn)
	}
	if noDyn < userPar+remaining {
		t.Fatalf("noDyn %d < userPar %d + remaining %d", noDyn, userPar, remaining)
	}
	if userPar == 0 {
		t.Fatal("no user-parallelized loops found")
	}
	if remaining > 2 {
		t.Fatalf("remaining important loops = %d, paper has 2", remaining)
	}
}

func TestFig4_8Restrictions(t *testing.T) {
	tab := Fig4_8()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "average" {
		t.Fatal("missing average row")
	}
	progLoop, progCR, progAR := num(t, last[3]), num(t, last[4]), num(t, last[5])
	if !(progLoop >= progCR && progCR >= progAR) {
		t.Fatalf("restrictions must shrink slices: %v >= %v >= %v", progLoop, progCR, progAR)
	}
	if progAR > 50 {
		t.Fatalf("restricted slices should be a modest fraction of the loop: %v%%", progAR)
	}
}

func TestFig4_10UserImproves(t *testing.T) {
	tab := Fig4_10()
	for i := 0; i < len(tab.Rows); i += 2 {
		auto8 := num(t, tab.Rows[i][5])
		user8 := num(t, tab.Rows[i+1][5])
		if user8 < auto8 {
			t.Errorf("%s: user speedup %v < auto %v", tab.Rows[i][0], user8, auto8)
		}
	}
	// mdg: the flagship story — no speedup automatically, large with help.
	if a := num(t, tab.Rows[0][5]); a > 1.5 {
		t.Errorf("mdg auto speedup = %v, want ~1.0", a)
	}
	if u := num(t, tab.Rows[1][5]); u < 4 {
		t.Errorf("mdg user speedup = %v, want substantial (paper: 6.0)", u)
	}
}

func TestFig5_7PrecisionOrdering(t *testing.T) {
	tab := Fig5_7()
	for _, r := range tab.Rows {
		fi, ob, full := num(t, r[3]), num(t, r[4]), num(t, r[5])
		if !(full >= ob && ob >= fi) {
			t.Errorf("%s: precision ordering violated: full=%v 1bit=%v fi=%v", r[0], full, ob, fi)
		}
	}
}

func TestFig5_8FullFindsMost(t *testing.T) {
	tab := Fig5_8()
	dead := map[string]map[string]float64{}
	for _, r := range tab.Rows {
		if dead[r[0]] == nil {
			dead[r[0]] = map[string]float64{}
		}
		dead[r[0]][r[1]] = num(t, r[2])
	}
	totalFull, total1bit := 0.0, 0.0
	for _, m := range dead {
		totalFull += m["full"]
		total1bit += m["1-bit"]
	}
	if totalFull < total1bit {
		t.Fatalf("full should find at least as many dead privates: %v vs %v", totalFull, total1bit)
	}
	if totalFull == 0 {
		t.Fatal("full variant found no dead private arrays")
	}
}

func TestFig5_10Hydro2dSplit(t *testing.T) {
	tab := Fig5_10()
	for _, r := range tab.Rows {
		if r[0] != "hydro2d" {
			continue
		}
		if r[1] != "1" {
			t.Fatalf("hydro2d splits = %s, want 1", r[1])
		}
		if num(t, r[3]) < num(t, r[2]) {
			t.Fatalf("split should not hurt: %s -> %s", r[2], r[3])
		}
		return
	}
	t.Fatal("no hydro2d row")
}

func TestFig5_12ContractionShape(t *testing.T) {
	tab := Fig5_12()
	last := tab.Rows[len(tab.Rows)-1] // 32 procs
	without, with := num(t, last[1]), num(t, last[2])
	if with <= without {
		t.Fatalf("contraction should improve 32-proc scaling: %v vs %v", without, with)
	}
	if without > 14 {
		t.Fatalf("uncontracted flo88 should be memory-bound (paper 6.3): %v", without)
	}
	if with < 14 {
		t.Fatalf("contracted flo88 should scale (paper 19.6): %v", with)
	}
}

func TestFig6_4ReductionImpact(t *testing.T) {
	tab := Fig6_4()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 programs", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		without, with := num(t, r[2]), num(t, r[3])
		if with <= without {
			t.Errorf("%s: reduction recognition should add parallel loops: %v -> %v", r[0], without, with)
		}
	}
}

func TestFig6_6SpeedupImproves(t *testing.T) {
	tab := Fig6_6()
	improved := 0
	for _, r := range tab.Rows {
		if num(t, r[2]) > num(t, r[1]) {
			improved++
		}
	}
	if improved < 9 {
		t.Fatalf("reductions should speed up most programs: %d of %d improved", improved, len(tab.Rows))
	}
}

func TestParallelExecutionValidates(t *testing.T) {
	// §6.5.2: every user-parallelized application validates against its
	// sequential execution when actually run with goroutines.
	for _, name := range []string{"mdg", "arc3d", "flo88"} {
		if err := ValidateUserParallelization(name, 4); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
