package experiments

import "fmt"

// generator pairs a figure ID with its table function, in publication order.
type generator struct {
	id string
	fn func() *Table
}

// generators is the single registry of reproduced tables; cmd/paperfigs and
// the golden regression tests both drive it.
var generators = []generator{
	{"4-1", Fig4_1}, {"4-7", Fig4_7}, {"4-8", Fig4_8}, {"4-9", Fig4_9}, {"4-10", Fig4_10},
	{"5-5", Fig5_5}, {"5-6", Fig5_6}, {"5-7", Fig5_7}, {"5-8", Fig5_8}, {"5-10", Fig5_10}, {"5-12", Fig5_12},
	{"6-1", Fig6_1}, {"6-2", Fig6_2}, {"6-3", Fig6_3}, {"6-4", Fig6_4}, {"6-5", Fig6_5}, {"6-6", Fig6_6}, {"6-7", Fig6_7},
}

// TableIDs returns every reproduced figure ID in publication order.
func TableIDs() []string {
	out := make([]string, len(generators))
	for i, g := range generators {
		out[i] = g.id
	}
	return out
}

// Generate regenerates the named tables, fanning the work out across
// GOMAXPROCS goroutines (each generator pulls its workload analyses from
// the shared driver cache, so concurrent generators share summaries).
// Results come back in request order regardless of completion order.
func Generate(ids []string) ([]*Table, error) {
	fns := make([]func() *Table, len(ids))
	for i, id := range ids {
		found := false
		for _, g := range generators {
			if g.id == id {
				fns[i] = g.fn
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown figure %q", id)
		}
	}
	out := make([]*Table, len(ids))
	forEach(len(ids), func(i int) { out[i] = fns[i]() })
	return out, nil
}

// AllTables regenerates every reproduced table/figure in order.
func AllTables() []*Table {
	tables, err := Generate(TableIDs())
	if err != nil {
		panic(err) // unreachable: TableIDs comes from the registry
	}
	return tables
}
