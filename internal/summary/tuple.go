// Package summary implements the interprocedural array data-flow analysis of
// §5.2 and §6.2: for every region (loop body, loop, procedure) it computes,
// per array, the four-tuple ⟨R, E, W, M⟩ of may-read, upwards-exposed-read,
// may-write and must-write sections, represented as unions of systems of
// linear inequalities. Commutative-update (reduction) regions are tracked
// alongside, per operator, exactly as §6.2.2.3 integrates reduction
// recognition into the data-flow framework.
//
// Scalars participate uniformly as 0-dimensional arrays.
package summary

import (
	"sort"
	"strings"

	"suifx/internal/ir"
	"suifx/internal/lin"
)

// Reduction operator names.
const (
	RedAdd = "+"
	RedMul = "*"
	RedMin = "MIN"
	RedMax = "MAX"
)

// Access is the per-array summary for one region: the paper's
// ⟨R, E, W, M⟩ tuple plus reduction bookkeeping. W and M are disjoint:
// W holds may-writes not known to always execute; M holds must-writes.
type Access struct {
	Sym *ir.Symbol // canonical symbol (see Analysis.Canon)
	R   *lin.Section
	E   *lin.Section
	W   *lin.Section
	M   *lin.Section
	// Red maps a commutative operator to the section updated only through
	// that operator; Plain is everything touched by non-reduction accesses
	// and PlainW the subset of Plain that is written.
	Red    map[string]*lin.Section
	Plain  *lin.Section
	PlainW *lin.Section
}

func newAccess(sym *ir.Symbol) *Access {
	nd := len(sym.Dims)
	return &Access{
		Sym: sym,
		R:   lin.EmptySection(nd), E: lin.EmptySection(nd),
		W: lin.EmptySection(nd), M: lin.EmptySection(nd),
		Red:    map[string]*lin.Section{},
		Plain:  lin.EmptySection(nd),
		PlainW: lin.EmptySection(nd),
	}
}

// Writes returns W ∪ M, the full may-write section.
func (a *Access) Writes() *lin.Section { return a.W.Union(a.M) }

// Clone deep-copies the access.
func (a *Access) Clone() *Access {
	out := &Access{Sym: a.Sym, R: a.R.Clone(), E: a.E.Clone(), W: a.W.Clone(), M: a.M.Clone(),
		Red: map[string]*lin.Section{}, Plain: a.Plain.Clone(), PlainW: a.PlainW.Clone()}
	for op, s := range a.Red {
		out.Red[op] = s.Clone()
	}
	return out
}

// Tuple is a whole-region summary: one Access per touched canonical symbol.
type Tuple struct {
	Arrays map[*ir.Symbol]*Access
}

// NewTuple returns an empty summary.
func NewTuple() *Tuple { return &Tuple{Arrays: map[*ir.Symbol]*Access{}} }

// Get returns (creating) the access record for sym.
func (t *Tuple) Get(sym *ir.Symbol) *Access {
	a := t.Arrays[sym]
	if a == nil {
		a = newAccess(sym)
		t.Arrays[sym] = a
	}
	return a
}

// Lookup returns the access record for sym or nil.
func (t *Tuple) Lookup(sym *ir.Symbol) *Access { return t.Arrays[sym] }

// Clone deep-copies the tuple.
func (t *Tuple) Clone() *Tuple {
	out := NewTuple()
	for s, a := range t.Arrays {
		out.Arrays[s] = a.Clone()
	}
	return out
}

// SortedSyms returns the touched symbols in deterministic order.
func (t *Tuple) SortedSyms() []*ir.Symbol {
	out := make([]*ir.Symbol, 0, len(t.Arrays))
	for s := range t.Arrays {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Common < out[j].Common
	})
	return out
}

// Compose returns the summary of "a then b" (the paper's transfer function T):
// R = Ra ∪ Rb, E = Ea ∪ (Eb − Ma), W = Wa ∪ Wb, M = Ma ∪ Mb.
func Compose(a, b *Tuple) *Tuple {
	out := a.Clone()
	for sym, bb := range b.Arrays {
		aa := out.Get(sym)
		aa.R = aa.R.Union(bb.R)
		aa.E = aa.E.Union(bb.E.Subtract(aa.M))
		aa.W = aa.W.Union(bb.W)
		aa.M = aa.M.Union(bb.M)
		for op, s := range bb.Red {
			aa.Red[op] = redOr(aa.Red[op], s)
		}
		aa.Plain = aa.Plain.Union(bb.Plain)
		aa.PlainW = aa.PlainW.Union(bb.PlainW)
	}
	return out
}

// Meet combines summaries of alternative paths (the ∧ operator):
// R, E, W union; M intersection.
func Meet(a, b *Tuple) *Tuple {
	out := NewTuple()
	syms := map[*ir.Symbol]bool{}
	for s := range a.Arrays {
		syms[s] = true
	}
	for s := range b.Arrays {
		syms[s] = true
	}
	for s := range syms {
		aa, ba := a.Arrays[s], b.Arrays[s]
		if aa == nil {
			aa = newAccess(s)
		}
		if ba == nil {
			ba = newAccess(s)
		}
		oa := out.Get(s)
		oa.R = aa.R.Union(ba.R)
		oa.E = aa.E.Union(ba.E)
		oa.W = aa.W.Union(ba.W).Union(aa.M.Union(ba.M).Subtract(aa.M.Intersect(ba.M)))
		oa.M = aa.M.Intersect(ba.M)
		for op, s2 := range aa.Red {
			oa.Red[op] = redOr(oa.Red[op], s2)
		}
		for op, s2 := range ba.Red {
			oa.Red[op] = redOr(oa.Red[op], s2)
		}
		oa.Plain = aa.Plain.Union(ba.Plain)
		oa.PlainW = aa.PlainW.Union(ba.PlainW)
	}
	return out
}

func redOr(a, b *lin.Section) *lin.Section {
	if a == nil {
		return b.Clone()
	}
	return a.Union(b)
}

// CloseLoop computes the loop-level summary from a body summary by
// projecting away the loop index and every loop-variant unknown minted in
// the body (§5.2.2's closure operator). Must-write polyhedra survive only
// when the projection is exact: no variant unknowns and, if the index is
// referenced, exact loop bounds. When refineE returns true for an access
// (requires exact bounds), the §5.2.2.3 enhancement subtracts the
// must-writes of strictly earlier iterations from the upwards-exposed
// reads before the closure — which resolves recurrences like flo88's psmoo
// (Fig 5-4) to just the truly exposed boundary elements.
func CloseLoop(body *Tuple, idxVar string, exactBounds bool, variant []string, bounds *lin.System, refineE func(a *Access) bool) *Tuple {
	proj := append([]string{idxVar}, variant...)
	out := NewTuple()
	for sym, a := range body.Arrays {
		oa := out.Get(sym)
		oa.R = a.R.Project(proj...)
		oa.W = a.W.Project(proj...)
		for op, s := range a.Red {
			oa.Red[op] = s.Project(proj...)
		}
		oa.Plain = a.Plain.Project(proj...)
		oa.PlainW = a.PlainW.Project(proj...)

		// Must-writes: keep polyhedra whose projection is exact.
		oa.M = lin.EmptySection(len(sym.Dims))
		var demoted *lin.Section // polyhedra demoted from M to W
		for _, p := range a.M.Polys {
			if mustProjectable(p, idxVar, exactBounds, variant) {
				oa.M = oa.M.Union(&lin.Section{NDim: len(sym.Dims), Polys: []*lin.System{p.EliminateVars(proj...)}, Exact: a.M.Exact})
			} else {
				d := &lin.Section{NDim: len(sym.Dims), Polys: []*lin.System{p.EliminateVars(proj...)}, Exact: false}
				if demoted == nil {
					demoted = d
				} else {
					demoted = demoted.Union(d)
				}
			}
		}
		if demoted != nil {
			oa.W = oa.W.Union(demoted)
		}

		e := a.E
		if refineE != nil && refineE(a) {
			e = e.Subtract(earlierMustWrites(a.M, idxVar, exactBounds, variant, bounds))
		}
		oa.E = e.Project(proj...)
	}
	return out
}

// earlierMustWrites builds, as a function of the current iteration idxVar,
// the section definitely written by all strictly earlier iterations: each
// must-write polyhedron (only those with exact, variant-free projections)
// has its index renamed to a fresh variable constrained to the loop bounds
// and < idxVar, which is then projected away. The bound constraints matter:
// without them an index-free must-write would wrongly appear to cover the
// first iteration's exposed reads.
func earlierMustWrites(m *lin.Section, idxVar string, exactBounds bool, variant []string, bounds *lin.System) *lin.Section {
	prev := "$prev$" + idxVar
	out := lin.EmptySection(m.NDim)
	for _, p := range m.Polys {
		if !mustProjectable(p, idxVar, exactBounds, variant) {
			continue
		}
		q := p.Rename(idxVar, prev)
		if bounds != nil {
			q = q.Intersect(bounds.Rename(idxVar, prev))
		}
		q.AddGE(lin.Var(idxVar).Sub(lin.Var(prev)).AddConst(-1)) // prev <= idx-1
		out = out.Union(&lin.Section{NDim: m.NDim, Polys: []*lin.System{q.Eliminate(prev)}, Exact: m.Exact})
	}
	return out
}

func mustProjectable(p *lin.System, idxVar string, exactBounds bool, variant []string) bool {
	for _, v := range p.Vars() {
		if v == idxVar {
			if !exactBounds {
				return false
			}
			continue
		}
		for _, bad := range variant {
			if v == bad {
				return false
			}
		}
		if strings.HasPrefix(v, "%") {
			// A variant unknown minted in an inner loop that leaked here.
			return false
		}
	}
	return true
}

// ProjectSyms projects the given symbolic variables out of every section
// (over-approximating); must-writes referencing them are demoted to
// may-writes. Used at procedure boundaries to eliminate callee-local names.
func (t *Tuple) ProjectSyms(drop func(v string) bool) *Tuple {
	out := NewTuple()
	for sym, a := range t.Arrays {
		oa := out.Get(sym)
		oa.R = projectIf(a.R, drop)
		oa.E = projectIf(a.E, drop)
		oa.W = projectIf(a.W, drop)
		oa.Plain = projectIf(a.Plain, drop)
		oa.PlainW = projectIf(a.PlainW, drop)
		for op, s := range a.Red {
			oa.Red[op] = projectIf(s, drop)
		}
		oa.M = lin.EmptySection(len(sym.Dims))
		for _, p := range a.M.Polys {
			bad := false
			for _, v := range p.Vars() {
				if drop(v) {
					bad = true
					break
				}
			}
			if !bad {
				oa.M.Polys = append(oa.M.Polys, p.Clone())
			} else {
				oa.W = oa.W.Union(&lin.Section{NDim: len(sym.Dims), Polys: []*lin.System{projectPoly(p, drop)}, Exact: false})
			}
		}
		oa.M.Exact = a.M.Exact
	}
	return out
}

func projectIf(s *lin.Section, drop func(v string) bool) *lin.Section {
	out := &lin.Section{NDim: s.NDim, Exact: s.Exact}
	for _, p := range s.Polys {
		out.Polys = append(out.Polys, projectPoly(p, drop))
	}
	return out
}

func projectPoly(p *lin.System, drop func(v string) bool) *lin.System {
	out := p
	for _, v := range p.Vars() {
		if drop(v) {
			out = out.Eliminate(v)
		}
	}
	return out
}

// String renders a tuple for debugging.
func (t *Tuple) String() string {
	var b strings.Builder
	for _, sym := range t.SortedSyms() {
		a := t.Arrays[sym]
		b.WriteString(sym.Name + ": R=" + a.R.String() + " E=" + a.E.String() +
			" W=" + a.W.String() + " M=" + a.M.String())
		for _, op := range []string{RedAdd, RedMul, RedMin, RedMax} {
			if s, ok := a.Red[op]; ok && !s.IsEmpty() {
				b.WriteString(" Red[" + op + "]=" + s.String())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
