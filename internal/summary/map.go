package summary

import (
	"fmt"
	"strings"

	"suifx/internal/ir"
	"suifx/internal/lin"
)

// leafCall builds the summary of a CALL statement: reads performed by
// value-argument expressions, plus the callee's procedure summary mapped
// into the caller's space (the paper's FindSummary parameter mapping and
// array reshape, §5.2.2.1).
func (w *walker) leafCall(c *ir.Call) *Tuple {
	t := NewTuple()
	callee := w.a.Prog.ByName[c.Name]
	if callee == nil {
		return t
	}
	// Value arguments (general expressions) are read at the call; reference
	// arguments contribute their subscript reads only.
	for _, arg := range c.Args {
		switch x := arg.(type) {
		case *ir.VarRef:
			// by reference; accesses come from the mapped summary
		case *ir.ArrayRef:
			for _, ix := range x.Idx {
				addReads(t, w, ix)
			}
		default:
			addReads(t, w, arg)
		}
	}
	mapped := w.mapCall(c, callee)
	return Compose(t, mapped)
}

// mapCall maps the callee's procedure summary into the caller's name space.
// Symbols are mapped in sorted order so fresh variant names are minted
// deterministically regardless of map iteration order.
func (w *walker) mapCall(c *ir.Call, callee *ir.Proc) *Tuple {
	sum := w.callee(callee.Name)
	if sum == nil {
		return NewTuple()
	}
	m := &callMapper{w: w, c: c, callee: callee, leftover: map[string]string{}}
	out := NewTuple()
	for _, sym := range sum.SortedSyms() {
		m.mapAccess(out, sym, sum.Arrays[sym])
	}
	return out
}

type callMapper struct {
	w        *walker
	c        *ir.Call
	callee   *ir.Proc
	leftover map[string]string // callee free name -> caller variant name
}

// mapAccess maps one callee access record onto the caller tuple.
func (m *callMapper) mapAccess(out *Tuple, sym *ir.Symbol, acc *Access) {
	switch {
	case sym.IsParam:
		m.mapParamAccess(out, sym, acc)
	case sym.Common != "":
		// Canonical common keys are shared across procedures; only the
		// symbolic variables need mapping.
		target := out.Get(m.w.a.Canon(sym))
		m.mergeSections(target, acc, identityTransform)
	}
}

func identityTransform(s *lin.Section) *lin.Section { return s.Clone() }

func (m *callMapper) mapParamAccess(out *Tuple, formal *ir.Symbol, acc *Access) {
	if formal.ParamIndex >= len(m.c.Args) {
		return
	}
	arg := m.c.Args[formal.ParamIndex]
	switch x := arg.(type) {
	case *ir.VarRef:
		// Scalar (or whole-array via scalar ref — arrays parse as ArrayRef).
		target := out.Get(m.w.a.Canon(x.Sym))
		m.mergeSections(target, acc, identityTransform)
	case *ir.ArrayRef:
		m.mapArrayArg(out, formal, acc, x)
	default:
		// Value argument: callee writes are lost (writing a temporary);
		// callee reads were already accounted as value-argument reads.
	}
}

// mapArrayArg maps a formal array's sections onto the actual array,
// handling the 1-D subarray-offset case exactly and degrading other
// reshapes to the whole actual array.
func (m *callMapper) mapArrayArg(out *Tuple, formal *ir.Symbol, acc *Access, actual *ir.ArrayRef) {
	asym := m.w.a.Canon(actual.Sym)
	target := out.Get(asym)

	sameShape := len(formal.Dims) == len(actual.Sym.Dims) && len(actual.Idx) == 0
	if sameShape {
		for i, d := range formal.Dims {
			if d != actual.Sym.Dims[i] {
				sameShape = false
				break
			}
		}
	}
	switch {
	case sameShape:
		m.mergeSections(target, acc, identityTransform)
	case len(formal.Dims) == 1 && len(actual.Sym.Dims) == 1:
		// Sequence association: element j of the formal is element
		// start + (j - formal.Lo) of the actual.
		start := lin.NewExpr(actual.Sym.Dims[0].Lo)
		if len(actual.Idx) == 1 {
			if e, ok, _ := m.w.ev.Affine(actual.Idx[0]); ok {
				start = e
			} else {
				start = lin.Var(m.fresh("start"))
			}
		}
		off := start.AddConst(-formal.Dims[0].Lo) // caller index = off + formal index
		tr := func(s *lin.Section) *lin.Section {
			// formal $d0 = caller $d0 - off
			return s.Substitute(lin.DimVar(0), lin.Var(lin.DimVar(0)).Sub(off))
		}
		m.mergeSections(target, acc, tr)
	default:
		// Reshape we do not model precisely: whole actual array, may-only.
		m.degrade(target, acc)
	}
}

// mergeSections maps the callee access's sections through tr and the
// symbolic-variable substitution, then merges into target.
func (m *callMapper) mergeSections(target *Access, acc *Access, tr func(*lin.Section) *lin.Section) {
	// Substitute callee names first: the dimension transform introduces
	// caller-side names that must not be re-minted as leftovers.
	conv := func(s *lin.Section) *lin.Section { return tr(m.substVars(s)) }
	target.R = target.R.Union(conv(acc.R))
	target.E = target.E.Union(conv(acc.E))
	target.W = target.W.Union(conv(acc.W))
	target.Plain = target.Plain.Union(conv(acc.Plain))
	target.PlainW = target.PlainW.Union(conv(acc.PlainW))
	for op, s := range acc.Red {
		target.Red[op] = redOr(target.Red[op], conv(s))
	}
	// Must-writes survive the mapping only if no polyhedron picked up a
	// fresh variant name (substVars marks those with the % prefix; the
	// closure operator would drop them anyway, but writes of unknown
	// specific locations remain must at this call point, so keep them).
	target.M = target.M.Union(conv(acc.M))
}

// degrade adds the whole actual array as a may-access.
func (m *callMapper) degrade(target *Access, acc *Access) {
	whole := lin.WholeSection(len(target.Sym.Dims))
	if !acc.R.IsEmpty() {
		target.R = target.R.Union(whole)
		target.E = target.E.Union(whole)
	}
	if !acc.W.IsEmpty() || !acc.M.IsEmpty() {
		target.W = target.W.Union(whole)
	}
	if !acc.Plain.IsEmpty() {
		target.Plain = target.Plain.Union(whole)
		if !acc.PlainW.IsEmpty() {
			target.PlainW = target.PlainW.Union(whole)
		}
	} else {
		for op, s := range acc.Red {
			if !s.IsEmpty() {
				target.Red[op] = redOr(target.Red[op], whole)
			}
		}
	}
}

// substVars rewrites callee symbolic names: formal scalar parameters become
// the actual argument's affine value; common-block scalars visible in the
// caller become the caller's current value; anything else becomes a fresh
// caller variant unknown.
func (m *callMapper) substVars(s *lin.Section) *lin.Section {
	out := s
	for _, v := range s.SymVars() {
		repl, ok := m.replacement(v)
		if !ok {
			continue
		}
		out = out.Substitute(v, repl)
	}
	return out
}

func (m *callMapper) replacement(v string) (lin.Expr, bool) {
	// Formal scalar parameter?
	if sym := m.callee.Syms[v]; sym != nil && sym.IsParam && !sym.IsArray() {
		arg := m.c.Args[sym.ParamIndex]
		if e, ok, _ := m.w.ev.Affine(arg); ok {
			return e, true
		}
		return lin.Var(m.fresh(v)), true
	}
	// Common scalar visible in the caller with the same storage?
	if sym := m.callee.Syms[v]; sym != nil && sym.Common != "" && !sym.IsArray() {
		for _, cs := range m.w.proc.SortedSyms() {
			if cs.Common == sym.Common && cs.CommonOffset == sym.CommonOffset && !cs.IsArray() {
				return m.w.ev.Value(cs), true
			}
		}
		return lin.Var(m.fresh(v)), true
	}
	// Loop indices and locals were projected at the procedure boundary;
	// anything left (opaque unknowns) becomes a caller variant unknown.
	if strings.HasPrefix(v, "%") || strings.HasPrefix(v, "&") || strings.HasPrefix(v, "@") {
		return lin.Var(m.fresh(v)), true
	}
	// A callee-local name that leaked (should not happen): make it opaque.
	return lin.Var(m.fresh(v)), true
}

// fresh mints (memoized per call site) a caller-side variant unknown for a
// callee name. The counter is per-procedure walker state, so minted names
// depend only on the procedure's own statement order — independent of the
// order procedures are analyzed in.
func (m *callMapper) fresh(v string) string {
	if n, ok := m.leftover[v]; ok {
		return n
	}
	m.w.fresh++
	n := fmt.Sprintf("%%call.%s.%d", v, m.w.fresh)
	m.leftover[v] = n
	return n
}
