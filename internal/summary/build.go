package summary

import (
	"fmt"
	"strings"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/modref"
	"suifx/internal/region"
	"suifx/internal/symbolic"
)

// Analysis holds the whole-program array data-flow results.
//
// The mutable result maps (ProcSum, RegionSum, ...) are filled by Merge;
// everything else (Prog, MR, Reg, the canonical-symbol table) is built once
// by NewAnalysis and is read-only afterwards, so AnalyzeProc calls for
// different procedures may run concurrently as long as every callee's result
// has been merged (or is reachable through the callee lookup) first.
type Analysis struct {
	Prog *ir.Program
	MR   *modref.Info
	Reg  *region.Info

	// ProcSum is the procedure summary in callee space with local names
	// projected away — what call sites map into their callers.
	ProcSum map[string]*Tuple
	// RegionSum is the full summary of each proc and loop region.
	RegionSum map[*region.Region]*Tuple
	// BodySum is the per-iteration summary of each loop body, with the loop
	// index as a free variable (used by dependence and privatization tests).
	BodySum map[*region.Region]*Tuple
	// Ctx describes each loop's index variable, bound exactness and variant
	// names.
	Ctx map[*region.Region]*symbolic.LoopContext
	// After records, per region r and call/loop statement n directly in r,
	// the summary from the end of n to the end of r (the paper's S_{r,n}).
	After map[*region.Region]map[ir.Stmt]*Tuple

	canonTab map[string]*ir.Symbol // precomputed by NewAnalysis, read-only
}

// ProcResult is one procedure's contribution to the whole-program analysis:
// the per-region summaries plus the projected procedure summary. It is
// produced by AnalyzeProc and folded into the Analysis by Merge.
type ProcResult struct {
	Proc      *ir.Proc
	ProcSum   *Tuple
	RegionSum map[*region.Region]*Tuple
	BodySum   map[*region.Region]*Tuple
	Ctx       map[*region.Region]*symbolic.LoopContext
	After     map[*region.Region]map[ir.Stmt]*Tuple
}

// NewAnalysis builds the shared read-only state of the bottom-up phase: the
// mod/ref summaries (computed if mr is nil), the region graph, and the
// canonical common-block symbol table. Procedure results are added with
// AnalyzeProc + Merge.
func NewAnalysis(prog *ir.Program, mr *modref.Info) *Analysis {
	if mr == nil {
		mr = modref.Analyze(prog)
	}
	a := &Analysis{
		Prog:      prog,
		MR:        mr,
		Reg:       region.Build(prog),
		ProcSum:   map[string]*Tuple{},
		RegionSum: map[*region.Region]*Tuple{},
		BodySum:   map[*region.Region]*Tuple{},
		Ctx:       map[*region.Region]*symbolic.LoopContext{},
		After:     map[*region.Region]map[ir.Stmt]*Tuple{},
		canonTab:  map[string]*ir.Symbol{},
	}
	a.precomputeCanon()
	return a
}

// Analyze runs the bottom-up array data-flow phase over the whole program,
// sequentially. The concurrent scheduler in internal/driver produces
// byte-identical results by running AnalyzeProc on a worker pool and calling
// Merge in the same bottom-up order.
func Analyze(prog *ir.Program) *Analysis {
	a := NewAnalysis(prog, nil)
	order, ok := prog.BottomUpOrder()
	if !ok {
		order = prog.Procs // recursion rejected upstream; be defensive
	}
	for _, p := range order {
		a.Merge(a.AnalyzeProc(p, a.ProcSummary))
	}
	return a
}

// ProcSummary returns the merged procedure summary for name (nil if not yet
// merged) — the callee lookup used by the sequential driver.
func (a *Analysis) ProcSummary(name string) *Tuple { return a.ProcSum[name] }

// Clone returns an Analysis with fresh result maps sharing every merged
// per-procedure value (Tuples are immutable once merged) and the same
// read-only skeleton — program, region graph, canonical-symbol table. mr,
// when non-nil, replaces the mod/ref info so the clone can track its own
// re-merged effects. Merge on the clone never disturbs the original, which
// lets the incremental driver branch a private re-analyzable copy off a
// shared cached result.
func (a *Analysis) Clone(mr *modref.Info) *Analysis {
	if mr == nil {
		mr = a.MR
	}
	out := &Analysis{
		Prog:      a.Prog,
		MR:        mr,
		Reg:       a.Reg,
		ProcSum:   make(map[string]*Tuple, len(a.ProcSum)),
		RegionSum: make(map[*region.Region]*Tuple, len(a.RegionSum)),
		BodySum:   make(map[*region.Region]*Tuple, len(a.BodySum)),
		Ctx:       make(map[*region.Region]*symbolic.LoopContext, len(a.Ctx)),
		After:     make(map[*region.Region]map[ir.Stmt]*Tuple, len(a.After)),
		canonTab:  a.canonTab,
	}
	for k, v := range a.ProcSum {
		out.ProcSum[k] = v
	}
	for k, v := range a.RegionSum {
		out.RegionSum[k] = v
	}
	for k, v := range a.BodySum {
		out.BodySum[k] = v
	}
	for k, v := range a.Ctx {
		out.Ctx[k] = v
	}
	for k, v := range a.After {
		out.After[k] = v
	}
	return out
}

// Merge folds one procedure's result into the whole-program maps. It must
// not race with AnalyzeProc readers of ProcSum; schedulers call it either
// single-threaded (after all workers finish) or before any dependent
// procedure starts.
func (a *Analysis) Merge(r *ProcResult) {
	a.ProcSum[r.Proc.Name] = r.ProcSum
	for k, v := range r.RegionSum {
		a.RegionSum[k] = v
	}
	for k, v := range r.BodySum {
		a.BodySum[k] = v
	}
	for k, v := range r.Ctx {
		a.Ctx[k] = v
	}
	for k, v := range r.After {
		a.After[k] = v
	}
}

func canonKey(sym *ir.Symbol) string {
	return fmt.Sprintf("%s+%d:%d:%v", sym.Common, sym.CommonOffset, sym.NElems(), sym.Dims)
}

// precomputeCanon registers every common-block symbol of the program in the
// canonical table up front, so Canon is a pure lookup during the (possibly
// concurrent) analysis. Registration order mirrors the sequential analysis:
// procedures bottom-up, references in statement-walk order, then declared
// symbols — so the canonical representative matches what the sequential
// first-touch rule used to pick.
func (a *Analysis) precomputeCanon() {
	reg := func(sym *ir.Symbol) {
		if sym == nil || sym.Common == "" {
			return
		}
		key := canonKey(sym)
		if a.canonTab[key] == nil {
			a.canonTab[key] = sym
		}
	}
	order, ok := a.Prog.BottomUpOrder()
	if !ok {
		order = a.Prog.Procs
	}
	for _, p := range order {
		ir.WalkStmts(p.Body, func(s ir.Stmt) bool {
			if l, isLoop := s.(*ir.DoLoop); isLoop {
				reg(l.Index)
			}
			ir.WalkExprs(s, func(e ir.Expr) {
				switch x := e.(type) {
				case *ir.VarRef:
					reg(x.Sym)
				case *ir.ArrayRef:
					reg(x.Sym)
				}
			})
			return true
		})
	}
	for _, p := range order {
		for _, s := range p.SortedSyms() {
			reg(s)
		}
	}
}

// Canon returns the canonical symbol for sym: common-block members with the
// same block, offset and shape share one key across procedures, so accesses
// from different procedures unify. Locals and parameters are their own keys.
// The table is precomputed by NewAnalysis, so Canon is safe to call from
// concurrent AnalyzeProc workers.
func (a *Analysis) Canon(sym *ir.Symbol) *ir.Symbol {
	if sym.Common == "" {
		return sym
	}
	if c := a.canonTab[canonKey(sym)]; c != nil {
		return c
	}
	return sym // unreachable: precomputeCanon covers every declared symbol
}

// Overlaps reports whether two distinct canonical symbols may alias: both in
// the same common block with overlapping flat element ranges.
func Overlaps(x, y *ir.Symbol) bool {
	if x == y {
		return true
	}
	if x.Common == "" || x.Common != y.Common {
		return false
	}
	xl, xh := x.CommonOffset, x.CommonOffset+x.NElems()-1
	yl, yh := y.CommonOffset, y.CommonOffset+y.NElems()-1
	return xl <= yh && yl <= xh
}

type node struct {
	stmt       ir.Stmt
	tuple      *Tuple // leaf (or loop) summary; cond/bound reads for IFs
	isIf       bool
	thenN, elN []*node
}

type walker struct {
	a      *Analysis
	proc   *ir.Proc
	ev     *symbolic.Evaluator
	ctx    []*lin.System // active in-proc loop bound constraints
	res    *ProcResult
	callee func(string) *Tuple // callee summary lookup (merged results)
	fresh  int                 // per-proc fresh-name counter (deterministic)
}

// AnalyzeProc computes one procedure's summaries. It only reads the shared
// state of a (Prog, MR, Reg, canon table) plus the summaries of p's callees
// via the callee lookup; all results land in the returned ProcResult, so
// calls for independent procedures may run concurrently.
func (a *Analysis) AnalyzeProc(p *ir.Proc, callee func(string) *Tuple) *ProcResult {
	res := &ProcResult{
		Proc:      p,
		RegionSum: map[*region.Region]*Tuple{},
		BodySum:   map[*region.Region]*Tuple{},
		Ctx:       map[*region.Region]*symbolic.LoopContext{},
		After:     map[*region.Region]map[ir.Stmt]*Tuple{},
	}
	w := &walker{a: a, proc: p, ev: symbolic.NewEvaluator(a.MR, p), res: res, callee: callee}
	nodes := w.walkList(p.Body)
	top := a.Reg.ProcTop[p.Name]
	res.After[top] = map[ir.Stmt]*Tuple{}
	sum := w.composeNodes(top, nodes, NewTuple())
	res.RegionSum[top] = sum
	res.ProcSum = a.projectProc(p, sum)
	return res
}

// ---- forward walk ----

func (w *walker) walkList(stmts []ir.Stmt) []*node {
	var out []*node
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			out = append(out, &node{stmt: s, tuple: w.leafAssign(st)})
			if !st.Lhs.Symbol().IsArray() {
				w.ev.AssignScalar(st.Lhs.Symbol(), st.Rhs)
			}
		case *ir.If:
			out = append(out, w.walkIf(st))
		case *ir.Call:
			out = append(out, &node{stmt: s, tuple: w.leafCall(st)})
			w.ev.KillCall(st)
		case *ir.IO:
			out = append(out, &node{stmt: s, tuple: w.leafIO(st)})
			if !st.Write {
				for _, arg := range st.Args {
					if r, ok := arg.(ir.Ref); ok && !r.Symbol().IsArray() {
						w.ev.Kill(r.Symbol())
					}
				}
			}
		case *ir.DoLoop:
			out = append(out, w.walkLoop(st))
		case *ir.Continue, *ir.Return, *ir.Stop:
			// No data effects. Early RETURN inside an IF is treated as
			// fall-through (see DESIGN.md limitations).
		}
	}
	return out
}

func (w *walker) walkIf(st *ir.If) *node {
	if op, upd := w.minMaxPattern(st); upd != nil {
		// IF (x .LT. t) t = x — a commutative MIN/MAX update (§6.2.2.1).
		// The condition's read of the accumulator is part of the update, so
		// it must not land in Plain (addWrite subtracts it afterwards).
		t := w.leafCommutative(upd, op, st.Cond)
		return &node{stmt: st, tuple: t}
	}
	n := &node{stmt: st, isIf: true, tuple: NewTuple()}
	addReads(n.tuple, w, st.Cond)
	evThen, evElse := w.ev.Branch()
	saved := w.ev
	w.ev = evThen
	n.thenN = w.walkList(st.Then)
	w.ev = evElse
	n.elN = w.walkList(st.Else)
	w.ev = saved
	w.ev.MergeBranches(evThen, evElse)
	return n
}

// minMaxPattern recognizes IF (x REL t) t = x with REL in LT/LE (MIN) or
// GT/GE (MAX), including the reversed comparison.
func (w *walker) minMaxPattern(st *ir.If) (op string, upd *ir.Assign) {
	return ClassifyMinMaxIf(st)
}

// ClassifyMinMaxIf recognizes the guarded MIN/MAX update pattern (exported
// for static reduction censuses, Fig 6-2).
func ClassifyMinMaxIf(st *ir.If) (op string, upd *ir.Assign) {
	if len(st.Then) != 1 || len(st.Else) != 0 {
		return "", nil
	}
	asg, ok := st.Then[0].(*ir.Assign)
	if !ok {
		return "", nil
	}
	cond, ok := st.Cond.(*ir.Bin)
	if !ok || !cond.Op.IsComparison() || cond.Op == ir.OpEQ || cond.Op == ir.OpNE {
		return "", nil
	}
	lhsStr := refString(asg.Lhs)
	rhsStr := asg.Rhs.String()
	l, r := cond.L.String(), cond.R.String()
	// x REL t with t = lhs, x = rhs.
	switch {
	case r == lhsStr && l == rhsStr:
		if cond.Op == ir.OpLT || cond.Op == ir.OpLE {
			return RedMin, asg
		}
		return RedMax, asg
	case l == lhsStr && r == rhsStr:
		if cond.Op == ir.OpGT || cond.Op == ir.OpGE {
			return RedMin, asg
		}
		return RedMax, asg
	}
	return "", nil
}

func (w *walker) walkLoop(l *ir.DoLoop) *node {
	t := NewTuple()
	addReads(t, w, l.Lo)
	addReads(t, w, l.Hi)
	if l.Step != nil {
		addReads(t, w, l.Step)
	}

	lc, leave := w.ev.EnterLoopBody(l)
	w.ctx = append(w.ctx, lc.Bounds)
	bodyNodes := w.walkList(l.Body)
	w.ctx = w.ctx[:len(w.ctx)-1]

	lr := w.a.Reg.OfLoop[l]
	body := lr.Body()
	w.res.After[body] = map[ir.Stmt]*Tuple{}
	bodyTuple := w.composeNodes(body, bodyNodes, NewTuple())
	w.res.BodySum[body] = bodyTuple

	full := leave()
	w.res.Ctx[lr] = full

	// The §5.2.2.3 refinement subtracts strictly-earlier-iteration
	// must-writes; it is sound whenever the loop bounds are exact.
	refine := func(acc *Access) bool { return full.Exact }
	loopTuple := CloseLoop(bodyTuple, full.IndexVar, full.Exact, full.Variant, full.Bounds, refine)

	// The DO index itself is written by the loop (before any body read, so
	// its reads are never upwards exposed outside the loop).
	idxAcc := loopTuple.Get(w.a.Canon(l.Index))
	idxAcc.M = fullScalar()
	idxAcc.E = lin.EmptySection(0)
	idxAcc.Plain = fullScalar()
	idxAcc.PlainW = fullScalar()

	w.res.RegionSum[lr] = loopTuple
	return &node{stmt: l, tuple: Compose(t, loopTuple)}
}

// ---- leaf summaries ----

func fullScalar() *lin.Section { return lin.NewSection(0, lin.NewSystem()) }

func refString(r ir.Ref) string { return ir.Expr(r).String() }

// addReads adds every read in expr (array elements and scalars) to t.
func addReads(t *Tuple, w *walker, expr ir.Expr) {
	ir.WalkExpr(expr, func(e ir.Expr) {
		switch x := e.(type) {
		case *ir.VarRef:
			if !x.Sym.IsArray() {
				acc := t.Get(w.a.Canon(x.Sym))
				acc.R = acc.R.Union(fullScalar())
				acc.E = acc.E.Union(fullScalar())
				acc.Plain = acc.Plain.Union(fullScalar())
			}
		case *ir.ArrayRef:
			if len(x.Idx) == 0 {
				return // bare array argument; handled at the call
			}
			sec := w.sectionOf(x)
			acc := t.Get(w.a.Canon(x.Sym))
			acc.R = acc.R.Union(sec)
			acc.E = acc.E.Union(sec)
			acc.Plain = acc.Plain.Union(sec)
		}
	})
}

// sectionOf builds the array section for one subscripted reference under the
// current symbolic environment and loop-bound context.
func (w *walker) sectionOf(x *ir.ArrayRef) *lin.Section {
	sys := lin.NewSystem()
	exact := true
	for k, idxE := range x.Idx {
		e, ok, _ := w.ev.Affine(idxE)
		if !ok {
			// Non-affine subscript: the whole declared extent may be touched.
			d := x.Sym.Dims[k]
			sys.AddRange(lin.DimVar(k), lin.NewExpr(d.Lo), lin.NewExpr(d.Hi))
			exact = false
			continue
		}
		sys.AddEq(lin.Var(lin.DimVar(k)).Sub(e))
	}
	for _, c := range w.ctx {
		sys = sys.Intersect(c)
	}
	sec := lin.NewSection(len(x.Sym.Dims), sys)
	sec.Exact = exact
	return sec
}

// leafAssign builds the summary of a single assignment, classifying
// commutative updates for reduction recognition.
func (w *walker) leafAssign(st *ir.Assign) *Tuple {
	if op, ok := w.commutativeUpdate(st); ok {
		return w.leafCommutative(st, op)
	}
	t := NewTuple()
	// Reads: the whole RHS plus the LHS subscripts.
	addReads(t, w, st.Rhs)
	if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
		for _, ix := range ar.Idx {
			addReads(t, w, ix)
		}
	}
	w.addWrite(t, st.Lhs, false, "")
	return t
}

// leafCommutative builds the summary of a commutative update (reduction
// candidate): the self-read and write land in Red[op] rather than Plain.
// extra expressions (e.g. the MIN/MAX guard condition) are read as part of
// the update.
func (w *walker) leafCommutative(st *ir.Assign, op string, extra ...ir.Expr) *Tuple {
	t := NewTuple()
	// All reads (including the self-read: a reduction still reads its
	// previous value); addWrite then removes the self-access from Plain.
	addReads(t, w, st.Rhs)
	for _, e := range extra {
		addReads(t, w, e)
	}
	if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
		for _, ix := range ar.Idx {
			addReads(t, w, ix)
		}
	}
	w.addWrite(t, st.Lhs, true, op)
	return t
}

// addWrite records the write of lhs into t. Commutative updates additionally
// land in Red[op]; their self-read stays in R/E (a reduction still reads its
// previous value) but is removed from Plain, since only non-reduction
// accesses should block reduction parallelization (§6.2.2.1 criterion 2).
func (w *walker) addWrite(t *Tuple, lhs ir.Ref, commutative bool, op string) {
	sym := w.a.Canon(lhs.Symbol())
	acc := t.Get(sym)
	var sec *lin.Section
	if ar, ok := lhs.(*ir.ArrayRef); ok {
		sec = w.sectionOf(ar)
	} else {
		sec = fullScalar()
	}
	if sec.Exact {
		acc.M = acc.M.Union(sec)
	} else {
		acc.W = acc.W.Union(sec)
	}
	if commutative {
		acc.Red[op] = redOr(acc.Red[op], sec)
		// The self-read was added to Plain by addReads; rebuild Plain
		// without the reduction region.
		acc.Plain = acc.Plain.Subtract(sec)
	} else {
		acc.Plain = acc.Plain.Union(sec)
		acc.PlainW = acc.PlainW.Union(sec)
	}
}

// commutativeUpdate reports whether st has the form  x = x op e  (with op
// commutative: +, * — including x = x - e as +) or x = MIN/MAX(x, e...),
// where e does not reference x's array at all.
func (w *walker) commutativeUpdate(st *ir.Assign) (string, bool) {
	return ClassifyUpdate(st)
}

// ClassifyUpdate recognizes x = x op e commutative updates (exported for
// static reduction censuses, Fig 6-2).
func ClassifyUpdate(st *ir.Assign) (string, bool) {
	self := refString(st.Lhs)
	sym := st.Lhs.Symbol()
	switch rhs := st.Rhs.(type) {
	case *ir.Bin:
		switch rhs.Op {
		case ir.OpAdd, ir.OpSub:
			terms, ok := addTerms(rhs)
			if !ok {
				return "", false
			}
			selfCount := 0
			for _, tm := range terms {
				if tm.pos && tm.e.String() == self {
					selfCount++
				} else if referencesSym(tm.e, sym) {
					return "", false
				}
			}
			if selfCount == 1 {
				return RedAdd, true
			}
		case ir.OpMul:
			l, r := rhs.L, rhs.R
			if l.String() == self && !referencesSym(r, sym) {
				return RedMul, true
			}
			if r.String() == self && !referencesSym(l, sym) {
				return RedMul, true
			}
		}
	case *ir.Intrinsic:
		if rhs.Name == "MIN" || rhs.Name == "MAX" {
			selfCount := 0
			for _, a := range rhs.Args {
				if a.String() == self {
					selfCount++
				} else if referencesSym(a, sym) {
					return "", false
				}
			}
			if selfCount == 1 {
				if rhs.Name == "MIN" {
					return RedMin, true
				}
				return RedMax, true
			}
		}
	}
	return "", false
}

type addTerm struct {
	e   ir.Expr
	pos bool
}

// addTerms flattens an additive expression tree into signed terms.
func addTerms(e ir.Expr) ([]addTerm, bool) {
	if b, ok := e.(*ir.Bin); ok && (b.Op == ir.OpAdd || b.Op == ir.OpSub) {
		lt, ok1 := addTerms(b.L)
		rt, ok2 := addTerms(b.R)
		if !ok1 || !ok2 {
			return nil, false
		}
		if b.Op == ir.OpSub {
			for i := range rt {
				rt[i].pos = !rt[i].pos
			}
		}
		return append(lt, rt...), true
	}
	return []addTerm{{e: e, pos: true}}, true
}

func referencesSym(e ir.Expr, sym *ir.Symbol) bool {
	found := false
	ir.WalkExpr(e, func(x ir.Expr) {
		switch r := x.(type) {
		case *ir.VarRef:
			if r.Sym == sym {
				found = true
			}
		case *ir.ArrayRef:
			if r.Sym == sym {
				found = true
			}
		}
	})
	return found
}

func (w *walker) leafIO(st *ir.IO) *Tuple {
	t := NewTuple()
	if st.Write {
		for _, a := range st.Args {
			addReads(t, w, a)
		}
		return t
	}
	// READ: targets are written with unknown values; subscripts are read.
	for _, a := range st.Args {
		switch r := a.(type) {
		case *ir.VarRef:
			acc := t.Get(w.a.Canon(r.Sym))
			acc.M = acc.M.Union(fullScalar())
			acc.Plain = acc.Plain.Union(fullScalar())
			acc.PlainW = acc.PlainW.Union(fullScalar())
		case *ir.ArrayRef:
			for _, ix := range r.Idx {
				addReads(t, w, ix)
			}
			sec := w.sectionOf(r)
			acc := t.Get(w.a.Canon(r.Sym))
			if sec.Exact {
				acc.M = acc.M.Union(sec)
			} else {
				acc.W = acc.W.Union(sec)
			}
			acc.Plain = acc.Plain.Union(sec)
			acc.PlainW = acc.PlainW.Union(sec)
		default:
			addReads(t, w, a)
		}
	}
	return t
}

// ---- backward composition ----

// composeNodes computes the summary of the node list followed by cont,
// recording After[r][stmt] (the paper's S_{r,n}) for loops and calls.
func (w *walker) composeNodes(r *region.Region, nodes []*node, cont *Tuple) *Tuple {
	v := cont
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		switch n.stmt.(type) {
		case *ir.Call, *ir.DoLoop:
			w.res.After[r][n.stmt] = v.Clone()
		}
		if n.isIf {
			vt := w.composeNodes(r, n.thenN, v)
			ve := w.composeNodes(r, n.elN, v)
			v = Compose(n.tuple, Meet(vt, ve))
			continue
		}
		v = Compose(n.tuple, v)
	}
	return v
}

// ---- procedure boundary ----

// projectProc eliminates callee-local names from a procedure summary: local
// scalar entry names, fresh unknowns, and local (non-param, non-common)
// array keys disappear; what remains is expressed over formal parameter and
// common-block names only.
func (a *Analysis) projectProc(p *ir.Proc, sum *Tuple) *Tuple {
	local := map[string]bool{}
	for _, s := range p.Syms {
		if !s.IsParam && s.Common == "" && !s.IsArray() {
			local[s.Name] = true
		}
	}
	drop := func(v string) bool {
		if lin.IsDimVar(v) {
			return false
		}
		if strings.HasPrefix(v, "%") || strings.HasPrefix(v, "&") || strings.HasPrefix(v, "@") {
			return true
		}
		return local[v]
	}
	out := NewTuple()
	for sym, acc := range sum.Arrays {
		if !sym.IsParam && sym.Common == "" {
			continue // local storage is invisible to callers
		}
		out.Arrays[sym] = acc
	}
	return out.ProjectSyms(drop)
}

// CountReductionStatements statically counts commutative-update statements
// per operator across a whole program — the Fig 6-2 census. Scalar and
// array updates are tallied separately ("+ scalar", "+ array", ...).
func CountReductionStatements(prog *ir.Program) map[string]int {
	out := map[string]int{}
	tally := func(op string, lhs ir.Ref) {
		kind := " scalar"
		if lhs.Symbol().IsArray() {
			kind = " array"
		}
		out[op+kind]++
	}
	for _, p := range prog.Procs {
		ir.WalkStmts(p.Body, func(s ir.Stmt) bool {
			switch st := s.(type) {
			case *ir.Assign:
				if op, ok := ClassifyUpdate(st); ok {
					tally(op, st.Lhs)
				}
			case *ir.If:
				if op, upd := ClassifyMinMaxIf(st); upd != nil {
					tally(op, upd.Lhs)
					return false // don't double count the inner assign
				}
			}
			return true
		})
	}
	return out
}
