package summary

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/minif"
	"suifx/internal/region"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := minif.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

func loopRegion(t *testing.T, a *Analysis, id string) *region.Region {
	t.Helper()
	for _, r := range a.Reg.LoopRegions() {
		if r.ID() == id {
			return r
		}
	}
	t.Fatalf("no loop region %s", id)
	return nil
}

func findSym(t *testing.T, a *Analysis, proc, name string) *ir.Symbol {
	t.Helper()
	s := a.Prog.Proc(proc).Lookup(name)
	if s == nil {
		t.Fatalf("no symbol %s in %s", name, proc)
	}
	return a.Canon(s)
}

func TestSimpleLoopWriteSummary(t *testing.T) {
	a := analyze(t, `
      PROGRAM main
      REAL a(100)
      INTEGER i, n
      n = 100
      DO 10 i = 1, n
        a(i) = 0.0
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	sum := a.RegionSum[lr]
	acc := sum.Lookup(findSym(t, a, "MAIN", "A"))
	if acc == nil {
		t.Fatal("no access for A")
	}
	// Must-write covers elements 1..100 (n propagated as constant).
	for _, i := range []int64{1, 50, 100} {
		if !acc.M.ContainsIndex([]int64{i}, nil) {
			t.Fatalf("M %v should contain %d", acc.M, i)
		}
	}
	if acc.M.ContainsIndex([]int64{101}, nil) || acc.M.ContainsIndex([]int64{0}, nil) {
		t.Fatalf("M %v too wide", acc.M)
	}
	if !acc.E.IsEmpty() {
		t.Fatalf("E should be empty, got %v", acc.E)
	}
}

func TestExposedReadWithinIteration(t *testing.T) {
	// Write a(i) then read a(i): read is covered, not exposed.
	a := analyze(t, `
      PROGRAM main
      REAL a(100), s
      INTEGER i
      s = 0.0
      DO 10 i = 1, 100
        a(i) = 1.0
        s = s + a(i)
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	acc := a.BodySum[lr.Body()].Lookup(findSym(t, a, "MAIN", "A"))
	if !acc.E.IsEmpty() {
		t.Fatalf("body E should be empty (read after write), got %v", acc.E)
	}
}

func TestRecurrenceExposedReadRefinement(t *testing.T) {
	// The flo88 psmoo pattern (Fig 5-4): d(i-1) read, d(i) written, d(1)
	// written before the loop nest. §5.2.2.3 should prove no exposed reads.
	a := analyze(t, `
      PROGRAM main
      REAL d(100), t(100)
      INTEGER i, il
      il = 99
      d(1) = 0.0
      DO 30 i = 2, il
        t(i) = d(i-1) * 2.0
        d(i) = t(i)
30    CONTINUE
      END
`)
	top := a.Reg.ProcTop["MAIN"]
	sum := a.RegionSum[top]
	acc := sum.Lookup(findSym(t, a, "MAIN", "D"))
	if !acc.E.IsEmpty() {
		t.Fatalf("whole-proc E for d should be empty, got %v", acc.E)
	}
	// At the loop level alone, d(1) IS exposed (written before the loop).
	lr := loopRegion(t, a, "MAIN/30")
	lacc := a.RegionSum[lr].Lookup(findSym(t, a, "MAIN", "D"))
	if !lacc.E.ContainsIndex([]int64{1}, map[string]int64{"IL": 99}) {
		t.Fatalf("loop E for d should contain element 1, got %v", lacc.E)
	}
	if lacc.E.ContainsIndex([]int64{50}, map[string]int64{"IL": 99}) {
		t.Fatalf("loop E for d should exclude interior elements, got %v", lacc.E)
	}
}

func TestScalarReductionMarking(t *testing.T) {
	a := analyze(t, `
      PROGRAM main
      REAL a(100), s
      INTEGER i
      s = 0.0
      DO 10 i = 1, 100
        s = s + a(i)
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	acc := a.BodySum[lr.Body()].Lookup(findSym(t, a, "MAIN", "S"))
	if acc == nil || acc.Red[RedAdd] == nil || acc.Red[RedAdd].IsEmpty() {
		t.Fatalf("s should be marked as + reduction: %+v", acc)
	}
	if !acc.Plain.IsEmpty() {
		t.Fatalf("s has no plain accesses in the loop, got %v", acc.Plain)
	}
}

func TestSparseReductionIndirect(t *testing.T) {
	// HISTOGRAM(A(I)) = HISTOGRAM(A(I)) + 1 (§6.1.3).
	a := analyze(t, `
      PROGRAM main
      REAL hist(50)
      INTEGER ind(100), i
      DO 10 i = 1, 100
        hist(ind(i)) = hist(ind(i)) + 1.0
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	acc := a.BodySum[lr.Body()].Lookup(findSym(t, a, "MAIN", "HIST"))
	if acc.Red[RedAdd] == nil || acc.Red[RedAdd].IsEmpty() {
		t.Fatal("indirect histogram update should be a + reduction")
	}
	if acc.Red[RedAdd].Exact {
		t.Fatal("indirect reduction region must be inexact")
	}
	if !acc.Plain.IsEmpty() {
		t.Fatalf("hist Plain should be empty, got %v", acc.Plain)
	}
	if !acc.M.IsEmpty() {
		t.Fatalf("indirect write cannot be must-write, got %v", acc.M)
	}
}

func TestMinMaxIfPattern(t *testing.T) {
	a := analyze(t, `
      PROGRAM main
      REAL a(100), tmin, tmax
      INTEGER i
      tmin = 1E30
      tmax = -1E30
      DO 10 i = 1, 100
        IF (a(i) .LT. tmin) tmin = a(i)
        IF (tmax .LT. a(i)) tmax = a(i)
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	body := a.BodySum[lr.Body()]
	mn := body.Lookup(findSym(t, a, "MAIN", "TMIN"))
	if mn == nil || mn.Red[RedMin] == nil || mn.Red[RedMin].IsEmpty() {
		t.Fatal("tmin should be a MIN reduction")
	}
	mx := body.Lookup(findSym(t, a, "MAIN", "TMAX"))
	if mx == nil || mx.Red[RedMax] == nil || mx.Red[RedMax].IsEmpty() {
		t.Fatal("tmax should be a MAX reduction")
	}
}

func TestConditionalWriteIsMayWrite(t *testing.T) {
	a := analyze(t, `
      PROGRAM main
      REAL a(100)
      INTEGER i, k
      k = 5
      DO 10 i = 1, 100
        IF (i .NE. k) THEN
          a(i) = 0.0
        ENDIF
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	acc := a.BodySum[lr.Body()].Lookup(findSym(t, a, "MAIN", "A"))
	if !acc.M.IsEmpty() {
		t.Fatalf("conditional write must not be must-write, got %v", acc.M)
	}
	if acc.W.IsEmpty() {
		t.Fatal("conditional write should appear as may-write")
	}
}

func TestCallMappingSubarrayOffset(t *testing.T) {
	// Fig 5-1's init call: the callee's must-write of q(1:n) maps to
	// aif3(k1:k2) in the caller.
	a := analyze(t, `
      SUBROUTINE init(q, n)
      REAL q(100)
      INTEGER j, n
      DO 10 j = 1, n
        q(j) = 0.0
10    CONTINUE
      END
      PROGRAM main
      REAL aif3(100)
      INTEGER k1, k2
      k1 = 11
      k2 = 20
      CALL init(aif3(k1), k2-k1+1)
      END
`)
	top := a.Reg.ProcTop["MAIN"]
	acc := a.RegionSum[top].Lookup(findSym(t, a, "MAIN", "AIF3"))
	if acc == nil {
		t.Fatal("no access mapped for AIF3")
	}
	for _, i := range []int64{11, 15, 20} {
		if !acc.M.ContainsIndex([]int64{i}, nil) {
			t.Fatalf("M %v should contain %d", acc.M, i)
		}
	}
	if acc.M.ContainsIndex([]int64{10}, nil) || acc.M.ContainsIndex([]int64{21}, nil) {
		t.Fatalf("M %v too wide", acc.M)
	}
}

func TestCallMappingCommonBlock(t *testing.T) {
	a := analyze(t, `
      SUBROUTINE f
      COMMON /blk/ x(50)
      INTEGER i
      DO 10 i = 1, 50
        x(i) = 1.0
10    CONTINUE
      END
      PROGRAM main
      COMMON /blk/ x(50)
      REAL s
      CALL f
      s = x(25)
      END
`)
	top := a.Reg.ProcTop["MAIN"]
	acc := a.RegionSum[top].Lookup(findSym(t, a, "MAIN", "X"))
	if acc == nil {
		t.Fatal("common array access not mapped")
	}
	if !acc.M.ContainsIndex([]int64{25}, nil) {
		t.Fatalf("M = %v, want covers 25", acc.M)
	}
	// The read of x(25) after the call is covered, not upwards exposed.
	if !acc.E.IsEmpty() {
		t.Fatalf("E should be empty after covered read, got %v", acc.E)
	}
}

func TestInterproceduralReductionMapping(t *testing.T) {
	// A reduction performed inside a callee (§6.2.2.4).
	a := analyze(t, `
      SUBROUTINE addto(s, v)
      REAL s, v
      s = s + v
      END
      PROGRAM main
      REAL total, a(100)
      INTEGER i
      total = 0.0
      DO 10 i = 1, 100
        CALL addto(total, a(i))
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	acc := a.BodySum[lr.Body()].Lookup(findSym(t, a, "MAIN", "TOTAL"))
	if acc == nil || acc.Red[RedAdd] == nil || acc.Red[RedAdd].IsEmpty() {
		t.Fatalf("interprocedural + reduction on TOTAL not found: %+v", acc)
	}
	if !acc.Plain.IsEmpty() {
		t.Fatalf("TOTAL Plain should be empty, got %v", acc.Plain)
	}
}

func TestAfterRecords(t *testing.T) {
	a := analyze(t, `
      SUBROUTINE f(x)
      REAL x(10)
      x(1) = 1.0
      END
      PROGRAM main
      REAL a(10), b(10)
      INTEGER i
      CALL f(a)
      DO 10 i = 1, 10
        b(i) = 2.0
10    CONTINUE
      a(2) = b(3)
      END
`)
	top := a.Reg.ProcTop["MAIN"]
	recs := a.After[top]
	if len(recs) != 2 {
		t.Fatalf("After records = %d, want 2 (call + loop)", len(recs))
	}
	// The summary after the CALL includes the loop's write of b and the
	// final read of b(3).
	for s, tup := range recs {
		if _, ok := s.(*ir.Call); ok {
			bacc := tup.Lookup(findSym(t, a, "MAIN", "B"))
			if bacc == nil || bacc.M.IsEmpty() {
				t.Fatalf("after-call summary missing b writes: %v", tup)
			}
		}
	}
}

func TestVariantMustWriteDemotion(t *testing.T) {
	// k is loop-variant and non-affine (read from an array): writes a(k)
	// cannot remain must-writes at loop level.
	a := analyze(t, `
      PROGRAM main
      REAL a(100)
      INTEGER ind(100), i, k
      DO 10 i = 1, 100
        k = ind(i)
        a(k) = 1.0
10    CONTINUE
      END
`)
	lr := loopRegion(t, a, "MAIN/10")
	acc := a.RegionSum[lr].Lookup(findSym(t, a, "MAIN", "A"))
	if !acc.M.IsEmpty() {
		t.Fatalf("loop-level M should be empty for variant writes, got %v", acc.M)
	}
	if acc.W.IsEmpty() {
		t.Fatal("loop-level W should cover the variant writes")
	}
	// Inside the body, the write is a must-write of one (unknown) element.
	bacc := a.BodySum[lr.Body()].Lookup(findSym(t, a, "MAIN", "A"))
	if bacc.M.IsEmpty() {
		t.Fatal("body-level must-write should be retained")
	}
}

func TestComposeAndMeetAlgebra(t *testing.T) {
	prog := minif.MustParse("t", `
      PROGRAM main
      REAL a(10)
      a(1) = 0.0
      END
`)
	sym := prog.Main().Lookup("A")
	mk := func(lo, hi int64, must bool) *Tuple {
		t := NewTuple()
		acc := t.Get(sym)
		sec := lin.NewSection(1, lin.NewSystem().AddRange(lin.DimVar(0), lin.NewExpr(lo), lin.NewExpr(hi)))
		if must {
			acc.M = sec
		} else {
			acc.W = sec
		}
		return t
	}
	// Compose: must-writes accumulate.
	c := Compose(mk(1, 5, true), mk(6, 9, true))
	acc := c.Lookup(sym)
	if !acc.M.ContainsIndex([]int64{3}, nil) || !acc.M.ContainsIndex([]int64{7}, nil) {
		t.Fatalf("composed M = %v", acc.M)
	}
	// Meet: must only where both write.
	m := Meet(mk(1, 5, true), mk(3, 9, true))
	macc := m.Lookup(sym)
	if !macc.M.ContainsIndex([]int64{4}, nil) {
		t.Fatalf("meet M = %v should contain 4", macc.M)
	}
	if macc.M.ContainsIndex([]int64{1}, nil) || macc.M.ContainsIndex([]int64{9}, nil) {
		t.Fatalf("meet M = %v too wide", macc.M)
	}
	// Elements written on one side only become may-writes.
	if !macc.W.ContainsIndex([]int64{1}, nil) || !macc.W.ContainsIndex([]int64{9}, nil) {
		t.Fatalf("meet W = %v should cover one-sided writes", macc.W)
	}
}

func TestExposedReadSubtractionInCompose(t *testing.T) {
	prog := minif.MustParse("t", `
      PROGRAM main
      REAL a(10)
      a(1) = 0.0
      END
`)
	sym := prog.Main().Lookup("A")
	write := NewTuple()
	wacc := write.Get(sym)
	wacc.M = lin.NewSection(1, lin.NewSystem().AddRange(lin.DimVar(0), lin.NewExpr(1), lin.NewExpr(5)))
	read := NewTuple()
	racc := read.Get(sym)
	racc.R = lin.NewSection(1, lin.NewSystem().AddRange(lin.DimVar(0), lin.NewExpr(1), lin.NewExpr(9)))
	racc.E = racc.R.Clone()

	c := Compose(write, read)
	acc := c.Lookup(sym)
	if acc.E.ContainsIndex([]int64{3}, nil) {
		t.Fatalf("E = %v: reads of 1..5 are covered", acc.E)
	}
	if !acc.E.ContainsIndex([]int64{7}, nil) {
		t.Fatalf("E = %v: reads of 6..9 remain exposed", acc.E)
	}
}
