package ir

import "testing"

func sym(name string, dims ...Dim) *Symbol {
	return &Symbol{Name: name, Dims: dims}
}

func TestSymbolBasics(t *testing.T) {
	s := sym("A", Dim{1, 10}, Dim{0, 9})
	if !s.IsArray() || s.NElems() != 100 {
		t.Fatalf("A: array=%v elems=%d", s.IsArray(), s.NElems())
	}
	sc := sym("X")
	if sc.IsArray() || sc.NElems() != 1 {
		t.Fatal("scalar misclassified")
	}
	if (Dim{0, 9}).Size() != 10 {
		t.Fatal("dim size")
	}
}

func buildProg() *Program {
	// MAIN calls F; F calls G.
	g := &Proc{Name: "G", Syms: map[string]*Symbol{}}
	f := &Proc{Name: "F", Syms: map[string]*Symbol{},
		Body: []Stmt{&Call{Name: "G"}}}
	i := sym("I")
	loop := &DoLoop{Index: i, Lo: IntConst(1), Hi: IntConst(10), Label: "10",
		Body: []Stmt{&Call{Name: "F"}}}
	m := &Proc{Name: "MAIN", IsMain: true, Syms: map[string]*Symbol{"I": i},
		Body: []Stmt{loop}}
	p := &Program{Name: "t", Procs: []*Proc{g, f, m},
		ByName: map[string]*Proc{"G": g, "F": f, "MAIN": m}}
	return p
}

func TestCallGraphAndOrders(t *testing.T) {
	p := buildProg()
	cg := p.CallGraph()
	if len(cg["MAIN"]) != 1 || cg["MAIN"][0] != "F" {
		t.Fatalf("call graph: %v", cg)
	}
	up, ok := p.BottomUpOrder()
	if !ok {
		t.Fatal("acyclic graph rejected")
	}
	pos := map[string]int{}
	for i, pr := range up {
		pos[pr.Name] = i
	}
	if !(pos["G"] < pos["F"] && pos["F"] < pos["MAIN"]) {
		t.Fatalf("bottom-up order wrong: %v", pos)
	}
	down, _ := p.TopDownOrder()
	if down[0].Name != "MAIN" {
		t.Fatalf("top-down should start at MAIN: %v", down[0].Name)
	}
}

func TestRecursionDetected(t *testing.T) {
	a := &Proc{Name: "A", Syms: map[string]*Symbol{}, Body: []Stmt{&Call{Name: "B"}}}
	b := &Proc{Name: "B", Syms: map[string]*Symbol{}, Body: []Stmt{&Call{Name: "A"}}}
	p := &Program{Procs: []*Proc{a, b}, ByName: map[string]*Proc{"A": a, "B": b}}
	if _, ok := p.BottomUpOrder(); ok {
		t.Fatal("recursive call graph not detected")
	}
}

func TestWalkersAndQueries(t *testing.T) {
	p := buildProg()
	m := p.Main()
	if m == nil || m.Name != "MAIN" {
		t.Fatal("Main lookup")
	}
	if loops := m.Loops(); len(loops) != 1 || loops[0].ID("MAIN") != "MAIN/10" {
		t.Fatalf("loops: %v", loops)
	}
	if calls := Calls(m.Body); len(calls) != 1 || calls[0] != "F" {
		t.Fatalf("calls: %v", calls)
	}
	if HasIO(m.Body) {
		t.Fatal("no IO present")
	}
	sites := p.CallSitesOf("G")
	if len(sites) != 1 || sites[0].Caller.Name != "F" {
		t.Fatalf("call sites: %v", sites)
	}
}

func TestExprStrings(t *testing.T) {
	a := sym("A", Dim{1, 5})
	e := &Bin{Op: OpAdd, L: &ArrayRef{Sym: a, Idx: []Expr{IntConst(3)}}, R: &Const{Val: 1.5}}
	if got := e.String(); got != "(A(3)+1.5)" {
		t.Fatalf("String = %q", got)
	}
	cmp := &Bin{Op: OpLE, L: &VarRef{Sym: sym("X")}, R: IntConst(4)}
	if got := cmp.String(); got != "(X .LE. 4)" {
		t.Fatalf("String = %q", got)
	}
	in := &Intrinsic{Name: "MIN", Args: []Expr{IntConst(1), IntConst(2)}}
	if got := in.String(); got != "MIN(1,2)" {
		t.Fatalf("String = %q", got)
	}
	if OpLE.String() != ".LE." || !OpLE.IsComparison() || OpAdd.IsComparison() {
		t.Fatal("op metadata")
	}
}

func TestLineCount(t *testing.T) {
	p := &Program{Source: []string{"      X = 1", "C comment", "", "* star", "      Y = 2"}}
	if got := p.LineCount(true); got != 3 {
		t.Fatalf("code lines = %d, want 3 (classic 'C comment' col-1 is counted: %q)", got, p.Source)
	}
	if p.LineCount(false) != 5 {
		t.Fatal("raw line count")
	}
	if p.SourceLine(1) != "      X = 1" || p.SourceLine(99) != "" {
		t.Fatal("SourceLine")
	}
}
