// Package ir defines the intermediate representation for MiniF, the small
// Fortran-77-like language this reproduction analyzes in place of the paper's
// SUIF Fortran front end. The IR is hierarchical (procedures contain
// statement lists; DO loops contain bodies), keeps source line positions for
// slicing and visualization, and models the Fortran features the thesis's
// analyses depend on: COMMON blocks with per-procedure layouts, arrays with
// declared bounds, labeled DO loops, reference parameters, and subarray
// actual arguments (array-element starting points).
package ir

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Pos is a source position (1-based line number).
type Pos struct {
	Line int
}

func (p Pos) String() string { return fmt.Sprintf("line %d", p.Line) }

// Type classifies a symbol's element type.
type Type int

const (
	TReal Type = iota
	TInt
)

func (t Type) String() string {
	if t == TInt {
		return "INTEGER"
	}
	return "REAL"
}

// Dim is one array dimension with constant declared bounds (inclusive).
type Dim struct {
	Lo, Hi int64
}

// Size returns the number of elements along this dimension.
func (d Dim) Size() int64 { return d.Hi - d.Lo + 1 }

// Symbol is a scalar or array variable, parameter, or common-block member.
type Symbol struct {
	Name   string
	Type   Type
	Dims   []Dim  // nil for scalars
	Common string // common block name, "" if not in a common block
	// CommonOffset is the element offset of this symbol within its common
	// block's flat storage.
	CommonOffset int64
	IsParam      bool
	ParamIndex   int // position in the parameter list when IsParam
}

// IsArray reports whether the symbol is an array.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// NElems returns the total declared element count (1 for scalars).
func (s *Symbol) NElems() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.Size()
	}
	return n
}

// CommonBlock records one procedure-independent common block: its flat size
// (the max over all per-procedure layouts) and the per-procedure member
// layouts, which may declare the same storage with different shapes — the
// aliasing pattern Chapter 5's live-range splitting targets.
type CommonBlock struct {
	Name string
	Size int64 // total elements (max over layouts)
	// Layouts maps procedure name to the symbols laid out over this block
	// in that procedure, in declaration order.
	Layouts map[string][]*Symbol
}

// Proc is one procedure (PROGRAM or SUBROUTINE).
type Proc struct {
	Name    string
	IsMain  bool
	Params  []*Symbol
	Syms    map[string]*Symbol
	Body    []Stmt
	Pos     Pos
	EndLine int
}

// Lookup returns the symbol named n, or nil.
func (p *Proc) Lookup(n string) *Symbol { return p.Syms[n] }

// SortedSyms returns the procedure's symbols in name order.
func (p *Proc) SortedSyms() []*Symbol {
	out := make([]*Symbol, 0, len(p.Syms))
	for _, s := range p.Syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Program is a whole MiniF program: a main program plus subroutines.
type Program struct {
	Name    string
	Procs   []*Proc
	ByName  map[string]*Proc
	Commons map[string]*CommonBlock
	Source  []string // original source lines, 1-based at index line-1

	// ExecCache holds the execution engine's lowered form of this program
	// (arena layout + bytecode), opaque here to avoid a dependency cycle.
	// It lives on the Program so the cache dies with the IR instead of
	// leaking through a global table keyed by pointers.
	ExecCache atomic.Value
}

// Main returns the main program procedure.
func (p *Program) Main() *Proc {
	for _, pr := range p.Procs {
		if pr.IsMain {
			return pr
		}
	}
	return nil
}

// Proc returns the procedure named n, or nil.
func (p *Program) Proc(n string) *Proc { return p.ByName[n] }

// SourceLine returns the text of the given 1-based source line ("" if out of
// range).
func (p *Program) SourceLine(line int) string {
	if line < 1 || line > len(p.Source) {
		return ""
	}
	return p.Source[line-1]
}

// LineCount returns the number of source lines, excluding blank and
// comment-only lines when countCode is true.
func (p *Program) LineCount(countCode bool) int {
	if !countCode {
		return len(p.Source)
	}
	n := 0
	for _, l := range p.Source {
		if isCodeLine(l) {
			n++
		}
	}
	return n
}

func isCodeLine(l string) bool {
	for _, r := range l {
		switch r {
		case ' ', '\t':
			continue
		case '!', '*':
			return false
		default:
			return true
		}
	}
	return false
}
