package ir

// WalkStmts visits every statement in the list, recursing into loop bodies
// and IF arms, in source order. Returning false from f stops descent into a
// statement's children (but not its siblings).
func WalkStmts(stmts []Stmt, f func(Stmt) bool) {
	for _, s := range stmts {
		if !f(s) {
			continue
		}
		switch st := s.(type) {
		case *DoLoop:
			WalkStmts(st.Body, f)
		case *If:
			WalkStmts(st.Then, f)
			WalkStmts(st.Else, f)
		}
	}
}

// WalkExprs visits every expression appearing in the statement (not
// recursing into nested statements), pre-order.
func WalkExprs(s Stmt, f func(Expr)) {
	switch st := s.(type) {
	case *Assign:
		walkExpr(st.Lhs, f)
		walkExpr(st.Rhs, f)
	case *DoLoop:
		walkExpr(st.Lo, f)
		walkExpr(st.Hi, f)
		if st.Step != nil {
			walkExpr(st.Step, f)
		}
	case *If:
		walkExpr(st.Cond, f)
	case *Call:
		for _, a := range st.Args {
			walkExpr(a, f)
		}
	case *IO:
		for _, a := range st.Args {
			walkExpr(a, f)
		}
	}
}

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *ArrayRef:
		for _, i := range x.Idx {
			walkExpr(i, f)
		}
	case *Bin:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case *Un:
		walkExpr(x.X, f)
	case *Intrinsic:
		for _, a := range x.Args {
			walkExpr(a, f)
		}
	}
}

// WalkExpr exposes expression traversal for standalone expressions.
func WalkExpr(e Expr, f func(Expr)) { walkExpr(e, f) }

// Loops returns every DO loop in the procedure in source order, outermost
// first within each nest.
func (p *Proc) Loops() []*DoLoop {
	var out []*DoLoop
	WalkStmts(p.Body, func(s Stmt) bool {
		if l, ok := s.(*DoLoop); ok {
			out = append(out, l)
		}
		return true
	})
	return out
}

// OuterLoops returns only the top-level loops of the procedure.
func (p *Proc) OuterLoops() []*DoLoop {
	var out []*DoLoop
	for _, s := range p.Body {
		collectOuter(s, &out)
	}
	return out
}

func collectOuter(s Stmt, out *[]*DoLoop) {
	switch st := s.(type) {
	case *DoLoop:
		*out = append(*out, st)
	case *If:
		for _, t := range st.Then {
			collectOuter(t, out)
		}
		for _, t := range st.Else {
			collectOuter(t, out)
		}
	}
}

// Calls returns the names of procedures called anywhere in the statement
// list (deduplicated, in first-occurrence order).
func Calls(stmts []Stmt) []string {
	seen := map[string]bool{}
	var out []string
	WalkStmts(stmts, func(s Stmt) bool {
		if c, ok := s.(*Call); ok && !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
		return true
	})
	return out
}

// HasIO reports whether the statement list contains any I/O statement.
func HasIO(stmts []Stmt) bool {
	found := false
	WalkStmts(stmts, func(s Stmt) bool {
		if _, ok := s.(*IO); ok {
			found = true
		}
		return !found
	})
	return found
}

// CallGraph maps each procedure to the set of procedures it calls, following
// calls transitively is left to callers. Unknown callees are skipped.
func (p *Program) CallGraph() map[string][]string {
	g := make(map[string][]string, len(p.Procs))
	for _, pr := range p.Procs {
		var outs []string
		for _, c := range Calls(pr.Body) {
			if p.ByName[c] != nil {
				outs = append(outs, c)
			}
		}
		g[pr.Name] = outs
	}
	return g
}

// BottomUpOrder returns procedures ordered so that every callee precedes its
// callers (reverse topological order of the call graph). It returns an error
// via ok=false if the call graph is recursive, which MiniF (like the paper's
// analysis, §5.2) does not support.
func (p *Program) BottomUpOrder() (procs []*Proc, ok bool) {
	g := p.CallGraph()
	state := map[string]int{} // 0 unvisited, 1 in-stack, 2 done
	var order []string
	var visit func(n string) bool
	visit = func(n string) bool {
		switch state[n] {
		case 1:
			return false // cycle
		case 2:
			return true
		}
		state[n] = 1
		for _, m := range g[n] {
			if !visit(m) {
				return false
			}
		}
		state[n] = 2
		order = append(order, n)
		return true
	}
	for _, pr := range p.Procs {
		if !visit(pr.Name) {
			return nil, false
		}
	}
	out := make([]*Proc, 0, len(order))
	for _, n := range order {
		out = append(out, p.ByName[n])
	}
	return out, true
}

// TopDownOrder returns callers before callees.
func (p *Program) TopDownOrder() (procs []*Proc, ok bool) {
	up, ok := p.BottomUpOrder()
	if !ok {
		return nil, false
	}
	out := make([]*Proc, len(up))
	for i, pr := range up {
		out[len(up)-1-i] = pr
	}
	return out, true
}

// CallSitesOf returns every Call statement targeting callee, with its
// enclosing procedure.
func (p *Program) CallSitesOf(callee string) []CallSite {
	var out []CallSite
	for _, pr := range p.Procs {
		WalkStmts(pr.Body, func(s Stmt) bool {
			if c, ok := s.(*Call); ok && c.Name == callee {
				out = append(out, CallSite{Caller: pr, Call: c})
			}
			return true
		})
	}
	return out
}

// CallSite pairs a Call statement with the procedure containing it.
type CallSite struct {
	Caller *Proc
	Call   *Call
}
