package ir

import (
	"fmt"
	"strings"
)

// Stmt is any MiniF statement.
type Stmt interface {
	Position() Pos
	stmt()
}

// Expr is any MiniF expression.
type Expr interface {
	Position() Pos
	expr()
	String() string
}

// Ref is an assignable reference (scalar variable or array element).
type Ref interface {
	Expr
	Symbol() *Symbol
}

// ---- Expressions ----

// Const is a numeric literal.
type Const struct {
	Val   float64
	IsInt bool
	Pos   Pos
}

// IntConst builds an integer literal.
func IntConst(v int64) *Const { return &Const{Val: float64(v), IsInt: true} }

// VarRef is a use of (or assignment to) a scalar variable.
type VarRef struct {
	Sym *Symbol
	Pos Pos
}

// ArrayRef is an array element access a(i1, ..., ik). When used as a CALL
// argument with fewer indices than dimensions it denotes a subarray starting
// point (Fortran sequence association).
type ArrayRef struct {
	Sym *Symbol
	Idx []Expr
	Pos Pos
}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEQ: ".EQ.", OpNE: ".NE.", OpLT: ".LT.", OpLE: ".LE.",
	OpGT: ".GT.", OpGE: ".GE.", OpAnd: ".AND.", OpOr: ".OR.",
}

func (o BinOp) String() string { return binOpNames[o] }

// IsComparison reports whether the operator yields a logical value.
func (o BinOp) IsComparison() bool { return o >= OpEQ && o <= OpGE }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// Un is a unary expression: negation or .NOT.
type Un struct {
	Op  string // "-" or ".NOT."
	X   Expr
	Pos Pos
}

// Intrinsic is a call to a built-in function (MIN, MAX, MOD, ABS, SQRT, EXP,
// SIN, COS, INT, DBLE).
type Intrinsic struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (e *Const) Position() Pos     { return e.Pos }
func (e *VarRef) Position() Pos    { return e.Pos }
func (e *ArrayRef) Position() Pos  { return e.Pos }
func (e *Bin) Position() Pos       { return e.Pos }
func (e *Un) Position() Pos        { return e.Pos }
func (e *Intrinsic) Position() Pos { return e.Pos }

func (*Const) expr()     {}
func (*VarRef) expr()    {}
func (*ArrayRef) expr()  {}
func (*Bin) expr()       {}
func (*Un) expr()        {}
func (*Intrinsic) expr() {}

// Symbol implements Ref.
func (e *VarRef) Symbol() *Symbol   { return e.Sym }
func (e *ArrayRef) Symbol() *Symbol { return e.Sym }

func (e *Const) String() string {
	if e.IsInt {
		return fmt.Sprintf("%d", int64(e.Val))
	}
	return fmt.Sprintf("%g", e.Val)
}
func (e *VarRef) String() string { return e.Sym.Name }
func (e *ArrayRef) String() string {
	parts := make([]string, len(e.Idx))
	for i, x := range e.Idx {
		parts[i] = x.String()
	}
	return e.Sym.Name + "(" + strings.Join(parts, ",") + ")"
}
func (e *Bin) String() string {
	op := e.Op.String()
	if e.Op.IsComparison() || e.Op == OpAnd || e.Op == OpOr {
		return "(" + e.L.String() + " " + op + " " + e.R.String() + ")"
	}
	return "(" + e.L.String() + op + e.R.String() + ")"
}
func (e *Un) String() string { return e.Op + e.X.String() }
func (e *Intrinsic) String() string {
	parts := make([]string, len(e.Args))
	for i, x := range e.Args {
		parts[i] = x.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// ---- Statements ----

// Assign is lhs = rhs.
type Assign struct {
	Lhs Ref
	Rhs Expr
	Pos Pos
}

// DoLoop is a labeled DO loop: DO <label> index = lo, hi [, step].
type DoLoop struct {
	Index   *Symbol
	Lo, Hi  Expr
	Step    Expr // nil means 1
	Body    []Stmt
	Label   string // numeric label, e.g. "1000"
	Pos     Pos
	EndLine int // line of the terminating CONTINUE
}

// ID returns the paper-style loop identifier "proc/label".
func (l *DoLoop) ID(proc string) string { return proc + "/" + l.Label }

// If is a structured IF/THEN/ELSE. One-armed logical IFs parse with a single
// statement in Then and nil Else.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// Call invokes a subroutine. Array arguments may be bare names (whole array)
// or ArrayRef starting points (subarrays).
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

// IO is a READ or WRITE statement. Its presence disqualifies an enclosing
// loop from parallelization (§2.6: loops with I/O are excluded).
type IO struct {
	Write bool
	Args  []Expr
	Pos   Pos
}

// Continue is a labeled no-op (DO terminator or GOTO target).
type Continue struct {
	Label string
	Pos   Pos
}

// Return exits the procedure.
type Return struct {
	Pos Pos
}

// Stop ends the program.
type Stop struct {
	Pos Pos
}

func (s *Assign) Position() Pos   { return s.Pos }
func (s *DoLoop) Position() Pos   { return s.Pos }
func (s *If) Position() Pos       { return s.Pos }
func (s *Call) Position() Pos     { return s.Pos }
func (s *IO) Position() Pos       { return s.Pos }
func (s *Continue) Position() Pos { return s.Pos }
func (s *Return) Position() Pos   { return s.Pos }
func (s *Stop) Position() Pos     { return s.Pos }

func (*Assign) stmt()   {}
func (*DoLoop) stmt()   {}
func (*If) stmt()       {}
func (*Call) stmt()     {}
func (*IO) stmt()       {}
func (*Continue) stmt() {}
func (*Return) stmt()   {}
func (*Stop) stmt()     {}
