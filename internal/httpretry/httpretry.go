// Package httpretry is the shared retry discipline for every HTTP client in
// the system — the explorer's -connect mode, suifpar's remote mode, and the
// cluster coordinator's per-shard proxies. A transient failure (refused or
// reset connection, a shed 429, a 502/503 from a worker mid-restart) is
// retried with jittered exponential backoff up to a small attempt cap; the
// final error names every attempt so a dead server fails fast with a clear
// message instead of a bare "connection refused".
package httpretry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Defaults for the zero Client.
const (
	DefaultAttempts  = 3
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 1 * time.Second
)

// Client wraps an http.Client with transient-failure retries. The zero value
// is usable: http.DefaultClient, 3 attempts, 50ms base backoff.
type Client struct {
	// HC is the underlying client (default http.DefaultClient).
	HC *http.Client
	// Attempts is the total number of tries, not re-tries (default 3).
	Attempts int
	// BaseDelay is the first backoff; each retry doubles it, jittered
	// uniformly in [delay/2, delay), and capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// RetryStatuses are response codes treated as transient on top of
	// transport errors (default 429, 502, 503).
	RetryStatuses []int
	// OnRetry, when set, observes every abandoned attempt before the backoff
	// sleep (cluster counters hook in here).
	OnRetry func(attempt int, err error)

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return DefaultAttempts
}

func (c *Client) retryStatus(code int) bool {
	if c.RetryStatuses == nil {
		return code == http.StatusTooManyRequests ||
			code == http.StatusBadGateway || code == http.StatusServiceUnavailable
	}
	for _, s := range c.RetryStatuses {
		if s == code {
			return true
		}
	}
	return false
}

// jitter returns a uniformly jittered delay in [d/2, d).
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + c.rng.Int63n(half))
}

// Transient reports whether an error from http.Client.Do looks like a
// connection-level failure worth retrying: refused/reset dials, timeouts,
// and unexpected EOFs from a worker dying mid-response. Context ends are
// never transient — the caller gave up, not the network.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	// url.Error wrapping a closed-connection race surfaces as a string-only
	// error on some platforms; match the two canonical spellings.
	msg := err.Error()
	if strings.Contains(msg, "connection refused") ||
		strings.Contains(msg, "connection reset") {
		return true
	}
	// "EOF" is far too common a substring to match on arbitrary errors (an
	// application error that merely mentions EOF would be retried); accept it
	// only on transport-level failures, which http.Client.Do always wraps in
	// *url.Error.
	var ue *url.Error
	return errors.As(err, &ue) && strings.Contains(msg, "EOF")
}

// Do issues the request, retrying transient failures with jittered backoff.
// The request body, when present, must be rewindable via req.GetBody (true
// for bytes.Reader/bytes.Buffer/strings.Reader bodies built by
// http.NewRequest). On success the response body is the caller's to close;
// retried responses are drained and closed here.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	attempts := c.attempts()
	delay := c.BaseDelay
	if delay <= 0 {
		delay = DefaultBaseDelay
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultMaxDelay
	}

	var lastErr error
	for attempt := 1; ; attempt++ {
		r := req
		if attempt > 1 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			r = req.Clone(req.Context())
			r.Body = body
		}
		resp, err := c.hc().Do(r)
		switch {
		case err == nil && !c.retryStatus(resp.StatusCode):
			return resp, nil
		case err == nil:
			// Transient status: consume the body so the connection is reused.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			lastErr = fmt.Errorf("%s %s: transient status %s", req.Method, req.URL.Path, resp.Status)
		case Transient(err):
			lastErr = err
		default:
			return nil, err
		}
		if attempt >= attempts {
			return nil, fmt.Errorf("%s %s failed after %d attempts: %w",
				req.Method, req.URL.Redacted(), attempts, lastErr)
		}
		if c.OnRetry != nil {
			c.OnRetry(attempt, lastErr)
		}
		// A stopped timer, not time.After: a canceled request mid-backoff must
		// not leave a timer pinned in the runtime heap for the full delay
		// (long-backoff clients canceling many requests leak real memory).
		t := time.NewTimer(c.jitter(delay))
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		case <-t.C:
		}
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// PostJSON is the common call shape: POST pre-marshalled JSON and return the
// response (retried per the client's policy).
func (c *Client) PostJSON(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.Do(req)
}
