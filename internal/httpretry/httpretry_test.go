package httpretry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient keeps test backoffs in the microsecond range.
func fastClient() *Client {
	return &Client{BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"context canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
		{"net timeout", &net.DNSError{IsTimeout: true}, true},
		{"unexpected EOF", io.ErrUnexpectedEOF, true},
		{"plain EOF", io.EOF, true},
		{"refused string", errors.New(`Post "http://x": dial tcp: connection refused`), true},
		{"reset string", errors.New("read: connection reset by peer"), true},
		{"ordinary error", errors.New("no such host in my heart"), false},
		// The "EOF" substring only counts on transport-level (*url.Error)
		// failures: an application error that merely mentions EOF must not
		// be retried.
		{"url.Error EOF string", &url.Error{Op: "Post", URL: "http://x",
			Err: errors.New("http: server closed idle connection: EOF")}, true},
		{"app error mentioning EOF", errors.New("decode config: unexpected EOF while parsing"), false},
		{"wrapped app EOF mention", fmt.Errorf("shard 3: %w",
			errors.New("corpus truncated: EOF at record 17")), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Transient(tc.err); got != tc.want {
				t.Fatalf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// TestDoRetriesTransientStatus: 503 twice then 200 succeeds within the
// 3-attempt budget, the body is rewound for every retry, and OnRetry sees
// each abandoned attempt.
func TestDoRetriesTransientStatus(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"x":1}` {
			t.Errorf("attempt %d saw body %q (rewind broken)", hits.Load()+1, body)
		}
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	c := fastClient()
	var retries []int
	c.OnRetry = func(attempt int, err error) { retries = append(retries, attempt) }
	resp, err := c.PostJSON(context.Background(), ts.URL, []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits.Load())
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

// TestDoAttemptsExhausted: an always-503 server fails after exactly the
// attempt cap with a final error naming the attempt count.
func TestDoAttemptsExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := fastClient()
	_, err := c.PostJSON(context.Background(), ts.URL, []byte(`{}`))
	if err == nil {
		t.Fatal("exhausted retries returned no error")
	}
	if hits.Load() != DefaultAttempts {
		t.Fatalf("server saw %d attempts, want %d", hits.Load(), DefaultAttempts)
	}
	if !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("final error %q does not name the attempt budget", err)
	}
}

// TestDoConnectionRefused: a dead address is transient — retried, then
// surfaced with the attempt count rather than a bare dial error.
func TestDoConnectionRefused(t *testing.T) {
	// Bind-then-close guarantees an unused port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()

	c := fastClient()
	var retried atomic.Int64
	c.OnRetry = func(int, error) { retried.Add(1) }
	if _, err := c.PostJSON(context.Background(), url, []byte(`{}`)); err == nil {
		t.Fatal("dead server returned no error")
	}
	if retried.Load() != DefaultAttempts-1 {
		t.Fatalf("retried %d times, want %d", retried.Load(), DefaultAttempts-1)
	}
}

// TestDoNoRetryOnClientError: a 4xx is a deterministic answer, returned
// verbatim on the first attempt.
func TestDoNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	c := fastClient()
	resp, err := c.PostJSON(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || hits.Load() != 1 {
		t.Fatalf("status %d after %d attempts, want one 422", resp.StatusCode, hits.Load())
	}
}

// TestDoContextCancelStopsBackoff: a cancelled context ends the retry loop
// during the backoff sleep instead of burning the budget.
func TestDoContextCancelStopsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := &Client{BaseDelay: time.Hour, Attempts: 3}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.PostJSON(ctx, ts.URL, []byte(`{}`))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel took %v to land (backoff not interruptible)", d)
	}
}

// roundTripFunc lets tests answer requests without a network.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestBackoffTimerReleasedOnCancel: canceling a request mid-backoff must
// release the backoff timer. Before the time.NewTimer/Stop fix, every
// canceled backoff left a pending timer pinned in the runtime's timer heap
// for the full delay; with hour-long delays the retained memory is directly
// measurable across many cancellations.
func TestBackoffTimerReleasedOnCancel(t *testing.T) {
	rt := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: http.StatusServiceUnavailable,
			Status: "503 Service Unavailable", Body: http.NoBody}, nil
	})
	c := &Client{HC: &http.Client{Transport: rt}, BaseDelay: time.Hour, Attempts: 2}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 20000; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		// OnRetry fires immediately before the backoff select, so the
		// select always sees a canceled context against an hour-long timer.
		c.OnRetry = func(int, error) { cancel() }
		if _, err := c.PostJSON(ctx, "http://unreachable.invalid/v1/x", []byte(`{}`)); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if retained := int64(after.HeapAlloc) - int64(before.HeapAlloc); retained > 1<<20 {
		t.Fatalf("%d bytes retained after 20000 canceled backoffs (timer leak)", retained)
	}
}

func TestJitterBounds(t *testing.T) {
	c := &Client{}
	for i := 0; i < 100; i++ {
		d := c.jitter(100 * time.Millisecond)
		if d < 50*time.Millisecond || d >= 100*time.Millisecond {
			t.Fatalf("jitter(100ms) = %v, want [50ms, 100ms)", d)
		}
	}
}
