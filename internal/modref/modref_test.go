package modref

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

const src = `
      SUBROUTINE leaf(x, y)
      REAL x, y(10)
      COMMON /blk/ g(20), h
      INTEGER i
      x = h + 1.0
      DO 10 i = 1, 10
        y(i) = g(i)
10    CONTINUE
      END
      SUBROUTINE mid(a)
      REAL a(10), t
      CALL leaf(t, a)
      END
      PROGRAM main
      COMMON /blk/ g(20), h
      REAL b(10), s
      h = 2.0
      CALL mid(b)
      s = b(1)
      END
`

func analyze(t *testing.T) (*ir.Program, *Info) {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Analyze(prog)
}

func TestDirectEffects(t *testing.T) {
	_, info := analyze(t)
	leaf := info.Effects["LEAF"]
	if !leaf.ModParam[0] {
		t.Fatal("leaf modifies x (param 0)")
	}
	if !leaf.ModParam[1] {
		t.Fatal("leaf modifies y (param 1)")
	}
	if len(leaf.RefCommon["BLK"]) == 0 {
		t.Fatal("leaf reads /blk/")
	}
	if len(leaf.ModCommon["BLK"]) != 0 {
		t.Fatal("leaf does not write /blk/")
	}
}

func TestTransitiveEffects(t *testing.T) {
	_, info := analyze(t)
	mid := info.Effects["MID"]
	// mid's a is passed to leaf's y, which is modified.
	if !mid.ModParam[0] {
		t.Fatal("mid transitively modifies a")
	}
	if len(mid.RefCommon["BLK"]) == 0 {
		t.Fatal("mid transitively reads /blk/")
	}
}

func TestCallModsAndRefs(t *testing.T) {
	prog, info := analyze(t)
	main := prog.Main()
	var call *ir.Call
	ir.WalkStmts(main.Body, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.Call); ok {
			call = c
		}
		return true
	})
	mods := info.CallMods(main, call)
	names := map[string]bool{}
	for _, s := range mods {
		names[s.Name] = true
	}
	if !names["B"] {
		t.Fatalf("CALL mid(b) modifies b: %v", names)
	}
	refs := info.CallRefs(main, call)
	rnames := map[string]bool{}
	for _, s := range refs {
		rnames[s.Name] = true
	}
	if !rnames["G"] || !rnames["H"] {
		t.Fatalf("CALL mid(b) reads /blk/ members: %v", rnames)
	}
}

func TestModifiedScalars(t *testing.T) {
	prog, info := analyze(t)
	main := prog.Main()
	mods := info.ModifiedScalars(main, main.Body)
	names := map[string]bool{}
	for s := range mods {
		names[s.Name] = true
	}
	if !names["H"] || !names["S"] {
		t.Fatalf("modified scalars: %v", names)
	}
	if names["B"] {
		t.Fatal("arrays must not appear in modified scalars")
	}
}

func TestRangeOverlap(t *testing.T) {
	if !(Range{1, 5}).overlaps(Range{5, 9}) {
		t.Fatal("touching ranges overlap")
	}
	if (Range{1, 4}).overlaps(Range{5, 9}) {
		t.Fatal("disjoint ranges")
	}
}
