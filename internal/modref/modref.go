// Package modref computes a flow-insensitive interprocedural mod/ref
// summary for every procedure: which parameters and which common-block
// element ranges a procedure (or anything it calls) may read or write. The
// scalar symbolic analysis and the array data-flow analyses use it to decide
// which caller variables a CALL may disturb.
package modref

import (
	"suifx/internal/ir"
)

// Range is an element range [Lo, Hi] within a common block's flat storage.
type Range struct {
	Lo, Hi int64
}

func (r Range) overlaps(o Range) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Effects summarizes one procedure's side effects in location space:
// per-parameter mod/ref bits and per-common-block modified/referenced
// element ranges (member granularity).
type Effects struct {
	ModParam  []bool
	RefParam  []bool
	ModCommon map[string][]Range
	RefCommon map[string][]Range
}

func newEffects(nparams int) *Effects {
	return &Effects{
		ModParam:  make([]bool, nparams),
		RefParam:  make([]bool, nparams),
		ModCommon: map[string][]Range{},
		RefCommon: map[string][]Range{},
	}
}

func addRange(m map[string][]Range, blk string, r Range) {
	for _, e := range m[blk] {
		if e == r {
			return
		}
	}
	m[blk] = append(m[blk], r)
}

// Info holds the analysis result for a whole program.
type Info struct {
	Prog    *ir.Program
	Effects map[string]*Effects
}

// NewInfo returns an empty Info; procedure effects are added with
// AnalyzeProc + Merge (or all at once by Analyze).
func NewInfo(prog *ir.Program) *Info {
	return &Info{Prog: prog, Effects: map[string]*Effects{}}
}

// Analyze computes mod/ref effects bottom-up over the (acyclic) call graph,
// sequentially. The concurrent scheduler in internal/driver produces the
// same result by running AnalyzeProc on a worker pool.
func Analyze(prog *ir.Program) *Info {
	info := NewInfo(prog)
	order, ok := prog.BottomUpOrder()
	if !ok {
		order = prog.Procs // recursion rejected upstream; be defensive
	}
	for _, p := range order {
		info.Merge(p.Name, info.AnalyzeProc(p, info.EffectsOf))
	}
	return info
}

// EffectsOf returns the merged effects for a procedure name (nil if not yet
// merged) — the callee lookup used by the sequential driver.
func (info *Info) EffectsOf(name string) *Effects { return info.Effects[name] }

// Merge records one procedure's effects in the whole-program map.
func (info *Info) Merge(name string, eff *Effects) { info.Effects[name] = eff }

// Clone returns an Info with a fresh effects map sharing the per-procedure
// Effects values (which are immutable after Merge). Merging into the clone
// never disturbs the original — the hook the incremental driver uses to
// branch a session's analysis off a cached whole-program result.
func (info *Info) Clone() *Info {
	out := &Info{Prog: info.Prog, Effects: make(map[string]*Effects, len(info.Effects))}
	for k, v := range info.Effects {
		out.Effects[k] = v
	}
	return out
}

// AnalyzeProc computes one procedure's effects. It reads only the program
// structure plus the callees' effects via the lookup, so calls for
// independent procedures may run concurrently.
func (info *Info) AnalyzeProc(p *ir.Proc, callee func(string) *Effects) *Effects {
	eff := newEffects(len(p.Params))

	mod := func(sym *ir.Symbol) {
		if sym.IsParam {
			eff.ModParam[sym.ParamIndex] = true
		} else if sym.Common != "" {
			addRange(eff.ModCommon, sym.Common, Range{sym.CommonOffset, sym.CommonOffset + sym.NElems() - 1})
		}
	}
	ref := func(sym *ir.Symbol) {
		if sym.IsParam {
			eff.RefParam[sym.ParamIndex] = true
		} else if sym.Common != "" {
			addRange(eff.RefCommon, sym.Common, Range{sym.CommonOffset, sym.CommonOffset + sym.NElems() - 1})
		}
	}

	ir.WalkStmts(p.Body, func(s ir.Stmt) bool {
		// References in all sub-expressions.
		ir.WalkExprs(s, func(e ir.Expr) {
			switch x := e.(type) {
			case *ir.VarRef:
				ref(x.Sym)
			case *ir.ArrayRef:
				ref(x.Sym)
			}
		})
		switch st := s.(type) {
		case *ir.Assign:
			mod(st.Lhs.Symbol())
		case *ir.DoLoop:
			mod(st.Index)
		case *ir.IO:
			if !st.Write {
				for _, a := range st.Args {
					if r, ok := a.(ir.Ref); ok {
						mod(r.Symbol())
					}
				}
			}
		case *ir.Call:
			info.applyCall(st, eff, callee)
		}
		return true
	})
	return eff
}

// applyCall folds a callee's effects into the caller's summary through the
// argument bindings and shared common blocks.
func (info *Info) applyCall(c *ir.Call, eff *Effects, callee func(string) *Effects) {
	if info.Prog.ByName[c.Name] == nil {
		return
	}
	ce := callee(c.Name)
	if ce == nil {
		return // should not happen in bottom-up order
	}
	for i, arg := range c.Args {
		if i >= len(ce.ModParam) {
			break
		}
		base := baseSymbol(arg)
		if base == nil {
			continue // expression argument: value copy, no caller effect
		}
		if ce.ModParam[i] {
			if base.IsParam {
				eff.ModParam[base.ParamIndex] = true
			} else if base.Common != "" {
				addRange(eff.ModCommon, base.Common, Range{base.CommonOffset, base.CommonOffset + base.NElems() - 1})
			}
		}
		if ce.RefParam[i] {
			if base.IsParam {
				eff.RefParam[base.ParamIndex] = true
			} else if base.Common != "" {
				addRange(eff.RefCommon, base.Common, Range{base.CommonOffset, base.CommonOffset + base.NElems() - 1})
			}
		}
	}
	for blk, rs := range ce.ModCommon {
		for _, r := range rs {
			addRange(eff.ModCommon, blk, r)
		}
	}
	for blk, rs := range ce.RefCommon {
		for _, r := range rs {
			addRange(eff.RefCommon, blk, r)
		}
	}
}

// baseSymbol returns the symbol an argument expression designates as
// pass-by-reference storage: a scalar variable, a whole array, or a subarray
// starting point. Other expressions pass values.
func baseSymbol(e ir.Expr) *ir.Symbol {
	switch x := e.(type) {
	case *ir.VarRef:
		return x.Sym
	case *ir.ArrayRef:
		return x.Sym
	}
	return nil
}

// BaseSymbol exposes baseSymbol for other analyses.
func BaseSymbol(e ir.Expr) *ir.Symbol { return baseSymbol(e) }

// CallMods returns the caller-scope symbols a call may modify: actual
// argument bases bound to modified parameters, plus any caller symbol
// overlapping a modified common-block range.
func (info *Info) CallMods(caller *ir.Proc, c *ir.Call) []*ir.Symbol {
	return info.callTouches(caller, c, true)
}

// CallRefs returns the caller-scope symbols a call may read.
func (info *Info) CallRefs(caller *ir.Proc, c *ir.Call) []*ir.Symbol {
	return info.callTouches(caller, c, false)
}

func (info *Info) callTouches(caller *ir.Proc, c *ir.Call, wantMod bool) []*ir.Symbol {
	callee := info.Prog.ByName[c.Name]
	if callee == nil {
		return nil
	}
	ce := info.Effects[c.Name]
	var out []*ir.Symbol
	seen := map[*ir.Symbol]bool{}
	add := func(s *ir.Symbol) {
		if s != nil && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	params := ce.RefParam
	commons := ce.RefCommon
	if wantMod {
		params = ce.ModParam
		commons = ce.ModCommon
	}
	for i, arg := range c.Args {
		if i < len(params) && params[i] {
			add(baseSymbol(arg))
		}
	}
	// Iterate caller symbols (sorted) in the outer loop so the result order
	// does not depend on map iteration over common blocks.
	for _, sym := range caller.SortedSyms() {
		rs := commons[sym.Common]
		if sym.Common == "" || len(rs) == 0 {
			continue
		}
		sr := Range{sym.CommonOffset, sym.CommonOffset + sym.NElems() - 1}
		for _, r := range rs {
			if sr.overlaps(r) {
				add(sym)
				break
			}
		}
	}
	return out
}

// ModifiedScalars returns the scalar symbols of proc that may be modified
// anywhere within the statement list (including via calls) — the kill set
// for forward substitution in the symbolic analysis.
func (info *Info) ModifiedScalars(proc *ir.Proc, stmts []ir.Stmt) map[*ir.Symbol]bool {
	out := map[*ir.Symbol]bool{}
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Assign:
			if !st.Lhs.Symbol().IsArray() {
				out[st.Lhs.Symbol()] = true
			}
		case *ir.DoLoop:
			out[st.Index] = true
		case *ir.IO:
			if !st.Write {
				for _, a := range st.Args {
					if r, ok := a.(ir.Ref); ok && !r.Symbol().IsArray() {
						out[r.Symbol()] = true
					}
				}
			}
		case *ir.Call:
			for _, sym := range info.CallMods(proc, st) {
				if !sym.IsArray() {
					out[sym] = true
				}
			}
		}
		return true
	})
	return out
}
