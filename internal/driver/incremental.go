package driver

import (
	"context"
	"sort"
	"sync/atomic"

	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/modref"
	"suifx/internal/summary"
)

// Incremental is a re-analyzable view of one program's interprocedural
// analysis, the engine behind interactive sessions: it keeps every merged
// per-procedure result (mod/ref effects and array summaries) and, when an
// assertion or option change dirties a procedure, recomputes only that
// procedure's call-graph SCC and its transitive callers — everything a
// bottom-up analysis could observe the change through. Clean procedures are
// served from the retained results, and per-run counters report exactly
// which summaries were recomputed versus reused, so callers (and tests) can
// prove an interactive step did not redo the whole program.
//
// Invalidation granularity is the SCC: marking any member dirties the whole
// component plus the components that (transitively) call into it. Callees
// are never dirtied — a bottom-up summary cannot depend on its callers.
//
// Incremental is not self-locking: callers serialize Invalidate/Analyze
// (sessions hold their own lock). The counters are atomics and may be read
// concurrently.
type Incremental struct {
	prog *ir.Program
	opt  Options

	sccs   []*scc
	compOf map[string]int // proc name -> index into sccs
	rev    [][]int        // sccs[i] is called by sccs[rev[i]...]

	mr    *modref.Info
	sum   *summary.Analysis
	dirty map[string]bool

	runs       atomic.Int64
	recomputed atomic.Int64
	reused     atomic.Int64
}

// IncStats describes one Analyze run: which procedure summaries were
// recomputed and which were served from the retained results.
type IncStats struct {
	// Run is the 1-based analysis run number on this Incremental.
	Run int `json:"run"`
	// Recomputed and Reused count procedure summaries this run.
	Recomputed int `json:"recomputed"`
	Reused     int `json:"reused"`
	// RecomputedProcs lists the recomputed procedures, sorted.
	RecomputedProcs []string `json:"recomputed_procs,omitempty"`
}

// RecomputedSet returns the recomputed procedures as a set.
func (st IncStats) RecomputedSet() map[string]bool {
	out := make(map[string]bool, len(st.RecomputedProcs))
	for _, p := range st.RecomputedProcs {
		out[p] = true
	}
	return out
}

// IncCounters are an Incremental's cumulative counters.
type IncCounters struct {
	Runs       int64 `json:"runs"`
	Recomputed int64 `json:"recomputed"`
	Reused     int64 `json:"reused"`
}

// NewIncremental builds an Incremental with every procedure dirty; the
// first Analyze is a cold whole-program run.
func NewIncremental(prog *ir.Program, opt Options) *Incremental {
	inc := newIncrementalShell(prog, opt)
	inc.InvalidateAll()
	return inc
}

// NewIncrementalFrom branches an Incremental off a cached whole-program
// Result: every procedure starts clean (the cached summaries are reused
// as-is), and later invalidations recompute into private clones, never
// touching the shared cached analysis.
func NewIncrementalFrom(res *Result, opt Options) *Incremental {
	inc := newIncrementalShell(res.Prog, opt)
	inc.mr = res.Sum.MR.Clone()
	inc.sum = res.Sum.Clone(inc.mr)
	return inc
}

func newIncrementalShell(prog *ir.Program, opt Options) *Incremental {
	sccs := condense(prog)
	inc := &Incremental{
		prog:   prog,
		opt:    opt,
		sccs:   sccs,
		compOf: make(map[string]int, len(prog.Procs)),
		rev:    make([][]int, len(sccs)),
		dirty:  map[string]bool{},
	}
	for i, s := range sccs {
		for _, p := range s.procs {
			inc.compOf[p.Name] = i
		}
		for _, d := range s.deps {
			inc.rev[d] = append(inc.rev[d], i)
		}
	}
	return inc
}

// Prog returns the program this Incremental analyzes.
func (inc *Incremental) Prog() *ir.Program { return inc.prog }

// InvalidateAll dirties every procedure.
func (inc *Incremental) InvalidateAll() {
	for _, p := range inc.prog.Procs {
		inc.dirty[p.Name] = true
	}
	exec.InvalidateProgram(inc.prog)
}

// Invalidate dirties each named procedure's SCC plus every component that
// transitively calls into it, and returns the number of procedures now
// dirty. Unknown names are ignored.
func (inc *Incremental) Invalidate(procs ...string) int {
	seen := map[int]bool{}
	var queue []int
	for _, name := range procs {
		if i, ok := inc.compOf[name]; ok && !seen[i] {
			seen[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, p := range inc.sccs[i].procs {
			inc.dirty[p.Name] = true
		}
		for _, caller := range inc.rev[i] {
			if !seen[caller] {
				seen[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	if len(seen) > 0 {
		// Anything that can change a summary can change what the tiered
		// engine specialized against; drop the compiled-code cache so the
		// next execution re-lowers (and re-fuses) from current state.
		exec.InvalidateProgram(inc.prog)
	}
	return len(inc.dirty)
}

// Dirty reports whether proc is currently marked for recomputation.
func (inc *Incremental) Dirty(proc string) bool { return inc.dirty[proc] }

// Counters returns the cumulative recompute/reuse counters.
func (inc *Incremental) Counters() IncCounters {
	return IncCounters{
		Runs:       inc.runs.Load(),
		Recomputed: inc.recomputed.Load(),
		Reused:     inc.reused.Load(),
	}
}

// Analyze brings the analysis up to date: dirty procedures are recomputed
// bottom-up over the SCC schedule with the driver's worker pool, clean
// procedures are served from the retained results, and the dirty set is
// cleared. The returned Analysis is the same object across runs (region and
// symbol identities are stable); per-run counters say exactly what was
// recomputed.
func (inc *Incremental) Analyze() (*summary.Analysis, IncStats) {
	dirty := inc.dirty
	inc.dirty = map[string]bool{}

	st := IncStats{
		Run:        int(inc.runs.Add(1)),
		Recomputed: len(dirty),
		Reused:     len(inc.prog.Procs) - len(dirty),
	}
	for name := range dirty {
		st.RecomputedProcs = append(st.RecomputedProcs, name)
	}
	sort.Strings(st.RecomputedProcs)
	inc.recomputed.Add(int64(st.Recomputed))
	inc.reused.Add(int64(st.Reused))

	if len(dirty) == 0 {
		return inc.sum, st
	}

	// Fresh results land in preallocated slots (one writer per slot, reads
	// gated by the scheduler's done-channels), exactly like AnalyzeCtx.
	slots := make(map[string]*procSlot, len(dirty))
	for name := range dirty {
		slots[name] = &procSlot{}
	}
	workers := inc.opt.workers()

	// Wave 1: mod/ref effects for dirty procedures. Clean callees resolve
	// through the retained merged map, which is read-only during the wave.
	if inc.mr == nil {
		inc.mr = modref.NewInfo(inc.prog)
	}
	effOf := func(name string) *modref.Effects {
		if s := slots[name]; s != nil {
			return s.eff
		}
		return inc.mr.EffectsOf(name)
	}
	mustRun(runBottomUp(context.Background(), inc.sccs, workers, func(s *scc) {
		for _, p := range s.procs {
			if dirty[p.Name] {
				slots[p.Name].eff = inc.mr.AnalyzeProc(p, effOf)
			}
		}
	}))
	for _, p := range bottomUpProcs(inc.prog) {
		if dirty[p.Name] {
			inc.mr.Merge(p.Name, slots[p.Name].eff)
		}
	}

	// Wave 2: array data-flow summaries. The Analysis skeleton (region
	// graph, canonical symbols) is created once and kept, so region pointers
	// stay stable across re-analyses.
	if inc.sum == nil {
		inc.sum = summary.NewAnalysis(inc.prog, inc.mr)
	}
	sumOf := func(name string) *summary.Tuple {
		if s := slots[name]; s != nil {
			if s.res == nil {
				return nil
			}
			return s.res.ProcSum
		}
		return inc.sum.ProcSummary(name)
	}
	mustRun(runBottomUp(context.Background(), inc.sccs, workers, func(s *scc) {
		for _, p := range s.procs {
			if dirty[p.Name] {
				slots[p.Name].res = inc.sum.AnalyzeProc(p, sumOf)
			}
		}
	}))
	for _, p := range bottomUpProcs(inc.prog) {
		if dirty[p.Name] {
			inc.sum.Merge(slots[p.Name].res)
		}
	}
	return inc.sum, st
}

func mustRun(err error) {
	if err != nil {
		// runBottomUp only errors on context cancellation, and incremental
		// runs use the background context: steps are short (a handful of
		// summaries), so they always run to completion.
		panic("driver: incremental analysis cancelled unexpectedly: " + err.Error())
	}
}
