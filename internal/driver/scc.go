// Package driver schedules the interprocedural analyses (mod/ref, array
// summaries — the bottom-up transfer summaries the liveness phase consumes)
// concurrently over the call graph, and memoizes whole-program results in a
// content-hash-keyed cache. Results are byte-identical to the sequential
// summary.Analyze / modref.Analyze paths: per-procedure analysis is pure,
// fresh names are minted per procedure, and merging happens in the same
// deterministic bottom-up order the sequential code uses.
package driver

import (
	"suifx/internal/ir"
)

// scc is one strongly connected component of the call graph: a unit of
// scheduling. With MiniF's no-recursion rule every component is a single
// procedure; components with more members (recursive input that slipped
// through) are analyzed sequentially inside the component, mirroring the
// defensive path in the sequential analyzers.
type scc struct {
	procs []*ir.Proc // members in deterministic (declaration) order
	deps  []int      // indices of components this one calls into
}

// condense computes the SCC condensation of prog's call graph with Tarjan's
// algorithm and returns the components in bottom-up (reverse topological)
// order: every component appears after all components it calls. Iteration
// is driven by declaration order, so the result is deterministic.
func condense(prog *ir.Program) []*scc {
	g := prog.CallGraph()

	index := map[string]int{}   // discovery index, by proc name
	lowlink := map[string]int{} // smallest index reachable
	onStack := map[string]bool{}
	comp := map[string]int{} // proc name -> component id
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = len(comps)
				members = append(members, w)
				if w == v {
					break
				}
			}
			comps = append(comps, members)
		}
	}
	for _, p := range prog.Procs {
		if _, seen := index[p.Name]; !seen {
			strongconnect(p.Name)
		}
	}

	// Tarjan pops components in reverse topological order: when a component
	// is emitted, everything it calls into has already been emitted — which
	// is exactly the bottom-up schedule.
	out := make([]*scc, len(comps))
	for i, members := range comps {
		s := &scc{}
		// Declaration order within the component, for the defensive
		// recursive case.
		memberSet := map[string]bool{}
		for _, m := range members {
			memberSet[m] = true
		}
		for _, p := range prog.Procs {
			if memberSet[p.Name] {
				s.procs = append(s.procs, p)
			}
		}
		depSeen := map[int]bool{}
		for _, m := range members {
			for _, callee := range g[m] {
				j := comp[callee]
				if j != i && !depSeen[j] {
					depSeen[j] = true
					s.deps = append(s.deps, j)
				}
			}
		}
		out[i] = s
	}
	return out
}
