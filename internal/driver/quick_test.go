package driver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"suifx/internal/workloads"
)

// TestQuickWorkerCountIndependence is the scheduling property the driver
// guarantees: the analysis result is a pure function of the program, not of
// the worker count or the (nondeterministic) completion order. Randomly
// chosen workloads must dump identically under 1, 2, and 8 workers.
func TestQuickWorkerCountIndependence(t *testing.T) {
	all := workloads.All()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := all[r.Intn(len(all))]
		base := dump(Analyze(w.Fresh(), Options{Workers: 1}))
		for _, workers := range []int{2, 8} {
			if dump(Analyze(w.Fresh(), Options{Workers: workers})) != base {
				t.Logf("workload %s: %d workers diverged from 1 worker", w.Name, workers)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
