package driver

import (
	"reflect"
	"sort"
	"testing"

	"suifx/internal/ir"
	"suifx/internal/workloads"
)

// reachesSet computes {q : target is reachable from q over >= 1 call edge},
// i.e. the transitive callers of target — including target itself when it
// sits on a cycle. Together with target this is exactly the SCC-plus-callers
// closure the incremental driver promises to recompute.
func reachesSet(prog *ir.Program, target string) map[string]bool {
	cg := prog.CallGraph()
	out := map[string]bool{}
	for _, p := range prog.Procs {
		seen := map[string]bool{}
		var walk func(name string) bool
		walk = func(name string) bool {
			if seen[name] {
				return false
			}
			seen[name] = true
			for _, callee := range cg[name] {
				if callee == target || walk(callee) {
					return true
				}
			}
			return false
		}
		if walk(p.Name) {
			out[p.Name] = true
		}
	}
	out[target] = true
	return out
}

// TestIncrementalColdMatchesFull: the first Analyze of a cold Incremental is
// a whole-program run whose result is byte-identical to the one-shot driver.
func TestIncrementalColdMatchesFull(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want := dump(Analyze(w.Fresh(), Options{Workers: 4}))
			inc := NewIncremental(w.Fresh(), Options{Workers: 4})
			sum, st := inc.Analyze()
			if st.Run != 1 || st.Reused != 0 || st.Recomputed != len(sum.Prog.Procs) {
				t.Fatalf("cold run stats = %+v, want run 1 recomputing all %d procs", st, len(sum.Prog.Procs))
			}
			if got := dump(sum); got != want {
				t.Fatalf("cold incremental analysis differs from the one-shot driver\n--- want ---\n%s\n--- got ---\n%s", want, got)
			}
		})
	}
}

// TestIncrementalInvalidationClosure: invalidating one procedure recomputes
// exactly its SCC plus transitive callers — nothing else — and re-derives a
// byte-identical analysis.
func TestIncrementalInvalidationClosure(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Fresh()
			inc := NewIncremental(prog, Options{Workers: 4})
			sum, _ := inc.Analyze()
			want := dump(sum)

			for _, p := range prog.Procs {
				expected := reachesSet(prog, p.Name)
				inc.Invalidate(p.Name)
				sum2, st := inc.Analyze()
				if sum2 != sum {
					t.Fatalf("Analyze must return the same retained Analysis object")
				}
				got := map[string]bool{}
				for _, name := range st.RecomputedProcs {
					got[name] = true
				}
				if !reflect.DeepEqual(got, expected) {
					t.Fatalf("invalidate %s: recomputed %v, want the SCC+callers closure %v",
						p.Name, st.RecomputedProcs, keys(expected))
				}
				if st.Reused != len(prog.Procs)-len(expected) {
					t.Fatalf("invalidate %s: reused %d, want %d", p.Name, st.Reused, len(prog.Procs)-len(expected))
				}
				if after := dump(sum2); after != want {
					t.Fatalf("invalidate %s: re-analysis changed the result with no semantic change", p.Name)
				}
			}
		})
	}
}

// TestIncrementalNoopAnalyze: with nothing dirty, Analyze recomputes nothing.
func TestIncrementalNoopAnalyze(t *testing.T) {
	w := workloads.All()[0]
	inc := NewIncremental(w.Fresh(), Options{})
	inc.Analyze()
	_, st := inc.Analyze()
	if st.Recomputed != 0 || st.Reused != len(inc.Prog().Procs) {
		t.Fatalf("no-op analyze stats = %+v, want 0 recomputed", st)
	}
}

// TestIncrementalFromBranchesCleanly: an Incremental branched off a cached
// Result starts fully clean, produces the identical analysis, and later
// invalidations never mutate the shared cached result.
func TestIncrementalFromBranchesCleanly(t *testing.T) {
	c := NewCache()
	var multi *ir.Program
	for _, w := range workloads.All() {
		res := c.MustAnalyze(w.Name, w.Source, Options{Workers: 4})
		cachedDump := dump(res.Sum)

		inc := NewIncrementalFrom(res, Options{Workers: 4})
		sum, st := inc.Analyze()
		if st.Recomputed != 0 || st.Reused != len(res.Prog.Procs) {
			t.Fatalf("%s: branched run stats = %+v, want everything reused", w.Name, st)
		}
		if got := dump(sum); got != cachedDump {
			t.Fatalf("%s: branched analysis differs from the cached result", w.Name)
		}

		// Dirty everything in the branch; the shared cached analysis must
		// stay byte-identical (clone semantics), and the branch re-derives
		// the same facts.
		inc.InvalidateAll()
		sum2, _ := inc.Analyze()
		if got := dump(sum2); got != cachedDump {
			t.Fatalf("%s: re-derived branch differs from the cached result", w.Name)
		}
		if got := dump(res.Sum); got != cachedDump {
			t.Fatalf("%s: invalidating a branch mutated the shared cached analysis", w.Name)
		}
		if multi == nil && len(res.Prog.Procs) > 1 {
			multi = res.Prog
		}
	}
	if multi == nil {
		t.Fatal("no multi-procedure workload exercised the branch test")
	}
}

// TestIncrementalCounters: cumulative counters add up across runs.
func TestIncrementalCounters(t *testing.T) {
	w := workloads.ByName("mdg")
	prog := w.Fresh()
	inc := NewIncremental(prog, Options{})
	inc.Analyze()
	inc.Analyze() // no-op run
	p := prog.Procs[0].Name
	inc.Invalidate(p)
	_, st := inc.Analyze()
	c := inc.Counters()
	if c.Runs != 3 {
		t.Fatalf("runs = %d, want 3", c.Runs)
	}
	wantRecomputed := int64(len(prog.Procs) + st.Recomputed)
	if c.Recomputed != wantRecomputed {
		t.Fatalf("cumulative recomputed = %d, want %d", c.Recomputed, wantRecomputed)
	}
	wantReused := int64(len(prog.Procs)) + int64(st.Reused)
	if c.Reused != wantReused {
		t.Fatalf("cumulative reused = %d, want %d", c.Reused, wantReused)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
