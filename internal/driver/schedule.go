package driver

import (
	"fmt"
	"runtime"
	"sync"
)

// runBottomUp runs fn once per component on a pool of at most workers
// goroutines, starting each component only after every component it depends
// on has finished (errgroup-style bounded fan-out with a dependency DAG).
// sccs must be in bottom-up order (deps point at lower indices). A panic in
// fn is captured and re-raised in the caller after all goroutines join.
func runBottomUp(sccs []*scc, workers int, fn func(*scc)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sccs) <= 1 {
		for _, s := range sccs {
			fn(s)
		}
		return
	}

	done := make([]chan struct{}, len(sccs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)

	var (
		mu       sync.Mutex
		panicked any
	)
	var wg sync.WaitGroup
	for i, s := range sccs {
		wg.Add(1)
		go func(i int, s *scc) {
			defer wg.Done()
			defer close(done[i]) // always close, or dependents deadlock
			for _, d := range s.deps {
				<-done[d]
			}
			mu.Lock()
			stop := panicked != nil
			mu.Unlock()
			if stop {
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			fn(s)
		}(i, s)
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("driver: analysis worker panicked: %v", panicked))
	}
}
