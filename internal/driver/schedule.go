package driver

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// runBottomUp runs fn once per component on a pool of at most workers
// goroutines, starting each component only after every component it depends
// on has finished (errgroup-style bounded fan-out with a dependency DAG).
// sccs must be in bottom-up order (deps point at lower indices). A panic in
// fn is captured and re-raised in the caller after all goroutines join.
//
// Cancelling ctx abandons every component that has not yet started: queued
// waves are skipped (their done-channels still close, so dependents never
// deadlock) and runBottomUp returns ctx's error. Components already inside
// fn run to completion — per-procedure analysis is pure and fast, so
// cancellation granularity is one component.
func runBottomUp(ctx context.Context, sccs []*scc, workers int, fn func(*scc)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sccs) <= 1 {
		for _, s := range sccs {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(s)
		}
		return nil
	}

	done := make([]chan struct{}, len(sccs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)

	var (
		mu       sync.Mutex
		panicked any
		skipped  atomic.Bool
	)
	var wg sync.WaitGroup
	for i, s := range sccs {
		wg.Add(1)
		go func(i int, s *scc) {
			defer wg.Done()
			defer close(done[i]) // always close, or dependents deadlock
			for _, d := range s.deps {
				<-done[d]
			}
			mu.Lock()
			stop := panicked != nil
			mu.Unlock()
			if stop {
				return
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				skipped.Store(true)
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				skipped.Store(true)
				return
			}
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			fn(s)
		}(i, s)
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("driver: analysis worker panicked: %v", panicked))
	}
	// Only report cancellation when it actually cost us work: a cancel that
	// lands after the last component started still yields a complete result.
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}
