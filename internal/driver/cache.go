package driver

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"suifx/internal/ir"
	"suifx/internal/minif"
	"suifx/internal/summary"
)

// Result is a memoized whole-program analysis: the parsed program, its
// summary analysis, and the content hashes that key it. Results are shared
// between callers, which is safe because every consumer of an Analysis
// (dependence testing, parallelization, liveness, the explorer's read
// paths) treats it as read-only.
type Result struct {
	Prog *ir.Program
	Sum  *summary.Analysis
	// SourceHash is the cache key: sha256 over the program name and source.
	SourceHash string
	// ProcHashes gives each procedure a Merkle-style hash over its own
	// source span and the hashes of its callees, so a future incremental
	// mode can reuse per-procedure summaries when only unrelated
	// procedures change.
	ProcHashes map[string]string
}

// DefaultCacheCapacity bounds Shared() and NewCache(): enough for every
// built-in workload plus a healthy working set of ad-hoc sources, small
// enough that a long-lived suifxd serving arbitrary programs cannot grow
// without bound.
const DefaultCacheCapacity = 128

// Cache memoizes analysis results by source content hash, bounded to a
// fixed number of entries with LRU eviction. Concurrent callers asking for
// the same program share one analysis run (singleflight per entry); every
// waiter on a cancelled run observes the same cancellation error, and the
// cancelled entry is dropped so a later request retries from scratch.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*cacheEntry
	order     *list.List // front = most recently used
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is one singleflight slot. The computing goroutine fills res/err
// and then closes done; everyone else blocks on done (or their own ctx).
// complete is written under Cache.mu, so eviction can skip in-flight runs.
type cacheEntry struct {
	key      string
	elem     *list.Element
	done     chan struct{}
	complete bool
	res      *Result
	err      error
}

// NewCache returns an empty cache with DefaultCacheCapacity.
func NewCache() *Cache { return NewCacheCap(DefaultCacheCapacity) }

// NewCacheCap returns an empty cache holding at most capacity entries
// (<= 0 means DefaultCacheCapacity).
func NewCacheCap(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{capacity: capacity, entries: map[string]*cacheEntry{}, order: list.New()}
}

var shared = NewCache()

// Shared returns the process-wide cache used by the experiment drivers and
// commands, so repeated table regenerations reuse summaries instead of
// re-deriving them.
func Shared() *Cache { return shared }

// Key returns the cache key for a named source text.
func Key(name, src string) string {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// Analyze parses and analyzes the named source, memoizing by content hash:
// the second request for identical source returns the first run's Result
// without re-parsing or re-analyzing.
func (c *Cache) Analyze(name, src string, opt Options) (*Result, error) {
	return c.AnalyzeCtx(context.Background(), name, src, opt)
}

// AnalyzeCtx is Analyze with cancellation. The first caller for a key runs
// the parse+analysis under its own ctx; concurrent callers for the same key
// wait for that run. A waiter whose own ctx ends returns its ctx error and
// leaves the run going for the others; if the running caller's ctx ends,
// the run is abandoned, every waiter observes that same cancellation error,
// and the entry is removed so the next request recomputes.
func (c *Cache) AnalyzeCtx(ctx context.Context, name, src string, opt Options) (*Result, error) {
	key := Key(name, src)

	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		c.hits.Add(1)
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.misses.Add(1)
	c.evictLocked()
	c.mu.Unlock()

	e.res, e.err = c.compute(ctx, name, src, opt)

	c.mu.Lock()
	if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
		// Cancelled, not failed: drop the entry so a later request retries.
		// Deterministic failures (parse errors) stay cached.
		c.removeLocked(e)
	}
	e.complete = true
	c.mu.Unlock()
	close(e.done)
	return e.res, e.err
}

func (c *Cache) compute(ctx context.Context, name, src string, opt Options) (*Result, error) {
	prog, err := minif.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("driver: parse %s: %w", name, err)
	}
	sum, err := AnalyzeCtx(ctx, prog, opt)
	if err != nil {
		return nil, err
	}
	return &Result{
		Prog:       prog,
		Sum:        sum,
		SourceHash: Key(name, src),
		ProcHashes: procHashes(prog, src),
	}, nil
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its capacity. In-flight entries are never evicted — that would break
// the singleflight guarantee for requests arriving mid-run — so the cache
// can transiently exceed capacity while many distinct programs are being
// analyzed at once.
func (c *Cache) evictLocked() {
	for el := c.order.Back(); el != nil && len(c.entries) > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.complete {
			c.removeLocked(e)
			c.evictions.Add(1)
		}
		el = prev
	}
}

// removeLocked unlinks e if it is still the current entry for its key. The
// identity check is the Reset-race guard: a run that finishes after a Reset
// (or after being superseded) must not disturb the new generation's entry.
func (c *Cache) removeLocked(e *cacheEntry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
		c.order.Remove(e.elem)
	}
}

// MustAnalyze is Analyze for known-good workload sources.
func (c *Cache) MustAnalyze(name, src string, opt Options) *Result {
	res, err := c.Analyze(name, src, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// Stats reports cache counters since creation plus current occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	capacity := c.capacity
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Capacity:  capacity,
	}
}

// Reset drops all entries (test hook). In-flight runs keep computing for
// their current waiters but can no longer touch the new generation: their
// completion handler's identity check (removeLocked) no-ops, and requests
// after the Reset start fresh entries.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = map[string]*cacheEntry{}
	c.order = list.New()
	c.mu.Unlock()
}

// procHashes computes the per-procedure Merkle hashes: each procedure's
// hash covers its own source span plus the hashes of everything it calls,
// bottom-up, so a hash match certifies the procedure's entire analysis
// cone is unchanged.
func procHashes(prog *ir.Program, src string) map[string]string {
	lines := strings.Split(src, "\n")
	span := func(p *ir.Proc) string {
		lo, hi := p.Pos.Line, p.EndLine
		if lo < 1 {
			lo = 1
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		if lo > hi {
			return ""
		}
		return strings.Join(lines[lo-1:hi], "\n")
	}
	g := prog.CallGraph()
	out := make(map[string]string, len(prog.Procs))
	for _, p := range bottomUpProcs(prog) {
		h := sha256.New()
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
		h.Write([]byte(span(p)))
		for _, callee := range g[p.Name] {
			h.Write([]byte{0})
			h.Write([]byte(out[callee])) // "" for recursive edges
		}
		out[p.Name] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}
