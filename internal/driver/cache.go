package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"suifx/internal/ir"
	"suifx/internal/minif"
	"suifx/internal/summary"
)

// Result is a memoized whole-program analysis: the parsed program, its
// summary analysis, and the content hashes that key it. Results are shared
// between callers, which is safe because every consumer of an Analysis
// (dependence testing, parallelization, liveness, the explorer's read
// paths) treats it as read-only.
type Result struct {
	Prog *ir.Program
	Sum  *summary.Analysis
	// SourceHash is the cache key: sha256 over the program name and source.
	SourceHash string
	// ProcHashes gives each procedure a Merkle-style hash over its own
	// source span and the hashes of its callees, so a future incremental
	// mode can reuse per-procedure summaries when only unrelated
	// procedures change.
	ProcHashes map[string]string
}

// Cache memoizes analysis results by source content hash. Concurrent
// callers asking for the same program share one analysis run (singleflight
// per entry via sync.Once).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}}
}

var shared = NewCache()

// Shared returns the process-wide cache used by the experiment drivers and
// commands, so repeated table regenerations reuse summaries instead of
// re-deriving them.
func Shared() *Cache { return shared }

// Key returns the cache key for a named source text.
func Key(name, src string) string {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// Analyze parses and analyzes the named source, memoizing by content hash:
// the second request for identical source returns the first run's Result
// without re-parsing or re-analyzing.
func (c *Cache) Analyze(name, src string, opt Options) (*Result, error) {
	key := Key(name, src)
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		prog, err := minif.Parse(name, src)
		if err != nil {
			e.err = fmt.Errorf("driver: parse %s: %w", name, err)
			return
		}
		e.res = &Result{
			Prog:       prog,
			Sum:        Analyze(prog, opt),
			SourceHash: key,
			ProcHashes: procHashes(prog, src),
		}
	})
	return e.res, e.err
}

// MustAnalyze is Analyze for known-good workload sources.
func (c *Cache) MustAnalyze(name, src string, opt Options) *Result {
	res, err := c.Analyze(name, src, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Reset drops all entries (test hook).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = map[string]*cacheEntry{}
	c.mu.Unlock()
}

// procHashes computes the per-procedure Merkle hashes: each procedure's
// hash covers its own source span plus the hashes of everything it calls,
// bottom-up, so a hash match certifies the procedure's entire analysis
// cone is unchanged.
func procHashes(prog *ir.Program, src string) map[string]string {
	lines := strings.Split(src, "\n")
	span := func(p *ir.Proc) string {
		lo, hi := p.Pos.Line, p.EndLine
		if lo < 1 {
			lo = 1
		}
		if hi > len(lines) {
			hi = len(lines)
		}
		if lo > hi {
			return ""
		}
		return strings.Join(lines[lo-1:hi], "\n")
	}
	g := prog.CallGraph()
	out := make(map[string]string, len(prog.Procs))
	for _, p := range bottomUpProcs(prog) {
		h := sha256.New()
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
		h.Write([]byte(span(p)))
		for _, callee := range g[p.Name] {
			h.Write([]byte{0})
			h.Write([]byte(out[callee])) // "" for recursive edges
		}
		out[p.Name] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}
