package driver

import (
	"runtime"

	"suifx/internal/ir"
	"suifx/internal/modref"
	"suifx/internal/summary"
)

// Options configures the concurrent scheduler.
type Options struct {
	// Workers bounds the analysis worker pool. <= 0 means GOMAXPROCS.
	Workers int
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// procSlot holds one procedure's analysis results. All slots are allocated
// before any worker starts; a worker writes only the slots of its own
// component's procedures, and dependents read them only after the
// component's done-channel closes — so cross-goroutine access is race-free
// without locks.
type procSlot struct {
	eff *modref.Effects
	res *summary.ProcResult
}

// Analyze runs the whole bottom-up interprocedural analysis (mod/ref, then
// array summaries) over prog with a bounded worker pool, fanning out across
// call-graph SCCs. The result is byte-identical to summary.Analyze: the
// per-procedure analyses are pure, and results are merged in the same
// deterministic bottom-up order regardless of completion order.
func Analyze(prog *ir.Program, opt Options) *summary.Analysis {
	sccs := condense(prog)
	workers := opt.workers()

	slots := make(map[string]*procSlot, len(prog.Procs))
	for _, p := range prog.Procs {
		slots[p.Name] = &procSlot{}
	}
	effOf := func(name string) *modref.Effects {
		if s := slots[name]; s != nil {
			return s.eff
		}
		return nil
	}
	sumOf := func(name string) *summary.Tuple {
		if s := slots[name]; s != nil && s.res != nil {
			return s.res.ProcSum
		}
		return nil
	}

	// Wave 1: mod/ref effects. The summary phase's symbolic evaluator
	// queries the full mod/ref Info, so this wave joins completely first.
	mr := modref.NewInfo(prog)
	runBottomUp(sccs, workers, func(s *scc) {
		for _, p := range s.procs {
			slots[p.Name].eff = mr.AnalyzeProc(p, effOf)
		}
	})
	for _, p := range bottomUpProcs(prog) {
		mr.Merge(p.Name, slots[p.Name].eff)
	}

	// Wave 2: array data-flow summaries.
	a := summary.NewAnalysis(prog, mr)
	runBottomUp(sccs, workers, func(s *scc) {
		for _, p := range s.procs {
			slots[p.Name].res = a.AnalyzeProc(p, sumOf)
		}
	})
	for _, p := range bottomUpProcs(prog) {
		a.Merge(slots[p.Name].res)
	}
	return a
}

// bottomUpProcs is the deterministic merge order: the same order the
// sequential analyzers use (BottomUpOrder, declaration order on recursion).
func bottomUpProcs(prog *ir.Program) []*ir.Proc {
	order, ok := prog.BottomUpOrder()
	if !ok {
		return prog.Procs
	}
	return order
}
