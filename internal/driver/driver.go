package driver

import (
	"context"
	"runtime"

	"suifx/internal/ir"
	"suifx/internal/modref"
	"suifx/internal/summary"
)

// Options configures the concurrent scheduler.
type Options struct {
	// Workers bounds the analysis worker pool. <= 0 means GOMAXPROCS.
	Workers int

	// onProc, when set, is called before each procedure is analyzed in each
	// wave (test hook: lets cancellation tests observe and gate progress).
	onProc func(wave int, proc string)
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// procSlot holds one procedure's analysis results. All slots are allocated
// before any worker starts; a worker writes only the slots of its own
// component's procedures, and dependents read them only after the
// component's done-channel closes — so cross-goroutine access is race-free
// without locks.
type procSlot struct {
	eff *modref.Effects
	res *summary.ProcResult
}

// Analyze runs the whole bottom-up interprocedural analysis (mod/ref, then
// array summaries) over prog with a bounded worker pool, fanning out across
// call-graph SCCs. The result is byte-identical to summary.Analyze: the
// per-procedure analyses are pure, and results are merged in the same
// deterministic bottom-up order regardless of completion order.
func Analyze(prog *ir.Program, opt Options) *summary.Analysis {
	a, err := AnalyzeCtx(context.Background(), prog, opt)
	if err != nil {
		// Background is never cancelled, and AnalyzeCtx errors only on
		// cancellation.
		panic("driver: Analyze failed without cancellation: " + err.Error())
	}
	return a
}

// AnalyzeCtx is Analyze with cancellation: when ctx is cancelled, queued
// SCC waves are abandoned and the error is ctx's. The partial per-procedure
// work is discarded — a cancelled analysis returns nil.
func AnalyzeCtx(ctx context.Context, prog *ir.Program, opt Options) (*summary.Analysis, error) {
	sccs := condense(prog)
	workers := opt.workers()

	slots := make(map[string]*procSlot, len(prog.Procs))
	for _, p := range prog.Procs {
		slots[p.Name] = &procSlot{}
	}
	effOf := func(name string) *modref.Effects {
		if s := slots[name]; s != nil {
			return s.eff
		}
		return nil
	}
	sumOf := func(name string) *summary.Tuple {
		if s := slots[name]; s != nil && s.res != nil {
			return s.res.ProcSum
		}
		return nil
	}

	// Wave 1: mod/ref effects. The summary phase's symbolic evaluator
	// queries the full mod/ref Info, so this wave joins completely first.
	mr := modref.NewInfo(prog)
	err := runBottomUp(ctx, sccs, workers, func(s *scc) {
		for _, p := range s.procs {
			if opt.onProc != nil {
				opt.onProc(1, p.Name)
			}
			slots[p.Name].eff = mr.AnalyzeProc(p, effOf)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, p := range bottomUpProcs(prog) {
		mr.Merge(p.Name, slots[p.Name].eff)
	}

	// Wave 2: array data-flow summaries.
	a := summary.NewAnalysis(prog, mr)
	err = runBottomUp(ctx, sccs, workers, func(s *scc) {
		for _, p := range s.procs {
			if opt.onProc != nil {
				opt.onProc(2, p.Name)
			}
			slots[p.Name].res = a.AnalyzeProc(p, sumOf)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, p := range bottomUpProcs(prog) {
		a.Merge(slots[p.Name].res)
	}
	return a, nil
}

// SCC is one component of the exported analysis schedule: the procedures it
// contains (declaration order) and the indices of the components it calls
// into. Components are listed bottom-up, so every dep index is smaller than
// the component's own index.
type SCC struct {
	Procs []string `json:"procs"`
	Deps  []int    `json:"deps,omitempty"`
}

// Schedule returns the bottom-up SCC schedule the driver would run for
// prog — the call-graph condensation, in execution order.
func Schedule(prog *ir.Program) []SCC {
	sccs := condense(prog)
	out := make([]SCC, len(sccs))
	for i, s := range sccs {
		c := SCC{Procs: make([]string, len(s.procs))}
		for j, p := range s.procs {
			c.Procs[j] = p.Name
		}
		c.Deps = append(c.Deps, s.deps...)
		out[i] = c
	}
	return out
}

// bottomUpProcs is the deterministic merge order: the same order the
// sequential analyzers use (BottomUpOrder, declaration order on recursion).
func bottomUpProcs(prog *ir.Program) []*ir.Proc {
	order, ok := prog.BottomUpOrder()
	if !ok {
		return prog.Procs
	}
	return order
}
