package driver

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"suifx/internal/ir"
	"suifx/internal/region"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

// dump renders an Analysis to a canonical string keyed by stable names
// (procedure names, region IDs, statement positions), so analyses of two
// separately parsed instances of the same program can be compared.
func dump(a *summary.Analysis) string {
	var b strings.Builder
	procs := make([]string, 0, len(a.ProcSum))
	for name := range a.ProcSum {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	for _, name := range procs {
		fmt.Fprintf(&b, "== proc %s ==\n%s", name, a.ProcSum[name])
	}

	// Labels may repeat within a procedure, so region IDs alone are not
	// unique; the source line span disambiguates.
	regKey := func(r *region.Region) string {
		lo, hi := r.Lines()
		return fmt.Sprintf("%s@%d-%d", r.ID(), lo, hi)
	}
	type regEntry struct {
		id string
		r  *region.Region
	}
	collect := func(m map[*region.Region]*summary.Tuple) []regEntry {
		out := make([]regEntry, 0, len(m))
		for r := range m {
			out = append(out, regEntry{regKey(r), r})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
		return out
	}
	for _, e := range collect(a.RegionSum) {
		fmt.Fprintf(&b, "== region %s ==\n%s", e.id, a.RegionSum[e.r])
	}
	for _, e := range collect(a.BodySum) {
		fmt.Fprintf(&b, "== body %s ==\n%s", e.id, a.BodySum[e.r])
	}

	ctxIDs := make([]regEntry, 0, len(a.Ctx))
	for r := range a.Ctx {
		ctxIDs = append(ctxIDs, regEntry{regKey(r), r})
	}
	sort.Slice(ctxIDs, func(i, j int) bool { return ctxIDs[i].id < ctxIDs[j].id })
	for _, e := range ctxIDs {
		c := a.Ctx[e.r]
		fmt.Fprintf(&b, "== ctx %s == idx=%s exact=%v variant=%v bounds=%s\n",
			e.id, c.IndexVar, c.Exact, c.Variant, c.Bounds)
	}

	afterIDs := make([]regEntry, 0, len(a.After))
	for r := range a.After {
		afterIDs = append(afterIDs, regEntry{regKey(r), r})
	}
	sort.Slice(afterIDs, func(i, j int) bool { return afterIDs[i].id < afterIDs[j].id })
	for _, e := range afterIDs {
		stmts := a.After[e.r]
		type stEntry struct {
			key string
			s   ir.Stmt
		}
		sts := make([]stEntry, 0, len(stmts))
		for s := range stmts {
			sts = append(sts, stEntry{fmt.Sprintf("L%d:%T", stmtLine(s), s), s})
		}
		sort.Slice(sts, func(i, j int) bool { return sts[i].key < sts[j].key })
		for _, se := range sts {
			fmt.Fprintf(&b, "== after %s %s ==\n%s", e.id, se.key, stmts[se.s])
		}
	}
	return b.String()
}

func stmtLine(s ir.Stmt) int {
	switch st := s.(type) {
	case *ir.Call:
		return st.Pos.Line
	case *ir.DoLoop:
		return st.Pos.Line
	}
	return -1
}

// TestDriverMatchesSequential is the core determinism guarantee: the
// concurrent driver must reproduce the sequential analysis byte-for-byte on
// every workload.
func TestDriverMatchesSequential(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want := dump(summary.Analyze(w.Fresh()))
			got := dump(Analyze(w.Fresh(), Options{Workers: 8}))
			if got != want {
				t.Fatalf("driver output differs from sequential analysis\n--- sequential ---\n%s\n--- driver ---\n%s", want, got)
			}
		})
	}
}

// TestCondenseBottomUp checks the SCC schedule: every component's deps have
// lower indices (bottom-up order), and each procedure appears exactly once.
func TestCondenseBottomUp(t *testing.T) {
	for _, w := range workloads.All() {
		prog := w.Program()
		sccs := condense(prog)
		seen := map[string]bool{}
		for i, s := range sccs {
			for _, d := range s.deps {
				if d >= i {
					t.Fatalf("%s: scc %d depends on %d (not bottom-up)", w.Name, i, d)
				}
			}
			for _, p := range s.procs {
				if seen[p.Name] {
					t.Fatalf("%s: proc %s in two components", w.Name, p.Name)
				}
				seen[p.Name] = true
			}
		}
		if len(seen) != len(prog.Procs) {
			t.Fatalf("%s: condensation covers %d of %d procs", w.Name, len(seen), len(prog.Procs))
		}
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache()
	w := workloads.All()[0]
	r1, err := c.Analyze(w.Name, w.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Analyze(w.Name, w.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second request for identical source did not reuse the memoized result")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	// Different source -> different entry and key.
	r3, err := c.Analyze(w.Name, w.Source+"\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 || r3.SourceHash == r1.SourceHash {
		t.Fatal("modified source must not share the original cache entry")
	}
}

func TestCacheParseError(t *testing.T) {
	c := NewCache()
	if _, err := c.Analyze("bad", "THIS IS NOT MINIF((", Options{}); err == nil {
		t.Fatal("expected a parse error")
	}
}

func TestProcHashesChangeWithCallees(t *testing.T) {
	w := workloads.All()[0]
	res := Shared().MustAnalyze(w.Name, w.Source, Options{})
	if len(res.ProcHashes) != len(res.Prog.Procs) {
		t.Fatalf("ProcHashes has %d entries, want %d", len(res.ProcHashes), len(res.Prog.Procs))
	}
	for name, h := range res.ProcHashes {
		if len(h) != 64 {
			t.Fatalf("proc %s: hash %q is not a sha256 hex digest", name, h)
		}
	}
}
