package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"suifx/internal/minif"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

// TestCacheLRUEviction checks the bounding policy: a capacity-2 cache keeps
// the two most recently *used* entries (a hit refreshes recency) and counts
// every eviction.
func TestCacheLRUEviction(t *testing.T) {
	ws := workloads.All()
	if len(ws) < 3 {
		t.Skip("needs at least 3 workloads")
	}
	c := NewCacheCap(2)
	a, b, d := ws[0], ws[1], ws[2]

	c.MustAnalyze(a.Name, a.Source, Options{})
	c.MustAnalyze(b.Name, b.Source, Options{})
	// Touch a so b is now least recently used.
	c.MustAnalyze(a.Name, a.Source, Options{})
	// Inserting d must evict b, not a.
	c.MustAnalyze(d.Name, d.Source, Options{})

	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after 3 inserts into cap-2 cache = %+v, want 1 eviction and 2 entries", st)
	}
	c.MustAnalyze(a.Name, a.Source, Options{}) // still cached
	c.MustAnalyze(b.Name, b.Source, Options{}) // evicted: must re-analyze (a miss)
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 4 misses / 2 evictions", st)
	}
}

// TestCacheCapacityOneByteIdentical is the testing/quick property from the
// issue: even a capacity-1 cache — which thrashes on every alternation —
// returns byte-identical analyses to uncached Analyze, for any request
// sequence over the workload set.
func TestCacheCapacityOneByteIdentical(t *testing.T) {
	ws := workloads.All()
	uncached := make(map[string]string, len(ws))
	for _, w := range ws {
		uncached[w.Name] = dump(summary.Analyze(w.Fresh()))
	}
	c := NewCacheCap(1)
	property := func(picks []uint8) bool {
		if len(picks) > 8 {
			picks = picks[:8] // analyses are cheap but not free
		}
		for _, p := range picks {
			w := ws[int(p)%len(ws)]
			res, err := c.Analyze(w.Name, w.Source, Options{})
			if err != nil {
				t.Errorf("%s: %v", w.Name, err)
				return false
			}
			if got := dump(res.Sum); got != uncached[w.Name] {
				t.Errorf("%s: cached analysis differs from uncached", w.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries > 1 {
		t.Fatalf("capacity-1 cache holds %d entries", st.Entries)
	}
}

// TestCacheResetInFlightRace is the regression test for the Reset-vs-
// singleflight race: a Reset while an Analyze is in flight must not let the
// old run publish into (or remove from) the new generation. Run under
// -race. The gate hook pauses the in-flight analysis so the Reset and the
// new-generation request deterministically overlap it.
func TestCacheResetInFlightRace(t *testing.T) {
	w := workloads.All()[0]
	c := NewCacheCap(4)

	started := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	opt := Options{onProc: func(wave int, proc string) {
		gateOnce.Do(func() {
			close(started)
			<-release
		})
	}}

	firstDone := make(chan *Result, 1)
	go func() {
		res, _ := c.AnalyzeCtx(context.Background(), w.Name, w.Source, opt)
		firstDone <- res
	}()
	<-started

	c.Reset()

	// New generation: same key, computed independently of the gated run.
	second, err := c.Analyze(w.Name, w.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	first := <-firstDone
	if first == nil || second == nil {
		t.Fatal("both generations must produce results")
	}
	if first == second {
		t.Fatal("post-Reset request shared the pre-Reset in-flight result")
	}

	// The old run's completion handler must not have evicted or replaced
	// the new generation's entry: a third request is a pure hit on second.
	third, err := c.Analyze(w.Name, w.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if third != second {
		t.Fatal("old-generation completion disturbed the new generation's entry")
	}
}

// TestCacheCancelledRunSharedAndRetried: every waiter on a cancelled run
// observes the same cancellation, and the key is retried fresh afterwards.
func TestCacheCancelledRunSharedAndRetried(t *testing.T) {
	w := workloads.All()[0]
	c := NewCache()

	started := make(chan struct{})
	var gateOnce sync.Once
	ctx, cancel := context.WithCancel(context.Background())
	// Workers: 1 makes abandonment deterministic: the sequential path
	// re-checks ctx before every component, so the wave after the gated one
	// always observes the cancellation.
	opt := Options{Workers: 1, onProc: func(wave int, proc string) {
		gateOnce.Do(func() { close(started) })
		<-ctx.Done() // hold the run until cancellation
	}}

	const waiters = 4
	errs := make(chan error, waiters+1)
	go func() {
		_, err := c.AnalyzeCtx(ctx, w.Name, w.Source, opt)
		errs <- err
	}()
	<-started
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := c.AnalyzeCtx(context.Background(), w.Name, w.Source, Options{})
			errs <- err
		}()
	}
	// Every waiter registers on the in-flight entry as a cache hit; wait for
	// all of them before cancelling, or a late waiter would find the removed
	// entry and recompute fresh (succeeding with its own context).
	for c.Stats().Hits < waiters {
		time.Sleep(time.Millisecond)
	}
	cancel()
	for i := 0; i < waiters+1; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter %d: err = %v, want context.Canceled", i, err)
		}
	}

	// The cancelled entry must be gone: a fresh request succeeds.
	res, err := c.Analyze(w.Name, w.Source, Options{})
	if err != nil || res == nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after retry, want 1", st.Entries)
	}
}

// TestCacheWaiterOwnContext: a waiter whose own context ends gets its own
// error while the computing run continues and succeeds for everyone else.
func TestCacheWaiterOwnContext(t *testing.T) {
	w := workloads.All()[0]
	c := NewCache()

	started := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	opt := Options{onProc: func(wave int, proc string) {
		gateOnce.Do(func() { close(started) })
		<-release
	}}

	ownerDone := make(chan error, 1)
	go func() {
		_, err := c.AnalyzeCtx(context.Background(), w.Name, w.Source, opt)
		ownerDone <- err
	}()
	<-started

	wctx, wcancel := context.WithCancel(context.Background())
	wcancel()
	if _, err := c.AnalyzeCtx(wctx, w.Name, w.Source, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner run failed after a waiter left: %v", err)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want the completed run cached", st.Entries)
	}
}

// synthSource builds a deep chain of procedures (P1 calls P2 calls ... PN),
// each with a loop nest over a shared array — a long SCC chain whose waves
// a cancellation test can interrupt mid-schedule.
func synthSource(procs int) string {
	var b []byte
	add := func(s string, args ...any) { b = append(b, fmt.Sprintf(s+"\n", args...)...) }
	add("      PROGRAM synth")
	add("      REAL a(100)")
	add("      CALL p1(a)")
	add("      END")
	for i := 1; i <= procs; i++ {
		add("      SUBROUTINE p%d(a)", i)
		add("      REAL a(100)")
		add("      INTEGER i")
		add("      DO 10 i = 1, 99")
		add("        a(i) = a(i) + a(i+1)")
		add("10    CONTINUE")
		if i < procs {
			add("      CALL p%d(a)", i+1)
		}
		add("      END")
	}
	return string(b)
}

// TestAnalyzeCtxCancelStopsWaves: cancelling mid-schedule abandons the
// remaining SCC waves — the analysis returns the context error and analyzes
// strictly fewer procedures than the program has.
func TestAnalyzeCtxCancelStopsWaves(t *testing.T) {
	const procs = 60
	prog, err := minif.Parse("synth", synthSource(procs))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var analyzed int
	var mu sync.Mutex
	opt := Options{Workers: 1, onProc: func(wave int, proc string) {
		mu.Lock()
		analyzed++
		if analyzed == 5 {
			cancel()
		}
		mu.Unlock()
	}}
	a, err := AnalyzeCtx(ctx, prog, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a != nil {
		t.Fatal("cancelled analysis must return a nil result")
	}
	mu.Lock()
	n := analyzed
	mu.Unlock()
	// Two waves over procs+1 procedures would analyze 2*(procs+1) times.
	if n >= procs {
		t.Fatalf("analyzed %d procedures after cancellation at 5; waves were not abandoned", n)
	}
}
