// Package liveness implements the interprocedural array liveness analysis of
// Chapter 5: the top-down phase that propagates, from the end of the program
// back into every region, the summary of accesses still to come — so that
// for any region and array we can ask whether the values written are ever
// used again (live) or dead at the region's exit.
//
// Three algorithm variants are provided, matching §5.2.2–5.2.3:
//
//   - Full: context- and flow-sensitive with array sections (the proposed
//     algorithm, Figs 5-2/5-3);
//   - OneBit: the top-down phase keeps a single exposed-use bit per variable
//     (no kill, §5.2.3.1);
//   - FlowInsensitive: a variable is live at the end of a region if it is
//     live at the end of its parent or exposed in any sibling (§5.2.3.2).
//
// The bottom-up phase is the array data-flow analysis from package summary.
package liveness

import (
	"fmt"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/region"
	"suifx/internal/summary"
)

// Variant selects the algorithm precision (§5.2.3).
type Variant int

const (
	// Full is the proposed context-sensitive, flow-sensitive algorithm.
	Full Variant = iota
	// OneBit keeps one exposed bit per variable in the top-down phase.
	OneBit
	// FlowInsensitive ignores control flow between sibling regions.
	FlowInsensitive
)

func (v Variant) String() string {
	switch v {
	case Full:
		return "full"
	case OneBit:
		return "1-bit"
	default:
		return "flow-insensitive"
	}
}

// Info holds liveness results for one program.
type Info struct {
	Sum     *summary.Analysis
	Variant Variant
	// ExitSum maps each region to the summary of all accesses from its end
	// to the end of the program (Full variant).
	ExitSum map[*region.Region]*summary.Tuple
	// exitBits is the cheap variants' per-region exposed-after set.
	exitBits map[*region.Region]map[*ir.Symbol]bool

	encl  map[ir.Stmt]*region.Region // call/loop stmt -> region holding its After record
	sites map[string][]ir.CallSite   // callee name -> call sites, one program walk
}

// Analyze runs the top-down liveness phase with the chosen variant.
func Analyze(sum *summary.Analysis, v Variant) *Info {
	in := &Info{
		Sum:      sum,
		Variant:  v,
		ExitSum:  map[*region.Region]*summary.Tuple{},
		exitBits: map[*region.Region]map[*ir.Symbol]bool{},
		encl:     map[ir.Stmt]*region.Region{},
	}
	for r, m := range sum.After {
		for s := range m {
			in.encl[s] = r
		}
	}
	// Index all call sites up front: the per-proc propagation below queries
	// them once per procedure, and a fresh whole-program walk per query is
	// quadratic at corpus scale.
	in.sites = map[string][]ir.CallSite{}
	for _, pr := range sum.Prog.Procs {
		pr := pr
		ir.WalkStmts(pr.Body, func(s ir.Stmt) bool {
			if c, ok := s.(*ir.Call); ok {
				in.sites[c.Name] = append(in.sites[c.Name], ir.CallSite{Caller: pr, Call: c})
			}
			return true
		})
	}
	switch v {
	case Full:
		in.runFull()
	case OneBit:
		in.runOneBit()
	default:
		in.runFlowInsensitive()
	}
	return in
}

// ---- full variant ----

func (in *Info) runFull() {
	order, _ := in.Sum.Prog.TopDownOrder()
	for _, p := range order {
		top := in.Sum.Reg.ProcTop[p.Name]
		if p.IsMain {
			in.ExitSum[top] = summary.NewTuple()
		} else {
			in.ExitSum[top] = in.procExit(p)
		}
		in.downFull(top)
	}
}

// procExit computes S_{r0,P}: the meet over P's call sites of the summary
// from after the call to the end of the program, mapped to callee space.
func (in *Info) procExit(p *ir.Proc) *summary.Tuple {
	sites := in.sites[p.Name]
	var acc *summary.Tuple
	for _, cs := range sites {
		r := in.encl[ir.Stmt(cs.Call)]
		if r == nil || in.ExitSum[r] == nil {
			continue
		}
		after := summary.Compose(in.Sum.After[r][cs.Call], in.ExitSum[r])
		mapped := in.mapToCallee(cs, p, after)
		if acc == nil {
			acc = mapped
		} else {
			acc = summary.Meet(acc, mapped)
		}
	}
	if acc == nil {
		return summary.NewTuple() // never called: nothing follows
	}
	return acc
}

// downFull propagates exit summaries into the loops of one region.
func (in *Info) downFull(r *region.Region) {
	for _, c := range r.Children {
		if c.Kind != region.LoopRegion {
			continue
		}
		after := in.Sum.After[r][ir.Stmt(c.Loop)]
		if after == nil {
			after = summary.NewTuple()
		}
		in.ExitSum[c] = summary.Compose(after, in.ExitSum[r])
		// Loop body: one iteration may be followed by further iterations of
		// the same loop, then by everything after the loop (Fig 5-3):
		// R,E,W union with the loop's own summary; M from the exit path only.
		body := c.Body()
		in.ExitSum[body] = bodyExit(in.ExitSum[c], in.Sum.RegionSum[c])
		in.downFull(body)
	}
}

func bodyExit(afterLoop, loopSum *summary.Tuple) *summary.Tuple {
	out := afterLoop.Clone()
	for sym, la := range loopSum.Arrays {
		oa := out.Get(sym)
		oa.R = oa.R.Union(la.R)
		oa.E = oa.E.Union(la.E)
		oa.W = oa.W.Union(la.W).Union(la.M)
		// M stays: only the exit path's must-writes are guaranteed.
	}
	return out
}

// mapToCallee maps a caller-space "rest of execution" summary into the
// callee's name space (the paper's MapToCallee): formal parameters pick up
// the actual arguments' accesses (reshaped), canonical common keys pass
// through, caller-local symbols are dropped, and caller-specific symbolic
// names are projected away (widening — conservative for liveness).
func (in *Info) mapToCallee(cs ir.CallSite, callee *ir.Proc, t *summary.Tuple) *summary.Tuple {
	out := summary.NewTuple()
	// Actual base symbol -> formal.
	actualToFormal := map[*ir.Symbol]*ir.Symbol{}
	for i, arg := range cs.Call.Args {
		if i >= len(callee.Params) {
			break
		}
		switch x := arg.(type) {
		case *ir.VarRef:
			actualToFormal[in.Sum.Canon(x.Sym)] = callee.Params[i]
		case *ir.ArrayRef:
			actualToFormal[in.Sum.Canon(x.Sym)] = callee.Params[i]
		}
	}
	// Sorted iteration: distinct caller symbols can merge into one formal,
	// so the merge order must not depend on map iteration.
	for _, sym := range t.SortedSyms() {
		acc := t.Arrays[sym]
		if f, ok := actualToFormal[sym]; ok {
			merge(out.Get(f), transformToFormal(acc, f, sym))
			continue
		}
		if sym.Common != "" {
			merge(out.Get(sym), acc)
		}
		// Caller locals invisible to the callee are dropped.
	}
	return widenCallerNames(out)
}

// transformToFormal rewrites dimension variables of the actual's sections
// into the formal's index space when the shapes match; otherwise it widens
// to the whole formal array.
func transformToFormal(acc *summary.Access, formal, actual *ir.Symbol) *summary.Access {
	sameShape := len(formal.Dims) == len(actual.Dims)
	if sameShape {
		for i := range formal.Dims {
			if formal.Dims[i] != actual.Dims[i] {
				sameShape = false
				break
			}
		}
	}
	out := acc.Clone()
	out.Sym = formal
	if sameShape {
		return out
	}
	nd := len(formal.Dims)
	widen := func(s *lin.Section) *lin.Section {
		if s.IsEmpty() {
			return lin.EmptySection(nd)
		}
		return lin.WholeSection(nd)
	}
	out.R = widen(acc.R)
	out.E = widen(acc.E)
	out.W = widen(acc.W.Union(acc.M))
	out.M = lin.EmptySection(nd)
	out.Plain = widen(acc.Plain)
	out.PlainW = widen(acc.PlainW)
	out.Red = map[string]*lin.Section{}
	for op, s := range acc.Red {
		out.Red[op] = widen(s)
	}
	return out
}

func merge(dst, src *summary.Access) {
	dst.R = dst.R.Union(src.R)
	dst.E = dst.E.Union(src.E)
	dst.W = dst.W.Union(src.W)
	dst.M = dst.M.Union(src.M)
	dst.Plain = dst.Plain.Union(src.Plain)
	dst.PlainW = dst.PlainW.Union(src.PlainW)
	for op, s := range src.Red {
		if cur := dst.Red[op]; cur != nil {
			dst.Red[op] = cur.Union(s)
		} else {
			dst.Red[op] = s.Clone()
		}
	}
}

// widenCallerNames projects every caller symbolic name out of the mapped
// sections (callee space keeps only dimension variables). Must-writes
// referencing caller names are demoted.
func widenCallerNames(t *summary.Tuple) *summary.Tuple {
	return t.ProjectSyms(func(v string) bool { return !lin.IsDimVar(v) })
}

// ---- queries ----

// LiveAtExit returns the section of sym written in region r that is still
// read after r (the paper's L_r = E1 ∩ (W2 ∪ M2)); nil-safe only for the
// Full variant.
func (in *Info) LiveAtExit(r *region.Region, sym *ir.Symbol) *lin.Section {
	rs := in.Sum.RegionSum[r]
	if rs == nil {
		return lin.EmptySection(len(sym.Dims))
	}
	acc := rs.Lookup(sym)
	if acc == nil {
		return lin.EmptySection(len(sym.Dims))
	}
	writes := acc.Writes()
	if writes.IsEmpty() {
		return lin.EmptySection(len(sym.Dims))
	}
	exit := in.ExitSum[r]
	if exit == nil {
		return lin.EmptySection(len(sym.Dims))
	}
	ea := exit.Lookup(sym)
	if ea == nil {
		return lin.EmptySection(len(sym.Dims))
	}
	return ea.E.Intersect(writes)
}

// DeadAtExit reports whether every element of sym written by region r is
// dead (never read again) after r, under the chosen variant. Aliased
// common-block keys with different layouts are treated conservatively.
func (in *Info) DeadAtExit(r *region.Region, sym *ir.Symbol) bool {
	switch in.Variant {
	case Full:
		exit := in.ExitSum[r]
		if exit == nil {
			return false
		}
		if !in.LiveAtExit(r, sym).IsEmpty() {
			return false
		}
		for other, acc := range exit.Arrays {
			if other != sym && summary.Overlaps(other, sym) && !acc.E.IsEmpty() {
				return false
			}
		}
		return true
	default:
		bits := in.exitBits[r]
		if bits == nil {
			return false
		}
		if bits[sym] {
			return false
		}
		for other := range bits {
			if other != sym && summary.Overlaps(other, sym) && bits[other] {
				return false
			}
		}
		return true
	}
}

// Oracle adapts the analysis to the parallelizer's liveness hook.
func (in *Info) Oracle() func(r *region.Region, sym *ir.Symbol) bool {
	return func(r *region.Region, sym *ir.Symbol) bool { return in.DeadAtExit(r, sym) }
}

// ---- cheap variants ----

// exposedBits extracts the per-symbol exposed-use bit of a tuple under the
// 1-bit lattice (§5.2.3.1): the transfer function has no kill operator, so
// a region's exposed set degenerates to "read anywhere in the region" —
// exactly the R component of the precise bottom-up summary.
func exposedBits(t *summary.Tuple) map[*ir.Symbol]bool {
	out := map[*ir.Symbol]bool{}
	for sym, acc := range t.Arrays {
		if !acc.R.IsEmpty() {
			out[sym] = true
		}
	}
	return out
}

// runOneBit is §5.2.3.1: the top-down phase uses one exposed bit per
// variable and its transfer function has no kill operator.
func (in *Info) runOneBit() {
	order, _ := in.Sum.Prog.TopDownOrder()
	for _, p := range order {
		top := in.Sum.Reg.ProcTop[p.Name]
		bits := map[*ir.Symbol]bool{}
		if !p.IsMain {
			for _, cs := range in.sites[p.Name] {
				r := in.encl[ir.Stmt(cs.Call)]
				if r == nil {
					continue
				}
				// One-bit: no kill — union the After bits and the exit bits.
				if after := in.Sum.After[r][cs.Call]; after != nil {
					for s := range exposedBits(after) {
						bits[in.calleeBitKey(cs, p, s)] = true
					}
				}
				for s, b := range in.exitBits[r] {
					if b {
						bits[in.calleeBitKey(cs, p, s)] = true
					}
				}
			}
		}
		in.exitBits[top] = bits
		in.downBits(top, false)
	}
}

// calleeBitKey maps a caller-space symbol to the callee's view for the bit
// lattice: formals via the call's actual bindings, commons via canon keys.
func (in *Info) calleeBitKey(cs ir.CallSite, callee *ir.Proc, sym *ir.Symbol) *ir.Symbol {
	for i, arg := range cs.Call.Args {
		if i >= len(callee.Params) {
			break
		}
		var base *ir.Symbol
		switch x := arg.(type) {
		case *ir.VarRef:
			base = x.Sym
		case *ir.ArrayRef:
			base = x.Sym
		}
		if base != nil && in.Sum.Canon(base) == sym {
			return callee.Params[i]
		}
	}
	return sym // common canon key or caller-local (harmlessly unmatched)
}

// downBits propagates exposed-after bits into nested loops. With
// flowInsensitive, a region's bit set also unions the exposed bits of every
// sibling (§5.2.3.2); otherwise only the code after the loop contributes.
func (in *Info) downBits(r *region.Region, flowInsensitive bool) {
	for _, c := range r.Children {
		if c.Kind != region.LoopRegion {
			continue
		}
		bits := map[*ir.Symbol]bool{}
		if flowInsensitive {
			// Live after parent, or exposed anywhere in the parent region
			// (any sibling, including this loop itself).
			for s, b := range in.exitBits[r] {
				if b {
					bits[s] = true
				}
			}
			if ps := in.regionSummary(r); ps != nil {
				for s, b := range exposedBits(ps) {
					if b {
						bits[s] = true
					}
				}
			}
		} else {
			after := in.Sum.After[r][ir.Stmt(c.Loop)]
			if after != nil {
				for s := range exposedBits(after) {
					bits[s] = true
				}
			}
			for s, b := range in.exitBits[r] {
				if b {
					bits[s] = true
				}
			}
		}
		in.exitBits[c] = bits
		// Loop body: additionally the loop's own exposed uses (further
		// iterations may read).
		bodyBits := map[*ir.Symbol]bool{}
		for s, b := range bits {
			if b {
				bodyBits[s] = true
			}
		}
		for s := range exposedBits(in.Sum.RegionSum[c]) {
			bodyBits[s] = true
		}
		in.exitBits[c.Body()] = bodyBits
		in.downBits(c.Body(), flowInsensitive)
	}
}

// regionSummary returns the access summary of any region kind.
func (in *Info) regionSummary(r *region.Region) *summary.Tuple {
	if r.Kind == region.LoopBody {
		return in.Sum.BodySum[r]
	}
	return in.Sum.RegionSum[r]
}

// runFlowInsensitive is §5.2.3.2.
func (in *Info) runFlowInsensitive() {
	order, _ := in.Sum.Prog.TopDownOrder()
	for _, p := range order {
		top := in.Sum.Reg.ProcTop[p.Name]
		bits := map[*ir.Symbol]bool{}
		if !p.IsMain {
			for _, cs := range in.sites[p.Name] {
				r := in.encl[ir.Stmt(cs.Call)]
				if r == nil {
					continue
				}
				// Flow-insensitive: exposed anywhere in the calling region or
				// live after it.
				if rs := in.regionSummary(r); rs != nil {
					for s := range exposedBits(rs) {
						bits[in.calleeBitKey(cs, p, s)] = true
					}
				}
				for s, b := range in.exitBits[r] {
					if b {
						bits[in.calleeBitKey(cs, p, s)] = true
					}
				}
			}
		}
		in.exitBits[top] = bits
		in.downBits(top, true)
	}
}

// ---- statistics (Fig 5-7) ----

// DeadStats counts, across all loops, the modified variables and how many
// of them are dead at the loop exit.
func (in *Info) DeadStats() (loops, modified, dead int) {
	for _, r := range in.Sum.Reg.LoopRegions() {
		loops++
		rs := in.Sum.RegionSum[r]
		if rs == nil {
			continue
		}
		for _, sym := range rs.SortedSyms() {
			acc := rs.Arrays[sym]
			if !sym.IsArray() || acc.Writes().IsEmpty() {
				continue
			}
			modified++
			if in.DeadAtExit(r, sym) {
				dead++
			}
		}
	}
	return
}

// String describes the variant for reports.
func (in *Info) String() string {
	l, m, d := in.DeadStats()
	return fmt.Sprintf("liveness[%s]: %d loops, %d modified arrays, %d dead at exit", in.Variant, l, m, d)
}
