package liveness

import (
	"sort"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/region"
	"suifx/internal/summary"
)

// Split records one common-block live-range separation opportunity (§5.5,
// Fig 5-9): two overlapping layouts of the same block whose live ranges are
// disjoint, so the block can be split and the two variables laid out
// independently.
type Split struct {
	Block string
	A, B  *ir.Symbol
}

// CommonBlockSplits finds all splittable pairs of aliased common-block
// members. Per §5.5, the live ranges of two variables are disjoint if no
// code region writes into an array section that overlaps with any live
// section of the other variable at the end of that region. This test needs
// the kill in the full top-down phase: the weaker variants cannot tell that
// an intervening write covers the later reads, and report no splits.
func (in *Info) CommonBlockSplits() []Split {
	// Collect overlapping pairs of distinct canonical keys per block.
	byBlock := map[string][]*ir.Symbol{}
	seen := map[*ir.Symbol]bool{}
	collect := func(t *summary.Tuple) {
		if t == nil {
			return
		}
		for sym := range t.Arrays {
			if sym.Common != "" && sym.IsArray() && !seen[sym] {
				seen[sym] = true
				byBlock[sym.Common] = append(byBlock[sym.Common], sym)
			}
		}
	}
	for _, p := range in.Sum.Prog.Procs {
		collect(in.Sum.RegionSum[in.Sum.Reg.ProcTop[p.Name]])
	}
	var out []Split
	for blk, syms := range byBlock {
		sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
		for i, x := range syms {
			for _, y := range syms[i+1:] {
				if !summary.Overlaps(x, y) {
					continue
				}
				if in.disjointLiveRanges(x, y) {
					out = append(out, Split{Block: blk, A: x, B: y})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Block != out[j].Block {
			return out[i].Block < out[j].Block
		}
		return out[i].A.Name < out[j].A.Name
	})
	return out
}

// disjointLiveRanges checks every region: a region writing x must not have y
// live at its end, and vice versa.
func (in *Info) disjointLiveRanges(x, y *ir.Symbol) bool {
	if in.Variant != Full {
		// The cheap variants have no kill, so everything looks live; they
		// find no splits (the paper's point in §5.5).
		return false
	}
	regions := in.allRegions()
	for _, r := range regions {
		rs := in.Sum.RegionSum[r]
		exit := in.ExitSum[r]
		if rs == nil || exit == nil {
			continue
		}
		if in.writesIn(rs, x) && in.exposedAfter(exit, y) {
			return false
		}
		if in.writesIn(rs, y) && in.exposedAfter(exit, x) {
			return false
		}
	}
	return true
}

func (in *Info) allRegions() []*region.Region {
	var out []*region.Region
	for _, p := range in.Sum.Prog.Procs {
		out = append(out, in.Sum.Reg.ProcTop[p.Name])
	}
	out = append(out, in.Sum.Reg.LoopRegions()...)
	return out
}

func (in *Info) writesIn(t *summary.Tuple, sym *ir.Symbol) bool {
	acc := t.Lookup(sym)
	return acc != nil && !acc.Writes().IsEmpty()
}

func (in *Info) exposedAfter(exit *summary.Tuple, sym *ir.Symbol) bool {
	acc := exit.Lookup(sym)
	return acc != nil && !acc.E.IsEmpty()
}

// Contraction records one array-contraction opportunity (§5.6): inside the
// loop, the array has no upwards-exposed reads, its values are dead at loop
// exit, and each iteration's footprint is a fraction of the whole array —
// so the array can be contracted to that footprint (lower dimensionality or
// a scalar).
type Contraction struct {
	Loop *region.Region
	Sym  *ir.Symbol
	// FullElems is the declared array size; FootprintElems the per-iteration
	// working set it can be contracted to (0 when not statically constant).
	FullElems      int64
	FootprintElems int64
}

// Contractions finds the arrays contractable with respect to each loop.
func (in *Info) Contractions() []Contraction {
	var out []Contraction
	for _, r := range in.Sum.Reg.LoopRegions() {
		rs := in.Sum.RegionSum[r]
		if rs == nil {
			continue
		}
		lc := in.Sum.Ctx[r]
		for _, sym := range rs.SortedSyms() {
			if !sym.IsArray() {
				continue
			}
			acc := rs.Arrays[sym]
			if acc.Writes().IsEmpty() {
				continue
			}
			// §5.6 conditions: no upwards-exposed reads in the loop, dead at
			// loop exit.
			if !acc.E.IsEmpty() || !in.DeadAtExit(r, sym) {
				continue
			}
			body := in.Sum.BodySum[r.Body()]
			bacc := body.Lookup(sym)
			if bacc == nil {
				continue
			}
			fp := footprintElems(bacc, lc.IndexVar, sym)
			if fp > 0 && fp < sym.NElems() {
				out = append(out, Contraction{
					Loop: r, Sym: sym,
					FullElems: sym.NElems(), FootprintElems: fp,
				})
			}
		}
	}
	return out
}

// footprintElems bounds the number of distinct elements one iteration
// touches: dimensions whose variables are pinned to the loop index (an
// equality coupling) contribute 1; others contribute their full extent.
func footprintElems(acc *summary.Access, idx string, sym *ir.Symbol) int64 {
	writes := acc.Writes()
	if len(writes.Polys) == 0 {
		return 0
	}
	total := int64(1)
	for d, dim := range sym.Dims {
		pinned := true
		for _, p := range writes.Polys {
			if !dimPinned(p, d, idx) {
				pinned = false
				break
			}
		}
		if pinned {
			continue // contributes a single element per iteration
		}
		total *= dim.Size()
	}
	return total
}

// dimPinned reports whether the polyhedron forces dimension d to a single
// value per iteration: a pair of opposite constraints (an equality) on the
// dimension variable whose other terms are iteration-fixed (the loop index,
// invariants or per-iteration unknowns — anything but another dimension).
func dimPinned(p *lin.System, d int, idx string) bool {
	dv := lin.DimVar(d)
	have := map[string]bool{}
	for _, c := range p.Cons {
		have[c.E.String()] = true
	}
	for _, c := range p.Cons {
		co := c.E.CoefOf(dv)
		if co != 1 && co != -1 {
			continue
		}
		otherDims := false
		for _, v := range c.E.Vars() {
			if v != dv && lin.IsDimVar(v) {
				otherDims = true
				break
			}
		}
		if otherDims {
			continue
		}
		if have[c.E.Scale(-1).String()] {
			return true
		}
	}
	return false
}
