package liveness_test

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"suifx/internal/liveness"
	"suifx/internal/minif"
	"suifx/internal/summary"
)

// TestScaleFixture pins the liveness results on the minimized corpus-shaped
// fixture (internal/minif/testdata/scale_liveness.f). The fixture distills
// the program shape that exposed two pathological slowdowns at corpus scale
// — a whole-program call-site scan per procedure and deep constraint-system
// cloning on section unions — and this test guarantees the fixes kept the
// analysis results bit-identical: the full and 1-bit variants find the dead
// array, the flow-insensitive variant conservatively does not.
func TestScaleFixture(t *testing.T) {
	src, err := os.ReadFile("../minif/testdata/scale_liveness.f")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minif.Parse("scale_liveness.f", string(src))
	if err != nil {
		t.Fatal(err)
	}
	sum := summary.Analyze(prog)
	want := map[liveness.Variant][3]int{
		liveness.Full:            {10, 14, 1},
		liveness.OneBit:          {10, 14, 1},
		liveness.FlowInsensitive: {10, 14, 0},
	}
	for v, w := range want {
		in := liveness.Analyze(sum, v)
		l, m, d := in.DeadStats()
		if [3]int{l, m, d} != w {
			t.Errorf("%s: loops/modified/dead = %d/%d/%d, want %d/%d/%d", v, l, m, d, w[0], w[1], w[2])
		}
	}
}

// TestManyProcsLiveness guards against reintroducing the per-procedure
// whole-program call-site scan: a long call chain of small procedures must
// analyze in time linear in the chain length. The deadline is generous for
// slow CI machines but far below what the removed quadratic cost here.
func TestManyProcsLiveness(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	var b strings.Builder
	for p := 0; p < n; p++ {
		fmt.Fprintf(&b, "      SUBROUTINE CH%d(U)\n", p)
		b.WriteString("      REAL U\n      REAL LA(16)\n      INTEGER I\n")
		fmt.Fprintf(&b, "      COMMON /GC%d/ GS%d(16), GT%d\n", p%4, p%4, p%4)
		b.WriteString("      DO 10 I = 1, 16\n")
		fmt.Fprintf(&b, "        LA(I) = MOD(I * %d, 17) * 0.25 + U\n", 3+p%7)
		b.WriteString("10    CONTINUE\n      DO 20 I = 1, 12\n")
		fmt.Fprintf(&b, "        GS%d(I) = LA(I) * 0.5 + 1.5\n", p%4)
		fmt.Fprintf(&b, "        GT%d = GT%d + LA(I) * 0.125\n", p%4, p%4)
		b.WriteString("20    CONTINUE\n")
		if p+1 < n {
			fmt.Fprintf(&b, "      CALL CH%d(U * 0.5)\n", p+1)
		}
		b.WriteString("      END\n\n")
	}
	b.WriteString("      PROGRAM CHAIN\n")
	for c := 0; c < 4; c++ {
		fmt.Fprintf(&b, "      COMMON /GC%d/ GS%d(16), GT%d\n", c, c, c)
	}
	b.WriteString("      CALL CH0(1.5)\n")
	b.WriteString("      WRITE(*,*) GT0, GT1, GT2, GT3\n      END\n")

	prog, err := minif.Parse("chain.f", b.String())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sum := summary.Analyze(prog)
	in := liveness.Analyze(sum, liveness.Full)
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("liveness over %d-proc chain took %v; the top-down phase should be linear in chain length", n, elapsed)
	}
	if len(in.ExitSum) == 0 {
		t.Fatal("no exit summaries computed")
	}
}
