package liveness

import (
	"testing"

	"suifx/internal/minif"
	"suifx/internal/region"
	"suifx/internal/summary"
)

func analyzeAll(t *testing.T, src string) (*summary.Analysis, map[Variant]*Info) {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	sum := summary.Analyze(prog)
	return sum, map[Variant]*Info{
		Full:            Analyze(sum, Full),
		OneBit:          Analyze(sum, OneBit),
		FlowInsensitive: Analyze(sum, FlowInsensitive),
	}
}

func findLoop(t *testing.T, sum *summary.Analysis, id string) *region.Region {
	t.Helper()
	for _, r := range sum.Reg.LoopRegions() {
		if r.ID() == id {
			return r
		}
	}
	t.Fatalf("no loop %s", id)
	return nil
}

const tmpArraySrc = `
      PROGRAM main
      REAL a(100), tmp(100), out(100)
      INTEGER i, j
      DO 10 i = 1, 100
        DO 5 j = 1, 100
          tmp(j) = a(j) * 2.0
5       CONTINUE
        DO 8 j = 1, 100
          out(j) = out(j) + tmp(j)
8       CONTINUE
10    CONTINUE
      WRITE(*,*) out(1)
      END
`

func TestDeadAtExitTemporary(t *testing.T) {
	sum, infos := analyzeAll(t, tmpArraySrc)
	outer := findLoop(t, sum, "MAIN/10")
	tmp := sum.Canon(sum.Prog.Main().Lookup("TMP"))
	outv := sum.Canon(sum.Prog.Main().Lookup("OUT"))
	for _, v := range []Variant{Full, OneBit} {
		if !infos[v].DeadAtExit(outer, tmp) {
			t.Errorf("%v: tmp should be dead at MAIN/10 exit", v)
		}
	}
	// Flow-insensitive: tmp is exposed in a sibling (the loop itself), so it
	// conservatively stays live — the Fig 5-7 precision gap.
	if infos[FlowInsensitive].DeadAtExit(outer, tmp) {
		t.Error("flow-insensitive: tmp should look live at MAIN/10 exit")
	}
	for v, in := range infos {
		if in.DeadAtExit(outer, outv) {
			t.Errorf("%v: out is printed afterwards, must be live", v)
		}
	}
}

func TestInnerLoopLiveness(t *testing.T) {
	// tmp written by loop 5 is read by loop 8 in the same iteration: live
	// at loop 5's exit, dead at loop 8's exit.
	sum, infos := analyzeAll(t, tmpArraySrc)
	l5 := findLoop(t, sum, "MAIN/5")
	l8 := findLoop(t, sum, "MAIN/8")
	tmp := sum.Canon(sum.Prog.Main().Lookup("TMP"))
	full := infos[Full]
	if full.DeadAtExit(l5, tmp) {
		t.Error("tmp is read by loop 8: live at loop 5 exit")
	}
	if !full.DeadAtExit(l8, tmp) {
		t.Error("tmp is rewritten next iteration before any read: dead at loop 8 exit")
	}
	// The 1-bit variant has no kill: the loop-5 rewrite cannot cover the
	// loop-8 read of tmp from the next iteration... at loop 8's exit the
	// next read of tmp (iteration i+1's loop 8) is preceded by a full
	// rewrite in iteration i+1's loop 5, which only the killing transfer
	// function can see.
	if infos[OneBit].DeadAtExit(l8, tmp) {
		t.Error("1-bit variant should conservatively report tmp live at loop 8 exit")
	}
	if infos[FlowInsensitive].DeadAtExit(l8, tmp) {
		t.Error("flow-insensitive variant should report tmp live at loop 8 exit")
	}
}

func TestVariantPrecisionOrdering(t *testing.T) {
	// dead(full) >= dead(1-bit) >= dead(flow-insensitive), per Fig 5-7.
	_, infos := analyzeAll(t, tmpArraySrc)
	_, _, dFull := infos[Full].DeadStats()
	_, _, d1 := infos[OneBit].DeadStats()
	_, _, dFI := infos[FlowInsensitive].DeadStats()
	if dFull < d1 || d1 < dFI {
		t.Fatalf("precision ordering violated: full=%d, 1bit=%d, fi=%d", dFull, d1, dFI)
	}
}

const hydro2dSrc = `
      SUBROUTINE tistep
      COMMON /varh/ vz(10,10)
      REAL x
      INTEGER i, j
      DO 10 j = 1, 10
        DO 10 i = 1, 10
          x = vz(i,j)
10    CONTINUE
      END
      SUBROUTINE trans2
      COMMON /varh/ vz1(0:10,10)
      INTEGER i, j
      DO 10 j = 1, 10
        DO 10 i = 0, 10
          vz1(i,j) = i + j
10    CONTINUE
      END
      SUBROUTINE fct
      COMMON /varh/ vz1(0:10,10)
      REAL y
      INTEGER i, j
      DO 10 j = 1, 10
        DO 10 i = 0, 10
          y = vz1(i,j)
10    CONTINUE
      END
      SUBROUTINE advnce
      CALL trans2
      CALL fct
      END
      SUBROUTINE vps
      COMMON /varh/ vz(10,10)
      INTEGER i, j
      DO 10 j = 1, 10
        DO 10 i = 1, 10
          vz(i,j) = i * j
10    CONTINUE
      END
      SUBROUTINE check
      CALL vps
      END
      PROGRAM hydro2d
      INTEGER icnt
      DO 100 icnt = 1, 10
        CALL tistep
        CALL advnce
        CALL check
100   CONTINUE
      END
`

func TestCommonBlockSplitHydro2d(t *testing.T) {
	// Fig 5-9: vz and vz1 share /varh/ with different shapes but disjoint
	// live ranges — the full algorithm splits them, the weaker ones cannot.
	_, infos := analyzeAll(t, hydro2dSrc)
	splits := infos[Full].CommonBlockSplits()
	if len(splits) != 1 {
		t.Fatalf("full variant splits = %v, want exactly 1", splits)
	}
	if splits[0].Block != "VARH" {
		t.Fatalf("split block = %s", splits[0].Block)
	}
	if got := infos[OneBit].CommonBlockSplits(); len(got) != 0 {
		t.Fatalf("1-bit variant should find no splits, got %v", got)
	}
}

func TestNoSplitWhenLiveRangesOverlap(t *testing.T) {
	// vz's value flows across the same region where vz1 is written: no split.
	src := `
      SUBROUTINE wr1
      COMMON /blk/ v1(100)
      INTEGER i
      DO 10 i = 1, 100
        v1(i) = i
10    CONTINUE
      END
      SUBROUTINE rd1
      COMMON /blk/ v1(100)
      REAL x
      x = v1(50)
      END
      SUBROUTINE wr2
      COMMON /blk/ v2(0:99)
      v2(0) = 1.0
      END
      PROGRAM main
      CALL wr1
      CALL wr2
      CALL rd1
      END
`
	_, infos := analyzeAll(t, src)
	if got := infos[Full].CommonBlockSplits(); len(got) != 0 {
		t.Fatalf("interleaved live ranges must not split, got %v", got)
	}
}

func TestContractionPsmoo(t *testing.T) {
	// Fig 5-11(b): inside the j loop, t(*,j) and d(*,j) are produced and
	// consumed within the iteration; both are dead afterwards, so they
	// contract to one column.
	src := `
      PROGRAM main
      REAL d(100,100), t(100,100), r(100,100)
      INTEGER i, j
      DO 50 j = 2, 99
        d(1,j) = 0.0
        DO 30 i = 2, 99
          t(i,j) = d(i-1,j) * 2.0
          d(i,j) = t(i,j) * 0.5
30      CONTINUE
        DO 40 i = 2, 99
          r(i,j) = d(i,j) * 3.0
40      CONTINUE
50    CONTINUE
      WRITE(*,*) r(5,5)
      END
`
	sum, infos := analyzeAll(t, src)
	full := infos[Full]
	cons := full.Contractions()
	byName := map[string]Contraction{}
	for _, c := range cons {
		if c.Loop.ID() == "MAIN/50" {
			byName[c.Sym.Name] = c
		}
	}
	if _, ok := byName["T"]; !ok {
		t.Fatalf("t should contract in MAIN/50: %v", cons)
	}
	if _, ok := byName["D"]; !ok {
		t.Fatalf("d should contract in MAIN/50: %v", cons)
	}
	if _, ok := byName["R"]; ok {
		t.Fatal("r is live after the loop; must not contract")
	}
	// One column per iteration: footprint 100 of 10000.
	if c := byName["T"]; c.FootprintElems != 100 || c.FullElems != 10000 {
		t.Fatalf("T contraction footprint = %d/%d, want 100/10000", c.FootprintElems, c.FullElems)
	}
	_ = sum
}

func TestProcExitMeetOverCallSites(t *testing.T) {
	// f's writes are dead after one call site but live after the other:
	// the meet must keep them live.
	src := `
      SUBROUTINE f
      COMMON /blk/ w(10)
      INTEGER i
      DO 10 i = 1, 10
        w(i) = i
10    CONTINUE
      END
      PROGRAM main
      COMMON /blk/ w(10)
      REAL x
      CALL f
      x = w(3)
      CALL f
      END
`
	sum, infos := analyzeAll(t, src)
	full := infos[Full]
	ftop := sum.Reg.ProcTop["F"]
	w := sum.Canon(sum.Prog.Proc("F").Lookup("W"))
	exit := full.ExitSum[ftop]
	acc := exit.Lookup(w)
	if acc == nil || acc.E.IsEmpty() {
		t.Fatal("w must be exposed after F (read at first call site)")
	}
	l10 := findLoop(t, sum, "F/10")
	if full.DeadAtExit(l10, w) {
		t.Fatal("w live after first call: not dead at F/10 exit")
	}
}

func TestLiveAtExitSection(t *testing.T) {
	// Only w(1:5) is read afterwards: the live section is a strict subset.
	src := `
      PROGRAM main
      REAL w(100), s
      INTEGER i
      DO 10 i = 1, 100
        w(i) = i
10    CONTINUE
      s = 0.0
      DO 20 i = 1, 5
        s = s + w(i)
20    CONTINUE
      END
`
	sum, infos := analyzeAll(t, src)
	full := infos[Full]
	l10 := findLoop(t, sum, "MAIN/10")
	w := sum.Canon(sum.Prog.Main().Lookup("W"))
	live := full.LiveAtExit(l10, w)
	if !live.ContainsIndex([]int64{3}, nil) {
		t.Fatalf("live section %v should contain 3", live)
	}
	if live.ContainsIndex([]int64{50}, nil) {
		t.Fatalf("live section %v should exclude 50", live)
	}
	if full.DeadAtExit(l10, w) {
		t.Fatal("w partially live: not dead")
	}
}
