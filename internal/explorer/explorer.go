// Package explorer is the SUIF Explorer itself (Chapter 2): it drives the
// whole pipeline — parallelize, instrument and profile an execution, run the
// dynamic dependence analyzer — and hosts the Parallelization Guru (§2.6)
// that ranks target loops by coverage and granularity, plus the assertion
// checkers (§2.8) that vet user claims against static and dynamic
// information before re-parallelizing.
package explorer

import (
	"fmt"
	"sort"

	"suifx/internal/depend"
	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/issa"
	"suifx/internal/liveness"
	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/region"
	"suifx/internal/summary"
)

// Options configure a session.
type Options struct {
	Model *machine.Model
	// UseReductions and UseLiveness select the compiler configuration.
	UseReductions bool
	UseLiveness   bool
	// CoverageCutoff and GranularityCutoffMs select "important" loops
	// (§4.3.2's 2% and 0.05 ms defaults).
	CoverageCutoff      float64
	GranularityCutoffMs float64
	// MaxOps bounds the profiling run.
	MaxOps int64
	// Workers bounds the analysis worker pool (0 = GOMAXPROCS).
	Workers int
}

// DefaultOptions mirror the paper's setup.
func DefaultOptions() Options {
	return Options{
		Model:               machine.AlphaServer8400(),
		UseReductions:       true,
		UseLiveness:         true,
		CoverageCutoff:      0.02,
		GranularityCutoffMs: 0.05,
	}
}

// Session is one Explorer run over a program. Its pipeline is split into
// resumable steps — Analyze (static pipeline over the incremental driver),
// Profile (one instrumented execution) — so a hosting layer (the suifxd
// session subsystem) can drive, observe, and re-enter each step; NewSession
// runs them all for the classic one-shot construction.
type Session struct {
	Prog *ir.Program
	Opts Options

	// Inc is the incremental analysis engine: assertion changes dirty only
	// the containing procedure's SCC and its callers, so interactive
	// re-analysis recomputes a handful of summaries instead of the program.
	Inc *driver.Incremental
	// LastInc reports what the most recent (re-)analysis recomputed.
	LastInc driver.IncStats

	Sum  *summary.Analysis
	Live *liveness.Info
	Par  *parallel.Result
	Prof *exec.Profiler
	Dyn  *exec.DynDep
	in   *exec.Interp

	Assertions map[string]parallel.AssertSet
	// Log records the Guru's narration.
	Log []string

	graph *issa.Graph // lazy interprocedural SSA graph for slices and Why
}

// NewSession analyzes and profiles the program: NewUnstarted + Start.
func NewSession(prog *ir.Program, opts Options) (*Session, error) {
	s := NewUnstarted(driver.NewIncremental(prog, driver.Options{Workers: opts.Workers}), opts)
	if err := s.Start(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewUnstarted builds a session around an existing incremental analysis
// (possibly branched off a cached whole-program result) without running any
// step yet.
func NewUnstarted(inc *driver.Incremental, opts Options) *Session {
	if opts.Model == nil {
		opts.Model = machine.AlphaServer8400()
	}
	return &Session{
		Prog:       inc.Prog(),
		Opts:       opts,
		Inc:        inc,
		Assertions: map[string]parallel.AssertSet{},
	}
}

// Start runs the remaining pipeline steps in order.
func (s *Session) Start() error {
	if err := s.Analyze(); err != nil {
		return err
	}
	return s.Profile()
}

// Analyze is the static-pipeline step: it brings the incremental analysis
// up to date and (re-)parallelizes. On the first call everything dirty is
// computed; afterwards it is the re-analysis step of the Guru dialogue.
func (s *Session) Analyze() error { return s.Reanalyze() }

// Reanalyze re-runs the static pipeline with the current assertions,
// incrementally: only procedures the incremental driver marked dirty are
// re-summarized, and only loops in those procedures re-run dependence
// analysis; everything else is reused. LastInc records the recompute/reuse
// split.
func (s *Session) Reanalyze() error {
	sum, st := s.Inc.Analyze()
	s.Sum = sum
	s.LastInc = st
	cfg := parallel.Config{
		UseReductions: s.Opts.UseReductions,
		Assertions:    s.Assertions,
	}
	if s.Opts.UseLiveness {
		s.Live = liveness.Analyze(s.Sum, liveness.Full)
		cfg.DeadAtExit = s.Live.Oracle()
	}
	dirty := st.RecomputedSet()
	s.Par = parallel.ReparallelizeWith(s.Par, s.Sum, cfg, func(proc string) bool { return dirty[proc] })
	return nil
}

// Profile is the dynamic step: it runs the program once, sequentially, with
// the Loop Profile Analyzer and the Dynamic Dependence Analyzer attached
// (§2.3.1). It requires Analyze and runs at most once per session — the
// profile is input-bound, not assertion-bound, so re-analysis never
// invalidates it.
func (s *Session) Profile() error {
	if s.Prof != nil {
		return nil
	}
	if s.Par == nil {
		return fmt.Errorf("explorer: Profile requires Analyze first")
	}
	in := exec.New(s.Prog)
	in.MaxOps = s.Opts.MaxOps
	prof := exec.NewProfiler(in)
	dyn := exec.NewDynDep(in)
	// The analyzer ignores variables the compiler already resolved
	// (inductions and reductions, §2.5.2).
	dyn.IgnoreVar = s.ignoreVarFn(in)
	if err := in.Run(); err != nil {
		return fmt.Errorf("explorer: profiling run failed: %w", err)
	}
	s.in, s.Prof, s.Dyn = in, prof, dyn
	return nil
}

// Graph returns the session's interprocedural SSA graph for slicing, built
// lazily and cached — the program is immutable for the session's lifetime.
func (s *Session) Graph() *issa.Graph {
	if s.graph == nil {
		s.graph = issa.Build(s.Prog)
	}
	return s.graph
}

// ignoreVarFn suppresses dynamic dependences on addresses belonging to
// variables classified as index or reduction for the loop.
func (s *Session) ignoreVarFn(in *exec.Interp) func(l *ir.DoLoop, addr int64) bool {
	type rng struct{ lo, hi int64 }
	ignore := map[*ir.DoLoop][]rng{}
	for _, li := range s.Par.Ordered {
		proc := li.Region.Proc.Name
		for _, vr := range li.Dep.Vars {
			if vr.Class != depend.ClassIndex && vr.Class != depend.ClassReduction {
				continue
			}
			if lo, hi, ok := in.SymRange(proc, vr.Sym.Name); ok {
				ignore[li.Region.Loop] = append(ignore[li.Region.Loop], rng{lo, hi})
			}
		}
	}
	return func(l *ir.DoLoop, addr int64) bool {
		for _, r := range ignore[l] {
			if addr >= r.lo && addr <= r.hi {
				return true
			}
		}
		return false
	}
}

// Target is one Guru worklist entry (§2.6): an important sequential loop.
type Target struct {
	Loop          *parallel.LoopInfo
	Profile       *exec.LoopProfile
	CoveragePct   float64
	GranularityMs float64
	DynDeps       int64
	StaticDeps    int
	Important     bool
}

// ID returns the loop identifier.
func (t *Target) ID() string { return t.Loop.ID() }

// Targets builds the Guru's ranked list: sequential loops with no I/O, not
// dynamically nested under a parallel loop, sorted by decreasing execution
// time; each annotated with dynamic and static dependence counts.
func (s *Session) Targets() []Target {
	total := float64(s.Prof.TotalOps())
	var out []Target
	for _, li := range s.Par.SequentialLoops() {
		if li.Dep.HasIO {
			continue
		}
		lp := s.Prof.Of(li.Region.Loop)
		if lp == nil {
			continue // never executed
		}
		t := Target{
			Loop:       li,
			Profile:    lp,
			DynDeps:    s.Dyn.Carried(li.Region.Loop),
			StaticDeps: len(li.Dep.Blocking),
		}
		if total > 0 {
			t.CoveragePct = float64(lp.TotalOps) / total * 100
		}
		t.GranularityMs = opsToMs(s.Opts.Model, lp.OpsPerInvocation())
		t.Important = t.CoveragePct >= s.Opts.CoverageCutoff*100 &&
			t.GranularityMs >= s.Opts.GranularityCutoffMs
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile.TotalOps != out[j].Profile.TotalOps {
			return out[i].Profile.TotalOps > out[j].Profile.TotalOps
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

func opsToMs(m *machine.Model, ops float64) float64 {
	return ops * m.CyclesPerOp / (m.ClockMHz * 1e3)
}

// CoverageGranularity reports the automatically-parallelized coverage and
// granularity metrics the Guru displays (§2.6).
func (s *Session) CoverageGranularity() (coverage float64, granularityMs float64) {
	var loops []*ir.DoLoop
	var ops, invs float64
	for _, li := range s.Par.ParallelLoops() {
		loops = append(loops, li.Region.Loop)
		if lp := s.Prof.Of(li.Region.Loop); lp != nil {
			ops += float64(lp.TotalOps)
			invs += float64(lp.Invocations)
		}
	}
	coverage = s.Prof.Coverage(loops)
	if invs > 0 {
		granularityMs = opsToMs(s.Opts.Model, ops/invs)
	}
	return
}

// ---- assertion checking (§2.8) ----

// Rejection codes: why the assertion checker refused a user claim.
const (
	RejectUnknownLoop  = "unknown-loop"
	RejectUnknownVar   = "unknown-variable"
	RejectContradicted = "contradicted"
)

// RejectError is a structured assertion rejection: the checker refuses the
// claim and says why, instead of silently dropping it. Code is one of the
// Reject* constants; Reason is the human-readable explanation.
type RejectError struct {
	Code   string
	Reason string
}

func (e *RejectError) Error() string { return e.Reason }

func rejectf(code, format string, args ...interface{}) *RejectError {
	return &RejectError{Code: code, Reason: fmt.Sprintf(format, args...)}
}

// AssertPrivate records "variable is privatizable in loop" after checking
// consistency. If the variable is a common-block array also accessed by
// procedures called from the loop, the assertion is extended automatically
// with a warning, as the paper describes. The accepted assertion dirties
// the loop's procedure in the incremental driver and re-analyzes.
func (s *Session) AssertPrivate(loopID, varName string) ([]string, error) {
	li := s.Par.LoopByID(loopID)
	if li == nil {
		return nil, rejectf(RejectUnknownLoop, "explorer: unknown loop %s", loopID)
	}
	var warnings []string
	proc := li.Region.Proc
	sym := proc.Lookup(varName)
	if sym == nil {
		return nil, rejectf(RejectUnknownVar, "explorer: no variable %s in %s", varName, proc.Name)
	}
	// Cross-procedure consistency: a privatized common array must be
	// privatized in every called procedure that accesses it.
	if sym.Common != "" {
		for _, c := range li.Region.AllCallSites() {
			callee := s.Prog.ByName[c.Name]
			if callee == nil {
				continue
			}
			if other := callee.Lookup(varName); other != nil && other.Common == sym.Common {
				warnings = append(warnings,
					fmt.Sprintf("privatizing /%s/ %s for callee %s automatically", sym.Common, varName, callee.Name))
			}
		}
	}
	as := s.Assertions[loopID]
	if as.Private == nil {
		as.Private = map[string]bool{}
	}
	if as.Independent == nil {
		as.Independent = map[string]bool{}
	}
	as.Private[varName] = true
	s.Assertions[loopID] = as
	s.logf("assert private %s in %s", varName, loopID)
	s.Inc.Invalidate(proc.Name)
	return warnings, s.Reanalyze()
}

// AssertIndependent records "accesses to variable are independent in loop"
// after checking it against the Dynamic Dependence Analyzer: if a true
// dependence was observed for the profiled input, the assertion is refuted
// with a RejectError rather than silently dropped, and an assertion naming
// a variable the procedure does not declare is likewise rejected.
func (s *Session) AssertIndependent(loopID, varName string) error {
	li := s.Par.LoopByID(loopID)
	if li == nil {
		return rejectf(RejectUnknownLoop, "explorer: unknown loop %s", loopID)
	}
	proc := li.Region.Proc
	if proc.Lookup(varName) == nil {
		return rejectf(RejectUnknownVar, "explorer: no variable %s in %s", varName, proc.Name)
	}
	if lo, hi, ok := s.in.SymRange(proc.Name, varName); ok {
		if n := s.Dyn.CarriedInRange(li.Region.Loop, lo, hi); n > 0 {
			return rejectf(RejectContradicted,
				"explorer: assertion contradicted: %d dynamic flow dependences observed on %s in %s",
				n, varName, loopID)
		}
	}
	as := s.Assertions[loopID]
	if as.Private == nil {
		as.Private = map[string]bool{}
	}
	if as.Independent == nil {
		as.Independent = map[string]bool{}
	}
	as.Independent[varName] = true
	s.Assertions[loopID] = as
	s.logf("assert independent %s in %s", varName, loopID)
	s.Inc.Invalidate(proc.Name)
	return s.Reanalyze()
}

func (s *Session) logf(format string, args ...interface{}) {
	s.Log = append(s.Log, fmt.Sprintf(format, args...))
}

// Workload converts the session's measurements into a machine-model
// workload for speedup prediction.
func (s *Session) Workload() machine.Workload {
	var w machine.Workload
	// Only chosen parallel loops appear: the parallelizer guarantees they
	// are dynamically disjoint, so their times partition the run against
	// the serial remainder.
	var loopOps int64
	for _, li := range s.Par.Ordered {
		if !li.Chosen {
			continue
		}
		lp := s.Prof.Of(li.Region.Loop)
		if lp == nil {
			continue
		}
		loopOps += lp.TotalOps
		lw := machine.LoopWork{
			ID:          li.ID(),
			Invocations: lp.Invocations,
			TotalOps:    lp.TotalOps,
			Parallel:    true,
		}
		for _, vr := range li.Dep.Vars {
			switch vr.Class {
			case depend.ClassReduction:
				lw.ReductionElems += vr.Sym.NElems()
				lw.StaggeredFinalize = true
			case depend.ClassPrivate:
				lw.PrivateElems += vr.Sym.NElems()
				if vr.NeedsFinalization {
					lw.FinalizeElems += vr.Sym.NElems()
				}
			}
		}
		lw.FootprintElems = s.loopFootprint(li.Region)
		w.Loops = append(w.Loops, lw)
	}
	w.SerialOps = s.Prof.TotalOps() - loopOps
	if w.SerialOps < 0 {
		w.SerialOps = 0
	}
	return w
}

func enclosed(r *region.Region) bool { return r.EnclosingLoop() != nil }

// loopFootprint estimates the loop's working set from the symbols its
// summary touches.
func (s *Session) loopFootprint(r *region.Region) int64 {
	rs := s.Sum.RegionSum[r]
	if rs == nil {
		return 0
	}
	var n int64
	for _, sym := range rs.SortedSyms() {
		if sym.IsArray() {
			n += sym.NElems()
		}
	}
	return n
}
