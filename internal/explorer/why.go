package explorer

import (
	"fmt"
	"strings"
)

// WhyReport is the Chapter-2 "why (not) parallel" explanation for one loop,
// with the source lines a visualizer needs: the loop's verdict, the
// blocking variables with the compiler's reason and the lines where each is
// referenced inside the loop, and the annotated source snippet.
type WhyReport struct {
	LoopID string `json:"loop"`
	Proc   string `json:"proc"`
	Lines  [2]int `json:"lines"`

	Parallelizable bool `json:"parallelizable"`
	Chosen         bool `json:"chosen"`
	UnderParallel  bool `json:"under_parallel,omitempty"`
	HasIO          bool `json:"has_io,omitempty"`

	CoveragePct   float64 `json:"coverage_pct"`
	GranularityMs float64 `json:"granularity_ms"`
	DynDeps       int64   `json:"dyn_deps"`

	// Verdict is the one-line human summary the Guru narrates.
	Verdict string `json:"verdict"`
	// Blocking lists the unresolved variables with reasons and use lines.
	Blocking []BlockedVar `json:"blocking,omitempty"`
	// Source is the loop's annotated source snippet (capped).
	Source []SourceLine `json:"source,omitempty"`
}

// BlockedVar is one variable the parallelizer could not resolve.
type BlockedVar struct {
	Var    string `json:"var"`
	Reason string `json:"reason"`
	// Lines are the source lines inside the loop referencing the variable —
	// the anchors a slice or Codeview visualization starts from.
	Lines []int `json:"lines,omitempty"`
	// DynDeps counts dynamic flow dependences observed on the variable's
	// storage for the profiled input (0 is the paper's hint that a PRIVATE
	// or INDEPENDENT assertion is plausible).
	DynDeps int64 `json:"dyn_deps"`
}

// SourceLine is one annotated line of the loop body.
type SourceLine struct {
	Line    int    `json:"line"`
	Text    string `json:"text"`
	Blocked bool   `json:"blocked,omitempty"` // references a blocking variable
}

// maxWhySource caps the snippet so explanations of huge loops stay wire-friendly.
const maxWhySource = 60

// Why explains one loop's parallelization verdict. Unknown loop IDs return
// a RejectError with code RejectUnknownLoop.
func (s *Session) Why(loopID string) (*WhyReport, error) {
	li := s.Par.LoopByID(loopID)
	if li == nil {
		return nil, rejectf(RejectUnknownLoop, "explorer: unknown loop %s", loopID)
	}
	lo, hi := li.Region.Lines()
	r := &WhyReport{
		LoopID:         li.ID(),
		Proc:           li.Region.Proc.Name,
		Lines:          [2]int{lo, hi},
		Parallelizable: li.Dep.Parallelizable,
		Chosen:         li.Chosen,
		UnderParallel:  li.UnderParallel,
		HasIO:          li.Dep.HasIO,
	}
	if s.Prof != nil {
		if lp := s.Prof.Of(li.Region.Loop); lp != nil {
			if total := float64(s.Prof.TotalOps()); total > 0 {
				r.CoveragePct = float64(lp.TotalOps) / total * 100
			}
			r.GranularityMs = opsToMs(s.Opts.Model, lp.OpsPerInvocation())
		}
	}
	if s.Dyn != nil {
		r.DynDeps = s.Dyn.Carried(li.Region.Loop)
	}

	g := s.Graph()
	blockedLines := map[int]bool{}
	for _, b := range li.Dep.Blocking {
		bv := BlockedVar{Var: b.Sym.Name, Reason: b.Reason}
		for ln := lo; ln <= hi; ln++ {
			if len(g.FindUse(r.Proc, b.Sym.Name, ln)) > 0 {
				bv.Lines = append(bv.Lines, ln)
				blockedLines[ln] = true
			}
		}
		if s.Dyn != nil && s.in != nil {
			if alo, ahi, ok := s.in.SymRange(r.Proc, b.Sym.Name); ok {
				bv.DynDeps = s.Dyn.CarriedInRange(li.Region.Loop, alo, ahi)
			}
		}
		r.Blocking = append(r.Blocking, bv)
	}
	r.Verdict = verdict(r)

	for ln := lo; ln <= hi && len(r.Source) < maxWhySource; ln++ {
		text := strings.TrimRight(s.Prog.SourceLine(ln), " \t")
		if text == "" {
			continue
		}
		r.Source = append(r.Source, SourceLine{Line: ln, Text: text, Blocked: blockedLines[ln]})
	}
	return r, nil
}

func verdict(r *WhyReport) string {
	switch {
	case r.Chosen:
		return "parallel: chosen as an outermost parallel loop"
	case r.Parallelizable && r.UnderParallel:
		return "parallelizable, but already runs inside a chosen parallel loop"
	case r.Parallelizable:
		return "parallelizable, but an enclosing loop was chosen instead"
	case r.HasIO:
		return "sequential: the loop performs I/O"
	case len(r.Blocking) > 0:
		names := make([]string, len(r.Blocking))
		for i, b := range r.Blocking {
			names[i] = b.Var
		}
		return fmt.Sprintf("sequential: blocked by %s", strings.Join(names, ", "))
	default:
		return "sequential"
	}
}
