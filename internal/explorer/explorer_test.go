package explorer

import (
	"strings"
	"testing"

	"suifx/internal/minif"
	"suifx/internal/viz"
)

// A miniature mdg: the outer loop is blocked by a conditionally-written
// array (rl) the compiler cannot privatize; the user's assertion unlocks it.
const miniMdg = `
      PROGRAM mdg
      REAL rs(100), rl(100), res(300), cut2, acc, chain
      INTEGER i, j, k, kc
      cut2 = 90.0
      chain = 1.0
      DO 900 i = 1, 300
        chain = chain * 0.5 + i
900   CONTINUE
      DO 1000 i = 1, 300
        acc = 0.0
        DO 1105 j = 1, 40
          DO 1100 k = 1, 9
            rs(k) = MOD(i * 17 + k * 31 + j, 97)
            acc = acc + rs(k) * 0.001
1100      CONTINUE
1105    CONTINUE
        kc = 0
        DO 1110 k = 1, 9
          IF (rs(k) .GT. cut2) kc = kc + 1
1110    CONTINUE
        IF (kc .NE. 9) THEN
          DO 1130 k = 2, 5
            IF (rs(k+4) .LE. cut2) rl(k+4) = rs(k) * 2.0
1130      CONTINUE
          IF (kc .EQ. 0) THEN
            DO 1140 k = 11, 14
              res(i) = res(i) + rl(k-5)
1140        CONTINUE
          ENDIF
        ENDIF
        res(i) = res(i) + acc
1000  CONTINUE
      END
`

func newTestSession(t *testing.T) *Session {
	t.Helper()
	prog := minif.MustParse("mdg", miniMdg)
	s, err := NewSession(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGuruFindsTarget(t *testing.T) {
	s := newTestSession(t)
	targets := s.Targets()
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	top := targets[0]
	if top.ID() != "MDG/1000" {
		t.Fatalf("top target = %s, want MDG/1000", top.ID())
	}
	if top.StaticDeps == 0 {
		t.Fatal("target should report static dependences (rl)")
	}
	// The paper's key observation (§4.1.2): the compiler reports a static
	// dependence on rl, but the Dynamic Dependence Analyzer sees deps only
	// from the genuine chain recurrence, not from rl.
	lo, hi, _ := s.in.SymRange("MDG", "RL")
	if n := s.Dyn.CarriedInRange(top.Loop.Region.Loop, lo, hi); n != 0 {
		t.Fatalf("rl should show no dynamic dependences, got %d", n)
	}
	if top.DynDeps != 0 {
		t.Fatalf("loop 1000 should show no dynamic deps (the paper's hint), got %d", top.DynDeps)
	}
	// The chain recurrence loop, by contrast, does carry dynamic deps.
	if s.Dyn.Carried(s.Par.LoopByID("MDG/900").Region.Loop) == 0 {
		t.Fatal("the chain recurrence should show dynamic deps")
	}
	if top.CoveragePct < 50 {
		t.Fatalf("loop 1000 dominates execution: coverage = %f%%", top.CoveragePct)
	}
}

func TestAssertionUnlocksLoop(t *testing.T) {
	s := newTestSession(t)
	li := s.Par.LoopByID("MDG/1000")
	if li == nil || li.Dep.Parallelizable {
		t.Fatal("MDG/1000 should start sequential")
	}
	if _, err := s.AssertPrivate("MDG/1000", "RL"); err != nil {
		t.Fatal(err)
	}
	li = s.Par.LoopByID("MDG/1000")
	if li == nil || !li.Dep.Parallelizable {
		t.Fatalf("after the assertion the loop should parallelize: %+v", li.Dep.Blocking)
	}
	cov, _ := s.CoverageGranularity()
	if cov < 0.5 {
		t.Fatalf("coverage after assertion = %f", cov)
	}
}

func TestAssertionCheckerRefutesIndependence(t *testing.T) {
	// chain is a genuine cross-iteration recurrence: the checker must refute
	// an independence assertion on it (§2.8).
	s := newTestSession(t)
	err := s.AssertIndependent("MDG/900", "CHAIN")
	if err == nil || !strings.Contains(err.Error(), "contradicted") {
		t.Fatalf("independence assertion on CHAIN should be refuted, got %v", err)
	}
	// rl shows no dynamic dependence for this input, so the (unsound for
	// other inputs, but unrefuted) assertion is accepted.
	if err := s.AssertIndependent("MDG/1000", "RL"); err != nil {
		t.Fatalf("independence assertion on RL should pass the checker: %v", err)
	}
}

func TestCodeviewRendering(t *testing.T) {
	s := newTestSession(t)
	cv := &viz.Codeview{Prog: s.Prog, Par: s.Par, FocusLoop: "MDG/1000"}
	out := cv.Render()
	if !strings.Contains(out, ">") {
		t.Fatal("codeview should show the focus bar")
	}
	cv2 := &viz.Codeview{Prog: s.Prog, Par: s.Par}
	out2 := cv2.Render()
	if !strings.Contains(out2, "o") {
		t.Fatal("codeview should show parallelizable loops")
	}
	if !strings.Contains(out2, "#") {
		t.Fatal("codeview should show the sequential outer loop")
	}
}

func TestCallGraphAndSourceView(t *testing.T) {
	src := `
      SUBROUTINE leaf
      END
      SUBROUTINE mid
      CALL leaf
      END
      PROGRAM main
      CALL mid
      CALL leaf
      END
`
	prog := minif.MustParse("cg", src)
	cg := &viz.CallGraph{Prog: prog, Focus: "LEAF"}
	out := cg.Render()
	if !strings.Contains(out, "* LEAF") {
		t.Fatalf("call graph should mark focus:\n%s", out)
	}
	sv := &viz.SourceView{Prog: prog, Highlight: map[int]bool{5: true}, Anchor: 8}
	txt := sv.Render()
	if !strings.Contains(txt, "*    5") || !strings.Contains(txt, ">    8") {
		t.Fatalf("source view markers missing:\n%s", txt)
	}
}

func TestWorkloadSpeedupImprovesWithAssertion(t *testing.T) {
	s := newTestSession(t)
	before := s.Opts.Model.Speedup(s.Workload(), 8)
	if _, err := s.AssertPrivate("MDG/1000", "RL"); err != nil {
		t.Fatal(err)
	}
	after := s.Opts.Model.Speedup(s.Workload(), 8)
	if after <= before {
		t.Fatalf("speedup should improve: before=%v after=%v", before, after)
	}
}
