// Package parallel is the automatic parallelizer driver of §2.4: it runs the
// interprocedural analyses over a whole program and parallelizes the
// outermost loops whenever possible, recording for every loop why it did or
// did not parallelize — the raw material the SUIF Explorer presents to the
// programmer.
package parallel

import (
	"sort"

	"suifx/internal/depend"
	"suifx/internal/ir"
	"suifx/internal/liveness"
	"suifx/internal/region"
	"suifx/internal/summary"
)

// AssertSet carries the user assertions for one loop (§2.8), keyed by
// variable name.
type AssertSet struct {
	Private     map[string]bool
	Independent map[string]bool
}

// Config controls a parallelization run.
type Config struct {
	// UseReductions enables reduction recognition and transformation.
	UseReductions bool
	// DeadAtExit is the optional array liveness oracle (Chapter 5).
	DeadAtExit func(r *region.Region, sym *ir.Symbol) bool
	// Assertions maps loop IDs ("PROC/LABEL") to user assertions.
	Assertions map[string]AssertSet
}

// LoopInfo is the per-loop outcome.
type LoopInfo struct {
	Region *region.Region
	Dep    *depend.LoopResult
	// Chosen marks loops emitted as parallel (outermost parallelizable).
	Chosen bool
	// UnderParallel marks loops that execute inside a chosen parallel loop
	// (statically nested or reached through a call).
	UnderParallel bool
}

// ID returns the paper-style loop identifier.
func (li *LoopInfo) ID() string { return li.Region.ID() }

// Result is a whole-program parallelization outcome.
type Result struct {
	Prog  *ir.Program
	Sum   *summary.Analysis
	Cfg   Config
	Loops map[*region.Region]*LoopInfo
	// Ordered lists every loop region in deterministic order.
	Ordered []*LoopInfo
}

// Parallelize analyzes prog and chooses parallel loops.
func Parallelize(prog *ir.Program, cfg Config) *Result {
	return ParallelizeWith(summary.Analyze(prog), cfg)
}

// ParallelizeWith reuses an existing array data-flow analysis.
func ParallelizeWith(sum *summary.Analysis, cfg Config) *Result {
	if cfg.DeadAtExit == nil {
		// Even the pre-Chapter-5 system performs scalar liveness (Fig 5-6's
		// base configuration): conditionally-written scalars that are dead
		// at loop exit privatize. Arrays still need the array liveness
		// oracle.
		scalarLive := liveness.Analyze(sum, liveness.Full)
		cfg.DeadAtExit = func(r *region.Region, sym *ir.Symbol) bool {
			if sym.IsArray() {
				return false
			}
			return scalarLive.DeadAtExit(r, sym)
		}
	}
	res := &Result{
		Prog:  sum.Prog,
		Sum:   sum,
		Cfg:   cfg,
		Loops: map[*region.Region]*LoopInfo{},
	}
	for _, r := range sum.Reg.LoopRegions() {
		opts := depend.Options{
			UseReductions: cfg.UseReductions,
			DeadAtExit:    cfg.DeadAtExit,
		}
		if as, ok := cfg.Assertions[r.ID()]; ok {
			opts.AssertPrivate = as.Private
			opts.AssertIndependent = as.Independent
		}
		li := &LoopInfo{Region: r, Dep: depend.AnalyzeLoop(sum, r, opts)}
		res.Loops[r] = li
		res.Ordered = append(res.Ordered, li)
	}
	res.chooseOutermost()
	return res
}

// ReparallelizeWith is the incremental variant of ParallelizeWith for the
// interactive loop: dependence analysis is re-run only for loops in
// procedures where dirty reports true, and every other loop reuses prev's
// dependence verdict (valid whenever the clean procedures' summaries,
// liveness facts, and assertions are unchanged — the invalidation contract
// the driver's Incremental maintains). Loop choice (Chosen/UnderParallel)
// is global and cheap, so it is always recomputed from scratch. prev == nil
// or dirty == nil degrades to a full run.
func ReparallelizeWith(prev *Result, sum *summary.Analysis, cfg Config, dirty func(proc string) bool) *Result {
	if prev == nil || dirty == nil {
		return ParallelizeWith(sum, cfg)
	}
	if cfg.DeadAtExit == nil {
		scalarLive := liveness.Analyze(sum, liveness.Full)
		cfg.DeadAtExit = func(r *region.Region, sym *ir.Symbol) bool {
			if sym.IsArray() {
				return false
			}
			return scalarLive.DeadAtExit(r, sym)
		}
	}
	res := &Result{
		Prog:  sum.Prog,
		Sum:   sum,
		Cfg:   cfg,
		Loops: map[*region.Region]*LoopInfo{},
	}
	for _, r := range sum.Reg.LoopRegions() {
		li := &LoopInfo{Region: r}
		if old := prev.Loops[r]; old != nil && !dirty(r.Proc.Name) {
			li.Dep = old.Dep
		} else {
			opts := depend.Options{
				UseReductions: cfg.UseReductions,
				DeadAtExit:    cfg.DeadAtExit,
			}
			if as, ok := cfg.Assertions[r.ID()]; ok {
				opts.AssertPrivate = as.Private
				opts.AssertIndependent = as.Independent
			}
			li.Dep = depend.AnalyzeLoop(sum, r, opts)
		}
		res.Loops[r] = li
		res.Ordered = append(res.Ordered, li)
	}
	res.chooseOutermost()
	return res
}

// chooseOutermost picks, top-down over the call graph and the loop nests,
// the outermost parallelizable loops, and marks everything dynamically
// nested inside them.
func (res *Result) chooseOutermost() {
	parallelCtx := map[string]bool{} // procs reached from inside parallel loops
	order, _ := res.Prog.TopDownOrder()
	for _, p := range order {
		top := res.Sum.Reg.ProcTop[p.Name]
		res.chooseIn(top, parallelCtx[p.Name], parallelCtx)
	}
}

func (res *Result) chooseIn(r *region.Region, underParallel bool, parallelCtx map[string]bool) {
	for _, c := range r.Children {
		if c.Kind != region.LoopRegion {
			continue
		}
		li := res.Loops[c]
		li.UnderParallel = underParallel
		if !underParallel && li.Dep.Parallelizable {
			li.Chosen = true
			res.markCalleesParallel(c, parallelCtx)
			res.chooseIn(c.Body(), true, parallelCtx)
			continue
		}
		res.chooseIn(c.Body(), underParallel, parallelCtx)
	}
}

// markCalleesParallel records every procedure transitively reachable from
// inside a chosen parallel loop.
func (res *Result) markCalleesParallel(r *region.Region, parallelCtx map[string]bool) {
	var visit func(name string)
	visit = func(name string) {
		if parallelCtx[name] {
			return
		}
		parallelCtx[name] = true
		for _, callee := range res.Prog.CallGraph()[name] {
			visit(callee)
		}
	}
	for _, c := range r.AllCallSites() {
		if res.Prog.ByName[c.Name] != nil {
			visit(c.Name)
		}
	}
}

// ParallelLoops returns the chosen parallel loops in deterministic order.
func (res *Result) ParallelLoops() []*LoopInfo {
	var out []*LoopInfo
	for _, li := range res.Ordered {
		if li.Chosen {
			out = append(out, li)
		}
	}
	return out
}

// SequentialLoops returns loops that are not parallelizable and not nested
// under a chosen parallel loop — the Explorer's worklist candidates.
func (res *Result) SequentialLoops() []*LoopInfo {
	var out []*LoopInfo
	for _, li := range res.Ordered {
		if !li.Chosen && !li.UnderParallel && !li.Dep.Parallelizable {
			out = append(out, li)
		}
	}
	return out
}

// LoopByID finds a loop by its "PROC/LABEL" identifier.
func (res *Result) LoopByID(id string) *LoopInfo {
	for _, li := range res.Ordered {
		if li.ID() == id {
			return li
		}
	}
	return nil
}

// Stats summarizes counts the evaluation tables report.
type Stats struct {
	TotalLoops      int
	ParallelizableN int
	ChosenN         int
	SequentialN     int
	WithReductionN  int
}

// Stats computes whole-program counts.
func (res *Result) Stats() Stats {
	var s Stats
	s.TotalLoops = len(res.Ordered)
	for _, li := range res.Ordered {
		if li.Dep.Parallelizable {
			s.ParallelizableN++
			if li.Dep.NeedsReduction {
				s.WithReductionN++
			}
		} else {
			s.SequentialN++
		}
		if li.Chosen {
			s.ChosenN++
		}
	}
	return s
}

// VarCounts tallies, across the given loops, how many variables fall into
// each class — the Fig 4-9 style breakdown. Arrays and scalars are counted
// separately.
func VarCounts(loops []*LoopInfo) map[string]int {
	out := map[string]int{}
	for _, li := range loops {
		for _, vr := range li.Dep.Vars {
			kind := "scalar"
			if vr.Sym.IsArray() {
				kind = "array"
			}
			key := vr.Class.String() + " " + kind
			if vr.ByAssertion {
				key = "user " + key
			}
			out[key]++
		}
	}
	return out
}

// SortedKeys returns map keys sorted, for deterministic table output.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
