package parallel

import (
	"testing"

	"suifx/internal/minif"
)

const nestedSrc = `
      SUBROUTINE inner(a, n)
      REAL a(100)
      INTEGER i, n
      DO 10 i = 1, n
        a(i) = a(i) * 2.0
10    CONTINUE
      END
      PROGRAM main
      REAL a(100), b(100), s
      INTEGER i, j, n
      n = 100
      DO 100 i = 1, n
        DO 50 j = 1, n
          b(j) = a(j) + i
50      CONTINUE
        CALL inner(b, n)
        a(i) = b(i)
100   CONTINUE
      s = 0.0
      DO 200 i = 1, n
        s = s + a(i)
200   CONTINUE
      END
`

func TestChooseOutermost(t *testing.T) {
	prog := minif.MustParse("t", nestedSrc)
	res := Parallelize(prog, Config{UseReductions: true})
	outer := res.LoopByID("MAIN/100")
	if outer == nil {
		t.Fatal("no MAIN/100")
	}
	// a(i) = b(i) reads a(j) for all j in the body: loop-carried on A.
	if outer.Dep.Parallelizable {
		t.Fatal("MAIN/100 has a genuine dependence on a")
	}
	inner50 := res.LoopByID("MAIN/50")
	if !inner50.Dep.Parallelizable || !inner50.Chosen {
		t.Fatalf("MAIN/50 should be chosen: %+v", inner50.Dep.Blocking)
	}
	// INNER/10 is reached through a call from the sequential MAIN/100 but
	// not from inside a chosen loop: it is chosen itself.
	in10 := res.LoopByID("INNER/10")
	if !in10.Chosen {
		t.Fatal("INNER/10 should be chosen")
	}
	red := res.LoopByID("MAIN/200")
	if !red.Chosen || !red.Dep.NeedsReduction {
		t.Fatal("MAIN/200 should be a chosen reduction loop")
	}
}

func TestUnderParallelSuppression(t *testing.T) {
	src := `
      SUBROUTINE work(a, base)
      REAL a(1000)
      INTEGER j, base
      DO 10 j = 1, 10
        a(base + j) = j * 1.0
10    CONTINUE
      END
      PROGRAM main
      REAL a(1000)
      INTEGER i
      DO 100 i = 1, 99
        CALL work(a, i * 10)
100   CONTINUE
      END
`
	prog := minif.MustParse("t", src)
	res := Parallelize(prog, Config{})
	outer := res.LoopByID("MAIN/100")
	if !outer.Chosen {
		t.Fatalf("MAIN/100 should be chosen: %v", outer.Dep.Blocking)
	}
	in10 := res.LoopByID("WORK/10")
	if in10.Chosen {
		t.Fatal("WORK/10 runs inside a parallel loop: must not be chosen")
	}
	if !in10.UnderParallel {
		t.Fatal("WORK/10 should be marked under-parallel")
	}
	if len(res.SequentialLoops()) != 0 {
		t.Fatalf("no worklist candidates expected: %v", res.SequentialLoops())
	}
}

func TestStatsAndVarCounts(t *testing.T) {
	prog := minif.MustParse("t", nestedSrc)
	res := Parallelize(prog, Config{UseReductions: true})
	st := res.Stats()
	if st.TotalLoops != 4 || st.ParallelizableN != 3 || st.SequentialN != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WithReductionN != 1 {
		t.Fatalf("reduction loops = %d", st.WithReductionN)
	}
	counts := VarCounts(res.ParallelLoops())
	if counts["reduction scalar"] != 1 {
		t.Fatalf("var counts = %v", counts)
	}
	keys := SortedKeys(counts)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("keys not sorted")
		}
	}
}

func TestAssertionsPlumbing(t *testing.T) {
	prog := minif.MustParse("t", nestedSrc)
	res := Parallelize(prog, Config{
		UseReductions: true,
		Assertions: map[string]AssertSet{
			"MAIN/100": {Independent: map[string]bool{"A": true}, Private: map[string]bool{"B": true}},
		},
	})
	outer := res.LoopByID("MAIN/100")
	if !outer.Dep.Parallelizable || !outer.Chosen {
		t.Fatalf("asserted loop should be chosen: %v", outer.Dep.Blocking)
	}
	// Everything dynamically inside is now under-parallel.
	if !res.LoopByID("INNER/10").UnderParallel {
		t.Fatal("INNER/10 should be under the asserted parallel loop")
	}
}
