package parallel

import (
	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/region"
)

// PlanOptions selects the runtime schedule for an execution plan built from
// a parallelization result. The schedule travels inside the plan (one field
// per loop), so the §4.5 dispatcher executes exactly the policy the plan
// was built with — a variant enumerated by the tuner cannot silently
// disagree with what the engine runs.
type PlanOptions struct {
	Workers int
	// Schedule is the iteration-assignment policy (§4.5): even contiguous
	// chunks (default), cyclic interleaving, or guided shrinking chunks.
	Schedule exec.Schedule
	// Staggered selects the §6.3.4 chunked reduction finalization; false is
	// the §6.3.2 single-lock (serial-order) baseline.
	Staggered bool
	Chunks    int
}

// BuildPlan converts a parallelization result into a runtime execution plan
// for the chosen loops — privatized variables (inner indices included),
// last-iteration finalization lists, and reduction accumulators — with the
// even-chunk schedule and the staggered finalization of §6.3.4.
func BuildPlan(res *Result, workers int) *exec.ParallelPlan {
	return BuildPlanOpts(res, PlanOptions{Workers: workers, Staggered: true, Chunks: 4})
}

// BuildPlanOpts is BuildPlan with an explicit schedule and finalization
// discipline applied to every chosen loop.
func BuildPlanOpts(res *Result, opt PlanOptions) *exec.ParallelPlan {
	plan := &exec.ParallelPlan{Workers: opt.Workers, Loops: map[*ir.DoLoop]*exec.LoopPlan{}}
	for _, li := range res.Ordered {
		if !li.Chosen {
			continue
		}
		plan.Loops[li.Region.Loop] = LowerLoop(li, opt)
	}
	return plan
}

// LowerLoop lowers one loop's dependence verdict to a runtime loop plan:
// the variable classification becomes private/finalize/reduction lists and
// the options become the dispatch policy. The loop need not be Chosen —
// the tuner lowers proven-parallelizable inner loops when an interchange
// variant parallelizes a deeper nest level.
func LowerLoop(li *LoopInfo, opt PlanOptions) *exec.LoopPlan {
	lp := &exec.LoopPlan{Schedule: opt.Schedule, Staggered: opt.Staggered, Chunks: opt.Chunks}
	for _, vr := range li.Dep.Vars {
		switch vr.Class.String() {
		case "private":
			lp.Private = append(lp.Private, vr.Sym)
			if vr.NeedsFinalization {
				lp.Finalize = append(lp.Finalize, vr.Sym)
			}
		case "reduction":
			lp.Reductions = append(lp.Reductions, exec.ReductionPlan{Sym: vr.Sym, Op: vr.RedOp})
		case "index":
			if vr.Sym != li.Region.Loop.Index {
				lp.Private = append(lp.Private, vr.Sym)
			}
		}
	}
	return lp
}

// LoopAtDepth walks a chosen nest's unambiguous chain of singly-nested
// loops and returns the loop d levels inside li (li itself at d == 0). It
// returns nil when the chain ends early — a level with zero or several
// sibling loops stops the walk, since "the loop at depth d" is no longer
// well defined there.
func LoopAtDepth(res *Result, li *LoopInfo, d int) *LoopInfo {
	cur := li
	for step := 0; step < d; step++ {
		var inner *region.Region
		for _, c := range cur.Region.Body().Children {
			if c.Kind != region.LoopRegion {
				continue
			}
			if inner != nil {
				return nil // ambiguous: two sibling loops at this level
			}
			inner = c
		}
		if inner == nil {
			return nil
		}
		cur = res.Loops[inner]
		if cur == nil {
			return nil
		}
	}
	return cur
}

// InterchangeDepths returns the nest depths at which li's loop nest may
// legally be parallelized instead of at its outermost level: depth 0 (the
// chosen loop itself) is always legal; depth d > 0 is legal when the d-th
// singly-nested inner loop's own dependence verdict is parallelizable —
// running it parallel with the outer levels sequential is exactly the plan
// the parallelizer would have chosen had the outer loop been rejected, so
// no new legality argument is needed. This is the tuner's interchange
// knob: it moves the partitioned dimension inward, trading spawn overhead
// for a different balance profile.
func InterchangeDepths(res *Result, li *LoopInfo, maxDepth int) []int {
	depths := []int{0}
	for d := 1; d <= maxDepth; d++ {
		inner := LoopAtDepth(res, li, d)
		if inner == nil || !inner.Dep.Parallelizable {
			break
		}
		depths = append(depths, d)
	}
	return depths
}
