package parallel

import (
	"suifx/internal/exec"
	"suifx/internal/ir"
)

// PlanOptions selects the runtime schedule for an execution plan built from
// a parallelization result.
type PlanOptions struct {
	Workers int
	// Staggered selects the §6.3.4 chunked reduction finalization; false is
	// the §6.3.2 single-lock (serial-order) baseline.
	Staggered bool
	Chunks    int
}

// BuildPlan converts a parallelization result into a runtime execution plan
// for the chosen loops — privatized variables (inner indices included),
// last-iteration finalization lists, and reduction accumulators — with the
// staggered finalization of §6.3.4.
func BuildPlan(res *Result, workers int) *exec.ParallelPlan {
	return BuildPlanOpts(res, PlanOptions{Workers: workers, Staggered: true, Chunks: 4})
}

// BuildPlanOpts is BuildPlan with an explicit finalization discipline.
func BuildPlanOpts(res *Result, opt PlanOptions) *exec.ParallelPlan {
	plan := &exec.ParallelPlan{Workers: opt.Workers, Loops: map[*ir.DoLoop]*exec.LoopPlan{}}
	for _, li := range res.Ordered {
		if !li.Chosen {
			continue
		}
		lp := &exec.LoopPlan{Staggered: opt.Staggered, Chunks: opt.Chunks}
		for _, vr := range li.Dep.Vars {
			switch vr.Class.String() {
			case "private":
				lp.Private = append(lp.Private, vr.Sym)
				if vr.NeedsFinalization {
					lp.Finalize = append(lp.Finalize, vr.Sym)
				}
			case "reduction":
				lp.Reductions = append(lp.Reductions, exec.ReductionPlan{Sym: vr.Sym, Op: vr.RedOp})
			case "index":
				if vr.Sym != li.Region.Loop.Index {
					lp.Private = append(lp.Private, vr.Sym)
				}
			}
		}
		plan.Loops[li.Region.Loop] = lp
	}
	return plan
}
