package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"suifx/internal/httpretry"
)

// DefaultMaxConnsPerShard bounds concurrent in-flight requests per worker.
const DefaultMaxConnsPerShard = 8

// shard is one worker backend: its URL, a bounded in-flight semaphore (the
// connection pool), the retrying HTTP client, and the per-shard counters
// surfaced in coordinator /v1/stats.
type shard struct {
	url string
	sem chan struct{}
	rc  *httpretry.Client

	healthy atomic.Bool
	fails   int // consecutive probe failures; prober goroutine only

	requests atomic.Int64
	errors   atomic.Int64
	retries  atomic.Int64
	hedges   atomic.Int64
}

func newShard(url string, maxConns int, hc *http.Client, attempts int) *shard {
	if maxConns <= 0 {
		maxConns = DefaultMaxConnsPerShard
	}
	sh := &shard{url: url, sem: make(chan struct{}, maxConns)}
	sh.healthy.Store(true)
	sh.rc = &httpretry.Client{
		HC:       hc,
		Attempts: attempts,
		OnRetry:  func(int, error) { sh.retries.Add(1) },
	}
	return sh
}

// do forwards method+path(+rawQuery) with the given body to this shard,
// holding one pool slot until the response body is closed. Transport-level
// retries happen inside; a returned error means the shard is not answering.
func (sh *shard) do(ctx context.Context, method, pathAndQuery string, body []byte) (*http.Response, error) {
	select {
	case sh.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	release := func() { <-sh.sem }

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, sh.url+pathAndQuery, rd)
	if err != nil {
		release()
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	sh.requests.Add(1)
	resp, err := sh.rc.Do(req)
	if err != nil {
		release()
		sh.errors.Add(1)
		return nil, err
	}
	resp.Body = &releaseBody{ReadCloser: resp.Body, release: release}
	return resp, nil
}

// releaseBody returns the shard's pool slot exactly once, when the response
// body is closed.
type releaseBody struct {
	io.ReadCloser
	release func()
	once    sync.Once
}

func (rb *releaseBody) Close() error {
	err := rb.ReadCloser.Close()
	rb.once.Do(rb.release)
	return err
}
