package cluster_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"suifx/internal/cluster"
	"suifx/internal/driver"
	"suifx/internal/server"
)

// gatedWorker is a real worker server behind a togglable gate: down() makes
// every request answer 503 without closing the listener — an outage the
// health prober sees and the coordinator must route around — and a settable
// delay slows answers to force hedges.
type gatedWorker struct {
	srv   *server.Server
	ts    *httptest.Server
	down  atomic.Bool
	delay atomic.Int64 // nanoseconds added before answering
}

func (g *gatedWorker) URL() string { return g.ts.URL }

func newGatedWorker(t *testing.T, cfg server.Config) *gatedWorker {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = driver.NewCache()
	}
	g := &gatedWorker{srv: server.New(cfg)}
	t.Cleanup(g.srv.Close)
	inner := g.srv.Handler()
	g.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.down.Load() {
			server.WriteError(w, http.StatusServiceUnavailable, "worker gated down")
			return
		}
		if d := g.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(g.ts.Close)
	return g
}

// newTestCluster boots n gated workers and a coordinator with a fast health
// loop. Hedging is off unless the test turns it on via tweak.
func newTestCluster(t *testing.T, n int, tweak func(*cluster.Config)) (*cluster.Coordinator, *httptest.Server, []*gatedWorker) {
	t.Helper()
	workers := make([]*gatedWorker, n)
	urls := make([]string, n)
	for i := range workers {
		workers[i] = newGatedWorker(t, server.Config{})
		urls[i] = workers[i].URL()
	}
	cfg := cluster.Config{
		Workers:       urls,
		ProbePeriod:   25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		FailThreshold: 2,
		RetryAttempts: 2,
		HedgeDelay:    -1,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	co, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	return co, ts, workers
}

// waitHealthy polls the coordinator until the prober agrees on the healthy
// worker count.
func waitHealthy(t *testing.T, co *cluster.Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := co.Stats().Cluster; st.HealthyWorkers == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy workers never reached %d: %+v", want, co.Stats().Cluster)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func clusterPost(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case string:
		rd = strings.NewReader(b)
	default:
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func clusterDo(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	fields := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &fields); err != nil {
		t.Fatalf("%s %s: non-JSON response %q", method, path, data)
	}
	return resp.StatusCode, fields
}

func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, n, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRingOwnership: consistent-hash stability — when a member leaves, only
// its keys move; the survivors keep every key they owned. OwnerN returns
// distinct members in failover order.
func TestRingOwnership(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	full := cluster.BuildRing(members, 0, 1)
	reduced := cluster.BuildRing([]string{members[0], members[2]}, 0, 2)

	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		// Program keys are sha256 hex in production; hash here too so the
		// sample is uniform over the keyspace.
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		key := fmt.Sprintf("src:%x", sum)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before == members[1] {
			if after == members[1] {
				t.Fatalf("key %s still owned by the removed member", key)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %s moved from surviving member %s to %s", key, before, after)
		}
		kept++
	}
	// ~1/3 of the keyspace belonged to the removed member.
	if moved < 2000/6 || moved > 2000/2 {
		t.Fatalf("moved %d of 2000 keys, expected roughly a third", moved)
	}
	if kept == 0 {
		t.Fatal("no keys survived in place")
	}

	owners := full.OwnerN("sess:x", 3)
	if len(owners) != 3 {
		t.Fatalf("OwnerN returned %d owners, want 3", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("OwnerN repeated owner %s: %v", o, owners)
		}
		seen[o] = true
	}
	if empty := cluster.BuildRing(nil, 0, 3); empty.Owner("k") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if full.Gen() != 1 || reduced.Gen() != 2 {
		t.Fatalf("generations %d, %d, want 1, 2", full.Gen(), reduced.Gen())
	}
}

// TestClusterProxyContract: the coordinator speaks the worker wire contract —
// same success payloads, same error envelopes (including routing-level
// 404/405 and the 413 body cap), and its stats expose the per-shard counters.
func TestClusterProxyContract(t *testing.T) {
	co, ts, workers := newTestCluster(t, 2, func(c *cluster.Config) { c.MaxBodyBytes = 512 })

	// A worker answers the same request directly; results match modulo the
	// elapsed-time field.
	status, body := clusterPost(t, ts, "/v1/analyze", map[string]any{"workload": "mdg"})
	if status != http.StatusOK {
		t.Fatalf("analyze via coordinator: %d %s", status, body)
	}
	var viaCluster, viaWorker map[string]json.RawMessage
	json.Unmarshal(body, &viaCluster)
	resp, err := http.Post(workers[0].URL()+"/v1/analyze", "application/json",
		strings.NewReader(`{"workload": "mdg"}`))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	json.Unmarshal(direct, &viaWorker)
	for k, v := range viaWorker {
		if k == "elapsed_ms" {
			continue
		}
		if string(viaCluster[k]) != string(v) {
			t.Fatalf("analyze field %q differs between worker and coordinator:\n%s\n%s",
				k, v, viaCluster[k])
		}
	}

	// Worker-origin errors pass through verbatim; coordinator-origin routing
	// errors use the same envelope.
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/v1/analyze", map[string]any{"workload": "no-such"}, http.StatusNotFound},
		{"POST", "/v1/analyze", `{"source":`, http.StatusBadRequest},
		{"POST", "/v1/slice", map[string]any{"workload": "mdg", "line": 3}, http.StatusBadRequest},
		{"GET", "/v1/nope", nil, http.StatusNotFound},
		{"GET", "/v1/analyze", nil, http.StatusMethodNotAllowed},
		{"GET", "/v1/batch", nil, http.StatusMethodNotAllowed},
		{"POST", "/v1/batch", map[string]any{}, http.StatusBadRequest},
		{"POST", "/v1/analyze", map[string]any{"source": strings.Repeat("C x\n", 400)}, http.StatusRequestEntityTooLarge},
		{"POST", "/v1/batch", map[string]any{"items": []map[string]any{
			{"source": strings.Repeat("C x\n", 400)}}}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		var status int
		var fields map[string]json.RawMessage
		if tc.body == nil {
			status, fields = clusterDo(t, ts, tc.method, tc.path, nil)
		} else if raw, ok := tc.body.(string); ok {
			var data []byte
			status, data = clusterPost(t, ts, tc.path, raw)
			fields = map[string]json.RawMessage{}
			if err := json.Unmarshal(data, &fields); err != nil {
				t.Fatalf("%s %s: non-JSON error %q", tc.method, tc.path, data)
			}
		} else {
			var data []byte
			status, data = clusterPost(t, ts, tc.path, tc.body)
			fields = map[string]json.RawMessage{}
			if err := json.Unmarshal(data, &fields); err != nil {
				t.Fatalf("%s %s: non-JSON error %q", tc.method, tc.path, data)
			}
		}
		if status != tc.want {
			t.Fatalf("%s %s: status %d, want %d (%v)", tc.method, tc.path, status, tc.want, fields)
		}
		if _, ok := fields["error"]; !ok {
			t.Fatalf("%s %s: error response is not the envelope: %v", tc.method, tc.path, fields)
		}
	}

	// Tune and profile proxy too.
	if status, body := clusterPost(t, ts, "/v1/profile", map[string]any{"workload": "mdg"}); status != 200 {
		t.Fatalf("profile via coordinator: %d %s", status, body)
	}

	st := co.Stats().Cluster
	if st.RingGeneration != 1 || st.HealthyWorkers != 2 || st.TotalWorkers != 2 {
		t.Fatalf("cluster stats = %+v, want gen 1 over 2/2 workers", st)
	}
	var requests int64
	for _, w := range st.Workers {
		requests += w.Requests
	}
	if requests < 3 {
		t.Fatalf("per-shard request counters = %d total, want >= 3", requests)
	}

	// GET /v1/stats over the wire exposes the same block.
	status, fields := clusterDo(t, ts, "GET", "/v1/stats", nil)
	if status != 200 {
		t.Fatalf("stats: %d", status)
	}
	if _, ok := fields["cluster"]; !ok {
		t.Fatalf("coordinator stats missing cluster block: %v", fields)
	}
}

// TestClusterSessionLifecycle: sessions create through the coordinator with
// coordinator-assigned ids, stay sticky to their shard for every subroute,
// and a DELETE unregisters them.
func TestClusterSessionLifecycle(t *testing.T) {
	co, ts, _ := newTestCluster(t, 2, nil)

	status, fields := clusterDo(t, ts, "POST", "/v1/session", map[string]any{"workload": "mdg"})
	if status != http.StatusOK {
		t.Fatalf("create: %d (%v)", status, fields)
	}
	var id string
	json.Unmarshal(fields["id"], &id)
	if id == "" {
		t.Fatalf("no id in %v", fields)
	}
	if co.Stats().Cluster.Sessions != 1 {
		t.Fatalf("registry sessions = %d, want 1", co.Stats().Cluster.Sessions)
	}

	status, fields = clusterDo(t, ts, "POST", "/v1/session/"+id+"/assert",
		map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"})
	if status != http.StatusOK {
		t.Fatalf("assert: %d (%v)", status, fields)
	}
	var accepted bool
	json.Unmarshal(fields["accepted"], &accepted)
	if !accepted {
		t.Fatalf("assert rejected via coordinator: %v", fields)
	}
	if status, _ := clusterDo(t, ts, "GET", "/v1/session/"+id+"/guru", nil); status != 200 {
		t.Fatalf("guru: %d", status)
	}
	// Unknown subroute and unknown session produce the worker's canonical
	// envelope through the proxy.
	if status, _ := clusterDo(t, ts, "GET", "/v1/session/"+id+"/nope", nil); status != http.StatusNotFound {
		t.Fatalf("unknown subroute: %d, want 404", status)
	}
	if status, _ := clusterDo(t, ts, "GET", "/v1/session/ffffffffffffffff", nil); status != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", status)
	}

	if status, _ := clusterDo(t, ts, "DELETE", "/v1/session/"+id, nil); status != 200 {
		t.Fatalf("delete: %d", status)
	}
	if co.Stats().Cluster.Sessions != 0 {
		t.Fatalf("registry sessions = %d after delete, want 0", co.Stats().Cluster.Sessions)
	}
}

// TestClusterSessionRebalance is the drain/handoff story: sessions created
// while a worker is down all land on the survivor; when the worker rejoins,
// the ring rebalances and every migrated session keeps its id and its
// asserted dialogue state.
func TestClusterSessionRebalance(t *testing.T) {
	baseline := runtime.NumGoroutine()
	co, ts, workers := newTestCluster(t, 2, nil)

	// Take worker 1 down and wait for ejection (ring gen bumps).
	workers[1].down.Store(true)
	waitHealthy(t, co, 1)

	// Sessions created now must all land on worker 0 — with an accepted
	// assertion each, so migration has real state to carry.
	const sessions = 12
	ids := make([]string, sessions)
	guru := make([]map[string]json.RawMessage, sessions)
	for i := range ids {
		status, fields := clusterDo(t, ts, "POST", "/v1/session", map[string]any{"workload": "mdg"})
		if status != http.StatusOK {
			t.Fatalf("create %d with one worker: %d (%v)", i, status, fields)
		}
		json.Unmarshal(fields["id"], &ids[i])
		status, fields = clusterDo(t, ts, "POST", "/v1/session/"+ids[i]+"/assert",
			map[string]any{"kind": "private", "loop": "INTERF/1000", "var": "RL"})
		if status != http.StatusOK {
			t.Fatalf("assert %d: %d (%v)", i, status, fields)
		}
		_, guru[i] = clusterDo(t, ts, "GET", "/v1/session/"+ids[i]+"/guru", nil)
	}

	// Rejoin: the prober rebuilds the ring and rebalances. With 12 ids,
	// essentially surely at least one is ring-owned by the returning worker.
	workers[1].down.Store(false)
	waitHealthy(t, co, 2)
	deadline := time.Now().Add(30 * time.Second)
	for co.Stats().Cluster.SessionsMigrated == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no session migrated after rejoin: %+v", co.Stats().Cluster)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every session — migrated or not — still answers under its original id
	// with identical Guru state, and accepts further assertions.
	for i, id := range ids {
		var after map[string]json.RawMessage
		var status int
		// A rebalance may still be replaying this id; give it a moment.
		for tries := 0; ; tries++ {
			status, after = clusterDo(t, ts, "GET", "/v1/session/"+id+"/guru", nil)
			if status == http.StatusOK || tries > 200 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if status != http.StatusOK {
			t.Fatalf("session %d (%s) lost across rebalance: %d (%v)", i, id, status, after)
		}
		for _, k := range []string{"coverage", "granularity_ms", "targets"} {
			if string(guru[i][k]) != string(after[k]) {
				t.Fatalf("session %d guru %q diverged across migration:\n%s\n%s",
					i, k, guru[i][k], after[k])
			}
		}
	}
	st := co.Stats().Cluster
	if st.SessionsDrained < st.SessionsMigrated || st.SessionsLost > 0 {
		t.Fatalf("rebalance accounting off: %+v", st)
	}
	if st.RingGeneration < 3 {
		t.Fatalf("ring generation = %d, want >= 3 (eject + rejoin)", st.RingGeneration)
	}

	// Tear everything down and assert nothing leaked.
	ts.CloseClientConnections()
	ts.Close()
	co.Close()
	for _, w := range workers {
		w.ts.Close()
		w.srv.Close()
	}
	settleGoroutines(t, baseline)
}

// batchManifest is the shared manifest for the equivalence tests: workloads
// and inline sources, including an unnamed one (its default name depends on
// the manifest index — a cluster must preserve it).
func batchManifest() map[string]any {
	inline := "      PROGRAM p\n      INTEGER i\n      REAL a(50)\n      DO 10 i = 1, 50\n        a(i) = 0.0\n10    CONTINUE\n      END\n"
	return map[string]any{"items": []map[string]any{
		{"workload": "mdg"},
		{"name": "named-inline", "source": inline},
		{"source": inline},
		{"workload": "mdg", "name": "mdg-again"},
	}}
}

// TestClusterBatchEquivalence: the acceptance criterion — a 2-worker cluster
// batch is byte-identical to the same manifest on a bare worker, including
// with a worker lost mid-flight (items fail over to the survivor).
func TestClusterBatchEquivalence(t *testing.T) {
	// Single-node baseline from a bare worker.
	single := newGatedWorker(t, server.Config{})
	resp, err := http.Post(single.URL()+"/v1/batch", "application/json",
		bytes.NewReader(mustJSON(t, batchManifest())))
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline batch: %d %s", resp.StatusCode, baseline)
	}

	co, ts, workers := newTestCluster(t, 2, nil)
	status, got := clusterPost(t, ts, "/v1/batch", batchManifest())
	if status != http.StatusOK {
		t.Fatalf("cluster batch: %d %s", status, got)
	}
	if !bytes.Equal(got, baseline) {
		t.Fatalf("cluster batch diverges from single-node run:\n--- single\n%s\n--- cluster\n%s", baseline, got)
	}

	// Kill a worker without waiting for the prober: the coordinator still
	// believes it healthy, so its items hit the gate, exhaust retries, and
	// fail over to the survivor — the stream must not change.
	workers[1].down.Store(true)
	status, got = clusterPost(t, ts, "/v1/batch", batchManifest())
	if status != http.StatusOK {
		t.Fatalf("cluster batch with dead worker: %d %s", status, got)
	}
	if !bytes.Equal(got, baseline) {
		t.Fatalf("batch after worker kill diverges:\n--- single\n%s\n--- cluster\n%s", baseline, got)
	}
	st := co.Stats().Cluster
	if st.BatchItems < 8 {
		t.Fatalf("batch_items = %d, want >= 8 (two 4-item batches)", st.BatchItems)
	}
	if st.BatchFailures != 0 {
		t.Fatalf("batch_failures = %d, want 0 (failover must hide the outage)", st.BatchFailures)
	}
}

// TestClusterBatchPartialFailure: per-item errors are deterministic worker
// verdicts — never retried, surfaced in the stream and the failure counters.
func TestClusterBatchPartialFailure(t *testing.T) {
	co, ts, workers := newTestCluster(t, 2, nil)
	status, raw := clusterPost(t, ts, "/v1/batch", map[string]any{"items": []map[string]any{
		{"name": "bad", "source": "NOT MINIF(("},
		{"workload": "mdg"},
	}})
	if status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, raw)
	}
	lines := splitNDJSON(raw)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %s", len(lines), raw)
	}
	var bad server.BatchItemResult
	json.Unmarshal([]byte(lines[0]), &bad)
	if bad.Status != "error" || bad.HTTPStatus != http.StatusUnprocessableEntity {
		t.Fatalf("bad record = %+v, want the worker's 422 verdict", bad)
	}
	var sum server.BatchSummary
	json.Unmarshal([]byte(lines[2]), &sum)
	if sum.Total != 2 || sum.OK != 1 || sum.Failed != 1 {
		t.Fatalf("trailer = %+v, want 2/1/1", sum)
	}
	if co.Stats().Cluster.BatchFailures != 1 {
		t.Fatalf("batch_failures = %d, want 1", co.Stats().Cluster.BatchFailures)
	}

	// With the whole fleet dead, every item is a synthesized 502 record and
	// the trailer still accounts for all of them.
	for _, w := range workers {
		w.down.Store(true)
	}
	status, raw = clusterPost(t, ts, "/v1/batch", map[string]any{"items": []map[string]any{
		{"workload": "mdg"}, {"workload": "mdg", "name": "two"},
	}})
	if status != http.StatusOK {
		t.Fatalf("batch with dead fleet: %d %s", status, raw)
	}
	lines = splitNDJSON(raw)
	for _, l := range lines[:len(lines)-1] {
		var rec server.BatchItemResult
		json.Unmarshal([]byte(l), &rec)
		if rec.Status != "error" || rec.HTTPStatus != http.StatusBadGateway ||
			!strings.Contains(rec.Error, "no worker could analyze item") {
			t.Fatalf("dead-fleet record = %+v, want synthesized 502", rec)
		}
	}
	json.Unmarshal([]byte(lines[len(lines)-1]), &sum)
	if sum.Total != 2 || sum.Failed != 2 {
		t.Fatalf("dead-fleet trailer = %+v, want 2 failed", sum)
	}
}

// TestClusterHedgedAnalyze: with slow workers and a short hedge delay, the
// analyze proxy races a second shard and counts the hedge.
func TestClusterHedgedAnalyze(t *testing.T) {
	co, ts, workers := newTestCluster(t, 2, func(c *cluster.Config) {
		c.HedgeDelay = 5 * time.Millisecond
	})
	// Warm both caches so the hedged run measures proxying, not analysis.
	clusterPost(t, ts, "/v1/analyze", map[string]any{"workload": "mdg"})
	for _, w := range workers {
		w.delay.Store(int64(150 * time.Millisecond))
	}
	status, body := clusterPost(t, ts, "/v1/analyze", map[string]any{"workload": "mdg"})
	if status != http.StatusOK {
		t.Fatalf("hedged analyze: %d %s", status, body)
	}
	var hedges int64
	for _, w := range co.Stats().Cluster.Workers {
		hedges += w.Hedges
	}
	if hedges < 1 {
		t.Fatalf("hedge counter = %d, want >= 1", hedges)
	}
}

// TestClusterNoHealthyWorkers: a fully dead fleet is an honest 503 on every
// routed endpoint once the prober has seen it.
func TestClusterNoHealthyWorkers(t *testing.T) {
	co, ts, workers := newTestCluster(t, 2, nil)
	for _, w := range workers {
		w.down.Store(true)
	}
	waitHealthy(t, co, 0)

	for _, probe := range []func() (int, []byte){
		func() (int, []byte) { return clusterPost(t, ts, "/v1/analyze", map[string]any{"workload": "mdg"}) },
		func() (int, []byte) { return clusterPost(t, ts, "/v1/session", map[string]any{"workload": "mdg"}) },
	} {
		status, body := probe()
		if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "no healthy workers") {
			t.Fatalf("dead fleet: %d %s, want 503 no healthy workers", status, body)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func splitNDJSON(raw []byte) []string {
	var lines []string
	for _, l := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines
}
