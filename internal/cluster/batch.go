package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"suifx/internal/corpus"
	"suifx/internal/server"
)

// batchItemTimeout bounds one item's analysis on one worker; the worker's
// own RequestTimeout usually fires first.
const batchItemTimeout = 60 * time.Second

// handleBatch fans a corpus manifest across the cluster: each item routes to
// its ring owner as a single-item worker batch, failed items retry on the
// next surviving owner, and records stream back in input order — so the
// NDJSON byte stream matches a single worker running the same manifest,
// whatever the fleet does meanwhile. Record construction lives entirely in
// the worker; the coordinator rewrites only the index.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if err := server.DecodeJSON(r, c.cfg.MaxBodyBytes, &req); err != nil {
		server.WriteError(w, server.StatusOf(err), err.Error())
		return
	}
	items, err := corpus.NormalizeBatch(req.Ladder, req.Items)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Resolve up front — manifest errors abort before the stream starts
	// (matching the worker), and the resolved sources drive shard keying.
	resolved, err := server.ResolveBatch(items)
	if err != nil {
		server.WriteError(w, server.StatusOf(err), err.Error())
		return
	}

	par := c.cfg.BatchParallelism
	if req.Parallelism > 0 {
		par = req.Parallelism
	}
	if par > server.MaxBatchParallelism {
		par = server.MaxBatchParallelism
	}
	if par > len(resolved) {
		par = len(resolved)
	}

	n := len(resolved)
	recs := make([]*server.BatchItemResult, n)
	done := make([]chan struct{}, n)
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		done[i] = make(chan struct{})
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				recs[i] = c.batchItem(r.Context(), i, items[i], resolved[i], req)
				close(done[i])
			}
		}()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := server.BatchSummary{Done: true, Total: n}
	for i := 0; i < n; i++ {
		<-done[i]
		if recs[i].Status == "ok" {
			sum.OK++
		} else {
			sum.Failed++
			c.batchFailures.Add(1)
		}
		_ = enc.Encode(recs[i])
		if fl != nil {
			fl.Flush()
		}
	}
	wg.Wait()
	_ = enc.Encode(sum)
	if fl != nil {
		fl.Flush()
	}
}

// itemKey shards batch items exactly like the analyze proxy: workloads by
// name, everything else by resolved source hash.
func itemKey(item corpus.BatchItem, p server.BatchProgram) string {
	if item.Kind() == "workload" {
		return ProgramKey(item.Workload, "")
	}
	return ProgramKey("", p.Source)
}

// batchItem runs one manifest item somewhere in the cluster. The original
// (unresolved) item is forwarded so the worker constructs the record exactly
// as a single-node batch would; only transport-level failures — including a
// worker dying mid-stream after a 200 — fail over to the next owner. Worker
// result records, error or not, are deterministic answers and never retried.
func (c *Coordinator) batchItem(ctx context.Context, i int, item corpus.BatchItem, p server.BatchProgram, req server.BatchRequest) *server.BatchItemResult {
	c.batchItems.Add(1)
	// Unnamed items default their name from the batch index ("item-3"), but
	// inside the single-item sub-batch the worker would see index 0. Pin the
	// name the full manifest resolved so records match a single-node run.
	if item.Name == "" {
		item.Name = p.Name
	}
	sub := server.BatchRequest{
		Items:        []corpus.BatchItem{item},
		Parallelism:  1,
		Workers:      req.Workers,
		NoReductions: req.NoReductions,
		Liveness:     req.Liveness,
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		return &server.BatchItemResult{Index: i, Name: p.Name, Lines: p.Lines,
			Status: "error", HTTPStatus: http.StatusInternalServerError, Error: err.Error()}
	}

	key := itemKey(item, p)
	tried := map[string]bool{}
	var lastErr error
	for attempt := 0; ; attempt++ {
		// Re-read the ring each attempt: an ejection mid-batch re-routes the
		// remaining candidates without waiting for this item to exhaust them.
		var sh *shard
		for _, cand := range c.healthyOwners(key, len(c.order)) {
			if !tried[cand.url] {
				sh = cand
				break
			}
		}
		if sh == nil || ctx.Err() != nil {
			break
		}
		if attempt > 0 {
			c.batchRetries.Add(1)
		}
		tried[sh.url] = true
		rec, err := c.batchCall(ctx, sh, body)
		if err == nil {
			rec.Index = i
			return rec
		}
		lastErr = err
	}
	if ctx.Err() != nil && lastErr == nil {
		lastErr = ctx.Err()
	}
	return &server.BatchItemResult{Index: i, Name: p.Name, Lines: p.Lines,
		Status: "error", HTTPStatus: http.StatusBadGateway,
		Error: fmt.Sprintf("no worker could analyze item: %v", lastErr)}
}

// batchCall runs a single-item batch on one shard and returns the record. A
// non-200, a truncated stream, or a malformed record all mean "this worker
// didn't answer" — the caller's cue to fail over.
func (c *Coordinator) batchCall(ctx context.Context, sh *shard, body []byte) (*server.BatchItemResult, error) {
	ictx, cancel := context.WithTimeout(ctx, batchItemTimeout)
	defer cancel()
	resp, err := sh.do(ictx, http.MethodPost, "/v1/batch", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return nil, fmt.Errorf("worker %s: status %s: %s", sh.url, resp.Status, bytes.TrimSpace(msg))
	}
	dec := json.NewDecoder(resp.Body)
	var rec server.BatchItemResult
	if err := dec.Decode(&rec); err != nil {
		sh.errors.Add(1)
		return nil, fmt.Errorf("worker %s died mid-stream: %v", sh.url, err)
	}
	var sum server.BatchSummary
	if err := dec.Decode(&sum); err != nil || !sum.Done {
		sh.errors.Add(1)
		return nil, fmt.Errorf("worker %s: truncated batch stream", sh.url)
	}
	return &rec, nil
}
