package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"suifx/internal/server"
	"suifx/internal/session"
)

// probeLoop is the heartbeat: every ProbePeriod each worker's /v1/stats is
// probed directly (single attempt, no retries — the retry budget belongs to
// real requests). FailThreshold consecutive failures eject a worker from the
// ring; the next successful probe rejoins it. Every membership change bumps
// the ring generation and rebalances sessions onto their new ring owners via
// the drain protocol.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbePeriod)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if c.probeOnce() {
				c.rebuildRing()
				c.rebalance()
			}
		}
	}
}

// probeOnce probes every shard and returns whether membership changed. It
// runs only on the prober goroutine (shard.fails is unsynchronized by
// design).
func (c *Coordinator) probeOnce() (changed bool) {
	for _, u := range c.order {
		sh := c.shards[u]
		ok := c.probe(sh)
		switch {
		case ok && !sh.healthy.Load():
			sh.fails = 0
			sh.healthy.Store(true)
			changed = true
		case ok:
			sh.fails = 0
		default:
			sh.fails++
			if sh.fails >= c.cfg.FailThreshold && sh.healthy.Load() {
				sh.healthy.Store(false)
				changed = true
			}
		}
	}
	return changed
}

func (c *Coordinator) probe(sh *shard) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/v1/stats", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// rebuildRing recomputes the ring over the currently healthy members.
func (c *Coordinator) rebuildRing() {
	var healthy []string
	for _, u := range c.order {
		if c.shards[u].healthy.Load() {
			healthy = append(healthy, u)
		}
	}
	gen := c.gen.Add(1)
	c.ring.Store(BuildRing(healthy, c.cfg.Replicas, gen))
}

// rebalance moves sessions whose registry host no longer matches their ring
// owner: drain the old host (serializing each session's source, options and
// accepted-assertion script) and replay each export on its new owner. A
// session on an unreachable host stays registered — if the worker comes
// back, a later rebalance migrates it; if not, requests fail with an honest
// 503 rather than silently losing the dialogue.
func (c *Coordinator) rebalance() {
	snapshot := c.regSnapshot()
	ring := c.ring.Load()

	// Group movers by their current host so each host drains once.
	moves := map[string][]string{}
	for id, host := range snapshot {
		want := ring.Owner(sessionKey(id))
		if want == "" || want == host {
			continue
		}
		if sh := c.shards[host]; sh == nil || !sh.healthy.Load() {
			continue // host unreachable: nothing to drain from
		}
		moves[host] = append(moves[host], id)
	}

	for host, ids := range moves {
		exports, err := c.drainFrom(host, ids)
		if err != nil {
			continue // host died mid-rebalance; the next cycle retries
		}
		for _, ex := range exports {
			c.sessionsDrained.Add(1)
			if err := c.replay(ex); err != nil {
				c.sessionsLost.Add(1)
				c.regDelete(ex.ID)
			} else {
				c.sessionsMigrated.Add(1)
			}
		}
	}
}

func (c *Coordinator) drainFrom(host string, ids []string) ([]session.Export, error) {
	sh := c.shards[host]
	body, err := json.Marshal(server.DrainRequest{IDs: ids})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := sh.do(ctx, http.MethodPost, "/v1/drain", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("drain %s: status %s", host, resp.Status)
	}
	var dr server.DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return nil, err
	}
	// Ids the host no longer had (expired, evicted) are gone for good.
	for _, id := range dr.Missing {
		c.regDelete(id)
		c.sessionsLost.Add(1)
	}
	return dr.Sessions, nil
}

// replay recreates one drained session on its current ring owner.
func (c *Coordinator) replay(ex session.Export) error {
	owners := c.healthyOwners(sessionKey(ex.ID), 1)
	if len(owners) == 0 {
		return fmt.Errorf("no healthy owner for session %s", ex.ID)
	}
	sh := owners[0]
	req := server.SessionCreateRequest{
		SourceRef:    server.SourceRef{Name: ex.Name, Source: ex.Source},
		Workers:      ex.Workers,
		NoReductions: ex.NoReductions,
		NoLiveness:   ex.NoLiveness,
		MaxOps:       ex.MaxOps,
		ID:           ex.ID,
		Resume:       ex.Asserts,
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, err := sh.do(ctx, http.MethodPost, "/v1/session", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("replay on %s: status %s: %s", sh.url, resp.Status, bytes.TrimSpace(msg))
	}
	c.regSet(ex.ID, sh.url)
	return nil
}
