package cluster

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"suifx/internal/server"
)

// Defaults for the zero-ish Config.
const (
	DefaultHedgeDelay    = 300 * time.Millisecond
	DefaultProbePeriod   = 2 * time.Second
	DefaultProbeTimeout  = 2 * time.Second
	DefaultFailThreshold = 3
)

// Config tunes a Coordinator.
type Config struct {
	// Addr is the coordinator's listen address (default "127.0.0.1:7460").
	Addr string
	// Workers are the backend base URLs (scheme optional; "host:port" gets
	// "http://"). At least one is required.
	Workers []string
	// MaxBodyBytes caps request bodies, mirroring the worker's 413 contract.
	// Default 1 MiB.
	MaxBodyBytes int64
	// MaxConnsPerShard bounds in-flight requests per worker. Default 8.
	MaxConnsPerShard int
	// RetryAttempts is the per-shard transient-retry budget. Default 3.
	RetryAttempts int
	// HedgeDelay arms a hedge for idempotent /v1/analyze calls: if the owner
	// hasn't answered within this delay, the same request is raced on the
	// next ring owner and the first answer wins. 0 means DefaultHedgeDelay;
	// negative disables hedging.
	HedgeDelay time.Duration
	// ProbePeriod / ProbeTimeout drive the /v1/stats heartbeat probes.
	// Defaults 2s / 2s.
	ProbePeriod  time.Duration
	ProbeTimeout time.Duration
	// FailThreshold ejects a worker after this many consecutive probe
	// failures; the next successful probe rejoins it (and triggers a session
	// rebalance). Default 3.
	FailThreshold int
	// Replicas is the ring's virtual-node count per worker. Default 64.
	Replicas int
	// BatchParallelism bounds cluster-wide concurrent batch items.
	// Default 2 per worker, max 32.
	BatchParallelism int
	// ShutdownGrace bounds graceful shutdown (default 5s).
	ShutdownGrace time.Duration
	// Client overrides the proxy HTTP client (tests inject httptest clients).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7460"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxConnsPerShard <= 0 {
		c.MaxConnsPerShard = DefaultMaxConnsPerShard
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = DefaultHedgeDelay
	}
	if c.ProbePeriod <= 0 {
		c.ProbePeriod = DefaultProbePeriod
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = 2 * len(c.Workers)
	}
	if c.BatchParallelism > 32 {
		c.BatchParallelism = 32
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: DefaultMaxConnsPerShard,
		}}
	}
	return c
}

// Coordinator fronts the worker fleet with the single-node wire contract.
type Coordinator struct {
	cfg    Config
	shards map[string]*shard
	order  []string // sorted worker URLs
	ring   atomic.Pointer[Ring]
	gen    atomic.Uint64
	mux    *http.ServeMux
	start  time.Time

	// reg tracks which worker hosts each live session — the source of truth
	// for sticky routing; the ring only decides initial and rebalanced
	// placement.
	regMu sync.Mutex
	reg   map[string]string // session id → worker URL

	sessionsDrained  atomic.Int64
	sessionsMigrated atomic.Int64
	sessionsLost     atomic.Int64
	batchItems       atomic.Int64
	batchRetries     atomic.Int64
	batchFailures    atomic.Int64

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a Coordinator over the worker URLs and starts its health
// prober; callers must Close it (ListenAndServe does so on the way out).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one worker URL")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		shards: map[string]*shard{},
		mux:    http.NewServeMux(),
		reg:    map[string]string{},
		start:  time.Now(),
		stop:   make(chan struct{}),
	}
	for _, raw := range cfg.Workers {
		u := normalizeWorkerURL(raw)
		if _, dup := c.shards[u]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %q", u)
		}
		c.shards[u] = newShard(u, cfg.MaxConnsPerShard, cfg.Client, cfg.RetryAttempts)
		c.order = append(c.order, u)
	}
	sort.Strings(c.order)
	c.gen.Store(1)
	c.ring.Store(BuildRing(c.order, cfg.Replicas, 1))

	c.mux.Handle("POST /v1/analyze", c.proxyProgram("/v1/analyze", true))
	c.mux.Handle("POST /v1/slice", c.proxyProgram("/v1/slice", false))
	c.mux.Handle("POST /v1/profile", c.proxyProgram("/v1/profile", false))
	c.mux.Handle("POST /v1/tune", c.proxyProgram("/v1/tune", false))
	c.mux.Handle("POST /v1/batch", http.HandlerFunc(c.handleBatch))
	c.mux.Handle("GET /v1/stats", http.HandlerFunc(c.handleStats))
	c.mux.Handle("POST /v1/session", http.HandlerFunc(c.handleSessionCreate))
	c.mux.Handle("/v1/session/{id}", http.HandlerFunc(c.handleSessionSub))
	c.mux.Handle("/v1/session/{id}/{sub...}", http.HandlerFunc(c.handleSessionSub))

	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

func normalizeWorkerURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Handler returns the coordinator's HTTP handler; like the worker's, the mux
// is wrapped so routing-level 404/405s share the JSON error envelope.
func (c *Coordinator) Handler() http.Handler { return server.EnvelopeHandler(c.mux) }

// Close stops the health prober. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
	})
}

// ListenAndServe serves until ctx is cancelled, then shuts down gracefully.
// ready, when non-nil, receives the bound address.
func (c *Coordinator) ListenAndServe(ctx context.Context, ready func(addr string)) error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: c.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		grace, cancel := context.WithTimeout(context.Background(), c.cfg.ShutdownGrace)
		defer cancel()
		_ = hs.Shutdown(grace)
	}()
	if ready != nil {
		ready(ln.Addr().String())
	}
	err = hs.Serve(ln)
	<-done
	c.Close()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// readBody reads a size-capped request body, mirroring the worker's
// 413 contract.
func readBody(r *http.Request, limit int64) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	r.Body = http.MaxBytesReader(nil, r.Body, limit)
	b, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, server.Errf(http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		}
		return nil, server.Errf(http.StatusBadRequest, "reading request: %v", err)
	}
	return b, nil
}

// ProgramKey is the shard key for program-scoped requests: named workloads
// by name (every shard resolves them identically), inline sources by content
// hash, so identical sources land on the same shard's summary cache.
// Exported so benchmarks and tools can model ring placement.
func ProgramKey(workload, source string) string {
	if workload != "" {
		return "wl:" + workload
	}
	h := sha256.Sum256([]byte(source))
	return "src:" + hex.EncodeToString(h[:])
}

func sessionKey(id string) string { return "sess:" + id }

// healthyOwners maps the key's ring owners to live shards, in failover order.
func (c *Coordinator) healthyOwners(key string, n int) []*shard {
	ring := c.ring.Load()
	urls := ring.OwnerN(key, n)
	out := make([]*shard, 0, len(urls))
	for _, u := range urls {
		if sh := c.shards[u]; sh != nil && sh.healthy.Load() {
			out = append(out, sh)
		}
	}
	return out
}

// proxyProgram forwards a program-keyed endpoint to the owning shard, with
// sequential failover across surviving owners and, when hedge is set, a
// hedged second request after HedgeDelay (idempotent endpoints only).
func (c *Coordinator) proxyProgram(path string, hedge bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(r, c.cfg.MaxBodyBytes)
		if err != nil {
			server.WriteError(w, server.StatusOf(err), err.Error())
			return
		}
		var sr struct {
			Source   string `json:"source"`
			Workload string `json:"workload"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			server.WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("malformed JSON request: %v", err))
			return
		}
		key := ProgramKey(sr.Workload, sr.Source)
		resp, err := c.fanDo(r.Context(), key, http.MethodPost, path, body, hedge)
		if err != nil {
			server.WriteError(w, server.StatusOf(err), err.Error())
			return
		}
		copyResponse(w, resp)
	})
}

// fanDo issues the request to the key's owner, failing over through the
// remaining healthy owners on transport-level failure. With hedge set and a
// second owner available, the hedge fires after HedgeDelay and the first
// answer wins (the straggler is drained in the background). A worker's HTTP
// response — any status — is an answer, never failed over: 4xx/5xx bodies
// are deterministic worker verdicts the client must see verbatim.
func (c *Coordinator) fanDo(ctx context.Context, key, method, path string, body []byte, hedge bool) (*http.Response, error) {
	candidates := c.healthyOwners(key, len(c.order))
	if len(candidates) == 0 {
		return nil, server.Errf(http.StatusServiceUnavailable, "no healthy workers")
	}
	hedgeDelay := c.cfg.HedgeDelay
	if !hedge || hedgeDelay < 0 || len(candidates) == 1 {
		hedgeDelay = 0
	}

	type result struct {
		resp *http.Response
		err  error
	}
	resCh := make(chan result, len(candidates))
	launched, finished := 0, 0
	launch := func(isHedge bool) {
		sh := candidates[launched]
		launched++
		if isHedge {
			sh.hedges.Add(1)
		}
		go func() {
			resp, err := sh.do(ctx, method, path, body)
			resCh <- result{resp, err}
		}()
	}
	launch(false)

	var hedgeTimer <-chan time.Time
	if hedgeDelay > 0 {
		t := time.NewTimer(hedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}

	var lastErr error
	for {
		select {
		case res := <-resCh:
			finished++
			if res.err == nil {
				// Reap any straggler so its pool slot is released.
				if outstanding := launched - finished; outstanding > 0 {
					go func() {
						for i := 0; i < outstanding; i++ {
							if r := <-resCh; r.err == nil {
								io.Copy(io.Discard, io.LimitReader(r.resp.Body, 1<<20))
								r.resp.Body.Close()
							}
						}
					}()
				}
				return res.resp, nil
			}
			lastErr = res.err
			if launched < len(candidates) {
				launch(false)
			} else if finished == launched {
				return nil, server.Errf(http.StatusBadGateway,
					"no worker could serve %s %s: %v", method, path, lastErr)
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if launched < len(candidates) {
				launch(true)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// copyResponse relays the worker's response verbatim — same status, same
// body bytes — so coordinator and worker are wire-indistinguishable.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// --- session routing ---

func genSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("cluster: id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func (c *Coordinator) regGet(id string) (string, bool) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	u, ok := c.reg[id]
	return u, ok
}

func (c *Coordinator) regSet(id, url string) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.reg[id] = url
}

func (c *Coordinator) regDelete(id string) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	delete(c.reg, id)
}

func (c *Coordinator) regLen() int {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return len(c.reg)
}

func (c *Coordinator) regSnapshot() map[string]string {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	out := make(map[string]string, len(c.reg))
	for id, u := range c.reg {
		out[id] = u
	}
	return out
}

// handleSessionCreate assigns the session id up front — the ring routes by
// id, so the id must exist before the owner is chosen — and registers the
// placement on success.
func (c *Coordinator) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r, c.cfg.MaxBodyBytes)
	if err != nil {
		server.WriteError(w, server.StatusOf(err), err.Error())
		return
	}
	var req server.SessionCreateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest,
			fmt.Sprintf("malformed JSON request: %v", err))
		return
	}
	if req.ID == "" {
		req.ID = genSessionID()
	}
	buf, err := json.Marshal(&req)
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	owners := c.healthyOwners(sessionKey(req.ID), 1)
	if len(owners) == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	sh := owners[0]
	resp, err := sh.do(r.Context(), http.MethodPost, "/v1/session", buf)
	if err != nil {
		server.WriteError(w, http.StatusBadGateway,
			fmt.Sprintf("session create on %s: %v", sh.url, err))
		return
	}
	if resp.StatusCode == http.StatusOK {
		c.regSet(req.ID, sh.url)
	}
	copyResponse(w, resp)
}

// handleSessionSub forwards every /v1/session/{id}... subroute to the
// session's host verbatim — method included, so the worker still owns the
// 404/405 contract for unknown subroutes and wrong methods.
func (c *Coordinator) handleSessionSub(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	host, ok := c.regGet(id)
	if !ok {
		// Unknown to the registry: route by ring so the owning worker can
		// give the canonical "unknown session" 404.
		owners := c.healthyOwners(sessionKey(id), 1)
		if len(owners) == 0 {
			server.WriteError(w, http.StatusServiceUnavailable, "no healthy workers")
			return
		}
		host = owners[0].url
	}
	sh := c.shards[host]
	if sh == nil || !sh.healthy.Load() {
		server.WriteError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("worker %s hosting session %q is unavailable", host, id))
		return
	}
	body, err := readBody(r, c.cfg.MaxBodyBytes)
	if err != nil {
		server.WriteError(w, server.StatusOf(err), err.Error())
		return
	}
	if len(body) == 0 {
		body = nil
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	resp, err := sh.do(r.Context(), r.Method, path, body)
	if err != nil {
		server.WriteError(w, http.StatusBadGateway,
			fmt.Sprintf("session %q on %s: %v", id, host, err))
		return
	}
	if r.Method == http.MethodDelete && resp.StatusCode == http.StatusOK {
		c.regDelete(id)
	}
	copyResponse(w, resp)
}
