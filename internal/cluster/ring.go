// Package cluster turns N independent suifxd workers into one analysis
// service: a coordinator that speaks the worker wire contract verbatim,
// consistent-hash shards programs and sessions across the healthy workers,
// retries transient failures, hedges idempotent analyze calls, fans corpus
// batches across the fleet, and — when membership changes — rebalances live
// Guru sessions by draining them from their old shard and replaying them on
// the new owner (the /v1/drain protocol).
//
// What crosses the wire is deliberately small: requests, JSON results, and
// drained session scripts (source + options + accepted assertions) — never
// ASTs or analysis state. Workers stay oblivious to the cluster; each is
// exactly the single-node server, so a coordinator with one worker and a
// bare worker are byte-for-byte interchangeable.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per member. 64 vnodes keep the
// max/min load ratio within a few percent for small clusters while the ring
// stays tiny (N*64 points).
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over the current healthy
// members. Membership changes build a new Ring with a bumped generation;
// lookups never lock.
type Ring struct {
	gen     uint64
	hashes  []uint64 // sorted vnode positions
	owners  []string // owners[i] owns hashes[i]
	members []string // sorted distinct members
}

// BuildRing places every member at `replicas` virtual points.
func BuildRing(members []string, replicas int, gen uint64) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	r := &Ring{gen: gen, members: ms}
	for _, m := range ms {
		for i := 0; i < replicas; i++ {
			r.hashes = append(r.hashes, hashKey(fmt.Sprintf("%s#%d", m, i)))
			r.owners = append(r.owners, m)
		}
	}
	sort.Sort(byHash{r})
	return r
}

type byHash struct{ r *Ring }

func (b byHash) Len() int           { return len(b.r.hashes) }
func (b byHash) Less(i, j int) bool { return b.r.hashes[i] < b.r.hashes[j] }
func (b byHash) Swap(i, j int) {
	b.r.hashes[i], b.r.hashes[j] = b.r.hashes[j], b.r.hashes[i]
	b.r.owners[i], b.r.owners[j] = b.r.owners[j], b.r.owners[i]
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	// FNV-1a alone has weak avalanche on short, near-identical strings — the
	// "<member>#<i>" vnode keys land clustered, skewing a 2-member ring as
	// far as 74/26 no matter how many replicas. The murmur3 fmix64 finalizer
	// restores uniform vnode placement.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Gen is the ring's generation (bumped on every membership change).
func (r *Ring) Gen() uint64 { return r.gen }

// Members returns the sorted member list.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning the key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	o := r.OwnerN(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// OwnerN returns up to n distinct members in ring order starting at the
// key's position: the owner first, then the failover/hedge candidates.
func (r *Ring) OwnerN(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.hashes) && len(out) < n; k++ {
		owner := r.owners[(i+k)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}
