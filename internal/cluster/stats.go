package cluster

import (
	"net/http"
	"time"

	"suifx/internal/server"
)

// --- GET /v1/stats (coordinator) ---

// WorkerStats is one shard's counters as seen from the coordinator.
type WorkerStats struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Requests counts forwarded calls; Errors, exhausted-retry failures;
	// Retries, individual transient re-attempts; Hedges, hedged analyze
	// requests fired at this shard.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Retries  int64 `json:"retries"`
	Hedges   int64 `json:"hedges"`
	// Sessions is how many live sessions the registry places here.
	Sessions int `json:"sessions"`
}

// Stats is the coordinator's observability snapshot.
type Stats struct {
	RingGeneration uint64 `json:"ring_generation"`
	HealthyWorkers int    `json:"healthy_workers"`
	TotalWorkers   int    `json:"total_workers"`
	// Sessions is the registry size; Drained/Migrated/Lost count rebalance
	// outcomes (a drained session is either migrated or lost).
	Sessions         int   `json:"sessions"`
	SessionsDrained  int64 `json:"sessions_drained"`
	SessionsMigrated int64 `json:"sessions_migrated"`
	SessionsLost     int64 `json:"sessions_lost"`
	// BatchItems counts fanned-out items; BatchRetries, cross-shard failover
	// attempts; BatchFailures, items that ended as error records.
	BatchItems    int64         `json:"batch_items"`
	BatchRetries  int64         `json:"batch_retries"`
	BatchFailures int64         `json:"batch_failures"`
	UptimeSec     float64       `json:"uptime_sec"`
	Workers       []WorkerStats `json:"workers"`
}

// StatsResponse wraps the cluster block, mirroring the worker's stats
// envelope style (a top-level keyed object).
type StatsResponse struct {
	Cluster Stats `json:"cluster"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() *StatsResponse {
	perHost := map[string]int{}
	for _, host := range c.regSnapshot() {
		perHost[host]++
	}
	st := Stats{
		RingGeneration: c.ring.Load().Gen(),
		TotalWorkers:   len(c.order),
		Sessions:       c.regLen(),

		SessionsDrained:  c.sessionsDrained.Load(),
		SessionsMigrated: c.sessionsMigrated.Load(),
		SessionsLost:     c.sessionsLost.Load(),
		BatchItems:       c.batchItems.Load(),
		BatchRetries:     c.batchRetries.Load(),
		BatchFailures:    c.batchFailures.Load(),
		UptimeSec:        time.Since(c.start).Seconds(),
	}
	for _, u := range c.order {
		sh := c.shards[u]
		healthy := sh.healthy.Load()
		if healthy {
			st.HealthyWorkers++
		}
		st.Workers = append(st.Workers, WorkerStats{
			URL:      u,
			Healthy:  healthy,
			Requests: sh.requests.Load(),
			Errors:   sh.errors.Load(),
			Retries:  sh.retries.Load(),
			Hedges:   sh.hedges.Load(),
			Sessions: perHost[u],
		})
	}
	return &StatsResponse{Cluster: st}
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, c.Stats())
}
