// Package workloads holds the MiniF re-creations of the paper's benchmark
// applications. Each program reproduces the loop structure, dependence
// patterns and parallelization story the thesis describes for the original
// Fortran application (scaled down in size; see DESIGN.md's substitution
// notes): which loops the compiler parallelizes automatically, which arrays
// need which user assertion, which arrays are dead at loop exits, where
// reductions matter, and where memory behaviour dominates.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"suifx/internal/ir"
	"suifx/internal/minif"
	"suifx/internal/parallel"
)

// Workload is one benchmark program plus its paper-derived metadata.
type Workload struct {
	Name        string
	Suite       string // "ch4", "ch5", "spec92", "nas", "perfect"
	Description string
	DataSet     string
	Source      string
	// UserAssertions is the §4.4 user-assistance script: per loop ID, the
	// variables the programmer asserts (after inspecting slices).
	UserAssertions map[string]parallel.AssertSet
	// StreamingLoops lists loops whose arrays are vector-style temporaries
	// (array contraction targets; drives the Fig 5-12 memory model).
	StreamingLoops []string
	// ConflictingDecomp lists loops whose data decomposition clashes with a
	// neighbor's (the hydro §4.2.4 row/column story).
	ConflictingDecomp []string

	once sync.Once
	prog *ir.Program
	err  error
}

// Program parses (once) and returns the program.
func (w *Workload) Program() *ir.Program {
	w.once.Do(func() { w.prog, w.err = minif.Parse(w.Name, w.Source) })
	if w.err != nil {
		panic(fmt.Sprintf("workload %s: %v", w.Name, w.err))
	}
	return w.prog
}

// Fresh parses a new, independent copy (interpreter runs mutate nothing in
// the IR, but separate copies keep experiments isolated).
func (w *Workload) Fresh() *ir.Program {
	p, err := minif.Parse(w.Name, w.Source)
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", w.Name, err))
	}
	return p
}

// Assertions deep-copies the user-assistance script in the parallelizer's
// format.
func (w *Workload) Assertions() map[string]parallel.AssertSet {
	out := map[string]parallel.AssertSet{}
	for k, v := range w.UserAssertions {
		as := parallel.AssertSet{Private: map[string]bool{}, Independent: map[string]bool{}}
		for n := range v.Private {
			as.Private[n] = true
		}
		for n := range v.Independent {
			as.Independent[n] = true
		}
		out[k] = as
	}
	return out
}

var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	registry[w.Name] = w
	return w
}

// ByName returns a registered workload.
func ByName(n string) *Workload {
	w := registry[n]
	if w == nil {
		panic("workloads: unknown workload " + n)
	}
	return w
}

// All returns every workload sorted by suite then name.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the workloads of one suite.
func Suite(s string) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// priv builds a private-assertion set.
func priv(names ...string) parallel.AssertSet {
	as := parallel.AssertSet{Private: map[string]bool{}, Independent: map[string]bool{}}
	for _, n := range names {
		as.Private[n] = true
	}
	return as
}
