package workloads

import (
	"testing"

	"suifx/internal/parallel"
	"suifx/internal/summary"
)

// keyLoops maps each Chapter 6 kernel to the dominant loop that needs the
// reduction transformation.
var keyLoops = map[string]string{
	"su2cor":  "SU2COR/50",
	"nasa7":   "NASA7/50",
	"ora":     "ORA/50",
	"mdljdp2": "MDLJDP2/50",
	"appbt":   "APPBT/50",
	"applu":   "APPLU/50",
	"appsp":   "APPSP/50",
	"cgm":     "CGM/60",
	"embar":   "EMBAR/50",
	"mgrid":   "MGRID/60",
	"bdna":    "BDNA/70",
	"trfd":    "TRFD/50",
}

func ch6Workloads() []*Workload {
	var out []*Workload
	for _, s := range []string{"nas", "perfect", "spec92"} {
		out = append(out, Suite(s)...)
	}
	return out
}

func TestReductionImpact(t *testing.T) {
	for _, w := range ch6Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			id := keyLoops[w.Name]
			if id == "" {
				t.Fatalf("no key loop registered for %s", w.Name)
			}
			without := parallel.Parallelize(w.Fresh(), parallel.Config{UseReductions: false})
			li := without.LoopByID(id)
			if li == nil {
				t.Fatalf("no loop %s", id)
			}
			if li.Dep.Parallelizable {
				t.Fatalf("%s should be blocked without reduction recognition", id)
			}
			with := parallel.Parallelize(w.Fresh(), parallel.Config{UseReductions: true})
			li2 := with.LoopByID(id)
			if !li2.Dep.Parallelizable {
				t.Fatalf("%s should parallelize with reductions: %v", id, li2.Dep.Blocking)
			}
			if !li2.Dep.NeedsReduction {
				t.Fatalf("%s should require the reduction transformation", id)
			}
		})
	}
}

func TestCh6WorkloadsExecute(t *testing.T) {
	for _, w := range ch6Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			in := newInterp(t, w)
			if err := in.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReductionCensus(t *testing.T) {
	// Fig 6-2 style: the SPEC92-suite census covers all four operators.
	counts := map[string]int{}
	for _, w := range Suite("spec92") {
		for k, n := range summary.CountReductionStatements(w.Program()) {
			counts[k] += n
		}
	}
	for _, want := range []string{"+ scalar", "+ array", "* scalar", "MIN scalar", "MAX scalar"} {
		if counts[want] == 0 {
			t.Errorf("census missing %q: %v", want, counts)
		}
	}
}
