package workloads

import "suifx/internal/parallel"

// The four Chapter 4 applications. Each reproduces its paper story:
//
//   - mdg: interf/1000 dominates execution, is blocked statically only by
//     the conditionally-written array RL (Fig 4-3), shows no dynamic
//     dependences, and parallelizes after the user asserts RL privatizable.
//   - hydro: vsetuv/85 and friends have loop-variant private ranges written
//     through calls (Fig 4-5 / Fig 5-1); dkrc's upwards-exposed first
//     element needs a user assertion, aif3 needs the liveness analysis.
//   - arc3d: stepf3d's SN is initialized under N=3/4/5 conditionals that
//     cover the iteration space — privatizable only to a human (§4.4.1).
//   - flo88: psmoo's temporaries need the input relationship IE = IL+1
//     (§4.4.1); its vector-style temporaries are the Chapter 5 contraction
//     targets.

// Mdg is the molecular-dynamics model (Perfect Club).
var Mdg = register(&Workload{
	Name:        "mdg",
	Suite:       "ch4",
	Description: "Molecular dynamics model",
	DataSet:     "60 molecules, 4 steps",
	Source: `
C     mdg: molecular dynamics model (scaled reproduction)
      SUBROUTINE dists(i, j)
      COMMON /coords/ xm(200), vm(200)
      COMMON /work/ rs(16), rl(16)
      INTEGER i, j, k
      DO 10 k = 1, 9
        rs(k) = ABS(xm(i) - xm(j)) + k * 9.0
10    CONTINUE
      END

      SUBROUTINE vforce(cut2)
      COMMON /work/ rs(16), rl(16)
      REAL cut2
      INTEGER k
      DO 1130 k = 2, 5
        IF (rs(k+4) .LE. cut2) rl(k+4) = rs(k) * 2.0 - rs(k+4)
1130  CONTINUE
      END

      SUBROUTINE interf(cut2, nmol)
      COMMON /work/ rs(16), rl(16)
      COMMON /forces/ fsum(16), epot
      REAL cut2
      INTEGER i, j, k, kc, nmol
      DO 1000 i = 1, nmol
        DO 1100 j = 1, nmol
          CALL dists(i, j)
          kc = 0
          DO 1110 k = 1, 9
            IF (rs(k) .GT. cut2) kc = kc + 1
1110      CONTINUE
          IF (kc .NE. 9) THEN
            CALL vforce(cut2)
            IF (kc .EQ. 0) THEN
              DO 1140 k = 11, 14
                epot = epot + rl(k-5) * 0.001
1140          CONTINUE
              DO 1160 k = 6, 9
                fsum(k) = fsum(k) + rl(k) * 0.01
1160          CONTINUE
            ENDIF
          ENDIF
1100    CONTINUE
1000  CONTINUE
      END

      SUBROUTINE update(nmol)
      COMMON /coords/ xm(200), vm(200)
      COMMON /forces/ fsum(16), epot
      INTEGER i, nmol
      DO 20 i = 1, nmol
        vm(i) = vm(i) + fsum(MOD(i,9)+1) * 0.001
        xm(i) = xm(i) + vm(i) * 0.01
20    CONTINUE
      END

      PROGRAM mdg
      COMMON /coords/ xm(200), vm(200)
      COMMON /work/ rs(16), rl(16)
      COMMON /forces/ fsum(16), epot
      REAL cut2
      INTEGER i, k, nmol, step, nstep
      nmol = 60
      nstep = 4
      cut2 = 90.0
      DO 50 i = 1, nmol
        xm(i) = MOD(i * 13, 97)
        vm(i) = 0.0
50    CONTINUE
      DO 2000 step = 1, nstep
        epot = 0.0
        DO 60 k = 1, 16
          fsum(k) = 0.0
60      CONTINUE
        CALL interf(cut2, nmol)
        CALL update(nmol)
2000  CONTINUE
      WRITE(*,*) epot, xm(1)
      END
`,
})

// Hydro is the 2-D Lagrangian hydrodynamics program (Los Alamos).
var Hydro = register(&Workload{
	Name:        "hydro",
	Suite:       "ch4",
	Description: "2-D Lagrangian hydrodynamics",
	DataSet:     "96x96 mesh, 3 cycles",
	Source: `
C     hydro: 2-D Lagrangian hydrodynamics (scaled reproduction)
      SUBROUTINE fvsr(q, n)
      REAL q(120)
      INTEGER j, n
      DO 10 j = 1, n
        q(j) = j * 0.5
10    CONTINUE
      END

      SUBROUTINE vsetuv
      COMMON /mesh/ v(100,100), duac(100,100)
      COMMON /wrk/ aif3(120), dkrc(120)
      COMMON /bounds/ klower(100), kupper(100), lmax, kmax
      INTEGER l, k, k1, k2
      DO 85 l = 2, lmax
        k1 = klower(l)
        k2 = kupper(l)
        IF (k1 .EQ. 0) GO TO 85
        CALL fvsr(aif3(k1), k2 - k1 + 1)
        DO 60 k = k1, k2
          IF (aif3(k) .GT. 0.2) dkrc(k) = aif3(k) * 0.3
60      CONTINUE
        DO 80 k = k1, k2 - 1
          duac(k, l) = dkrc(k) + dkrc(k+1)
80      CONTINUE
85    CONTINUE
      END

      SUBROUTINE vqterm
      COMMON /mesh/ v(100,100), duac(100,100)
      COMMON /wrk2/ dq(120)
      COMMON /bounds/ klower(100), kupper(100), lmax, kmax
      INTEGER k, l, l1, l2
      DO 85 k = 2, kmax
        l1 = klower(k)
        l2 = kupper(k)
        IF (l1 .EQ. 0) GO TO 85
        CALL fvsr(dq(l1), l2 - l1 + 1)
        DO 80 l = l1, l2
          v(k,l) = v(k,l) + duac(k,l) * dq(l)
80      CONTINUE
85    CONTINUE
      END

      SUBROUTINE vh2200
      COMMON /state/ r(100,100), e(100,100)
      COMMON /bounds/ klower(100), kupper(100), lmax, kmax
      COMMON /tot/ etot
      INTEGER l, k
      DO 1000 l = 2, lmax
        DO 900 k = 2, kmax
          etot = etot + e(k,l) * 0.001
900     CONTINUE
1000  CONTINUE
      END

      SUBROUTINE vsetgc
      COMMON /state/ r(100,100), e(100,100)
      COMMON /wrk3/ gc(120)
      COMMON /bounds/ klower(100), kupper(100), lmax, kmax
      INTEGER l, k, g1, g2
      DO 200 l = 2, lmax
        g1 = klower(l)
        g2 = kupper(l)
        IF (g1 .EQ. 0) GO TO 200
        CALL fvsr(gc(g1), g2 - g1 + 1)
        DO 150 k = g1, g2
          r(k,l) = r(k,l) * 0.98 + gc(k) * 0.02
150     CONTINUE
200   CONTINUE
      END

      SUBROUTINE update
      COMMON /mesh/ v(100,100), duac(100,100)
      COMMON /state/ r(100,100), e(100,100)
      COMMON /bounds/ klower(100), kupper(100), lmax, kmax
      COMMON /wrk4/ tmp(100)
      INTEGER l, k
      DO 1000 l = 2, lmax
        DO 900 k = 1, kmax
          tmp(k) = v(k,l) * 0.5 + r(k,l)
900     CONTINUE
        DO 950 k = 2, kmax
          r(k,l) = tmp(k) + tmp(k-1)
          e(k,l) = e(k,l) * 0.9 + r(k,l) * 0.1
950     CONTINUE
1000  CONTINUE
      END

      PROGRAM hydro
      COMMON /bounds/ klower(100), kupper(100), lmax, kmax
      COMMON /mesh/ v(100,100), duac(100,100)
      COMMON /state/ r(100,100), e(100,100)
      COMMON /tot/ etot
      INTEGER cyc, ncyc, l, k
      lmax = 96
      kmax = 96
      ncyc = 3
      DO 5 l = 1, 100
        klower(l) = MOD(l, 5)
        kupper(l) = 80 + MOD(l, 8)
5     CONTINUE
      DO 8 l = 1, 100
        DO 8 k = 1, 100
          v(k,l) = MOD(k * l, 13) * 0.1
          r(k,l) = MOD(k + l, 7) * 0.2
          e(k,l) = 1.0
8     CONTINUE
      etot = 0.0
      DO 100 cyc = 1, ncyc
        CALL vsetuv
        CALL vqterm
        CALL vsetgc
        CALL vh2200
        CALL update
100   CONTINUE
      WRITE(*,*) r(5,5), e(7,7), v(3,3), etot
      END
`,
})

// Arc3d is the 3-D Euler equations solver (NASA Ames).
var Arc3d = register(&Workload{
	Name:        "arc3d",
	Suite:       "ch4",
	Description: "3-D Euler equations solver",
	DataSet:     "80x80 grid, 3 steps",
	Source: `
C     arc3d: 3-D Euler solver (scaled reproduction)
      SUBROUTINE stepf3d
      COMMON /grid/ q(84,84), s(84,84)
      COMMON /dims/ lm, nm
      REAL sn
      INTEGER l, n, j
      DO 701 l = 2, lm
        DO 300 n = 3, 5
          IF (n .EQ. 3) sn = 0.1
          IF (n .EQ. 4) sn = 0.2
          IF (n .EQ. 5) sn = 0.3
          DO 250 j = 2, nm
            q(j, l) = q(j, l) + sn * s(j, l)
250       CONTINUE
300     CONTINUE
701   CONTINUE
      END

      SUBROUTINE stepf3d2
      COMMON /grid/ q(84,84), s(84,84)
      COMMON /dims/ lm, nm
      REAL sm
      INTEGER l, n, j
      DO 702 l = 2, lm
        DO 400 n = 3, 4
          IF (n .EQ. 3) sm = 0.4
          IF (n .EQ. 4) sm = 0.6
          DO 350 j = 2, nm
            s(j, l) = s(j, l) * 0.99 + sm * 0.01
350       CONTINUE
400     CONTINUE
702   CONTINUE
      END

      SUBROUTINE filter3d
      COMMON /grid/ q(84,84), s(84,84)
      COMMON /dims/ lm, nm
      COMMON /fwrk/ work(84)
      INTEGER l, j
      DO 701 l = 2, lm
        DO 600 j = 1, nm
          work(j) = q(j,l) * 0.25
600     CONTINUE
        DO 650 j = 2, nm
          q(j,l) = q(j,l) - work(j) + work(j-1)
650     CONTINUE
701   CONTINUE
      END

      PROGRAM arc3d
      COMMON /grid/ q(84,84), s(84,84)
      COMMON /dims/ lm, nm
      INTEGER step, nstep, l, j
      lm = 80
      nm = 80
      nstep = 3
      DO 5 l = 1, 84
        DO 5 j = 1, 84
          q(j,l) = MOD(j * l, 11) * 0.3
          s(j,l) = MOD(j + l, 5) * 0.2
5     CONTINUE
      DO 100 step = 1, nstep
        CALL stepf3d
        CALL stepf3d2
        CALL filter3d
100   CONTINUE
      WRITE(*,*) q(5,5), s(6,6)
      END
`,
})

// Flo88 is the transonic-flow wing-body analysis (Stanford CITS).
var Flo88 = register(&Workload{
	Name:        "flo88",
	Suite:       "ch4",
	Description: "Wing-body analysis solving transonic flow",
	DataSet:     "46x46 mesh, 20 planes, 4 sweeps",
	Source: `
C     flo88: transonic flow analysis (scaled reproduction)
      SUBROUTINE psmoo
      COMMON /flow/ p(50,50), w(50,50)
      COMMON /cfg/ il, ie, jl, kl
      COMMON /tmparr/ d(50,50), t(50,50)
      INTEGER i, j, k
      DO 50 k = 2, kl
        DO 20 j = 2, jl
          d(1,j) = 0.0
20      CONTINUE
        DO 30 i = 2, il
          DO 30 j = 2, jl
            t(i,j) = d(i-1,j) * 0.25 + w(i,j)
            d(i,j) = t(i,j) * 0.5
30      CONTINUE
        DO 40 j = 2, jl
          DO 40 i = 2, ie
            p(i,j) = p(i,j) + d(i-1,j) * 0.125
40      CONTINUE
50    CONTINUE
      END

      SUBROUTINE eflux
      COMMON /flow/ p(50,50), w(50,50)
      COMMON /cfg/ il, ie, jl, kl
      COMMON /ewrk/ fs(50)
      INTEGER i, j
      DO 50 j = 2, jl
        DO 30 i = 1, ie
          fs(i) = p(i,j) + p(i,j-1)
30      CONTINUE
        DO 40 i = 2, il
          w(i,j) = w(i,j) + fs(i) - fs(i-1)
40      CONTINUE
50    CONTINUE
      END

      SUBROUTINE dflux
      COMMON /flow/ p(50,50), w(50,50)
      COMMON /cfg/ il, ie, jl, kl
      COMMON /dwrk/ df(50)
      INTEGER i, j
      DO 30 j = 2, jl
        DO 20 i = 1, ie
          df(i) = w(i,j) * 0.5
20      CONTINUE
        DO 25 i = 2, il
          p(i,j) = p(i,j) * 0.97 + (df(i) + df(i-1)) * 0.015
25      CONTINUE
30    CONTINUE
      END

      PROGRAM flo88
      COMMON /flow/ p(50,50), w(50,50)
      COMMON /cfg/ il, ie, jl, kl
      COMMON /init/ cfgv(8)
      INTEGER i, j, sweep
      cfgv(1) = 45.0
      cfgv(2) = 46.0
      cfgv(3) = 45.0
      cfgv(4) = 20.0
      il = INT(cfgv(1))
      ie = INT(cfgv(2))
      jl = INT(cfgv(3))
      kl = INT(cfgv(4))
      DO 5 i = 1, 50
        DO 5 j = 1, 50
          p(i,j) = MOD(i + j, 9) * 0.4
          w(i,j) = MOD(i * j, 7) * 0.3
5     CONTINUE
      DO 100 sweep = 1, 4
        CALL psmoo
        CALL eflux
        CALL dflux
100   CONTINUE
      WRITE(*,*) p(9,9), w(8,8)
      END
`,
})

func init() {
	Mdg.UserAssertions = map[string]parallel.AssertSet{
		"INTERF/1000": priv("RL"),
	}
	Hydro.UserAssertions = map[string]parallel.AssertSet{
		"VSETUV/85":  priv("DKRC", "AIF3"),
		"VQTERM/85":  priv("DQ"),
		"VSETGC/200": priv("GC"),
	}
	Hydro.ConflictingDecomp = []string{"VSETUV/85", "VQTERM/85"}
	Arc3d.UserAssertions = map[string]parallel.AssertSet{
		"STEPF3D/701":  priv("SN"),
		"STEPF3D2/702": priv("SM"),
	}
	Flo88.UserAssertions = map[string]parallel.AssertSet{
		"PSMOO/50": priv("D", "T"),
		"EFLUX/50": priv("FS"),
		"DFLUX/30": priv("DF"),
	}
	Flo88.StreamingLoops = []string{"PSMOO/50"}
}
