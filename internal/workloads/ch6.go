package workloads

// The Chapter 6 reduction suite: twelve kernels in the style of the SPEC92,
// NAS Parallel and Perfect Club programs on which the paper reports parallel
// reductions have an impact (Figs 6-3..6-7). Each kernel's dominant loop
// carries a cross-iteration dependence that only reduction recognition
// resolves; together they exercise every reduction shape of §6.1: scalar
// sums and products, MIN/MAX, regular array-region reductions,
// interprocedural reductions, and sparse reductions through index arrays.

func kernel(name, suite, desc, src string) *Workload {
	return register(&Workload{Name: name, Suite: suite, Description: desc, DataSet: "synthetic", Source: src})
}

// --- SPEC92-style ---

// Su2cor: regular array-region reduction (gauge field sums).
var Su2cor = kernel("su2cor", "spec92", "Quark-gluon propagator (array-region reductions)", `
      PROGRAM su2cor
      REAL corr(8), field(64,64)
      INTEGER i, j, k, it
      DO 5 i = 1, 64
        DO 5 j = 1, 64
          field(i,j) = MOD(i * j, 17) * 0.1
5     CONTINUE
      DO 100 it = 1, 3
        DO 50 i = 1, 64
          DO 40 j = 1, 64
            DO 30 k = 1, 8
              corr(k) = corr(k) + field(i,j) * k * 0.001
30          CONTINUE
40        CONTINUE
50      CONTINUE
100   CONTINUE
      WRITE(*,*) corr(1), corr(8)
      END
`)

// Nasa7: MIN and MAX reductions over matrix kernels.
var Nasa7 = kernel("nasa7", "spec92", "Kernel suite (MIN/MAX reductions)", `
      PROGRAM nasa7
      REAL a(96,96), vmin, vmax
      INTEGER i, j, it
      DO 5 i = 1, 96
        DO 5 j = 1, 96
          a(i,j) = MOD(i * 7 + j * 3, 101) * 1.0
5     CONTINUE
      vmin = 1E30
      vmax = -1E30
      DO 100 it = 1, 4
        DO 50 i = 1, 96
          DO 40 j = 1, 96
            IF (a(i,j) .LT. vmin) vmin = a(i,j)
            vmax = MAX(vmax, a(i,j) * 0.5 + it)
40        CONTINUE
50      CONTINUE
100   CONTINUE
      WRITE(*,*) vmin, vmax
      END
`)

// Ora: scalar sum and product reductions (ray tracing through optics).
var Ora = kernel("ora", "spec92", "Optical ray tracing (scalar sum and product)", `
      PROGRAM ora
      REAL sum, prod, x
      INTEGER i, it
      sum = 0.0
      prod = 1.0
      DO 100 it = 1, 5
        DO 50 i = 1, 3000
          x = MOD(i * 31 + it, 97) * 0.01 + 0.5
          sum = sum + x * x
          prod = prod * (1.0 + x * 0.0001)
50      CONTINUE
100   CONTINUE
      WRITE(*,*) sum, prod
      END
`)

// Mdljdp2: sparse force accumulation through a neighbor index array.
var Mdljdp2 = kernel("mdljdp2", "spec92", "Molecular dynamics (sparse reductions)", `
      PROGRAM mdljdp2
      REAL f(500), x(500)
      INTEGER nbr(2000), i, it
      DO 5 i = 1, 500
        x(i) = MOD(i * 13, 89) * 0.1
5     CONTINUE
      DO 6 i = 1, 2000
        nbr(i) = MOD(i * 37, 500) + 1
6     CONTINUE
      DO 100 it = 1, 4
        DO 50 i = 1, 2000
          f(nbr(i)) = f(nbr(i)) + x(MOD(i,500)+1) * 0.001
50      CONTINUE
100   CONTINUE
      WRITE(*,*) f(1), f(250)
      END
`)

// --- NAS-style ---

// Appbt: block-tridiagonal RHS norms (scalar + array reductions).
var Appbt = kernel("appbt", "nas", "Block tridiagonal solver (norm reductions)", `
      SUBROUTINE addnorm(rms, v)
      REAL rms, v
      rms = rms + v * v
      END
      PROGRAM appbt
      REAL u(64,64), rms
      INTEGER i, j, it
      DO 5 i = 1, 64
        DO 5 j = 1, 64
          u(i,j) = MOD(i + j * 5, 23) * 0.2
5     CONTINUE
      rms = 0.0
      DO 100 it = 1, 4
        DO 50 i = 2, 63
          DO 40 j = 2, 63
            CALL addnorm(rms, u(i,j) - u(i-1,j) * 0.25)
40        CONTINUE
50      CONTINUE
100   CONTINUE
      WRITE(*,*) rms
      END
`)

// Applu: lower-upper solver residual sums.
var Applu = kernel("applu", "nas", "LU solver (residual reductions)", `
      PROGRAM applu
      REAL rsd(5), v(64,64)
      INTEGER i, j, m, it
      DO 5 i = 1, 64
        DO 5 j = 1, 64
          v(i,j) = MOD(i * 3 + j, 19) * 0.15
5     CONTINUE
      DO 100 it = 1, 4
        DO 50 i = 2, 63
          DO 40 j = 2, 63
            DO 30 m = 1, 5
              rsd(m) = rsd(m) + v(i,j) * m * 0.0001
30          CONTINUE
40        CONTINUE
50      CONTINUE
100   CONTINUE
      WRITE(*,*) rsd(1), rsd(5)
      END
`)

// Appsp: scalar pentadiagonal solver with interprocedural reductions.
var Appsp = kernel("appsp", "nas", "Scalar pentadiagonal solver (interprocedural reduction)", `
      SUBROUTINE accum(s, a, n)
      REAL s, a(64)
      INTEGER i, n
      DO 10 i = 1, n
        s = s + a(i) * 0.01
10    CONTINUE
      END
      PROGRAM appsp
      REAL rows(64,64), total
      INTEGER i, j, it
      DO 5 i = 1, 64
        DO 5 j = 1, 64
          rows(j,i) = MOD(i * j, 29) * 0.1
5     CONTINUE
      total = 0.0
      DO 100 it = 1, 6
        DO 50 i = 1, 64
          CALL accum(total, rows(1,i), 64)
50      CONTINUE
100   CONTINUE
      WRITE(*,*) total
      END
`)

// Cgm: conjugate-gradient sparse matrix-vector with dot-product reduction.
var Cgm = kernel("cgm", "nas", "Conjugate gradient (sparse dot products)", `
      PROGRAM cgm
      REAL aval(3000), x(400), y(400), dot
      INTEGER col(3000), rowlo(400), rowhi(400), i, k, it
      DO 5 i = 1, 400
        x(i) = MOD(i, 7) * 0.3
        rowlo(i) = (i-1) * 7 + 1
        rowhi(i) = i * 7
5     CONTINUE
      DO 6 k = 1, 3000
        aval(k) = MOD(k, 13) * 0.05
        col(k) = MOD(k * 11, 400) + 1
6     CONTINUE
      DO 100 it = 1, 3
        DO 50 i = 1, 400
          y(i) = 0.0
          DO 40 k = rowlo(i), rowhi(i)
            y(i) = y(i) + aval(k) * x(col(k))
40        CONTINUE
50      CONTINUE
        dot = 0.0
        DO 60 i = 1, 400
          dot = dot + x(i) * y(i)
60      CONTINUE
100   CONTINUE
      WRITE(*,*) dot
      END
`)

// Embar: the embarrassingly-parallel benchmark's Gaussian tally — a
// histogram (sparse array reduction).
var Embar = kernel("embar", "nas", "Embarrassingly parallel (histogram reduction)", `
      PROGRAM embar
      REAL q(10), x
      INTEGER i, bin, it
      DO 100 it = 1, 4
        DO 50 i = 1, 4000
          x = MOD(i * 17 + it * 29, 1000) * 0.001
          bin = INT(x * 10.0) + 1
          q(bin) = q(bin) + 1.0
50      CONTINUE
100   CONTINUE
      WRITE(*,*) q(1), q(10)
      END
`)

// Mgrid: multigrid smoother with an L2-norm reduction.
var Mgrid = kernel("mgrid", "nas", "Multigrid (norm reduction)", `
      PROGRAM mgrid
      REAL u(66,66), r(66,66), norm
      INTEGER i, j, it
      DO 5 i = 1, 66
        DO 5 j = 1, 66
          u(i,j) = MOD(i * j + 3, 31) * 0.1
5     CONTINUE
      DO 100 it = 1, 3
        DO 40 j = 2, 65
          DO 40 i = 2, 65
            r(i,j) = u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1) - 4.0 * u(i,j)
40      CONTINUE
        norm = 0.0
        DO 60 j = 2, 65
          DO 60 i = 2, 65
            norm = norm + r(i,j) * r(i,j)
60      CONTINUE
100   CONTINUE
      WRITE(*,*) norm
      END
`)

// --- Perfect Club-style ---

// Bdna: the §6.3.3/§6.3.5 patterns — a bounded reduction region FAX(1:n)
// plus indirect FOX updates through an index array.
var Bdna = kernel("bdna", "perfect", "Nucleic acid simulation (bounded + indirect reductions)", `
      PROGRAM bdna
      REAL fax(2000), fox(2000), foxp(600)
      INTEGER ind(600), i, ia, natoms, nsp, it
      natoms = 120
      nsp = 8
      DO 5 i = 1, 600
        ind(i) = MOD(i * 41, 300) + 1
        foxp(i) = MOD(i, 9) * 0.2
5     CONTINUE
      DO 100 it = 1, 3
        DO 50 i = 1, nsp
          DO 40 ia = 1, natoms
            fax(ia) = fax(ia) + ia * 0.001 + i * 0.0001
40        CONTINUE
50      CONTINUE
        DO 70 i = 1, 600
          fox(ind(i)) = fox(ind(i)) + foxp(i)
70      CONTINUE
100   CONTINUE
      WRITE(*,*) fax(1), fox(7)
      END
`)

// Trfd: two-electron integral transformation with triangular sums.
var Trfd = kernel("trfd", "perfect", "Integral transformation (triangular reductions)", `
      PROGRAM trfd
      REAL xij(80), v(80,80), s
      INTEGER i, j, it
      DO 5 i = 1, 80
        DO 5 j = 1, 80
          v(i,j) = MOD(i * 5 + j * 2, 37) * 0.1
5     CONTINUE
      DO 100 it = 1, 4
        DO 50 i = 1, 80
          DO 40 j = 1, i
            xij(i) = xij(i) + v(i,j) * 0.01
            s = s + v(j,i) * 0.001
40        CONTINUE
50      CONTINUE
100   CONTINUE
      WRITE(*,*) xij(40), s
      END
`)
