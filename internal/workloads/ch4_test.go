package workloads

import (
	"testing"

	"suifx/internal/liveness"
	"suifx/internal/parallel"
	"suifx/internal/summary"
)

// analyze runs the ch4 configuration: reductions on, liveness off (the
// Chapter 4 system predates the liveness analysis), with or without the
// workload's user-assistance script.
func analyzeCh4(t *testing.T, w *Workload, userAssisted bool) *parallel.Result {
	t.Helper()
	cfg := parallel.Config{UseReductions: true}
	if userAssisted {
		cfg.Assertions = w.Assertions()
	}
	return parallel.Parallelize(w.Fresh(), cfg)
}

func verdict(t *testing.T, res *parallel.Result, loopID string) *parallel.LoopInfo {
	t.Helper()
	li := res.LoopByID(loopID)
	if li == nil {
		t.Fatalf("no loop %s", loopID)
	}
	return li
}

func blockedOnlyBy(t *testing.T, li *parallel.LoopInfo, names ...string) {
	t.Helper()
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	got := map[string]bool{}
	for _, b := range li.Dep.Blocking {
		got[b.Sym.Name] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("%s: expected blocking var %s, got %v", li.ID(), n, li.Dep.Blocking)
		}
	}
	for n := range got {
		if !want[n] {
			t.Errorf("%s: unexpected blocking var %s (blocking: %v)", li.ID(), n, li.Dep.Blocking)
		}
	}
}

func TestMdgStory(t *testing.T) {
	auto := analyzeCh4(t, Mdg, false)
	li := verdict(t, auto, "INTERF/1000")
	if li.Dep.Parallelizable {
		t.Fatal("interf/1000 must not parallelize automatically")
	}
	blockedOnlyBy(t, li, "RL")
	// epot and fsum are recognized reductions; rs and kc privatize.
	classes := map[string]string{}
	for _, vr := range li.Dep.Vars {
		classes[vr.Sym.Name] = vr.Class.String()
	}
	if classes["EPOT"] != "reduction" || classes["FSUM"] != "reduction" {
		t.Fatalf("reductions not recognized: %v", classes)
	}
	if classes["RS"] != "private" || classes["KC"] != "private" {
		t.Fatalf("privatization not recognized: %v", classes)
	}
	// With the user's assertion, the loop parallelizes.
	user := analyzeCh4(t, Mdg, true)
	li2 := verdict(t, user, "INTERF/1000")
	if !li2.Dep.Parallelizable || !li2.Chosen {
		t.Fatalf("asserted interf/1000 should be the chosen parallel loop: %v", li2.Dep.Blocking)
	}
	// The step loop stays sequential (forces feed the next step).
	if verdict(t, user, "MDG/2000").Dep.Parallelizable {
		t.Fatal("the time-step loop must stay sequential")
	}
}

func TestHydroStory(t *testing.T) {
	auto := analyzeCh4(t, Hydro, false)
	// vsetuv/85: blocked by dkrc (exposed first element) and aif3
	// (loop-variant private range, Fig 5-1) without liveness.
	li := verdict(t, auto, "VSETUV/85")
	if li.Dep.Parallelizable {
		t.Fatal("vsetuv/85 must not parallelize without liveness or assertions")
	}
	blockedOnlyBy(t, li, "DKRC", "AIF3")
	// vh2200/1000 parallelizes automatically via the etot reduction.
	if !verdict(t, auto, "VH2200/1000").Dep.Parallelizable {
		t.Fatal("vh2200/1000 should parallelize via reduction")
	}
	// update/1000 parallelizes automatically (tmp privatizes: identical
	// region every iteration).
	if !verdict(t, auto, "UPDATE/1000").Dep.Parallelizable {
		t.Fatalf("update/1000 should parallelize automatically: %v",
			verdict(t, auto, "UPDATE/1000").Dep.Blocking)
	}
	// With user assertions everything important parallelizes.
	user := analyzeCh4(t, Hydro, true)
	for _, id := range []string{"VSETUV/85", "VQTERM/85", "VSETGC/200"} {
		if !verdict(t, user, id).Dep.Parallelizable {
			t.Fatalf("%s should parallelize with assertions: %v", id, verdict(t, user, id).Dep.Blocking)
		}
	}
}

func TestHydroLivenessResolvesAif3(t *testing.T) {
	// The Chapter 5 system: liveness privatizes aif3 (dead at loop exit)
	// without any assertion; dkrc(1)'s exposed read still needs the user.
	prog := Hydro.Fresh()
	sum := summary.Analyze(prog)
	live := liveness.Analyze(sum, liveness.Full)
	res := parallel.ParallelizeWith(sum, parallel.Config{
		UseReductions: true,
		DeadAtExit:    live.Oracle(),
	})
	li := verdict(t, res, "VSETUV/85")
	blockedOnlyBy(t, li, "DKRC")
	// vqterm/85's dq is fully resolved by liveness.
	if !verdict(t, res, "VQTERM/85").Dep.Parallelizable {
		t.Fatalf("vqterm/85 should parallelize with liveness: %v",
			verdict(t, res, "VQTERM/85").Dep.Blocking)
	}
}

func TestArc3dStory(t *testing.T) {
	auto := analyzeCh4(t, Arc3d, false)
	li := verdict(t, auto, "STEPF3D/701")
	if li.Dep.Parallelizable {
		t.Fatal("stepf3d/701 must be blocked by sn")
	}
	blockedOnlyBy(t, li, "SN")
	if !verdict(t, auto, "FILTER3D/701").Dep.Parallelizable {
		t.Fatalf("filter3d/701 should parallelize automatically: %v",
			verdict(t, auto, "FILTER3D/701").Dep.Blocking)
	}
	user := analyzeCh4(t, Arc3d, true)
	for _, id := range []string{"STEPF3D/701", "STEPF3D2/702"} {
		if !verdict(t, user, id).Dep.Parallelizable {
			t.Fatalf("%s should parallelize with assertions", id)
		}
	}
}

func TestFlo88Story(t *testing.T) {
	auto := analyzeCh4(t, Flo88, false)
	// psmoo/50: d's coverage depends on the input relationship ie = il+1
	// that only the user knows (§4.4.1).
	li := verdict(t, auto, "PSMOO/50")
	if li.Dep.Parallelizable {
		t.Fatal("psmoo/50 must not parallelize automatically")
	}
	found := false
	for _, b := range li.Dep.Blocking {
		if b.Sym.Name == "D" {
			found = true
		}
	}
	if !found {
		t.Fatalf("psmoo/50 should be blocked by d: %v", li.Dep.Blocking)
	}
	user := analyzeCh4(t, Flo88, true)
	for _, id := range []string{"PSMOO/50", "EFLUX/50", "DFLUX/30"} {
		if !verdict(t, user, id).Dep.Parallelizable {
			t.Fatalf("%s should parallelize with assertions: %v", id, verdict(t, user, id).Dep.Blocking)
		}
	}
}

func TestWorkloadsExecute(t *testing.T) {
	for _, w := range Suite("ch4") {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			in := newInterp(t, w)
			if err := in.Run(); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if in.Ops() < 10000 {
				t.Fatalf("%s: suspiciously small run (%d ops)", w.Name, in.Ops())
			}
		})
	}
}
