package workloads

import "testing"

// TestNanzExecute: all six Nanz tasks parse and run to completion on the
// tree interpreter.
func TestNanzExecute(t *testing.T) {
	for _, w := range Suite("nanz") {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			in := newInterp(t, w)
			if err := in.Run(); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if in.Ops() < 500 {
				t.Fatalf("%s: suspiciously small run (%d ops)", w.Name, in.Ops())
			}
		})
	}
}

// TestNanzSuiteComplete pins the suite roster: the six tasks of Nanz et
// al., no more, no less.
func TestNanzSuiteComplete(t *testing.T) {
	want := []string{"chain", "outer", "product", "randmat", "thresh", "winnow"}
	got := Suite("nanz")
	if len(got) != len(want) {
		t.Fatalf("nanz suite has %d workloads, want %d", len(got), len(want))
	}
	for i, w := range got {
		if w.Name != want[i] {
			t.Fatalf("nanz suite[%d] = %s, want %s", i, w.Name, want[i])
		}
	}
}

// TestNanzStories checks the parallelization verdicts that make these
// tasks interesting: each carries irregular, data-dependent phases the
// analyzer must reject next to regular phases it must approve.
func TestNanzStories(t *testing.T) {
	// randmat: the per-row loop parallelizes (seed s privatizes); the
	// per-column LCG recurrence stays sequential.
	res := analyzeCh4(t, Randmat, false)
	if !verdict(t, res, "RMGEN/100").Dep.Parallelizable {
		t.Errorf("rmgen/100 should parallelize: %v", verdict(t, res, "RMGEN/100").Dep.Blocking)
	}
	if verdict(t, res, "RMGEN/110").Dep.Parallelizable {
		t.Error("rmgen/110 (LCG recurrence) must stay sequential")
	}

	// thresh: the histogram scatter has a data-dependent subscript but is
	// recognized as an array sum reduction; the threshold-selection scan
	// is a genuine scalar recurrence (cnt, t) and must be rejected; the
	// mask application is elementwise and must be approved.
	res = analyzeCh4(t, Thresh, false)
	li := verdict(t, res, "THRS/200")
	if !li.Dep.Parallelizable {
		t.Errorf("thrs/200 (histogram) should parallelize as a reduction: %v", li.Dep.Blocking)
	}
	hist := ""
	for _, vr := range li.Dep.Vars {
		if vr.Sym.Name == "AH" {
			hist = vr.Class.String()
		}
	}
	if hist != "reduction" {
		t.Errorf("thrs/200: ah classed %q, want reduction", hist)
	}
	if verdict(t, res, "THRS/220").Dep.Parallelizable {
		t.Error("thrs/220 (threshold scan) must stay sequential")
	}
	if !verdict(t, res, "THRS/230").Dep.Parallelizable {
		t.Errorf("thrs/230 (mask) should parallelize: %v", verdict(t, res, "THRS/230").Dep.Blocking)
	}

	// winnow: packing (running counter) and sorting (swaps) are
	// sequential; candidate weighting and the stride-spaced pick are
	// parallel even though their reads are non-affine (the read arrays
	// are not written in the loop).
	res = analyzeCh4(t, Winnow, false)
	if verdict(t, res, "WNNW/300").Dep.Parallelizable {
		t.Error("wnnw/300 (packing) must stay sequential")
	}
	if verdict(t, res, "WNNW/330").Dep.Parallelizable {
		t.Error("wnnw/330 (sort) must stay sequential")
	}
	if !verdict(t, res, "WNNW/320").Dep.Parallelizable {
		t.Errorf("wnnw/320 (weights) should parallelize: %v", verdict(t, res, "WNNW/320").Dep.Blocking)
	}
	if !verdict(t, res, "WNNW/360").Dep.Parallelizable {
		t.Errorf("wnnw/360 (spaced pick) should parallelize: %v", verdict(t, res, "WNNW/360").Dep.Blocking)
	}

	// outer: the row loop parallelizes (rm/dx/dy privatize; rows are
	// disjoint including the diagonal fix-up).
	res = analyzeCh4(t, Outer, false)
	if !verdict(t, res, "OUTR/400").Dep.Parallelizable {
		t.Errorf("outr/400 should parallelize: %v", verdict(t, res, "OUTR/400").Dep.Blocking)
	}

	// product: the matvec row loop parallelizes with s privatized.
	res = analyzeCh4(t, Product, false)
	if !verdict(t, res, "MVEC/500").Dep.Parallelizable {
		t.Errorf("mvec/500 should parallelize: %v", verdict(t, res, "MVEC/500").Dep.Blocking)
	}
}

// TestNanzChosen: every Nanz task ends up with at least one loop the
// parallelizer actually chooses — the property the differential and
// speedup harnesses key on.
func TestNanzChosen(t *testing.T) {
	for _, w := range Suite("nanz") {
		res := analyzeCh4(t, w, true)
		chosen := 0
		for _, li := range res.Ordered {
			if li.Chosen {
				chosen++
			}
		}
		if chosen == 0 {
			t.Errorf("%s: no loop chosen for parallel execution", w.Name)
		}
	}
}
