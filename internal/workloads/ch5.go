package workloads

// The two additional Chapter 5 liveness-suite programs. wave5 has many
// small loops with liveness-privatizable temporaries whose parallelization
// the runtime suppresses (Fig 5-8's wave5 row); hydro2d carries the /varh/
// common block whose two layouts (vz and vz1) have disjoint live ranges —
// the Fig 5-9 live-range-splitting example.

// Wave5 models Maxwell's equations with particles (SPEC95).
var Wave5 = register(&Workload{
	Name:        "wave5",
	Suite:       "ch5",
	Description: "Maxwell's equations and particle equations of motion",
	DataSet:     "30x30 field, 2 steps",
	Source: `
C     wave5: field/particle solver (scaled reproduction)
      SUBROUTINE fieldx
      COMMON /fld/ ex(32,32), ey(32,32)
      COMMON /fwrk/ buf(32)
      COMMON /dims/ nx, ny
      INTEGER i, j
      DO 40 j = 2, ny
        DO 20 i = j, nx
          buf(i) = ex(i,j) * 0.5 + ey(i,j-1) * 0.5
20      CONTINUE
        DO 30 i = j + 1, nx
          ex(i,j) = buf(i) - buf(i-1)
30      CONTINUE
40    CONTINUE
      END

      SUBROUTINE fieldy
      COMMON /fld/ ex(32,32), ey(32,32)
      COMMON /fwrk2/ buf2(32)
      COMMON /dims/ nx, ny
      INTEGER i, j
      DO 40 j = 2, ny
        DO 20 i = j, nx
          buf2(i) = ey(i,j) * 0.3 + ex(i,j) * 0.7
20      CONTINUE
        DO 30 i = j + 1, nx
          ey(i,j) = buf2(i) + buf2(i-1) * 0.1
30      CONTINUE
40    CONTINUE
      END

      SUBROUTINE smooth
      COMMON /fld/ ex(32,32), ey(32,32)
      COMMON /dims/ nx, ny
      INTEGER i, j
      DO 60 j = 2, ny
        DO 50 i = 2, nx
          ex(i,j) = ex(i,j) * 0.99 + 0.01
50      CONTINUE
60    CONTINUE
      END

      PROGRAM wave5
      COMMON /fld/ ex(32,32), ey(32,32)
      COMMON /dims/ nx, ny
      INTEGER step, i, j
      nx = 30
      ny = 30
      DO 5 j = 1, 32
        DO 5 i = 1, 32
          ex(i,j) = MOD(i + j, 5) * 0.2
          ey(i,j) = MOD(i * j, 7) * 0.1
5     CONTINUE
      DO 100 step = 1, 2
        CALL fieldx
        CALL fieldy
        CALL smooth
100   CONTINUE
      WRITE(*,*) ex(4,4), ey(6,6)
      END
`,
})

// Hydro2d is the astrophysical Navier-Stokes program (SPEC92) with the
// /varh/ live-range-splitting pattern of Fig 5-9.
var Hydro2d = register(&Workload{
	Name:              "hydro2d",
	Suite:             "ch5",
	Description:       "Astrophysical program using Navier Stokes equations",
	DataSet:           "80x80 mesh, 4 steps",
	ConflictingDecomp: nil, // set after the split analysis (Fig 5-10)
	Source: `
C     hydro2d: Navier-Stokes (scaled reproduction) with the /varh/ aliasing
      SUBROUTINE tistep
      COMMON /varh/ vz(80,80)
      COMMON /st/ ro(80,80), dt
      INTEGER i, j
      dt = 0.0
      DO 10 j = 1, 80
        DO 10 i = 1, 80
          dt = dt + vz(i,j) * 0.0001
10    CONTINUE
      END

      SUBROUTINE trans2
      COMMON /varh/ vz1(0:80,79)
      COMMON /st/ ro(80,80), dt
      INTEGER i, j
      DO 10 j = 1, 79
        DO 10 i = 0, 79
          vz1(i,j) = ro(i+1,j) * 0.5 + dt
10    CONTINUE
      END

      SUBROUTINE fct
      COMMON /varh/ vz1(0:80,79)
      COMMON /st/ ro(80,80), dt
      INTEGER i, j
      DO 10 j = 2, 79
        DO 10 i = 1, 79
          ro(i,j) = ro(i,j) * 0.9 + (vz1(i,j) + vz1(i-1,j)) * 0.05
10    CONTINUE
      END

      SUBROUTINE advnce
      CALL trans2
      CALL fct
      END

      SUBROUTINE vps
      COMMON /varh/ vz(80,80)
      COMMON /st/ ro(80,80), dt
      INTEGER i, j
      DO 10 j = 1, 80
        DO 10 i = 1, 80
          vz(i,j) = ro(MOD(i,79)+1, MOD(j,79)+1) + dt
10    CONTINUE
      END

      SUBROUTINE check
      CALL vps
      END

      PROGRAM hydro2d
      COMMON /varh/ vz(80,80)
      COMMON /st/ ro(80,80), dt
      INTEGER icnt, i, j
      DO 5 j = 1, 80
        DO 5 i = 1, 80
          ro(i,j) = MOD(i * 3 + j, 11) * 0.3
          vz(i,j) = 1.0
5     CONTINUE
      DO 100 icnt = 1, 4
        CALL tistep
        CALL advnce
        CALL check
100   CONTINUE
      WRITE(*,*) ro(5,5), dt
      END
`,
})
