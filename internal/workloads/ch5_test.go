package workloads

import (
	"testing"

	"suifx/internal/liveness"
	"suifx/internal/parallel"
	"suifx/internal/summary"
)

func TestWave5LivenessStory(t *testing.T) {
	// Without array liveness the buf loops stay sequential; with it they
	// parallelize (Fig 5-8's wave5 row).
	base := parallel.Parallelize(Wave5.Fresh(), parallel.Config{UseReductions: true})
	for _, id := range []string{"FIELDX/40", "FIELDY/40"} {
		if verdict(t, base, id).Dep.Parallelizable {
			t.Fatalf("%s should need liveness", id)
		}
	}
	prog := Wave5.Fresh()
	sum := summary.Analyze(prog)
	live := liveness.Analyze(sum, liveness.Full)
	withLive := parallel.ParallelizeWith(sum, parallel.Config{UseReductions: true, DeadAtExit: live.Oracle()})
	for _, id := range []string{"FIELDX/40", "FIELDY/40"} {
		if !verdict(t, withLive, id).Dep.Parallelizable {
			t.Fatalf("%s should parallelize with liveness: %v", id, verdict(t, withLive, id).Dep.Blocking)
		}
	}
}

func TestHydro2dSplitStory(t *testing.T) {
	prog := Hydro2d.Fresh()
	sum := summary.Analyze(prog)
	full := liveness.Analyze(sum, liveness.Full)
	splits := full.CommonBlockSplits()
	if len(splits) != 1 || splits[0].Block != "VARH" {
		t.Fatalf("expected the /varh/ split, got %v", splits)
	}
	if got := liveness.Analyze(sum, liveness.OneBit).CommonBlockSplits(); len(got) != 0 {
		t.Fatalf("1-bit variant must not find the split: %v", got)
	}
}

func TestCh5WorkloadsExecute(t *testing.T) {
	for _, w := range Suite("ch5") {
		in := newInterp(t, w)
		if err := in.Run(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}
