package workloads

// The six multicore benchmark tasks of Nanz et al. (the Cowichan problems),
// ported as MiniF workloads. Where the Chapter 4/5 applications are regular
// scientific kernels, these tasks carry irregular, data-dependent
// parallelism: masked selection, histogram thresholding, runtime-computed
// strides, and packing loops with running counters. Each task still exposes
// at least one loop the parallelizer approves on its own:
//
//   - randmat: per-row LCG streams — outer row loop parallel with the seed
//     privatized, inner recurrence sequential;
//   - thresh: the histogram build is a data-dependent scatter (blocked) but
//     the mask application is elementwise parallel;
//   - winnow: packing and sorting are sequential recurrences; candidate
//     weighting and the stride-spaced pick (runtime stride ⇒ non-affine
//     read of a read-only array) parallelize;
//   - outer: pairwise distance rows with a per-row running max and a
//     diagonal fix-up — row-disjoint writes parallelize;
//   - product: classic matvec with a privatized inner-sum scalar;
//   - chain: the five stages composed through COMMON, mirroring the
//     original benchmark's pipeline.

// randmatBody generates the nr x nc matrix of per-row LCG streams.
const randmatBody = `
      SUBROUTINE rmgen(nr, nc)
      COMMON /mat/ am(16,16)
      REAL s
      INTEGER r, c, nr, nc
      DO 100 r = 1, nr
        s = MOD(r * 17.0 + 3.0, 97.0)
        DO 110 c = 1, nc
          s = MOD(s * 17.0 + 3.0, 97.0)
          am(r, c) = s
110     CONTINUE
100   CONTINUE
      END
`

// threshBody histograms the matrix, picks the retention threshold, and
// applies the mask.
const threshBody = `
      SUBROUTINE thrs(nr, nc, keep)
      COMMON /mat/ am(16,16)
      COMMON /msk/ ak(16,16)
      COMMON /hst/ ah(100)
      REAL t
      INTEGER r, c, keep, cnt, v
      DO 200 r = 1, nr
        DO 210 c = 1, nc
          v = INT(am(r, c)) + 1
          ah(v) = ah(v) + 1.0
210     CONTINUE
200   CONTINUE
      cnt = 0
      t = 0.0
      DO 220 v = 1, 100
        IF (cnt .LT. keep) THEN
          cnt = cnt + INT(ah(101 - v))
          t = FLOAT(101 - v)
        ENDIF
220   CONTINUE
      DO 230 r = 1, nr
        DO 240 c = 1, nc
          ak(r, c) = 0.0
          IF (am(r, c) .GE. t) ak(r, c) = 1.0
240     CONTINUE
230   CONTINUE
      END
`

// winnowBody packs the masked points, weights them, sorts by weight, and
// picks nsel evenly spaced survivors.
const winnowBody = `
      SUBROUTINE wnnw(nr, nc, nsel)
      COMMON /mat/ am(16,16)
      COMMON /msk/ ak(16,16)
      COMMON /pts/ avx(64), avy(64), avv(64), awx(16), awy(16)
      REAL tv, tx, ty
      INTEGER r, c, np, i, j, st, q, l, nsel, nr, nc
      np = 0
      DO 300 r = 1, nr
        DO 310 c = 1, nc
          IF (ak(r, c) .GT. 0.5) THEN
            IF (np .LT. 64) THEN
              np = np + 1
              avx(np) = FLOAT(r)
              avy(np) = FLOAT(c)
            ENDIF
          ENDIF
310     CONTINUE
300   CONTINUE
      DO 320 i = 1, np
        avv(i) = am(INT(avx(i)), INT(avy(i))) + avx(i) * 0.01
320   CONTINUE
      DO 330 i = 1, np
        DO 340 j = 1, np
          IF (j .GT. i) THEN
            IF (avv(j) .LT. avv(i)) THEN
              tv = avv(i)
              avv(i) = avv(j)
              avv(j) = tv
              tx = avx(i)
              avx(i) = avx(j)
              avx(j) = tx
              ty = avy(i)
              avy(i) = avy(j)
              avy(j) = ty
            ENDIF
          ENDIF
340     CONTINUE
330   CONTINUE
      st = 0
      q = np
      DO 350 i = 1, 64
        IF (q .GE. nsel) THEN
          st = st + 1
          q = q - nsel
        ENDIF
350   CONTINUE
      IF (st .LT. 1) st = 1
      DO 360 l = 1, nsel
        awx(l) = avx(1 + (l - 1) * st)
        awy(l) = avy(1 + (l - 1) * st)
360   CONTINUE
      END
`

// outerBody builds the pairwise-distance matrix with its diagonal fix-up
// and the origin-distance vector.
const outerBody = `
      SUBROUTINE outr(n)
      COMMON /pts/ avx(64), avy(64), avv(64), awx(16), awy(16)
      COMMON /omt/ ad(16,16), avec(16)
      REAL rm, dx, dy
      INTEGER i, j, n
      DO 400 i = 1, n
        rm = 0.0
        DO 410 j = 1, n
          dx = awx(i) - awx(j)
          dy = awy(i) - awy(j)
          ad(i, j) = SQRT(dx * dx + dy * dy)
          IF (ad(i, j) .GT. rm) rm = ad(i, j)
410     CONTINUE
        ad(i, i) = rm * FLOAT(n)
        avec(i) = SQRT(awx(i) * awx(i) + awy(i) * awy(i))
400   CONTINUE
      END
`

// productBody is the matrix-vector product over the outer stage's outputs.
const productBody = `
      SUBROUTINE mvec(n)
      COMMON /omt/ ad(16,16), avec(16)
      COMMON /res/ ay(16)
      REAL s
      INTEGER i, j, n
      DO 500 i = 1, n
        s = 0.0
        DO 510 j = 1, n
          s = s + ad(i, j) * avec(j)
510     CONTINUE
        ay(i) = s
500   CONTINUE
      END
`

// Randmat is Nanz task 1: a deterministic pseudo-random matrix from
// per-row LCG streams.
var Randmat = register(&Workload{
	Name:        "randmat",
	Suite:       "nanz",
	Description: "Per-row LCG random matrix (Nanz et al.)",
	DataSet:     "16x16 matrix",
	Source: `
C     randmat: deterministic random matrix, one LCG stream per row
` + randmatBody + `
      PROGRAM randmat
      COMMON /mat/ am(16,16)
      REAL dig
      INTEGER r
      CALL rmgen(16, 16)
      dig = 0.0
      DO 900 r = 1, 16
        dig = dig + am(r, r) + am(r, 17 - r) * 0.5
900   CONTINUE
      WRITE(*,*) dig, am(1, 1), am(9, 13)
      END
`,
})

// Thresh is Nanz task 2: histogram thresholding to a boolean mask.
var Thresh = register(&Workload{
	Name:        "thresh",
	Suite:       "nanz",
	Description: "Histogram threshold mask (Nanz et al.)",
	DataSet:     "16x16 matrix, 30% retained",
	Source: `
C     thresh: histogram thresholding, data-dependent scatter + parallel mask
` + randmatBody + threshBody + `
      PROGRAM thresh
      COMMON /msk/ ak(16,16)
      REAL dig
      INTEGER r, c
      CALL rmgen(16, 16)
      CALL thrs(16, 16, 77)
      dig = 0.0
      DO 900 r = 1, 16
        DO 910 c = 1, 16
          dig = dig + ak(r, c)
910     CONTINUE
900   CONTINUE
      WRITE(*,*) dig, ak(1, 1), ak(8, 8)
      END
`,
})

// Winnow is Nanz task 3: masked selection, sort by weight, evenly spaced
// pick.
var Winnow = register(&Workload{
	Name:        "winnow",
	Suite:       "nanz",
	Description: "Masked weighted selection (Nanz et al.)",
	DataSet:     "16x16 mask, 8 selected",
	Source: `
C     winnow: pack masked points, weight, sort, pick evenly spaced
` + randmatBody + threshBody + winnowBody + `
      PROGRAM winnow
      COMMON /pts/ avx(64), avy(64), avv(64), awx(16), awy(16)
      REAL dig
      INTEGER l
      CALL rmgen(16, 16)
      CALL thrs(16, 16, 77)
      CALL wnnw(16, 16, 8)
      dig = 0.0
      DO 900 l = 1, 8
        dig = dig + awx(l) * 100.0 + awy(l)
900   CONTINUE
      WRITE(*,*) dig, awx(1), awy(8)
      END
`,
})

// Outer is Nanz task 4: the pairwise-distance matrix with dominant
// diagonal and the origin-distance vector.
var Outer = register(&Workload{
	Name:        "outer",
	Suite:       "nanz",
	Description: "Pairwise distance matrix (Nanz et al.)",
	DataSet:     "8 points",
	Source: `
C     outer: pairwise distances, per-row max on the diagonal
` + randmatBody + threshBody + winnowBody + outerBody + `
      PROGRAM outer
      COMMON /omt/ ad(16,16), avec(16)
      REAL dig
      INTEGER i, j
      CALL rmgen(16, 16)
      CALL thrs(16, 16, 77)
      CALL wnnw(16, 16, 8)
      CALL outr(8)
      dig = 0.0
      DO 900 i = 1, 8
        DO 910 j = 1, 8
          dig = dig + ad(i, j)
910     CONTINUE
        dig = dig + avec(i) * 0.5
900   CONTINUE
      WRITE(*,*) dig, ad(1, 2), ad(3, 3)
      END
`,
})

// Product is Nanz task 5: matrix-vector product over the outer stage's
// outputs.
var Product = register(&Workload{
	Name:        "product",
	Suite:       "nanz",
	Description: "Matrix-vector product (Nanz et al.)",
	DataSet:     "8x8 system",
	Source: `
C     product: matvec with privatized inner sum
` + randmatBody + threshBody + winnowBody + outerBody + productBody + `
      PROGRAM product
      COMMON /res/ ay(16)
      REAL dig
      INTEGER i
      CALL rmgen(16, 16)
      CALL thrs(16, 16, 77)
      CALL wnnw(16, 16, 8)
      CALL outr(8)
      CALL mvec(8)
      dig = 0.0
      DO 900 i = 1, 8
        dig = dig + ay(i)
900   CONTINUE
      WRITE(*,*) dig, ay(1), ay(8)
      END
`,
})

// Chain is Nanz task 6: the five stages composed end to end.
var Chain = register(&Workload{
	Name:        "chain",
	Suite:       "nanz",
	Description: "Composed randmat-thresh-winnow-outer-product pipeline (Nanz et al.)",
	DataSet:     "16x16 input, 8 selected",
	Source: `
C     chain: the full Cowichan pipeline through COMMON
` + randmatBody + threshBody + winnowBody + outerBody + productBody + `
      PROGRAM chain
      COMMON /mat/ am(16,16)
      COMMON /msk/ ak(16,16)
      COMMON /res/ ay(16)
      REAL dig
      INTEGER i, r
      CALL rmgen(16, 16)
      CALL thrs(16, 16, 77)
      CALL wnnw(16, 16, 8)
      CALL outr(8)
      CALL mvec(8)
      dig = 0.0
      DO 900 i = 1, 8
        dig = dig + ay(i)
900   CONTINUE
      DO 910 r = 1, 16
        dig = dig + am(r, r) * 0.001 + ak(r, 1) * 0.01
910   CONTINUE
      WRITE(*,*) dig, ay(1), ay(8), am(2, 2), ak(4, 4)
      END
`,
})
