package workloads

import (
	"testing"

	"suifx/internal/exec"
)

func newInterp(t *testing.T, w *Workload) *exec.Interp {
	t.Helper()
	return exec.New(w.Fresh())
}
