package exec

import (
	"fmt"
	"io"
	"math"
)

// The bytecode VM. One flat instruction loop, no interface dispatch, no
// closures: loop events are nil-checked struct calls and data accesses are
// only instrumented in the DDA variant of the instruction stream.

// frameRT is one activation record.
type frameRT struct {
	retPC     int32
	pbase     int32 // start of this frame's params in paramStore
	loopBase  int32 // loopActs depth at entry (for unwinding on return)
	savedTemp int64
}

// loopAct is one live DO-loop activation.
type loopAct struct {
	li      int32
	alt     int32 // pc of the armed specialized body for this activation (-1 = generic)
	it      int64
	trips   int64
	v       float64 // current index value
	step    float64
	idxAddr int64
}

// vmScratch is the pooled, reusable run state for one execution.
type vmScratch struct {
	stack      []float64
	paramStore []int64
	frames     []frameRT
	loopActs   []loopAct

	profInv   []int64
	profIters []int64
	profOps   []int64
	profStack []profFrame

	// specInv counts per-loop invocations within one run for the tiered
	// engine's specialization threshold. Per-run (reset here) so repeated
	// runs of one program behave identically.
	specInv []int32
}

func (sc *vmScratch) prepare(cd *code) {
	if len(sc.stack) < cd.maxStack {
		sc.stack = make([]float64, cd.maxStack)
	}
	nl := len(cd.loops)
	if len(sc.profInv) < nl {
		sc.profInv = make([]int64, nl)
		sc.profIters = make([]int64, nl)
		sc.profOps = make([]int64, nl)
	} else {
		for i := 0; i < nl; i++ {
			sc.profInv[i], sc.profIters[i], sc.profOps[i] = 0, 0, 0
		}
	}
	if len(sc.specInv) < nl {
		sc.specInv = make([]int32, nl)
	} else {
		for i := 0; i < nl; i++ {
			sc.specInv[i] = 0
		}
	}
	sc.paramStore = sc.paramStore[:0]
	sc.frames = sc.frames[:0]
	sc.loopActs = sc.loopActs[:0]
	sc.profStack = sc.profStack[:0]
}

type profFrame struct {
	li    int32
	start int64
}

// profState mirrors the Profiler's loop events onto flat per-loop arrays;
// the results are folded into the Profiler after the run.
type profState struct {
	inv, iters, tops []int64
	stack            []profFrame
}

// dynLevel is one level of the DDA's live loop stack.
type dynLevel struct {
	li      int32
	iter    int64
	sampled bool
}

// shadowInline is the number of loop levels stored inline per shadow cell.
// Static nests in the workloads reach depth 4; deeper dynamic nests (via
// call chains) spill to an overflow map.
const shadowInline = 6

const overflowDepth = 255

// shadowRec is the last-write record for one arena cell: the (loop, iter)
// vector of the loop stack at write time, tagged with an epoch so resetting
// the whole shadow between runs is O(1).
type shadowRec struct {
	epoch uint32
	depth uint8
	loops [shadowInline]int32
	iters [shadowInline]int64
}

type ovfRec struct {
	loops []int32
	iters []int64
}

// ddaShadow is the pooled shadow memory parallel to the interpreter arena.
type ddaShadow struct {
	recs     []shadowRec
	epoch    uint32
	overflow map[int64]ovfRec
}

func (sh *ddaShadow) reset(n int) {
	if len(sh.recs) < n {
		sh.recs = make([]shadowRec, n)
		sh.epoch = 0
	}
	sh.epoch++
	if sh.epoch == 0 { // wrapped: clear tags once, then restart at 1
		for i := range sh.recs {
			sh.recs[i].epoch = 0
		}
		sh.epoch = 1
	}
	sh.overflow = nil
}

// ddaState is the VM-native Dynamic Dependence Analyzer (shadow-memory
// rewrite of the tree-walker's map-based hooks, same observable results).
type ddaState struct {
	d           *DynDep
	cd          *code
	sh          *ddaShadow
	skip        []bool // per-pc Skip decision, nil when no Skip filter
	stack       []dynLevel
	unsampled   int // number of stack levels currently not sampled
	sampleEvery int64
	warm        int64
	accesses    int64
	carried     []int64
	carriedAt   []map[int64]int64
}

func newDDAState(d *DynDep, cd *code, sh *ddaShadow) *ddaState {
	st := &ddaState{
		d:           d,
		cd:          cd,
		sh:          sh,
		sampleEvery: d.SampleEvery,
		warm:        d.SampleWarm,
		carried:     make([]int64, len(cd.loops)),
		carriedAt:   make([]map[int64]int64, len(cd.loops)),
	}
	if st.warm == 0 {
		st.warm = 2
	}
	if d.Skip != nil {
		skip := make([]bool, len(cd.ins))
		for pc, s := range cd.stmtOf {
			if s != nil && isAccessOp(cd.ins[pc].op) {
				skip[pc] = d.Skip(s)
			}
		}
		st.skip = skip
	}
	return st
}

func isAccessOp(op opcode) bool {
	return (op >= opLoadGI && op <= opStorePEI) ||
		(op >= opLGIdxI && op <= opLCMulI) ||
		(op >= opLPIdxLoadGEI && op <= opLCAddStoreGI)
}

func (st *ddaState) sample(iter int64) bool {
	if st.sampleEvery <= 1 {
		return true
	}
	return iter < st.warm || iter%st.sampleEvery == 0
}

func (st *ddaState) read(addr int64, pc int32) {
	if st.skip != nil && st.skip[pc] {
		return
	}
	if st.unsampled != 0 {
		return
	}
	st.accesses++
	r := &st.sh.recs[addr]
	if r.epoch != st.sh.epoch {
		return // no write on record this run
	}
	var loops []int32
	var iters []int64
	if r.depth == overflowDepth {
		ov := st.sh.overflow[addr]
		loops, iters = ov.loops, ov.iters
	} else {
		loops, iters = r.loops[:r.depth], r.iters[:r.depth]
	}
	n := len(st.stack)
	if len(loops) < n {
		n = len(loops)
	}
	// The dependence is carried by the outermost common loop whose
	// iteration number differs between writer and reader.
	for i := 0; i < n; i++ {
		lv := &st.stack[i]
		if loops[i] != lv.li {
			return // different loop instances: not a carried dep we track
		}
		if iters[i] != lv.iter {
			li := lv.li
			if st.d.IgnoreVar != nil && st.d.IgnoreVar(st.cd.loops[li].loop, addr) {
				return
			}
			st.carried[li]++
			m := st.carriedAt[li]
			if m == nil {
				m = map[int64]int64{}
				st.carriedAt[li] = m
			}
			m[addr]++
			return
		}
	}
}

func (st *ddaState) write(addr int64, pc int32) {
	if st.skip != nil && st.skip[pc] {
		return
	}
	if st.unsampled != 0 {
		return
	}
	st.accesses++
	r := &st.sh.recs[addr]
	d := len(st.stack)
	r.epoch = st.sh.epoch
	if d <= shadowInline {
		r.depth = uint8(d)
		for i := 0; i < d; i++ {
			r.loops[i] = st.stack[i].li
			r.iters[i] = st.stack[i].iter
		}
		return
	}
	r.depth = overflowDepth
	if st.sh.overflow == nil {
		st.sh.overflow = map[int64]ovfRec{}
	}
	loops := make([]int32, d)
	iters := make([]int64, d)
	for i := range st.stack {
		loops[i] = st.stack[i].li
		iters[i] = st.stack[i].iter
	}
	st.sh.overflow[addr] = ovfRec{loops: loops, iters: iters}
}

// vm executes one compiled program over an Interp's arena.
type vm struct {
	cd         *code
	mem        []float64
	out        io.Writer
	stack      []float64
	paramStore []int64
	frames     []frameRT
	loopActs   []loopAct
	tempTop    int64
	tempLimit  int64
	ops        int64
	maxOps     int64
	events     bool
	prof       *profState
	dda        *ddaState
	// par dispatches approved parallel loops to per-worker views (nil on
	// worker VMs, so nested planned loops stay sequential inside a region).
	par *planRT
	// spec enables profile-guided specialization on tiered runs: per-loop
	// invocation counters (from vmScratch). nil on non-tiered runs and on
	// worker VMs.
	spec []int32
	// pcCount, when non-nil, counts executions per pc (fusion census runs
	// only — the branch predicts perfectly on normal runs).
	pcCount []int64
}

func (v *vm) enterLoop(li int32) {
	// Event order matches the tree-walker's hook chain: profiler first,
	// then the dependence analyzer.
	if p := v.prof; p != nil {
		p.inv[li]++
		p.stack = append(p.stack, profFrame{li: li, start: v.ops})
	}
	if d := v.dda; d != nil {
		d.stack = append(d.stack, dynLevel{li: li, iter: -1})
		d.unsampled++ // sampled=false until the first iteration event
	}
}

func (v *vm) iterLoop(li int32, it int64) {
	if p := v.prof; p != nil {
		p.iters[li]++
	}
	if d := v.dda; d != nil {
		top := &d.stack[len(d.stack)-1]
		s := d.sample(it)
		if top.sampled != s {
			if s {
				d.unsampled--
			} else {
				d.unsampled++
			}
			top.sampled = s
		}
		top.iter = it
	}
}

func (v *vm) exitLoopTop() {
	v.loopActs = v.loopActs[:len(v.loopActs)-1]
	if p := v.prof; p != nil {
		m := len(p.stack) - 1
		fr := p.stack[m]
		p.stack = p.stack[:m]
		p.tops[fr.li] += v.ops - fr.start
	}
	if d := v.dda; d != nil {
		m := len(d.stack) - 1
		if !d.stack[m].sampled {
			d.unsampled--
		}
		d.stack = d.stack[:m]
	}
}

// unwindAll fires exit events for every live loop (innermost first, across
// frames) — the tree-walker does the same as an error propagates.
func (v *vm) unwindAll() {
	for len(v.loopActs) > 0 {
		if v.events {
			v.exitLoopTop()
		} else {
			v.loopActs = v.loopActs[:len(v.loopActs)-1]
		}
	}
}

func (v *vm) run() error {
	cd := v.cd
	ins := cd.ins
	mem := v.mem
	stack := v.stack
	sp := 0
	pc := cd.entry
	ops := v.ops
	maxOps := v.maxOps
	var nInstr int64
	var stripIters int64

	v.frames = append(v.frames[:0], frameRT{retPC: -1, savedTemp: v.tempTop})
	// Worker views start with the dispatching frame's parameter bindings
	// pre-loaded in paramStore; a whole-program run starts with none.
	params := v.paramStore

	fail := func(err error) error {
		v.ops = ops
		v.unwindAll()
		v.tempTop = v.frames[0].savedTemp // the tree-walker's deferred restores
		counters.instructions.Add(nInstr)
		if stripIters != 0 {
			counters.stripIterations.Add(stripIters)
		}
		return err
	}

	// The ops budget is checked at basic-block boundaries (control transfers,
	// calls/returns) and before every observable effect (opWrite, faulting
	// ops) instead of per instruction. Budget-exceeded errors therefore fire
	// within one basic block of the exact trigger point, with identical error
	// kind and output; only unobserved arena stores may run a few
	// instructions further (see compareRuns' budget relaxation).
	for {
		i := &ins[pc]
		ops += int64(i.tick)
		nInstr++
		if v.pcCount != nil {
			v.pcCount[pc]++
		}
		switch i.op {
		case opNop:

		case opConst:
			stack[sp] = i.f
			sp++
		case opLoadG:
			stack[sp] = mem[i.a]
			sp++
		case opLoadP:
			stack[sp] = mem[params[i.a]]
			sp++
		case opIdx:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.a]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp-1] = float64((iv - d.lo) * d.stride)
		case opIdxAdd:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.a]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			stack[sp-1] += float64((iv - d.lo) * d.stride)
		case opLoadGE:
			stack[sp-1] = mem[int64(i.a)+int64(stack[sp-1])]
		case opLoadPE:
			stack[sp-1] = mem[params[i.a]+int64(stack[sp-1])]

		case opStoreG:
			sp--
			mem[i.a] = stack[sp]
		case opStoreP:
			sp--
			mem[params[i.a]] = stack[sp]
		case opStoreGE:
			off := int64(stack[sp-1])
			sp -= 2
			mem[int64(i.a)+off] = stack[sp]
		case opStorePE:
			off := int64(stack[sp-1])
			sp -= 2
			mem[params[i.a]+off] = stack[sp]

		case opLoadGI:
			v.dda.read(int64(i.a), pc)
			stack[sp] = mem[i.a]
			sp++
		case opLoadPI:
			addr := params[i.a]
			v.dda.read(addr, pc)
			stack[sp] = mem[addr]
			sp++
		case opLoadGEI:
			addr := int64(i.a) + int64(stack[sp-1])
			v.dda.read(addr, pc)
			stack[sp-1] = mem[addr]
		case opLoadPEI:
			addr := params[i.a] + int64(stack[sp-1])
			v.dda.read(addr, pc)
			stack[sp-1] = mem[addr]
		case opStoreGI:
			v.dda.write(int64(i.a), pc)
			sp--
			mem[i.a] = stack[sp]
		case opStorePI:
			addr := params[i.a]
			v.dda.write(addr, pc)
			sp--
			mem[addr] = stack[sp]
		case opStoreGEI:
			addr := int64(i.a) + int64(stack[sp-1])
			v.dda.write(addr, pc)
			sp -= 2
			mem[addr] = stack[sp]
		case opStorePEI:
			addr := params[i.a] + int64(stack[sp-1])
			v.dda.write(addr, pc)
			sp -= 2
			mem[addr] = stack[sp]

		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opNot:
			if stack[sp-1] == 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opBool:
			if stack[sp-1] != 0 {
				stack[sp-1] = 1
			}
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp--
			if stack[sp] == 0 {
				return fail(fmt.Errorf("exec: line %d: division by zero", i.a))
			}
			stack[sp-1] /= stack[sp]
		case opEQ:
			sp--
			if stack[sp-1] == stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opNE:
			sp--
			if stack[sp-1] != stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opLT:
			sp--
			if stack[sp-1] < stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opLE:
			sp--
			if stack[sp-1] <= stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opGT:
			sp--
			if stack[sp-1] > stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opGE:
			sp--
			if stack[sp-1] >= stack[sp] {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opAndJmp:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			if stack[sp-1] == 0 {
				pc = i.a
				continue
			}
			sp--
		case opOrJmp:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			if stack[sp-1] != 0 {
				stack[sp-1] = 1
				pc = i.a
				continue
			}
			sp--
		case opIntrin:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			argc := int(i.b)
			args := stack[sp-argc : sp]
			r, err := applyIntrinsicID(i.a, args)
			if err != nil {
				return fail(err)
			}
			sp -= argc - 1
			stack[sp-1] = r

		case opJmp:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			pc = i.a
			continue
		case opJZ:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp--
			if stack[sp] == 0 {
				pc = i.a
				continue
			}

		case opLoopInit:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			step := stack[sp-1]
			hi := stack[sp-2]
			lo := stack[sp-3]
			sp -= 3
			lm := &cd.loops[i.a]
			if step == 0 {
				return fail(fmt.Errorf("exec: line %d: zero DO step", lm.line))
			}
			trips := tripCount(lo, hi, step)
			var ia int64
			if lm.idxParam {
				ia = params[lm.idxOp]
			} else {
				ia = int64(lm.idxOp)
			}
			if v.par != nil {
				if lrt := v.par.loops[i.a]; lrt != nil {
					// Parallel dispatch: run the even-chunk schedule on the
					// per-worker views, then land on opLoopHead with an
					// exhausted activation so the sequential exit path
					// (final index value, exit event) applies unchanged.
					v.loopActs = append(v.loopActs, loopAct{
						li: i.a, alt: -1, it: trips, trips: trips,
						v: lo + float64(trips)*step, step: step, idxAddr: ia,
					})
					if v.events {
						v.ops = ops
						v.enterLoop(i.a)
					}
					v.ops = ops
					err := v.par.runLoop(v, lrt, params, lo, step, trips)
					ops = v.ops
					if err != nil {
						mem[ia] = lo + float64(trips)*step
						return fail(err)
					}
					break
				}
			}
			act := loopAct{li: i.a, alt: -1, trips: trips, v: lo, step: step, idxAddr: ia}
			// Tiered specialization: once this loop's invocation count
			// crosses the threshold and the preflight proves every guarded
			// index in range for this activation, arm the checkless alt body.
			if v.spec != nil && lm.altEntry >= 0 {
				v.spec[i.a]++
				if v.spec[i.a] >= specThreshold && specPreflight(cd, lm, lo, step, trips) {
					// Prefer the register form when this body lowered; both
					// entries have identical semantics and virtual-time cost.
					if cd.register && lm.regEntry >= 0 {
						act.alt = lm.regEntry
					} else {
						act.alt = lm.altEntry
					}
					counters.specInvocations.Add(1)
				}
			}
			v.loopActs = append(v.loopActs, act)
			if v.events {
				v.ops = ops
				v.enterLoop(i.a)
			}
		case opLoopHead:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			act := &v.loopActs[len(v.loopActs)-1]
			mem[act.idxAddr] = act.v // Fortran leaves the index past the bound
			if act.it >= act.trips {
				if v.events {
					v.ops = ops
					v.exitLoopTop()
				} else {
					v.loopActs = v.loopActs[:len(v.loopActs)-1]
				}
				pc = i.b
				continue
			}
			if v.events {
				v.iterLoop(act.li, act.it)
			}
			if act.alt >= 0 {
				// Armed activation: run the specialized body, unless the DDA
				// samples this iteration (the alt body is stripped of
				// instrumentation, so it may only run when read/write would
				// record nothing anyway).
				if d := v.dda; d != nil {
					if d.unsampled == 0 {
						break
					}
					stripIters++
				}
				if act.alt >= cd.regStart && cd.register {
					v.ops = ops
					np, ni, si, err := v.runRegBody(act, params)
					ops = v.ops
					nInstr += ni
					stripIters += si
					if err != nil {
						return fail(err)
					}
					pc = np
					continue
				}
				pc = act.alt
				continue
			}
		case opLoopNext:
			act := &v.loopActs[len(v.loopActs)-1]
			act.it++
			act.v += act.step
			pc = i.a
			continue
		case opLoopNextHead:
			// Fused back edge: opLoopNext + opLoopHead in one dispatch. Both
			// ticks are charged up front, so the budget check fires at the
			// same virtual time the head's would.
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			act := &v.loopActs[len(v.loopActs)-1]
			act.it++
			act.v += act.step
			mem[act.idxAddr] = act.v
			if act.it >= act.trips {
				if v.events {
					v.ops = ops
					v.exitLoopTop()
				} else {
					v.loopActs = v.loopActs[:len(v.loopActs)-1]
				}
				pc = i.b
				continue
			}
			if v.events {
				v.iterLoop(act.li, act.it)
			}
			if act.alt >= 0 {
				if d := v.dda; d != nil {
					if d.unsampled == 0 {
						pc = i.a + 1
						continue
					}
					stripIters++
				}
				if act.alt >= cd.regStart && cd.register {
					v.ops = ops
					np, ni, si, err := v.runRegBody(act, params)
					ops = v.ops
					nInstr += ni
					stripIters += si
					if err != nil {
						return fail(err)
					}
					pc = np
					continue
				}
				pc = act.alt
				continue
			}
			pc = i.a + 1
			continue

		case opArgAddrG:
			if i.b == 1 {
				stack[sp-1] += float64(i.a)
			} else {
				stack[sp] = float64(i.a)
				sp++
			}
		case opArgAddrP:
			base := float64(params[i.a])
			if i.b == 1 {
				stack[sp-1] += base
			} else {
				stack[sp] = base
				sp++
			}
		case opCall:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			ci := &cd.calls[i.a]
			n := len(ci.kinds)
			argBase := sp - n
			pbase := len(v.paramStore)
			savedTemp := v.tempTop
			for j := 0; j < n; j++ {
				val := stack[argBase+j]
				if ci.kinds[j] == argBind {
					v.paramStore = append(v.paramStore, int64(val))
				} else {
					if v.tempTop >= v.tempLimit {
						return fail(fmt.Errorf("exec: line %d: temporary stack overflow", ci.line))
					}
					mem[v.tempTop] = val
					v.paramStore = append(v.paramStore, v.tempTop)
					v.tempTop++
				}
			}
			sp = argBase
			v.frames = append(v.frames, frameRT{
				retPC: pc + 1, pbase: int32(pbase),
				loopBase: int32(len(v.loopActs)), savedTemp: savedTemp,
			})
			params = v.paramStore[pbase:]
			pc = ci.entry
			continue
		case opReturn:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			fr := v.frames[len(v.frames)-1]
			for int32(len(v.loopActs)) > fr.loopBase {
				if v.events {
					v.ops = ops
					v.exitLoopTop()
				} else {
					v.loopActs = v.loopActs[:len(v.loopActs)-1]
				}
			}
			v.tempTop = fr.savedTemp
			v.frames = v.frames[:len(v.frames)-1]
			if len(v.frames) == 0 {
				v.ops = ops
				counters.instructions.Add(nInstr)
				if stripIters != 0 {
					counters.stripIterations.Add(stripIters)
				}
				return nil
			}
			v.paramStore = v.paramStore[:fr.pbase]
			outer := v.frames[len(v.frames)-1]
			params = v.paramStore[outer.pbase:]
			pc = fr.retPC
			continue

		case opWrite:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			n := int(i.a)
			vals := make([]interface{}, n)
			for j := 0; j < n; j++ {
				vals[j] = stack[sp-n+j]
			}
			sp -= n
			fmt.Fprintln(v.out, vals...)

		case opErr:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			return fail(fmt.Errorf("%s", cd.errs[i.a]))

		// ---- Tiered: fused superinstructions (uninstrumented) ----

		case opLGIdx:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = float64((iv - d.lo) * d.stride)
			sp++
		case opLPIdx:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = float64((iv - d.lo) * d.stride)
			sp++
		case opLGIdxAdd:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp-1] += float64((iv - d.lo) * d.stride)
		case opLPIdxAdd:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp-1] += float64((iv - d.lo) * d.stride)

		case opLGIdxLoadGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = mem[d.base+iv*d.stride]
			sp++
		case opLGIdxLoadPE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = mem[params[d.pslot]+d.base+iv*d.stride]
			sp++
		case opLGIdxStoreGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			mem[d.base+iv*d.stride] = stack[sp]
		case opLGIdxStorePE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			mem[params[d.pslot]+d.base+iv*d.stride] = stack[sp]

		case opIdxAddLoadGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			stack[sp-1] = mem[int64(i.a)+int64(stack[sp-1])+(iv-d.lo)*d.stride]
		case opIdxAddLoadPE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			stack[sp-1] = mem[params[i.a]+int64(stack[sp-1])+(iv-d.lo)*d.stride]
		case opIdxAddStoreGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			off := int64(stack[sp-2]) + (iv-d.lo)*d.stride
			sp -= 3
			mem[int64(i.a)+off] = stack[sp]
		case opIdxAddStorePE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			off := int64(stack[sp-2]) + (iv-d.lo)*d.stride
			sp -= 3
			mem[params[i.a]+off] = stack[sp]

		case opConstAddStoreG:
			sp--
			mem[i.a] = stack[sp] + i.f

		case opJEQ:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp -= 2
			if !(stack[sp] == stack[sp+1]) {
				pc = i.a
				continue
			}
		case opJNE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp -= 2
			if !(stack[sp] != stack[sp+1]) {
				pc = i.a
				continue
			}
		case opJLT:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp -= 2
			if !(stack[sp] < stack[sp+1]) {
				pc = i.a
				continue
			}
		case opJLE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp -= 2
			if !(stack[sp] <= stack[sp+1]) {
				pc = i.a
				continue
			}
		case opJGT:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp -= 2
			if !(stack[sp] > stack[sp+1]) {
				pc = i.a
				continue
			}
		case opJGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp -= 2
			if !(stack[sp] >= stack[sp+1]) {
				pc = i.a
				continue
			}

		case opLLAdd:
			stack[sp] = mem[i.a] + mem[i.b]
			sp++
		case opLLSub:
			stack[sp] = mem[i.a] - mem[i.b]
			sp++
		case opLLMul:
			stack[sp] = mem[i.a] * mem[i.b]
			sp++
		case opLCAdd:
			stack[sp] = mem[i.a] + i.f
			sp++
		case opLCSub:
			stack[sp] = mem[i.a] - i.f
			sp++
		case opLCMul:
			stack[sp] = mem[i.a] * i.f
			sp++

		// ---- Tiered: instrumented twins. Analyzer calls replay the exact
		// component order of the unfused window, so access counts, skip
		// decisions and fault-time shadow state are bit-identical. ----

		case opLGIdxI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = float64((iv - d.lo) * d.stride)
			sp++
		case opLPIdxI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.a]
			v.dda.read(addr, pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[addr]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = float64((iv - d.lo) * d.stride)
			sp++
		case opLGIdxAddI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp-1] += float64((iv - d.lo) * d.stride)
		case opLPIdxAddI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.a]
			v.dda.read(addr, pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[addr]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp-1] += float64((iv - d.lo) * d.stride)

		case opLGIdxLoadGEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			addr := d.base + iv*d.stride
			v.dda.read(addr, pc)
			stack[sp] = mem[addr]
			sp++
		case opLGIdxLoadPEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			addr := params[d.pslot] + d.base + iv*d.stride
			v.dda.read(addr, pc)
			stack[sp] = mem[addr]
			sp++
		case opLGIdxStoreGEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			addr := d.base + iv*d.stride
			v.dda.write(addr, pc)
			sp--
			mem[addr] = stack[sp]
		case opLGIdxStorePEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			addr := params[d.pslot] + d.base + iv*d.stride
			v.dda.write(addr, pc)
			sp--
			mem[addr] = stack[sp]

		case opIdxAddLoadGEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			addr := int64(i.a) + int64(stack[sp-1]) + (iv-d.lo)*d.stride
			v.dda.read(addr, pc)
			stack[sp-1] = mem[addr]
		case opIdxAddLoadPEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			addr := params[i.a] + int64(stack[sp-1]) + (iv-d.lo)*d.stride
			v.dda.read(addr, pc)
			stack[sp-1] = mem[addr]
		case opIdxAddStoreGEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			addr := int64(i.a) + int64(stack[sp-2]) + (iv-d.lo)*d.stride
			v.dda.write(addr, pc)
			sp -= 3
			mem[addr] = stack[sp]
		case opIdxAddStorePEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(stack[sp-1]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			addr := params[i.a] + int64(stack[sp-2]) + (iv-d.lo)*d.stride
			v.dda.write(addr, pc)
			sp -= 3
			mem[addr] = stack[sp]

		case opConstAddStoreGI:
			v.dda.write(int64(i.a), pc)
			sp--
			mem[i.a] = stack[sp] + i.f

		case opLLAddI:
			v.dda.read(int64(i.a), pc)
			v.dda.read(int64(i.b), pc)
			stack[sp] = mem[i.a] + mem[i.b]
			sp++
		case opLLSubI:
			v.dda.read(int64(i.a), pc)
			v.dda.read(int64(i.b), pc)
			stack[sp] = mem[i.a] - mem[i.b]
			sp++
		case opLLMulI:
			v.dda.read(int64(i.a), pc)
			v.dda.read(int64(i.b), pc)
			stack[sp] = mem[i.a] * mem[i.b]
			sp++
		case opLCAddI:
			v.dda.read(int64(i.a), pc)
			stack[sp] = mem[i.a] + i.f
			sp++
		case opLCSubI:
			v.dda.read(int64(i.a), pc)
			stack[sp] = mem[i.a] - i.f
			sp++
		case opLCMulI:
			v.dda.read(int64(i.a), pc)
			stack[sp] = mem[i.a] * i.f
			sp++

		// ---- Tiered: specialized (checkless) accesses. Only reachable
		// through an armed activation, whose preflight proved every index of
		// this run in range; the index cell provably holds the exact integer
		// induction value (specializable forbids anything that could clobber
		// it), so truncation equals the generic tier's rounding. ----

		case opSpecLoadG:
			d := &cd.idx[i.b]
			stack[sp] = mem[d.base+int64(mem[i.a])*d.stride]
			sp++
		case opSpecStoreG:
			d := &cd.idx[i.b]
			sp--
			mem[d.base+int64(mem[i.a])*d.stride] = stack[sp]
		case opSpecLoadP:
			d := &cd.idx[i.b]
			stack[sp] = mem[params[d.pslot]+d.base+int64(mem[i.a])*d.stride]
			sp++
		case opSpecStoreP:
			d := &cd.idx[i.b]
			sp--
			mem[params[d.pslot]+d.base+int64(mem[i.a])*d.stride] = stack[sp]

		// ---- Tiered: second-order fusions (uninstrumented) ----

		case opLPIdxLoadGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = mem[d.base+iv*d.stride]
			sp++
		case opLPIdxLoadPE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = mem[params[d.pslot]+d.base+iv*d.stride]
			sp++
		case opLPIdxStoreGE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			mem[d.base+iv*d.stride] = stack[sp]
		case opLPIdxStorePE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			sp--
			mem[params[d.pslot]+d.base+iv*d.stride] = stack[sp]

		case opLoadGEAdd:
			sp--
			stack[sp-1] += mem[int64(i.a)+int64(stack[sp])]
		case opLoadGESub:
			sp--
			stack[sp-1] -= mem[int64(i.a)+int64(stack[sp])]
		case opLoadGEMul:
			sp--
			stack[sp-1] *= mem[int64(i.a)+int64(stack[sp])]
		case opLCMulAdd:
			stack[sp-1] += mem[i.a] * i.f
		case opLPJGT:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp--
			if !(stack[sp] > mem[params[i.b]]) {
				pc = i.a
				continue
			}
		case opLPJLE:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			sp--
			if !(stack[sp] <= mem[params[i.b]]) {
				pc = i.a
				continue
			}
		case opLCIdx:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a] + i.f))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = float64((iv - d.lo) * d.stride)
			sp++
		case opLCAddStoreG:
			mem[i.b] = mem[i.a] + i.f

		// ---- Tiered: second-order instrumented twins ----

		case opLPIdxLoadGEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.a]
			v.dda.read(addr, pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[addr]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			ea := d.base + iv*d.stride
			v.dda.read(ea, pc)
			stack[sp] = mem[ea]
			sp++
		case opLPIdxLoadPEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.a]
			v.dda.read(addr, pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[addr]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			ea := params[d.pslot] + d.base + iv*d.stride
			v.dda.read(ea, pc)
			stack[sp] = mem[ea]
			sp++
		case opLPIdxStoreGEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.a]
			v.dda.read(addr, pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[addr]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			ea := d.base + iv*d.stride
			v.dda.write(ea, pc)
			sp--
			mem[ea] = stack[sp]
		case opLPIdxStorePEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.a]
			v.dda.read(addr, pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[addr]))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			ea := params[d.pslot] + d.base + iv*d.stride
			v.dda.write(ea, pc)
			sp--
			mem[ea] = stack[sp]

		case opLoadGEAddI:
			sp--
			addr := int64(i.a) + int64(stack[sp])
			v.dda.read(addr, pc)
			stack[sp-1] += mem[addr]
		case opLoadGESubI:
			sp--
			addr := int64(i.a) + int64(stack[sp])
			v.dda.read(addr, pc)
			stack[sp-1] -= mem[addr]
		case opLoadGEMulI:
			sp--
			addr := int64(i.a) + int64(stack[sp])
			v.dda.read(addr, pc)
			stack[sp-1] *= mem[addr]
		case opLCMulAddI:
			v.dda.read(int64(i.a), pc)
			stack[sp-1] += mem[i.a] * i.f
		case opLPJGTI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.b]
			v.dda.read(addr, pc)
			sp--
			if !(stack[sp] > mem[addr]) {
				pc = i.a
				continue
			}
		case opLPJLEI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			addr := params[i.b]
			v.dda.read(addr, pc)
			sp--
			if !(stack[sp] <= mem[addr]) {
				pc = i.a
				continue
			}
		case opLCIdxI:
			if ops > maxOps {
				return fail(budgetErr(maxOps))
			}
			v.dda.read(int64(i.a), pc)
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a] + i.f))
			if iv < d.lo || iv > d.hi {
				return fail(boundsErr(d, iv))
			}
			stack[sp] = float64((iv - d.lo) * d.stride)
			sp++
		case opLCAddStoreGI:
			v.dda.read(int64(i.a), pc)
			v.dda.write(int64(i.b), pc)
			mem[i.b] = mem[i.a] + i.f

		default:
			return fail(fmt.Errorf("exec: bad opcode %d at pc %d", i.op, pc))
		}
		pc++
	}
}

// runRegBody executes an armed register-form body (tier 4) natively: a
// compact dispatch loop whose back edge (the body's opLoopNextHead
// terminator) is handled inline, so consecutive unsampled iterations never
// re-enter the main switch. Registers are eval-stack slots addressed
// absolutely (body entry depth is 0 — see register.go), and the induction
// index is hoisted into idxI once per iteration: act.v mirrors
// mem[act.idxAddr] exactly and preflight proved integer induction, so
// int64(act.v) equals the generic tier's rounding.
//
// Returns the pc the main loop resumes at plus instruction/strip-iteration
// deltas for the caller's counters. Virtual time (ops) and event ordering
// are identical to the stack alt body: every instruction keeps its source
// tick (fused windows sum theirs), budget checks sit at the same opcodes,
// and iter/exit events fire from the same back-edge points.
func (v *vm) runRegBody(act *loopAct, params []int64) (int32, int64, int64, error) {
	cd := v.cd
	ins := cd.ins
	mem := v.mem
	stack := v.stack
	ops := v.ops
	maxOps := v.maxOps
	var nInstr, stripIters, iters int64
	defer func() { counters.regIterations.Add(iters) }()

	entry := act.alt
	idxI := int64(act.v)
	pc := entry
	for {
		i := &ins[pc]
		ops += int64(i.tick)
		nInstr++
		switch i.op {
		case opNop:

		case opLoopNextHead:
			// Inline back edge: verbatim copy of the loop's fused
			// opLoopNext+opLoopHead terminator (i.a = head pc, i.b = exit pc).
			iters++
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			act.it++
			act.v += act.step
			mem[act.idxAddr] = act.v
			if act.it >= act.trips {
				v.ops = ops
				if v.events {
					v.exitLoopTop()
				} else {
					v.loopActs = v.loopActs[:len(v.loopActs)-1]
				}
				return i.b, nInstr, stripIters, nil
			}
			if v.events {
				v.iterLoop(act.li, act.it)
			}
			if d := v.dda; d != nil {
				if d.unsampled == 0 {
					// Sampled iteration: hand back to the instrumented
					// generic body, exactly as the stack tier does.
					v.ops = ops
					return i.a + 1, nInstr, stripIters, nil
				}
				stripIters++
			}
			idxI = int64(act.v)
			pc = entry
			continue

		case opRConst:
			stack[i.b] = i.f
		case opRLoadG:
			stack[i.b] = mem[i.a]
		case opRLoadP:
			stack[i.b] = mem[params[i.a]]
		case opRStoreG:
			mem[i.a] = stack[i.b]
		case opRStoreP:
			mem[params[i.a]] = stack[i.b]
		case opRNeg:
			stack[i.b] = -stack[i.b]
		case opRNot:
			if stack[i.b] == 0 {
				stack[i.b] = 1
			} else {
				stack[i.b] = 0
			}
		case opRBool:
			if stack[i.b] != 0 {
				stack[i.b] = 1
			}
		case opRAdd:
			b := i.b
			stack[b&rMask] = stack[b>>rBits&rMask] + stack[b>>(2*rBits)&rMask]
		case opRSub:
			b := i.b
			stack[b&rMask] = stack[b>>rBits&rMask] - stack[b>>(2*rBits)&rMask]
		case opRMul:
			b := i.b
			stack[b&rMask] = stack[b>>rBits&rMask] * stack[b>>(2*rBits)&rMask]
		case opRDiv:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			b := i.b
			den := stack[b>>(2*rBits)&rMask]
			if den == 0 {
				v.ops = ops
				return 0, nInstr, stripIters,
					fmt.Errorf("exec: line %d: division by zero", i.a)
			}
			stack[b&rMask] = stack[b>>rBits&rMask] / den
		case opREQ:
			b := i.b
			stack[b&rMask] = boolVal(stack[b>>rBits&rMask] == stack[b>>(2*rBits)&rMask])
		case opRNE:
			b := i.b
			stack[b&rMask] = boolVal(stack[b>>rBits&rMask] != stack[b>>(2*rBits)&rMask])
		case opRLT:
			b := i.b
			stack[b&rMask] = boolVal(stack[b>>rBits&rMask] < stack[b>>(2*rBits)&rMask])
		case opRLE:
			b := i.b
			stack[b&rMask] = boolVal(stack[b>>rBits&rMask] <= stack[b>>(2*rBits)&rMask])
		case opRGT:
			b := i.b
			stack[b&rMask] = boolVal(stack[b>>rBits&rMask] > stack[b>>(2*rBits)&rMask])
		case opRGE:
			b := i.b
			stack[b&rMask] = boolVal(stack[b>>rBits&rMask] >= stack[b>>(2*rBits)&rMask])
		case opRIntrin:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			argc := i.b & rMask
			base := i.b >> rBits
			r, err := applyIntrinsicID(i.a, stack[base:base+argc])
			if err != nil {
				v.ops = ops
				return 0, nInstr, stripIters, err
			}
			stack[base] = r
		case opRJmp:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			pc = i.a
			continue
		case opRJZ:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			if stack[i.b] == 0 {
				pc = i.a
				continue
			}
		case opRAndJmp:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			if stack[i.b] == 0 {
				pc = i.a
				continue
			}
		case opROrJmp:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			if stack[i.b] != 0 {
				stack[i.b] = 1
				pc = i.a
				continue
			}
		case opRJEQ, opRJNE, opRJLT, opRJLE, opRJGT, opRJGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			a := stack[i.b&rMask]
			b := stack[i.b>>rBits&rMask]
			var cond bool
			switch i.op {
			case opRJEQ:
				cond = a == b
			case opRJNE:
				cond = a != b
			case opRJLT:
				cond = a < b
			case opRJLE:
				cond = a <= b
			case opRJGT:
				cond = a > b
			default:
				cond = a >= b
			}
			if !cond {
				pc = i.a
				continue
			}
		case opRIdx:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.a]
			iv := int64(math.Round(stack[i.b]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[i.b] = float64((iv - d.lo) * d.stride)
		case opRIdxAdd:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.a]
			iv := int64(math.Round(stack[i.b>>rBits&rMask]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[i.b&rMask] += float64((iv - d.lo) * d.stride)
		case opRLoadGE:
			stack[i.b] = mem[int64(i.a)+int64(stack[i.b])]
		case opRLoadPE:
			stack[i.b] = mem[params[i.a]+int64(stack[i.b])]
		case opRStoreGE:
			mem[int64(i.a)+int64(stack[i.b>>rBits&rMask])] = stack[i.b&rMask]
		case opRStorePE:
			mem[params[i.a]+int64(stack[i.b>>rBits&rMask])] = stack[i.b&rMask]
		case opRSpecLoadG:
			d := &cd.idx[i.b]
			stack[i.a] = mem[d.base+idxI*d.stride]
		case opRSpecStoreG:
			d := &cd.idx[i.b]
			mem[d.base+idxI*d.stride] = stack[i.a]
		case opRSpecLoadP:
			d := &cd.idx[i.b]
			stack[i.a] = mem[params[d.pslot]+d.base+idxI*d.stride]
		case opRSpecStoreP:
			d := &cd.idx[i.b]
			mem[params[d.pslot]+d.base+idxI*d.stride] = stack[i.a]
		case opRLGIdxLoadGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] = mem[d.base+iv*d.stride]
		case opRLGIdxLoadPE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] = mem[params[d.pslot]+d.base+iv*d.stride]
		case opRLGIdxStoreGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			mem[d.base+iv*d.stride] = stack[int32(i.f)]
		case opRLGIdxStorePE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			mem[params[d.pslot]+d.base+iv*d.stride] = stack[int32(i.f)]
		case opRIdxAddLoadGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			r := int32(i.f)
			acc := r & rMask
			iv := int64(math.Round(stack[r>>rBits&rMask]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[acc] = mem[int64(i.a)+int64(stack[acc])+(iv-d.lo)*d.stride]
		case opRIdxAddLoadPE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			r := int32(i.f)
			acc := r & rMask
			iv := int64(math.Round(stack[r>>rBits&rMask]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[acc] = mem[params[i.a]+int64(stack[acc])+(iv-d.lo)*d.stride]
		case opRIdxAddStoreGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			r := int32(i.f)
			iv := int64(math.Round(stack[r>>(2*rBits)&rMask]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			off := int64(stack[r>>rBits&rMask]) + (iv-d.lo)*d.stride
			mem[int64(i.a)+off] = stack[r&rMask]
		case opRIdxAddStorePE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			r := int32(i.f)
			iv := int64(math.Round(stack[r>>(2*rBits)&rMask]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			off := int64(stack[r>>rBits&rMask]) + (iv-d.lo)*d.stride
			mem[params[i.a]+off] = stack[r&rMask]
		case opRLGIdx:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] = float64((iv - d.lo) * d.stride)
		case opRLGIdxAdd:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[i.a]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] += float64((iv - d.lo) * d.stride)
		case opRLLAdd:
			stack[int32(i.f)] = mem[i.a] + mem[i.b]
		case opRLLSub:
			stack[int32(i.f)] = mem[i.a] - mem[i.b]
		case opRLLMul:
			stack[int32(i.f)] = mem[i.a] * mem[i.b]
		case opRLCAdd:
			stack[i.b] = mem[i.a] + i.f
		case opRLCSub:
			stack[i.b] = mem[i.a] - i.f
		case opRLCMul:
			stack[i.b] = mem[i.a] * i.f
		case opRLCMulAdd:
			stack[i.b] += mem[i.a] * i.f
		case opRLPJGT:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			if !(stack[i.b>>rBits&rMask] > mem[params[i.b&rMask]]) {
				pc = i.a
				continue
			}
		case opRLPJLE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			if !(stack[i.b>>rBits&rMask] <= mem[params[i.b&rMask]]) {
				pc = i.a
				continue
			}
		case opRLCIdx:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b&(1<<(2*rBits)-1)]
			iv := int64(math.Round(mem[i.a] + i.f))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[i.b>>(2*rBits)] = float64((iv - d.lo) * d.stride)
		case opLCAddStoreG:
			// Stack-free fused op kept verbatim by the lowering.
			mem[i.b] = mem[i.a] + i.f
		case opRConstAddStoreG:
			mem[i.a] = stack[i.b] + i.f
		case opRLoadGEAdd:
			stack[i.b&rMask] += mem[int64(i.a)+int64(stack[i.b>>rBits&rMask])]
		case opRLoadGESub:
			stack[i.b&rMask] -= mem[int64(i.a)+int64(stack[i.b>>rBits&rMask])]
		case opRLoadGEMul:
			stack[i.b&rMask] *= mem[int64(i.a)+int64(stack[i.b>>rBits&rMask])]
		case opRSpecJGTP:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[int32(i.f)]
			if !(mem[d.base+idxI*d.stride] > mem[params[i.b]]) {
				pc = i.a
				continue
			}
		case opRSpecJLEP:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[int32(i.f)]
			if !(mem[d.base+idxI*d.stride] <= mem[params[i.b]]) {
				pc = i.a
				continue
			}
		case opRMemAxpy:
			mem[i.a] += mem[i.b] * i.f
		case opRLPIdx:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] = float64((iv - d.lo) * d.stride)
		case opRLPIdxAdd:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] += float64((iv - d.lo) * d.stride)
		case opRLPIdxLoadGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] = mem[d.base+iv*d.stride]
		case opRLPIdxLoadPE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] = mem[params[d.pslot]+d.base+iv*d.stride]
		case opRLPIdxStoreGE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			mem[d.base+iv*d.stride] = stack[int32(i.f)]
		case opRLPIdxStorePE:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b]
			iv := int64(math.Round(mem[params[i.a]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			mem[params[d.pslot]+d.base+iv*d.stride] = stack[int32(i.f)]
		case opRAddC:
			stack[i.b&rMask] = stack[i.b>>rBits&rMask] + i.f
		case opRSubC:
			stack[i.b&rMask] = stack[i.b>>rBits&rMask] - i.f
		case opRMulC:
			stack[i.b&rMask] = stack[i.b>>rBits&rMask] * i.f
		case opRSpecStoreC:
			d := &cd.idx[i.b]
			mem[d.base+idxI*d.stride] = i.f
		case opRAbs:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			stack[i.b] = math.Abs(stack[i.b])
		case opRLPIdxLoadGEAdd:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b&(1<<(2*rBits)-1)]
			iv := int64(math.Round(mem[params[i.b>>(2*rBits)]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] += mem[int64(i.a)+(iv-d.lo)*d.stride]
		case opRLPIdxLoadGESub:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b&(1<<(2*rBits)-1)]
			iv := int64(math.Round(mem[params[i.b>>(2*rBits)]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] -= mem[int64(i.a)+(iv-d.lo)*d.stride]
		case opRLPIdxLoadGEMul:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			d := &cd.idx[i.b&(1<<(2*rBits)-1)]
			iv := int64(math.Round(mem[params[i.b>>(2*rBits)]]))
			if iv < d.lo || iv > d.hi {
				v.ops = ops
				return 0, nInstr, stripIters, boundsErr(d, iv)
			}
			stack[int32(i.f)] *= mem[int64(i.a)+(iv-d.lo)*d.stride]
		case opRLCMulAddSpecStore:
			r := i.b & rMask
			stack[r] += mem[i.a] * i.f
			d := &cd.idx[i.b>>rBits]
			mem[d.base+idxI*d.stride] = stack[r]
		case opRSpecJGTPInc:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			enc := int32(i.f)
			d := &cd.idx[enc&(1<<(2*rBits)-1)]
			if mem[d.base+idxI*d.stride] > mem[params[i.b]] {
				ops += int64(enc >> (2 * rBits)) // taken path pays the increment's tick
				mem[i.a]++
			}
		case opRSpecJLEPInc:
			if ops > maxOps {
				v.ops = ops
				return 0, nInstr, stripIters, budgetErr(maxOps)
			}
			enc := int32(i.f)
			d := &cd.idx[enc&(1<<(2*rBits)-1)]
			if mem[d.base+idxI*d.stride] <= mem[params[i.b]] {
				ops += int64(enc >> (2 * rBits)) // taken path pays the increment's tick
				mem[i.a]++
			}

		default:
			v.ops = ops
			return 0, nInstr, stripIters,
				fmt.Errorf("exec: bad register opcode %d at pc %d", i.op, pc)
		}
		pc++
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func budgetErr(maxOps int64) error {
	return fmt.Errorf("exec: operation budget exceeded (%d)", maxOps)
}

func boundsErr(d *idxData, iv int64) error {
	return fmt.Errorf("exec: line %d: index %d out of bounds %d:%d for %s dim %d",
		d.line, iv, d.lo, d.hi, d.name, d.dim)
}

// specThreshold is the invocation count (within one run) after which a
// specializable loop's activations try to arm the alt body.
const specThreshold = 2

// specPreflight proves every guarded index expression of one activation in
// bounds using exact integer endpoints, so the alt body may drop per-access
// checks. Conservative: fractional or huge endpoints keep the generic body.
// The magnitude bounds keep lo + k*step exactly representable (< 2^52) for
// every iteration, so the repeated float addition that advances the index
// is exact and truncation is sound.
func specPreflight(cd *code, lm *loopMeta, lo, step float64, trips int64) bool {
	if trips <= 0 {
		return false
	}
	if lo != math.Trunc(lo) || step != math.Trunc(step) {
		return false
	}
	if math.Abs(lo) > 1<<40 || math.Abs(step) > 1<<20 || trips > math.MaxInt32 {
		return false
	}
	first := int64(lo)
	last := first + (trips-1)*int64(step)
	mn, mx := first, last
	if mn > mx {
		mn, mx = mx, mn
	}
	for _, g := range lm.guards {
		d := &cd.idx[g]
		if mn < d.lo || mx > d.hi {
			return false
		}
	}
	return true
}

func applyIntrinsicID(id int32, args []float64) (float64, error) {
	switch id {
	case inMIN:
		v := args[0]
		for _, a := range args[1:] {
			if a < v {
				v = a
			}
		}
		return v, nil
	case inMAX:
		v := args[0]
		for _, a := range args[1:] {
			if a > v {
				v = a
			}
		}
		return v, nil
	case inMOD:
		return math.Mod(args[0], args[1]), nil
	case inABS:
		return math.Abs(args[0]), nil
	case inSQRT:
		if args[0] < 0 {
			return 0, fmt.Errorf("exec: SQRT of negative value")
		}
		return math.Sqrt(args[0]), nil
	case inEXP:
		return math.Exp(args[0]), nil
	case inSIN:
		return math.Sin(args[0]), nil
	case inCOS:
		return math.Cos(args[0]), nil
	case inINT:
		return math.Trunc(args[0]), nil
	}
	return args[0], nil // inFLOAT
}
