package exec

import (
	"fmt"

	"suifx/internal/ir"
)

// The lowering from IR to bytecode. Virtual-time accounting is preserved
// exactly: the tree-walker charges 1 op per statement executed and 1 op per
// expression node evaluated, and op totals are only observable at loop
// enter/iter/exit events (that is where the profiler samples the clock), so
// the compiler is free to fold each statement's pending ticks onto the
// first instruction it emits for that statement. Hook-relevant event order
// (argument evaluation order, short-circuit skipping, index-expression
// evaluation before stores) follows the tree-walker statement by statement.

type compiler struct {
	prog         *ir.Program
	lay          *layout
	instrumented bool
	c            *code
	pending      int // statement/expression ticks to fold onto the next instruction
	curStmt      ir.Stmt
	curProc      *ir.Proc
	entryOf      map[string]int32
	depth        int // static eval-stack depth at the current emit point
	maxDepth     int

	// Tiered lowering: specializable loops additionally get an alternate
	// (checkless, uninstrumented) body after their opLoopNext. While that
	// body lowers, inAlt is set and spec-qualifying accesses through
	// specIdxSym collapse to opSpec* forms guarded by loops[specLI].guards.
	tiered     bool
	inAlt      bool
	specLI     int32
	specIdxSym *ir.Symbol

	// Worker-view rebinding (parallel plans): symbols privatized for one
	// worker resolve to that worker's storage as precompiled absolute
	// addresses, and privatized common members redirect by (block, offset)
	// so every alias in every reachable procedure lands on the private
	// copy — the compile-time mirror of the tree-walker's bind()/privCommon.
	rebind     map[*ir.Symbol]int64
	privCommon map[string]map[int64]int64
}

func compileProgram(prog *ir.Program, lay *layout, instrumented, tiered bool) *code {
	c := &compiler{
		prog:         prog,
		lay:          lay,
		instrumented: instrumented,
		tiered:       tiered,
		c:            &code{lay: lay, instrumented: instrumented, tiered: tiered},
		entryOf:      map[string]int32{},
	}
	for _, p := range prog.Procs {
		c.entryOf[p.Name] = int32(len(c.c.ins))
		if p.IsMain {
			c.c.entry = int32(len(c.c.ins))
		}
		c.curProc = p
		c.stmts(p.Body)
		// Implicit RETURN at the end of the body (carries no tick: the
		// tree-walker charges nothing for falling off the end).
		c.curStmt = nil
		c.emit(opReturn, 0, 0, 0)
	}
	for i := range c.c.calls {
		ci := &c.c.calls[i]
		ci.entry = c.entryOf[ci.name]
	}
	c.c.maxStack = c.maxDepth + 8
	return c.c
}

// compileLoopBody lowers one approved parallel loop's body — plus every
// procedure reachable from it — into a standalone instruction stream whose
// entry executes the body exactly once. The parallel runtime stores the
// iteration's index value at the rebound index cell and calls run() per
// iteration, so one compiled view per worker replaces the tree-walker's
// per-call map lookups with fixed addresses. Views are never instrumented:
// worker clones drop hooks on the tree path too.
func compileLoopBody(prog *ir.Program, lay *layout, proc *ir.Proc, l *ir.DoLoop,
	rebind map[*ir.Symbol]int64, privCommon map[string]map[int64]int64, tiered bool) *code {
	c := &compiler{
		prog:       prog,
		lay:        lay,
		c:          &code{lay: lay, tiered: tiered},
		entryOf:    map[string]int32{},
		rebind:     rebind,
		privCommon: privCommon,
		tiered:     tiered,
	}
	c.curProc = proc
	c.stmts(l.Body)
	c.curStmt = nil
	c.emit(opReturn, 0, 0, 0)
	for _, p := range reachableProcs(prog, l) {
		c.entryOf[p.Name] = int32(len(c.c.ins))
		c.curProc = p
		c.stmts(p.Body)
		c.curStmt = nil
		c.emit(opReturn, 0, 0, 0)
	}
	for i := range c.c.calls {
		ci := &c.c.calls[i]
		ci.entry = c.entryOf[ci.name]
	}
	c.c.maxStack = c.maxDepth + 8
	return c.c
}

// emit appends one instruction, folding any pending ticks onto it.
func (c *compiler) emit(op opcode, a, b int32, f float64) int32 {
	t := c.pending
	c.pending = 0
	for t > 255 { // cannot happen with the current lowering; guard anyway
		c.c.ins = append(c.c.ins, instr{op: opNop, tick: 255})
		c.c.stmtOf = append(c.c.stmtOf, c.curStmt)
		t -= 255
	}
	c.c.ins = append(c.c.ins, instr{op: op, tick: uint8(t), a: a, b: b, f: f})
	c.c.stmtOf = append(c.c.stmtOf, c.curStmt)
	return int32(len(c.c.ins) - 1)
}

func (c *compiler) push(n int) {
	c.depth += n
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

func (c *compiler) pop(n int) { c.depth -= n }

func (c *compiler) errInstr(msg string) {
	id := int32(len(c.c.errs))
	c.c.errs = append(c.c.errs, msg)
	c.emit(opErr, id, 0, 0)
}

func (c *compiler) stmts(list []ir.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s ir.Stmt) {
	c.curStmt = s
	c.pending++ // execStmt's per-statement tick
	switch st := s.(type) {
	case *ir.Assign:
		c.expr(st.Rhs)
		c.store(st.Lhs)
	case *ir.If:
		c.expr(st.Cond)
		jz := c.emit(opJZ, 0, 0, 0)
		c.pop(1)
		c.stmts(st.Then)
		c.curStmt = s
		if len(st.Else) > 0 {
			jmp := c.emit(opJmp, 0, 0, 0)
			c.c.ins[jz].a = int32(len(c.c.ins))
			c.stmts(st.Else)
			c.curStmt = s
			c.c.ins[jmp].a = int32(len(c.c.ins))
		} else {
			c.c.ins[jz].a = int32(len(c.c.ins))
		}
	case *ir.DoLoop:
		c.loop(st)
	case *ir.Call:
		c.call(st)
	case *ir.IO:
		c.io(st)
	case *ir.Continue:
		c.emit(opNop, 0, 0, 0) // carries the statement tick
	case *ir.Return, *ir.Stop:
		// The tree-walker's execCall discards sigStop exactly like
		// sigReturn, so STOP and RETURN lower identically.
		c.emit(opReturn, 0, 0, 0)
	default:
		panic(fmt.Sprintf("exec: cannot lower statement %T", s))
	}
}

func (c *compiler) loop(l *ir.DoLoop) {
	li := int32(len(c.c.loops))
	lm := loopMeta{loop: l, proc: c.curProc.Name, line: int32(l.Pos.Line), altEntry: -1, regEntry: -1}
	switch sym := l.Index; {
	case sym.IsParam && !c.rebound(sym):
		lm.idxParam, lm.idxOp = true, int32(sym.ParamIndex)
	default:
		lm.idxOp = c.absAddr(sym)
	}
	c.c.loops = append(c.c.loops, lm)

	c.expr(l.Lo)
	c.expr(l.Hi)
	if l.Step != nil {
		c.expr(l.Step)
	} else {
		// Implicit step 1: the tree-walker evaluates nothing, so no tick.
		c.emit(opConst, 0, 0, 1)
		c.push(1)
	}
	c.emit(opLoopInit, li, 0, 0)
	c.pop(3)
	head := c.emit(opLoopHead, li, 0, 0)
	c.stmts(l.Body)
	c.curStmt = l
	c.emit(opLoopNext, head, 0, 0)
	if c.tiered && !c.inAlt && c.specializable(l) {
		alt := int32(len(c.c.ins))
		c.lowerAltBody(l, head, li)
		c.c.loops[li].altEntry = alt
	}
	c.c.ins[head].b = int32(len(c.c.ins))
}

// lowerAltBody emits the loop's specialized alternate body between its
// opLoopNext and its exit point: the same statements lowered a second time
// with instrumentation stripped and spec-qualifying accesses collapsed to
// checkless opSpec* forms. Tick charging per AST node is unchanged, so
// virtual-time totals at loop events are identical to the generic body.
func (c *compiler) lowerAltBody(l *ir.DoLoop, head, li int32) {
	savedInstr, savedDepth := c.instrumented, c.depth
	c.instrumented = false
	c.inAlt = true
	c.specLI = li
	c.specIdxSym = l.Index
	c.stmts(l.Body)
	c.curStmt = l
	c.emit(opLoopNext, head, 0, 0)
	c.instrumented = savedInstr
	c.inAlt = false
	c.specIdxSym = nil
	c.depth = savedDepth
}

// specializable reports whether a loop may carry a checkless alternate
// body: a straight-line body (no nested loops, calls, IO, or returns), a
// non-param, non-common index the body never assigns, no store that could
// alias the index cell through sequence association (param- or
// common-bound array stores), and at least one spec-qualifying access to
// make the alt body worth dispatching to.
func (c *compiler) specializable(l *ir.DoLoop) bool {
	sym := l.Index
	// A rebound (worker-private) index is fine: it resolves to a fixed
	// absolute cell in this view's bank, disjoint from every other symbol's
	// cells, so the aliasing exclusions below still hold.
	if sym.IsParam || sym.Common != "" {
		return false
	}
	n := 0
	return c.specStmts(l.Body, sym, &n) && n > 0
}

func (c *compiler) specStmts(list []ir.Stmt, sym *ir.Symbol, n *int) bool {
	for _, s := range list {
		switch st := s.(type) {
		case *ir.Assign:
			if !c.specExpr(st.Rhs, sym, n) {
				return false
			}
			switch lhs := st.Lhs.(type) {
			case *ir.VarRef:
				if lhs.Sym == sym {
					return false // body assigns the index
				}
			case *ir.ArrayRef:
				// Param-bound array stores could land on the index cell via
				// sequence association (the declared dims the bounds checks
				// enforce may overflow the actual argument), defeating the
				// hoisted bounds proof. Local- and common-array stores
				// cannot: in-bounds stores stay within their own symbol's
				// cells or common block region, both disjoint from the local
				// index scalar's cell.
				if lhs.Sym.IsParam {
					return false
				}
				if specQualifies(lhs, sym) {
					*n++
				} else {
					for _, ix := range lhs.Idx {
						if !c.specExpr(ix, sym, n) {
							return false
						}
					}
				}
			default:
				return false
			}
		case *ir.If:
			if !c.specExpr(st.Cond, sym, n) ||
				!c.specStmts(st.Then, sym, n) || !c.specStmts(st.Else, sym, n) {
				return false
			}
		case *ir.Continue:
		default:
			return false // nested loops, calls, IO, RETURN/STOP: generic only
		}
	}
	return true
}

func (c *compiler) specExpr(e ir.Expr, sym *ir.Symbol, n *int) bool {
	switch x := e.(type) {
	case *ir.Const, *ir.VarRef:
		return true
	case *ir.ArrayRef:
		if specQualifies(x, sym) {
			*n++
			return true
		}
		for _, ix := range x.Idx {
			if !c.specExpr(ix, sym, n) {
				return false
			}
		}
		return true
	case *ir.Un:
		return c.specExpr(x.X, sym, n)
	case *ir.Bin:
		return c.specExpr(x.L, sym, n) && c.specExpr(x.R, sym, n)
	case *ir.Intrinsic:
		for _, a := range x.Args {
			if !c.specExpr(a, sym, n) {
				return false
			}
		}
		return true
	}
	return false
}

// specQualifies reports whether an array reference collapses to a
// specialized access: one dimension, subscripted by exactly the loop index.
func specQualifies(x *ir.ArrayRef, sym *ir.Symbol) bool {
	if len(x.Sym.Dims) != 1 || len(x.Idx) != 1 {
		return false
	}
	vr, ok := x.Idx[0].(*ir.VarRef)
	return ok && vr.Sym == sym
}

// specAccess emits one checkless specialized access (load or store). It
// charges the index VarRef node's tick (the caller charged the reference
// node's own, when the tree-walker does), records the idx entry as an
// arm-time guard, and folds the loop-invariant -lo*stride into the base.
func (c *compiler) specAccess(x *ir.ArrayRef, store bool) {
	c.pending++ // the index VarRef node's eval tick
	sym := x.Sym
	dim := sym.Dims[0]
	d := idxData{
		lo: dim.Lo, hi: dim.Hi, stride: 1,
		line: int32(c.curStmt.Position().Line), dim: 1, name: sym.Name,
	}
	var op opcode
	if sym.IsParam && !c.rebound(sym) {
		d.pslot = int32(sym.ParamIndex)
		d.base = -dim.Lo
		op = opSpecLoadP
		if store {
			op = opSpecStoreP
		}
	} else {
		d.base = int64(c.absAddr(sym)) - dim.Lo
		op = opSpecLoadG
		if store {
			op = opSpecStoreG
		}
	}
	di := int32(len(c.c.idx))
	c.c.idx = append(c.c.idx, d)
	c.c.loops[c.specLI].guards = append(c.c.loops[c.specLI].guards, di)
	c.emit(op, c.absAddr(c.specIdxSym), di, 0)
	if store {
		c.pop(1)
	} else {
		c.push(1)
	}
}

func (c *compiler) call(cs *ir.Call) {
	callee := c.prog.ByName[cs.Name]
	if callee == nil {
		c.errInstr(fmt.Sprintf("exec: line %d: unknown subroutine %s", cs.Pos.Line, cs.Name))
		return
	}
	if len(cs.Args) < len(callee.Params) {
		c.errInstr(fmt.Sprintf("exec: line %d: call %s passes %d args for %d params",
			cs.Pos.Line, cs.Name, len(cs.Args), len(callee.Params)))
		return
	}
	ci := callInfo{name: cs.Name, line: int32(cs.Pos.Line), kinds: make([]uint8, len(callee.Params))}
	for i := range callee.Params {
		switch x := cs.Args[i].(type) {
		case *ir.VarRef:
			ci.kinds[i] = argBind
			c.argAddr(x.Sym, nil, cs)
		case *ir.ArrayRef:
			ci.kinds[i] = argBind
			if len(x.Idx) > 0 {
				c.argAddr(x.Sym, x, cs)
			} else {
				c.argAddr(x.Sym, nil, cs)
			}
		default:
			ci.kinds[i] = argValue
			c.expr(cs.Args[i])
		}
	}
	id := int32(len(c.c.calls))
	c.c.calls = append(c.c.calls, ci)
	c.emit(opCall, id, 0, 0)
	c.pop(len(callee.Params))
}

// argAddr pushes the binding address for a by-reference argument. Like the
// tree-walker, this charges no tick for the reference itself — only
// subarray index expressions are evaluated (with their usual ticks).
func (c *compiler) argAddr(sym *ir.Symbol, ar *ir.ArrayRef, s ir.Stmt) {
	withOff := int32(0)
	if ar != nil {
		c.offset(ar, s)
		withOff = 1
	}
	op, a := opArgAddrG, c.absAddr(sym)
	if sym.IsParam && !c.rebound(sym) {
		op, a = opArgAddrP, int32(sym.ParamIndex)
	}
	c.emit(op, a, withOff, 0)
	if ar == nil {
		c.push(1)
	}
}

func (c *compiler) io(st *ir.IO) {
	if st.Write {
		for _, a := range st.Args {
			c.expr(a)
		}
		c.emit(opWrite, int32(len(st.Args)), 0, 0)
		c.pop(len(st.Args))
		return
	}
	// READ: deterministic pseudo-input — store 0 to each reference argument.
	// The zero is not an evaluated expression in the tree-walker, so the
	// constant push carries no eval tick.
	emitted := false
	for _, a := range st.Args {
		r, ok := a.(ir.Ref)
		if !ok {
			continue
		}
		c.emit(opConst, 0, 0, 0)
		c.push(1)
		c.store(r)
		emitted = true
	}
	if !emitted {
		c.emit(opNop, 0, 0, 0) // carries the statement tick
	}
}

func (c *compiler) store(lhs ir.Ref) {
	switch x := lhs.(type) {
	case *ir.VarRef:
		op, a := c.accessOp(x.Sym, opStoreG, opStoreP, opStoreGI, opStorePI)
		c.emit(op, a, 0, 0)
		c.pop(1)
	case *ir.ArrayRef:
		if c.inAlt && specQualifies(x, c.specIdxSym) {
			c.specAccess(x, true)
			return
		}
		c.offset(x, c.curStmt)
		op, a := c.accessOp(x.Sym, opStoreGE, opStorePE, opStoreGEI, opStorePEI)
		c.emit(op, a, 0, 0)
		c.pop(2)
	default:
		panic(fmt.Sprintf("exec: unassignable reference %T", lhs))
	}
}

// offset lowers an array reference's index expressions into a chained
// bounds-checked offset computation (net stack effect: +1).
func (c *compiler) offset(ar *ir.ArrayRef, s ir.Stmt) {
	dims := ar.Sym.Dims
	if len(ar.Idx) != len(dims) {
		c.errInstr(fmt.Sprintf("exec: line %d: %s subscripted with %d of %d dims",
			s.Position().Line, ar.Sym.Name, len(ar.Idx), len(dims)))
		c.push(1) // keep static accounting balanced past the dead code
		return
	}
	stride := int64(1)
	for d, ix := range ar.Idx {
		c.expr(ix)
		di := int32(len(c.c.idx))
		c.c.idx = append(c.c.idx, idxData{
			lo: dims[d].Lo, hi: dims[d].Hi, stride: stride,
			line: int32(s.Position().Line), dim: int32(d + 1), name: ar.Sym.Name,
		})
		if d == 0 {
			c.emit(opIdx, di, 0, 0)
		} else {
			c.emit(opIdxAdd, di, 0, 0)
			c.pop(1)
		}
		stride *= dims[d].Size()
	}
}

func (c *compiler) accessOp(sym *ir.Symbol, g, p, gi, pi opcode) (opcode, int32) {
	if sym.IsParam && !c.rebound(sym) {
		if c.instrumented {
			return pi, int32(sym.ParamIndex)
		}
		return p, int32(sym.ParamIndex)
	}
	if c.instrumented {
		return gi, c.absAddr(sym)
	}
	return g, c.absAddr(sym)
}

// rebound reports whether a symbol has a worker-private address, which
// overrides even parameter binding (the tree-walker rebinds frame refs the
// same way).
func (c *compiler) rebound(sym *ir.Symbol) bool {
	_, ok := c.rebind[sym]
	return ok
}

func (c *compiler) absAddr(sym *ir.Symbol) int32 {
	if a, ok := c.rebind[sym]; ok {
		return int32(a)
	}
	if sym.Common != "" {
		if ov, ok := c.privCommon[sym.Common][sym.CommonOffset]; ok {
			return int32(ov)
		}
		return int32(c.lay.blockOff[sym.Common] + sym.CommonOffset)
	}
	return int32(c.lay.base[sym])
}

func (c *compiler) expr(e ir.Expr) {
	c.pending++ // eval's per-node tick
	switch x := e.(type) {
	case *ir.Const:
		c.emit(opConst, 0, 0, x.Val)
		c.push(1)
	case *ir.VarRef:
		op, a := c.accessOp(x.Sym, opLoadG, opLoadP, opLoadGI, opLoadPI)
		c.emit(op, a, 0, 0)
		c.push(1)
	case *ir.ArrayRef:
		if c.inAlt && specQualifies(x, c.specIdxSym) {
			c.specAccess(x, false)
			return
		}
		c.offset(x, c.curStmt)
		op, a := c.accessOp(x.Sym, opLoadGE, opLoadPE, opLoadGEI, opLoadPEI)
		c.emit(op, a, 0, 0)
		// offset pushed 1, the load replaces it: net 0 here.
	case *ir.Un:
		c.expr(x.X)
		if x.Op == "-" {
			c.emit(opNeg, 0, 0, 0)
		} else {
			c.emit(opNot, 0, 0, 0)
		}
	case *ir.Bin:
		c.bin(x)
	case *ir.Intrinsic:
		for _, a := range x.Args {
			c.expr(a)
		}
		id, ok := intrinsicID(x.Name)
		if !ok {
			// The tree-walker evaluates all arguments first, then fails.
			c.errInstr(fmt.Sprintf("exec: unknown intrinsic %s", x.Name))
			c.pop(len(x.Args))
			c.push(1)
			return
		}
		c.emit(opIntrin, id, int32(len(x.Args)), 0)
		c.pop(len(x.Args) - 1)
	default:
		panic(fmt.Sprintf("exec: cannot lower expression %T", e))
	}
}

func (c *compiler) bin(x *ir.Bin) {
	c.expr(x.L)
	switch x.Op {
	case ir.OpAnd:
		// Short-circuit: a false left side is the result (0) and the right
		// side's ticks are skipped, exactly like the tree-walker.
		j := c.emit(opAndJmp, 0, 0, 0)
		c.pop(1)
		c.expr(x.R)
		c.emit(opBool, 0, 0, 0)
		c.c.ins[j].a = int32(len(c.c.ins))
		return
	case ir.OpOr:
		j := c.emit(opOrJmp, 0, 0, 0)
		c.pop(1)
		c.expr(x.R)
		c.emit(opBool, 0, 0, 0)
		c.c.ins[j].a = int32(len(c.c.ins))
		return
	}
	c.expr(x.R)
	var op opcode
	switch x.Op {
	case ir.OpAdd:
		op = opAdd
	case ir.OpSub:
		op = opSub
	case ir.OpMul:
		op = opMul
	case ir.OpDiv:
		op = opDiv
	case ir.OpEQ:
		op = opEQ
	case ir.OpNE:
		op = opNE
	case ir.OpLT:
		op = opLT
	case ir.OpLE:
		op = opLE
	case ir.OpGT:
		op = opGT
	case ir.OpGE:
		op = opGE
	default:
		panic(fmt.Sprintf("exec: cannot lower operator %v", x.Op))
	}
	c.emit(op, int32(x.Pos.Line), 0, 0)
	c.pop(1)
}

// Intrinsic ids for opIntrin.
const (
	inMIN = iota
	inMAX
	inMOD
	inABS
	inSQRT
	inEXP
	inSIN
	inCOS
	inINT
	inFLOAT
)

func intrinsicID(name string) (int32, bool) {
	switch name {
	case "MIN":
		return inMIN, true
	case "MAX":
		return inMAX, true
	case "MOD":
		return inMOD, true
	case "ABS":
		return inABS, true
	case "SQRT":
		return inSQRT, true
	case "EXP":
		return inEXP, true
	case "SIN":
		return inSIN, true
	case "COS":
		return inCOS, true
	case "INT":
		return inINT, true
	case "FLOAT", "DBLE":
		return inFLOAT, true
	}
	return 0, false
}
