package exec

import (
	"sort"

	"suifx/internal/ir"
)

// DynDep implements the Dynamic Dependence Analyzer of §2.5.2: it
// instruments reads and writes, keeps the most recent write per memory
// location, and reports which loops carried a flow dependence during the
// run. Anti-dependences are ignored and same-iteration flow is not counted
// (privatization would remove it), exactly as the paper describes. Two
// optimizations from the paper are available: skipping accesses the
// compiler proved independent (via the Skip filter) and sampling batches of
// iterations (SampleEvery).
type DynDep struct {
	in *Interp

	// Skip, when non-nil, suppresses instrumentation for statements the
	// compiler proved independent (§2.5.2 optimization 1).
	Skip func(s ir.Stmt) bool
	// IgnoreVar suppresses dependences on variables the compiler already
	// knows to be inductions or reductions for the given loop.
	IgnoreVar func(l *ir.DoLoop, addr int64) bool
	// SampleEvery > 1 instruments only iterations where
	// iter < SampleWarm || iter % SampleEvery == 0 (§2.5.2 optimization 2).
	SampleEvery int64
	SampleWarm  int64

	stack     []*dynLoop
	lastWrite map[int64]*writeRec
	carried   map[*ir.DoLoop]int64 // loop -> dynamic loop-carried flow deps
	carriedAt map[*ir.DoLoop]map[int64]int64
	accesses  int64
	installed bool
}

type dynLoop struct {
	loop    *ir.DoLoop
	iter    int64
	sampled bool
}

type writeRec struct {
	// iters captures, per active loop at the time of the write, the
	// iteration number (aligned with the loop stack).
	loops []*ir.DoLoop
	iters []int64
}

// NewDynDep attaches the dynamic dependence analyzer to an interpreter
// (ordered after any previously attached analyzer). Under the tree engine
// it runs as hook closures over a last-write map; under the bytecode
// engine the VM drives an epoch-tagged shadow-memory twin (vm.go) and the
// results are folded in via absorb — the public API answers identically.
func NewDynDep(in *Interp) *DynDep {
	d := &DynDep{in: in, lastWrite: map[int64]*writeRec{}, carried: map[*ir.DoLoop]int64{},
		carriedAt: map[*ir.DoLoop]map[int64]int64{}}
	in.analyzers = append(in.analyzers, d)
	return d
}

// install chains the analyzer into the interpreter's hooks for
// tree-walking runs (idempotent; called by Run).
func (d *DynDep) install(in *Interp) {
	if d.installed {
		return
	}
	d.installed = true
	prevEnter, prevExit, prevIter := in.Hooks.OnLoopEnter, in.Hooks.OnLoopExit, in.Hooks.OnLoopIter
	prevRead, prevWrite := in.Hooks.OnRead, in.Hooks.OnWrite
	in.Hooks.OnLoopEnter = func(proc string, l *ir.DoLoop) {
		if prevEnter != nil {
			prevEnter(proc, l)
		}
		d.stack = append(d.stack, &dynLoop{loop: l, iter: -1})
	}
	in.Hooks.OnLoopIter = func(proc string, l *ir.DoLoop, iter int64) {
		if prevIter != nil {
			prevIter(proc, l, iter)
		}
		top := d.stack[len(d.stack)-1]
		top.iter = iter
		top.sampled = d.sampleIter(iter)
	}
	in.Hooks.OnLoopExit = func(proc string, l *ir.DoLoop) {
		if prevExit != nil {
			prevExit(proc, l)
		}
		if len(d.stack) > 0 {
			d.stack = d.stack[:len(d.stack)-1]
		}
	}
	in.Hooks.OnRead = func(addr int64, proc string, s ir.Stmt) {
		if prevRead != nil {
			prevRead(addr, proc, s)
		}
		d.onRead(addr, s)
	}
	in.Hooks.OnWrite = func(addr int64, proc string, s ir.Stmt) {
		if prevWrite != nil {
			prevWrite(addr, proc, s)
		}
		d.onWrite(addr, s)
	}
}

// absorb folds one bytecode run's shadow-memory results into the
// analyzer's maps.
func (d *DynDep) absorb(cd *code, st *ddaState) {
	d.accesses += st.accesses
	for li, n := range st.carried {
		if n == 0 {
			continue
		}
		l := cd.loops[li].loop
		d.carried[l] += n
		m := d.carriedAt[l]
		if m == nil {
			m = map[int64]int64{}
			d.carriedAt[l] = m
		}
		for addr, c := range st.carriedAt[li] {
			m[addr] += c
		}
	}
}

func (d *DynDep) sampleIter(iter int64) bool {
	if d.SampleEvery <= 1 {
		return true
	}
	warm := d.SampleWarm
	if warm == 0 {
		warm = 2
	}
	return iter < warm || iter%d.SampleEvery == 0
}

// active reports whether the current iteration stack is being sampled.
func (d *DynDep) active() bool {
	for _, e := range d.stack {
		if !e.sampled {
			return false
		}
	}
	return true
}

func (d *DynDep) onWrite(addr int64, s ir.Stmt) {
	if d.Skip != nil && d.Skip(s) {
		return
	}
	if !d.active() {
		return
	}
	d.accesses++
	rec := &writeRec{
		loops: make([]*ir.DoLoop, len(d.stack)),
		iters: make([]int64, len(d.stack)),
	}
	for i, e := range d.stack {
		rec.loops[i] = e.loop
		rec.iters[i] = e.iter
	}
	d.lastWrite[addr] = rec
}

func (d *DynDep) onRead(addr int64, s ir.Stmt) {
	if d.Skip != nil && d.Skip(s) {
		return
	}
	if !d.active() {
		return
	}
	d.accesses++
	rec := d.lastWrite[addr]
	if rec == nil {
		return
	}
	// The dependence is carried by the outermost common loop whose
	// iteration number differs between writer and reader.
	n := len(d.stack)
	if len(rec.loops) < n {
		n = len(rec.loops)
	}
	for i := 0; i < n; i++ {
		if d.stack[i].loop != rec.loops[i] {
			return // different loop instances: not a carried dep we track
		}
		if d.stack[i].iter != rec.iters[i] {
			l := d.stack[i].loop
			if d.IgnoreVar != nil && d.IgnoreVar(l, addr) {
				return
			}
			d.carried[l]++
			m := d.carriedAt[l]
			if m == nil {
				m = map[int64]int64{}
				d.carriedAt[l] = m
			}
			m[addr]++
			return
		}
	}
}

// Carried reports the number of dynamic loop-carried flow dependences
// observed for a loop (0 = potentially parallelizable, a hint per §2.5.2).
func (d *DynDep) Carried(l *ir.DoLoop) int64 { return d.carried[l] }

// CarriedInRange reports dynamic carried dependences whose address falls in
// [lo, hi] — used by the assertion checker (§2.8) to refute independence
// claims about a specific variable.
func (d *DynDep) CarriedInRange(l *ir.DoLoop, lo, hi int64) int64 {
	var n int64
	for addr, c := range d.carriedAt[l] {
		if addr >= lo && addr <= hi {
			n += c
		}
	}
	return n
}

// Accesses returns how many accesses were instrumented (for the sampling
// ablation).
func (d *DynDep) Accesses() int64 { return d.accesses }

// LoopsWithDeps returns IDs of loops that carried dependences, sorted.
func (d *DynDep) LoopsWithDeps(prog *ir.Program) []string {
	var out []string
	for _, p := range prog.Procs {
		for _, l := range p.Loops() {
			if d.carried[l] > 0 {
				out = append(out, l.ID(p.Name))
			}
		}
	}
	sort.Strings(out)
	return out
}
