// Package exec executes MiniF programs with two interchangeable engines —
// a compile-then-run bytecode VM (the default) and the original
// tree-walking interpreter — over a flat memory arena, with
// instrumentation that implements the paper's Execution Analyzers (§2.5):
// the Loop Profile Analyzer and the Dynamic Dependence Analyzer. Both
// engines share a deterministic virtual-time (operation count) clock the
// machine cost models consume, and produce byte-identical results; the
// tree-walker is kept for differential testing and for parallel-plan
// execution.
package exec

import (
	"fmt"
	"io"
	"math"

	"suifx/internal/ir"
)

// ExecMode selects the execution engine.
type ExecMode int

const (
	// ModeAuto follows the package-level DefaultMode.
	ModeAuto ExecMode = iota
	// ModeBytecode compiles the program once and runs the flat instruction
	// stream, including approved parallel loops (per-worker bytecode views
	// over the shared arena). It falls back to the tree-walker only for
	// user-installed hooks, which the VM does not model.
	ModeBytecode
	// ModeTree forces the original tree-walking interpreter.
	ModeTree
	// ModeTiered runs the superinstruction-fused bytecode variant with
	// profile-guided loop specialization (alt bodies armed after an
	// invocation threshold, bounds checks hoisted to a preflight, DDA
	// instrumentation stripped on unsampled iterations).
	ModeTiered
	// ModeRegister stacks a fourth tier on ModeTiered: specialized alt
	// bodies are additionally lowered to a register-addressed instruction
	// form (eval-stack slots become virtual registers, resolved at compile
	// time) executed by a dedicated inner dispatch loop. Arming, preflight,
	// sampled-DDA fallback and incremental invalidation behave exactly as
	// in ModeTiered; loops whose bodies cannot be register-lowered fall
	// back to the stack-form alt body.
	ModeRegister
)

// ParseMode maps a user-facing engine name to an ExecMode. Accepts
// "bytecode", "tree", "tiered", "register", "auto" and "" (auto).
func ParseMode(s string) (ExecMode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "bytecode":
		return ModeBytecode, nil
	case "tree":
		return ModeTree, nil
	case "tiered":
		return ModeTiered, nil
	case "register":
		return ModeRegister, nil
	}
	return ModeAuto, fmt.Errorf("exec: unknown mode %q (want auto, bytecode, tiered, register or tree)", s)
}

// ParseTier maps the user-facing `tier` knob to an ExecMode. Unlike
// ParseMode it does not accept "auto" — a tier names a concrete engine —
// but "" still means "no override".
func ParseTier(s string) (ExecMode, error) {
	switch s {
	case "":
		return ModeAuto, nil
	case "tree":
		return ModeTree, nil
	case "bytecode":
		return ModeBytecode, nil
	case "tiered":
		return ModeTiered, nil
	case "register":
		return ModeRegister, nil
	}
	return ModeAuto, fmt.Errorf("exec: unknown tier %q (want tree, bytecode, tiered or register)", s)
}

func (m ExecMode) String() string {
	switch m {
	case ModeBytecode:
		return "bytecode"
	case ModeTree:
		return "tree"
	case ModeTiered:
		return "tiered"
	case ModeRegister:
		return "register"
	}
	return "auto"
}

// DefaultMode is the engine used by interpreters in ModeAuto.
var DefaultMode = ModeBytecode

// Ref is a variable binding in a frame: a base address in the arena plus
// the declared dimensions (nil for scalars). Subarray arguments bind with a
// shifted base (Fortran sequence association).
type Ref struct {
	Base int64
	Dims []ir.Dim
}

// Hooks intercept execution events. Any hook may be nil.
type Hooks struct {
	OnLoopEnter func(proc string, l *ir.DoLoop)
	OnLoopIter  func(proc string, l *ir.DoLoop, iter int64)
	OnLoopExit  func(proc string, l *ir.DoLoop)
	OnRead      func(addr int64, proc string, s ir.Stmt)
	OnWrite     func(addr int64, proc string, s ir.Stmt)
}

// Interp executes one program instance.
type Interp struct {
	Prog  *ir.Program
	Out   io.Writer
	Hooks Hooks

	// Mode selects the engine for this interpreter (ModeAuto follows
	// DefaultMode). The tree-walker is used regardless when user hooks are
	// installed; both engines execute parallel plans.
	Mode ExecMode

	arena []float64
	// base maps storage roots: canonical common members and static locals.
	// Shared read-only with every interpreter over the same program.
	base     map[*ir.Symbol]int64
	blockOff map[string]int64
	ops      int64
	tempBase int64
	tempTop  int64
	// tempLimit bounds the scratch region: the main interpreter owns
	// [tempBase, tempLimit); parallel workers get disjoint blocks appended
	// after the static layout so concurrent value-argument spills never
	// collide.
	tempLimit int64

	// analyzers are attached by NewProfiler/NewDynDep. The tree engine
	// installs them as hook chains; the bytecode engine drives them
	// natively.
	analyzers      []analyzer
	hooksInstalled bool
	userSetHooks   bool

	// MaxOps aborts runaway executions (0 = unlimited).
	MaxOps int64

	// pcCount, when non-nil and sized to the compiled stream, receives
	// per-pc dynamic execution counts (FusionCensus only).
	pcCount []int64

	// Parallel execution state (see parallel.go).
	plan         *ParallelPlan
	workerBase   map[*ir.DoLoop]map[*ir.Symbol][]int64
	workerLocals map[*ir.DoLoop][]map[*ir.Symbol]int64
	// workerTemp holds each worker's private scratch-block base.
	workerTemp []int64
	// privCommon overrides common-member storage in worker clones, so
	// privatized common variables stay private across call boundaries.
	privCommon map[string]map[int64]int64
	inParallel bool
	// planRT caches the per-worker bytecode views compiled for the plan
	// (built lazily on the first bytecode run).
	planRT *planRT
	// parStats accumulates the per-planned-loop virtual-time profile
	// (invocations, per-worker ops, critical path); see ParallelStats.
	parStats map[*ir.DoLoop]*ParLoopStat
}

// analyzer is an execution analyzer (Profiler or DynDep) attached to an
// interpreter. install wires it into the tree-walker's hook chain; the
// bytecode engine recognizes the concrete types and drives them natively.
type analyzer interface {
	install(in *Interp)
}

// New allocates an interpreter with all static storage (commons and
// locals). The arena layout is computed once per program and shared.
func New(prog *ir.Program) *Interp {
	lay := loweredOf(prog).lay
	return &Interp{
		Prog:      prog,
		Out:       io.Discard,
		base:      lay.base,
		blockOff:  lay.blockOff,
		arena:     make([]float64, lay.size),
		tempBase:  lay.tempBase,
		tempTop:   lay.tempBase,
		tempLimit: lay.size,
	}
}

// Ops returns the virtual-time counter (operations executed so far).
func (in *Interp) Ops() int64 { return in.ops }

// Arena exposes the memory image (for validating parallel execution).
func (in *Interp) Arena() []float64 { return in.arena }

// ArenaSize returns the number of storage cells.
func (in *Interp) ArenaSize() int { return len(in.arena) }

// ScratchBase returns the arena offset where call-argument scratch begins.
// Cells at and beyond it are dead between statements, so validation against
// another run must not compare them: parallel workers spill into their own
// scratch blocks and leave the base region untouched.
func (in *Interp) ScratchBase() int64 { return in.tempBase }

// frame binds a procedure's symbols to storage.
type frame struct {
	proc *ir.Proc
	refs map[*ir.Symbol]Ref
}

func (in *Interp) refOf(f *frame, sym *ir.Symbol) Ref {
	if r, ok := f.refs[sym]; ok {
		return r
	}
	var r Ref
	switch {
	case sym.Common != "":
		if ov, ok := in.privCommon[sym.Common][sym.CommonOffset]; ok {
			r = Ref{Base: ov, Dims: sym.Dims}
			break
		}
		r = Ref{Base: in.blockOff[sym.Common] + sym.CommonOffset, Dims: sym.Dims}
	default:
		r = Ref{Base: in.base[sym], Dims: sym.Dims}
	}
	f.refs[sym] = r
	return r
}

// Run executes the program from its PROGRAM unit.
func (in *Interp) Run() error {
	main := in.Prog.Main()
	if main == nil {
		return fmt.Errorf("exec: no main program")
	}
	if in.useBytecode() {
		return in.runBytecode()
	}
	counters.treeRuns.Add(1)
	in.installAnalyzers()
	f := &frame{proc: main, refs: map[*ir.Symbol]Ref{}}
	_, err := in.execStmts(f, main.Body)
	return err
}

// useBytecode decides the engine for this run. User-set hooks and duplicate
// analyzers of one kind fall back to the tree-walker, which models them
// all; every fallback is attributed to its cause in the engine counters so
// a plan that unexpectedly runs off the fast engine is visible.
func (in *Interp) useBytecode() bool {
	mode := in.Mode
	if mode == ModeAuto {
		mode = DefaultMode
	}
	if mode != ModeBytecode && mode != ModeTiered && mode != ModeRegister {
		counters.fallbackMode.Add(1)
		return false
	}
	if in.userHooks() {
		counters.fallbackHooks.Add(1)
		return false
	}
	np, nd := 0, 0
	for _, a := range in.analyzers {
		switch a.(type) {
		case *Profiler:
			np++
		case *DynDep:
			nd++
		default:
			counters.fallbackAnalyzers.Add(1)
			return false
		}
	}
	if np > 1 || nd > 1 {
		counters.fallbackAnalyzers.Add(1)
		return false
	}
	return true
}

// userHooks reports whether hooks beyond the attached analyzers' own were
// installed on this interpreter.
func (in *Interp) userHooks() bool {
	if in.hooksInstalled {
		return in.userSetHooks
	}
	h := &in.Hooks
	return h.OnLoopEnter != nil || h.OnLoopIter != nil || h.OnLoopExit != nil ||
		h.OnRead != nil || h.OnWrite != nil
}

// installAnalyzers chains the attached analyzers into the hook fields for
// tree-walking execution (idempotent).
func (in *Interp) installAnalyzers() {
	if !in.hooksInstalled {
		in.userSetHooks = in.userHooks()
		in.hooksInstalled = true
	}
	for _, a := range in.analyzers {
		a.install(in)
	}
}

// runBytecode compiles (or reuses) the program's instruction stream and
// executes it, then folds the analyzer results back into the attached
// Profiler/DynDep so their public APIs answer identically to a tree run.
func (in *Interp) runBytecode() error {
	var prof *Profiler
	var dyn *DynDep
	for _, a := range in.analyzers {
		switch x := a.(type) {
		case *Profiler:
			prof = x
		case *DynDep:
			dyn = x
		}
	}
	mode := in.Mode
	if mode == ModeAuto {
		mode = DefaultMode
	}
	tier := tierPlain
	switch mode {
	case ModeTiered:
		tier = tierFused
	case ModeRegister:
		tier = tierRegister
	}
	low := loweredOf(in.Prog)
	cd := low.codeFor(in.Prog, dyn != nil, tier)
	counters.bytecodeRuns.Add(1)
	switch mode {
	case ModeTiered:
		counters.tieredRuns.Add(1)
	case ModeRegister:
		counters.registerRuns.Add(1)
	}

	sc, _ := low.vmPool.Get().(*vmScratch)
	if sc == nil {
		sc = &vmScratch{}
	}
	sc.prepare(cd)

	v := &vm{
		cd:         cd,
		mem:        in.arena,
		out:        in.Out,
		stack:      sc.stack,
		paramStore: sc.paramStore,
		frames:     sc.frames,
		loopActs:   sc.loopActs,
		tempTop:    in.tempTop,
		tempLimit:  in.tempLimit,
		ops:        in.ops,
		maxOps:     in.MaxOps,
	}
	if v.maxOps <= 0 {
		v.maxOps = math.MaxInt64
	}
	if cd.tiered {
		v.spec = sc.specInv
	}
	if in.pcCount != nil && len(in.pcCount) == len(cd.ins) {
		v.pcCount = in.pcCount
	}
	if in.plan != nil {
		v.par = in.ensurePlanRT(cd)
	}
	if prof != nil {
		v.prof = &profState{inv: sc.profInv, iters: sc.profIters, tops: sc.profOps, stack: sc.profStack}
	}
	var dst *ddaState
	if dyn != nil {
		sh, _ := low.shadowPool.Get().(*ddaShadow)
		if sh == nil {
			sh = &ddaShadow{}
		}
		sh.reset(len(in.arena))
		dst = newDDAState(dyn, cd, sh)
		v.dda = dst
	}
	v.events = v.prof != nil || v.dda != nil

	err := v.run()
	in.ops = v.ops

	if prof != nil {
		prof.absorb(cd, v.prof)
	}
	if dyn != nil {
		dyn.absorb(cd, dst)
		dst.sh.overflow = nil
		low.shadowPool.Put(dst.sh)
	}
	// Return the (possibly grown) scratch slices to the pool.
	sc.stack = v.stack
	sc.paramStore = v.paramStore
	sc.frames = v.frames
	sc.loopActs = v.loopActs
	if v.prof != nil {
		sc.profStack = v.prof.stack
	}
	low.vmPool.Put(sc)
	return err
}

// RunProc invokes one subroutine with pre-bound argument refs (used by the
// parallel runtime).
func (in *Interp) RunProc(p *ir.Proc, refs map[*ir.Symbol]Ref) error {
	f := &frame{proc: p, refs: refs}
	_, err := in.execStmts(f, p.Body)
	return err
}

type signal int

const (
	sigNone signal = iota
	sigReturn
	sigStop
)

func (in *Interp) tick(n int64) error {
	in.ops += n
	if in.MaxOps > 0 && in.ops > in.MaxOps {
		return fmt.Errorf("exec: operation budget exceeded (%d)", in.MaxOps)
	}
	return nil
}

func (in *Interp) execStmts(f *frame, stmts []ir.Stmt) (signal, error) {
	for _, s := range stmts {
		sig, err := in.execStmt(f, s)
		if err != nil || sig != sigNone {
			return sig, err
		}
	}
	return sigNone, nil
}

func (in *Interp) execStmt(f *frame, s ir.Stmt) (signal, error) {
	if err := in.tick(1); err != nil {
		return sigNone, err
	}
	switch st := s.(type) {
	case *ir.Assign:
		v, err := in.eval(f, st.Rhs, s)
		if err != nil {
			return sigNone, err
		}
		return sigNone, in.store(f, st.Lhs, v, s)
	case *ir.If:
		c, err := in.eval(f, st.Cond, s)
		if err != nil {
			return sigNone, err
		}
		if c != 0 {
			return in.execStmts(f, st.Then)
		}
		return in.execStmts(f, st.Else)
	case *ir.DoLoop:
		return in.execLoop(f, st)
	case *ir.Call:
		return sigNone, in.execCall(f, st)
	case *ir.IO:
		return sigNone, in.execIO(f, st)
	case *ir.Continue:
		return sigNone, nil
	case *ir.Return:
		return sigReturn, nil
	case *ir.Stop:
		return sigStop, nil
	}
	return sigNone, fmt.Errorf("exec: unknown statement %T", s)
}

func (in *Interp) execLoop(f *frame, l *ir.DoLoop) (signal, error) {
	lo, err := in.eval(f, l.Lo, l)
	if err != nil {
		return sigNone, err
	}
	hi, err := in.eval(f, l.Hi, l)
	if err != nil {
		return sigNone, err
	}
	step := 1.0
	if l.Step != nil {
		step, err = in.eval(f, l.Step, l)
		if err != nil {
			return sigNone, err
		}
		if step == 0 {
			return sigNone, fmt.Errorf("exec: line %d: zero DO step", l.Pos.Line)
		}
	}
	idx := in.refOf(f, l.Index)
	trips := tripCount(lo, hi, step)
	if h := in.Hooks.OnLoopEnter; h != nil {
		h(f.proc.Name, l)
	}
	if lp := in.planFor(l); lp != nil {
		sig, err := in.execParallelLoop(f, l, lp, lo, hi, step, trips)
		in.arena[idx.Base] = lo + float64(trips)*step
		if h := in.Hooks.OnLoopExit; h != nil {
			h(f.proc.Name, l)
		}
		return sig, err
	}
	v := lo
	for it := int64(0); it < trips; it++ {
		in.arena[idx.Base] = v
		if h := in.Hooks.OnLoopIter; h != nil {
			h(f.proc.Name, l, it)
		}
		sig, err := in.execStmts(f, l.Body)
		if err != nil || sig != sigNone {
			if h := in.Hooks.OnLoopExit; h != nil {
				h(f.proc.Name, l)
			}
			return sig, err
		}
		v += step
	}
	in.arena[idx.Base] = v // Fortran leaves the index past the bound
	if h := in.Hooks.OnLoopExit; h != nil {
		h(f.proc.Name, l)
	}
	return sigNone, nil
}

// tripCount computes a DO loop's trip count: floor((hi-lo+step)/step) with
// a tolerance that is relative to the trip count and symmetric in the sign
// of step, so fractional steps whose accumulated representation error
// approaches the bound from either side (positive or negative stride) are
// not truncated one iteration short. Both engines share this one formula.
func tripCount(lo, hi, step float64) int64 {
	r := (hi - lo + step) / step
	t := int64(math.Floor(r + 1e-9*math.Max(1, math.Abs(r))))
	if t < 0 {
		return 0
	}
	return t
}

func (in *Interp) execCall(f *frame, c *ir.Call) error {
	callee := in.Prog.ByName[c.Name]
	if callee == nil {
		return fmt.Errorf("exec: line %d: unknown subroutine %s", c.Pos.Line, c.Name)
	}
	refs := map[*ir.Symbol]Ref{}
	savedTop := in.tempTop
	defer func() { in.tempTop = savedTop }()
	for i, formal := range callee.Params {
		arg := c.Args[i]
		switch x := arg.(type) {
		case *ir.VarRef:
			r := in.refOf(f, x.Sym)
			refs[formal] = Ref{Base: r.Base, Dims: formal.Dims}
		case *ir.ArrayRef:
			r := in.refOf(f, x.Sym)
			base := r.Base
			if len(x.Idx) > 0 {
				off, err := in.elemOffset(f, x, c)
				if err != nil {
					return err
				}
				base = r.Base + off
			}
			refs[formal] = Ref{Base: base, Dims: formal.Dims}
		default:
			// Value argument: evaluate into a scratch cell.
			v, err := in.eval(f, arg, c)
			if err != nil {
				return err
			}
			if in.tempTop >= in.tempLimit {
				return fmt.Errorf("exec: line %d: temporary stack overflow", c.Pos.Line)
			}
			in.arena[in.tempTop] = v
			refs[formal] = Ref{Base: in.tempTop}
			in.tempTop++
		}
	}
	nf := &frame{proc: callee, refs: refs}
	_, err := in.execStmts(nf, callee.Body)
	return err
}

func (in *Interp) execIO(f *frame, st *ir.IO) error {
	if st.Write {
		vals := make([]interface{}, 0, len(st.Args))
		for _, a := range st.Args {
			v, err := in.eval(f, a, st)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		fmt.Fprintln(in.Out, vals...)
		return nil
	}
	// READ: deterministic pseudo-input (zero); real inputs come from
	// workload initialization code instead.
	for _, a := range st.Args {
		if r, ok := a.(ir.Ref); ok {
			if err := in.store(f, r, 0, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// elemOffset computes the flat element offset of an array reference from
// the array's base (column-major, honoring declared lower bounds).
func (in *Interp) elemOffset(f *frame, ar *ir.ArrayRef, s ir.Stmt) (int64, error) {
	r := in.refOf(f, ar.Sym)
	dims := r.Dims
	if len(dims) == 0 {
		dims = ar.Sym.Dims
	}
	if len(ar.Idx) != len(dims) {
		return 0, fmt.Errorf("exec: line %d: %s subscripted with %d of %d dims",
			s.Position().Line, ar.Sym.Name, len(ar.Idx), len(dims))
	}
	off := int64(0)
	stride := int64(1)
	for d, ix := range ar.Idx {
		v, err := in.eval(f, ix, s)
		if err != nil {
			return 0, err
		}
		iv := int64(math.Round(v))
		if iv < dims[d].Lo || iv > dims[d].Hi {
			return 0, fmt.Errorf("exec: line %d: index %d out of bounds %d:%d for %s dim %d",
				s.Position().Line, iv, dims[d].Lo, dims[d].Hi, ar.Sym.Name, d+1)
		}
		off += (iv - dims[d].Lo) * stride
		stride *= dims[d].Size()
	}
	return off, nil
}

func (in *Interp) load(f *frame, e ir.Expr, s ir.Stmt) (float64, error) {
	switch x := e.(type) {
	case *ir.VarRef:
		r := in.refOf(f, x.Sym)
		if h := in.Hooks.OnRead; h != nil {
			h(r.Base, f.proc.Name, s)
		}
		return in.arena[r.Base], nil
	case *ir.ArrayRef:
		off, err := in.elemOffset(f, x, s)
		if err != nil {
			return 0, err
		}
		r := in.refOf(f, x.Sym)
		if h := in.Hooks.OnRead; h != nil {
			h(r.Base+off, f.proc.Name, s)
		}
		return in.arena[r.Base+off], nil
	}
	return 0, fmt.Errorf("exec: not a reference: %v", e)
}

func (in *Interp) store(f *frame, ref ir.Ref, v float64, s ir.Stmt) error {
	switch x := ref.(type) {
	case *ir.VarRef:
		r := in.refOf(f, x.Sym)
		if h := in.Hooks.OnWrite; h != nil {
			h(r.Base, f.proc.Name, s)
		}
		in.arena[r.Base] = v
		return nil
	case *ir.ArrayRef:
		off, err := in.elemOffset(f, x, s)
		if err != nil {
			return err
		}
		r := in.refOf(f, x.Sym)
		if h := in.Hooks.OnWrite; h != nil {
			h(r.Base+off, f.proc.Name, s)
		}
		in.arena[r.Base+off] = v
		return nil
	}
	return fmt.Errorf("exec: unassignable reference %v", ref)
}

func (in *Interp) eval(f *frame, e ir.Expr, s ir.Stmt) (float64, error) {
	if err := in.tick(1); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case *ir.Const:
		return x.Val, nil
	case *ir.VarRef, *ir.ArrayRef:
		return in.load(f, e, s)
	case *ir.Un:
		v, err := in.eval(f, x.X, s)
		if err != nil {
			return 0, err
		}
		if x.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *ir.Bin:
		l, err := in.eval(f, x.L, s)
		if err != nil {
			return 0, err
		}
		// Short-circuit logicals.
		switch x.Op {
		case ir.OpAnd:
			if l == 0 {
				return 0, nil
			}
		case ir.OpOr:
			if l != 0 {
				return 1, nil
			}
		}
		r, err := in.eval(f, x.R, s)
		if err != nil {
			return 0, err
		}
		return applyBin(x.Op, l, r, x.Pos.Line)
	case *ir.Intrinsic:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(f, a, s)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return applyIntrinsic(x.Name, args)
	}
	return 0, fmt.Errorf("exec: cannot evaluate %T", e)
}

func applyBin(op ir.BinOp, l, r float64, line int) (float64, error) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.OpAdd:
		return l + r, nil
	case ir.OpSub:
		return l - r, nil
	case ir.OpMul:
		return l * r, nil
	case ir.OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("exec: line %d: division by zero", line)
		}
		return l / r, nil
	case ir.OpEQ:
		return b2f(l == r), nil
	case ir.OpNE:
		return b2f(l != r), nil
	case ir.OpLT:
		return b2f(l < r), nil
	case ir.OpLE:
		return b2f(l <= r), nil
	case ir.OpGT:
		return b2f(l > r), nil
	case ir.OpGE:
		return b2f(l >= r), nil
	case ir.OpAnd:
		return b2f(l != 0 && r != 0), nil
	case ir.OpOr:
		return b2f(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("exec: bad operator %v", op)
}

func applyIntrinsic(name string, args []float64) (float64, error) {
	switch name {
	case "MIN":
		v := args[0]
		for _, a := range args[1:] {
			if a < v {
				v = a
			}
		}
		return v, nil
	case "MAX":
		v := args[0]
		for _, a := range args[1:] {
			if a > v {
				v = a
			}
		}
		return v, nil
	case "MOD":
		return math.Mod(args[0], args[1]), nil
	case "ABS":
		return math.Abs(args[0]), nil
	case "SQRT":
		if args[0] < 0 {
			return 0, fmt.Errorf("exec: SQRT of negative value")
		}
		return math.Sqrt(args[0]), nil
	case "EXP":
		return math.Exp(args[0]), nil
	case "SIN":
		return math.Sin(args[0]), nil
	case "COS":
		return math.Cos(args[0]), nil
	case "INT":
		return math.Trunc(args[0]), nil
	case "FLOAT", "DBLE":
		return args[0], nil
	}
	return 0, fmt.Errorf("exec: unknown intrinsic %s", name)
}

// SymRange returns the arena address range of a named variable in a
// procedure (commons resolve to their block storage). ok is false for
// parameters, whose storage depends on the caller.
func (in *Interp) SymRange(proc, name string) (lo, hi int64, ok bool) {
	p := in.Prog.ByName[proc]
	if p == nil {
		return 0, 0, false
	}
	sym := p.Lookup(name)
	if sym == nil || sym.IsParam {
		return 0, 0, false
	}
	var base int64
	if sym.Common != "" {
		base = in.blockOff[sym.Common] + sym.CommonOffset
	} else {
		base = in.base[sym]
	}
	return base, base + sym.NElems() - 1, true
}
