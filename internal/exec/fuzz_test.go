package exec_test

// FuzzTieredDifferential drives arbitrary (parser-accepted) programs
// through the tree-walker, the baseline bytecode VM, and the tiered VM, and
// requires every observable to agree — the fuzz-shaped version of the
// differential suite, seeded the same way as FuzzMiniFParser so CI mutates
// from real program shapes.

import (
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/workloads"
)

func FuzzTieredDifferential(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source)
	}
	for seed := int64(0); seed < 4; seed++ {
		f.Add(corpus.DiffProgram(seed))
	}
	f.Add("      PROGRAM T\n      REAL A(10)\n      INTEGER I\n      DO 10 I = 1, 10\n      A(I) = A(I) + 1.0\n   10 CONTINUE\n      END\n")
	f.Add("      PROGRAM T\n      REAL X\n      X = 1.0 / 0.0\n      END\n")

	f.Fuzz(func(t *testing.T, src string) {
		if _, err := minif.Parse("fuzz.f", src); err != nil {
			return
		}
		// Bound runtime: arbitrary accepted programs may loop for a long
		// time. Budget errors are part of the differential contract (error
		// text and output identical; arena relaxed — see compareRuns).
		cfg := runConfig{profile: true, instrument: true, maxOps: 200000}
		if len(src)%2 == 1 {
			cfg.sampleEvery = 3
			cfg.sampleWarm = 1
		}
		tree := runEngine(t, "fuzz.f", src, exec.ModeTree, cfg)
		bc := runEngine(t, "fuzz.f", src, exec.ModeBytecode, cfg)
		compareRuns(t, "fuzz/vm", tree, bc)
		td := runEngine(t, "fuzz.f", src, exec.ModeTiered, cfg)
		compareRuns(t, "fuzz/tiered", tree, td)
	})
}

// FuzzRegisterDifferential is the register-tier (tier 4) twin: arbitrary
// accepted programs must behave identically under register-form lowering —
// arming, lowering bails, peephole fusion and runner fallbacks included.
// Seeded like FuzzTieredDifferential, plus shapes that exercise the
// lowering's bail paths (IF arms inside hot loops, intrinsics, nested
// specializable loops).
func FuzzRegisterDifferential(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source)
	}
	for seed := int64(0); seed < 4; seed++ {
		f.Add(corpus.DiffProgram(seed))
	}
	f.Add("      PROGRAM T\n      REAL A(10)\n      INTEGER I\n      DO 10 I = 1, 10\n      A(I) = ABS(A(I) - 3.0) + 1.0\n   10 CONTINUE\n      END\n")
	f.Add("      PROGRAM T\n      REAL A(10), S\n      INTEGER I\n      DO 10 I = 1, 10\n      IF (A(I) .GT. 2.0) S = S + 1\n   10 CONTINUE\n      END\n")

	f.Fuzz(func(t *testing.T, src string) {
		if _, err := minif.Parse("fuzz.f", src); err != nil {
			return
		}
		cfg := runConfig{profile: true, instrument: true, maxOps: 200000}
		if len(src)%2 == 1 {
			cfg.sampleEvery = 3
			cfg.sampleWarm = 1
		}
		tree := runEngine(t, "fuzz.f", src, exec.ModeTree, cfg)
		rg := runEngine(t, "fuzz.f", src, exec.ModeRegister, cfg)
		compareRuns(t, "fuzz/register", tree, rg)
	})
}
