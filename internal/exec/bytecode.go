package exec

import (
	"sort"
	"sync"
	"sync/atomic"

	"suifx/internal/ir"
)

// This file defines the compiled ("lowered") form of a program: a flat
// arena layout shared by both engines, a closure-free bytecode instruction
// stream, and the per-program cache that holds them. Lowering happens once
// per ir.Program; the bytecode VM (vm.go) then executes it with no
// interface dispatch or per-node type switches on the hot path.

// layout is the deterministic arena layout of a program: commons first (in
// name order), then per-procedure static locals (in Procs order, symbols in
// name order), then a fixed scratch region for value arguments. Both the
// tree-walker and the bytecode engine use the same layout, so addresses —
// and therefore DDA results and SymRange answers — are identical.
type layout struct {
	base     map[*ir.Symbol]int64
	blockOff map[string]int64
	tempBase int64
	size     int64
}

func newLayout(prog *ir.Program) *layout {
	lay := &layout{base: map[*ir.Symbol]int64{}, blockOff: map[string]int64{}}
	names := make([]string, 0, len(prog.Commons))
	for n := range prog.Commons {
		names = append(names, n)
	}
	sort.Strings(names)
	var size int64
	for _, n := range names {
		lay.blockOff[n] = size
		size += prog.Commons[n].Size
	}
	for _, p := range prog.Procs {
		for _, s := range p.SortedSyms() {
			if s.Common != "" || s.IsParam {
				continue
			}
			lay.base[s] = size
			size += s.NElems()
		}
	}
	lay.tempBase = size
	lay.size = size + tempCells
	return lay
}

// tempCells is the size of the scratch region for value arguments (fixed so
// the arena never reallocates during execution).
const tempCells = 1024

// opcode is one VM instruction kind. Operand addressing is resolved at
// compile time: *G opcodes carry absolute arena addresses, *P opcodes carry
// a parameter slot whose binding (an arena address) lives in the current
// frame. *E variants take a precomputed element offset from the eval stack.
// *I variants are the DDA-instrumented twins used only in the instrumented
// stream, so uninstrumented runs pay zero per-access overhead.
type opcode uint8

const (
	opNop opcode = iota

	// Pushes.
	opConst // push f
	opLoadG // push mem[a]
	opLoadP // push mem[param[a]]

	// Array addressing. opIdx pops an index value, bounds-checks it against
	// idx[a], and pushes (iv-lo)*stride. opIdxAdd does the same but adds
	// into the offset accumulated below it on the stack.
	opIdx
	opIdxAdd
	opLoadGE // pop off; push mem[a+off]
	opLoadPE // pop off; push mem[param[a]+off]

	// Stores.
	opStoreG  // pop v; mem[a] = v
	opStoreP  // pop v; mem[param[a]] = v
	opStoreGE // pop off, v; mem[a+off] = v
	opStorePE // pop off, v; mem[param[a]+off] = v

	// Instrumented twins (DDA stream only).
	opLoadGI
	opLoadPI
	opLoadGEI
	opLoadPEI
	opStoreGI
	opStorePI
	opStoreGEI
	opStorePEI

	// Arithmetic and logic (operate on the top of the eval stack).
	opNeg
	opNot
	opBool // normalize to 0/1 (logical result of .AND./.OR. right side)
	opAdd
	opSub
	opMul
	opDiv // a = source line for the divide-by-zero error
	opEQ
	opNE
	opLT
	opLE
	opGT
	opGE
	opAndJmp // if top == 0 jump a (keep 0), else pop
	opOrJmp  // if top != 0 replace with 1 and jump a, else pop
	opIntrin // a = intrinsic id, b = argc

	// Control flow.
	opJmp // pc = a
	opJZ  // pop c; if c == 0 pc = a

	// Loops. opLoopInit pops step, hi, lo, computes the trip count, pushes a
	// loop activation (loops[a]) and fires the enter event. opLoopHead
	// writes the index variable, then either starts an iteration (fires the
	// iter event) or pops the activation, fires exit, and jumps to b.
	// opLoopNext advances the induction state and jumps back to a (the head).
	opLoopInit
	opLoopHead
	opLoopNext

	// Calls. Argument slots are computed on the eval stack in order:
	// opArgAddrG/P push a binding address (base + optional offset popped
	// from the stack when b == 1); plain value expressions leave their value
	// (flagged by kind in callInfo). opCall binds them to callee params.
	opArgAddrG // push float64(a) + (b==1 ? pop off : 0)
	opArgAddrP // push float64(param[a]) + (b==1 ? pop off : 0)
	opCall     // a = callInfo index
	opReturn   // return from frame; from the outermost frame, halt

	opWrite // a = argc; pop argc values, Fprintln
	opErr   // fail with errs[a]

	// ------------------------------------------------------------------
	// Tiered execution (fuse.go, DESIGN.md "Tiered execution"). Everything
	// below is only ever emitted into the tiered instruction streams; the
	// baseline bytecode variants never contain these opcodes.

	// Fused superinstructions: semantics-preserving peephole combinations
	// of the pairs/triples that dominate dynamic traces (FusionCensus).
	// Ticks of the fused window are summed onto the fused instruction, so
	// virtual-time totals at loop events are unchanged, and bounds/divide
	// checks keep their source-line attribution through the idx table.
	opLGIdx    // opLoadG+opIdx: a=var addr, b=idx id; push offset
	opLPIdx    // opLoadP+opIdx: a=param slot, b=idx id
	opLGIdxAdd // opLoadG+opIdxAdd
	opLPIdxAdd // opLoadP+opIdxAdd
	// Full 1-D element access in one dispatch: a=index var addr, b=idx id;
	// idx[b].base holds the array base folded with -lo*stride (global) or
	// the -lo*stride fold alone with idx[b].pslot = array param slot.
	opLGIdxLoadGE
	opLGIdxLoadPE
	opLGIdxStoreGE
	opLGIdxStorePE
	// Final-dimension access: a=array base (or param slot), b=idx id; the
	// accumulated offset stays on the stack (multi-dim arrays).
	opIdxAddLoadGE
	opIdxAddLoadPE
	opIdxAddStoreGE
	opIdxAddStorePE
	opConstAddStoreG // opConst+opAdd+opStoreG: mem[a] = pop + f
	// Compare-and-branch: pops two operands, jumps to a when the
	// comparison is FALSE (the opJZ half of the fused pair).
	opJEQ
	opJNE
	opJLT
	opJLE
	opJGT
	opJGE
	opLLAdd // opLoadG+opLoadG+arith: push mem[a] OP mem[b]
	opLLSub
	opLLMul
	opLCAdd // opLoadG+opConst+arith: push mem[a] OP f
	opLCSub
	opLCMul

	// Instrumented twins of the fused forms (DDA streams). The window is
	// only fused when every instruction maps to the same source statement,
	// so the per-pc Skip decision applies to the whole fused access.
	opLGIdxI
	opLPIdxI
	opLGIdxAddI
	opLPIdxAddI
	opLGIdxLoadGEI
	opLGIdxLoadPEI
	opLGIdxStoreGEI
	opLGIdxStorePEI
	opIdxAddLoadGEI
	opIdxAddLoadPEI
	opIdxAddStoreGEI
	opIdxAddStorePEI
	opConstAddStoreGI
	opLLAddI
	opLLSubI
	opLLMulI
	opLCAddI
	opLCSubI
	opLCMulI

	// Specialized (checkless) 1-D accesses, emitted only into a loop's
	// alternate body: the preflight range check at arm time (vm.go
	// specPreflight) proves every index in bounds, so the per-access check
	// is dropped and the loop-invariant part of the address computation
	// (base - lo*stride) is folded into idx[b].base. a=index var addr,
	// b=idx id.
	opSpecLoadG
	opSpecStoreG
	opSpecLoadP // array bound to a param slot: idx[b].pslot
	opSpecStoreP

	// Second-order fusions: the fusion pass runs to fixpoint, so pairs
	// whose head is itself a round-one fused op collapse further. These are
	// the chains the census shows dominating real traces once the
	// first-round set is applied (param-indexed element accesses, element
	// load feeding arithmetic, load-scale-accumulate).
	opLPIdxLoadGE  // opLPIdx+opLoadGE: a=index param slot, b=idx id (base folded)
	opLPIdxLoadPE  // element via idx[b].pslot
	opLPIdxStoreGE // opLPIdx+opStoreGE
	opLPIdxStorePE
	opLoadGEAdd // opLoadGE+arith: ..., x, off -> ..., x OP mem[a+off]
	opLoadGESub
	opLoadGEMul
	opLCMulAdd    // opLCMul+opAdd: stack top += mem[a]*f
	opLPJGT       // opLoadP+opJGT: pop x, fall through iff x > mem[params[b]]
	opLPJLE       // opLoadP+opJLE: pop x, fall through iff x <= mem[params[b]]
	opLCIdx       // opLCAdd+opIdx: push checked offset of index mem[a]+f in idx[b]
	opLCAddStoreG // opLCAdd+opStoreG: mem[b] = mem[a] + f, no stack traffic

	// Instrumented twins of the second-order fusions (contiguous block —
	// isAccessOp depends on the range).
	opLPIdxLoadGEI
	opLPIdxLoadPEI
	opLPIdxStoreGEI
	opLPIdxStorePEI
	opLoadGEAddI
	opLoadGESubI
	opLoadGEMulI
	opLCMulAddI
	opLPJGTI
	opLPJLEI
	opLCIdxI
	opLCAddStoreGI

	// Fused loop back-edge: opLoopNext whose target is an opLoopHead. One
	// dispatch advances the induction state and replays the head (index
	// write-back, trip test, iteration event, alt-body dispatch). a=head pc
	// (body entry is a+1), b=the head's exit target.
	opLoopNextHead

	opcodeCount // sentinel: number of opcodes (name table, census)
)

// instr is one 24-byte instruction. tick is the amount of virtual time
// charged when the instruction executes (statement + expression-node ticks
// are folded onto instructions during lowering, preserving per-statement
// totals exactly).
type instr struct {
	op   opcode
	tick uint8
	a    int32
	b    int32
	f    float64
}

// idxData is the per-dimension metadata for opIdx/opIdxAdd. The fused
// full-access and specialized opcodes extend it with a precomputed base
// (the array base folded with -lo*stride) and, for param-bound arrays, the
// parameter slot the base resolves through.
type idxData struct {
	lo, hi, stride int64
	line           int32
	dim            int32
	name           string // array name, for the bounds error message
	base           int64  // fused/spec: array base - lo*stride (or just -lo*stride with pslot)
	pslot          int32  // fused/spec: array param slot (with base = -lo*stride)
}

// loopMeta is the static description of one lowered DO loop.
type loopMeta struct {
	loop     *ir.DoLoop
	proc     string
	line     int32
	idxParam bool  // index variable storage: parameter slot vs absolute
	idxOp    int32 // param slot or absolute address
	// Tiered streams only: altEntry is the pc of the loop's specialized
	// alternate body (-1 = none), guards the idx-table entries whose ranges
	// the arm-time preflight must prove in bounds before the checkless body
	// may run.
	altEntry int32
	guards   []int32
}

// argKind distinguishes how a call argument slot binds.
const (
	argBind  = 0 // stack value is an arena address (by-reference binding)
	argValue = 1 // stack value is a value to spill into a scratch cell
)

type callInfo struct {
	name  string
	entry int32 // patched after all procs are lowered
	kinds []uint8
	line  int32
}

// code is a whole lowered program: one instruction stream covering every
// procedure, with side tables for array metadata, loops, and calls.
type code struct {
	lay          *layout
	ins          []instr
	stmtOf       []ir.Stmt // statement that produced each instruction (for Skip)
	idx          []idxData
	loops        []loopMeta
	calls        []callInfo
	errs         []string
	entry        int32 // pc of the main program
	maxStack     int   // eval-stack high-water mark (statically known)
	instrumented bool
	tiered       bool // superinstruction-fused stream with alt loop bodies
}

// lowered is the per-program compilation cache plus pooled run state. It is
// stored in ir.Program.ExecCache so it is shared by every Interp over the
// same parse and garbage-collected with it.
type lowered struct {
	lay *layout

	mu sync.Mutex
	// variants[instrumented + 2*tiered]: plain, DDA-instrumented, and the
	// two tiered (fused + specializable) twins of each.
	variants [4]*code

	vmPool     sync.Pool // *vmScratch
	shadowPool sync.Pool // *ddaShadow
}

// loweredOf returns (building if needed) the lowered form of prog. A racy
// double-build is benign: both values are equivalent and one wins the
// Store.
func loweredOf(prog *ir.Program) *lowered {
	if v := prog.ExecCache.Load(); v != nil {
		return v.(*lowered)
	}
	low := &lowered{lay: newLayout(prog)}
	prog.ExecCache.Store(low)
	return prog.ExecCache.Load().(*lowered)
}

// InvalidateProgram drops prog's compiled-code cache so the next run
// recompiles every variant from the current IR. driver.Incremental calls
// this when an invalidation dirties the program: specialized and fused
// tiered code must not be served stale across analysis runs. In-flight
// interpreters keep executing the code they already resolved; only new
// runs see the fresh cache.
func InvalidateProgram(prog *ir.Program) {
	prog.ExecCache.Store(&lowered{lay: newLayout(prog)})
}

// codeFor returns the plain or instrumented instruction stream, compiling
// it on first use. Tiered variants additionally lower specializable loop
// bodies twice (generic + alt) and run the superinstruction fusion pass.
func (low *lowered) codeFor(prog *ir.Program, instrumented, tiered bool) *code {
	i := 0
	if instrumented {
		i = 1
	}
	if tiered {
		i += 2
	}
	low.mu.Lock()
	defer low.mu.Unlock()
	if low.variants[i] == nil {
		cd := compileProgram(prog, low.lay, instrumented, tiered)
		if tiered {
			cd = fuseCode(cd)
		}
		low.variants[i] = cd
		counters.compiledProcs.Add(int64(len(prog.Procs)))
		counters.compiledPrograms.Add(1)
	}
	return low.variants[i]
}

// Engine counters exported through suifxd's /v1/stats. The fallback*
// counters attribute every tree-walker run to its cause, so a plan that
// unexpectedly runs off the fast engine is visible instead of silent.
var counters struct {
	compiledPrograms atomic.Int64
	compiledProcs    atomic.Int64
	compiledViews    atomic.Int64
	instructions     atomic.Int64
	bytecodeRuns     atomic.Int64
	treeRuns         atomic.Int64

	parallelLoopRuns atomic.Int64
	parallelWorkers  atomic.Int64

	fallbackMode      atomic.Int64
	fallbackHooks     atomic.Int64
	fallbackAnalyzers atomic.Int64

	// Tiered engine: runs dispatched to the fused variant, instructions
	// eliminated by fusion at compile time, loop activations that armed a
	// specialized alt body, and loop iterations executed on a stripped
	// (uninstrumented) alt body while DDA sampling was off.
	tieredRuns        atomic.Int64
	fusedInstructions atomic.Int64
	specInvocations   atomic.Int64
	stripIterations   atomic.Int64
}

// Counters is a snapshot of the execution engine's global counters.
type Counters struct {
	CompiledPrograms int64 `json:"compiled_programs"`
	CompiledProcs    int64 `json:"compiled_procs"`
	CompiledViews    int64 `json:"compiled_worker_views"`
	Instructions     int64 `json:"instructions_executed"`
	BytecodeRuns     int64 `json:"bytecode_runs"`
	TreeRuns         int64 `json:"tree_runs"`

	// Parallel engine: planned-loop invocations executed (either engine)
	// and worker goroutines spawned for them.
	ParallelLoopRuns int64 `json:"parallel_loop_runs"`
	ParallelWorkers  int64 `json:"parallel_workers"`

	// Tree-walker fallbacks by cause: explicit tree mode, user-installed
	// hooks, unsupported analyzer attachments.
	FallbackMode      int64 `json:"fallbacks_mode"`
	FallbackHooks     int64 `json:"fallbacks_hooks"`
	FallbackAnalyzers int64 `json:"fallbacks_analyzers"`

	// Tiered engine: fused-variant runs, instructions removed by the
	// superinstruction pass, specialized-loop activations, and iterations
	// executed on a stripped alt body.
	TieredRuns        int64 `json:"tiered_runs"`
	FusedInstructions int64 `json:"fused_instructions"`
	SpecInvocations   int64 `json:"spec_invocations"`
	StripIterations   int64 `json:"strip_iterations"`
}

// ReadCounters returns the current engine counters.
func ReadCounters() Counters {
	return Counters{
		CompiledPrograms:  counters.compiledPrograms.Load(),
		CompiledProcs:     counters.compiledProcs.Load(),
		CompiledViews:     counters.compiledViews.Load(),
		Instructions:      counters.instructions.Load(),
		BytecodeRuns:      counters.bytecodeRuns.Load(),
		TreeRuns:          counters.treeRuns.Load(),
		ParallelLoopRuns:  counters.parallelLoopRuns.Load(),
		ParallelWorkers:   counters.parallelWorkers.Load(),
		FallbackMode:      counters.fallbackMode.Load(),
		FallbackHooks:     counters.fallbackHooks.Load(),
		FallbackAnalyzers: counters.fallbackAnalyzers.Load(),
		TieredRuns:        counters.tieredRuns.Load(),
		FusedInstructions: counters.fusedInstructions.Load(),
		SpecInvocations:   counters.specInvocations.Load(),
		StripIterations:   counters.stripIterations.Load(),
	}
}
