package exec

import (
	"sort"
	"sync"
	"sync/atomic"

	"suifx/internal/ir"
)

// This file defines the compiled ("lowered") form of a program: a flat
// arena layout shared by both engines, a closure-free bytecode instruction
// stream, and the per-program cache that holds them. Lowering happens once
// per ir.Program; the bytecode VM (vm.go) then executes it with no
// interface dispatch or per-node type switches on the hot path.

// layout is the deterministic arena layout of a program: commons first (in
// name order), then per-procedure static locals (in Procs order, symbols in
// name order), then a fixed scratch region for value arguments. Both the
// tree-walker and the bytecode engine use the same layout, so addresses —
// and therefore DDA results and SymRange answers — are identical.
type layout struct {
	base     map[*ir.Symbol]int64
	blockOff map[string]int64
	tempBase int64
	size     int64
}

func newLayout(prog *ir.Program) *layout {
	lay := &layout{base: map[*ir.Symbol]int64{}, blockOff: map[string]int64{}}
	names := make([]string, 0, len(prog.Commons))
	for n := range prog.Commons {
		names = append(names, n)
	}
	sort.Strings(names)
	var size int64
	for _, n := range names {
		lay.blockOff[n] = size
		size += prog.Commons[n].Size
	}
	for _, p := range prog.Procs {
		for _, s := range p.SortedSyms() {
			if s.Common != "" || s.IsParam {
				continue
			}
			lay.base[s] = size
			size += s.NElems()
		}
	}
	lay.tempBase = size
	lay.size = size + tempCells
	return lay
}

// tempCells is the size of the scratch region for value arguments (fixed so
// the arena never reallocates during execution).
const tempCells = 1024

// opcode is one VM instruction kind. Operand addressing is resolved at
// compile time: *G opcodes carry absolute arena addresses, *P opcodes carry
// a parameter slot whose binding (an arena address) lives in the current
// frame. *E variants take a precomputed element offset from the eval stack.
// *I variants are the DDA-instrumented twins used only in the instrumented
// stream, so uninstrumented runs pay zero per-access overhead.
type opcode uint8

const (
	opNop opcode = iota

	// Pushes.
	opConst // push f
	opLoadG // push mem[a]
	opLoadP // push mem[param[a]]

	// Array addressing. opIdx pops an index value, bounds-checks it against
	// idx[a], and pushes (iv-lo)*stride. opIdxAdd does the same but adds
	// into the offset accumulated below it on the stack.
	opIdx
	opIdxAdd
	opLoadGE // pop off; push mem[a+off]
	opLoadPE // pop off; push mem[param[a]+off]

	// Stores.
	opStoreG  // pop v; mem[a] = v
	opStoreP  // pop v; mem[param[a]] = v
	opStoreGE // pop off, v; mem[a+off] = v
	opStorePE // pop off, v; mem[param[a]+off] = v

	// Instrumented twins (DDA stream only).
	opLoadGI
	opLoadPI
	opLoadGEI
	opLoadPEI
	opStoreGI
	opStorePI
	opStoreGEI
	opStorePEI

	// Arithmetic and logic (operate on the top of the eval stack).
	opNeg
	opNot
	opBool // normalize to 0/1 (logical result of .AND./.OR. right side)
	opAdd
	opSub
	opMul
	opDiv // a = source line for the divide-by-zero error
	opEQ
	opNE
	opLT
	opLE
	opGT
	opGE
	opAndJmp // if top == 0 jump a (keep 0), else pop
	opOrJmp  // if top != 0 replace with 1 and jump a, else pop
	opIntrin // a = intrinsic id, b = argc

	// Control flow.
	opJmp // pc = a
	opJZ  // pop c; if c == 0 pc = a

	// Loops. opLoopInit pops step, hi, lo, computes the trip count, pushes a
	// loop activation (loops[a]) and fires the enter event. opLoopHead
	// writes the index variable, then either starts an iteration (fires the
	// iter event) or pops the activation, fires exit, and jumps to b.
	// opLoopNext advances the induction state and jumps back to a (the head).
	opLoopInit
	opLoopHead
	opLoopNext

	// Calls. Argument slots are computed on the eval stack in order:
	// opArgAddrG/P push a binding address (base + optional offset popped
	// from the stack when b == 1); plain value expressions leave their value
	// (flagged by kind in callInfo). opCall binds them to callee params.
	opArgAddrG // push float64(a) + (b==1 ? pop off : 0)
	opArgAddrP // push float64(param[a]) + (b==1 ? pop off : 0)
	opCall     // a = callInfo index
	opReturn   // return from frame; from the outermost frame, halt

	opWrite // a = argc; pop argc values, Fprintln
	opErr   // fail with errs[a]

	// ------------------------------------------------------------------
	// Tiered execution (fuse.go, DESIGN.md "Tiered execution"). Everything
	// below is only ever emitted into the tiered instruction streams; the
	// baseline bytecode variants never contain these opcodes.

	// Fused superinstructions: semantics-preserving peephole combinations
	// of the pairs/triples that dominate dynamic traces (FusionCensus).
	// Ticks of the fused window are summed onto the fused instruction, so
	// virtual-time totals at loop events are unchanged, and bounds/divide
	// checks keep their source-line attribution through the idx table.
	opLGIdx    // opLoadG+opIdx: a=var addr, b=idx id; push offset
	opLPIdx    // opLoadP+opIdx: a=param slot, b=idx id
	opLGIdxAdd // opLoadG+opIdxAdd
	opLPIdxAdd // opLoadP+opIdxAdd
	// Full 1-D element access in one dispatch: a=index var addr, b=idx id;
	// idx[b].base holds the array base folded with -lo*stride (global) or
	// the -lo*stride fold alone with idx[b].pslot = array param slot.
	opLGIdxLoadGE
	opLGIdxLoadPE
	opLGIdxStoreGE
	opLGIdxStorePE
	// Final-dimension access: a=array base (or param slot), b=idx id; the
	// accumulated offset stays on the stack (multi-dim arrays).
	opIdxAddLoadGE
	opIdxAddLoadPE
	opIdxAddStoreGE
	opIdxAddStorePE
	opConstAddStoreG // opConst+opAdd+opStoreG: mem[a] = pop + f
	// Compare-and-branch: pops two operands, jumps to a when the
	// comparison is FALSE (the opJZ half of the fused pair).
	opJEQ
	opJNE
	opJLT
	opJLE
	opJGT
	opJGE
	opLLAdd // opLoadG+opLoadG+arith: push mem[a] OP mem[b]
	opLLSub
	opLLMul
	opLCAdd // opLoadG+opConst+arith: push mem[a] OP f
	opLCSub
	opLCMul

	// Instrumented twins of the fused forms (DDA streams). The window is
	// only fused when every instruction maps to the same source statement,
	// so the per-pc Skip decision applies to the whole fused access.
	opLGIdxI
	opLPIdxI
	opLGIdxAddI
	opLPIdxAddI
	opLGIdxLoadGEI
	opLGIdxLoadPEI
	opLGIdxStoreGEI
	opLGIdxStorePEI
	opIdxAddLoadGEI
	opIdxAddLoadPEI
	opIdxAddStoreGEI
	opIdxAddStorePEI
	opConstAddStoreGI
	opLLAddI
	opLLSubI
	opLLMulI
	opLCAddI
	opLCSubI
	opLCMulI

	// Specialized (checkless) 1-D accesses, emitted only into a loop's
	// alternate body: the preflight range check at arm time (vm.go
	// specPreflight) proves every index in bounds, so the per-access check
	// is dropped and the loop-invariant part of the address computation
	// (base - lo*stride) is folded into idx[b].base. a=index var addr,
	// b=idx id.
	opSpecLoadG
	opSpecStoreG
	opSpecLoadP // array bound to a param slot: idx[b].pslot
	opSpecStoreP

	// Second-order fusions: the fusion pass runs to fixpoint, so pairs
	// whose head is itself a round-one fused op collapse further. These are
	// the chains the census shows dominating real traces once the
	// first-round set is applied (param-indexed element accesses, element
	// load feeding arithmetic, load-scale-accumulate).
	opLPIdxLoadGE  // opLPIdx+opLoadGE: a=index param slot, b=idx id (base folded)
	opLPIdxLoadPE  // element via idx[b].pslot
	opLPIdxStoreGE // opLPIdx+opStoreGE
	opLPIdxStorePE
	opLoadGEAdd // opLoadGE+arith: ..., x, off -> ..., x OP mem[a+off]
	opLoadGESub
	opLoadGEMul
	opLCMulAdd    // opLCMul+opAdd: stack top += mem[a]*f
	opLPJGT       // opLoadP+opJGT: pop x, fall through iff x > mem[params[b]]
	opLPJLE       // opLoadP+opJLE: pop x, fall through iff x <= mem[params[b]]
	opLCIdx       // opLCAdd+opIdx: push checked offset of index mem[a]+f in idx[b]
	opLCAddStoreG // opLCAdd+opStoreG: mem[b] = mem[a] + f, no stack traffic

	// Instrumented twins of the second-order fusions (contiguous block —
	// isAccessOp depends on the range).
	opLPIdxLoadGEI
	opLPIdxLoadPEI
	opLPIdxStoreGEI
	opLPIdxStorePEI
	opLoadGEAddI
	opLoadGESubI
	opLoadGEMulI
	opLCMulAddI
	opLPJGTI
	opLPJLEI
	opLCIdxI
	opLCAddStoreGI

	// Fused loop back-edge: opLoopNext whose target is an opLoopHead. One
	// dispatch advances the induction state and replays the head (index
	// write-back, trip test, iteration event, alt-body dispatch). a=head pc
	// (body entry is a+1), b=the head's exit target.
	opLoopNextHead

	// ------------------------------------------------------------------
	// Register-form opcodes (register.go, DESIGN.md "Register-form tier").
	// Emitted only into the register-lowered alt-body region appended at
	// code.regStart of register-tier streams, and executed only by the
	// vm's dedicated register runner (runRegBody). Operands name virtual
	// registers — eval-stack slots allocated at compile time, which is
	// possible because the stack depth at every point of a straight-line
	// alt body is statically known — instead of implicit stack positions.
	// Register operands are packed into one int32 field 10 bits each
	// (rPack/rsh below); the other fields keep the source instruction's
	// addresses, table ids, and immediates.

	opRConst // reg[b] = f
	opRLoadG // reg[b] = mem[a]
	opRLoadP // reg[b] = mem[params[a]]
	opRStoreG
	opRStoreP
	opRNeg  // reg[b] = -reg[b]
	opRNot  // reg[b] = !reg[b]
	opRBool // reg[b] = bool(reg[b])
	// Three-register arithmetic/compare: b = dst | s1<<10 | s2<<20.
	opRAdd
	opRSub
	opRMul
	opRDiv // a = source line
	opREQ
	opRNE
	opRLT
	opRLE
	opRGT
	opRGE
	opRIntrin // a = intrinsic id, b = argc | base<<10; result in reg[base]
	// Jumps: a = target pc; register operands in b.
	opRJmp
	opRJZ     // if reg[b] == 0 jump
	opRAndJmp // if reg[b] == 0 jump (keep 0)
	opROrJmp  // if reg[b] != 0 { reg[b] = 1; jump }
	opRJEQ    // b = s1 | s2<<10; jump when the comparison is FALSE
	opRJNE
	opRJLT
	opRJLE
	opRJGT
	opRJGE
	// Checked element addressing (non-specialized refs inside alt bodies).
	opRIdx    // a = idx id, b = slot (in place: index value -> offset)
	opRIdxAdd // a = idx id, b = acc | iv<<10
	opRLoadGE // a = array base, b = slot (in place: offset -> value)
	opRLoadPE
	opRStoreGE // a = base, b = val | off<<10
	opRStorePE
	// Specialized (checkless) accesses: b = idx id; the index value is the
	// runner's hoisted induction register, converted once per iteration.
	opRSpecLoadG // a = dst
	opRSpecStoreG
	opRSpecLoadP
	opRSpecStoreP
	// Register twins of the fused superinstructions that appear in alt
	// bodies. Field use mirrors the stack form; the extra register operand
	// rides in b (free in the stack form) or f (full-access forms).
	opRLGIdxLoadGE // a = index var addr, b = idx id, f = float64(dst)
	opRLGIdxLoadPE
	opRLGIdxStoreGE // f = float64(src)
	opRLGIdxStorePE
	opRIdxAddLoadGE  // a = base/pslot, b = idx id, f = float64(acc|iv<<10)
	opRIdxAddLoadPE  //
	opRIdxAddStoreGE // f = float64(val|acc<<10|iv<<20)
	opRIdxAddStorePE
	opRLGIdx    // a = var addr, b = idx id, f = float64(dst)
	opRLGIdxAdd // f = float64(acc)
	opRLLAdd    // a, b = addrs, f = float64(dst)
	opRLLSub
	opRLLMul
	opRLCAdd // a = addr, b = dst, f = const
	opRLCSub
	opRLCMul
	opRLCMulAdd // reg[b] += mem[a] * f
	opRLPJGT    // a = target, b = pslot | src<<10
	opRLPJLE
	opRLCIdx          // a = addr, b = idx id | dst<<20, f = const
	opRLoadGEAdd      // a = base, b = acc | off<<10
	opRLoadGESub      //
	opRLoadGEMul      //
	opRConstAddStoreG // mem[a] = reg[b] + f
	// Register peephole products: whole-pattern superinstructions the
	// explicit operands make legal (the consumed register is provably dead
	// because the stack depth dropped below it).
	opRSpecJGTP // spec load + opRLPJGT: a = target, b = pslot, f = float64(idx id)
	opRSpecJLEP
	opRMemAxpy // load/opRLCMulAdd/store, same cell: mem[a] += mem[b] * f

	// Param-held index forms (mirror opLPIdx*: index read via params[a]).
	opRLPIdx        // a = index pslot, b = idx id, f = float64(dst)
	opRLPIdxAdd     // a = index pslot, b = idx id, f = float64(acc)
	opRLPIdxLoadGE  // a = index pslot, b = idx id, f = float64(dst)
	opRLPIdxLoadPE  // like opRLPIdxLoadGE through the array's pslot base
	opRLPIdxStoreGE // a = index pslot, b = idx id, f = float64(src)
	opRLPIdxStorePE

	// Constant-folded register binops (opRConst + opRAdd/Sub/Mul where the
	// constant slot dies): b = dst | s1<<10, f = the constant.
	opRAddC
	opRSubC
	opRMulC
	opRSpecStoreC // opRConst + opRSpecStoreG: b = idx id, f = the constant

	opRAbs // single-arg ABS intrinsic, open-coded: b = slot (in place)

	// opRLPIdx + opRLoadGE{Add,Sub,Mul}: param-held-index element access
	// folded into the accumulating binop. a = element base,
	// b = idx id | index pslot<<20, f = float64(acc).
	opRLPIdxLoadGEAdd
	opRLPIdxLoadGESub
	opRLPIdxLoadGEMul

	// opRLCMulAdd + opRSpecStoreG over the same register:
	// a = scalar addr, b = reg | idx id<<10, f = the constant.
	opRLCMulAddSpecStore

	// opRSpecJGTP/JLEP whose taken edge skips exactly one mem[x] += 1
	// (opLCAddStoreG, a == b, f == 1): the compare executes the increment
	// itself instead of branching around it. The increment's tick is
	// charged only on the taken path, so virtual time stays path-exact.
	// a = increment addr, b = pslot, f = float64(idx id | incTick<<20).
	opRSpecJGTPInc
	opRSpecJLEPInc

	opcodeCount // sentinel: number of opcodes (name table, census)
)

// Register-operand packing: up to three virtual registers in one int32,
// 10 bits each. Register indices are eval-stack depths; the lowering pass
// refuses bodies that would need a register >= rLimit.
const (
	rBits  = 10
	rMask  = 1<<rBits - 1
	rLimit = 1 << rBits
)

func rPack(r1, r2, r3 int32) int32 { return r1 | r2<<rBits | r3<<(2*rBits) }

// instr is one 24-byte instruction. tick is the amount of virtual time
// charged when the instruction executes (statement + expression-node ticks
// are folded onto instructions during lowering, preserving per-statement
// totals exactly).
type instr struct {
	op   opcode
	tick uint8
	a    int32
	b    int32
	f    float64
}

// idxData is the per-dimension metadata for opIdx/opIdxAdd. The fused
// full-access and specialized opcodes extend it with a precomputed base
// (the array base folded with -lo*stride) and, for param-bound arrays, the
// parameter slot the base resolves through.
type idxData struct {
	lo, hi, stride int64
	line           int32
	dim            int32
	name           string // array name, for the bounds error message
	base           int64  // fused/spec: array base - lo*stride (or just -lo*stride with pslot)
	pslot          int32  // fused/spec: array param slot (with base = -lo*stride)
}

// loopMeta is the static description of one lowered DO loop.
type loopMeta struct {
	loop     *ir.DoLoop
	proc     string
	line     int32
	idxParam bool  // index variable storage: parameter slot vs absolute
	idxOp    int32 // param slot or absolute address
	// Tiered streams only: altEntry is the pc of the loop's specialized
	// alternate body (-1 = none), guards the idx-table entries whose ranges
	// the arm-time preflight must prove in bounds before the checkless body
	// may run.
	altEntry int32
	guards   []int32
	// Register streams only: regEntry is the pc of the register-form
	// lowering of the alt body in the appended region at code.regStart
	// (-1 = the body could not be register-lowered; arming falls back to
	// the stack-form alt body).
	regEntry int32
}

// argKind distinguishes how a call argument slot binds.
const (
	argBind  = 0 // stack value is an arena address (by-reference binding)
	argValue = 1 // stack value is a value to spill into a scratch cell
)

type callInfo struct {
	name  string
	entry int32 // patched after all procs are lowered
	kinds []uint8
	line  int32
}

// code is a whole lowered program: one instruction stream covering every
// procedure, with side tables for array metadata, loops, and calls.
type code struct {
	lay          *layout
	ins          []instr
	stmtOf       []ir.Stmt // statement that produced each instruction (for Skip)
	idx          []idxData
	loops        []loopMeta
	calls        []callInfo
	errs         []string
	entry        int32 // pc of the main program
	maxStack     int   // eval-stack high-water mark (statically known)
	instrumented bool
	tiered       bool // superinstruction-fused stream with alt loop bodies
	// Register tier: register-form alt bodies are appended at regStart, so
	// an armed activation whose alt pc is >= regStart dispatches to the
	// register runner instead of the stack-form alt body.
	register bool
	regStart int32
}

// lowered is the per-program compilation cache plus pooled run state. It is
// stored in ir.Program.ExecCache so it is shared by every Interp over the
// same parse and garbage-collected with it.
type lowered struct {
	lay *layout

	mu sync.Mutex
	// variants[instrumented + 2*tier]: plain, DDA-instrumented, and the
	// tiered (fused + specializable) and register-form twins of each.
	variants [6]*code

	vmPool     sync.Pool // *vmScratch
	shadowPool sync.Pool // *ddaShadow
}

// loweredOf returns (building if needed) the lowered form of prog. A racy
// double-build is benign: both values are equivalent and one wins the
// Store.
func loweredOf(prog *ir.Program) *lowered {
	if v := prog.ExecCache.Load(); v != nil {
		return v.(*lowered)
	}
	low := &lowered{lay: newLayout(prog)}
	prog.ExecCache.Store(low)
	return prog.ExecCache.Load().(*lowered)
}

// InvalidateProgram drops prog's compiled-code cache so the next run
// recompiles every variant from the current IR. driver.Incremental calls
// this when an invalidation dirties the program: specialized and fused
// tiered code must not be served stale across analysis runs. In-flight
// interpreters keep executing the code they already resolved; only new
// runs see the fresh cache.
func InvalidateProgram(prog *ir.Program) {
	prog.ExecCache.Store(&lowered{lay: newLayout(prog)})
}

// tierKind selects which compiled variant of a program codeFor returns.
type tierKind int

const (
	tierPlain    tierKind = iota // baseline bytecode
	tierFused                    // superinstruction fusion + specialization
	tierRegister                 // tierFused + register-form alt bodies
)

// codeFor returns the plain or instrumented instruction stream, compiling
// it on first use. Tiered variants additionally lower specializable loop
// bodies twice (generic + alt) and run the superinstruction fusion pass;
// the register tier then lowers each alt body to register form.
func (low *lowered) codeFor(prog *ir.Program, instrumented bool, tier tierKind) *code {
	i := int(tier)*2 + 0
	if instrumented {
		i++
	}
	low.mu.Lock()
	defer low.mu.Unlock()
	if low.variants[i] == nil {
		cd := compileProgram(prog, low.lay, instrumented, tier != tierPlain)
		if tier != tierPlain {
			cd = fuseCode(cd)
		}
		if tier == tierRegister {
			regLowerCode(cd)
		}
		low.variants[i] = cd
		counters.compiledProcs.Add(int64(len(prog.Procs)))
		counters.compiledPrograms.Add(1)
	}
	return low.variants[i]
}

// Engine counters exported through suifxd's /v1/stats. The fallback*
// counters attribute every tree-walker run to its cause, so a plan that
// unexpectedly runs off the fast engine is visible instead of silent.
var counters struct {
	compiledPrograms atomic.Int64
	compiledProcs    atomic.Int64
	compiledViews    atomic.Int64
	instructions     atomic.Int64
	bytecodeRuns     atomic.Int64
	treeRuns         atomic.Int64

	parallelLoopRuns atomic.Int64
	parallelWorkers  atomic.Int64

	fallbackMode      atomic.Int64
	fallbackHooks     atomic.Int64
	fallbackAnalyzers atomic.Int64

	// Tiered engine: runs dispatched to the fused variant, instructions
	// eliminated by fusion at compile time, loop activations that armed a
	// specialized alt body, and loop iterations executed on a stripped
	// (uninstrumented) alt body while DDA sampling was off.
	tieredRuns        atomic.Int64
	fusedInstructions atomic.Int64
	specInvocations   atomic.Int64
	stripIterations   atomic.Int64

	// Register tier: runs dispatched to the register variant, alt bodies
	// successfully lowered to register form at compile time, and loop
	// iterations executed by the register runner.
	registerRuns  atomic.Int64
	regBodies     atomic.Int64
	regIterations atomic.Int64
}

// Counters is a snapshot of the execution engine's global counters.
type Counters struct {
	CompiledPrograms int64 `json:"compiled_programs"`
	CompiledProcs    int64 `json:"compiled_procs"`
	CompiledViews    int64 `json:"compiled_worker_views"`
	Instructions     int64 `json:"instructions_executed"`
	BytecodeRuns     int64 `json:"bytecode_runs"`
	TreeRuns         int64 `json:"tree_runs"`

	// Parallel engine: planned-loop invocations executed (either engine)
	// and worker goroutines spawned for them.
	ParallelLoopRuns int64 `json:"parallel_loop_runs"`
	ParallelWorkers  int64 `json:"parallel_workers"`

	// Tree-walker fallbacks by cause: explicit tree mode, user-installed
	// hooks, unsupported analyzer attachments.
	FallbackMode      int64 `json:"fallbacks_mode"`
	FallbackHooks     int64 `json:"fallbacks_hooks"`
	FallbackAnalyzers int64 `json:"fallbacks_analyzers"`

	// Tiered engine: fused-variant runs, instructions removed by the
	// superinstruction pass, specialized-loop activations, and iterations
	// executed on a stripped alt body.
	TieredRuns        int64 `json:"tiered_runs"`
	FusedInstructions int64 `json:"fused_instructions"`
	SpecInvocations   int64 `json:"spec_invocations"`
	StripIterations   int64 `json:"strip_iterations"`

	// Register tier: register-variant runs, alt bodies lowered to register
	// form at compile time, and iterations executed by the register runner.
	RegisterRuns  int64 `json:"register_runs"`
	RegBodies     int64 `json:"register_bodies"`
	RegIterations int64 `json:"register_iterations"`
}

// ReadCounters returns the current engine counters.
func ReadCounters() Counters {
	return Counters{
		CompiledPrograms:  counters.compiledPrograms.Load(),
		CompiledProcs:     counters.compiledProcs.Load(),
		CompiledViews:     counters.compiledViews.Load(),
		Instructions:      counters.instructions.Load(),
		BytecodeRuns:      counters.bytecodeRuns.Load(),
		TreeRuns:          counters.treeRuns.Load(),
		ParallelLoopRuns:  counters.parallelLoopRuns.Load(),
		ParallelWorkers:   counters.parallelWorkers.Load(),
		FallbackMode:      counters.fallbackMode.Load(),
		FallbackHooks:     counters.fallbackHooks.Load(),
		FallbackAnalyzers: counters.fallbackAnalyzers.Load(),
		TieredRuns:        counters.tieredRuns.Load(),
		FusedInstructions: counters.fusedInstructions.Load(),
		SpecInvocations:   counters.specInvocations.Load(),
		StripIterations:   counters.stripIterations.Load(),
		RegisterRuns:      counters.registerRuns.Load(),
		RegBodies:         counters.regBodies.Load(),
		RegIterations:     counters.regIterations.Load(),
	}
}
