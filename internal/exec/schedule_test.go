package exec

import (
	"math"
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

// TestSchedulePartition proves every dispatcher policy is a partition: over
// all positions, each iteration of [0, trips) is executed exactly once, in
// increasing order per position, and lastPosition names the position that
// actually receives the globally last iteration — the §5.4 storage-binding
// contract every schedule must honor.
func TestSchedulePartition(t *testing.T) {
	cases := []struct {
		trips   int64
		workers int
	}{
		{0, 4}, {1, 1}, {1, 4}, {2, 4}, {3, 2}, {7, 3}, {8, 8}, {10, 4},
		{100, 7}, {1000, 8}, {37, 5}, {64, 8},
	}
	for _, sched := range Schedules() {
		for _, c := range cases {
			seen := make([]int, c.trips)
			lastSeenPos := -1
			for pos := 0; pos < c.workers; pos++ {
				prev := int64(-1)
				err := forEachAssigned(sched, c.trips, c.workers, pos, func(it int64) error {
					if it < 0 || it >= c.trips {
						t.Fatalf("%v trips=%d W=%d pos=%d: iteration %d out of range",
							sched, c.trips, c.workers, pos, it)
					}
					if it <= prev {
						t.Fatalf("%v trips=%d W=%d pos=%d: iteration %d after %d (not increasing)",
							sched, c.trips, c.workers, pos, it, prev)
					}
					prev = it
					seen[it]++
					if it == c.trips-1 {
						lastSeenPos = pos
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for it, n := range seen {
				if n != 1 {
					t.Fatalf("%v trips=%d W=%d: iteration %d executed %d times",
						sched, c.trips, c.workers, it, n)
				}
			}
			if c.trips > 0 {
				if got := lastPosition(sched, c.trips, c.workers); got != lastSeenPos {
					t.Fatalf("%v trips=%d W=%d: lastPosition = %d but position %d ran the last iteration",
						sched, c.trips, c.workers, got, lastSeenPos)
				}
			}
		}
	}
}

// TestParseScheduleRoundTrip pins name parsing and String round-trips.
func TestParseScheduleRoundTrip(t *testing.T) {
	for _, s := range Schedules() {
		got, err := ParseSchedule(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSchedule(%q) = %v, %v", s.String(), got, err)
		}
	}
	if s, err := ParseSchedule(""); err != nil || s != ScheduleEven {
		t.Errorf("empty name should parse as even, got %v, %v", s, err)
	}
	if _, err := ParseSchedule("random"); err == nil {
		t.Error("unknown schedule name must error")
	}
}

// TestGuidedChunks pins the guided chunk formula: chunks never drop below
// one iteration and never grow as the remaining space shrinks.
func TestGuidedChunks(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		remaining, prev := int64(1000), int64(1 << 62)
		for remaining > 0 {
			c := guidedNext(remaining, workers)
			if c < 1 || c > remaining && remaining >= 1 && c != 1 {
				t.Fatalf("W=%d remaining=%d: chunk %d", workers, remaining, c)
			}
			if c > prev {
				t.Fatalf("W=%d: chunk grew %d -> %d", workers, prev, c)
			}
			prev = c
			if c > remaining {
				c = remaining
			}
			remaining -= c
		}
	}
}

// runPlannedSched executes redSrc under its reduction plan with the given
// schedule and returns the finished interpreter.
func runPlannedSched(t *testing.T, mode ExecMode, workers int, staggered bool, sched Schedule) *Interp {
	t.Helper()
	prog := minif.MustParse("t", redSrc)
	plan := planFor(t, prog, workers, staggered)
	for _, lp := range plan.Loops {
		lp.Schedule = sched
	}
	in := NewWithPlan(prog, plan)
	in.Mode = mode
	if err := in.Run(); err != nil {
		t.Fatalf("mode=%v workers=%d sched=%v: %v", mode, workers, sched, err)
	}
	return in
}

// TestScheduleDispatchAgreement is the satellite regression pinning
// schedule↔dispatch agreement: the plan's schedule is what the dispatcher
// actually runs (surfaced through ParLoopStat.Schedule), both engines
// execute the same assignment bit-for-bit, and the §5.4 storage rule holds
// under every policy — the planned run's live arena matches sequential.
func TestScheduleDispatchAgreement(t *testing.T) {
	seq := New(minif.MustParse("t", redSrc))
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	n := seq.ArenaSize()
	for _, sched := range Schedules() {
		for _, workers := range []int{2, 4, 8} {
			tree := runPlannedSched(t, ModeTree, workers, true, sched)
			vm := runPlannedSched(t, ModeBytecode, workers, true, sched)
			for _, in := range []*Interp{tree, vm} {
				stats := in.ParallelStats()
				if len(stats) != 1 {
					t.Fatalf("sched=%v: want 1 stat, got %d", sched, len(stats))
				}
				if stats[0].Schedule != sched.String() {
					t.Fatalf("sched=%v W=%d: dispatcher reported schedule %q — plan and dispatch disagree",
						sched, workers, stats[0].Schedule)
				}
			}
			if tree.Ops() != vm.Ops() {
				t.Errorf("sched=%v W=%d: ops differ: tree %d vs vm %d", sched, workers, tree.Ops(), vm.Ops())
			}
			ta, va := tree.Arena(), vm.Arena()
			for i := range ta {
				if math.Float64bits(ta[i]) != math.Float64bits(va[i]) {
					t.Errorf("sched=%v W=%d: cell %d differs between engines: %g vs %g",
						sched, workers, i, ta[i], va[i])
					break
				}
			}
			if err := Validate(seq.Arena()[:n], vm.Arena()[:n], 1e-9); err != nil {
				t.Errorf("sched=%v W=%d vs sequential: %v", sched, workers, err)
			}
		}
	}
}

// TestScheduleReductionDeterminism extends the PR 5 bit-identity regression
// to the full (schedule × discipline) matrix at W∈{1,2,4}: 20 repeated runs
// of the reduction kernel must produce bit-identical arenas for every
// combination on both engines, since worker contributions merge in fixed
// index order whatever the assignment policy.
func TestScheduleReductionDeterminism(t *testing.T) {
	for _, mode := range []ExecMode{ModeTree, ModeBytecode} {
		for _, sched := range Schedules() {
			for _, staggered := range []bool{false, true} {
				for _, workers := range []int{1, 2, 4} {
					var first []uint64
					for run := 0; run < 20; run++ {
						in := runPlannedSched(t, mode, workers, staggered, sched)
						bits := make([]uint64, len(in.Arena()))
						for i, v := range in.Arena() {
							bits[i] = math.Float64bits(v)
						}
						if first == nil {
							first = bits
							continue
						}
						for i := range bits {
							if bits[i] != first[i] {
								t.Fatalf("mode=%v sched=%v staggered=%v W=%d run %d: cell %d differs: %x vs %x",
									mode, sched, staggered, workers, run, i, bits[i], first[i])
							}
						}
					}
				}
			}
		}
	}
}

// triSrc is a triangular kernel: iteration i does O(i) work, so the even
// schedule's last chunk dominates the critical path while interleaving
// balances it — the measurable difference the tuner's schedule knob exists
// to exploit.
const triSrc = `
      PROGRAM main
      REAL a(200), s(200)
      INTEGER i, j
      DO 5 i = 1, 200
        a(i) = MOD(i, 13) + 1
5     CONTINUE
      DO 10 i = 1, 200
        DO 8 j = 1, i
          s(i) = s(i) + a(j)
8       CONTINUE
10    CONTINUE
      END
`

// TestScheduleBalanceTriangular checks the schedules differ where they
// should: on a triangular loop the interleaved critical path is strictly
// shorter than the even one, and every schedule still matches the
// sequential arena.
func TestScheduleBalanceTriangular(t *testing.T) {
	seq := New(minif.MustParse("t", triSrc))
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	n := seq.ArenaSize()
	crit := map[Schedule]int64{}
	for _, sched := range Schedules() {
		parProg := minif.MustParse("t", triSrc)
		main := parProg.Main()
		var l10 *ir.DoLoop
		for _, l := range main.Loops() {
			if l.Label == "10" {
				l10 = l
			}
		}
		if l10 == nil {
			t.Fatal("no loop 10")
		}
		plan := &ParallelPlan{
			Workers: 4,
			Loops: map[*ir.DoLoop]*LoopPlan{
				l10: {Private: []*ir.Symbol{main.Lookup("J")}, Schedule: sched},
			},
		}
		in := NewWithPlan(parProg, plan)
		in.Mode = ModeBytecode
		if err := in.Run(); err != nil {
			t.Fatalf("sched=%v: %v", sched, err)
		}
		if err := Validate(seq.Arena()[:n], in.Arena()[:n], 0); err != nil {
			t.Errorf("sched=%v vs sequential: %v", sched, err)
		}
		stats := in.ParallelStats()
		if len(stats) != 1 {
			t.Fatalf("sched=%v: want 1 stat, got %d", sched, len(stats))
		}
		crit[sched] = stats[0].CritOps
	}
	if crit[ScheduleInterleaved] >= crit[ScheduleEven] {
		t.Errorf("interleaved crit %d should beat even crit %d on a triangular loop",
			crit[ScheduleInterleaved], crit[ScheduleEven])
	}
	if crit[ScheduleGuided] >= crit[ScheduleEven] {
		t.Errorf("guided crit %d should beat even crit %d on a triangular loop",
			crit[ScheduleGuided], crit[ScheduleEven])
	}
}
