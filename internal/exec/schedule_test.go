package exec

import (
	"math"
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

// TestSchedulePartition proves every dispatcher policy is a partition: over
// all positions, each iteration of [0, trips) is executed exactly once, in
// increasing order per position, and lastPosition names the position that
// actually receives the globally last iteration — the §5.4 storage-binding
// contract every schedule must honor.
func TestSchedulePartition(t *testing.T) {
	cases := []struct {
		trips   int64
		workers int
	}{
		{0, 4}, {1, 1}, {1, 4}, {2, 4}, {3, 2}, {7, 3}, {8, 8}, {10, 4},
		{100, 7}, {1000, 8}, {37, 5}, {64, 8},
	}
	for _, sched := range Schedules() {
		for _, c := range cases {
			seen := make([]int, c.trips)
			lastSeenPos := -1
			for pos := 0; pos < c.workers; pos++ {
				prev := int64(-1)
				err := forEachAssigned(sched, c.trips, c.workers, pos, func(it int64) error {
					if it < 0 || it >= c.trips {
						t.Fatalf("%v trips=%d W=%d pos=%d: iteration %d out of range",
							sched, c.trips, c.workers, pos, it)
					}
					if it <= prev {
						t.Fatalf("%v trips=%d W=%d pos=%d: iteration %d after %d (not increasing)",
							sched, c.trips, c.workers, pos, it, prev)
					}
					prev = it
					seen[it]++
					if it == c.trips-1 {
						lastSeenPos = pos
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for it, n := range seen {
				if n != 1 {
					t.Fatalf("%v trips=%d W=%d: iteration %d executed %d times",
						sched, c.trips, c.workers, it, n)
				}
			}
			if c.trips > 0 {
				if got := lastPosition(sched, c.trips, c.workers); got != lastSeenPos {
					t.Fatalf("%v trips=%d W=%d: lastPosition = %d but position %d ran the last iteration",
						sched, c.trips, c.workers, got, lastSeenPos)
				}
			}
		}
	}
}

// TestParseScheduleRoundTrip pins name parsing and String round-trips.
func TestParseScheduleRoundTrip(t *testing.T) {
	for _, s := range Schedules() {
		got, err := ParseSchedule(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSchedule(%q) = %v, %v", s.String(), got, err)
		}
	}
	if s, err := ParseSchedule(""); err != nil || s != ScheduleEven {
		t.Errorf("empty name should parse as even, got %v, %v", s, err)
	}
	if _, err := ParseSchedule("random"); err == nil {
		t.Error("unknown schedule name must error")
	}
}

// TestGuidedChunks pins the guided chunk formula: chunks never drop below
// one iteration and never grow as the remaining space shrinks.
func TestGuidedChunks(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		remaining, prev := int64(1000), int64(1 << 62)
		for remaining > 0 {
			c := guidedNext(remaining, workers)
			if c < 1 || c > remaining && remaining >= 1 && c != 1 {
				t.Fatalf("W=%d remaining=%d: chunk %d", workers, remaining, c)
			}
			if c > prev {
				t.Fatalf("W=%d: chunk grew %d -> %d", workers, prev, c)
			}
			prev = c
			if c > remaining {
				c = remaining
			}
			remaining -= c
		}
	}
}

// runPlannedSched executes redSrc under its reduction plan with the given
// schedule and returns the finished interpreter.
func runPlannedSched(t *testing.T, mode ExecMode, workers int, staggered bool, sched Schedule) *Interp {
	t.Helper()
	prog := minif.MustParse("t", redSrc)
	plan := planFor(t, prog, workers, staggered)
	for _, lp := range plan.Loops {
		lp.Schedule = sched
	}
	in := NewWithPlan(prog, plan)
	in.Mode = mode
	if err := in.Run(); err != nil {
		t.Fatalf("mode=%v workers=%d sched=%v: %v", mode, workers, sched, err)
	}
	return in
}

// TestScheduleDispatchAgreement is the satellite regression pinning
// schedule↔dispatch agreement: the plan's schedule is what the dispatcher
// actually runs (surfaced through ParLoopStat.Schedule), both engines
// execute the same assignment bit-for-bit, and the §5.4 storage rule holds
// under every policy — the planned run's live arena matches sequential.
func TestScheduleDispatchAgreement(t *testing.T) {
	seq := New(minif.MustParse("t", redSrc))
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	n := seq.ArenaSize()
	for _, sched := range Schedules() {
		for _, workers := range []int{2, 4, 8} {
			tree := runPlannedSched(t, ModeTree, workers, true, sched)
			vm := runPlannedSched(t, ModeBytecode, workers, true, sched)
			for _, in := range []*Interp{tree, vm} {
				stats := in.ParallelStats()
				if len(stats) != 1 {
					t.Fatalf("sched=%v: want 1 stat, got %d", sched, len(stats))
				}
				if stats[0].Schedule != sched.String() {
					t.Fatalf("sched=%v W=%d: dispatcher reported schedule %q — plan and dispatch disagree",
						sched, workers, stats[0].Schedule)
				}
			}
			if tree.Ops() != vm.Ops() {
				t.Errorf("sched=%v W=%d: ops differ: tree %d vs vm %d", sched, workers, tree.Ops(), vm.Ops())
			}
			ta, va := tree.Arena(), vm.Arena()
			for i := range ta {
				if math.Float64bits(ta[i]) != math.Float64bits(va[i]) {
					t.Errorf("sched=%v W=%d: cell %d differs between engines: %g vs %g",
						sched, workers, i, ta[i], va[i])
					break
				}
			}
			if err := Validate(seq.Arena()[:n], vm.Arena()[:n], 1e-9); err != nil {
				t.Errorf("sched=%v W=%d vs sequential: %v", sched, workers, err)
			}
		}
	}
}

// TestScheduleReductionDeterminism extends the PR 5 bit-identity regression
// to the full (schedule × discipline) matrix at W∈{1,2,4}: 20 repeated runs
// of the reduction kernel must produce bit-identical arenas for every
// combination on both engines, since worker contributions merge in fixed
// index order whatever the assignment policy.
func TestScheduleReductionDeterminism(t *testing.T) {
	for _, mode := range []ExecMode{ModeTree, ModeBytecode} {
		for _, sched := range Schedules() {
			for _, staggered := range []bool{false, true} {
				for _, workers := range []int{1, 2, 4} {
					var first []uint64
					for run := 0; run < 20; run++ {
						in := runPlannedSched(t, mode, workers, staggered, sched)
						bits := make([]uint64, len(in.Arena()))
						for i, v := range in.Arena() {
							bits[i] = math.Float64bits(v)
						}
						if first == nil {
							first = bits
							continue
						}
						for i := range bits {
							if bits[i] != first[i] {
								t.Fatalf("mode=%v sched=%v staggered=%v W=%d run %d: cell %d differs: %x vs %x",
									mode, sched, staggered, workers, run, i, bits[i], first[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestScheduleBoundaryAssignments pins the exact per-position assignment at
// the dispatch boundaries: fewer trips than workers (some positions get
// nothing — even leaves interior holes, interleaved/guided leave a tail),
// zero trips (nobody runs), and guided chunks collapsed to single
// iterations (remaining/(2W) < 1 from the first chunk).
func TestScheduleBoundaryAssignments(t *testing.T) {
	cases := []struct {
		sched   Schedule
		trips   int64
		workers int
		want    [][]int64
	}{
		{ScheduleEven, 2, 4, [][]int64{{}, {0}, {}, {1}}},
		{ScheduleEven, 1, 4, [][]int64{{}, {}, {}, {0}}},
		{ScheduleInterleaved, 2, 4, [][]int64{{0}, {1}, {}, {}}},
		{ScheduleGuided, 2, 4, [][]int64{{0}, {1}, {}, {}}},
		{ScheduleEven, 0, 4, [][]int64{{}, {}, {}, {}}},
		{ScheduleInterleaved, 0, 4, [][]int64{{}, {}, {}, {}}},
		{ScheduleGuided, 0, 4, [][]int64{{}, {}, {}, {}}},
		// 7/(2*2) = 1: every guided chunk is a single iteration, dealt
		// round-robin — cyclic assignment, not contiguous halves.
		{ScheduleGuided, 7, 2, [][]int64{{0, 2, 4, 6}, {1, 3, 5}}},
	}
	for _, c := range cases {
		for pos := 0; pos < c.workers; pos++ {
			got := []int64{}
			err := forEachAssigned(c.sched, c.trips, c.workers, pos, func(it int64) error {
				got = append(got, it)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := c.want[pos]
			if len(got) != len(want) {
				t.Fatalf("%v trips=%d W=%d pos=%d: got %v, want %v",
					c.sched, c.trips, c.workers, pos, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v trips=%d W=%d pos=%d: got %v, want %v",
						c.sched, c.trips, c.workers, pos, got, want)
				}
			}
		}
	}
}

// boundarySrc runs two planned loops at the dispatch boundaries: loop 10
// has fewer trips (2) than the plan's workers (4), loop 20 has zero trips.
const boundarySrc = `
      PROGRAM main
      REAL a(8), s(8)
      INTEGER i, n, m
      n = 2
      m = 0
      DO 5 i = 1, 8
        a(i) = i * 2.0
        s(i) = 0.0
5     CONTINUE
      DO 10 i = 1, n
        s(i) = a(i) + 1.0
10    CONTINUE
      DO 20 i = 1, m
        s(i) = 99.0
20    CONTINUE
      WRITE(*,*) s(1), s(2), s(3)
      END
`

// TestScheduleBoundaryTierAgreement runs the boundary loops under every
// schedule across all four engine tiers and requires bit-identical results:
// a partial or empty assignment must not desynchronize any tier's dispatch.
func TestScheduleBoundaryTierAgreement(t *testing.T) {
	for _, sched := range Schedules() {
		var ref *Interp
		for _, mode := range []ExecMode{ModeTree, ModeBytecode, ModeTiered, ModeRegister} {
			prog := minif.MustParse("t", boundarySrc)
			main := prog.Main()
			plan := &ParallelPlan{Workers: 4, Loops: map[*ir.DoLoop]*LoopPlan{}}
			for _, l := range main.Loops() {
				if l.Label == "10" || l.Label == "20" {
					plan.Loops[l] = &LoopPlan{Schedule: sched}
				}
			}
			if len(plan.Loops) != 2 {
				t.Fatal("boundary loops not found")
			}
			in := NewWithPlan(prog, plan)
			in.Mode = mode
			if err := in.Run(); err != nil {
				t.Fatalf("sched=%v mode=%v: %v", sched, mode, err)
			}
			if ref == nil {
				ref = in
				continue
			}
			if in.Ops() != ref.Ops() {
				t.Errorf("sched=%v mode=%v: ops %d differ from tree %d", sched, mode, in.Ops(), ref.Ops())
			}
			ra, ia := ref.Arena(), in.Arena()
			for i := range ra {
				if math.Float64bits(ra[i]) != math.Float64bits(ia[i]) {
					t.Errorf("sched=%v mode=%v: cell %d differs: %g vs %g", sched, mode, i, ia[i], ra[i])
					break
				}
			}
		}
	}
}

// triSrc is a triangular kernel: iteration i does O(i) work, so the even
// schedule's last chunk dominates the critical path while interleaving
// balances it — the measurable difference the tuner's schedule knob exists
// to exploit.
const triSrc = `
      PROGRAM main
      REAL a(200), s(200)
      INTEGER i, j
      DO 5 i = 1, 200
        a(i) = MOD(i, 13) + 1
5     CONTINUE
      DO 10 i = 1, 200
        DO 8 j = 1, i
          s(i) = s(i) + a(j)
8       CONTINUE
10    CONTINUE
      END
`

// TestScheduleBalanceTriangular checks the schedules differ where they
// should: on a triangular loop the interleaved critical path is strictly
// shorter than the even one, and every schedule still matches the
// sequential arena.
func TestScheduleBalanceTriangular(t *testing.T) {
	seq := New(minif.MustParse("t", triSrc))
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	n := seq.ArenaSize()
	crit := map[Schedule]int64{}
	for _, sched := range Schedules() {
		parProg := minif.MustParse("t", triSrc)
		main := parProg.Main()
		var l10 *ir.DoLoop
		for _, l := range main.Loops() {
			if l.Label == "10" {
				l10 = l
			}
		}
		if l10 == nil {
			t.Fatal("no loop 10")
		}
		plan := &ParallelPlan{
			Workers: 4,
			Loops: map[*ir.DoLoop]*LoopPlan{
				l10: {Private: []*ir.Symbol{main.Lookup("J")}, Schedule: sched},
			},
		}
		in := NewWithPlan(parProg, plan)
		in.Mode = ModeBytecode
		if err := in.Run(); err != nil {
			t.Fatalf("sched=%v: %v", sched, err)
		}
		if err := Validate(seq.Arena()[:n], in.Arena()[:n], 0); err != nil {
			t.Errorf("sched=%v vs sequential: %v", sched, err)
		}
		stats := in.ParallelStats()
		if len(stats) != 1 {
			t.Fatalf("sched=%v: want 1 stat, got %d", sched, len(stats))
		}
		crit[sched] = stats[0].CritOps
	}
	if crit[ScheduleInterleaved] >= crit[ScheduleEven] {
		t.Errorf("interleaved crit %d should beat even crit %d on a triangular loop",
			crit[ScheduleInterleaved], crit[ScheduleEven])
	}
	if crit[ScheduleGuided] >= crit[ScheduleEven] {
		t.Errorf("guided crit %d should beat even crit %d on a triangular loop",
			crit[ScheduleGuided], crit[ScheduleEven])
	}
}
