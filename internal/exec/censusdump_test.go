package exec_test

import (
	"sort"
	"testing"

	"suifx/internal/exec"
	"suifx/internal/workloads"
)

// TestDumpInstrumentedCensus is a development aid: -run it with -v to see
// the dynamic opcode pair frequencies left in the fused streams of the
// flagship workload.
func TestDumpInstrumentedCensus(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("dump only under -v")
	}
	for _, instrumented := range []bool{true, false} {
		pairs, singles, err := exec.FusedPairCensusForTest(workloads.ByName("mdg").Fresh(), instrumented)
		if err != nil {
			t.Fatal(err)
		}
		type pc2 struct {
			pat string
			n   int64
		}
		dump := func(tag string, m map[string]int64) {
			var out []pc2
			for p, n := range m {
				out = append(out, pc2{p, n})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].n > out[j].n })
			for i, p := range out {
				if i >= 20 {
					break
				}
				t.Logf("instr=%v %s %-44s %12d", instrumented, tag, p.pat, p.n)
			}
		}
		dump("pair", pairs)
		dump("op  ", singles)
	}
}
