package exec_test

// Differential tests: every program is executed by both engines — the
// tree-walking interpreter and the bytecode VM — and every observable must
// match exactly: arena image (bit-for-bit), printed output, the virtual
// clock, loop profiles, and the dynamic dependence analyzer's counts.

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/workloads"
)

// runResult captures everything observable about one execution.
type runResult struct {
	err      string
	ops      int64
	output   string
	arena    []float64
	profiles string
	carried  map[string]int64
	accesses int64
	deploops string
}

type runConfig struct {
	instrument  bool
	profile     bool
	sampleEvery int64
	sampleWarm  int64
	maxOps      int64
}

func runEngine(t *testing.T, name, src string, mode exec.ExecMode, cfg runConfig) runResult {
	t.Helper()
	prog, err := minif.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	in := exec.New(prog)
	in.Mode = mode
	in.MaxOps = cfg.maxOps
	var out bytes.Buffer
	in.Out = &out

	var prof *exec.Profiler
	if cfg.profile {
		prof = exec.NewProfiler(in)
	}
	var dyn *exec.DynDep
	if cfg.instrument {
		dyn = exec.NewDynDep(in)
		dyn.SampleEvery = cfg.sampleEvery
		dyn.SampleWarm = cfg.sampleWarm
	}

	res := runResult{carried: map[string]int64{}}
	if err := in.Run(); err != nil {
		res.err = err.Error()
	}
	res.ops = in.Ops()
	res.output = out.String()
	res.arena = append([]float64(nil), in.Arena()...)
	if prof != nil {
		var sb strings.Builder
		for _, lp := range prof.Profiles() {
			fmt.Fprintf(&sb, "%s inv=%d iters=%d ops=%d\n", lp.ID, lp.Invocations, lp.Iterations, lp.TotalOps)
		}
		res.profiles = sb.String()
	}
	if dyn != nil {
		res.accesses = dyn.Accesses()
		res.deploops = strings.Join(dyn.LoopsWithDeps(prog), ",")
		for _, p := range prog.Procs {
			for _, l := range p.Loops() {
				if c := dyn.Carried(l); c != 0 {
					res.carried[l.ID(p.Name)] = c
				}
			}
		}
	}
	return res
}

// compareRuns asserts two runs observed exactly the same execution.
// compareOps is skipped for failed runs: within the failing statement the
// engines may attribute the final partial ticks differently (op totals are
// only defined at statement/loop boundaries).
//
// Budget relaxation: the VM checks the operation budget at basic-block
// boundaries rather than per instruction, so on a pure budget-exceeded
// error it may run unobserved arena stores a few instructions further than
// the tree-walker before faulting. Error text (including the budget value)
// and printed output must still match exactly; arena/profile/DDA state are
// not compared on those runs.
func compareRuns(t *testing.T, label string, tree, bc runResult) {
	t.Helper()
	if tree.err != bc.err {
		t.Fatalf("%s: error mismatch:\n tree: %q\n  vm:  %q", label, tree.err, bc.err)
	}
	if strings.Contains(tree.err, "operation budget exceeded") {
		if tree.output != bc.output {
			t.Errorf("%s: output mismatch on budget error:\n tree: %q\n  vm:  %q", label, tree.output, bc.output)
		}
		return
	}
	if tree.err == "" && tree.ops != bc.ops {
		t.Errorf("%s: ops mismatch: tree %d vs vm %d", label, tree.ops, bc.ops)
	}
	if tree.output != bc.output {
		t.Errorf("%s: output mismatch:\n tree: %q\n  vm:  %q", label, tree.output, bc.output)
	}
	if len(tree.arena) != len(bc.arena) {
		t.Fatalf("%s: arena sizes differ: %d vs %d", label, len(tree.arena), len(bc.arena))
	}
	for i := range tree.arena {
		if math.Float64bits(tree.arena[i]) != math.Float64bits(bc.arena[i]) {
			t.Fatalf("%s: arena[%d] differs: %v vs %v", label, i, tree.arena[i], bc.arena[i])
		}
	}
	if tree.err == "" && tree.profiles != bc.profiles {
		t.Errorf("%s: profiles mismatch:\n tree:\n%s vm:\n%s", label, tree.profiles, bc.profiles)
	}
	if tree.accesses != bc.accesses {
		t.Errorf("%s: instrumented accesses mismatch: tree %d vs vm %d", label, tree.accesses, bc.accesses)
	}
	if tree.deploops != bc.deploops {
		t.Errorf("%s: LoopsWithDeps mismatch: tree %q vs vm %q", label, tree.deploops, bc.deploops)
	}
	if len(tree.carried) != len(bc.carried) {
		t.Fatalf("%s: carried map sizes differ: tree %v vs vm %v", label, tree.carried, bc.carried)
	}
	for id, c := range tree.carried {
		if bc.carried[id] != c {
			t.Errorf("%s: carried[%s] mismatch: tree %d vs vm %d", label, id, c, bc.carried[id])
		}
	}
}

// diffBoth is a four-way differential: the tree-walker is the reference,
// and the baseline bytecode VM, the tiered VM (fusion + specialization),
// and the register-form VM (tier 4) must all match it on every observable.
func diffBoth(t *testing.T, label, name, src string, cfg runConfig) {
	t.Helper()
	tree := runEngine(t, name, src, exec.ModeTree, cfg)
	bc := runEngine(t, name, src, exec.ModeBytecode, cfg)
	compareRuns(t, label+"/vm", tree, bc)
	td := runEngine(t, name, src, exec.ModeTiered, cfg)
	compareRuns(t, label+"/tiered", tree, td)
	rg := runEngine(t, name, src, exec.ModeRegister, cfg)
	compareRuns(t, label+"/register", tree, rg)
}

// TestDifferentialWorkloads runs every benchmark workload through both
// engines uninstrumented, fully instrumented, and with iteration sampling.
func TestDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			diffBoth(t, w.Name+"/plain", w.Name, w.Source, runConfig{})
			diffBoth(t, w.Name+"/profile", w.Name, w.Source, runConfig{profile: true})
			diffBoth(t, w.Name+"/dda", w.Name, w.Source, runConfig{profile: true, instrument: true})
			diffBoth(t, w.Name+"/sampled", w.Name, w.Source,
				runConfig{profile: true, instrument: true, sampleEvery: 10})
		})
	}
}

// TestDifferentialErrors checks that runtime failures surface identically:
// same error text, same arena state, same output up to the fault.
func TestDifferentialErrors(t *testing.T) {
	cases := []struct {
		name, src string
		maxOps    int64
		wantErr   string
	}{
		{
			name: "bounds",
			src: `
      PROGRAM bnds
      REAL a(10)
      INTEGER i
      DO 10 i = 1, 20
        a(i) = i * 1.0
10    CONTINUE
      END
`,
			wantErr: "out of bounds",
		},
		{
			name: "divzero",
			src: `
      PROGRAM divz
      REAL x, y
      INTEGER i
      x = 4.0
      DO 10 i = 1, 5
        y = x / (3.0 - i)
10    CONTINUE
      END
`,
			wantErr: "division by zero",
		},
		{
			name: "zerostep",
			src: `
      PROGRAM zst
      INTEGER i, n
      REAL x
      n = 0
      DO 10 i = 1, 5, n
        x = x + 1.0
10    CONTINUE
      END
`,
			wantErr: "zero DO step",
		},
		{
			name: "sqrtneg",
			src: `
      PROGRAM sq
      REAL x
      x = SQRT(1.0 - 2.0)
      END
`,
			wantErr: "SQRT of negative",
		},
		{
			name: "budget",
			src: `
      PROGRAM bdg
      REAL s
      INTEGER i
      DO 10 i = 1, 100000
        s = s + i * 2.0
10    CONTINUE
      END
`,
			maxOps:  1000,
			wantErr: "operation budget exceeded (1000)",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := runConfig{profile: true, instrument: true, maxOps: tc.maxOps}
			tree := runEngine(t, tc.name, tc.src, exec.ModeTree, cfg)
			if !strings.Contains(tree.err, tc.wantErr) {
				t.Fatalf("tree error %q does not contain %q", tree.err, tc.wantErr)
			}
			bc := runEngine(t, tc.name, tc.src, exec.ModeBytecode, cfg)
			compareRuns(t, tc.name+"/vm", tree, bc)
			td := runEngine(t, tc.name, tc.src, exec.ModeTiered, cfg)
			compareRuns(t, tc.name+"/tiered", tree, td)
			rg := runEngine(t, tc.name, tc.src, exec.ModeRegister, cfg)
			compareRuns(t, tc.name+"/register", tree, rg)
		})
	}
}

// ---- random program quick-check ----

// The random program generator lives in internal/corpus (DiffProgram): it
// emits valid-by-construction MiniF programs — all array indices provably
// in bounds, no division, no unknown callees — so every generated program
// must run identically (and successfully) on both engines.

// TestDifferentialRandomPrograms quick-checks engine equivalence over
// generated programs, fully instrumented and with sampling.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for s := 0; s < seeds; s++ {
		src := corpus.DiffProgram(int64(s))
		name := fmt.Sprintf("rnd%03d", s)
		cfg := runConfig{profile: true, instrument: true}
		if s%3 == 1 {
			cfg.sampleEvery = 4
		}
		if s%3 == 2 {
			cfg.sampleEvery = 7
			cfg.sampleWarm = 3
		}
		tree := runEngine(t, name, src, exec.ModeTree, cfg)
		if tree.err != "" {
			t.Fatalf("seed %d: generated program failed on tree engine: %v\n%s", s, tree.err, src)
		}
		bc := runEngine(t, name, src, exec.ModeBytecode, cfg)
		compareRuns(t, name+"/vm", tree, bc)
		td := runEngine(t, name, src, exec.ModeTiered, cfg)
		compareRuns(t, name+"/tiered", tree, td)
		rg := runEngine(t, name, src, exec.ModeRegister, cfg)
		compareRuns(t, name+"/register", tree, rg)
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", s, src)
		}
	}
}

// TestDifferentialCorpusScale runs the corpus factory's recorded scale
// tiers through both engines. The quick tiers run everywhere; the 20k-line
// tier joins outside -short. Instrumentation stays off at scale (the
// point here is engine equivalence on large programs, not DDA coverage —
// the random-program quick-check above exercises the instrumented paths).
func TestDifferentialCorpusScale(t *testing.T) {
	tiers := corpus.QuickLadder()
	if !testing.Short() {
		if tier, ok := corpus.TierByName("20k"); ok {
			tiers = append(tiers, tier)
		}
	}
	for _, tier := range tiers {
		tier := tier
		t.Run(tier.Name, func(t *testing.T) {
			p := tier.Generate()
			diffBoth(t, tier.Name, p.Name, p.Source, runConfig{profile: true})
		})
	}
}

// TestReportOrderStability is the regression test for report determinism:
// profile and dependence reports must come back in the same order across
// repeated runs and across engines.
func TestReportOrderStability(t *testing.T) {
	w := workloads.All()[0]
	cfg := runConfig{profile: true, instrument: true}
	base := runEngine(t, w.Name, w.Source, exec.ModeBytecode, cfg)
	if base.profiles == "" {
		t.Fatal("no profiles produced")
	}
	for i := 0; i < 3; i++ {
		again := runEngine(t, w.Name, w.Source, exec.ModeBytecode, cfg)
		if again.profiles != base.profiles {
			t.Fatalf("run %d: profile order changed:\n%s\nvs\n%s", i, again.profiles, base.profiles)
		}
		if again.deploops != base.deploops {
			t.Fatalf("run %d: LoopsWithDeps order changed: %q vs %q", i, again.deploops, base.deploops)
		}
	}
	tree := runEngine(t, w.Name, w.Source, exec.ModeTree, cfg)
	if tree.profiles != base.profiles || tree.deploops != base.deploops {
		t.Fatalf("tree/vm report order differs:\n%s\nvs\n%s", tree.profiles, base.profiles)
	}
	tiered := runEngine(t, w.Name, w.Source, exec.ModeTiered, cfg)
	if tiered.profiles != base.profiles || tiered.deploops != base.deploops {
		t.Fatalf("tiered/vm report order differs:\n%s\nvs\n%s", tiered.profiles, base.profiles)
	}
	reg := runEngine(t, w.Name, w.Source, exec.ModeRegister, cfg)
	if reg.profiles != base.profiles || reg.deploops != base.deploops {
		t.Fatalf("register/vm report order differs:\n%s\nvs\n%s", reg.profiles, base.profiles)
	}
}
