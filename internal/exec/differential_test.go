package exec_test

// Differential tests: every program is executed by both engines — the
// tree-walking interpreter and the bytecode VM — and every observable must
// match exactly: arena image (bit-for-bit), printed output, the virtual
// clock, loop profiles, and the dynamic dependence analyzer's counts.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/workloads"
)

// runResult captures everything observable about one execution.
type runResult struct {
	err      string
	ops      int64
	output   string
	arena    []float64
	profiles string
	carried  map[string]int64
	accesses int64
	deploops string
}

type runConfig struct {
	instrument  bool
	profile     bool
	sampleEvery int64
	sampleWarm  int64
	maxOps      int64
}

func runEngine(t *testing.T, name, src string, mode exec.ExecMode, cfg runConfig) runResult {
	t.Helper()
	prog, err := minif.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	in := exec.New(prog)
	in.Mode = mode
	in.MaxOps = cfg.maxOps
	var out bytes.Buffer
	in.Out = &out

	var prof *exec.Profiler
	if cfg.profile {
		prof = exec.NewProfiler(in)
	}
	var dyn *exec.DynDep
	if cfg.instrument {
		dyn = exec.NewDynDep(in)
		dyn.SampleEvery = cfg.sampleEvery
		dyn.SampleWarm = cfg.sampleWarm
	}

	res := runResult{carried: map[string]int64{}}
	if err := in.Run(); err != nil {
		res.err = err.Error()
	}
	res.ops = in.Ops()
	res.output = out.String()
	res.arena = append([]float64(nil), in.Arena()...)
	if prof != nil {
		var sb strings.Builder
		for _, lp := range prof.Profiles() {
			fmt.Fprintf(&sb, "%s inv=%d iters=%d ops=%d\n", lp.ID, lp.Invocations, lp.Iterations, lp.TotalOps)
		}
		res.profiles = sb.String()
	}
	if dyn != nil {
		res.accesses = dyn.Accesses()
		res.deploops = strings.Join(dyn.LoopsWithDeps(prog), ",")
		for _, p := range prog.Procs {
			for _, l := range p.Loops() {
				if c := dyn.Carried(l); c != 0 {
					res.carried[l.ID(p.Name)] = c
				}
			}
		}
	}
	return res
}

// compareRuns asserts two runs observed exactly the same execution.
// compareOps is skipped for failed runs: within the failing statement the
// engines may attribute the final partial ticks differently (op totals are
// only defined at statement/loop boundaries).
func compareRuns(t *testing.T, label string, tree, bc runResult) {
	t.Helper()
	if tree.err != bc.err {
		t.Fatalf("%s: error mismatch:\n tree: %q\n  vm:  %q", label, tree.err, bc.err)
	}
	if tree.err == "" && tree.ops != bc.ops {
		t.Errorf("%s: ops mismatch: tree %d vs vm %d", label, tree.ops, bc.ops)
	}
	if tree.output != bc.output {
		t.Errorf("%s: output mismatch:\n tree: %q\n  vm:  %q", label, tree.output, bc.output)
	}
	if len(tree.arena) != len(bc.arena) {
		t.Fatalf("%s: arena sizes differ: %d vs %d", label, len(tree.arena), len(bc.arena))
	}
	for i := range tree.arena {
		if math.Float64bits(tree.arena[i]) != math.Float64bits(bc.arena[i]) {
			t.Fatalf("%s: arena[%d] differs: %v vs %v", label, i, tree.arena[i], bc.arena[i])
		}
	}
	if tree.err == "" && tree.profiles != bc.profiles {
		t.Errorf("%s: profiles mismatch:\n tree:\n%s vm:\n%s", label, tree.profiles, bc.profiles)
	}
	if tree.accesses != bc.accesses {
		t.Errorf("%s: instrumented accesses mismatch: tree %d vs vm %d", label, tree.accesses, bc.accesses)
	}
	if tree.deploops != bc.deploops {
		t.Errorf("%s: LoopsWithDeps mismatch: tree %q vs vm %q", label, tree.deploops, bc.deploops)
	}
	if len(tree.carried) != len(bc.carried) {
		t.Fatalf("%s: carried map sizes differ: tree %v vs vm %v", label, tree.carried, bc.carried)
	}
	for id, c := range tree.carried {
		if bc.carried[id] != c {
			t.Errorf("%s: carried[%s] mismatch: tree %d vs vm %d", label, id, c, bc.carried[id])
		}
	}
}

func diffBoth(t *testing.T, label, name, src string, cfg runConfig) {
	t.Helper()
	tree := runEngine(t, name, src, exec.ModeTree, cfg)
	bc := runEngine(t, name, src, exec.ModeBytecode, cfg)
	compareRuns(t, label, tree, bc)
}

// TestDifferentialWorkloads runs every benchmark workload through both
// engines uninstrumented, fully instrumented, and with iteration sampling.
func TestDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			diffBoth(t, w.Name+"/plain", w.Name, w.Source, runConfig{})
			diffBoth(t, w.Name+"/profile", w.Name, w.Source, runConfig{profile: true})
			diffBoth(t, w.Name+"/dda", w.Name, w.Source, runConfig{profile: true, instrument: true})
			diffBoth(t, w.Name+"/sampled", w.Name, w.Source,
				runConfig{profile: true, instrument: true, sampleEvery: 10})
		})
	}
}

// TestDifferentialErrors checks that runtime failures surface identically:
// same error text, same arena state, same output up to the fault.
func TestDifferentialErrors(t *testing.T) {
	cases := []struct {
		name, src string
		maxOps    int64
		wantErr   string
	}{
		{
			name: "bounds",
			src: `
      PROGRAM bnds
      REAL a(10)
      INTEGER i
      DO 10 i = 1, 20
        a(i) = i * 1.0
10    CONTINUE
      END
`,
			wantErr: "out of bounds",
		},
		{
			name: "divzero",
			src: `
      PROGRAM divz
      REAL x, y
      INTEGER i
      x = 4.0
      DO 10 i = 1, 5
        y = x / (3.0 - i)
10    CONTINUE
      END
`,
			wantErr: "division by zero",
		},
		{
			name: "zerostep",
			src: `
      PROGRAM zst
      INTEGER i, n
      REAL x
      n = 0
      DO 10 i = 1, 5, n
        x = x + 1.0
10    CONTINUE
      END
`,
			wantErr: "zero DO step",
		},
		{
			name: "sqrtneg",
			src: `
      PROGRAM sq
      REAL x
      x = SQRT(1.0 - 2.0)
      END
`,
			wantErr: "SQRT of negative",
		},
		{
			name: "budget",
			src: `
      PROGRAM bdg
      REAL s
      INTEGER i
      DO 10 i = 1, 100000
        s = s + i * 2.0
10    CONTINUE
      END
`,
			maxOps:  1000,
			wantErr: "operation budget exceeded (1000)",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := runConfig{profile: true, instrument: true, maxOps: tc.maxOps}
			tree := runEngine(t, tc.name, tc.src, exec.ModeTree, cfg)
			bc := runEngine(t, tc.name, tc.src, exec.ModeBytecode, cfg)
			if !strings.Contains(tree.err, tc.wantErr) {
				t.Fatalf("tree error %q does not contain %q", tree.err, tc.wantErr)
			}
			compareRuns(t, tc.name, tree, bc)
		})
	}
}

// ---- random program quick-check ----

// progGen emits random but valid-by-construction MiniF programs: all array
// indices provably in bounds, no division, no unknown callees — so every
// generated program must run identically (and successfully) on both
// engines.
type progGen struct {
	r   *rand.Rand
	sb  strings.Builder
	lbl int
}

func (g *progGen) linef(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *progGen) label() int {
	g.lbl += 10
	return g.lbl
}

// scalar/array pools. Arrays are all REAL a?(30) or 2-D (6,6); loop bounds
// stay within 1..6 so idx expressions up to i*2+7 and 30-i stay in bounds.
var scalars = []string{"x", "y", "z", "w"}
var ivars = []string{"i", "j", "k"}
var arrs1 = []string{"a1", "a2", "c1"}
var arrs2 = []string{"b1", "c2"}

func (g *progGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// idxExpr yields an index expression with value in [1,30] given every loop
// variable stays in [0,6] (uninitialized integers are 0).
func (g *progGen) idxExpr() string {
	v := g.pick(ivars)
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", 1+g.r.Intn(6))
	case 1:
		return v + " + 1"
	case 2:
		return fmt.Sprintf("%s + %d", v, 1+g.r.Intn(3))
	case 3:
		return "30 - " + v
	case 4:
		return fmt.Sprintf("%s * 2 + %d", v, 1+g.r.Intn(5))
	default:
		return v + " + 1"
	}
}

// idx2Expr yields an index in [1,6].
func (g *progGen) idx2Expr() string {
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("%d", 1+g.r.Intn(6))
	}
	return g.pick(ivars) + " + 1"
}

func (g *progGen) valExpr(depth int) string {
	if depth > 2 {
		if g.r.Intn(2) == 0 {
			return g.pick(scalars)
		}
		return fmt.Sprintf("%d.%d", g.r.Intn(9), g.r.Intn(9))
	}
	switch g.r.Intn(9) {
	case 0:
		return g.pick(scalars)
	case 1:
		return fmt.Sprintf("%s(%s)", g.pick(arrs1), g.idxExpr())
	case 2:
		return fmt.Sprintf("%s(%s, %s)", g.pick(arrs2), g.idx2Expr(), g.idx2Expr())
	case 3:
		return fmt.Sprintf("(%s + %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 4:
		return fmt.Sprintf("(%s - %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 5:
		return fmt.Sprintf("(%s * %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 6:
		in := []string{"ABS", "SIN", "COS", "INT"}[g.r.Intn(4)]
		return fmt.Sprintf("%s(%s)", in, g.valExpr(depth+1))
	case 7:
		return fmt.Sprintf("MIN(%s, %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 8:
		return fmt.Sprintf("SQRT(ABS(%s))", g.valExpr(depth+1))
	}
	return "1.0"
}

func (g *progGen) condExpr(depth int) string {
	rel := []string{".LT.", ".LE.", ".GT.", ".GE.", ".EQ.", ".NE."}[g.r.Intn(6)]
	base := fmt.Sprintf("(%s %s %s)", g.valExpr(2), rel, g.valExpr(2))
	if depth > 1 {
		return base
	}
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s .AND. %s)", base, g.condExpr(depth+1))
	case 1:
		return fmt.Sprintf("(%s .OR. %s)", base, g.condExpr(depth+1))
	case 2:
		return "(.NOT. " + base + ")"
	default:
		return base
	}
}

func (g *progGen) lhs() string {
	switch g.r.Intn(3) {
	case 0:
		return g.pick(scalars)
	case 1:
		return fmt.Sprintf("%s(%s)", g.pick(arrs1), g.idxExpr())
	default:
		return fmt.Sprintf("%s(%s, %s)", g.pick(arrs2), g.idx2Expr(), g.idx2Expr())
	}
}

func (g *progGen) stmt(depth, loopDepth int, inSub bool) {
	n := g.r.Intn(10)
	switch {
	case n < 4 || depth > 3:
		g.linef("        %s = %s", g.lhs(), g.valExpr(0))
	case n < 6 && loopDepth < 3:
		g.loop(depth, loopDepth, inSub)
	case n < 8:
		g.linef("        IF %s THEN", g.condExpr(0))
		for i := 0; i < 1+g.r.Intn(2); i++ {
			g.stmt(depth+1, loopDepth, inSub)
		}
		if g.r.Intn(2) == 0 {
			g.linef("        ELSE")
			g.stmt(depth+1, loopDepth, inSub)
		}
		g.linef("        ENDIF")
	case n == 8 && !inSub:
		g.linef("        CALL sub%d(%s, %s, %s)", 1+g.r.Intn(2),
			g.pick(arrs1), g.pick(scalars), g.valExpr(1))
	default:
		g.linef("        WRITE(*,*) %s", g.valExpr(1))
	}
}

func (g *progGen) loop(depth, loopDepth int, inSub bool) {
	l := g.label()
	v := ivars[loopDepth]
	// Bounds keep every induction variable in [0,5] at all times, including
	// the post-loop overshoot (DO v = 1, 4 leaves v = 5), so index
	// expressions built from them stay in range.
	switch g.r.Intn(3) {
	case 0:
		g.linef("        DO %d %s = 1, %d", l, v, 2+g.r.Intn(3))
	case 1:
		g.linef("        DO %d %s = %d, 1, -1", l, v, 2+g.r.Intn(3))
	default:
		g.linef("        DO %d %s = 1, 4, 2", l, v)
	}
	for i := 0; i < 1+g.r.Intn(3); i++ {
		g.stmt(depth+1, loopDepth+1, inSub)
	}
	g.linef("%-8dCONTINUE", l)
}

func (g *progGen) decls() {
	g.linef("      COMMON /blk/ c1(30), c2(6,6), cs")
	g.linef("      REAL x, y, z, w, a1(30), a2(30), b1(6,6)")
	g.linef("      INTEGER i, j, k")
}

func genProgram(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	for s := 1; s <= 2; s++ {
		g.linef("      SUBROUTINE sub%d(p, q, r)", s)
		g.linef("      REAL p(30), q, r")
		g.decls()
		for i := 0; i < 2+g.r.Intn(3); i++ {
			g.stmt(0, 0, true)
		}
		if g.r.Intn(3) == 0 {
			g.linef("        IF %s THEN", g.condExpr(0))
			g.linef("        RETURN")
			g.linef("        ENDIF")
		}
		g.linef("        q = q + r + p(1)")
		g.linef("      END")
		g.linef("")
	}
	g.linef("      PROGRAM rnd")
	g.decls()
	g.linef("        x = 1.5")
	g.linef("        y = 0.25")
	for i := 0; i < 3+g.r.Intn(5); i++ {
		g.stmt(0, 0, false)
	}
	g.linef("        WRITE(*,*) x, y, z, w, cs")
	g.linef("      END")
	return g.sb.String()
}

// TestDifferentialRandomPrograms quick-checks engine equivalence over
// generated programs, fully instrumented and with sampling.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for s := 0; s < seeds; s++ {
		src := genProgram(int64(s))
		name := fmt.Sprintf("rnd%03d", s)
		cfg := runConfig{profile: true, instrument: true}
		if s%3 == 1 {
			cfg.sampleEvery = 4
		}
		if s%3 == 2 {
			cfg.sampleEvery = 7
			cfg.sampleWarm = 3
		}
		tree := runEngine(t, name, src, exec.ModeTree, cfg)
		bc := runEngine(t, name, src, exec.ModeBytecode, cfg)
		if tree.err != "" {
			t.Fatalf("seed %d: generated program failed on tree engine: %v\n%s", s, tree.err, src)
		}
		compareRuns(t, name, tree, bc)
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", s, src)
		}
	}
}

// TestReportOrderStability is the regression test for report determinism:
// profile and dependence reports must come back in the same order across
// repeated runs and across engines.
func TestReportOrderStability(t *testing.T) {
	w := workloads.All()[0]
	cfg := runConfig{profile: true, instrument: true}
	base := runEngine(t, w.Name, w.Source, exec.ModeBytecode, cfg)
	if base.profiles == "" {
		t.Fatal("no profiles produced")
	}
	for i := 0; i < 3; i++ {
		again := runEngine(t, w.Name, w.Source, exec.ModeBytecode, cfg)
		if again.profiles != base.profiles {
			t.Fatalf("run %d: profile order changed:\n%s\nvs\n%s", i, again.profiles, base.profiles)
		}
		if again.deploops != base.deploops {
			t.Fatalf("run %d: LoopsWithDeps order changed: %q vs %q", i, again.deploops, base.deploops)
		}
	}
	tree := runEngine(t, w.Name, w.Source, exec.ModeTree, cfg)
	if tree.profiles != base.profiles || tree.deploops != base.deploops {
		t.Fatalf("tree/vm report order differs:\n%s\nvs\n%s", tree.profiles, base.profiles)
	}
}
