package exec

// Register-form lowering (tier 4, DESIGN.md "Register-form tier"). The
// specialized alt bodies the tiered engine arms are straight-line (no
// nested loops, no calls, no IO — specializable() guarantees it), so the
// eval-stack depth before every instruction is a compile-time constant: a
// single linear walk from the body entry, adding each opcode's stack
// effect and checking consistency at jump targets, assigns every stack
// slot a fixed index. Those indices become virtual registers, and each
// stack instruction translates 1:1 into a register-addressed twin that
// names its operands explicitly instead of through sp. A register
// peephole then collapses def-use chains the stack form cannot (the
// consumed register is provably dead because the depth dropped below it),
// and the loop's back edge is executed natively by the vm's register
// runner (runRegBody), so hot iterations pay neither sp arithmetic nor
// the full dispatch table.
//
// Lowering is conservative: any opcode without a register twin, any depth
// inconsistency, or any operand that does not fit the packed encoding
// makes the loop keep its stack-form alt body (regEntry stays -1).
// Arming, preflight, sampled-DDA fallback and invalidation are untouched.

// regLowerCode appends a register-form body for every alt body it can
// translate. Bodies land after the fused stream (regStart), so no pc in
// the existing stream moves and the arming/dispatch machinery can
// distinguish register entries by address alone.
func regLowerCode(cd *code) {
	cd.register = true
	cd.regStart = int32(len(cd.ins))
	for li := range cd.loops {
		lm := &cd.loops[li]
		if lm.altEntry < 0 {
			continue
		}
		if entry, ok := regLowerBody(cd, lm.altEntry); ok {
			lm.regEntry = entry
			counters.regBodies.Add(1)
		}
	}
}

// regJumpTarget returns the jump-target operand of a register op, or -1.
// All register jumps keep the target in a.
func isRegJump(op opcode) bool {
	switch op {
	case opRJmp, opRJZ, opRAndJmp, opROrJmp,
		opRJEQ, opRJNE, opRJLT, opRJLE, opRJGT, opRJGE,
		opRLPJGT, opRLPJLE, opRSpecJGTP, opRSpecJLEP:
		return true
	}
	return false
}

// regLowerBody translates the stack-form alt body starting at `start` into
// register form and appends it to cd.ins, returning the entry pc. The body
// extends to its opLoopNextHead back edge (the first loop-next op — alt
// bodies have no nested loops).
func regLowerBody(cd *code, start int32) (int32, bool) {
	// 1. Find the terminating back edge.
	end := int32(-1)
	for pc := start; int(pc) < len(cd.ins); pc++ {
		if op := cd.ins[pc].op; op == opLoopNextHead || op == opLoopNext {
			if op != opLoopNextHead {
				return -1, false // unfused back edge: keep the stack body
			}
			end = pc
			break
		}
	}
	if end < 0 {
		return -1, false
	}
	n := int(end - start)

	// 2. Linear depth walk + 1:1 translation. depth[k] is the stack depth
	// before local instruction k; targetDepth pins the depth at every jump
	// target so inconsistent paths (which cannot happen for code our
	// compiler emits, but cost nothing to verify) bail out.
	body := make([]instr, 0, n+1)
	targetDepth := make(map[int32]int32, 4)
	depth := int32(0)
	known := true
	for k := int32(0); k < int32(n); k++ {
		if td, ok := targetDepth[k]; ok {
			if known && depth != td {
				return -1, false
			}
			depth, known = td, true
		} else if !known {
			return -1, false // unreachable tail (after opJmp, not a target)
		}
		src := cd.ins[start+k]
		ri, fall, taken, target, ok := regTranslate(cd, src, depth)
		if !ok {
			return -1, false
		}
		if target >= 0 {
			// Jump targets are local to the body; the back edge slot n is a
			// valid target (end of an IF arm).
			lt := target - start
			if lt <= k || lt > int32(n) {
				return -1, false
			}
			ri.a = lt // local until the append below
			td := depth + taken
			if prev, ok := targetDepth[lt]; ok && prev != td {
				return -1, false
			}
			targetDepth[lt] = td
			if lt == int32(n) && td != 0 {
				return -1, false
			}
		}
		if depth < 0 || int(depth) >= rLimit {
			return -1, false
		}
		depth += fall
		if src.op == opRJmp || ri.op == opRJmp {
			known = false
		}
		body = append(body, ri)
	}
	if td, ok := targetDepth[int32(n)]; ok && td != 0 {
		return -1, false
	}
	if known && depth != 0 {
		return -1, false // body must end at a statement boundary
	}

	body = regPeephole(body, int32(n))

	// 3. Append: rewrite local jump targets to absolute pcs, then copy the
	// stack body's back edge verbatim as the terminator (same head/exit
	// pcs, same tick), so the runner's exit paths mirror opLoopNextHead.
	entry := int32(len(cd.ins))
	term := entry + int32(len(body))
	for k := range body {
		if isRegJump(body[k].op) {
			if body[k].a == int32(len(body)) {
				body[k].a = term
			} else {
				body[k].a += entry
			}
		}
		cd.ins = append(cd.ins, body[k])
		cd.stmtOf = append(cd.stmtOf, cd.stmtOf[start+regSrcOf(body, k)])
	}
	cd.ins = append(cd.ins, cd.ins[end])
	cd.stmtOf = append(cd.stmtOf, cd.stmtOf[end])
	return entry, true
}

// regSrcOf maps a post-peephole body index to a source offset for stmtOf
// attribution. Exact attribution does not matter (register ops are never
// instrumented and never fault with per-statement state); clamping to the
// body is enough.
func regSrcOf(body []instr, k int) int32 {
	if k < len(body) {
		return int32(k)
	}
	return int32(len(body) - 1)
}

// regTranslate produces the register twin of one stack instruction given
// the stack depth d before it. Returns the translated instruction, the
// fall-through and taken stack effects, the absolute jump target (-1 for
// non-jumps), and whether the opcode is supported.
func regTranslate(cd *code, i instr, d int32) (ri instr, fall, taken int32, target int32, ok bool) {
	ri = instr{op: i.op, tick: i.tick, a: i.a, b: i.b, f: i.f}
	target = -1
	ok = true
	switch i.op {
	case opNop:
		// kept verbatim (tick padding)
	case opConst:
		ri.op, ri.b = opRConst, d
		fall = 1
	case opLoadG:
		ri.op, ri.b = opRLoadG, d
		fall = 1
	case opLoadP:
		ri.op, ri.b = opRLoadP, d
		fall = 1
	case opStoreG:
		ri.op, ri.b = opRStoreG, d-1
		fall = -1
	case opStoreP:
		ri.op, ri.b = opRStoreP, d-1
		fall = -1
	case opNeg:
		ri.op, ri.b = opRNeg, d-1
	case opNot:
		ri.op, ri.b = opRNot, d-1
	case opBool:
		ri.op, ri.b = opRBool, d-1
	case opAdd, opSub, opMul, opEQ, opNE, opLT, opLE, opGT, opGE:
		ri.op = opRAdd + (i.op - opAdd)
		ri.b = rPack(d-2, d-2, d-1)
		fall = -1
	case opDiv:
		ri.op = opRDiv
		ri.b = rPack(d-2, d-2, d-1)
		fall = -1
	case opIntrin:
		if i.b >= rLimit || d-i.b < 0 {
			return ri, 0, 0, -1, false
		}
		if i.a == inABS && i.b == 1 {
			// Single-arg ABS is total (never faults), so it open-codes
			// in place instead of going through the intrinsic table.
			ri.op, ri.b = opRAbs, d-1
			break
		}
		ri.op = opRIntrin
		ri.b = i.b | (d-i.b)<<rBits
		fall = -(i.b - 1)
	case opJmp:
		ri.op = opRJmp
		target = i.a
	case opJZ:
		ri.op, ri.b = opRJZ, d-1
		fall, taken = -1, -1
		target = i.a
	case opAndJmp:
		ri.op, ri.b = opRAndJmp, d-1
		fall, taken = -1, 0
		target = i.a
	case opOrJmp:
		ri.op, ri.b = opROrJmp, d-1
		fall, taken = -1, 0
		target = i.a
	case opJEQ, opJNE, opJLT, opJLE, opJGT, opJGE:
		ri.op = opRJEQ + (i.op - opJEQ)
		ri.b = rPack(d-2, d-1, 0)
		fall, taken = -2, -2
		target = i.a
	case opIdx:
		ri.op, ri.b = opRIdx, d-1
	case opIdxAdd:
		ri.op, ri.b = opRIdxAdd, rPack(d-2, d-1, 0)
		fall = -1
	case opLoadGE:
		ri.op, ri.b = opRLoadGE, d-1
	case opLoadPE:
		ri.op, ri.b = opRLoadPE, d-1
	case opStoreGE:
		ri.op, ri.b = opRStoreGE, rPack(d-2, d-1, 0)
		fall = -2
	case opStorePE:
		ri.op, ri.b = opRStorePE, rPack(d-2, d-1, 0)
		fall = -2
	case opSpecLoadG:
		ri.op, ri.a = opRSpecLoadG, d
		fall = 1
	case opSpecStoreG:
		ri.op, ri.a = opRSpecStoreG, d-1
		fall = -1
	case opSpecLoadP:
		ri.op, ri.a = opRSpecLoadP, d
		fall = 1
	case opSpecStoreP:
		ri.op, ri.a = opRSpecStoreP, d-1
		fall = -1
	case opLGIdxLoadGE:
		ri.op, ri.f = opRLGIdxLoadGE, float64(d)
		fall = 1
	case opLGIdxLoadPE:
		ri.op, ri.f = opRLGIdxLoadPE, float64(d)
		fall = 1
	case opLGIdxStoreGE:
		ri.op, ri.f = opRLGIdxStoreGE, float64(d-1)
		fall = -1
	case opLGIdxStorePE:
		ri.op, ri.f = opRLGIdxStorePE, float64(d-1)
		fall = -1
	case opIdxAddLoadGE:
		ri.op, ri.f = opRIdxAddLoadGE, float64(rPack(d-2, d-1, 0))
		fall = -1
	case opIdxAddLoadPE:
		ri.op, ri.f = opRIdxAddLoadPE, float64(rPack(d-2, d-1, 0))
		fall = -1
	case opIdxAddStoreGE:
		ri.op, ri.f = opRIdxAddStoreGE, float64(rPack(d-3, d-2, d-1))
		fall = -3
	case opIdxAddStorePE:
		ri.op, ri.f = opRIdxAddStorePE, float64(rPack(d-3, d-2, d-1))
		fall = -3
	case opLGIdx:
		ri.op, ri.f = opRLGIdx, float64(d)
		fall = 1
	case opLGIdxAdd:
		ri.op, ri.f = opRLGIdxAdd, float64(d-1)
	case opLPIdx:
		ri.op, ri.f = opRLPIdx, float64(d)
		fall = 1
	case opLPIdxAdd:
		ri.op, ri.f = opRLPIdxAdd, float64(d-1)
	case opLPIdxLoadGE:
		ri.op, ri.f = opRLPIdxLoadGE, float64(d)
		fall = 1
	case opLPIdxLoadPE:
		ri.op, ri.f = opRLPIdxLoadPE, float64(d)
		fall = 1
	case opLPIdxStoreGE:
		ri.op, ri.f = opRLPIdxStoreGE, float64(d-1)
		fall = -1
	case opLPIdxStorePE:
		ri.op, ri.f = opRLPIdxStorePE, float64(d-1)
		fall = -1
	case opLLAdd, opLLSub, opLLMul:
		ri.op = opRLLAdd + (i.op - opLLAdd)
		ri.f = float64(d)
		fall = 1
	case opLCAdd, opLCSub, opLCMul:
		ri.op = opRLCAdd + (i.op - opLCAdd)
		ri.b = d
		fall = 1
	case opLCMulAdd:
		ri.op, ri.b = opRLCMulAdd, d-1
	case opLPJGT, opLPJLE:
		if i.b >= rLimit {
			return ri, 0, 0, -1, false
		}
		ri.op = opRLPJGT + (i.op - opLPJGT)
		ri.b = i.b | (d-1)<<rBits
		fall, taken = -1, -1
		target = i.a
	case opLCIdx:
		if i.b >= 1<<(2*rBits) {
			return ri, 0, 0, -1, false
		}
		ri.op = opRLCIdx
		ri.b = i.b | d<<(2*rBits)
		fall = 1
	case opLCAddStoreG:
		// No stack traffic: kept verbatim; the runner dispatches it too.
	case opConstAddStoreG:
		ri.op, ri.b = opRConstAddStoreG, d-1
		fall = -1
	case opLoadGEAdd, opLoadGESub, opLoadGEMul:
		ri.op = opRLoadGEAdd + (i.op - opLoadGEAdd)
		ri.b = rPack(d-2, d-1, 0)
		fall = -1
	default:
		// Calls, IO, loop machinery, instrumented twins, opErr, and the
		// param-indexed fusion family have no register twin.
		return ri, 0, 0, -1, false
	}
	return ri, fall, taken, target, ok
}

// regPeephole collapses register def-use chains within the translated body.
// Windows never cross a jump target; ticks are summed (skipping any window
// that would overflow the tick byte), so virtual-time totals observed at
// loop events are unchanged, and budget-check placement follows the fused
// head of each window exactly as the stack peephole's does. Passes repeat
// to a fixpoint so that one pass's products (e.g. opRSpecJGTP) can seed
// the next pass's windows.
func regPeephole(body []instr, nTargets int32) []instr {
	_ = nTargets
	for {
		next := regPeepholePass(body)
		if len(next) == len(body) {
			return next
		}
		body = next
	}
}

func regPeepholePass(body []instr) []instr {
	isTarget := make([]bool, len(body)+1)
	for k := range body {
		if isRegJump(body[k].op) {
			isTarget[body[k].a] = true
		}
	}
	out := make([]instr, 0, len(body))
	oldToNew := make([]int32, len(body)+1)
	for k := 0; k < len(body); {
		oldToNew[k] = int32(len(out))
		i := body[k]
		// Triple: opRLoadG x / opRLCMulAdd x / opRStoreG x over one cell
		// becomes a single memory axpy (mem[a] += mem[b]*f). The register is
		// dead after the store (depth dropped below it).
		if i.op == opRLoadG && k+2 < len(body) && !isTarget[k+1] && !isTarget[k+2] {
			m, s := body[k+1], body[k+2]
			if m.op == opRLCMulAdd && s.op == opRStoreG &&
				m.b == i.b && s.b == i.b && s.a == i.a &&
				int(i.tick)+int(m.tick)+int(s.tick) <= 255 {
				out = append(out, instr{
					op: opRMemAxpy, tick: i.tick + m.tick + s.tick,
					a: i.a, b: m.a, f: m.f,
				})
				oldToNew[k+1], oldToNew[k+2] = int32(len(out))-1, int32(len(out))-1
				k += 3
				continue
			}
		}
		// Pair: a constant feeding one binop operand (s2) folds into the
		// binop when the constant's slot dies with it (dst and s1 both
		// below the constant slot).
		if i.op == opRConst && k+1 < len(body) && !isTarget[k+1] {
			n := body[k+1]
			cs := i.b
			if n.op == opRAdd || n.op == opRSub || n.op == opRMul {
				dst, s1, s2 := n.b&rMask, n.b>>rBits&rMask, n.b>>(2*rBits)&rMask
				if s2 == cs && dst < cs && s1 < cs && int(i.tick)+int(n.tick) <= 255 {
					fused := opRAddC
					if n.op == opRSub {
						fused = opRSubC
					} else if n.op == opRMul {
						fused = opRMulC
					}
					out = append(out, instr{
						op: fused, tick: i.tick + n.tick,
						b: dst | s1<<rBits, f: i.f,
					})
					oldToNew[k+1] = int32(len(out)) - 1
					k += 2
					continue
				}
			}
			if n.op == opRSpecStoreG && n.a == cs && int(i.tick)+int(n.tick) <= 255 {
				out = append(out, instr{
					op: opRSpecStoreC, tick: i.tick + n.tick,
					b: n.b, f: i.f,
				})
				oldToNew[k+1] = int32(len(out)) - 1
				k += 2
				continue
			}
		}
		// Pair: specialized load feeding a compare-against-param jump. The
		// loaded register is the jump's popped operand and is dead after.
		if i.op == opRSpecLoadG && k+1 < len(body) && !isTarget[k+1] {
			j := body[k+1]
			if (j.op == opRLPJGT || j.op == opRLPJLE) &&
				j.b>>rBits == i.a && int(i.tick)+int(j.tick) <= 255 {
				fused := opRSpecJGTP
				if j.op == opRLPJLE {
					fused = opRSpecJLEP
				}
				out = append(out, instr{
					op: fused, tick: i.tick + j.tick,
					a: j.a, b: j.b & rMask, f: float64(i.b),
				})
				oldToNew[k+1] = int32(len(out)) - 1
				k += 2
				continue
			}
		}
		// Pair: a param-held index computation feeding the offset operand of
		// an accumulating element load. The offset register is the index op's
		// destination and dies with the load (acc sits below it).
		if i.op == opRLPIdx && k+1 < len(body) && !isTarget[k+1] {
			n := body[k+1]
			if n.op == opRLoadGEAdd || n.op == opRLoadGESub || n.op == opRLoadGEMul {
				dst := int32(i.f)
				acc, off := n.b&rMask, n.b>>rBits&rMask
				if off == dst && acc < dst && i.b < 1<<(2*rBits) && i.a < rLimit &&
					int(i.tick)+int(n.tick) <= 255 {
					out = append(out, instr{
						op: opRLPIdxLoadGEAdd + (n.op - opRLoadGEAdd), tick: i.tick + n.tick,
						a: n.a, b: i.b | i.a<<(2*rBits), f: float64(acc),
					})
					oldToNew[k+1] = int32(len(out)) - 1
					k += 2
					continue
				}
			}
		}
		// Pair: scalar multiply-accumulate whose register is immediately
		// stored through the specialized index. The register keeps its value
		// (the store only reads it), so later uses still see it.
		if i.op == opRLCMulAdd && k+1 < len(body) && !isTarget[k+1] {
			n := body[k+1]
			if n.op == opRSpecStoreG && n.a == i.b && n.b < 1<<(2*rBits+1) &&
				int(i.tick)+int(n.tick) <= 255 {
				out = append(out, instr{
					op: opRLCMulAddSpecStore, tick: i.tick + n.tick,
					a: i.a, b: i.b | n.b<<rBits, f: i.f,
				})
				oldToNew[k+1] = int32(len(out)) - 1
				k += 2
				continue
			}
		}
		// Pair: a specialized compare-jump whose taken edge skips exactly one
		// mem[x] += 1 executes the increment itself. The increment's tick is
		// packed beside the idx id and charged only on the taken path, so
		// virtual time matches the branchy form on both paths.
		if (i.op == opRSpecJGTP || i.op == opRSpecJLEP) && k+1 < len(body) && !isTarget[k+1] {
			n := body[k+1]
			if n.op == opLCAddStoreG && n.a == n.b && n.f == 1 &&
				i.a == int32(k+2) && int32(i.f) < 1<<(2*rBits) {
				fused := opRSpecJGTPInc
				if i.op == opRSpecJLEP {
					fused = opRSpecJLEPInc
				}
				out = append(out, instr{
					op: fused, tick: i.tick,
					a: n.a, b: i.b, f: float64(int32(i.f) | int32(n.tick)<<(2*rBits)),
				})
				oldToNew[k+1] = int32(len(out)) - 1
				k += 2
				continue
			}
		}
		out = append(out, i)
		k++
	}
	oldToNew[len(body)] = int32(len(out))
	for k := range out {
		if isRegJump(out[k].op) {
			out[k].a = oldToNew[out[k].a]
		}
	}
	return out
}
