package exec_test

// Tier-transition tests for the tiered engine (fusion + profile-guided
// specialization): a loop crossing the invocation threshold mid-run, the
// sampled DDA re-arming instrumentation after a stripped iteration, a
// specialized program invalidated through driver.Incremental, and the
// block-boundary budget-check contract. Every transition must stay
// bit-identical to the tree-walker.

import (
	"bytes"
	"fmt"
	"testing"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/minif"
)

// specSrc has one specializable loop (loop 10: 1-D accesses indexed by the
// loop variable, scalar-only stores otherwise) invoked six times — past the
// specialization threshold — plus a once-invoked loop that never qualifies
// for arming by count.
const specSrc = `
      PROGRAM spc
      REAL a(100), s
      INTEGER i, j
      DO 20 j = 1, 6
        DO 10 i = 1, 100
          a(i) = a(i) + j * 0.5
10      CONTINUE
20    CONTINUE
      s = 0.0
      DO 30 i = 1, 100
        s = s + a(i)
30    CONTINUE
      WRITE(*,*) s
      END
`

// TestTierThresholdCrossing runs a program whose inner loop crosses the
// specialization threshold mid-run and checks the specialized invocations
// actually happened (counter delta) while every observable matches the
// tree-walker bit-for-bit.
func TestTierThresholdCrossing(t *testing.T) {
	before := exec.ReadCounters()
	diffBoth(t, "threshold", "spc", specSrc, runConfig{profile: true})
	after := exec.ReadCounters()
	if d := after.SpecInvocations - before.SpecInvocations; d < 1 {
		t.Fatalf("expected specialized invocations after threshold crossing, counter delta = %d", d)
	}
	if d := after.TieredRuns - before.TieredRuns; d < 1 {
		t.Fatalf("expected tiered runs, counter delta = %d", d)
	}
	if d := after.FusedInstructions - before.FusedInstructions; d < 1 {
		t.Fatalf("expected fused instructions in tiered compile, counter delta = %d", d)
	}
}

// TestTierStripRearm runs the same program under iteration-sampled DDA:
// unsampled iterations of the armed loop execute the stripped specialized
// body, sampled iterations re-arm instrumentation and run the generic
// instrumented body. Access counts, carried distances, and everything else
// must equal the tree-walker's.
func TestTierStripRearm(t *testing.T) {
	before := exec.ReadCounters()
	diffBoth(t, "strip", "spc", specSrc,
		runConfig{profile: true, instrument: true, sampleEvery: 3, sampleWarm: 2})
	after := exec.ReadCounters()
	if d := after.StripIterations - before.StripIterations; d < 1 {
		t.Fatalf("expected stripped iterations under sampled DDA, counter delta = %d", d)
	}

	// Fully-sampled DDA must never strip: every iteration is observed.
	before = exec.ReadCounters()
	diffBoth(t, "full", "spc", specSrc, runConfig{profile: true, instrument: true})
	after = exec.ReadCounters()
	if d := after.StripIterations - before.StripIterations; d != 0 {
		t.Fatalf("fully-sampled DDA stripped %d iterations; want 0", d)
	}
}

// TestTierIncrementalInvalidation checks that driver.Incremental
// invalidation drops the compiled-code cache: the specialized/fused code is
// rebuilt on the next run, and results stay identical across the rebuild.
func TestTierIncrementalInvalidation(t *testing.T) {
	prog, err := minif.Parse("spc", specSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	run := func() (string, int64) {
		in := exec.New(prog)
		in.Mode = exec.ModeTiered
		var out bytes.Buffer
		in.Out = &out
		if err := in.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String(), in.Ops()
	}

	out1, ops1 := run()
	// Warm cache: a second run must not recompile.
	before := exec.ReadCounters()
	out2, ops2 := run()
	if d := exec.ReadCounters().CompiledPrograms - before.CompiledPrograms; d != 0 {
		t.Fatalf("warm run recompiled %d programs; want 0", d)
	}

	// Invalidating any procedure through the incremental driver drops the
	// exec cache; the next run recompiles from current IR.
	inc := driver.NewIncremental(prog, driver.Options{})
	inc.Analyze()
	if n := inc.Invalidate(prog.Procs[0].Name); n < 1 {
		t.Fatalf("Invalidate dirtied %d procs; want >= 1", n)
	}
	before = exec.ReadCounters()
	out3, ops3 := run()
	if d := exec.ReadCounters().CompiledPrograms - before.CompiledPrograms; d < 1 {
		t.Fatalf("post-invalidation run recompiled %d programs; want >= 1", d)
	}
	if out1 != out2 || out2 != out3 {
		t.Fatalf("output changed across invalidation: %q / %q / %q", out1, out2, out3)
	}
	if ops1 != ops2 || ops2 != ops3 {
		t.Fatalf("ops changed across invalidation: %d / %d / %d", ops1, ops2, ops3)
	}
}

// TestBudgetBlockBoundary pins the budget-check hoist contract: for a sweep
// of budgets, all three engines agree on error presence and exact error
// text, and the VMs stop within one basic block of the tree-walker's
// trigger point (bounded op-count overshoot).
func TestBudgetBlockBoundary(t *testing.T) {
	const src = `
      PROGRAM bdg
      REAL s
      INTEGER i
      DO 10 i = 1, 100000
        s = s + i * 2.0
10    CONTINUE
      WRITE(*,*) s
      END
`
	// One iteration of the loop is a handful of instructions; 64 ops is a
	// generous bound on a single basic block here.
	const blockBound = 64
	for _, maxOps := range []int64{100, 777, 1000, 4999, 50000} {
		label := fmt.Sprintf("maxops=%d", maxOps)
		cfg := runConfig{maxOps: maxOps}
		tree := runEngine(t, "bdg", src, exec.ModeTree, cfg)
		for _, mode := range []exec.ExecMode{exec.ModeBytecode, exec.ModeTiered, exec.ModeRegister} {
			vm := runEngine(t, "bdg", src, mode, cfg)
			if (tree.err == "") != (vm.err == "") {
				t.Fatalf("%s/%s: error presence differs: tree %q vs vm %q", label, mode, tree.err, vm.err)
			}
			if tree.err != vm.err {
				t.Fatalf("%s/%s: error text differs: tree %q vs vm %q", label, mode, tree.err, vm.err)
			}
			if tree.output != vm.output {
				t.Fatalf("%s/%s: output differs: %q vs %q", label, mode, tree.output, vm.output)
			}
			if d := vm.ops - tree.ops; d < -blockBound || d > blockBound {
				t.Fatalf("%s/%s: budget trigger drifted %d ops past the tree-walker (bound %d)",
					label, mode, d, blockBound)
			}
		}
	}
}
