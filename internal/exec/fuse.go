package exec

import "suifx/internal/ir"

// The superinstruction fusion pass (tiered engine, DESIGN.md "Tiered
// execution"). A post-lowering peephole over the whole instruction stream
// fuses the opcode pairs and triples that dominate dynamic traces
// (FusionCensus over the parallel workloads, the Nanz suite, and the corpus
// ladder) into single fused opcodes with precomputed operand addresses.
//
// A window of 2-3 consecutive instructions may fuse only when
//   - no interior instruction is a jump target (control lands only on the
//     window head, which executes the whole window),
//   - every instruction came from the same source statement (so the DDA's
//     per-pc Skip decision and fault-time source attribution are uniform
//     across the window), and
//   - the summed virtual-time ticks fit the instruction's tick field.
// The summed tick preserves op totals exactly at every loop event; fault
// checks inside fused ops keep their idx-table source lines.

// fuseCode rewrites cd in place, running the peephole to fixpoint: pairs
// whose head is itself a fused op (opLPIdx+opLoadGE, opLCMul+opAdd)
// collapse on later rounds. Each round fuses windows, then remaps every
// pc-valued operand (jumps, loop heads/backedges, call entries, alt
// entries) through the old→new pc map.
func fuseCode(cd *code) *code {
	for fuseOnce(cd) {
	}
	fuseBackEdges(cd)
	return cd
}

// fuseBackEdges rewrites every opLoopNext whose target is an opLoopHead
// into the combined opLoopNextHead, merging the two hottest dispatches in
// every loop trace (the census's top singles) into one. The rewrite is
// 1:1 — no instruction moves, so no pc remapping — and runs after the
// peephole fixpoint, which never fuses the head itself (it is always a
// jump target). The head stays in place for initial entry from
// opLoopInit; only back edges take the fused path.
func fuseBackEdges(cd *code) {
	fused := int64(0)
	for i := range cd.ins {
		in := &cd.ins[i]
		if in.op != opLoopNext {
			continue
		}
		head := &cd.ins[in.a]
		if head.op != opLoopHead {
			continue
		}
		t := int(in.tick) + int(head.tick)
		if t > 255 {
			continue
		}
		in.op, in.tick, in.b = opLoopNextHead, uint8(t), head.b
		fused++
	}
	counters.fusedInstructions.Add(fused)
}

// fuseOnce is one rewrite round; it reports whether anything fused.
func fuseOnce(cd *code) bool {
	n := len(cd.ins)
	target := make([]bool, n+1)
	mark := func(pc int32) {
		if pc >= 0 && int(pc) <= n {
			target[pc] = true
		}
	}
	mark(cd.entry)
	for i := range cd.ins {
		switch in := &cd.ins[i]; in.op {
		case opJmp, opJZ, opAndJmp, opOrJmp, opLoopNext,
			opJEQ, opJNE, opJLT, opJLE, opJGT, opJGE,
			opLPJGT, opLPJLE, opLPJGTI, opLPJLEI:
			mark(in.a)
		case opLoopHead:
			mark(in.b)
		}
	}
	for i := range cd.calls {
		mark(cd.calls[i].entry)
	}
	for i := range cd.loops {
		if cd.loops[i].altEntry >= 0 {
			mark(cd.loops[i].altEntry)
		}
	}

	newIns := make([]instr, 0, n)
	newStmt := make([]ir.Stmt, 0, n)
	oldToNew := make([]int32, n+1)
	pc := 0
	for pc < n {
		w := 0
		var f instr
		// Triples before pairs, greedy left to right.
		if pc+2 < n && !target[pc+1] && !target[pc+2] &&
			cd.stmtOf[pc] == cd.stmtOf[pc+1] && cd.stmtOf[pc] == cd.stmtOf[pc+2] {
			if fi, ok := fuse3(cd, &cd.ins[pc], &cd.ins[pc+1], &cd.ins[pc+2]); ok {
				f, w = fi, 3
			}
		}
		if w == 0 && pc+1 < n && !target[pc+1] && cd.stmtOf[pc] == cd.stmtOf[pc+1] {
			if fi, ok := fuse2(cd, &cd.ins[pc], &cd.ins[pc+1]); ok {
				f, w = fi, 2
			}
		}
		if w == 0 {
			oldToNew[pc] = int32(len(newIns))
			newIns = append(newIns, cd.ins[pc])
			newStmt = append(newStmt, cd.stmtOf[pc])
			pc++
			continue
		}
		np := int32(len(newIns))
		for k := 0; k < w; k++ {
			oldToNew[pc+k] = np
		}
		newIns = append(newIns, f)
		newStmt = append(newStmt, cd.stmtOf[pc])
		pc += w
	}
	oldToNew[n] = int32(len(newIns))

	for i := range newIns {
		switch in := &newIns[i]; in.op {
		case opJmp, opJZ, opAndJmp, opOrJmp, opLoopNext,
			opJEQ, opJNE, opJLT, opJLE, opJGT, opJGE,
			opLPJGT, opLPJLE, opLPJGTI, opLPJLEI:
			in.a = oldToNew[in.a]
		case opLoopHead:
			in.b = oldToNew[in.b]
		}
	}
	cd.entry = oldToNew[cd.entry]
	for i := range cd.calls {
		cd.calls[i].entry = oldToNew[cd.calls[i].entry]
	}
	for i := range cd.loops {
		if cd.loops[i].altEntry >= 0 {
			cd.loops[i].altEntry = oldToNew[cd.loops[i].altEntry]
		}
	}
	counters.fusedInstructions.Add(int64(n - len(newIns)))
	cd.ins = newIns
	cd.stmtOf = newStmt
	return len(newIns) < n
}

// fuse3 matches three-instruction windows. Full 1-D accesses fold the
// loop-invariant part of the address (array base - lo*stride) into the
// window's idx entry — safe because each idx entry belongs to exactly one
// emission site.
func fuse3(cd *code, a, b, c *instr) (instr, bool) {
	t := int(a.tick) + int(b.tick) + int(c.tick)
	if t > 255 {
		return instr{}, false
	}
	mk := func(op opcode, fa, fb int32, ff float64) (instr, bool) {
		return instr{op: op, tick: uint8(t), a: fa, b: fb, f: ff}, true
	}
	switch {
	case a.op == opLoadG && b.op == opIdx:
		d := &cd.idx[b.a]
		switch c.op {
		case opLoadGE:
			d.base = int64(c.a) - d.lo*d.stride
			return mk(opLGIdxLoadGE, a.a, b.a, 0)
		case opLoadPE:
			d.base, d.pslot = -d.lo*d.stride, c.a
			return mk(opLGIdxLoadPE, a.a, b.a, 0)
		case opStoreGE:
			d.base = int64(c.a) - d.lo*d.stride
			return mk(opLGIdxStoreGE, a.a, b.a, 0)
		case opStorePE:
			d.base, d.pslot = -d.lo*d.stride, c.a
			return mk(opLGIdxStorePE, a.a, b.a, 0)
		}
	case a.op == opLoadGI && b.op == opIdx:
		d := &cd.idx[b.a]
		switch c.op {
		case opLoadGEI:
			d.base = int64(c.a) - d.lo*d.stride
			return mk(opLGIdxLoadGEI, a.a, b.a, 0)
		case opLoadPEI:
			d.base, d.pslot = -d.lo*d.stride, c.a
			return mk(opLGIdxLoadPEI, a.a, b.a, 0)
		case opStoreGEI:
			d.base = int64(c.a) - d.lo*d.stride
			return mk(opLGIdxStoreGEI, a.a, b.a, 0)
		case opStorePEI:
			d.base, d.pslot = -d.lo*d.stride, c.a
			return mk(opLGIdxStorePEI, a.a, b.a, 0)
		}
	case a.op == opConst && b.op == opAdd && c.op == opStoreG:
		return mk(opConstAddStoreG, c.a, 0, a.f)
	case a.op == opConst && b.op == opAdd && c.op == opStoreGI:
		return mk(opConstAddStoreGI, c.a, 0, a.f)
	case a.op == opLoadG && b.op == opLoadG:
		switch c.op {
		case opAdd:
			return mk(opLLAdd, a.a, b.a, 0)
		case opSub:
			return mk(opLLSub, a.a, b.a, 0)
		case opMul:
			return mk(opLLMul, a.a, b.a, 0)
		}
	case a.op == opLoadGI && b.op == opLoadGI:
		switch c.op {
		case opAdd:
			return mk(opLLAddI, a.a, b.a, 0)
		case opSub:
			return mk(opLLSubI, a.a, b.a, 0)
		case opMul:
			return mk(opLLMulI, a.a, b.a, 0)
		}
	case a.op == opLoadG && b.op == opConst:
		switch c.op {
		case opAdd:
			return mk(opLCAdd, a.a, 0, b.f)
		case opSub:
			return mk(opLCSub, a.a, 0, b.f)
		case opMul:
			return mk(opLCMul, a.a, 0, b.f)
		}
	case a.op == opLoadGI && b.op == opConst:
		switch c.op {
		case opAdd:
			return mk(opLCAddI, a.a, 0, b.f)
		case opSub:
			return mk(opLCSubI, a.a, 0, b.f)
		case opMul:
			return mk(opLCMulI, a.a, 0, b.f)
		}
	}
	return instr{}, false
}

// fuse2 matches two-instruction windows, including second-round pairs whose
// head is itself a fused op.
func fuse2(cd *code, a, b *instr) (instr, bool) {
	t := int(a.tick) + int(b.tick)
	if t > 255 {
		return instr{}, false
	}
	mk := func(op opcode, fa, fb int32, ff float64) (instr, bool) {
		return instr{op: op, tick: uint8(t), a: fa, b: fb, f: ff}, true
	}
	switch a.op {
	case opLPIdx:
		d := &cd.idx[a.b]
		switch b.op {
		case opLoadGE:
			d.base = int64(b.a) - d.lo*d.stride
			return mk(opLPIdxLoadGE, a.a, a.b, 0)
		case opLoadPE:
			d.base, d.pslot = -d.lo*d.stride, b.a
			return mk(opLPIdxLoadPE, a.a, a.b, 0)
		case opStoreGE:
			d.base = int64(b.a) - d.lo*d.stride
			return mk(opLPIdxStoreGE, a.a, a.b, 0)
		case opStorePE:
			d.base, d.pslot = -d.lo*d.stride, b.a
			return mk(opLPIdxStorePE, a.a, a.b, 0)
		}
	case opLPIdxI:
		d := &cd.idx[a.b]
		switch b.op {
		case opLoadGEI:
			d.base = int64(b.a) - d.lo*d.stride
			return mk(opLPIdxLoadGEI, a.a, a.b, 0)
		case opLoadPEI:
			d.base, d.pslot = -d.lo*d.stride, b.a
			return mk(opLPIdxLoadPEI, a.a, a.b, 0)
		case opStoreGEI:
			d.base = int64(b.a) - d.lo*d.stride
			return mk(opLPIdxStoreGEI, a.a, a.b, 0)
		case opStorePEI:
			d.base, d.pslot = -d.lo*d.stride, b.a
			return mk(opLPIdxStorePEI, a.a, a.b, 0)
		}
	case opLoadGE:
		switch b.op {
		case opAdd:
			return mk(opLoadGEAdd, a.a, 0, 0)
		case opSub:
			return mk(opLoadGESub, a.a, 0, 0)
		case opMul:
			return mk(opLoadGEMul, a.a, 0, 0)
		}
	case opLoadGEI:
		switch b.op {
		case opAdd:
			return mk(opLoadGEAddI, a.a, 0, 0)
		case opSub:
			return mk(opLoadGESubI, a.a, 0, 0)
		case opMul:
			return mk(opLoadGEMulI, a.a, 0, 0)
		}
	case opLCMul:
		if b.op == opAdd {
			return mk(opLCMulAdd, a.a, 0, a.f)
		}
	case opLCMulI:
		if b.op == opAdd {
			return mk(opLCMulAddI, a.a, 0, a.f)
		}
	case opLCAdd:
		switch b.op {
		case opIdx:
			return mk(opLCIdx, a.a, b.a, a.f)
		case opStoreG:
			return mk(opLCAddStoreG, a.a, b.a, a.f)
		}
	case opLCAddI:
		switch b.op {
		case opIdx:
			return mk(opLCIdxI, a.a, b.a, a.f)
		case opStoreGI:
			return mk(opLCAddStoreGI, a.a, b.a, a.f)
		}
	case opLoadG:
		switch b.op {
		case opIdx:
			return mk(opLGIdx, a.a, b.a, 0)
		case opIdxAdd:
			return mk(opLGIdxAdd, a.a, b.a, 0)
		}
	case opLoadGI:
		switch b.op {
		case opIdx:
			return mk(opLGIdxI, a.a, b.a, 0)
		case opIdxAdd:
			return mk(opLGIdxAddI, a.a, b.a, 0)
		}
	case opLoadP:
		switch b.op {
		case opIdx:
			return mk(opLPIdx, a.a, b.a, 0)
		case opIdxAdd:
			return mk(opLPIdxAdd, a.a, b.a, 0)
		case opJGT:
			return mk(opLPJGT, b.a, a.a, 0)
		case opJLE:
			return mk(opLPJLE, b.a, a.a, 0)
		}
	case opLoadPI:
		switch b.op {
		case opIdx:
			return mk(opLPIdxI, a.a, b.a, 0)
		case opIdxAdd:
			return mk(opLPIdxAddI, a.a, b.a, 0)
		case opJGT:
			return mk(opLPJGTI, b.a, a.a, 0)
		case opJLE:
			return mk(opLPJLEI, b.a, a.a, 0)
		}
	case opIdxAdd:
		switch b.op {
		case opLoadGE:
			return mk(opIdxAddLoadGE, b.a, a.a, 0)
		case opLoadPE:
			return mk(opIdxAddLoadPE, b.a, a.a, 0)
		case opStoreGE:
			return mk(opIdxAddStoreGE, b.a, a.a, 0)
		case opStorePE:
			return mk(opIdxAddStorePE, b.a, a.a, 0)
		case opLoadGEI:
			return mk(opIdxAddLoadGEI, b.a, a.a, 0)
		case opLoadPEI:
			return mk(opIdxAddLoadPEI, b.a, a.a, 0)
		case opStoreGEI:
			return mk(opIdxAddStoreGEI, b.a, a.a, 0)
		case opStorePEI:
			return mk(opIdxAddStorePEI, b.a, a.a, 0)
		}
	case opEQ:
		if b.op == opJZ {
			return mk(opJEQ, b.a, 0, 0)
		}
	case opNE:
		if b.op == opJZ {
			return mk(opJNE, b.a, 0, 0)
		}
	case opLT:
		if b.op == opJZ {
			return mk(opJLT, b.a, 0, 0)
		}
	case opLE:
		if b.op == opJZ {
			return mk(opJLE, b.a, 0, 0)
		}
	case opGT:
		if b.op == opJZ {
			return mk(opJGT, b.a, 0, 0)
		}
	case opGE:
		if b.op == opJZ {
			return mk(opJGE, b.a, 0, 0)
		}
	}
	return instr{}, false
}
