package exec

import (
	"fmt"
	"io"
	"sort"

	"suifx/internal/ir"
)

// The fusion-pattern census: the measurement tool that chose the fused
// opcode set in fuse.go. It runs a program on the baseline bytecode engine
// with per-pc execution counting enabled and aggregates the dynamic
// frequency of every adjacent fusable pair and triple, so the
// superinstruction set is grounded in real traces (the parallel workloads,
// the Nanz suite, and the corpus ladder) instead of guesses.

// PatternCount is one adjacent opcode sequence and its dynamic frequency.
type PatternCount struct {
	Pattern string // e.g. "opIdxAdd+opLoadGE" or "opConst+opAdd+opStoreG"
	Count   int64  // executions of the window head
}

// FusionCensus executes prog once on the baseline (non-tiered, plain)
// bytecode engine and returns the dynamic pair/triple frequencies sorted
// by descending count. Windows starting at or crossing a control transfer
// are excluded, mirroring the fusion pass's window rule.
func FusionCensus(prog *ir.Program, out io.Writer) ([]PatternCount, error) {
	in := New(prog)
	in.Mode = ModeBytecode
	if out != nil {
		in.Out = out
	} else {
		in.Out = io.Discard
	}
	cd := loweredOf(prog).codeFor(prog, false, tierPlain)
	in.pcCount = make([]int64, len(cd.ins))
	if err := in.Run(); err != nil {
		return nil, err
	}
	counts := map[string]int64{}
	for pc := 0; pc+1 < len(cd.ins); pc++ {
		n := in.pcCount[pc]
		a, b := cd.ins[pc].op, cd.ins[pc+1].op
		if n == 0 || isControlTransfer(a) {
			continue
		}
		counts[opName(a)+"+"+opName(b)] += n
		if pc+2 < len(cd.ins) && !isControlTransfer(b) {
			counts[opName(a)+"+"+opName(b)+"+"+opName(cd.ins[pc+2].op)] += n
		}
	}
	res := make([]PatternCount, 0, len(counts))
	for p, n := range counts {
		res = append(res, PatternCount{Pattern: p, Count: n})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Count != res[j].Count {
			return res[i].Count > res[j].Count
		}
		return res[i].Pattern < res[j].Pattern
	})
	return res, nil
}

// isControlTransfer reports whether the instruction may leave the
// fall-through path, ending a fusion window.
func isControlTransfer(op opcode) bool {
	switch op {
	case opJmp, opJZ, opAndJmp, opOrJmp, opLoopInit, opLoopHead, opLoopNext,
		opLoopNextHead, opLPJGT, opLPJLE, opLPJGTI, opLPJLEI,
		opCall, opReturn, opErr,
		opRJmp, opRJZ, opRAndJmp, opROrJmp,
		opRJEQ, opRJNE, opRJLT, opRJLE, opRJGT, opRJGE,
		opRLPJGT, opRLPJLE, opRSpecJGTP, opRSpecJLEP:
		return true
	}
	return false
}

func opName(op opcode) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

var opNames = [opcodeCount]string{
	opNop: "opNop", opConst: "opConst", opLoadG: "opLoadG", opLoadP: "opLoadP",
	opIdx: "opIdx", opIdxAdd: "opIdxAdd", opLoadGE: "opLoadGE", opLoadPE: "opLoadPE",
	opStoreG: "opStoreG", opStoreP: "opStoreP", opStoreGE: "opStoreGE", opStorePE: "opStorePE",
	opLoadGI: "opLoadGI", opLoadPI: "opLoadPI", opLoadGEI: "opLoadGEI", opLoadPEI: "opLoadPEI",
	opStoreGI: "opStoreGI", opStorePI: "opStorePI", opStoreGEI: "opStoreGEI", opStorePEI: "opStorePEI",
	opNeg: "opNeg", opNot: "opNot", opBool: "opBool",
	opAdd: "opAdd", opSub: "opSub", opMul: "opMul", opDiv: "opDiv",
	opEQ: "opEQ", opNE: "opNE", opLT: "opLT", opLE: "opLE", opGT: "opGT", opGE: "opGE",
	opAndJmp: "opAndJmp", opOrJmp: "opOrJmp", opIntrin: "opIntrin",
	opJmp: "opJmp", opJZ: "opJZ",
	opLoopInit: "opLoopInit", opLoopHead: "opLoopHead", opLoopNext: "opLoopNext",
	opArgAddrG: "opArgAddrG", opArgAddrP: "opArgAddrP", opCall: "opCall", opReturn: "opReturn",
	opWrite: "opWrite", opErr: "opErr",
	opLGIdx: "opLGIdx", opLPIdx: "opLPIdx", opLGIdxAdd: "opLGIdxAdd", opLPIdxAdd: "opLPIdxAdd",
	opLGIdxLoadGE: "opLGIdxLoadGE", opLGIdxLoadPE: "opLGIdxLoadPE",
	opLGIdxStoreGE: "opLGIdxStoreGE", opLGIdxStorePE: "opLGIdxStorePE",
	opIdxAddLoadGE: "opIdxAddLoadGE", opIdxAddLoadPE: "opIdxAddLoadPE",
	opIdxAddStoreGE: "opIdxAddStoreGE", opIdxAddStorePE: "opIdxAddStorePE",
	opConstAddStoreG: "opConstAddStoreG",
	opJEQ:            "opJEQ", opJNE: "opJNE", opJLT: "opJLT", opJLE: "opJLE", opJGT: "opJGT", opJGE: "opJGE",
	opLLAdd: "opLLAdd", opLLSub: "opLLSub", opLLMul: "opLLMul",
	opLCAdd: "opLCAdd", opLCSub: "opLCSub", opLCMul: "opLCMul",
	opLGIdxI: "opLGIdxI", opLPIdxI: "opLPIdxI", opLGIdxAddI: "opLGIdxAddI", opLPIdxAddI: "opLPIdxAddI",
	opLGIdxLoadGEI: "opLGIdxLoadGEI", opLGIdxLoadPEI: "opLGIdxLoadPEI",
	opLGIdxStoreGEI: "opLGIdxStoreGEI", opLGIdxStorePEI: "opLGIdxStorePEI",
	opIdxAddLoadGEI: "opIdxAddLoadGEI", opIdxAddLoadPEI: "opIdxAddLoadPEI",
	opIdxAddStoreGEI: "opIdxAddStoreGEI", opIdxAddStorePEI: "opIdxAddStorePEI",
	opConstAddStoreGI: "opConstAddStoreGI",
	opLLAddI:          "opLLAddI", opLLSubI: "opLLSubI", opLLMulI: "opLLMulI",
	opLCAddI: "opLCAddI", opLCSubI: "opLCSubI", opLCMulI: "opLCMulI",
	opSpecLoadG: "opSpecLoadG", opSpecStoreG: "opSpecStoreG",
	opSpecLoadP: "opSpecLoadP", opSpecStoreP: "opSpecStoreP",
	opLPIdxLoadGE: "opLPIdxLoadGE", opLPIdxLoadPE: "opLPIdxLoadPE",
	opLPIdxStoreGE: "opLPIdxStoreGE", opLPIdxStorePE: "opLPIdxStorePE",
	opLoadGEAdd: "opLoadGEAdd", opLoadGESub: "opLoadGESub", opLoadGEMul: "opLoadGEMul",
	opLCMulAdd: "opLCMulAdd", opLPJGT: "opLPJGT", opLPJLE: "opLPJLE",
	opLCIdx: "opLCIdx", opLCAddStoreG: "opLCAddStoreG",
	opLPIdxLoadGEI: "opLPIdxLoadGEI", opLPIdxLoadPEI: "opLPIdxLoadPEI",
	opLPIdxStoreGEI: "opLPIdxStoreGEI", opLPIdxStorePEI: "opLPIdxStorePEI",
	opLoadGEAddI: "opLoadGEAddI", opLoadGESubI: "opLoadGESubI", opLoadGEMulI: "opLoadGEMulI",
	opLCMulAddI: "opLCMulAddI", opLPJGTI: "opLPJGTI", opLPJLEI: "opLPJLEI",
	opLCIdxI: "opLCIdxI", opLCAddStoreGI: "opLCAddStoreGI",
	opLoopNextHead: "opLoopNextHead",
	opRConst:       "opRConst", opRLoadG: "opRLoadG", opRLoadP: "opRLoadP",
	opRStoreG: "opRStoreG", opRStoreP: "opRStoreP",
	opRNeg: "opRNeg", opRNot: "opRNot", opRBool: "opRBool",
	opRAdd: "opRAdd", opRSub: "opRSub", opRMul: "opRMul", opRDiv: "opRDiv",
	opREQ: "opREQ", opRNE: "opRNE", opRLT: "opRLT", opRLE: "opRLE", opRGT: "opRGT", opRGE: "opRGE",
	opRIntrin: "opRIntrin",
	opRJmp:    "opRJmp", opRJZ: "opRJZ", opRAndJmp: "opRAndJmp", opROrJmp: "opROrJmp",
	opRJEQ: "opRJEQ", opRJNE: "opRJNE", opRJLT: "opRJLT", opRJLE: "opRJLE", opRJGT: "opRJGT", opRJGE: "opRJGE",
	opRIdx: "opRIdx", opRIdxAdd: "opRIdxAdd",
	opRLoadGE: "opRLoadGE", opRLoadPE: "opRLoadPE", opRStoreGE: "opRStoreGE", opRStorePE: "opRStorePE",
	opRSpecLoadG: "opRSpecLoadG", opRSpecStoreG: "opRSpecStoreG",
	opRSpecLoadP: "opRSpecLoadP", opRSpecStoreP: "opRSpecStoreP",
	opRLGIdxLoadGE: "opRLGIdxLoadGE", opRLGIdxLoadPE: "opRLGIdxLoadPE",
	opRLGIdxStoreGE: "opRLGIdxStoreGE", opRLGIdxStorePE: "opRLGIdxStorePE",
	opRIdxAddLoadGE: "opRIdxAddLoadGE", opRIdxAddLoadPE: "opRIdxAddLoadPE",
	opRIdxAddStoreGE: "opRIdxAddStoreGE", opRIdxAddStorePE: "opRIdxAddStorePE",
	opRLGIdx: "opRLGIdx", opRLGIdxAdd: "opRLGIdxAdd",
	opRLLAdd: "opRLLAdd", opRLLSub: "opRLLSub", opRLLMul: "opRLLMul",
	opRLCAdd: "opRLCAdd", opRLCSub: "opRLCSub", opRLCMul: "opRLCMul",
	opRLCMulAdd: "opRLCMulAdd", opRLPJGT: "opRLPJGT", opRLPJLE: "opRLPJLE",
	opRLCIdx:     "opRLCIdx",
	opRLoadGEAdd: "opRLoadGEAdd", opRLoadGESub: "opRLoadGESub", opRLoadGEMul: "opRLoadGEMul",
	opRConstAddStoreG: "opRConstAddStoreG",
	opRSpecJGTP:       "opRSpecJGTP", opRSpecJLEP: "opRSpecJLEP", opRMemAxpy: "opRMemAxpy",
	opRLPIdx: "opRLPIdx", opRLPIdxAdd: "opRLPIdxAdd",
	opRLPIdxLoadGE: "opRLPIdxLoadGE", opRLPIdxLoadPE: "opRLPIdxLoadPE",
	opRLPIdxStoreGE: "opRLPIdxStoreGE", opRLPIdxStorePE: "opRLPIdxStorePE",
	opRAddC: "opRAddC", opRSubC: "opRSubC", opRMulC: "opRMulC",
	opRSpecStoreC: "opRSpecStoreC", opRAbs: "opRAbs",
	opRLPIdxLoadGEAdd: "opRLPIdxLoadGEAdd", opRLPIdxLoadGESub: "opRLPIdxLoadGESub",
	opRLPIdxLoadGEMul: "opRLPIdxLoadGEMul",
	opRLCMulAddSpecStore: "opRLCMulAddSpecStore",
	opRSpecJGTPInc:       "opRSpecJGTPInc", opRSpecJLEPInc: "opRSpecJLEPInc",
}
