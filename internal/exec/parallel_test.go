package exec

import (
	"testing"
	"testing/quick"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

const redSrc = `
      PROGRAM main
      REAL a(1000), s, b(10)
      INTEGER i, j
      s = 0.0
      DO 5 i = 1, 1000
        a(i) = MOD(i, 7) + 1
5     CONTINUE
      DO 10 i = 1, 1000
        s = s + a(i)
        DO 8 j = 1, 10
          b(j) = b(j) + a(i) * j
8       CONTINUE
10    CONTINUE
      END
`

func planFor(t *testing.T, prog *ir.Program, workers int, staggered bool) *ParallelPlan {
	t.Helper()
	main := prog.Main()
	var l10 *ir.DoLoop
	for _, l := range main.Loops() {
		if l.Label == "10" {
			l10 = l
		}
	}
	if l10 == nil {
		t.Fatal("no loop 10")
	}
	return &ParallelPlan{
		Workers: workers,
		Loops: map[*ir.DoLoop]*LoopPlan{
			l10: {
				Reductions: []ReductionPlan{
					{Sym: main.Lookup("S"), Op: "+"},
					{Sym: main.Lookup("B"), Op: "+"},
				},
				Private:   []*ir.Symbol{main.Lookup("J")},
				Staggered: staggered,
				Chunks:    4,
			},
		},
	}
}

func TestParallelReductionMatchesSequential(t *testing.T) {
	seqProg := minif.MustParse("t", redSrc)
	seq := New(seqProg)
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, stag := range []bool{false, true} {
			parProg := minif.MustParse("t", redSrc)
			plan := planFor(t, parProg, workers, stag)
			par := NewWithPlan(parProg, plan)
			if err := par.Run(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			// Compare only the sequential arena's cells (the parallel arena
			// has extra private blocks).
			n := seq.ArenaSize()
			if err := Validate(seq.Arena()[:n], par.Arena()[:n], 1e-9); err != nil {
				t.Fatalf("workers=%d staggered=%v: %v", workers, stag, err)
			}
		}
	}
}

func TestParallelPrivateFinalization(t *testing.T) {
	src := `
      PROGRAM main
      REAL a(100), t, last
      INTEGER i
      DO 10 i = 1, 100
        t = i * 2.0
        a(i) = t
10    CONTINUE
      last = t
      END
`
	seqProg := minif.MustParse("t", src)
	seq := New(seqProg)
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	parProg := minif.MustParse("t", src)
	main := parProg.Main()
	l := main.Loops()[0]
	plan := &ParallelPlan{
		Workers: 4,
		Loops: map[*ir.DoLoop]*LoopPlan{
			l: {
				Private:  []*ir.Symbol{main.Lookup("T")},
				Finalize: []*ir.Symbol{main.Lookup("T")},
			},
		},
	}
	par := NewWithPlan(parProg, plan)
	if err := par.Run(); err != nil {
		t.Fatal(err)
	}
	n := seq.ArenaSize()
	if err := Validate(seq.Arena()[:n], par.Arena()[:n], 0); err != nil {
		t.Fatalf("private finalization mismatch: %v", err)
	}
}

func TestParallelSparseHistogram(t *testing.T) {
	src := `
      PROGRAM main
      REAL hist(50)
      INTEGER ind(1000), i
      DO 5 i = 1, 1000
        ind(i) = MOD(i * 37, 50) + 1
5     CONTINUE
      DO 10 i = 1, 1000
        hist(ind(i)) = hist(ind(i)) + 1.0
10    CONTINUE
      END
`
	seqProg := minif.MustParse("t", src)
	seq := New(seqProg)
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	parProg := minif.MustParse("t", src)
	main := parProg.Main()
	var l10 *ir.DoLoop
	for _, l := range main.Loops() {
		if l.Label == "10" {
			l10 = l
		}
	}
	plan := &ParallelPlan{
		Workers: 4,
		Loops: map[*ir.DoLoop]*LoopPlan{
			l10: {Reductions: []ReductionPlan{{Sym: main.Lookup("HIST"), Op: "+"}}, Staggered: true, Chunks: 8},
		},
	}
	par := NewWithPlan(parProg, plan)
	if err := par.Run(); err != nil {
		t.Fatal(err)
	}
	n := seq.ArenaSize()
	if err := Validate(seq.Arena()[:n], par.Arena()[:n], 1e-9); err != nil {
		t.Fatal(err)
	}
}

// Property: for any worker count and data seed, the parallel execution of
// an approved loop equals sequential execution (DESIGN.md invariant).
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed uint8, workersRaw uint8) bool {
		workers := int(workersRaw%7) + 1
		src := `
      PROGRAM main
      REAL a(200), mx
      INTEGER i, seed
      seed = ` + itoa(int(seed)) + `
      mx = -1E30
      DO 5 i = 1, 200
        a(i) = MOD(i * 13 + seed, 101)
5     CONTINUE
      DO 10 i = 1, 200
        IF (a(i) .GT. mx) mx = a(i)
10    CONTINUE
      END
`
		seqProg := minif.MustParse("t", src)
		seq := New(seqProg)
		if err := seq.Run(); err != nil {
			return false
		}
		parProg := minif.MustParse("t", src)
		main := parProg.Main()
		var l10 *ir.DoLoop
		for _, l := range main.Loops() {
			if l.Label == "10" {
				l10 = l
			}
		}
		plan := &ParallelPlan{
			Workers: workers,
			Loops: map[*ir.DoLoop]*LoopPlan{
				l10: {Reductions: []ReductionPlan{{Sym: main.Lookup("MX"), Op: "MAX"}}},
			},
		}
		par := NewWithPlan(parProg, plan)
		if err := par.Run(); err != nil {
			return false
		}
		n := seq.ArenaSize()
		return Validate(seq.Arena()[:n], par.Arena()[:n], 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
