package exec

import "fmt"

// Schedule selects the §4.5 dispatcher's iteration-assignment policy for one
// planned loop. Every policy is a pure function of (trips, workers), so a
// plan's execution — and its virtual-time profile — is deterministic for a
// fixed schedule regardless of goroutine interleaving.
type Schedule uint8

const (
	// ScheduleEven divides the iteration space into one contiguous chunk
	// per worker at spawn time: position p runs [p*trips/W, (p+1)*trips/W).
	// This is the paper's §4.5 baseline.
	ScheduleEven Schedule = iota
	// ScheduleInterleaved deals iterations out cyclically: position p runs
	// p, p+W, p+2W, ... Balances nests whose per-iteration cost grows or
	// shrinks with the index (triangular loops).
	ScheduleInterleaved
	// ScheduleGuided hands out shrinking contiguous chunks — chunk size
	// max(1, remaining/(2W)) — assigned round-robin to positions, trading
	// the even schedule's low dispatch count against tail imbalance.
	ScheduleGuided
)

func (s Schedule) String() string {
	switch s {
	case ScheduleInterleaved:
		return "interleaved"
	case ScheduleGuided:
		return "guided"
	}
	return "even"
}

// Schedules lists every dispatcher policy, in a fixed order the tuner's
// search space and the differential suites share.
func Schedules() []Schedule {
	return []Schedule{ScheduleEven, ScheduleInterleaved, ScheduleGuided}
}

// ParseSchedule maps a user-facing schedule name to a Schedule. Accepts
// "even" and "" (even), "interleaved", "guided".
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "even":
		return ScheduleEven, nil
	case "interleaved":
		return ScheduleInterleaved, nil
	case "guided":
		return ScheduleGuided, nil
	}
	return ScheduleEven, fmt.Errorf("exec: unknown schedule %q (want even, interleaved or guided)", s)
}

// guidedNext returns the size of the next guided chunk when `remaining`
// iterations are left on a workers-wide schedule.
func guidedNext(remaining int64, workers int) int64 {
	c := remaining / int64(2*workers)
	if c < 1 {
		c = 1
	}
	return c
}

// forEachAssigned drives position pos's share of a trips-iteration loop in
// increasing iteration order. Both engines dispatch through this one
// function, so a plan's schedule and the dispatcher cannot disagree: the
// assignment is defined here and nowhere else.
func forEachAssigned(sched Schedule, trips int64, workers, pos int, body func(it int64) error) error {
	w := int64(workers)
	switch sched {
	case ScheduleInterleaved:
		for it := int64(pos); it < trips; it += w {
			if err := body(it); err != nil {
				return err
			}
		}
	case ScheduleGuided:
		var lo int64
		for c := 0; lo < trips; c++ {
			n := guidedNext(trips-lo, workers)
			if lo+n > trips {
				n = trips - lo
			}
			if c%workers == pos {
				for it := lo; it < lo+n; it++ {
					if err := body(it); err != nil {
						return err
					}
				}
			}
			lo += n
		}
	default: // ScheduleEven
		wlo := int64(pos) * trips / w
		whi := int64(pos+1) * trips / w
		for it := wlo; it < whi; it++ {
			if err := body(it); err != nil {
				return err
			}
		}
	}
	return nil
}

// lastPosition returns the schedule position that executes the globally
// last iteration (trips-1). The §5.4 storage rule binds that position to
// the original storage bank, so a finalized private's last write lands in
// shared memory exactly as a sequential run leaves it.
func lastPosition(sched Schedule, trips int64, workers int) int {
	if trips <= 0 || workers <= 1 {
		return 0
	}
	switch sched {
	case ScheduleInterleaved:
		return int((trips - 1) % int64(workers))
	case ScheduleGuided:
		var lo int64
		last := 0
		for c := 0; lo < trips; c++ {
			n := guidedNext(trips-lo, workers)
			if lo+n > trips {
				n = trips - lo
			}
			last = c % workers
			lo += n
		}
		return last
	default:
		return workers - 1
	}
}
