package exec_test

// Tier-4 tests: the register-form engine must hit the same tier
// transitions as the tiered engine (threshold crossing, sampled-DDA strip
// and re-arm, incremental invalidation) while actually executing lowered
// register bodies — the counters prove the tier engaged, the four-way
// differential in diffBoth proves it observed nothing different.

import (
	"bytes"
	"testing"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/minif"
)

// TestRegisterThresholdCrossing reuses the tiered fixture (specSrc): its
// inner loop crosses the specialization threshold mid-run, and in register
// mode the armed activations must execute the lowered register body.
func TestRegisterThresholdCrossing(t *testing.T) {
	before := exec.ReadCounters()
	diffBoth(t, "reg-threshold", "spc", specSrc, runConfig{profile: true})
	after := exec.ReadCounters()
	if d := after.RegisterRuns - before.RegisterRuns; d < 1 {
		t.Fatalf("expected register-mode runs, counter delta = %d", d)
	}
	if d := after.RegBodies - before.RegBodies; d < 1 {
		t.Fatalf("expected register-lowered loop bodies, counter delta = %d", d)
	}
	if d := after.RegIterations - before.RegIterations; d < 1 {
		t.Fatalf("expected iterations in the register runner, counter delta = %d", d)
	}
	if d := after.SpecInvocations - before.SpecInvocations; d < 1 {
		t.Fatalf("expected specialized invocations, counter delta = %d", d)
	}
}

// TestRegisterStripRearm runs the fixture under iteration-sampled DDA:
// unsampled iterations run in the register body, sampled ones must bounce
// back to the generic instrumented body so no access is ever missed.
func TestRegisterStripRearm(t *testing.T) {
	before := exec.ReadCounters()
	diffBoth(t, "reg-strip", "spc", specSrc,
		runConfig{profile: true, instrument: true, sampleEvery: 3, sampleWarm: 2})
	after := exec.ReadCounters()
	if d := after.StripIterations - before.StripIterations; d < 1 {
		t.Fatalf("expected stripped iterations under sampled DDA, counter delta = %d", d)
	}
	if d := after.RegIterations - before.RegIterations; d < 1 {
		t.Fatalf("expected register-runner iterations under sampled DDA, counter delta = %d", d)
	}

	// Fully-sampled DDA must never enter the register body: every
	// iteration is observed by the instrumented generic body.
	before = exec.ReadCounters()
	diffBoth(t, "reg-full", "spc", specSrc, runConfig{profile: true, instrument: true})
	after = exec.ReadCounters()
	if d := after.RegIterations - before.RegIterations; d != 0 {
		t.Fatalf("fully-sampled DDA ran %d register iterations; want 0", d)
	}
}

// TestRegisterIncrementalInvalidation mirrors the tiered cache test in
// register mode: warm runs reuse the compiled register variant, and
// driver.Incremental invalidation forces a rebuild with identical results.
func TestRegisterIncrementalInvalidation(t *testing.T) {
	prog, err := minif.Parse("spc", specSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	run := func() (string, int64) {
		in := exec.New(prog)
		in.Mode = exec.ModeRegister
		var out bytes.Buffer
		in.Out = &out
		if err := in.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String(), in.Ops()
	}

	out1, ops1 := run()
	before := exec.ReadCounters()
	out2, ops2 := run()
	if d := exec.ReadCounters().CompiledPrograms - before.CompiledPrograms; d != 0 {
		t.Fatalf("warm register run recompiled %d programs; want 0", d)
	}

	inc := driver.NewIncremental(prog, driver.Options{})
	inc.Analyze()
	if n := inc.Invalidate(prog.Procs[0].Name); n < 1 {
		t.Fatalf("Invalidate dirtied %d procs; want >= 1", n)
	}
	before = exec.ReadCounters()
	out3, ops3 := run()
	if d := exec.ReadCounters().CompiledPrograms - before.CompiledPrograms; d < 1 {
		t.Fatalf("post-invalidation register run recompiled %d programs; want >= 1", d)
	}
	if out1 != out2 || out2 != out3 {
		t.Fatalf("output changed across invalidation: %q / %q / %q", out1, out2, out3)
	}
	if ops1 != ops2 || ops2 != ops3 {
		t.Fatalf("ops changed across invalidation: %d / %d / %d", ops1, ops2, ops3)
	}
}
