package exec

// Locks in the register peephole's fusion products on the mdg hot loops:
// if a pattern regresses (a fusion stops firing or fires differently), the
// opcode sequence here changes and the test names the body that moved.
// The source is inlined (importing internal/workloads from this package
// would cycle through internal/parallel).

import (
	"fmt"
	"strings"
	"testing"

	"suifx/internal/minif"
)

const mdgCensusSrc = `
      SUBROUTINE dists(i, j)
      COMMON /coords/ xm(200), vm(200)
      COMMON /work/ rs(16), rl(16)
      INTEGER i, j, k
      DO 10 k = 1, 9
        rs(k) = ABS(xm(i) - xm(j)) + k * 9.0
10    CONTINUE
      END

      SUBROUTINE interf(cut2, nmol)
      COMMON /coords/ xm(200), vm(200)
      COMMON /work/ rs(16), rl(16)
      REAL cut2
      INTEGER i, j, k, kc, nmol
      DO 1000 i = 1, nmol
        DO 1100 j = 1, nmol
          CALL dists(i, j)
          kc = 0
          DO 1110 k = 1, 9
            IF (rs(k) .GT. cut2) kc = kc + 1
1110      CONTINUE
1100    CONTINUE
1000  CONTINUE
      END

      PROGRAM mdg
      COMMON /coords/ xm(200), vm(200)
      COMMON /work/ rs(16), rl(16)
      REAL cut2
      INTEGER i, nmol
      nmol = 12
      cut2 = 90.0
      DO 50 i = 1, nmol
        xm(i) = MOD(i * 13, 97)
50    CONTINUE
      CALL interf(cut2, nmol)
      WRITE(*,*) xm(1)
      END
`

// registerBodyOps returns the opcode-name sequence (terminator included) of
// every lowered register body, keyed by "PROC:line".
func registerBodyOps(t *testing.T, src string) map[string][]string {
	t.Helper()
	prog, err := minif.Parse("census", src)
	if err != nil {
		t.Fatal(err)
	}
	cd := loweredOf(prog).codeFor(prog, false, tierRegister)
	bodies := map[string][]string{}
	for li := range cd.loops {
		lm := &cd.loops[li]
		if lm.regEntry < 0 {
			continue
		}
		var ops []string
		for pc := lm.regEntry; ; pc++ {
			ops = append(ops, opName(cd.ins[pc].op))
			if cd.ins[pc].op == opLoopNextHead {
				break
			}
		}
		bodies[fmt.Sprintf("%s:%d", lm.proc, lm.line)] = ops
	}
	return bodies
}

func TestRegisterFusionPatterns(t *testing.T) {
	bodies := registerBodyOps(t, mdgCensusSrc)
	want := map[string][]string{
		// rs(k) = ABS(xm(i) - xm(j)) + k*9.0: the param-held index loads
		// fold into the subtract, ABS open-codes, and the multiply-add
		// lands directly in the specialized store.
		"DISTS:6": {
			"opRLPIdxLoadGE", "opRLPIdxLoadGESub", "opRAbs",
			"opRLCMulAddSpecStore", "opLoopNextHead",
		},
		// IF (rs(k) .GT. cut2) kc = kc + 1: compare and conditional
		// increment collapse into one branchless dispatch.
		"INTERF:20": {"opRSpecJGTPInc", "opLoopNextHead"},
	}
	for key, exp := range want {
		got, ok := bodies[key]
		if !ok {
			keys := make([]string, 0, len(bodies))
			for k := range bodies {
				keys = append(keys, k)
			}
			t.Fatalf("no register body for %s (have %s)", key, strings.Join(keys, ", "))
		}
		if strings.Join(got, " ") != strings.Join(exp, " ") {
			t.Errorf("%s register body:\n got %s\nwant %s",
				key, strings.Join(got, " "), strings.Join(exp, " "))
		}
	}
}
