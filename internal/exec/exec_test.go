package exec

import (
	"bytes"
	"strings"
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

func run(t *testing.T, src string) (*Interp, string) {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog)
	var buf bytes.Buffer
	in.Out = &buf
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	return in, buf.String()
}

func TestInterpArithmetic(t *testing.T) {
	_, out := run(t, `
      PROGRAM main
      REAL s, a(10)
      INTEGER i
      s = 0.0
      DO 10 i = 1, 10
        a(i) = i * 2
        s = s + a(i)
10    CONTINUE
      WRITE(*,*) s
      END
`)
	if !strings.Contains(out, "110") {
		t.Fatalf("sum = %q, want 110", out)
	}
}

func TestInterpControlFlowAndIntrinsics(t *testing.T) {
	_, out := run(t, `
      PROGRAM main
      REAL x, tmin
      INTEGER i
      tmin = 1E30
      DO 10 i = 1, 5
        x = ABS(3.0 - i) + MOD(i, 2) + MAX(1.0*i, 2.0)
        IF (x .LT. tmin) tmin = x
10    CONTINUE
      WRITE(*,*) tmin
      IF (tmin .GT. 0.5 .AND. tmin .LT. 100.0) THEN
        WRITE(*,*) 1
      ELSE
        WRITE(*,*) 0
      ENDIF
      END
`)
	lines := strings.Fields(out)
	if len(lines) != 2 || lines[1] != "1" {
		t.Fatalf("out = %q", out)
	}
}

func TestInterpCommonAndCall(t *testing.T) {
	_, out := run(t, `
      SUBROUTINE fill(q, n)
      REAL q(100)
      INTEGER j, n
      DO 10 j = 1, n
        q(j) = j
10    CONTINUE
      END
      PROGRAM main
      COMMON /blk/ w(100)
      REAL s
      INTEGER i
      CALL fill(w(11), 5)
      s = 0.0
      DO 20 i = 1, 100
        s = s + w(i)
20    CONTINUE
      WRITE(*,*) s
      END
`)
	// fill writes w(11..15) = 1..5 -> sum 15.
	if !strings.Contains(out, "15") {
		t.Fatalf("subarray call: out = %q, want 15", out)
	}
}

func TestInterpBoundsCheck(t *testing.T) {
	prog := minif.MustParse("t", `
      PROGRAM main
      REAL a(10)
      INTEGER i
      i = 11
      a(i) = 1.0
      END
`)
	in := New(prog)
	if err := in.Run(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v, want bounds error", err)
	}
}

func TestInterpReversedLoopAndStep(t *testing.T) {
	_, out := run(t, `
      PROGRAM main
      INTEGER i, n
      REAL s
      s = 0.0
      n = 0
      DO 10 i = 9, 1, -2
        s = s + i
        n = n + 1
10    CONTINUE
      WRITE(*,*) s, n
      END
`)
	f := strings.Fields(out)
	if len(f) != 2 || f[0] != "25" || f[1] != "5" {
		t.Fatalf("out = %q, want 25 5", out)
	}
}

func TestProfiler(t *testing.T) {
	prog := minif.MustParse("t", `
      PROGRAM main
      REAL a(100)
      INTEGER i, k
      DO 20 k = 1, 10
        DO 10 i = 1, 100
          a(i) = a(i) + 1.0
10      CONTINUE
20    CONTINUE
      END
`)
	in := New(prog)
	p := NewProfiler(in)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	profs := p.Profiles()
	if len(profs) != 2 {
		t.Fatalf("profiles = %d", len(profs))
	}
	outer, inner := profs[0], profs[1]
	if outer.ID != "MAIN/20" {
		t.Fatalf("outer loop should dominate: %v", outer.ID)
	}
	if inner.Invocations != 10 || inner.Iterations != 1000 {
		t.Fatalf("inner: inv=%d iters=%d", inner.Invocations, inner.Iterations)
	}
	if outer.TotalOps <= inner.TotalOps {
		t.Fatal("outer total must include inner")
	}
	cov := p.Coverage([]*ir.DoLoop{outer.Loop})
	if cov < 0.9 {
		t.Fatalf("outer loop coverage = %f, want near 1", cov)
	}
}

func TestDynDepDetectsRecurrence(t *testing.T) {
	prog := minif.MustParse("t", `
      PROGRAM main
      REAL a(100), b(100)
      INTEGER i
      a(1) = 1.0
      DO 10 i = 2, 100
        a(i) = a(i-1) + 1.0
10    CONTINUE
      DO 20 i = 1, 100
        b(i) = a(i) * 2.0
20    CONTINUE
      END
`)
	in := New(prog)
	d := NewDynDep(in)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	loops := prog.Main().Loops()
	if d.Carried(loops[0]) == 0 {
		t.Fatal("recurrence loop must show dynamic carried deps")
	}
	if d.Carried(loops[1]) != 0 {
		t.Fatal("independent loop must show no carried deps")
	}
}

func TestDynDepIgnoresSameIteration(t *testing.T) {
	prog := minif.MustParse("t", `
      PROGRAM main
      REAL a(100), t
      INTEGER i
      DO 10 i = 1, 100
        t = i * 2.0
        a(i) = t + 1.0
10    CONTINUE
      END
`)
	in := New(prog)
	d := NewDynDep(in)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	l := prog.Main().Loops()[0]
	// t is written then read in the same iteration: not loop-carried...
	// but it IS rewritten each iteration; the read always sees the same
	// iteration's write, so no carried flow dep.
	if d.Carried(l) != 0 {
		t.Fatalf("same-iteration flow misreported as carried: %d", d.Carried(l))
	}
}

func TestDynDepSampling(t *testing.T) {
	src := `
      PROGRAM main
      REAL a(200)
      INTEGER i
      a(1) = 1.0
      DO 10 i = 2, 200
        a(i) = a(i-1) + 1.0
10    CONTINUE
      END
`
	prog := minif.MustParse("t", src)
	inFull := New(prog)
	dFull := NewDynDep(inFull)
	if err := inFull.Run(); err != nil {
		t.Fatal(err)
	}
	prog2 := minif.MustParse("t", src)
	inS := New(prog2)
	dS := NewDynDep(inS)
	dS.SampleEvery = 10
	if err := inS.Run(); err != nil {
		t.Fatal(err)
	}
	if dS.Accesses() >= dFull.Accesses() {
		t.Fatalf("sampling should reduce instrumented accesses: %d vs %d", dS.Accesses(), dFull.Accesses())
	}
	// The hint survives sampling: consecutive warm iterations see the dep.
	if dS.Carried(prog2.Main().Loops()[0]) == 0 {
		t.Fatal("sampled analyzer should still catch the recurrence")
	}
}
