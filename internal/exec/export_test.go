package exec

import (
	"io"

	"suifx/internal/ir"
)

// fusedPairCensus is a test-only probe: it runs prog on the tiered engine
// (optionally instrumented) with per-pc counting and returns the dynamic
// pair frequencies remaining in the fused stream plus single-op counts —
// the data the fusion set is tuned against.
func FusedPairCensusForTest(prog *ir.Program, instrumented bool) (pairs, singles map[string]int64, err error) {
	in := New(prog)
	in.Mode = ModeTiered
	in.Out = io.Discard
	if instrumented {
		NewProfiler(in)
		NewDynDep(in)
	}
	cd := loweredOf(prog).codeFor(prog, instrumented, tierFused)
	in.pcCount = make([]int64, len(cd.ins))
	if err := in.Run(); err != nil {
		return nil, nil, err
	}
	pairs, singles = map[string]int64{}, map[string]int64{}
	for pc := 0; pc+1 < len(cd.ins); pc++ {
		n := in.pcCount[pc]
		if n == 0 {
			continue
		}
		singles[opName(cd.ins[pc].op)] += n
		if isControlTransfer(cd.ins[pc].op) {
			continue
		}
		pairs[opName(cd.ins[pc].op)+"+"+opName(cd.ins[pc+1].op)] += n
	}
	return pairs, singles, nil
}
