package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"suifx/internal/ir"
)

// ReductionPlan describes one reduction variable of a parallel loop (§6.3).
type ReductionPlan struct {
	Sym *ir.Symbol
	Op  string // "+", "*", "MIN", "MAX"
}

// LoopPlan describes how to execute one approved parallel loop: which
// variables each worker privatizes, which privatized variables need
// last-iteration finalization, and the reduction transformation.
type LoopPlan struct {
	Private    []*ir.Symbol
	Finalize   []*ir.Symbol // privates written back from the last iteration
	Reductions []ReductionPlan
	// Schedule is the §4.5 dispatcher policy for this loop. The dispatcher
	// reads it from the plan — there is no engine-side default that could
	// silently disagree with what the plan's builder intended.
	Schedule Schedule
	// MaxWorkers, when > 0, caps this loop's schedule width below the
	// plan-wide worker count — the tuner's per-loop worker-count knob.
	// Storage banks are still allocated for the plan-wide count, and the
	// §5.4 last-position bank is unchanged.
	MaxWorkers int
	// Staggered selects the §6.3.4 finalization: the reduction region is
	// partitioned into Chunks sections finalized concurrently and worker w
	// starts at chunk w, minimizing contention. False = one global lock.
	Staggered bool
	Chunks    int
}

// width returns the loop's schedule width for a trip count: the plan-wide
// worker count, clamped by the loop's MaxWorkers knob and by trips.
func (lp *LoopPlan) width(planWorkers int, trips int64) int {
	workers := planWorkers
	if lp.MaxWorkers > 0 && workers > lp.MaxWorkers {
		workers = lp.MaxWorkers
	}
	if trips < int64(workers) {
		workers = int(trips)
	}
	return workers
}

// ParallelPlan carries all loop plans plus the worker count.
type ParallelPlan struct {
	Workers int
	Loops   map[*ir.DoLoop]*LoopPlan
}

// NewWithPlan builds an interpreter that executes the planned loops in
// parallel with real goroutines: private copies, reduction accumulators and
// per-worker scratch blocks are pre-allocated per worker so the arena never
// grows during execution. Loops are laid out in source order so the arena
// image is deterministic regardless of plan-map iteration order.
func NewWithPlan(prog *ir.Program, plan *ParallelPlan) *Interp {
	in := New(prog)
	if plan == nil || plan.Workers < 1 {
		return in
	}
	in.plan = plan
	in.workerBase = map[*ir.DoLoop]map[*ir.Symbol][]int64{}
	in.workerLocals = map[*ir.DoLoop][]map[*ir.Symbol]int64{}
	loops := make([]*ir.DoLoop, 0, len(plan.Loops))
	for l := range plan.Loops {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Pos.Line != loops[j].Pos.Line {
			return loops[i].Pos.Line < loops[j].Pos.Line
		}
		return loops[i].Index.Name < loops[j].Index.Name
	})
	for _, l := range loops {
		lp := plan.Loops[l]
		m := map[*ir.Symbol][]int64{}
		in.workerBase[l] = m
		alloc := func(sym *ir.Symbol) {
			bases := make([]int64, plan.Workers)
			for w := 0; w < plan.Workers; w++ {
				bases[w] = int64(len(in.arena))
				in.arena = append(in.arena, make([]float64, sym.NElems())...)
			}
			m[sym] = bases
		}
		alloc(l.Index)
		for _, s := range lp.Private {
			if s != l.Index {
				alloc(s)
			}
		}
		for _, r := range lp.Reductions {
			alloc(r.Sym)
		}
		// Every local of every procedure reachable from the loop body gets
		// per-worker storage: Fortran locals live on each processor's stack
		// in the SPMD runtime, and sharing the static copies would race.
		perWorker := make([]map[*ir.Symbol]int64, plan.Workers)
		for w := range perWorker {
			perWorker[w] = map[*ir.Symbol]int64{}
		}
		for _, proc := range reachableProcs(prog, l) {
			for _, sym := range proc.SortedSyms() {
				if sym.Common != "" || sym.IsParam {
					continue
				}
				for w := 0; w < plan.Workers; w++ {
					perWorker[w][sym] = int64(len(in.arena))
					in.arena = append(in.arena, make([]float64, sym.NElems())...)
				}
			}
		}
		in.workerLocals[l] = perWorker
	}
	// One private scratch block per worker, shared across planned loops
	// (only one planned loop runs at a time — nested plans stay sequential
	// inside a parallel region). Without this, concurrent value-argument
	// spills from different workers would collide in the main scratch.
	in.workerTemp = make([]int64, plan.Workers)
	for w := range in.workerTemp {
		in.workerTemp[w] = int64(len(in.arena))
		in.arena = append(in.arena, make([]float64, tempCells)...)
	}
	return in
}

// reachableProcs returns the procedures called (transitively) from a loop's
// body.
func reachableProcs(prog *ir.Program, l *ir.DoLoop) []*ir.Proc {
	seen := map[string]bool{}
	var out []*ir.Proc
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		p := prog.ByName[name]
		if p == nil {
			return
		}
		out = append(out, p)
		for _, c := range prog.CallGraph()[name] {
			visit(c)
		}
	}
	ir.WalkStmts(l.Body, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.Call); ok {
			visit(c.Name)
		}
		return true
	})
	return out
}

// identity returns the reduction identity element (§6.3.1).
func identity(op string) float64 {
	switch op {
	case "+":
		return 0
	case "*":
		return 1
	case "MIN":
		return math.Inf(1)
	case "MAX":
		return math.Inf(-1)
	}
	return 0
}

func combine(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "*":
		return a * b
	case "MIN":
		return math.Min(a, b)
	case "MAX":
		return math.Max(a, b)
	}
	return a
}

// planWorkerIDs maps schedule positions to storage-bank IDs when the worker
// count is clamped to the trip count (or capped per loop). The LAST plan
// worker keeps the original storage as its private copy (§5.4), so the
// position executing the globally last iteration — which the schedule
// determines — must always be that worker; every other position uses its
// own bank.
func planWorkerIDs(planWorkers, workers, lastPos int) []int {
	ids := make([]int, workers)
	for p := range ids {
		ids[p] = p
	}
	old := ids[lastPos]
	ids[lastPos] = planWorkers - 1
	if planWorkers == workers && lastPos != workers-1 {
		ids[workers-1] = old // keep the bank set distinct
	}
	return ids
}

// execParallelLoop runs one approved loop across the plan's workers on the
// tree-walking engine.
func (in *Interp) execParallelLoop(f *frame, l *ir.DoLoop, lp *LoopPlan, lo, hi, step float64, trips int64) (signal, error) {
	workers := lp.width(in.plan.Workers, trips)
	if workers == 0 {
		return sigNone, nil
	}
	counters.parallelLoopRuns.Add(1)
	counters.parallelWorkers.Add(int64(workers))
	ids := planWorkerIDs(in.plan.Workers, workers, lastPosition(lp.Schedule, trips, workers))
	bases := in.workerBase[l]
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wops := make([]int64, workers)

	// Iterations are assigned to positions by the plan's schedule (§4.5):
	// even contiguous chunks, cyclic interleaving, or guided shrinking
	// chunks — forEachAssigned is the single source of truth.
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := ids[p]
			wi := in.workerClone(l, id)
			wf := &frame{proc: f.proc, refs: map[*ir.Symbol]Ref{}}
			for s, r := range f.refs {
				wf.refs[s] = r
			}
			// Rebind privates and reduction accumulators to worker storage.
			// Common-block members are overridden globally for this worker so
			// callees reach the private copy too. The LAST worker keeps the
			// original storage as its private copy (§5.4): since approved
			// privates write the identical region every iteration, the shared
			// array ends up exactly as a sequential run leaves it — including
			// elements the loop never writes.
			lastWorker := id == in.plan.Workers-1
			bind := func(sym *ir.Symbol, init bool, op string) {
				base := bases[sym][id]
				wf.refs[sym] = Ref{Base: base, Dims: sym.Dims}
				if sym.Common != "" {
					if wi.privCommon == nil {
						wi.privCommon = map[string]map[int64]int64{}
					}
					if wi.privCommon[sym.Common] == nil {
						wi.privCommon[sym.Common] = map[int64]int64{}
					}
					wi.privCommon[sym.Common][sym.CommonOffset] = base
				}
				if init {
					for k := int64(0); k < sym.NElems(); k++ {
						wi.arena[base+k] = identity(op)
					}
				}
			}
			bind(l.Index, false, "")
			for _, s := range lp.Private {
				if s != l.Index && !lastWorker {
					bind(s, false, "")
				}
			}
			for _, r := range lp.Reductions {
				bind(r.Sym, true, r.Op)
			}
			idx := wi.refOf(wf, l.Index)
			if err := forEachAssigned(lp.Schedule, trips, workers, p, func(it int64) error {
				wi.arena[idx.Base] = lo + float64(it)*step
				_, err := wi.execStmts(wf, l.Body)
				return err
			}); err != nil {
				errs[p] = err
				return
			}
			wops[p] = wi.ops
		}(p)
	}
	wg.Wait()
	for _, o := range wops {
		in.ops += o
	}
	for _, err := range errs {
		if err != nil {
			return sigNone, err
		}
	}
	in.noteParallel(l, lp, wops)
	in.finalizeParallel(f, l, lp, workers, ids)
	return sigNone, nil
}

// finalizeParallel merges reduction accumulators into the shared variables
// (§6.3.1, §6.3.4).
func (in *Interp) finalizeParallel(f *frame, l *ir.DoLoop, lp *LoopPlan, workers int, ids []int) {
	bases := in.workerBase[l]
	for _, red := range lp.Reductions {
		shared := in.refOf(f, red.Sym)
		wb := make([]int64, workers)
		for p := 0; p < workers; p++ {
			wb[p] = bases[red.Sym][ids[p]]
		}
		in.mergeReduction(red, wb, shared.Base, lp)
	}
	// No private write-back is needed: the last worker used the original
	// storage as its private copy (§5.4), so the shared state already equals
	// the sequential final state. The Finalize list only drives the cost
	// model's accounting.
}

// mergeReduction folds each worker's accumulator into the shared storage.
// Both finalization disciplines combine every element's contributions in
// ascending worker order, so floating-point results are bit-identical run
// to run and identical between the disciplines:
//
//   - single-lock (§6.3.2): one goroutine walks workers 0..W-1 serially —
//     the schedule the one-lock protocol serializes to anyway, minus the
//     lock-arrival lottery that made + and * reductions nondeterministic.
//   - staggered (§6.3.4): the region is split into chunks and each chunk is
//     owned by exactly one finalizer goroutine (chunk c to goroutine
//     c mod W). Ownership replaces locking: chunks proceed concurrently,
//     but the per-element combine order stays workers 0..W-1.
func (in *Interp) mergeReduction(red ReductionPlan, wbases []int64, sharedBase int64, lp *LoopPlan) {
	workers := len(wbases)
	n := red.Sym.NElems()
	mergeRange := func(k0, k1 int64) {
		for w := 0; w < workers; w++ {
			base := wbases[w]
			for k := k0; k < k1; k++ {
				v := in.arena[base+k]
				if v != identity(red.Op) {
					in.arena[sharedBase+k] = combine(red.Op, in.arena[sharedBase+k], v)
				}
			}
		}
	}
	if !lp.Staggered || workers == 1 || n < int64(lp.Chunks) || lp.Chunks < 2 {
		mergeRange(0, n)
		return
	}
	chunks := lp.Chunks
	per := (n + int64(chunks) - 1) / int64(chunks)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for c := g; c < chunks; c += workers {
				k0 := int64(c) * per
				k1 := k0 + per
				if k1 > n {
					k1 = n
				}
				if k0 < k1 {
					mergeRange(k0, k1)
				}
			}
		}(g)
	}
	wg.Wait()
}

// sharedBase resolves a symbol's shared storage for reduction merging:
// formals through the dispatching frame's parameter bindings, commons and
// locals through the static layout.
func (in *Interp) sharedBase(sym *ir.Symbol, params []int64) int64 {
	if sym.IsParam {
		return params[sym.ParamIndex]
	}
	if sym.Common != "" {
		return in.blockOff[sym.Common] + sym.CommonOffset
	}
	return in.base[sym]
}

// workerClone shares the arena but rebases every reachable procedure's
// locals to this worker's private storage, gives the worker its own scratch
// block, keeps a private virtual-time counter, and drops hooks
// (instrumentation is not thread-safe).
func (in *Interp) workerClone(l *ir.DoLoop, w int) *Interp {
	base := in.base
	if locals := in.workerLocals[l]; len(locals) > w && len(locals[w]) > 0 {
		base = make(map[*ir.Symbol]int64, len(in.base))
		for k, v := range in.base {
			base[k] = v
		}
		for k, v := range locals[w] {
			base[k] = v
		}
	}
	tb, tt, tl := in.tempBase, in.tempTop, in.tempLimit
	if len(in.workerTemp) > w {
		tb = in.workerTemp[w]
		tt = tb
		tl = tb + tempCells
	}
	return &Interp{
		Prog:      in.Prog,
		Out:       in.Out,
		Mode:      ModeTree, // worker bodies run via execStmts; keep tree-only
		arena:     in.arena,
		base:      base,
		blockOff:  in.blockOff,
		tempBase:  tb,
		tempTop:   tt,
		tempLimit: tl,
	}
}

// planFor returns the plan for a loop, if parallel execution is enabled.
func (in *Interp) planFor(l *ir.DoLoop) *LoopPlan {
	if in.plan == nil || in.inParallel {
		return nil
	}
	return in.plan.Loops[l]
}

// ---------------------------------------------------------------------------
// Bytecode-side parallel runtime: per-worker views.

// planRT is the bytecode engine's parallel runtime for one interpreter:
// per-worker instruction streams compiled once per planned loop, keyed by
// the loop's index in the main code's loop table (identical in the plain
// and instrumented variants, which lower procedures in the same order).
type planRT struct {
	in    *Interp
	loops map[int32]*vmLoopRT
}

type vmLoopRT struct {
	l     *ir.DoLoop
	lp    *LoopPlan
	views []workerView
}

// workerView is one worker's address-specialized compilation of a planned
// loop body: privates, reductions and callee locals resolve to this
// worker's storage banks as fixed operands, not per-call map lookups.
type workerView struct {
	cd      *code
	idxAddr int64
	inits   []viewInit
}

// viewInit is a reduction accumulator to reset to its identity before the
// worker's first iteration.
type viewInit struct {
	base int64
	n    int64
	val  float64
}

// ensurePlanRT compiles (once per interpreter) one bytecode view per worker
// per planned loop and caches the runtime on the Interp.
func (in *Interp) ensurePlanRT(cd *code) *planRT {
	if in.planRT != nil {
		return in.planRT
	}
	rt := &planRT{in: in, loops: map[int32]*vmLoopRT{}}
	for li := range cd.loops {
		lm := &cd.loops[li]
		lp := in.plan.Loops[lm.loop]
		if lp == nil {
			continue
		}
		l := lm.loop
		proc := in.Prog.ByName[lm.proc]
		bases := in.workerBase[l]
		lrt := &vmLoopRT{l: l, lp: lp, views: make([]workerView, in.plan.Workers)}
		for w := 0; w < in.plan.Workers; w++ {
			rebind := map[*ir.Symbol]int64{}
			privCommon := map[string]map[int64]int64{}
			add := func(sym *ir.Symbol) {
				base := bases[sym][w]
				rebind[sym] = base
				if sym.Common != "" {
					if privCommon[sym.Common] == nil {
						privCommon[sym.Common] = map[int64]int64{}
					}
					privCommon[sym.Common][sym.CommonOffset] = base
				}
			}
			// Mirror the tree-walker's bind() exactly: index always, privates
			// for every worker but the last (§5.4), reductions always, plus
			// per-worker storage for every reachable procedure's locals.
			lastWorker := w == in.plan.Workers-1
			add(l.Index)
			for _, s := range lp.Private {
				if s != l.Index && !lastWorker {
					add(s)
				}
			}
			var inits []viewInit
			for _, r := range lp.Reductions {
				add(r.Sym)
				inits = append(inits, viewInit{base: bases[r.Sym][w], n: r.Sym.NElems(), val: identity(r.Op)})
			}
			if locals := in.workerLocals[l]; len(locals) > w {
				for sym, addr := range locals[w] {
					rebind[sym] = addr
				}
			}
			view := compileLoopBody(in.Prog, cd.lay, proc, l, rebind, privCommon, cd.register)
			if cd.tiered {
				// Tiered runs fuse worker views too. Register runs go further:
				// views compile with alt bodies (worker-private rebinding kept
				// the nested sequential loops specializable) and lower them to
				// register form, so tier 4 applies inside DOALL bodies too.
				view = fuseCode(view)
				view.tiered = true
				if cd.register {
					regLowerCode(view)
				}
			}
			counters.compiledViews.Add(1)
			lrt.views[w] = workerView{cd: view, idxAddr: rebind[l.Index], inits: inits}
		}
		rt.loops[int32(li)] = lrt
	}
	in.planRT = rt
	return rt
}

// runLoop executes one planned loop on the bytecode engine: the plan's
// §4.5 schedule with one VM instance per worker over the shared arena,
// followed by deterministic reduction finalization. Worker ops are folded
// into the dispatching VM's clock, matching the tree-walker.
func (rt *planRT) runLoop(v *vm, lrt *vmLoopRT, params []int64, lo, step float64, trips int64) error {
	in := rt.in
	workers := lrt.lp.width(in.plan.Workers, trips)
	if workers == 0 {
		return nil
	}
	counters.parallelLoopRuns.Add(1)
	counters.parallelWorkers.Add(int64(workers))
	ids := planWorkerIDs(in.plan.Workers, workers, lastPosition(lrt.lp.Schedule, trips, workers))
	psnap := append([]int64(nil), params...)
	errs := make([]error, workers)
	wops := make([]int64, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			view := &lrt.views[ids[p]]
			for _, init := range view.inits {
				for k := int64(0); k < init.n; k++ {
					in.arena[init.base+k] = init.val
				}
			}
			tb := in.workerTemp[ids[p]]
			wv := &vm{
				cd:  view.cd,
				mem: in.arena,
				out: in.Out,
				// The view inherits the dispatching frame's parameter
				// bindings, so formals referenced by the body (and not
				// privatized) resolve exactly as the tree worker's copied
				// frame does.
				paramStore: append([]int64(nil), psnap...),
				stack:      make([]float64, view.cd.maxStack),
				tempTop:    tb,
				tempLimit:  tb + tempCells,
				maxOps:     math.MaxInt64,
			}
			if view.cd.register {
				// Nested sequential loops inside this worker's assignment
				// arm across its iterations, same threshold as whole runs.
				wv.spec = make([]int32, len(view.cd.loops))
			}
			if err := forEachAssigned(lrt.lp.Schedule, trips, workers, p, func(it int64) error {
				in.arena[view.idxAddr] = lo + float64(it)*step
				return wv.run()
			}); err != nil {
				errs[p] = err
				return
			}
			wops[p] = wv.ops
		}(p)
	}
	wg.Wait()
	for _, o := range wops {
		v.ops += o
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	in.noteParallel(lrt.l, lrt.lp, wops)
	for _, red := range lrt.lp.Reductions {
		wb := make([]int64, workers)
		for p := 0; p < workers; p++ {
			wb[p] = in.workerBase[lrt.l][red.Sym][ids[p]]
		}
		in.mergeReduction(red, wb, in.sharedBase(red.Sym, psnap), lrt.lp)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Parallel virtual-time statistics.

// ParLoopStat is the virtual-time execution profile of one planned loop.
type ParLoopStat struct {
	Line        int    // source line of the DO statement
	Index       string // loop index variable name
	Schedule    string // the dispatcher policy the plan selected
	Invocations int64
	Workers     int   // widest schedule observed
	WorkerOps   int64 // Σ over invocations and workers of worker ops
	CritOps     int64 // Σ over invocations of the slowest worker's ops
}

// noteParallel accumulates one planned-loop invocation's schedule profile.
// Dispatch is always from the sequential part of the run, so no locking.
func (in *Interp) noteParallel(l *ir.DoLoop, lp *LoopPlan, wops []int64) {
	if in.parStats == nil {
		in.parStats = map[*ir.DoLoop]*ParLoopStat{}
	}
	st := in.parStats[l]
	if st == nil {
		st = &ParLoopStat{Line: l.Pos.Line, Index: l.Index.Name, Schedule: lp.Schedule.String()}
		in.parStats[l] = st
	}
	st.Invocations++
	if len(wops) > st.Workers {
		st.Workers = len(wops)
	}
	var max int64
	for _, o := range wops {
		st.WorkerOps += o
		if o > max {
			max = o
		}
	}
	st.CritOps += max
}

// ParallelStats returns the per-planned-loop schedule profiles in source
// order.
func (in *Interp) ParallelStats() []ParLoopStat {
	out := make([]ParLoopStat, 0, len(in.parStats))
	for _, st := range in.parStats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// CriticalPathOps is the run's virtual time on an idealized machine with
// the plan's worker count: total ops with each planned loop's summed worker
// time replaced by its slowest worker's time under the §4.5 even-chunk
// schedule. The Chapter 4/6 speedup experiments are stated in this clock —
// it is deterministic and independent of the host's core count.
func (in *Interp) CriticalPathOps() int64 {
	crit := in.ops
	for _, st := range in.parStats {
		crit -= st.WorkerOps - st.CritOps
	}
	return crit
}

// Validate compares two arenas element-wise with a tolerance for the
// floating-point reassociation parallel reductions introduce (§6.5.2).
func Validate(seq, par []float64, tol float64) error {
	if len(seq) != len(par) {
		return fmt.Errorf("exec: arena sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a == b {
			continue
		}
		diff := math.Abs(a - b)
		scale := math.Max(math.Abs(a), math.Abs(b))
		if diff > tol*math.Max(scale, 1) {
			return fmt.Errorf("exec: cell %d differs: %g vs %g", i, a, b)
		}
	}
	return nil
}
