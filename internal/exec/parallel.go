package exec

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"suifx/internal/ir"
)

// ReductionPlan describes one reduction variable of a parallel loop (§6.3).
type ReductionPlan struct {
	Sym *ir.Symbol
	Op  string // "+", "*", "MIN", "MAX"
}

// LoopPlan describes how to execute one approved parallel loop: which
// variables each worker privatizes, which privatized variables need
// last-iteration finalization, and the reduction transformation.
type LoopPlan struct {
	Private    []*ir.Symbol
	Finalize   []*ir.Symbol // privates written back from the last iteration
	Reductions []ReductionPlan
	// Staggered selects the §6.3.4 finalization: the reduction region is
	// partitioned into Chunks lock-protected sections and worker w starts
	// at chunk w, minimizing contention. False = one global lock.
	Staggered bool
	Chunks    int
}

// ParallelPlan carries all loop plans plus the worker count.
type ParallelPlan struct {
	Workers int
	Loops   map[*ir.DoLoop]*LoopPlan
}

// NewWithPlan builds an interpreter that executes the planned loops in
// parallel with real goroutines: private copies and reduction accumulators
// are pre-allocated per worker so the arena never grows during execution.
func NewWithPlan(prog *ir.Program, plan *ParallelPlan) *Interp {
	in := New(prog)
	if plan == nil || plan.Workers < 1 {
		return in
	}
	in.plan = plan
	in.workerBase = map[*ir.DoLoop]map[*ir.Symbol][]int64{}
	in.workerLocals = map[*ir.DoLoop][]map[*ir.Symbol]int64{}
	for l, lp := range plan.Loops {
		m := map[*ir.Symbol][]int64{}
		in.workerBase[l] = m
		alloc := func(sym *ir.Symbol) {
			bases := make([]int64, plan.Workers)
			for w := 0; w < plan.Workers; w++ {
				bases[w] = int64(len(in.arena))
				in.arena = append(in.arena, make([]float64, sym.NElems())...)
			}
			m[sym] = bases
		}
		alloc(l.Index)
		for _, s := range lp.Private {
			if s != l.Index {
				alloc(s)
			}
		}
		for _, r := range lp.Reductions {
			alloc(r.Sym)
		}
		// Every local of every procedure reachable from the loop body gets
		// per-worker storage: Fortran locals live on each processor's stack
		// in the SPMD runtime, and sharing the static copies would race.
		perWorker := make([]map[*ir.Symbol]int64, plan.Workers)
		for w := range perWorker {
			perWorker[w] = map[*ir.Symbol]int64{}
		}
		for _, proc := range reachableProcs(prog, l) {
			for _, sym := range proc.SortedSyms() {
				if sym.Common != "" || sym.IsParam {
					continue
				}
				for w := 0; w < plan.Workers; w++ {
					perWorker[w][sym] = int64(len(in.arena))
					in.arena = append(in.arena, make([]float64, sym.NElems())...)
				}
			}
		}
		in.workerLocals[l] = perWorker
	}
	return in
}

// reachableProcs returns the procedures called (transitively) from a loop's
// body.
func reachableProcs(prog *ir.Program, l *ir.DoLoop) []*ir.Proc {
	seen := map[string]bool{}
	var out []*ir.Proc
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		p := prog.ByName[name]
		if p == nil {
			return
		}
		out = append(out, p)
		for _, c := range prog.CallGraph()[name] {
			visit(c)
		}
	}
	ir.WalkStmts(l.Body, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.Call); ok {
			visit(c.Name)
		}
		return true
	})
	return out
}

// identity returns the reduction identity element (§6.3.1).
func identity(op string) float64 {
	switch op {
	case "+":
		return 0
	case "*":
		return 1
	case "MIN":
		return math.Inf(1)
	case "MAX":
		return math.Inf(-1)
	}
	return 0
}

func combine(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "*":
		return a * b
	case "MIN":
		return math.Min(a, b)
	case "MAX":
		return math.Max(a, b)
	}
	return a
}

// execParallelLoop runs one approved loop across the plan's workers.
func (in *Interp) execParallelLoop(f *frame, l *ir.DoLoop, lp *LoopPlan, lo, hi, step float64, trips int64) (signal, error) {
	workers := in.plan.Workers
	if trips < int64(workers) {
		workers = int(trips)
	}
	if workers == 0 {
		return sigNone, nil
	}
	bases := in.workerBase[l]
	var wg sync.WaitGroup
	errs := make([]error, workers)
	opsTotal := int64(0)

	// Iterations are evenly divided between the processors at spawn time
	// (§4.5): worker w gets [w*trips/W, (w+1)*trips/W).
	for w := 0; w < workers; w++ {
		wlo := int64(w) * trips / int64(workers)
		whi := int64(w+1) * trips / int64(workers)
		wg.Add(1)
		go func(w int, wlo, whi int64) {
			defer wg.Done()
			wi := in.workerClone(l, w)
			wf := &frame{proc: f.proc, refs: map[*ir.Symbol]Ref{}}
			for s, r := range f.refs {
				wf.refs[s] = r
			}
			// Rebind privates and reduction accumulators to worker storage.
			// Common-block members are overridden globally for this worker so
			// callees reach the private copy too. The LAST worker keeps the
			// original storage as its private copy (§5.4): since approved
			// privates write the identical region every iteration, the shared
			// array ends up exactly as a sequential run leaves it — including
			// elements the loop never writes.
			lastWorker := w == workers-1
			bind := func(sym *ir.Symbol, init bool, op string) {
				base := bases[sym][w]
				wf.refs[sym] = Ref{Base: base, Dims: sym.Dims}
				if sym.Common != "" {
					if wi.privCommon == nil {
						wi.privCommon = map[string]map[int64]int64{}
					}
					if wi.privCommon[sym.Common] == nil {
						wi.privCommon[sym.Common] = map[int64]int64{}
					}
					wi.privCommon[sym.Common][sym.CommonOffset] = base
				}
				if init {
					for k := int64(0); k < sym.NElems(); k++ {
						wi.arena[base+k] = identity(op)
					}
				}
			}
			bind(l.Index, false, "")
			for _, s := range lp.Private {
				if s != l.Index && !lastWorker {
					bind(s, false, "")
				}
			}
			for _, r := range lp.Reductions {
				bind(r.Sym, true, r.Op)
			}
			idx := wi.refOf(wf, l.Index)
			for it := wlo; it < whi; it++ {
				wi.arena[idx.Base] = lo + float64(it)*step
				if _, err := wi.execStmts(wf, l.Body); err != nil {
					errs[w] = err
					return
				}
			}
			atomic.AddInt64(&opsTotal, wi.ops)
		}(w, wlo, whi)
	}
	wg.Wait()
	in.ops += atomic.LoadInt64(&opsTotal)
	for _, err := range errs {
		if err != nil {
			return sigNone, err
		}
	}
	in.finalizeParallel(f, l, lp, workers, trips)
	return sigNone, nil
}

// finalizeParallel merges reduction accumulators into the shared variables
// and writes back last-iteration private copies (§6.3.1, §6.3.4).
func (in *Interp) finalizeParallel(f *frame, l *ir.DoLoop, lp *LoopPlan, workers int, trips int64) {
	bases := in.workerBase[l]
	for _, red := range lp.Reductions {
		shared := in.refOf(f, red.Sym)
		n := red.Sym.NElems()
		if !lp.Staggered || workers == 1 || n < int64(lp.Chunks) || lp.Chunks < 2 {
			// One lock: processors finalize serially (the §6.3.2 baseline).
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					mu.Lock()
					defer mu.Unlock()
					base := bases[red.Sym][w]
					for k := int64(0); k < n; k++ {
						v := in.arena[base+k]
						if v != identity(red.Op) {
							in.arena[shared.Base+k] = combine(red.Op, in.arena[shared.Base+k], v)
						}
					}
				}(w)
			}
			wg.Wait()
			continue
		}
		// Staggered multi-lock finalization: chunk c guarded by locks[c];
		// worker w visits chunks w, w+1, ..., wrapping (§6.3.4).
		chunks := lp.Chunks
		locks := make([]sync.Mutex, chunks)
		per := (n + int64(chunks) - 1) / int64(chunks)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := bases[red.Sym][w]
				for i := 0; i < chunks; i++ {
					c := (w + i) % chunks
					lo := int64(c) * per
					hi := lo + per
					if hi > n {
						hi = n
					}
					locks[c].Lock()
					for k := lo; k < hi; k++ {
						v := in.arena[base+k]
						if v != identity(red.Op) {
							in.arena[shared.Base+k] = combine(red.Op, in.arena[shared.Base+k], v)
						}
					}
					locks[c].Unlock()
				}
			}(w)
		}
		wg.Wait()
	}
	// No private write-back is needed: the last worker used the original
	// storage as its private copy (§5.4), so the shared state already equals
	// the sequential final state. The Finalize list only drives the cost
	// model's accounting.
	_ = trips
}

// workerClone shares the arena but rebases every reachable procedure's
// locals to this worker's private storage, keeps a private virtual-time
// counter, and drops hooks (instrumentation is not thread-safe).
func (in *Interp) workerClone(l *ir.DoLoop, w int) *Interp {
	base := in.base
	if locals := in.workerLocals[l]; len(locals) > w && len(locals[w]) > 0 {
		base = make(map[*ir.Symbol]int64, len(in.base))
		for k, v := range in.base {
			base[k] = v
		}
		for k, v := range locals[w] {
			base[k] = v
		}
	}
	return &Interp{
		Prog:     in.Prog,
		Out:      in.Out,
		Mode:     ModeTree, // worker bodies run via execStmts; keep tree-only
		arena:    in.arena,
		base:     base,
		blockOff: in.blockOff,
		tempBase: in.tempBase,
		tempTop:  in.tempTop,
	}
}

// planFor returns the plan for a loop, if parallel execution is enabled.
func (in *Interp) planFor(l *ir.DoLoop) *LoopPlan {
	if in.plan == nil || in.inParallel {
		return nil
	}
	return in.plan.Loops[l]
}

// Validate compares two arenas element-wise with a tolerance for the
// floating-point reassociation parallel reductions introduce (§6.5.2).
func Validate(seq, par []float64, tol float64) error {
	if len(seq) != len(par) {
		return fmt.Errorf("exec: arena sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a == b {
			continue
		}
		diff := math.Abs(a - b)
		scale := math.Max(math.Abs(a), math.Abs(b))
		if diff > tol*math.Max(scale, 1) {
			return fmt.Errorf("exec: cell %d differs: %g vs %g", i, a, b)
		}
	}
	return nil
}
