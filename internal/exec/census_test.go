package exec_test

import (
	"testing"

	"suifx/internal/exec"
	"suifx/internal/workloads"
)

// TestFusionCensusPatterns re-runs the measurement that chose the fused
// opcode set: the dynamic pair/triple census over every workload. The
// patterns the fusion pass targets must actually dominate real traces —
// if a workload change makes them vanish, the superinstruction set needs
// re-deriving.
func TestFusionCensusPatterns(t *testing.T) {
	total := map[string]int64{}
	for _, w := range workloads.All() {
		pats, err := exec.FusionCensus(w.Fresh(), nil)
		if err != nil {
			t.Fatalf("%s: census run failed: %v", w.Name, err)
		}
		if len(pats) == 0 {
			t.Fatalf("%s: empty census", w.Name)
		}
		for _, p := range pats {
			total[p.Pattern] += p.Count
		}
	}

	// The load-index pair and the index+element-access pairs are the bread
	// and butter of array code; compare+branch closes every IF. All must
	// show up hot across the suite.
	for _, want := range []string{
		"opLoadG+opIdx",
		"opIdxAdd+opLoadGE",
		"opIdxAdd+opStoreGE",
	} {
		if total[want] <= 0 {
			t.Errorf("pattern %s absent from workload census", want)
		}
	}
	var cmpJZ int64
	for _, cmp := range []string{"opEQ", "opNE", "opLT", "opLE", "opGT", "opGE"} {
		cmpJZ += total[cmp+"+opJZ"]
	}
	if cmpJZ <= 0 {
		t.Error("no compare+opJZ pairs in workload census")
	}
	if total["opLoadG+opIdx+opLoadGE"] <= 0 {
		t.Error("full load-index-element triple absent from workload census")
	}
}
