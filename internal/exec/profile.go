package exec

import (
	"sort"

	"suifx/internal/ir"
)

// LoopProfile is the Loop Profile Analyzer's record for one loop (§2.5.1):
// total virtual time (operations), invocations, and iterations.
type LoopProfile struct {
	ID          string
	Loop        *ir.DoLoop
	Proc        string
	Invocations int64
	Iterations  int64
	// TotalOps counts operations executed inside the loop (inclusive of
	// nested loops and callees).
	TotalOps int64
	// Depth>0 entries were nested under another active loop when sampled.
	NestedOps int64
}

// OpsPerInvocation is the loop's average computation per invocation.
func (lp *LoopProfile) OpsPerInvocation() float64 {
	if lp.Invocations == 0 {
		return 0
	}
	return float64(lp.TotalOps) / float64(lp.Invocations)
}

// Profiler implements the Loop Profile Analyzer: it instruments loop entry
// and exit and records per-loop virtual time. Under the tree engine it runs
// as a hook chain; under the bytecode engine the VM tallies flat per-loop
// arrays which are folded in via absorb — the public API answers
// identically either way.
type Profiler struct {
	in        *Interp
	loops     map[*ir.DoLoop]*LoopProfile
	stack     []profEntry
	installed bool
}

type profEntry struct {
	lp      *LoopProfile
	startOp int64
}

// NewProfiler attaches a profiler to an interpreter (ordered after any
// previously attached analyzer).
func NewProfiler(in *Interp) *Profiler {
	p := &Profiler{in: in, loops: map[*ir.DoLoop]*LoopProfile{}}
	in.analyzers = append(in.analyzers, p)
	return p
}

// install chains the profiler into the interpreter's hooks for
// tree-walking runs (idempotent; called by Run).
func (p *Profiler) install(in *Interp) {
	if p.installed {
		return
	}
	p.installed = true
	prevEnter, prevExit, prevIter := in.Hooks.OnLoopEnter, in.Hooks.OnLoopExit, in.Hooks.OnLoopIter
	in.Hooks.OnLoopEnter = func(proc string, l *ir.DoLoop) {
		if prevEnter != nil {
			prevEnter(proc, l)
		}
		lp := p.loops[l]
		if lp == nil {
			lp = &LoopProfile{ID: l.ID(proc), Loop: l, Proc: proc}
			p.loops[l] = lp
		}
		lp.Invocations++
		p.stack = append(p.stack, profEntry{lp: lp, startOp: in.Ops()})
	}
	in.Hooks.OnLoopIter = func(proc string, l *ir.DoLoop, iter int64) {
		if prevIter != nil {
			prevIter(proc, l, iter)
		}
		if lp := p.loops[l]; lp != nil {
			lp.Iterations++
		}
	}
	in.Hooks.OnLoopExit = func(proc string, l *ir.DoLoop) {
		if prevExit != nil {
			prevExit(proc, l)
		}
		if len(p.stack) == 0 {
			return
		}
		top := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		top.lp.TotalOps += in.Ops() - top.startOp
	}
}

// absorb folds one bytecode run's per-loop tallies into the profile maps.
func (p *Profiler) absorb(cd *code, st *profState) {
	for li := range cd.loops {
		if st.inv[li] == 0 {
			continue // never entered: no profile entry, like the tree engine
		}
		lm := &cd.loops[li]
		lp := p.loops[lm.loop]
		if lp == nil {
			lp = &LoopProfile{ID: lm.loop.ID(lm.proc), Loop: lm.loop, Proc: lm.proc}
			p.loops[lm.loop] = lp
		}
		lp.Invocations += st.inv[li]
		lp.Iterations += st.iters[li]
		lp.TotalOps += st.tops[li]
	}
}

// TotalOps returns total program virtual time after the run.
func (p *Profiler) TotalOps() int64 { return p.in.Ops() }

// Profiles returns all loop profiles sorted by decreasing total time.
func (p *Profiler) Profiles() []*LoopProfile {
	out := make([]*LoopProfile, 0, len(p.loops))
	for _, lp := range p.loops {
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalOps != out[j].TotalOps {
			return out[i].TotalOps > out[j].TotalOps
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Of returns the profile for a specific loop (nil if never executed).
func (p *Profiler) Of(l *ir.DoLoop) *LoopProfile { return p.loops[l] }

// Coverage returns the fraction of total time spent in the given loops
// (counting outermost occurrences only, to avoid double counting nests —
// callers pass the set of chosen parallel loops).
func (p *Profiler) Coverage(loops []*ir.DoLoop) float64 {
	tot := p.TotalOps()
	if tot == 0 {
		return 0
	}
	var in int64
	for _, l := range loops {
		if lp := p.loops[l]; lp != nil {
			in += lp.TotalOps
		}
	}
	f := float64(in) / float64(tot)
	if f > 1 {
		f = 1
	}
	return f
}
