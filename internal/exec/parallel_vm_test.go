package exec

import (
	"math"
	"testing"

	"suifx/internal/minif"
)

// TestTripCountBoundary pins the shared trip-count formula on boundary
// cases. The tolerance must be relative to the trip count: the old
// absolute +1e-9 epsilon was swamped by division rounding once the trip
// count reached a few hundred million with fractional steps, dropping the
// final iteration (the last three cases below regress that), and the
// tolerance must behave identically for negative steps.
func TestTripCountBoundary(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		want         int64
	}{
		{1, 10, 1, 10},
		{10, 1, -1, 10},
		{1, 10, -1, 0},   // wrong-direction step: zero trips
		{10, 1, 1, 0},    // wrong-direction step: zero trips
		{1, 1, 1, 1},     // degenerate single-trip
		{1, 1, -1, 1},    // degenerate single-trip, negative step
		{0.1, 1.0, 0.1, 10},
		{1.0, 0.1, -0.1, 10},
		{0, 0.95, 0.1, 10},  // hi between grid points
		{0.95, 0, -0.1, 10}, // same, descending
		{1, 0.5, -0.25, 3},
		// Large fractional trip counts: the absolute-epsilon formula
		// returns 499999999 for all three (one iteration short).
		{0, 0.7 * 499999999, 0.7, 500000000},
		{0.7 * 499999999, 0, -0.7, 500000000},
		{1, 1 + 0.7*499999999, 0.7, 500000000},
	}
	for _, c := range cases {
		if got := tripCount(c.lo, c.hi, c.step); got != c.want {
			t.Errorf("tripCount(%v, %v, %v) = %d, want %d", c.lo, c.hi, c.step, got, c.want)
		}
	}
}

// TestFractionalStepEnginesAgree runs fractional- and negative-step loops
// on both engines: trip counts and arenas must match bit-for-bit, since
// both engines share tripCount and the multiplicative index recurrence.
func TestFractionalStepEnginesAgree(t *testing.T) {
	srcs := []string{
		`
      PROGRAM main
      REAL x, s
      INTEGER n
      s = 0.0
      n = 0
      DO 10 x = 0.1, 2.0, 0.1
        s = s + x
        n = n + 1
10    CONTINUE
      END
`,
		`
      PROGRAM main
      REAL x, s
      INTEGER n
      s = 0.0
      n = 0
      DO 10 x = 2.0, 0.1, -0.1
        s = s + x
        n = n + 1
10    CONTINUE
      END
`,
		`
      PROGRAM main
      REAL x, s
      INTEGER n
      s = 0.0
      n = 0
      DO 10 x = 1.0, 0.5, -0.25
        s = s + x
        n = n + 1
10    CONTINUE
      END
`,
	}
	for i, src := range srcs {
		tree := New(minif.MustParse("t", src))
		tree.Mode = ModeTree
		if err := tree.Run(); err != nil {
			t.Fatalf("case %d tree: %v", i, err)
		}
		vm := New(minif.MustParse("t", src))
		vm.Mode = ModeBytecode
		if err := vm.Run(); err != nil {
			t.Fatalf("case %d bytecode: %v", i, err)
		}
		if tree.Ops() != vm.Ops() {
			t.Errorf("case %d: ops differ: tree %d vs bytecode %d", i, tree.Ops(), vm.Ops())
		}
		ta, va := tree.Arena(), vm.Arena()
		for k := range ta {
			if math.Float64bits(ta[k]) != math.Float64bits(va[k]) {
				t.Errorf("case %d: cell %d differs: %g vs %g", i, k, ta[k], va[k])
				break
			}
		}
	}
}

// runPlanned executes redSrc under its reduction plan on one engine and
// returns the finished interpreter.
func runPlanned(t *testing.T, mode ExecMode, workers int, staggered bool) *Interp {
	t.Helper()
	prog := minif.MustParse("t", redSrc)
	plan := planFor(t, prog, workers, staggered)
	in := NewWithPlan(prog, plan)
	in.Mode = mode
	if err := in.Run(); err != nil {
		t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
	}
	return in
}

// TestParallelReductionDeterminism is the regression for the reduction
// finalization nondeterminism: worker contributions are merged in fixed
// index order, so 20 repeated runs at 4 workers must produce bit-identical
// arenas — on both engines, under both finalization disciplines. (The old
// finalization let goroutines race for one mutex, so the floating-point
// combine order — and the low bits of the result — varied run to run.)
func TestParallelReductionDeterminism(t *testing.T) {
	for _, mode := range []ExecMode{ModeTree, ModeBytecode, ModeTiered} {
		for _, staggered := range []bool{false, true} {
			var first []uint64
			for run := 0; run < 20; run++ {
				in := runPlanned(t, mode, 4, staggered)
				bits := make([]uint64, len(in.Arena()))
				for i, v := range in.Arena() {
					bits[i] = math.Float64bits(v)
				}
				if first == nil {
					first = bits
					continue
				}
				for i := range bits {
					if bits[i] != first[i] {
						t.Fatalf("mode=%v staggered=%v run %d: cell %d differs from run 0: %x vs %x",
							mode, staggered, run, i, bits[i], first[i])
					}
				}
			}
		}
	}
}

// TestParallelVMMatchesTree runs the planned reduction kernel on all three
// engines at several worker counts: the full arenas — worker banks
// included — must be bit-identical, and the virtual clocks equal.
func TestParallelVMMatchesTree(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, staggered := range []bool{false, true} {
			tree := runPlanned(t, ModeTree, workers, staggered)
			for _, mode := range []ExecMode{ModeBytecode, ModeTiered} {
				vm := runPlanned(t, mode, workers, staggered)
				if tree.Ops() != vm.Ops() {
					t.Errorf("workers=%d staggered=%v mode=%v: ops differ: tree %d vs vm %d",
						workers, staggered, mode, tree.Ops(), vm.Ops())
				}
				ta, va := tree.Arena(), vm.Arena()
				if len(ta) != len(va) {
					t.Fatalf("workers=%d: arena sizes differ: %d vs %d", workers, len(ta), len(va))
				}
				for i := range ta {
					if math.Float64bits(ta[i]) != math.Float64bits(va[i]) {
						t.Errorf("workers=%d staggered=%v mode=%v: cell %d differs: %g vs %g",
							workers, staggered, mode, i, ta[i], va[i])
						break
					}
				}
			}
		}
	}
}

// TestParallelStatsCounters checks the per-loop parallel statistics and
// engine counters surfaced through /v1/stats.
func TestParallelStatsCounters(t *testing.T) {
	before := ReadCounters()
	in := runPlanned(t, ModeBytecode, 4, true)
	after := ReadCounters()
	stats := in.ParallelStats()
	if len(stats) != 1 {
		t.Fatalf("want 1 planned loop stat, got %d", len(stats))
	}
	st := stats[0]
	if st.Invocations != 1 || st.Workers != 4 {
		t.Errorf("stat = %+v, want 1 invocation at 4 workers", st)
	}
	if st.CritOps <= 0 || st.WorkerOps < st.CritOps {
		t.Errorf("implausible ops: worker=%d crit=%d", st.WorkerOps, st.CritOps)
	}
	if crit := in.CriticalPathOps(); crit <= 0 || crit >= in.Ops() {
		t.Errorf("critical path %d not in (0, %d)", crit, in.Ops())
	}
	if after.ParallelLoopRuns <= before.ParallelLoopRuns {
		t.Errorf("parallel_loop_runs did not advance: %d -> %d", before.ParallelLoopRuns, after.ParallelLoopRuns)
	}
	if after.CompiledViews <= before.CompiledViews {
		t.Errorf("compiled_worker_views did not advance: %d -> %d", before.CompiledViews, after.CompiledViews)
	}
}
