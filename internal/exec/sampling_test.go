package exec_test

// Closed-form unit tests for DDA iteration sampling (§2.5.2 optimization 2):
// the warm-up window, the modulo boundary, and the SampleEvery=1 ≡ full
// equivalence — asserted on both engines, which must agree exactly.

import (
	"io"
	"testing"

	"suifx/internal/exec"
	"suifx/internal/minif"
)

// updateLoop performs 4 instrumented accesses per sampled iteration:
// reads of i (index expr) and a(i) on the RHS, the read of i in the LHS
// index, and the write of a(i). accesses = 4 × #sampled.
const updateLoop = `
      PROGRAM smp
      REAL a(32)
      INTEGER i
      DO 10 i = 1, 20
        a(i) = a(i) + 1.0
10    CONTINUE
      END
`

// reduceLoop carries a flow dependence on s between consecutive *sampled*
// iterations: accesses = 4 × #sampled (reads of s, i, a(i); write of s),
// carried = #sampled − 1. The loop-index write itself is not hooked, so i
// never records a last-write and contributes no dependence.
const reduceLoop = `
      PROGRAM red
      REAL a(32), s
      INTEGER i
      DO 10 i = 1, %N%
        s = s + a(i)
10    CONTINUE
      END
`

func runSampled(t *testing.T, src string, mode exec.ExecMode, every, warm int64) *exec.DynDep {
	t.Helper()
	prog, err := minif.Parse("smp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := exec.New(prog)
	in.Mode = mode
	in.Out = io.Discard
	d := exec.NewDynDep(in)
	d.SampleEvery = every
	d.SampleWarm = warm
	if err := in.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d
}

func firstLoopCarried(t *testing.T, src string, mode exec.ExecMode, every, warm int64) (accesses, carried int64) {
	t.Helper()
	prog, err := minif.Parse("smp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := exec.New(prog)
	in.Mode = mode
	in.Out = io.Discard
	d := exec.NewDynDep(in)
	d.SampleEvery = every
	d.SampleWarm = warm
	if err := in.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range prog.Procs {
		for _, l := range p.Loops() {
			carried += d.Carried(l)
		}
	}
	return d.Accesses(), carried
}

func bothModes(t *testing.T, f func(t *testing.T, mode exec.ExecMode)) {
	t.Run("tree", func(t *testing.T) { f(t, exec.ModeTree) })
	t.Run("bytecode", func(t *testing.T) { f(t, exec.ModeBytecode) })
}

func TestSamplingWarmupAndBoundary(t *testing.T) {
	bothModes(t, func(t *testing.T, mode exec.ExecMode) {
		// Default warm-up is 2: iterations {0,1} plus every 5th
		// {0,5,10,15} → sampled set {0,1,5,10,15}, 4 accesses each.
		d := runSampled(t, updateLoop, mode, 5, 0)
		if got := d.Accesses(); got != 20 {
			t.Errorf("SampleEvery=5 default warm: accesses = %d, want 20", got)
		}
		// Explicit warm-up of 4: {0,1,2,3} ∪ {0,5,10,15} → 7 sampled.
		d = runSampled(t, updateLoop, mode, 5, 4)
		if got := d.Accesses(); got != 28 {
			t.Errorf("SampleEvery=5 warm=4: accesses = %d, want 28", got)
		}
	})
}

func TestSamplingEveryOneIsFull(t *testing.T) {
	bothModes(t, func(t *testing.T, mode exec.ExecMode) {
		d1 := runSampled(t, updateLoop, mode, 1, 0)
		d0 := runSampled(t, updateLoop, mode, 0, 0)
		if d1.Accesses() != 80 || d0.Accesses() != 80 {
			t.Errorf("SampleEvery<=1 must instrument all 20 iterations: got %d and %d, want 80",
				d1.Accesses(), d0.Accesses())
		}
	})
}

func TestSamplingCarriedAcrossSampledIters(t *testing.T) {
	src20 := replaceN(reduceLoop, "20")
	src25 := replaceN(reduceLoop, "25")
	bothModes(t, func(t *testing.T, mode exec.ExecMode) {
		// warm=4, every=7, N=20 → sampled {0,1,2,3,7,14}: 6 iterations,
		// 24 accesses, 5 carried flow deps on s.
		acc, car := firstLoopCarried(t, src20, mode, 7, 4)
		if acc != 24 || car != 5 {
			t.Errorf("warm=4 every=7: accesses=%d carried=%d, want 24/5", acc, car)
		}
		// default warm=2, every=10, N=25 → sampled {0,1,10,20}: 4
		// iterations, 16 accesses, 3 carried.
		acc, car = firstLoopCarried(t, src25, mode, 10, 0)
		if acc != 16 || car != 3 {
			t.Errorf("warm=2 every=10: accesses=%d carried=%d, want 16/3", acc, car)
		}
		// Full instrumentation for reference: N=20 → 80 accesses, 19 carried.
		acc, car = firstLoopCarried(t, src20, mode, 1, 0)
		if acc != 80 || car != 19 {
			t.Errorf("full: accesses=%d carried=%d, want 80/19", acc, car)
		}
	})
}

func replaceN(src, n string) string {
	out := ""
	for i := 0; i < len(src); i++ {
		if i+3 <= len(src) && src[i:i+3] == "%N%" {
			out += n
			i += 2
			continue
		}
		out += string(src[i])
	}
	return out
}
