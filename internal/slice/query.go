package slice

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"suifx/internal/issa"
)

// Query errors a transport layer maps to its own status codes.
var (
	// ErrBadKind means the kind string is not program|data|control.
	ErrBadKind = errors.New("unknown slice kind (program|data|control)")
	// ErrNeedVar means a program/data slice was asked without a variable.
	ErrNeedVar = errors.New("program and data slices need a variable")
	// ErrEmpty means no slice was found at the anchor.
	ErrEmpty = errors.New("no slice found (check proc, line, and var)")
)

// Query computes a slice by kind over an already-built SSA graph and
// returns the lines per procedure, sorted, plus the normalized kind. It is
// the shared backend of the suifxd /v1/slice endpoint, the session /slice
// route, and the explorer CLI; proc and varName are canonicalized to upper
// case here so callers can pass user input verbatim.
func Query(g *issa.Graph, kind, proc, varName string, line int) (map[string][]int, string, error) {
	kind = strings.ToLower(kind)
	if kind == "" {
		kind = "program"
	}
	proc = strings.ToUpper(proc)
	varName = strings.ToUpper(varName)

	var res *Result
	switch kind {
	case "control":
		sl := New(g, Config{Kind: Program})
		res = sl.ControlSliceOfLine(proc, line)
	case "program", "data":
		if varName == "" {
			return nil, kind, fmt.Errorf("%s slice: %w", kind, ErrNeedVar)
		}
		k := Program
		if kind == "data" {
			k = Data
		}
		sl := New(g, Config{Kind: k})
		res = sl.OfUse(proc, varName, line)
	default:
		return nil, kind, fmt.Errorf("%q: %w", kind, ErrBadKind)
	}

	out := map[string][]int{}
	n := 0
	for pname, lineSet := range res.Lines() {
		lines := make([]int, 0, len(lineSet))
		for l := range lineSet {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		out[pname] = lines
		n += len(lines)
	}
	for st := range res.ExtraStmts {
		out[proc] = insertSorted(out[proc], st.Position().Line)
	}
	if n == 0 && len(res.ExtraStmts) == 0 {
		return nil, kind, fmt.Errorf("%s line %d: %w", proc, line, ErrEmpty)
	}
	return out, kind, nil
}

func insertSorted(lines []int, l int) []int {
	i := sort.SearchInts(lines, l)
	if i < len(lines) && lines[i] == l {
		return lines
	}
	lines = append(lines, 0)
	copy(lines[i+1:], lines[i:])
	lines[i] = l
	return lines
}
