package slice

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/issa"
	"suifx/internal/minif"
)

func build(t *testing.T, src string) *issa.Graph {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return issa.Build(prog)
}

func hasLine(r *Result, proc string, line int) bool {
	m := r.Lines()[proc]
	return m != nil && m[line]
}

// Fig 3-3: the context-sensitive slice of G in P must include R's increment
// and P's own assignment, but not Q's assignment to H.
const fig33 = `
      SUBROUTINE r(f)
      INTEGER f
      f = f + 1
      END
      SUBROUTINE p
      COMMON /gh/ g, h
      INTEGER g, h, x
      g = 1
      CALL r(g)
      x = g
      END
      SUBROUTINE q
      COMMON /gh/ g, h
      INTEGER g, h
      h = 2
      CALL r(h)
      END
      PROGRAM main
      COMMON /gh/ g, h
      INTEGER g, h
      g = 0
      h = 0
      CALL p
      CALL q
      END
`

func TestContextSensitiveSlice(t *testing.T) {
	g := build(t, fig33)
	s := New(g, Config{Kind: Data})
	// Lines (1-based in the fig33 string): f=f+1 at 4, g=1 at 9, CALL r(g)
	// at 10, x=g at 11, h=2 at 16, CALL r(h) at 17.
	res := s.OfUse("P", "G", 11)
	if !hasLine(res, "R", 4) {
		t.Fatalf("slice %v should include R's increment", res.SortedLines())
	}
	if !hasLine(res, "P", 9) {
		t.Fatalf("slice %v should include g = 1", res.SortedLines())
	}
	if hasLine(res, "Q", 16) {
		t.Fatalf("context-insensitive leak: slice %v includes Q's h = 2", res.SortedLines())
	}
}

func TestSliceThroughLoopRecurrence(t *testing.T) {
	src := `
      PROGRAM main
      REAL a(10), s, seed
      INTEGER i
      seed = 3.0
      s = seed
      DO 10 i = 1, 10
        s = s + a(i)
10    CONTINUE
      a(1) = s
      END
`
	g := build(t, src)
	s := New(g, Config{Kind: Data})
	res := s.OfUse("MAIN", "S", 10)       // a(1) = s
	for _, want := range []int{5, 6, 8} { // seed=3.0, s=seed, s=s+a(i)
		if !hasLine(res, "MAIN", want) {
			t.Fatalf("slice %v missing line %d", res.SortedLines(), want)
		}
	}
}

// §3.1's portfolio example: the control slice of the write to XPS must
// include the IF ... GO TO guard, which is what the user overlooked.
const portfolio = `
      PROGRAM main
      REAL xps(50), y(51), xp(500)
      INTEGER s, h, jj, n, nls
      n = 9
      nls = 50
      DO 2365 s = 1, n
        IF (s .NE. 1 .AND. s .NE. 5) GO TO 2355
        DO 2350 h = 1, nls
          xps(h) = y(h+1)
2350    CONTINUE
2355    CONTINUE
        DO 2360 jj = 1, nls
          xp(s+(jj-1)*n) = xps(jj)
2360    CONTINUE
2365  CONTINUE
      END
`

func TestControlSlicePortfolio(t *testing.T) {
	g := build(t, portfolio)
	s := New(g, Config{Kind: Program})
	// Control slice of the write xps(h) = y(h+1) at line 10.
	res := s.ControlSliceOfLine("MAIN", 10)
	foundGuard := false
	for st := range res.ExtraStmts {
		if st.Position().Line == 8 { // the IF ... GO TO 2355 guard
			foundGuard = true
		}
	}
	if !foundGuard {
		t.Fatalf("control slice must include the IF guard at line 8: %v", res.SortedLines())
	}
	// The read at line 14 is NOT controlled by that IF.
	res2 := s.ControlSliceOfLine("MAIN", 14)
	for st := range res2.ExtraStmts {
		if st.Position().Line == 8 {
			t.Fatal("the read of xps is not under the line-8 guard")
		}
	}
}

func TestArrayRestrictedPruning(t *testing.T) {
	src := `
      PROGRAM main
      REAL rs(10), rl(10), w(10)
      INTEGER k, kc, i
      DO 5 i = 1, 10
        rs(i) = w(i) * 2.0
5     CONTINUE
      kc = 0
      DO 10 k = 1, 9
        IF (rs(k) .GT. 2.0) kc = kc + 1
10    CONTINUE
      rl(1) = kc
      END
`
	g := build(t, src)
	full := New(g, Config{Kind: Program})
	restricted := New(g, Config{Kind: Program, ArrayRestricted: true})
	fr := full.OfUse("MAIN", "KC", 12) // rl(1) = kc
	rr := restricted.OfUse("MAIN", "KC", 12)
	if fr.Size() <= rr.Size() {
		t.Fatalf("array restriction should shrink the slice: full=%d restricted=%d", fr.Size(), rr.Size())
	}
	// The defining line of rs (inside loop 5) disappears once rs is pruned.
	if !hasLine(fr, "MAIN", 6) {
		t.Fatalf("full slice %v should reach rs's definition", fr.SortedLines())
	}
	if hasLine(rr, "MAIN", 6) {
		t.Fatalf("array-restricted slice %v should prune at rs", rr.SortedLines())
	}
}

func TestRegionRestrictedPruning(t *testing.T) {
	src := `
      PROGRAM main
      REAL a(10), b(10)
      INTEGER i, base
      base = 3
      DO 10 i = 1, 10
        a(i) = b(i) + base
10    CONTINUE
      END
`
	g := build(t, src)
	full := New(g, Config{Kind: Program})
	region := New(g, Config{Kind: Program, Region: &Region{Proc: "MAIN", Lo: 6, Hi: 8}})
	fr := full.OfUse("MAIN", "BASE", 7)
	rr := region.OfUse("MAIN", "BASE", 7)
	if !hasLine(fr, "MAIN", 5) {
		t.Fatalf("full slice %v should include base = 3", fr.SortedLines())
	}
	if rr.SizeIn(Region{Proc: "MAIN", Lo: 6, Hi: 8}) > fr.SizeIn(Region{Proc: "MAIN", Lo: 6, Hi: 8}) {
		t.Fatal("region restriction must not grow the in-region slice")
	}
}

func TestCallingContextSlice(t *testing.T) {
	g := build(t, fig33)
	s := New(g, Config{Kind: Data})
	// Find the CALL r(g) statement in P (line 10).
	var callInP *ir.Call
	ir.WalkStmts(g.Prog.Proc("P").Body, func(st ir.Stmt) bool {
		if c, ok := st.(*ir.Call); ok && c.Pos.Line == 10 {
			callInP = c
		}
		return true
	})
	if callInP == nil {
		t.Fatal("no CALL r(g) found")
	}
	// Slice of f inside R, in the context of P's call: includes g = 1 but
	// not Q's h = 2.
	res := s.OfUseInContext("R", "F", 4, []*ir.Call{callInP})
	if !hasLine(res, "P", 9) {
		t.Fatalf("context slice %v should include g = 1 from P", res.SortedLines())
	}
	if hasLine(res, "Q", 16) {
		t.Fatalf("context slice %v must exclude Q", res.SortedLines())
	}
	// Without a context, both callers contribute.
	all := s.OfUse("R", "F", 4)
	if !hasLine(all, "Q", 16) || !hasLine(all, "P", 9) {
		t.Fatalf("context-free slice %v should include both callers", all.SortedLines())
	}
}

func TestWeakUpdateKeepsOldArrayValue(t *testing.T) {
	src := `
      PROGRAM main
      REAL a(10), x, y
      INTEGER i
      x = 1.0
      a(1) = x
      y = 2.0
      a(2) = y
      x = a(1)
      END
`
	g := build(t, src)
	s := New(g, Config{Kind: Data})
	res := s.OfUse("MAIN", "A", 9) // x = a(1)
	// Weak updates: both stores (and both scalar defs) are in the slice.
	for _, want := range []int{5, 6, 7, 8} {
		if !hasLine(res, "MAIN", want) {
			t.Fatalf("slice %v missing line %d", res.SortedLines(), want)
		}
	}
}

func TestHierarchicalSharing(t *testing.T) {
	// The same subslice feeding two queries must be the same Summary.
	src := `
      PROGRAM main
      INTEGER a, b, c, d
      a = 1
      b = a + 1
      c = b * 2
      d = b * 3
      END
`
	g := build(t, src)
	s := New(g, Config{Kind: Data})
	var cDef, dDef *issa.Node
	for _, n := range g.Nodes {
		if n.Sym != nil && n.Sym.Name == "C" && n.Kind == issa.KDef {
			cDef = n
		}
		if n.Sym != nil && n.Sym.Name == "D" && n.Kind == issa.KDef {
			dDef = n
		}
	}
	sc := s.Of(cDef)
	sd := s.Of(dDef)
	if len(sc.Subs) == 0 || len(sd.Subs) == 0 {
		t.Fatal("summaries missing subs")
	}
	shared := false
	for _, x := range sc.Subs {
		for _, y := range sd.Subs {
			if x == y {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatal("the slice of b should be shared between c's and d's summaries")
	}
}
