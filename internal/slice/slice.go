// Package slice implements the demand-driven, context-sensitive
// interprocedural slicing of Chapter 3 on the ISSA graph: slice summaries
// ⟨S, F⟩ per definition (call subslice + upwards-exposed formals, §3.5.2),
// a hierarchical shared representation of slice sets (§3.5.4), fixed-point
// handling of loop-carried recurrences (§3.5.3), program/data/control
// slices (§3.2.1), calling-context-specific slices, and the array- and
// code-region-restricted pruning of §3.6.
package slice

import (
	"sort"

	"suifx/internal/ir"
	"suifx/internal/issa"
)

// Kind selects which dependence edges the slice follows.
type Kind int

const (
	// Program slices follow data and control dependences.
	Program Kind = iota
	// Data slices follow only data dependence edges.
	Data
)

// Region restricts a slice to a code region (§3.6): nodes of the named
// procedure outside [Lo, Hi] become terminal.
type Region struct {
	Proc   string
	Lo, Hi int
}

// Config selects slice kind and pruning.
type Config struct {
	Kind Kind
	// ArrayRestricted prunes expansion at array-valued definitions (§3.6).
	ArrayRestricted bool
	// Region, when non-nil, prunes expansion outside the region (§3.6).
	Region *Region
}

// Summary is a slice summary ⟨S, F⟩ in hierarchical representation: the
// direct entries plus shared child summaries form S; Formals is F.
type Summary struct {
	Node    *issa.Node
	Entries []*issa.Node // terminal inclusions (pruned nodes)
	Subs    []*Summary
	Formals map[*issa.Node]bool
	// calleeSubs marks subs reached through a return edge: their formals are
	// resolved context-sensitively by the call watcher, never propagated.
	calleeSubs map[*Summary]bool
}

// Slicer computes and memoizes slice summaries for one configuration.
type Slicer struct {
	G   *issa.Graph
	Cfg Config

	memo map[*issa.Node]*Summary
	// watchers lists call-out summaries that must be re-expanded when a
	// callee summary's F set grows.
	watchers map[*Summary][]*callWatch
	worklist []*callWatch
}

type callWatch struct {
	out      *Summary // the call-out node's summary
	callee   *Summary // the callee final-def summary being watched
	call     *ir.Call // the return edge (context)
	resolved map[*issa.Node]bool
}

// New creates a slicer over the ISSA graph.
func New(g *issa.Graph, cfg Config) *Slicer {
	return &Slicer{G: g, Cfg: cfg, memo: map[*issa.Node]*Summary{}, watchers: map[*Summary][]*callWatch{}}
}

// Of computes the slice summary of a definition node.
func (s *Slicer) Of(n *issa.Node) *Summary {
	sum := s.summary(n)
	s.drain()
	return sum
}

// summary returns (creating) the memoized summary shell for n and expands it.
func (s *Slicer) summary(n *issa.Node) *Summary {
	if sum, ok := s.memo[n]; ok {
		return sum
	}
	sum := &Summary{Node: n, Formals: map[*issa.Node]bool{}}
	s.memo[n] = sum
	s.expand(sum)
	return sum
}

// expandable reports whether the slice should recurse into n's operands.
func (s *Slicer) expandable(n *issa.Node) bool {
	if s.Cfg.ArrayRestricted && n.Sym != nil && n.Sym.IsArray() && n.Kind != issa.KFormalIn {
		return false
	}
	if rg := s.Cfg.Region; rg != nil && n.Proc == rg.Proc {
		if n.Line < rg.Lo || n.Line > rg.Hi {
			return false
		}
	}
	return true
}

func (s *Slicer) addSub(sum *Summary, op *issa.Node) {
	if !s.expandable(op) {
		// Terminal: included in the slice but not expanded, and its formal
		// (if it is one) still propagates so call sites resolve it.
		sum.Entries = append(sum.Entries, op)
		if op.Kind == issa.KFormalIn {
			s.propagateFormal(sum, op)
		}
		return
	}
	child := s.summary(op)
	for _, have := range sum.Subs {
		if have == child {
			return
		}
	}
	sum.Subs = append(sum.Subs, child)
	for f := range child.Formals {
		s.propagateFormal(sum, f)
	}
}

// propagateFormal adds f to sum's F set; if sum is a call-out that resolves
// f's procedure, resolution happens in the watcher instead.
func (s *Slicer) propagateFormal(sum *Summary, f *issa.Node) {
	if sum.Formals[f] {
		return
	}
	sum.Formals[f] = true
	// Anyone holding sum as sub must be updated; done lazily through the
	// worklist when call-outs re-check their callee watchers, and eagerly
	// here for plain parents (handled because parents copy on addSub; late
	// growth is caught by reFlow).
	s.reFlow(sum)
}

// reFlow pushes F growth to every memoized parent and re-arms call watches.
func (s *Slicer) reFlow(changed *Summary) {
	for _, sum := range s.memo {
		for _, sub := range sum.Subs {
			if sub == changed && !sum.calleeSubs[sub] {
				for f := range changed.Formals {
					if !sum.Formals[f] {
						s.propagateFormal(sum, f)
					}
				}
			}
		}
	}
	for _, w := range s.watchers[changed] {
		s.worklist = append(s.worklist, w)
	}
}

func (s *Slicer) expand(sum *Summary) {
	n := sum.Node
	switch n.Kind {
	case issa.KFormalIn:
		sum.Formals[n] = true
		return
	case issa.KCallOut:
		// ⟨S_callee, ∅⟩ ∪ ⋃_{f∈F} SS(GetActual(f, this call)) — §3.5.2.
		call, _ := n.Stmt.(*ir.Call)
		for _, fin := range n.CalleeFinal {
			child := s.summary(fin)
			sum.Subs = append(sum.Subs, child)
			if sum.calleeSubs == nil {
				sum.calleeSubs = map[*Summary]bool{}
			}
			sum.calleeSubs[child] = true
			w := &callWatch{out: sum, callee: child, call: call, resolved: map[*issa.Node]bool{}}
			s.watchers[child] = append(s.watchers[child], w)
			s.worklist = append(s.worklist, w)
		}
	default:
		for _, op := range n.Ops {
			s.addSub(sum, op)
		}
	}
	if s.Cfg.Kind == Program {
		for _, c := range n.Ctrl {
			s.addSub(sum, c)
		}
	}
}

// drain resolves call-out formals until the fixed point.
func (s *Slicer) drain() {
	for len(s.worklist) > 0 {
		w := s.worklist[len(s.worklist)-1]
		s.worklist = s.worklist[:len(s.worklist)-1]
		for f := range w.callee.Formals {
			if w.resolved[f] {
				continue
			}
			w.resolved[f] = true
			s.resolveFormal(w, f)
		}
	}
}

// resolveFormal expands one upwards-exposed callee formal through the
// matching call site's actual operands (context sensitivity: only this
// call's binding is followed, §3.5.1).
func (s *Slicer) resolveFormal(w *callWatch, f *issa.Node) {
	bindings := s.G.Bindings[f]
	matched := false
	for _, b := range bindings {
		if b.Call != w.call {
			continue
		}
		matched = true
		for _, d := range b.Defs {
			s.addSub(w.out, d)
		}
	}
	if !matched {
		// The formal belongs to a procedure further down: keep it exposed;
		// the enclosing call-out (or the top-level query) resolves it.
		s.propagateFormal(w.out, f)
	}
}

// ---- results ----

// Result is a materialized slice: the set of contributing definitions.
type Result struct {
	Nodes map[*issa.Node]bool
	// ExtraStmts carries control statements added by control slices.
	ExtraStmts map[ir.Stmt]bool
	g          *issa.Graph
}

func newResult(g *issa.Graph) *Result {
	return &Result{Nodes: map[*issa.Node]bool{}, ExtraStmts: map[ir.Stmt]bool{}, g: g}
}

func (r *Result) addSummary(sum *Summary, seen map[*Summary]bool) {
	if seen[sum] {
		return
	}
	seen[sum] = true
	if sum.Node != nil {
		r.Nodes[sum.Node] = true
	}
	for _, e := range sum.Entries {
		r.Nodes[e] = true
	}
	for _, sub := range sum.Subs {
		r.addSummary(sub, seen)
	}
}

// Lines returns the slice's source lines per procedure.
func (r *Result) Lines() map[string]map[int]bool {
	out := map[string]map[int]bool{}
	add := func(proc string, line int) {
		if line <= 0 {
			return
		}
		m := out[proc]
		if m == nil {
			m = map[int]bool{}
			out[proc] = m
		}
		m[line] = true
	}
	for n := range r.Nodes {
		if n.Kind == issa.KFormalIn {
			continue // entry values have no statement
		}
		add(n.Proc, n.Line)
	}
	for st := range r.ExtraStmts {
		add(r.procOf(st), st.Position().Line)
	}
	return out
}

func (r *Result) procOf(st ir.Stmt) string {
	for _, p := range r.g.Prog.Procs {
		found := false
		ir.WalkStmts(p.Body, func(s ir.Stmt) bool {
			if s == st {
				found = true
			}
			return !found
		})
		if found {
			return p.Name
		}
	}
	return ""
}

// Size returns the number of distinct source lines in the slice.
func (r *Result) Size() int {
	n := 0
	for _, m := range r.Lines() {
		n += len(m)
	}
	return n
}

// SizeIn counts slice lines falling inside a region.
func (r *Result) SizeIn(rg Region) int {
	n := 0
	for line := range r.Lines()[rg.Proc] {
		if line >= rg.Lo && line <= rg.Hi {
			n++
		}
	}
	return n
}

// SortedLines renders deterministic (proc, line) pairs.
func (r *Result) SortedLines() []string {
	var keys []string
	for proc, m := range r.Lines() {
		for line := range m {
			keys = append(keys, lineKey(proc, line))
		}
	}
	sort.Strings(keys)
	return keys
}

func lineKey(proc string, line int) string {
	return proc + ":" + fourDigits(line)
}

func fourDigits(n int) string {
	b := []byte{'0', '0', '0', '0'}
	for i := 3; i >= 0 && n > 0; i-- {
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b)
}

// ---- queries ----

// resolveResidualFormals expands leftover formals of the top-level slice
// through all call sites (the paper's Slice(r) definition) or along a given
// calling context (Cslice). Returns the full materialized result.
func (s *Slicer) materialize(sum *Summary, context []*ir.Call) *Result {
	res := newResult(s.G)
	res.addSummary(sum, map[*Summary]bool{})
	// Residual formals: resolve through call sites.
	doneF := map[*issa.Node]bool{}
	pending := []*issa.Node{}
	// Only the root's F set is unresolved: formals deeper in the DAG were
	// resolved context-sensitively at their call-out watchers (or propagated
	// up into the root's F when no binding matched).
	collect := func(root *Summary) {
		for f := range root.Formals {
			if !doneF[f] {
				doneF[f] = true
				pending = append(pending, f)
			}
		}
	}
	collect(sum)
	depth := len(context)
	for len(pending) > 0 {
		f := pending[0]
		pending = pending[1:]
		bindings := s.G.Bindings[f]
		for _, b := range bindings {
			if depth > 0 {
				// Context-specific: only follow the top of the stack.
				if b.Call != context[depth-1] {
					continue
				}
			}
			for _, d := range b.Defs {
				ds := s.summary(d)
				s.drain()
				res.addSummary(ds, map[*Summary]bool{})
				collect(ds)
			}
		}
		if depth > 0 {
			depth--
		}
	}
	return res
}

// OfUse computes the slice of a variable use at a source line: the union of
// slices of its reaching definitions.
func (s *Slicer) OfUse(proc, name string, line int) *Result {
	defs := s.G.FindUse(proc, name, line)
	res := newResult(s.G)
	for _, d := range defs {
		sum := s.Of(d)
		part := s.materialize(sum, nil)
		for n := range part.Nodes {
			res.Nodes[n] = true
		}
	}
	return res
}

// OfUseInContext computes a calling-context-specific slice (the paper's
// Cslice): residual formals are resolved only along the given call stack,
// innermost call last.
func (s *Slicer) OfUseInContext(proc, name string, line int, stack []*ir.Call) *Result {
	defs := s.G.FindUse(proc, name, line)
	res := newResult(s.G)
	for _, d := range defs {
		sum := s.Of(d)
		part := s.materialize(sum, stack)
		for n := range part.Nodes {
			res.Nodes[n] = true
		}
	}
	return res
}

// ControlSliceOfLine computes the control slice (§3.2.1) of the statement at
// the given line: the conditions controlling its execution plus the program
// slices of those condition expressions.
func (s *Slicer) ControlSliceOfLine(proc string, line int) *Result {
	res := newResult(s.G)
	for _, n := range s.G.NodesAtLine(proc, line) {
		for _, st := range n.CtrlStmts {
			res.ExtraStmts[st] = true
		}
		for _, c := range n.Ctrl {
			sum := s.Of(c)
			part := s.materialize(sum, nil)
			for x := range part.Nodes {
				res.Nodes[x] = true
			}
		}
	}
	return res
}
