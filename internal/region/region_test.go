package region

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

const nested = `
      SUBROUTINE work(a, n)
      REAL a(100)
      INTEGER n, i
      DO 10 i = 1, n
        a(i) = a(i) + 1.0
10    CONTINUE
      END
      PROGRAM main
      REAL a(100), b(100)
      INTEGER i, j, n
      n = 100
      DO 100 i = 1, n
        DO 50 j = 1, n
          b(j) = a(j) * 2.0
50      CONTINUE
        CALL work(a, n)
100   CONTINUE
      END
`

func TestBuildRegions(t *testing.T) {
	prog := minif.MustParse("nested", nested)
	info := Build(prog)

	top := info.ProcTop["MAIN"]
	if top == nil || top.Kind != ProcRegion {
		t.Fatal("no MAIN proc region")
	}
	if len(top.Children) != 1 {
		t.Fatalf("MAIN children = %d, want 1", len(top.Children))
	}
	outer := top.Children[0]
	if outer.Kind != LoopRegion || outer.ID() != "MAIN/100" {
		t.Fatalf("outer = %s %v", outer.ID(), outer.Kind)
	}
	body := outer.Body()
	if body.Kind != LoopBody || len(body.Children) != 1 {
		t.Fatalf("outer body children = %d", len(body.Children))
	}
	inner := body.Children[0]
	if inner.ID() != "MAIN/50" || inner.Depth != 2 {
		t.Fatalf("inner = %s depth %d", inner.ID(), inner.Depth)
	}
	if inner.EnclosingLoop() != outer {
		t.Fatal("EnclosingLoop wrong")
	}
}

func TestCallSitesAndNestKind(t *testing.T) {
	prog := minif.MustParse("nested", nested)
	info := Build(prog)
	outer := info.ProcTop["MAIN"].Children[0]
	inner := outer.Body().Children[0]

	direct := outer.Body().CallSites()
	if len(direct) != 1 || direct[0].Name != "WORK" {
		t.Fatalf("direct call sites = %v", direct)
	}
	if got := inner.Body().CallSites(); len(got) != 0 {
		t.Fatalf("inner call sites = %v", got)
	}
	if info.LoopNest(outer) != "inter" {
		t.Fatal("outer loop should be inter")
	}
	if info.LoopNest(inner) != "intra" {
		t.Fatal("inner loop should be intra")
	}
}

func TestInnerToOuterOrder(t *testing.T) {
	prog := minif.MustParse("nested", nested)
	info := Build(prog)
	order := info.InnerToOuter("MAIN")
	if len(order) != 2 {
		t.Fatalf("regions = %d", len(order))
	}
	if order[0].ID() != "MAIN/50" || order[1].ID() != "MAIN/100" {
		t.Fatalf("order = %s, %s", order[0].ID(), order[1].ID())
	}
}

func TestLoopRegionsAcrossProcs(t *testing.T) {
	prog := minif.MustParse("nested", nested)
	info := Build(prog)
	all := info.LoopRegions()
	if len(all) != 3 {
		t.Fatalf("loop regions = %d, want 3", len(all))
	}
	ids := map[string]bool{}
	for _, r := range all {
		ids[r.ID()] = true
	}
	for _, want := range []string{"WORK/10", "MAIN/100", "MAIN/50"} {
		if !ids[want] {
			t.Fatalf("missing region %s in %v", want, ids)
		}
	}
}

func TestRegionLines(t *testing.T) {
	prog := minif.MustParse("nested", nested)
	info := Build(prog)
	outer := info.ProcTop["MAIN"].Children[0]
	s, e := outer.Lines()
	if s >= e || s == 0 {
		t.Fatalf("lines = %d..%d", s, e)
	}
	// Conditional call sites are still found.
	src := `
      SUBROUTINE f
      END
      PROGRAM main
      INTEGER i
      DO 10 i = 1, 5
        IF (i .EQ. 3) CALL f
10    CONTINUE
      END
`
	p2 := minif.MustParse("cond", src)
	info2 := Build(p2)
	loop := info2.ProcTop["MAIN"].Children[0]
	if got := loop.Body().CallSites(); len(got) != 1 {
		t.Fatalf("conditional call not found: %v", got)
	}
	var _ ir.Stmt // keep import
}
