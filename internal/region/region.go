// Package region builds the hierarchical region graph of §5.2: every
// procedure, loop, and loop body is a region; edges connect regions to their
// subregions (callers to callees, outer scopes to inner scopes). Because
// MiniF is fully structured after parsing, regions are derived directly from
// the AST.
package region

import (
	"fmt"

	"suifx/internal/ir"
)

// Kind classifies a region.
type Kind int

const (
	// ProcRegion is a whole procedure body.
	ProcRegion Kind = iota
	// LoopRegion is a DO loop (header + body); its summary is the closure of
	// its body's summary.
	LoopRegion
	// LoopBody is the body of a DO loop for one iteration.
	LoopBody
)

func (k Kind) String() string {
	switch k {
	case ProcRegion:
		return "proc"
	case LoopRegion:
		return "loop"
	default:
		return "body"
	}
}

// Region is one node of the region graph.
type Region struct {
	Kind     Kind
	Proc     *ir.Proc
	Loop     *ir.DoLoop // nil for ProcRegion
	Parent   *Region
	Children []*Region // nested loop regions, in source order
	Stmts    []ir.Stmt // the statement list (proc body / loop body); nil for LoopRegion
	Depth    int       // loop nesting depth (0 for proc region)
}

// ID returns a stable identifier: "PROC" for procedure regions,
// "PROC/LABEL" for loops, "PROC/LABEL.body" for loop bodies.
func (r *Region) ID() string {
	switch r.Kind {
	case ProcRegion:
		return r.Proc.Name
	case LoopRegion:
		return r.Loop.ID(r.Proc.Name)
	default:
		return r.Loop.ID(r.Proc.Name) + ".body"
	}
}

// Body returns the LoopBody child of a LoopRegion (itself otherwise).
func (r *Region) Body() *Region {
	if r.Kind == LoopRegion {
		return r.Children[0]
	}
	return r
}

// EnclosingLoop returns the nearest enclosing LoopRegion, or nil.
func (r *Region) EnclosingLoop() *Region {
	for p := r.Parent; p != nil; p = p.Parent {
		if p.Kind == LoopRegion {
			return p
		}
	}
	return nil
}

// CallSites returns the CALL statements directly inside this region's
// statement list, not descending into nested loops (nested loops are separate
// subregions) but descending into IFs.
func (r *Region) CallSites() []*ir.Call {
	var out []*ir.Call
	var visit func(stmts []ir.Stmt)
	visit = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.Call:
				out = append(out, st)
			case *ir.If:
				visit(st.Then)
				visit(st.Else)
			}
		}
	}
	visit(r.Stmts)
	return out
}

// AllCallSites returns every CALL anywhere inside the region, including
// nested loops.
func (r *Region) AllCallSites() []*ir.Call {
	var out []*ir.Call
	stmts := r.Stmts
	if r.Kind == LoopRegion {
		stmts = r.Loop.Body
	}
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.Call); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Lines returns the source line span of the region.
func (r *Region) Lines() (start, end int) {
	switch r.Kind {
	case ProcRegion:
		return r.Proc.Pos.Line, r.Proc.EndLine
	default:
		return r.Loop.Pos.Line, r.Loop.EndLine
	}
}

// Info holds the region graph for one program.
type Info struct {
	Prog    *ir.Program
	ProcTop map[string]*Region     // procedure name -> ProcRegion
	OfLoop  map[*ir.DoLoop]*Region // DO loop -> its LoopRegion
}

// Build constructs the region graph for prog.
func Build(prog *ir.Program) *Info {
	info := &Info{
		Prog:    prog,
		ProcTop: map[string]*Region{},
		OfLoop:  map[*ir.DoLoop]*Region{},
	}
	for _, p := range prog.Procs {
		top := &Region{Kind: ProcRegion, Proc: p, Stmts: p.Body}
		info.ProcTop[p.Name] = top
		info.buildChildren(top, p, p.Body, 0)
	}
	return info
}

func (info *Info) buildChildren(parent *Region, proc *ir.Proc, stmts []ir.Stmt, depth int) {
	var visit func(stmts []ir.Stmt)
	visit = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.DoLoop:
				lr := &Region{Kind: LoopRegion, Proc: proc, Loop: st, Parent: parent, Depth: depth + 1}
				body := &Region{Kind: LoopBody, Proc: proc, Loop: st, Parent: lr, Stmts: st.Body, Depth: depth + 1}
				lr.Children = []*Region{body}
				parent.Children = append(parent.Children, lr)
				info.OfLoop[st] = lr
				info.buildChildren(body, proc, st.Body, depth+1)
			case *ir.If:
				visit(st.Then)
				visit(st.Else)
			}
		}
	}
	visit(stmts)
}

// LoopRegions returns every loop region in the program, procedures in
// declaration order and loops in source order, outermost first.
func (info *Info) LoopRegions() []*Region {
	var out []*Region
	for _, p := range info.Prog.Procs {
		var rec func(r *Region)
		rec = func(r *Region) {
			for _, c := range r.Children {
				if c.Kind == LoopRegion {
					out = append(out, c)
					rec(c.Body())
				}
			}
		}
		rec(info.ProcTop[p.Name])
	}
	return out
}

// InnerToOuter returns the loop regions of a procedure ordered innermost
// first (children before parents), as the bottom-up analysis phase requires.
func (info *Info) InnerToOuter(proc string) []*Region {
	var out []*Region
	var rec func(r *Region)
	rec = func(r *Region) {
		for _, c := range r.Children {
			if c.Kind == LoopRegion {
				rec(c.Body())
				out = append(out, c)
			}
		}
	}
	top := info.ProcTop[proc]
	if top == nil {
		return nil
	}
	rec(top)
	return out
}

// LoopNest describes whether a loop (directly or transitively) contains
// procedure calls — the paper's "inter" vs "intra" classification (Fig 4-7).
func (info *Info) LoopNest(r *Region) string {
	if r.Kind != LoopRegion {
		return ""
	}
	if info.loopHasCalls(r, map[string]bool{}) {
		return "inter"
	}
	return "intra"
}

func (info *Info) loopHasCalls(r *Region, seen map[string]bool) bool {
	for _, c := range r.AllCallSites() {
		callee := info.Prog.ByName[c.Name]
		if callee == nil {
			continue
		}
		return true
	}
	return false
}

// String renders the region tree of a procedure for debugging.
func (info *Info) String(proc string) string {
	top := info.ProcTop[proc]
	if top == nil {
		return ""
	}
	out := ""
	var rec func(r *Region, indent string)
	rec = func(r *Region, indent string) {
		out += fmt.Sprintf("%s%s [%s]\n", indent, r.ID(), r.Kind)
		for _, c := range r.Children {
			rec(c, indent+"  ")
		}
	}
	rec(top, "")
	return out
}
