package corpus_test

import (
	"testing"
	"time"

	"suifx/internal/corpus"
	"suifx/internal/exec"
	"suifx/internal/minif"
	"suifx/internal/parallel"
	"suifx/internal/summary"
)

// TestSameSeedDeterminism: the factory's core contract — (seed, config)
// regenerate the program bit-for-bit, and the manifest proves it.
func TestSameSeedDeterminism(t *testing.T) {
	cfg := corpus.Config{TargetLines: 800, AliasDensity: 0.3, ReductionMix: 0.4}
	a := corpus.Generate(42, cfg)
	b := corpus.Generate(42, cfg)
	if a.Source != b.Source {
		t.Fatal("same (seed, config) generated different sources")
	}
	if a.Manifest.SHA256 != b.Manifest.SHA256 {
		t.Fatal("same source, different manifest hashes")
	}
	if c := corpus.Generate(43, cfg); c.Source == a.Source {
		t.Fatal("different seeds generated identical sources")
	}

	rep, err := a.Manifest.Reproduce()
	if err != nil {
		t.Fatalf("Reproduce: %v", err)
	}
	if rep.Source != a.Source {
		t.Fatal("Reproduce returned different source")
	}
	bad := a.Manifest
	bad.SHA256 = "0000000000000000000000000000000000000000000000000000000000000000"
	if _, err := bad.Reproduce(); err == nil {
		t.Fatal("Reproduce accepted a corrupted manifest hash")
	}
}

// TestLadderManifestsReproduce: every recorded ladder tier regenerates from
// its manifest alone — the property BENCH_scale.json rows depend on.
func TestLadderManifestsReproduce(t *testing.T) {
	tiers := corpus.FullLadder()
	if testing.Short() {
		tiers = corpus.QuickLadder()
	}
	for _, tier := range tiers {
		p := tier.Generate()
		if _, err := p.Manifest.Reproduce(); err != nil {
			t.Errorf("tier %s: %v", tier.Name, err)
		}
		if got, ok := corpus.TierByName(tier.Name); !ok || got.Seed != tier.Seed {
			t.Errorf("TierByName(%s) lookup failed", tier.Name)
		}
	}
}

// TestKnobMonotonicityGenerator: the splittable-hash design makes knob
// monotonicity exact, not statistical. Raising a probability knob flips
// individual decisions on without reshaping the program: the structural
// stats (procs, loops) are invariant and the knob-counted stats are
// non-decreasing along the knob ladder.
func TestKnobMonotonicityGenerator(t *testing.T) {
	base := corpus.Config{TargetLines: 1500}
	densities := []float64{0, 0.25, 0.5, 0.75, 1}

	var prevAliased = -1
	shape := [2]int{-1, -1}
	for _, d := range densities {
		cfg := base
		cfg.AliasDensity = d
		st := corpus.Generate(7, cfg).Manifest.Stats
		if st.AliasedLoops < prevAliased {
			t.Errorf("alias density %v: aliased loops %d dropped below %d", d, st.AliasedLoops, prevAliased)
		}
		prevAliased = st.AliasedLoops
		if shape[0] == -1 {
			shape = [2]int{st.Procs, st.Loops}
		} else if shape != [2]int{st.Procs, st.Loops} {
			t.Errorf("alias density %v reshaped the program: procs/loops %d/%d, want %d/%d",
				d, st.Procs, st.Loops, shape[0], shape[1])
		}
	}
	if prevAliased == 0 {
		t.Fatal("density 1.0 produced no aliased loops")
	}

	prevRed := -1
	for _, m := range densities {
		cfg := base
		cfg.ReductionMix = m
		st := corpus.Generate(7, cfg).Manifest.Stats
		if st.ReductionStmts < prevRed {
			t.Errorf("reduction mix %v: reduction stmts %d dropped below %d", m, st.ReductionStmts, prevRed)
		}
		prevRed = st.ReductionStmts
	}
	if prevRed == 0 {
		t.Fatal("mix 1.0 produced no reduction statements")
	}
}

// TestKnobMonotonicityAnalyzer: the aliasing knob is visible downstream —
// a denser corpus program makes the parallelizer report at least as many
// conflicted (non-parallelizable) loops, because the aliased-loop set at a
// lower density is a subset of the set at a higher one.
func TestKnobMonotonicityAnalyzer(t *testing.T) {
	blockedAt := func(d float64) int {
		cfg := corpus.Config{TargetLines: 900, AliasDensity: d, ReductionMix: 0.3}
		p := corpus.Generate(11, cfg)
		prog, err := minif.Parse(p.Name, p.Source)
		if err != nil {
			t.Fatalf("density %v: parse: %v", d, err)
		}
		res := parallel.Parallelize(prog, parallel.Config{UseReductions: true})
		blocked := 0
		for _, li := range res.Ordered {
			if !li.Dep.Parallelizable {
				blocked++
			}
		}
		return blocked
	}
	prev := -1
	for _, d := range []float64{0, 0.5, 1} {
		b := blockedAt(d)
		if b < prev {
			t.Errorf("alias density %v: blocked loops %d dropped below %d", d, b, prev)
		}
		prev = b
	}
	if low, high := blockedAt(0), blockedAt(1); high <= low {
		t.Errorf("aliasing knob invisible to the parallelizer: blocked %d at density 0 vs %d at 1", low, high)
	}
}

// TestSizeLadder runs the recorded scale tiers through the full pipeline:
// parse, whole-program analysis, parallelization, bytecode execution. In
// -short mode only the quick tiers run; otherwise the 1k→50k ladder runs
// under a wall-clock guard that the pathological slowdowns this corpus
// originally exposed (quadratic call-site scans, deep section cloning)
// would blow through.
func TestSizeLadder(t *testing.T) {
	tiers := corpus.SizeLadder()
	if testing.Short() {
		tiers = corpus.QuickLadder()
	}
	start := time.Now()
	minLines, maxLines := 1<<31, 0
	for _, tier := range tiers {
		p := tier.Generate()
		lines := p.Manifest.Stats.Lines
		if lines < tier.Cfg.TargetLines*6/10 || lines > tier.Cfg.TargetLines*14/10 {
			t.Errorf("tier %s: %d lines, far from target %d", tier.Name, lines, tier.Cfg.TargetLines)
		}
		if lines < minLines {
			minLines = lines
		}
		if lines > maxLines {
			maxLines = lines
		}
		prog, err := minif.Parse(p.Name, p.Source)
		if err != nil {
			t.Fatalf("tier %s: parse: %v", tier.Name, err)
		}
		sum := summary.Analyze(prog)
		res := parallel.ParallelizeWith(sum, parallel.Config{UseReductions: true})
		chosen := 0
		for _, li := range res.Ordered {
			if li.Chosen {
				chosen++
			}
		}
		if chosen == 0 {
			t.Errorf("tier %s: no parallel loops chosen", tier.Name)
		}
		in := exec.New(prog)
		in.Mode = exec.ModeBytecode
		if err := in.Run(); err != nil {
			t.Fatalf("tier %s: exec: %v", tier.Name, err)
		}
		if in.Ops() == 0 {
			t.Errorf("tier %s: executed zero ops", tier.Name)
		}
	}
	if !testing.Short() {
		if maxLines < 45000 || minLines > 1500 {
			t.Errorf("ladder spans %d..%d lines, want at least 1k→50k", minLines, maxLines)
		}
		if elapsed := time.Since(start); elapsed > 150*time.Second {
			t.Errorf("size ladder took %v; analysis should stay near-linear in program size", elapsed)
		}
	}
}
