// Package corpus is the scenario factory: a deterministic, seed-driven
// generator of large MiniF programs with controlled structure. Where the
// hand-written workloads in internal/workloads reproduce the paper's
// applications faithfully but stay small, corpus programs scale from one
// thousand to one hundred thousand source lines with independently tunable
// knobs — call-graph depth and fanout, COMMON-block aliasing density,
// reduction-versus-privatization mix, loop-nest depth, and trip-count
// distribution — so the analyses, the incremental driver, and both
// execution engines can be exercised at production scale.
//
// Every program is valid by construction: all array subscripts are provably
// in bounds, there is no division, no I/O inside loops, and no unknown
// callee, so a generated program must parse, analyze, and execute
// identically (and successfully) on every engine. Each program carries a
// Manifest; a failure anywhere downstream reproduces from (seed, config)
// alone.
//
// Determinism is stronger than "same seed, same program": every decision
// the generator makes draws from a hash of the seed and the decision site
// (procedure index, nest index, statement index), not from a shared
// sequential PRNG stream. Raising a probability knob therefore only flips
// individual decisions from "off" to "on" — the rest of the program is
// unchanged — which is what makes the knob-monotonicity contract (higher
// aliasing density ⇒ superset of aliased loops) exact rather than merely
// statistical.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Config is the knob set of the factory. The zero value is normalized to
// usable defaults by Generate (see normalize).
type Config struct {
	// TargetLines is the approximate emitted program size in source lines.
	TargetLines int `json:"target_lines"`
	// CallDepth is the call-tree depth below the main program (>= 1).
	CallDepth int `json:"call_depth"`
	// CallFanout is the number of callees per non-leaf procedure (>= 1).
	CallFanout int `json:"call_fanout"`
	// LoopDepth is the maximum loop-nest depth (1..3).
	LoopDepth int `json:"loop_depth"`
	// AliasDensity in [0,1] is the probability that a loop nest conflicts
	// through a shared COMMON block — either directly (a loop-carried
	// read/write on a shared array) or interprocedurally (a call to a
	// helper that writes a shared work array).
	AliasDensity float64 `json:"alias_density"`
	// ReductionMix in [0,1] is the probability that a compute statement is
	// a sum reduction rather than a privatizable-temporary chain or an
	// independent elementwise write.
	ReductionMix float64 `json:"reduction_mix"`
	// TripLo/TripHi bound the per-loop trip counts (uniform draw).
	TripLo int `json:"trip_lo"`
	TripHi int `json:"trip_hi"`
	// MaxNestIters caps the iteration product of one loop nest so deep
	// nests with large trip counts cannot blow up execution time. 0 means
	// the default (4096).
	MaxNestIters int `json:"max_nest_iters,omitempty"`
}

// Stats records what the factory actually emitted, for manifest reporting
// and the knob-monotonicity tests.
type Stats struct {
	Lines          int `json:"lines"`
	Procs          int `json:"procs"`
	Loops          int `json:"loops"`
	AliasedLoops   int `json:"aliased_loops"`
	ReductionStmts int `json:"reduction_stmts"`
	TempStmts      int `json:"temp_stmts"`
	HelperCalls    int `json:"helper_calls"`
}

// Manifest pins down one generated program: (Seed, Config) regenerate it
// bit-for-bit, and SHA256 proves the regeneration matched.
type Manifest struct {
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Config Config `json:"config"`
	Stats  Stats  `json:"stats"`
	SHA256 string `json:"sha256"`
}

// Program is one factory output.
type Program struct {
	Name     string
	Source   string
	Manifest Manifest
}

// Reproduce regenerates the program the manifest describes and verifies it
// is byte-identical to the original.
func (m Manifest) Reproduce() (*Program, error) {
	p := Generate(m.Seed, m.Config)
	if p.Manifest.SHA256 != m.SHA256 {
		return nil, fmt.Errorf("corpus: manifest %s: regenerated source hash %s does not match recorded %s",
			m.Name, p.Manifest.SHA256, m.SHA256)
	}
	return p, nil
}

// normalize clamps a config into the factory's supported envelope.
func normalize(cfg Config) Config {
	clampI := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	clampF := func(v float64) float64 {
		if v < 0 || v != v { // NaN guards: a fuzzer will find it otherwise
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	if cfg.TargetLines == 0 {
		cfg.TargetLines = 1000
	}
	cfg.TargetLines = clampI(cfg.TargetLines, 200, 200000)
	if cfg.CallDepth == 0 {
		cfg.CallDepth = 2
	}
	cfg.CallDepth = clampI(cfg.CallDepth, 1, 8)
	if cfg.CallFanout == 0 {
		cfg.CallFanout = 2
	}
	cfg.CallFanout = clampI(cfg.CallFanout, 1, 8)
	if cfg.LoopDepth == 0 {
		cfg.LoopDepth = 2
	}
	cfg.LoopDepth = clampI(cfg.LoopDepth, 1, 3)
	cfg.AliasDensity = clampF(cfg.AliasDensity)
	cfg.ReductionMix = clampF(cfg.ReductionMix)
	if cfg.TripLo == 0 {
		cfg.TripLo = 2
	}
	cfg.TripLo = clampI(cfg.TripLo, 2, 400)
	if cfg.TripHi == 0 {
		cfg.TripHi = 10
	}
	cfg.TripHi = clampI(cfg.TripHi, cfg.TripLo, 400)
	if cfg.MaxNestIters == 0 {
		cfg.MaxNestIters = 4096
	}
	cfg.MaxNestIters = clampI(cfg.MaxNestIters, 16, 1<<20)
	return cfg
}

// ---- splittable randomness ----

// Decision-site namespaces. Structural draws (shape, trip counts, constant
// pools) and knob draws (alias, mix) live in disjoint namespaces so a knob
// change cannot perturb program shape.
const (
	tagShape = iota + 1
	tagTrip
	tagAlias
	tagMix
	tagKind
	tagConst
	tagBlock
)

func sm64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type gen struct {
	seed int64
	cfg  Config
	sb   strings.Builder
	st   Stats

	na  int // shared/local 1-D array extent
	lbl int // per-proc label counter

	// Per-proc nest accounting: sizing counts every nest's alias-statement
	// slot whether or not the knob filled it, so the procedure count — and
	// with it the whole program shape — is independent of AliasDensity.
	procNests   int
	procAliased int
}

// h hashes the seed with a decision-site tag path.
func (g *gen) h(tags ...int) uint64 {
	x := sm64(uint64(g.seed))
	for _, t := range tags {
		x = sm64(x ^ sm64(uint64(int64(t))))
	}
	return x
}

// intn returns a value in [0, n) for the decision site.
func (g *gen) intn(n int, tags ...int) int {
	if n <= 1 {
		return 0
	}
	return int(g.h(tags...) % uint64(n))
}

// unit returns a float in [0, 1) for the decision site.
func (g *gen) unit(tags ...int) float64 {
	return float64(g.h(tags...)>>11) / float64(1<<53)
}

func (g *gen) linef(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *gen) label() int {
	g.lbl += 10
	return g.lbl
}

// cst emits a small positive real constant literal from the structural
// constant pool: one digit before and after the point, never zero.
func (g *gen) cst(tags ...int) string {
	h := g.h(append([]int{tagConst}, tags...)...)
	a := int(h % 9)
	b := int((h >> 8) % 9)
	if a == 0 && b == 0 {
		b = 5
	}
	return fmt.Sprintf("%d.%d", a, b)
}

// ---- generation ----

const numBlocks = 4 // shared COMMON blocks /GC0/../GC3/

// Generate builds the program for (seed, cfg). Same inputs, same bytes.
func Generate(seed int64, cfg Config) *Program {
	cfg = normalize(cfg)
	g := &gen{seed: seed, cfg: cfg}
	g.na = cfg.TripHi + 2
	if g.na < 16 {
		g.na = 16
	}

	// Emit the two fixed leaf helpers and every compute procedure into
	// separate buffers first; the call edges and the main program are
	// assembled afterwards, once the procedure count is known.
	helpers := g.emitHelpers()

	var procs []string
	lines := strings.Count(helpers, "\n") + 14 + 3*numBlocks // helper + main overhead estimate
	for lines < cfg.TargetLines {
		p := len(procs)
		body := g.emitProc(p)
		procs = append(procs, body)
		// +1 for the CALL reaching it; unfilled alias slots count as if
		// emitted so the sizing loop is knob-independent.
		lines += strings.Count(body, "\n") + 1 + (g.procNests - g.procAliased)
	}
	if len(procs) == 0 {
		procs = append(procs, g.emitProc(0))
	}

	// Arrange procedures into CallFanout-ary trees of height CallDepth
	// (heap indexing inside each tree span handles a partial last tree).
	treeSize := 0
	for d, pow := 0, 1; d < cfg.CallDepth; d++ {
		treeSize += pow
		pow *= cfg.CallFanout
		if treeSize > len(procs) { // deeper than we have procs; stop growing
			break
		}
	}
	if treeSize < 1 {
		treeSize = 1
	}
	var roots []int
	calls := make([][]int, len(procs))
	for base := 0; base < len(procs); base += treeSize {
		span := len(procs) - base
		if span > treeSize {
			span = treeSize
		}
		roots = append(roots, base)
		for l := 0; l < span; l++ {
			for c := 0; c < cfg.CallFanout; c++ {
				child := cfg.CallFanout*l + 1 + c
				if child < span {
					calls[base+l] = append(calls[base+l], base+child)
				}
			}
		}
	}

	// Assemble: helpers, procedures (with their call edges spliced in
	// before END), then the main program driving every tree root.
	g.sb.Reset()
	g.sb.WriteString(helpers)
	for p, body := range procs {
		var callLines strings.Builder
		for _, callee := range calls[p] {
			fmt.Fprintf(&callLines, "      CALL SP%d(%s)\n", callee, g.cst(p, callee))
		}
		g.sb.WriteString(strings.Replace(body, "      END\n", callLines.String()+"      END\n", 1))
	}
	g.emitMain(roots)

	src := g.sb.String()
	g.st.Lines = strings.Count(src, "\n")
	g.st.Procs = len(procs) + 3 // + helpers + main
	name := fmt.Sprintf("corpus-%d-%dl", seed, cfg.TargetLines)
	sum := sha256.Sum256([]byte(src))
	return &Program{
		Name:   name,
		Source: src,
		Manifest: Manifest{
			Name:   name,
			Seed:   seed,
			Config: cfg,
			Stats:  g.st,
			SHA256: hex.EncodeToString(sum[:]),
		},
	}
}

// emitHelpers writes the two fixed leaf subroutines that aliased loops call
// interprocedurally. Both touch the shared /GWK/ work array, so any loop
// calling them carries a cross-iteration COMMON conflict (the mdg
// dists/vforce pattern).
func (g *gen) emitHelpers() string {
	g.sb.Reset()
	g.linef("C     corpus factory output — regenerate from (seed, config); do not edit")
	g.linef("      SUBROUTINE WH0(V)")
	g.linef("      REAL V")
	g.linef("      COMMON /GWK/ GW(%d)", g.na)
	g.linef("      INTEGER I")
	g.linef("      DO 10 I = 1, 8")
	g.linef("        GW(I) = GW(I) + V * 0.125 + I * 0.5")
	g.linef("10    CONTINUE")
	g.linef("      END")
	g.linef("")
	g.linef("      SUBROUTINE WH1(V)")
	g.linef("      REAL V")
	g.linef("      COMMON /GWK/ GW(%d)", g.na)
	g.linef("      INTEGER I")
	g.linef("      DO 10 I = 1, 6")
	g.linef("        GW(I) = V * 0.5 + I * 0.25")
	g.linef("10    CONTINUE")
	g.linef("      END")
	g.linef("")
	return g.sb.String()
}

// idxVars are the loop indices by nest level.
var idxVars = [3]string{"I", "J", "K"}

// emitProc writes one compute procedure (without its call edges).
func (g *gen) emitProc(p int) string {
	g.sb.Reset()
	g.lbl = 0
	g.procNests = 0
	g.procAliased = 0

	// Each procedure uses one or two of the shared COMMON blocks, chosen
	// structurally so the aliasing knob cannot reshape declarations.
	b0 := g.intn(numBlocks, tagBlock, p, 0)
	b1 := (b0 + 1 + g.intn(numBlocks-1, tagBlock, p, 1)) % numBlocks
	twoBlocks := g.intn(2, tagBlock, p, 2) == 1

	g.linef("      SUBROUTINE SP%d(U)", p)
	g.linef("      REAL U")
	g.linef("      REAL LA0(%d), LA1(%d), LB(12,12), S0, T0", g.na, g.na)
	g.linef("      INTEGER I, J, K")
	g.linef("      COMMON /GC%d/ GS%d(%d), GT%d", b0, b0, g.na, b0)
	if twoBlocks {
		g.linef("      COMMON /GC%d/ GS%d(%d), GT%d", b1, b1, g.na, b1)
	}

	// Local init: everything read in loop bodies is defined first.
	l := g.label()
	// The modulus comes from a prime pool strictly above the multiplier
	// range so MOD(I*c1, c2) is never identically zero (c1 | c2 would make
	// the whole init degenerate).
	c1 := 3 + g.intn(11, tagShape, p, 90)
	c2 := [5]int{17, 19, 23, 29, 31}[g.intn(5, tagShape, p, 91)]
	g.linef("      S0 = 0.0")
	g.linef("      T0 = 0.0")
	g.linef("      DO %d I = 1, %d", l, g.na)
	g.linef("        LA1(I) = MOD(I * %d, %d) * 0.25 + U * 0.125", c1, c2)
	g.linef("        LA0(I) = 0.0")
	g.linef("%-6dCONTINUE", l)
	g.st.Loops++

	nests := 2 + g.intn(3, tagShape, p, 0)
	for n := 0; n < nests; n++ {
		g.emitNest(p, n, b0, b1, twoBlocks)
	}
	g.linef("      END")
	g.linef("")
	return g.sb.String()
}

// emitNest writes one loop nest of hash-chosen depth and trip counts.
func (g *gen) emitNest(p, n, b0, b1 int, twoBlocks bool) {
	depth := 1 + g.intn(g.cfg.LoopDepth, tagShape, p, n, 1)
	// Trip counts: uniform in [TripLo, TripHi], clamped so the nest's
	// iteration product stays under MaxNestIters.
	trips := make([]int, depth)
	product := 1
	for d := 0; d < depth; d++ {
		t := g.cfg.TripLo + g.intn(g.cfg.TripHi-g.cfg.TripLo+1, tagTrip, p, n, d)
		for t > 2 && product*t > g.cfg.MaxNestIters {
			t = t / 2
		}
		if product*t > g.cfg.MaxNestIters {
			t = 2
		}
		trips[d] = t
		product *= t
	}

	aliased := g.unit(tagAlias, p, n) < g.cfg.AliasDensity
	// An aliased nest conflicts either directly on a shared array or
	// through a helper call; the coin is structural so the two flavors
	// both appear at any density.
	aliasViaCall := g.intn(2, tagShape, p, n, 2) == 1

	labels := make([]int, depth)
	for d := 0; d < depth; d++ {
		labels[d] = g.label()
		g.linef("%s DO %d %s = 1, %d", strings.Repeat("  ", d+3), labels[d], idxVars[d], trips[d])
		g.st.Loops++
	}
	g.procNests++
	if aliased {
		g.st.AliasedLoops++
		g.procAliased++
	}

	ind := strings.Repeat("  ", depth+3) + "  "
	v := idxVars[depth-1] // innermost index
	blk := b0
	if twoBlocks && g.intn(2, tagShape, p, n, 3) == 1 {
		blk = b1
	}

	if aliased {
		if aliasViaCall {
			g.linef("%sCALL WH%d(LA1(%s))", ind, g.intn(2, tagShape, p, n, 4), v)
			g.st.HelperCalls++
		} else {
			g.linef("%sGS%d(%s) = GS%d(%s + 1) * 0.5 + %s", ind, blk, v, blk, v, g.cst(p, n, 0))
		}
	}

	stmts := 2 + g.intn(3, tagShape, p, n, 5)
	for s := 0; s < stmts; s++ {
		g.emitStmt(ind, p, n, s, v, depth, trips, blk)
	}
	for d := depth - 1; d >= 0; d-- {
		g.linef("%-6d%sCONTINUE", labels[d], strings.Repeat("  ", d))
	}
}

// emitStmt writes one innermost-body statement. The reduction-vs-
// privatization knob decides between a sum reduction and a temporary
// chain; the remaining kinds (independent write, guarded update, 2-D
// write) come from the structural pool.
func (g *gen) emitStmt(ind string, p, n, s int, v string, depth int, trips []int, blk int) {
	if g.unit(tagMix, p, n, s) < g.cfg.ReductionMix {
		g.st.ReductionStmts++
		if g.intn(2, tagKind, p, n, s, 0) == 0 {
			g.linef("%sS0 = S0 + LA1(%s) * %s", ind, v, g.cst(p, n, s, 1))
		} else {
			g.linef("%sGT%d = GT%d + LA1(%s) * %s", ind, blk, blk, v, g.cst(p, n, s, 2))
		}
		return
	}
	switch g.intn(4, tagKind, p, n, s, 1) {
	case 0: // privatizable temporary chain
		g.st.TempStmts++
		g.linef("%sT0 = LA1(%s) * %s + U", ind, v, g.cst(p, n, s, 3))
		g.linef("%sLA0(%s) = T0 + T0 * %s", ind, v, g.cst(p, n, s, 4))
	case 1: // independent elementwise write
		g.linef("%sLA0(%s) = LA1(%s) * %s + %s", ind, v, v, g.cst(p, n, s, 5), g.cst(p, n, s, 6))
	case 2: // guarded update (control-dependent write)
		g.linef("%sIF (LA1(%s) .GT. %s) LA0(%s) = LA1(%s) + %s",
			ind, v, g.cst(p, n, s, 7), v, v, g.cst(p, n, s, 8))
	default:
		if depth >= 2 && trips[depth-1] <= 11 && trips[depth-2] <= 11 {
			// 2-D write indexed by the two innermost levels: distinct
			// cells per iteration pair.
			g.linef("%sLB(%s, %s) = LB(%s, %s) * 0.5 + LA1(%s) * %s",
				ind, v, idxVars[depth-2], v, idxVars[depth-2], v, g.cst(p, n, s, 9))
		} else {
			g.linef("%sLA0(%s) = LA0(%s) * 0.75 + %s", ind, v, v, g.cst(p, n, s, 10))
		}
	}
}

// emitMain writes the driver program: init every shared block, call every
// tree root, print a digest of the shared state.
func (g *gen) emitMain(roots []int) {
	g.lbl = 0
	g.linef("      PROGRAM CORPUS")
	for b := 0; b < numBlocks; b++ {
		g.linef("      COMMON /GC%d/ GS%d(%d), GT%d", b, b, g.na, b)
	}
	g.linef("      COMMON /GWK/ GW(%d)", g.na)
	g.linef("      INTEGER I")
	l := g.label()
	g.linef("      DO %d I = 1, %d", l, g.na)
	for b := 0; b < numBlocks; b++ {
		g.linef("        GS%d(I) = MOD(I * %d, %d) * 0.5", b, 3+2*b, 11+b)
	}
	g.linef("        GW(I) = 0.0")
	g.linef("%-6dCONTINUE", l)
	g.st.Loops++
	for _, r := range roots {
		g.linef("      CALL SP%d(%s)", r, g.cst(r, -1))
	}
	g.linef("      WRITE(*,*) GT0, GT1, GT2, GT3, GS0(1), GS1(2), GW(1)")
	g.linef("      END")
}
