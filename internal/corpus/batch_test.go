package corpus

import (
	"strings"
	"testing"
)

func TestBatchItemKindValidate(t *testing.T) {
	cases := []struct {
		name    string
		item    BatchItem
		kind    string
		wantErr string
	}{
		{"workload", BatchItem{Workload: "mdg"}, "workload", ""},
		{"tier", BatchItem{Tier: "1k"}, "tier", ""},
		{"corpus", BatchItem{Seed: 7, Config: &Config{}}, "corpus", ""},
		{"source", BatchItem{Source: "      PROGRAM t\n      END\n"}, "source", ""},
		{"empty", BatchItem{}, "", "needs one of"},
		{"ambiguous", BatchItem{Name: "x", Workload: "mdg", Tier: "1k"}, "workload", "ambiguous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.item.Kind(); got != tc.kind {
				t.Fatalf("Kind() = %q, want %q", got, tc.kind)
			}
			err := tc.item.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestBatchItemResolveDeterministic(t *testing.T) {
	it := BatchItem{Tier: QuickLadder()[0].Name}
	name1, src1, err := it.Resolve()
	if err != nil || src1 == "" {
		t.Fatalf("Resolve: %v", err)
	}
	name2, src2, _ := it.Resolve()
	if name1 != name2 || src1 != src2 {
		t.Fatal("tier resolution not deterministic")
	}

	if _, _, err := (BatchItem{Tier: "no-such"}).Resolve(); err == nil {
		t.Fatal("unknown tier resolved")
	}
	// A custom name overrides the generated one.
	named := BatchItem{Name: "custom", Tier: QuickLadder()[0].Name}
	if n, _, _ := named.Resolve(); n != "custom" {
		t.Fatalf("named tier resolved to %q", n)
	}
}

func TestExpandLadder(t *testing.T) {
	for _, name := range []string{"quick", "size", "full"} {
		items, err := ExpandLadder(name)
		if err != nil || len(items) == 0 {
			t.Fatalf("ExpandLadder(%q): %v (%d items)", name, err, len(items))
		}
		for _, it := range items {
			if it.Kind() != "tier" {
				t.Fatalf("ladder %q expanded to non-tier item %+v", name, it)
			}
		}
	}
	if _, err := ExpandLadder("sideways"); err == nil {
		t.Fatal("unknown ladder expanded")
	}
}

func TestNormalizeBatch(t *testing.T) {
	// Ladder tiers prepend to explicit items.
	items, err := NormalizeBatch("quick", []BatchItem{{Workload: "mdg"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(QuickLadder())+1 {
		t.Fatalf("got %d items, want %d", len(items), len(QuickLadder())+1)
	}
	if items[len(items)-1].Workload != "mdg" {
		t.Fatalf("explicit item not last: %+v", items)
	}

	if _, err := NormalizeBatch("", nil); err == nil {
		t.Fatal("empty manifest accepted")
	}
	if _, err := NormalizeBatch("", []BatchItem{{}}); err == nil ||
		!strings.Contains(err.Error(), "item 0") {
		t.Fatalf("invalid item error %v does not name the index", err)
	}
}

func TestDecodeBatchManifest(t *testing.T) {
	// Object form.
	items, err := DecodeBatchManifest([]byte(`{"ladder": "quick"}`))
	if err != nil || len(items) != len(QuickLadder()) {
		t.Fatalf("object manifest: %v (%d items)", err, len(items))
	}
	// Bare-list form.
	items, err = DecodeBatchManifest([]byte(`[{"workload": "mdg"}, {"tier": "1k"}]`))
	if err != nil || len(items) != 2 {
		t.Fatalf("bare-list manifest: %v (%d items)", err, len(items))
	}
	if _, err := DecodeBatchManifest([]byte(`{nope`)); err == nil {
		t.Fatal("malformed manifest decoded")
	}
}
