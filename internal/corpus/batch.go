package corpus

import (
	"encoding/json"
	"fmt"
)

// BatchItem names one program of a batch manifest (the /v1/batch request
// body): exactly one of
//
//   - Workload: a built-in workload name (resolved by the caller — this
//     package does not depend on internal/workloads),
//   - Tier: a frozen ladder tier name ("1k", "5k", ...),
//   - Seed + Config: an arbitrary factory program, regenerated
//     deterministically from the pair alone,
//   - Source (+ Name): inline MiniF source.
//
// A batch manifest is a list of items; ExpandLadder turns the ladder names
// ("quick", "size", "full") into tier items so a whole ladder is one line of
// request JSON.
type BatchItem struct {
	// Name labels the item in the result stream. Defaults: the workload or
	// tier name, "corpus-<seed>" for (seed, config) items, "item-<index>"
	// for inline source.
	Name     string `json:"name,omitempty"`
	Workload string `json:"workload,omitempty"`
	Tier     string `json:"tier,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Config   *Config `json:"config,omitempty"`
	Source   string `json:"source,omitempty"`
}

// Kind classifies the item; Validate rejects ambiguous or empty items.
func (it BatchItem) Kind() string {
	switch {
	case it.Workload != "":
		return "workload"
	case it.Tier != "":
		return "tier"
	case it.Config != nil:
		return "corpus"
	case it.Source != "":
		return "source"
	}
	return ""
}

// Validate checks the item names exactly one program.
func (it BatchItem) Validate() error {
	n := 0
	for _, set := range []bool{it.Workload != "", it.Tier != "", it.Config != nil, it.Source != ""} {
		if set {
			n++
		}
	}
	switch n {
	case 0:
		return fmt.Errorf(`batch item needs one of "workload", "tier", "seed"+"config", or "source"`)
	case 1:
		return nil
	}
	return fmt.Errorf("ambiguous batch item: %q sets %d program kinds, want exactly one", it.Name, n)
}

// Resolve generates the item's program for the tier and (seed, config)
// kinds. Workload and inline-source items are the caller's to resolve (the
// server layer owns the workload registry).
func (it BatchItem) Resolve() (name, source string, err error) {
	switch it.Kind() {
	case "tier":
		t, ok := TierByName(it.Tier)
		if !ok {
			return "", "", fmt.Errorf("unknown corpus tier %q", it.Tier)
		}
		p := t.Generate()
		if it.Name != "" {
			return it.Name, p.Source, nil
		}
		return p.Name, p.Source, nil
	case "corpus":
		p := Generate(it.Seed, *it.Config)
		if it.Name != "" {
			return it.Name, p.Source, nil
		}
		return p.Name, p.Source, nil
	}
	return "", "", fmt.Errorf("batch item %q: kind %q is not corpus-resolvable", it.Name, it.Kind())
}

// ExpandLadder maps a ladder name to its tier items: "quick" (the -short
// pair), "size" (the four standard tiers), or "full" (adds the 100k tier).
func ExpandLadder(name string) ([]BatchItem, error) {
	var tiers []Tier
	switch name {
	case "quick":
		tiers = QuickLadder()
	case "size":
		tiers = SizeLadder()
	case "full":
		tiers = FullLadder()
	default:
		return nil, fmt.Errorf("unknown ladder %q (want quick, size or full)", name)
	}
	items := make([]BatchItem, len(tiers))
	for i, t := range tiers {
		items[i] = BatchItem{Tier: t.Name}
	}
	return items, nil
}

// NormalizeBatch expands an optional ladder name, prepends its tiers to the
// explicit items, and validates every item. It is the shared decoding path
// of the worker's and the coordinator's /v1/batch.
func NormalizeBatch(ladder string, items []BatchItem) ([]BatchItem, error) {
	if ladder != "" {
		expanded, err := ExpandLadder(ladder)
		if err != nil {
			return nil, err
		}
		items = append(expanded, items...)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf(`batch manifest needs a non-empty "items" list or a "ladder"`)
	}
	for i, it := range items {
		if err := it.Validate(); err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	return items, nil
}

// DecodeBatchManifest parses a JSON batch manifest — either a bare item
// list or an object with "items" and/or "ladder" — into a validated item
// list.
func DecodeBatchManifest(data []byte) ([]BatchItem, error) {
	var wrapper struct {
		Ladder string      `json:"ladder"`
		Items  []BatchItem `json:"items"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		var bare []BatchItem
		if err2 := json.Unmarshal(data, &bare); err2 != nil {
			return nil, fmt.Errorf("malformed batch manifest: %v", err)
		}
		wrapper.Items = bare
	}
	return NormalizeBatch(wrapper.Ladder, wrapper.Items)
}
