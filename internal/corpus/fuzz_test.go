package corpus_test

import (
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/minif"
)

// FuzzGenerate drives the factory itself with arbitrary knob settings: for
// any (seed, config), Generate must return a program that parses, and its
// manifest must reproduce the source bit-for-bit. This is the structured
// complement of the parser fuzzer — instead of mutating source text, it
// mutates the generator's decision space.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), 200, 0.0, 0.0, 0, 0, 0, 0, 0)
	f.Add(int64(42), 800, 0.3, 0.4, 2, 2, 2, 2, 10)
	f.Add(int64(7), 1500, 1.0, 1.0, 5, 3, 3, 1, 16)
	f.Add(int64(-3), 50, 0.5, 0.5, 1, 1, 1, 3, 3)

	f.Fuzz(func(t *testing.T, seed int64, lines int, alias, mix float64,
		depth, fanout, loopDepth, tripLo, tripHi int) {
		// Clamp to the documented knob domain — out-of-range configs are a
		// caller bug, not a generator obligation. The interesting space is
		// everything inside it.
		if lines < 10 || lines > 3000 {
			lines = 10 + (abs(lines) % 2991)
		}
		cfg := corpus.Config{
			TargetLines:  lines,
			AliasDensity: clamp01(alias),
			ReductionMix: clamp01(mix),
			CallDepth:    abs(depth) % 6,
			CallFanout:   abs(fanout) % 4,
			LoopDepth:    abs(loopDepth) % 4,
			TripLo:       abs(tripLo)%16 + 1,
			TripHi:       abs(tripHi)%16 + 1,
		}
		if cfg.TripHi < cfg.TripLo {
			cfg.TripLo, cfg.TripHi = cfg.TripHi, cfg.TripLo
		}
		p := corpus.Generate(seed, cfg)
		if _, err := minif.Parse(p.Name, p.Source); err != nil {
			t.Fatalf("generated program does not parse: %v\nseed=%d cfg=%+v\n%s",
				err, seed, cfg, p.Source)
		}
		rep, err := p.Manifest.Reproduce()
		if err != nil {
			t.Fatalf("manifest does not reproduce: %v (seed=%d cfg=%+v)", err, seed, cfg)
		}
		if rep.Source != p.Source {
			t.Fatalf("reproduction differs from original (seed=%d cfg=%+v)", seed, cfg)
		}
	})
}

func clamp01(x float64) float64 {
	if !(x >= 0) { // catches NaN too
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func abs(n int) int {
	if n < 0 {
		if n == -n { // min int
			return 0
		}
		return -n
	}
	return n
}
