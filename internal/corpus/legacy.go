// The two seeded generators that predate the corpus factory, moved here
// verbatim from their test-local homes so every harness draws programs from
// one package. Their draw sequences are preserved exactly — both consume a
// sequential math/rand stream, so any change to the order or number of
// draws would shift every program behind a seed and silently re-aim the
// existing differential and soundness coverage.

package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// ---- exec differential generator (was progGen in internal/exec) ----

// diffGen emits random but valid-by-construction MiniF programs: all array
// indices provably in bounds, no division, no unknown callees — so every
// generated program must run identically (and successfully) on both
// engines.
type diffGen struct {
	r   *rand.Rand
	sb  strings.Builder
	lbl int
}

func (g *diffGen) linef(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *diffGen) label() int {
	g.lbl += 10
	return g.lbl
}

// scalar/array pools. Arrays are all REAL a?(30) or 2-D (6,6); loop bounds
// stay within 1..6 so idx expressions up to i*2+7 and 30-i stay in bounds.
var diffScalars = []string{"x", "y", "z", "w"}
var diffIvars = []string{"i", "j", "k"}
var diffArrs1 = []string{"a1", "a2", "c1"}
var diffArrs2 = []string{"b1", "c2"}

func (g *diffGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// idxExpr yields an index expression with value in [1,30] given every loop
// variable stays in [0,6] (uninitialized integers are 0).
func (g *diffGen) idxExpr() string {
	v := g.pick(diffIvars)
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", 1+g.r.Intn(6))
	case 1:
		return v + " + 1"
	case 2:
		return fmt.Sprintf("%s + %d", v, 1+g.r.Intn(3))
	case 3:
		return "30 - " + v
	case 4:
		return fmt.Sprintf("%s * 2 + %d", v, 1+g.r.Intn(5))
	default:
		return v + " + 1"
	}
}

// idx2Expr yields an index in [1,6].
func (g *diffGen) idx2Expr() string {
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("%d", 1+g.r.Intn(6))
	}
	return g.pick(diffIvars) + " + 1"
}

func (g *diffGen) valExpr(depth int) string {
	if depth > 2 {
		if g.r.Intn(2) == 0 {
			return g.pick(diffScalars)
		}
		return fmt.Sprintf("%d.%d", g.r.Intn(9), g.r.Intn(9))
	}
	switch g.r.Intn(9) {
	case 0:
		return g.pick(diffScalars)
	case 1:
		return fmt.Sprintf("%s(%s)", g.pick(diffArrs1), g.idxExpr())
	case 2:
		return fmt.Sprintf("%s(%s, %s)", g.pick(diffArrs2), g.idx2Expr(), g.idx2Expr())
	case 3:
		return fmt.Sprintf("(%s + %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 4:
		return fmt.Sprintf("(%s - %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 5:
		return fmt.Sprintf("(%s * %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 6:
		in := []string{"ABS", "SIN", "COS", "INT"}[g.r.Intn(4)]
		return fmt.Sprintf("%s(%s)", in, g.valExpr(depth+1))
	case 7:
		return fmt.Sprintf("MIN(%s, %s)", g.valExpr(depth+1), g.valExpr(depth+1))
	case 8:
		return fmt.Sprintf("SQRT(ABS(%s))", g.valExpr(depth+1))
	}
	return "1.0"
}

func (g *diffGen) condExpr(depth int) string {
	rel := []string{".LT.", ".LE.", ".GT.", ".GE.", ".EQ.", ".NE."}[g.r.Intn(6)]
	base := fmt.Sprintf("(%s %s %s)", g.valExpr(2), rel, g.valExpr(2))
	if depth > 1 {
		return base
	}
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s .AND. %s)", base, g.condExpr(depth+1))
	case 1:
		return fmt.Sprintf("(%s .OR. %s)", base, g.condExpr(depth+1))
	case 2:
		return "(.NOT. " + base + ")"
	default:
		return base
	}
}

func (g *diffGen) lhs() string {
	switch g.r.Intn(3) {
	case 0:
		return g.pick(diffScalars)
	case 1:
		return fmt.Sprintf("%s(%s)", g.pick(diffArrs1), g.idxExpr())
	default:
		return fmt.Sprintf("%s(%s, %s)", g.pick(diffArrs2), g.idx2Expr(), g.idx2Expr())
	}
}

func (g *diffGen) stmt(depth, loopDepth int, inSub bool) {
	n := g.r.Intn(10)
	switch {
	case n < 4 || depth > 3:
		g.linef("        %s = %s", g.lhs(), g.valExpr(0))
	case n < 6 && loopDepth < 3:
		g.loop(depth, loopDepth, inSub)
	case n < 8:
		g.linef("        IF %s THEN", g.condExpr(0))
		for i := 0; i < 1+g.r.Intn(2); i++ {
			g.stmt(depth+1, loopDepth, inSub)
		}
		if g.r.Intn(2) == 0 {
			g.linef("        ELSE")
			g.stmt(depth+1, loopDepth, inSub)
		}
		g.linef("        ENDIF")
	case n == 8 && !inSub:
		g.linef("        CALL sub%d(%s, %s, %s)", 1+g.r.Intn(2),
			g.pick(diffArrs1), g.pick(diffScalars), g.valExpr(1))
	default:
		g.linef("        WRITE(*,*) %s", g.valExpr(1))
	}
}

func (g *diffGen) loop(depth, loopDepth int, inSub bool) {
	l := g.label()
	v := diffIvars[loopDepth]
	// Bounds keep every induction variable in [0,5] at all times, including
	// the post-loop overshoot (DO v = 1, 4 leaves v = 5), so index
	// expressions built from them stay in range.
	switch g.r.Intn(3) {
	case 0:
		g.linef("        DO %d %s = 1, %d", l, v, 2+g.r.Intn(3))
	case 1:
		g.linef("        DO %d %s = %d, 1, -1", l, v, 2+g.r.Intn(3))
	default:
		g.linef("        DO %d %s = 1, 4, 2", l, v)
	}
	for i := 0; i < 1+g.r.Intn(3); i++ {
		g.stmt(depth+1, loopDepth+1, inSub)
	}
	g.linef("%-8dCONTINUE", l)
}

func (g *diffGen) decls() {
	g.linef("      COMMON /blk/ c1(30), c2(6,6), cs")
	g.linef("      REAL x, y, z, w, a1(30), a2(30), b1(6,6)")
	g.linef("      INTEGER i, j, k")
}

// DiffProgram is the exec differential suite's generator: small programs
// with two subroutines, nested control flow, 1-D and 2-D arrays, and I/O,
// built so both engines must run them successfully and identically.
func DiffProgram(seed int64) string {
	g := &diffGen{r: rand.New(rand.NewSource(seed))}
	for s := 1; s <= 2; s++ {
		g.linef("      SUBROUTINE sub%d(p, q, r)", s)
		g.linef("      REAL p(30), q, r")
		g.decls()
		for i := 0; i < 2+g.r.Intn(3); i++ {
			g.stmt(0, 0, true)
		}
		if g.r.Intn(3) == 0 {
			g.linef("        IF %s THEN", g.condExpr(0))
			g.linef("        RETURN")
			g.linef("        ENDIF")
		}
		g.linef("        q = q + r + p(1)")
		g.linef("      END")
		g.linef("")
	}
	g.linef("      PROGRAM rnd")
	g.decls()
	g.linef("        x = 1.5")
	g.linef("        y = 0.25")
	for i := 0; i < 3+g.r.Intn(5); i++ {
		g.stmt(0, 0, false)
	}
	g.linef("        WRITE(*,*) x, y, z, w, cs")
	g.linef("      END")
	return g.sb.String()
}

// ---- pipeline soundness generator (was genProgram in experiments) ----

// PipelineProgram builds a random MiniF program from a small grammar of
// loop bodies: independent writes, covered temporaries, scalar and array
// reductions, guarded updates, and genuine recurrences. Whatever the
// parallelizer approves must execute identically in parallel — the
// DESIGN.md end-to-end soundness invariant.
func PipelineProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("      PROGRAM rnd\n")
	b.WriteString("      REAL a(128), b(128), c(128), s, t\n")
	b.WriteString("      INTEGER i, j, k\n")
	b.WriteString("      s = 0.0\n      t = 1.0\n")
	b.WriteString("      DO 5 i = 1, 128\n")
	fmt.Fprintf(&b, "        a(i) = MOD(i * %d, 53) * 0.25\n", 3+r.Intn(40))
	b.WriteString("        b(i) = 1.0\n        c(i) = 0.0\n5     CONTINUE\n")

	bodies := []string{
		"        b(i) = a(i) * 2.0 + 1.0\n",
		"        c(i) = a(i) + b(i)\n",
		"        t = a(i) * 0.5\n        b(i) = t + c(i)\n",
		"        s = s + a(i) * 0.125\n",
		"        IF (a(i) .GT. 6.0) c(i) = a(i)\n",
		"        c(i) = c(i) + b(i) * 0.25\n",
		"        IF (a(i) .LT. s) s = a(i)\n",
		"        b(i) = b(i-1) + a(i)\n", // recurrence: must stay sequential
		"        DO %d j = 1, 16\n          c(j) = a(i) + j\n%d      CONTINUE\n        b(i) = c(1) + c(16)\n",
	}
	nloops := 2 + r.Intn(4)
	label := 100
	for n := 0; n < nloops; n++ {
		lo := 2
		fmt.Fprintf(&b, "      DO %d i = %d, 128\n", label, lo)
		nst := 1 + r.Intn(3)
		for k := 0; k < nst; k++ {
			body := bodies[r.Intn(len(bodies))]
			if strings.Contains(body, "%d") {
				inner := label + 50 + k
				body = fmt.Sprintf(body, inner, inner)
			}
			b.WriteString(body)
		}
		fmt.Fprintf(&b, "%d   CONTINUE\n", label)
		label += 100
	}
	b.WriteString("      WRITE(*,*) s, t, b(5), c(7)\n      END\n")
	return b.String()
}
