package corpus

// Tier is one named point on the scale ladder: a recorded (seed, config)
// pair whose program regenerates bit-for-bit anywhere. The seeds are
// arbitrary but frozen — BENCH_scale.json rows and CI failures both
// reproduce from the tier name alone.
type Tier struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	Cfg  Config `json:"config"`
}

// Generate builds the tier's program.
func (t Tier) Generate() *Program { return Generate(t.Seed, t.Cfg) }

// SizeLadder is the standard scale ladder: four program sizes spanning
// roughly 1k to 50k source lines, with the structural knobs growing along
// the ladder the way real applications do (deeper call trees, more fanout).
// The aliasing and reduction knobs stay mid-range so every tier carries a
// mix of parallel, privatizable, reduction, and blocked loops.
func SizeLadder() []Tier {
	return []Tier{
		{Name: "1k", Seed: 1001, Cfg: Config{
			TargetLines: 1000, CallDepth: 2, CallFanout: 2, LoopDepth: 2,
			AliasDensity: 0.2, ReductionMix: 0.3, TripLo: 2, TripHi: 10,
		}},
		{Name: "5k", Seed: 1005, Cfg: Config{
			TargetLines: 5000, CallDepth: 3, CallFanout: 2, LoopDepth: 2,
			AliasDensity: 0.2, ReductionMix: 0.3, TripLo: 2, TripHi: 12,
		}},
		{Name: "20k", Seed: 1020, Cfg: Config{
			TargetLines: 20000, CallDepth: 3, CallFanout: 3, LoopDepth: 3,
			AliasDensity: 0.25, ReductionMix: 0.3, TripLo: 2, TripHi: 12,
		}},
		{Name: "50k", Seed: 1050, Cfg: Config{
			TargetLines: 50000, CallDepth: 4, CallFanout: 3, LoopDepth: 3,
			AliasDensity: 0.25, ReductionMix: 0.3, TripLo: 2, TripHi: 12,
		}},
	}
}

// FullLadder extends SizeLadder with the 100k-line stress tier used by the
// non-short scale experiments (too slow for every CI run, cheap enough for
// the scale-smoke job's single pass).
func FullLadder() []Tier {
	return append(SizeLadder(), Tier{Name: "100k", Seed: 1100, Cfg: Config{
		TargetLines: 100000, CallDepth: 5, CallFanout: 3, LoopDepth: 3,
		AliasDensity: 0.25, ReductionMix: 0.3, TripLo: 2, TripHi: 12,
	}})
}

// QuickLadder is the -short ladder: the smallest two tiers, enough to keep
// the size-scaling path exercised on every developer test run.
func QuickLadder() []Tier { return SizeLadder()[:2] }

// TierByName finds a ladder tier.
func TierByName(name string) (Tier, bool) {
	for _, t := range FullLadder() {
		if t.Name == name {
			return t, true
		}
	}
	return Tier{}, false
}
