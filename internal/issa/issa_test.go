package issa

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog)
}

func TestStraightLineSSA(t *testing.T) {
	g := build(t, `
      PROGRAM main
      INTEGER a, b
      a = 1
      b = a + 2
      a = b * 3
      END
`)
	// b = a + 2 must use the first def of a; the second a def uses b's def.
	defs := g.FindUse("MAIN", "A", 5) // use in b = a + 2
	if len(defs) != 1 || defs[0].Line != 4 {
		t.Fatalf("reaching def of a at line 5 = %v", defs)
	}
	defs = g.FindUse("MAIN", "B", 6)
	if len(defs) != 1 || defs[0].Line != 5 {
		t.Fatalf("reaching def of b at line 6 = %v", defs)
	}
}

func TestIfJoinPhi(t *testing.T) {
	g := build(t, `
      PROGRAM main
      INTEGER a, c
      a = 1
      IF (a .GT. 0) THEN
        c = 2
      ELSE
        c = 3
      ENDIF
      a = c
      END
`)
	defs := g.FindUse("MAIN", "C", 10)
	if len(defs) != 1 || defs[0].Kind != KPhi {
		t.Fatalf("use of c should reach a phi: %v", defs)
	}
	if len(defs[0].Ops) != 2 {
		t.Fatalf("phi should merge both arms: %v", defs[0].Ops)
	}
}

func TestLoopHeaderPhi(t *testing.T) {
	g := build(t, `
      PROGRAM main
      INTEGER s, i
      s = 0
      DO 10 i = 1, 5
        s = s + i
10    CONTINUE
      i = s
      END
`)
	// The use of s after the loop reaches the header phi, whose operands
	// are the initial def and the loop-body def (the recurrence).
	defs := g.FindUse("MAIN", "S", 8)
	if len(defs) != 1 || defs[0].Kind != KPhi {
		t.Fatalf("post-loop use should reach the loop phi: %v", defs)
	}
	phi := defs[0]
	if len(phi.Ops) != 2 {
		t.Fatalf("loop phi operands = %d, want entry + body", len(phi.Ops))
	}
	// The body def of s uses the phi (closing the cycle).
	inBody := g.FindUse("MAIN", "S", 6)
	if len(inBody) != 1 || inBody[0] != phi {
		t.Fatalf("body use should read the phi: %v", inBody)
	}
}

func TestWeakArrayUpdate(t *testing.T) {
	g := build(t, `
      PROGRAM main
      REAL a(10), x
      a(1) = 1.0
      a(2) = 2.0
      x = a(1)
      END
`)
	defs := g.FindUse("MAIN", "A", 6)
	if len(defs) != 1 || !defs[0].Weak {
		t.Fatalf("array use should reach the weak update: %v", defs)
	}
	// The weak chain reaches both stores.
	second := defs[0]
	foundFirst := false
	for _, op := range second.Ops {
		if op.Line == 4 {
			foundFirst = true
		}
	}
	if !foundFirst {
		t.Fatal("weak update must thread the previous array definition")
	}
}

func TestInterproceduralBindings(t *testing.T) {
	g := build(t, `
      SUBROUTINE f(x)
      INTEGER x
      x = x + 1
      END
      PROGRAM main
      INTEGER a
      a = 5
      CALL f(a)
      a = a + 0
      END
`)
	ins := g.FormalIn["F"]
	if len(ins) != 1 {
		t.Fatalf("formal-ins = %d", len(ins))
	}
	for _, in := range ins {
		bs := g.Bindings[in]
		if len(bs) != 1 || len(bs[0].Defs) != 1 || bs[0].Defs[0].Line != 8 {
			t.Fatalf("binding should carry a=5: %+v", bs)
		}
	}
	// After the call, a's def is a call-out linked to f's final def.
	defs := g.FindUse("MAIN", "A", 10)
	if len(defs) != 1 || defs[0].Kind != KCallOut {
		t.Fatalf("post-call use should reach a call-out: %v", defs)
	}
	if len(defs[0].CalleeFinal) != 1 || defs[0].CalleeFinal[0].Line != 4 {
		t.Fatalf("call-out should link to x = x + 1: %v", defs[0].CalleeFinal)
	}
}

func TestControlDependences(t *testing.T) {
	g := build(t, `
      PROGRAM main
      INTEGER a, b, c
      a = 1
      IF (a .GT. 0) THEN
        b = 2
      ENDIF
      c = 3
      END
`)
	var bDef, cDef *Node
	for _, n := range g.Nodes {
		if n.Kind != KDef || n.Sym == nil {
			continue
		}
		switch n.Sym.Name {
		case "B":
			bDef = n
		case "C":
			cDef = n
		}
	}
	if bDef == nil || len(bDef.Ctrl) == 0 || len(bDef.CtrlStmts) != 1 {
		t.Fatalf("guarded def must carry control deps: %+v", bDef)
	}
	if bDef.Ctrl[0].Line != 4 {
		t.Fatalf("control dep should be a's def: %v", bDef.Ctrl)
	}
	if cDef == nil || len(cDef.Ctrl) != 0 {
		t.Fatalf("unguarded def must have no control deps: %+v", cDef)
	}
}

// Single-assignment invariant: every non-φ, non-merge node defines exactly
// once; uses are dominated structurally by their defs (checked weakly: a
// use's def line never exceeds the use line within straight-line code).
func TestSSAInvariant(t *testing.T) {
	g := build(t, `
      PROGRAM main
      INTEGER a, b
      a = 1
      b = a
      a = 2
      b = a
      END
`)
	for e, defs := range g.UseDefs {
		for _, d := range defs {
			if d.Kind == KDef && d.Line > e.Position().Line {
				t.Fatalf("use at %d reaches later def at %d", e.Position().Line, d.Line)
			}
		}
	}
	_ = ir.Pos{}
}
